// Tree driver for iscope_lint: directory walk, report assembly, JSON
// rendering, and baseline subtraction (DESIGN.md Sec. 13).
#pragma once

#include <string>
#include <vector>

#include "checks.hpp"

namespace iscope::lint {

struct Report {
  std::vector<Finding> findings;  ///< unsuppressed, sorted by file/line
  int files_scanned = 0;
  int suppressions_used = 0;
};

/// Lint every C++ source under `paths` (relative to `root`). Walks
/// .cpp/.hpp/.h files; skips build trees (build*/), .git, and
/// tests/data/ (lint fixtures and fuzz corpora are inputs, not code).
Report run_tree(const std::string& root,
                const std::vector<std::string>& paths);

/// Render the machine-readable report (schema_version 1, stable ordering).
std::string to_json(const Report& report, const std::string& root);

/// Findings listed in `baseline_json` (a committed report, possibly with
/// an empty findings array) are removed from `report` -- they are known
/// debt under review, not new violations. Matching ignores the line
/// number so unrelated edits above a baselined finding do not churn it.
/// Throws iscope::ParseError on malformed baseline files.
void subtract_baseline(Report& report, const std::string& baseline_json);

}  // namespace iscope::lint
