// Token stream for iscope_lint (DESIGN.md Sec. 13).
//
// The project invariants the linter enforces -- banned identifiers, module
// include edges, calls inside loop bodies -- all live at the token level,
// so the analyzer carries its own ~200-line C++ lexer instead of an LLVM
// dependency: comments and string/char literals are stripped (a banned name
// inside a diagnostic string is not a violation), preprocessor directives
// are captured as whole logical lines (continuations folded) for the
// include parser, and everything else becomes identifier / number /
// punctuator tokens with 1-based line numbers for diagnostics.
//
// Comments are not discarded: they come back in a side list so the
// suppression parser can find `iscope-lint: allow(<check>)` markers and
// know whether a comment had code before it on its line (same-line
// suppression) or stood alone (suppresses the next line).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace iscope::lint {

enum class Tok {
  kIdent,      ///< identifier or keyword
  kNumber,     ///< numeric literal (int/float/hex, pp-number rules)
  kString,     ///< string literal, contents dropped (incl. raw strings)
  kCharLit,    ///< character literal, contents dropped
  kPunct,      ///< punctuator; multi-char for -> :: only (all checks need)
  kDirective,  ///< whole preprocessor logical line, continuations folded
};

struct Token {
  Tok kind = Tok::kPunct;
  std::string text;  ///< identifier spelling / punctuator / directive line
  int line = 0;      ///< 1-based line of the token's first character
};

struct Comment {
  int line = 0;        ///< 1-based line the comment starts on
  std::string text;    ///< body without the // or /* */ fences
  bool own_line = false;  ///< nothing but whitespace precedes it on its line
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenize one translation unit. Never throws on malformed input: an
/// unterminated literal or comment simply ends at EOF -- the linter's job
/// is invariants, not syntax validation (the compiler owns that).
LexResult lex(std::string_view src);

}  // namespace iscope::lint
