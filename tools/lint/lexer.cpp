#include "lexer.hpp"

#include <cctype>

namespace iscope::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  LexResult run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        line_has_code_ = false;
        ++pos_;
      } else if (c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
                 c == '\f') {
        ++pos_;
      } else if (c == '/' && peek(1) == '/') {
        line_comment();
      } else if (c == '/' && peek(1) == '*') {
        block_comment();
      } else if (c == '#' && !line_has_code_) {
        directive();
      } else if (c == '"') {
        string_lit();
      } else if (c == '\'') {
        char_lit();
      } else if (ident_start(c)) {
        identifier();
      } else if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
                 (c == '.' && std::isdigit(static_cast<unsigned char>(
                                  peek(1))) != 0)) {
        number();
      } else {
        punct();
      }
    }
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void emit(Tok kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
    line_has_code_ = true;
  }

  void line_comment() {
    const int start = line_;
    const bool own = !line_has_code_;
    pos_ += 2;
    std::string body;
    while (pos_ < src_.size() && src_[pos_] != '\n') body += src_[pos_++];
    out_.comments.push_back(Comment{start, std::move(body), own});
  }

  void block_comment() {
    const int start = line_;
    const bool own = !line_has_code_;
    pos_ += 2;
    std::string body;
    while (pos_ < src_.size() &&
           !(src_[pos_] == '*' && peek(1) == '/')) {
      if (src_[pos_] == '\n') {
        ++line_;
        line_has_code_ = false;
      }
      body += src_[pos_++];
    }
    if (pos_ < src_.size()) pos_ += 2;
    out_.comments.push_back(Comment{start, std::move(body), own});
  }

  /// One logical preprocessor line: backslash continuations are folded in,
  /// trailing // and /* */ comments stripped (and still reported as
  /// comments so suppressions on a directive line work).
  void directive() {
    const int start = line_;
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && (peek(1) == '\n' ||
                        (peek(1) == '\r' && peek(2) == '\n'))) {
        pos_ += peek(1) == '\r' ? 3 : 2;
        ++line_;
        text += ' ';
      } else if (c == '\n') {
        break;
      } else if (c == '/' && peek(1) == '/') {
        line_has_code_ = true;  // the directive counts as code
        line_comment();
        break;
      } else if (c == '/' && peek(1) == '*') {
        line_has_code_ = true;
        block_comment();
        text += ' ';
        continue;
      } else {
        text += c;
        ++pos_;
      }
    }
    emit(Tok::kDirective, std::move(text), start);
  }

  void string_lit() {
    const int start = line_;
    // Raw string: the previous token was an identifier ending in R that we
    // already emitted (e.g. R"(...)"); detect via lookbehind on the source.
    if (pos_ > 0 && (src_[pos_ - 1] == 'R') ) {
      raw_string();
      return;
    }
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '"' && src_[pos_] != '\n') {
      if (src_[pos_] == '\\') ++pos_;
      if (pos_ < src_.size()) ++pos_;
    }
    if (pos_ < src_.size() && src_[pos_] == '"') ++pos_;
    emit(Tok::kString, "", start);
  }

  void raw_string() {
    const int start = line_;
    ++pos_;  // over the opening quote
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
    const std::string closer = ")" + delim + "\"";
    const std::size_t end = src_.find(closer, pos_);
    for (std::size_t i = pos_; i < std::min(end, src_.size()); ++i)
      if (src_[i] == '\n') ++line_;
    pos_ = end == std::string_view::npos ? src_.size() : end + closer.size();
    emit(Tok::kString, "", start);
  }

  void char_lit() {
    const int start = line_;
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '\'' && src_[pos_] != '\n') {
      if (src_[pos_] == '\\') ++pos_;
      if (pos_ < src_.size()) ++pos_;
    }
    if (pos_ < src_.size() && src_[pos_] == '\'') ++pos_;
    emit(Tok::kCharLit, "", start);
  }

  void identifier() {
    const int start = line_;
    std::string text;
    while (pos_ < src_.size() && ident_char(src_[pos_]))
      text += src_[pos_++];
    // A raw-string prefix (R"..., u8R"..., LR"...) is part of the literal,
    // not an identifier; hand control to the string lexer.
    if (pos_ < src_.size() && src_[pos_] == '"' && !text.empty() &&
        text.back() == 'R') {
      raw_string();
      return;
    }
    emit(Tok::kIdent, std::move(text), start);
  }

  void number() {
    const int start = line_;
    std::string text;
    // pp-number: digits, idents, quotes-as-separators, and exponent signs.
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (ident_char(c) || c == '.' || c == '\'') {
        text += c;
        ++pos_;
      } else if ((c == '+' || c == '-') && !text.empty() &&
                 (text.back() == 'e' || text.back() == 'E' ||
                  text.back() == 'p' || text.back() == 'P')) {
        text += c;
        ++pos_;
      } else {
        break;
      }
    }
    emit(Tok::kNumber, std::move(text), start);
  }

  void punct() {
    const int start = line_;
    const char c = src_[pos_];
    // Only -> and :: matter as units to the checks (member access and
    // qualified names); every other punctuator is emitted char-by-char.
    if (c == '-' && peek(1) == '>') {
      pos_ += 2;
      emit(Tok::kPunct, "->", start);
    } else if (c == ':' && peek(1) == ':') {
      pos_ += 2;
      emit(Tok::kPunct, "::", start);
    } else {
      ++pos_;
      emit(Tok::kPunct, std::string(1, c), start);
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool line_has_code_ = false;
  LexResult out_;
};

}  // namespace

LexResult lex(std::string_view src) { return Lexer(src).run(); }

}  // namespace iscope::lint
