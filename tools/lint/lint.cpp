#include "lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/json.hpp"

namespace iscope::lint {

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

bool skipped_dir(const std::string& rel) {
  // Build trees, VCS metadata, and checked-in lint/fuzz fixtures: fixture
  // snippets deliberately violate the checks and are linted by
  // tests/test_lint.cpp under virtual paths instead.
  return rel.starts_with("build") || rel.starts_with(".git") ||
         rel.starts_with("tests/data");
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Report run_tree(const std::string& root,
                const std::vector<std::string>& paths) {
  Report report;
  std::vector<std::string> files;
  const fs::path root_path(root);
  for (const std::string& p : paths) {
    const fs::path abs = root_path / p;
    if (fs::is_regular_file(abs)) {
      files.push_back(p);
      continue;
    }
    if (!fs::is_directory(abs)) continue;
    for (fs::recursive_directory_iterator it(abs), end; it != end; ++it) {
      const std::string rel =
          fs::relative(it->path(), root_path).generic_string();
      if (it->is_directory() && skipped_dir(rel)) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && lintable(it->path()) &&
          !skipped_dir(rel))
        files.push_back(rel);
    }
  }
  // Deterministic report order regardless of directory enumeration order.
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  for (const std::string& rel : files) {
    AnalysisResult r = analyze_source(rel, read_file(root_path / rel));
    ++report.files_scanned;
    report.suppressions_used += r.suppressions_used;
    for (Finding& f : r.findings)
      report.findings.push_back(std::move(f));
  }
  return report;
}

std::string to_json(const Report& report, const std::string& root) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": 1,\n";
  out << "  \"tool\": \"iscope_lint\",\n";
  out << "  \"root\": \"" << json_escape(root) << "\",\n";
  out << "  \"files_scanned\": " << report.files_scanned << ",\n";
  out << "  \"suppressions_used\": " << report.suppressions_used << ",\n";
  out << "  \"counts\": {";
  bool first = true;
  for (const CheckInfo& c : check_catalog()) {
    const auto n = std::count_if(
        report.findings.begin(), report.findings.end(),
        [&](const Finding& f) { return f.check == c.name; });
    out << (first ? "" : ", ") << '"' << c.name << "\": " << n;
    first = false;
  }
  out << "},\n";
  out << "  \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"check\": \"" << json_escape(f.check) << "\", "
        << "\"file\": \"" << json_escape(f.file) << "\", "
        << "\"line\": " << f.line << ", "
        << "\"message\": \"" << json_escape(f.message) << "\"}";
  }
  out << (report.findings.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

void subtract_baseline(Report& report, const std::string& baseline_json) {
  const json::Value doc = json::parse(baseline_json);
  std::set<std::string> baselined;
  if (const json::Value* arr = json::find(doc, "findings");
      arr != nullptr && arr->is(json::Value::Kind::kArray)) {
    for (const json::Value& f : arr->array) {
      const json::Value* check = json::find(f, "check");
      const json::Value* file = json::find(f, "file");
      const json::Value* message = json::find(f, "message");
      if (check != nullptr && file != nullptr && message != nullptr)
        baselined.insert(check->string + "\x1f" + file->string + "\x1f" +
                         message->string);
    }
  }
  if (baselined.empty()) return;
  std::erase_if(report.findings, [&](const Finding& f) {
    return baselined.count(f.check + "\x1f" + f.file + "\x1f" + f.message) >
           0;
  });
}

}  // namespace iscope::lint
