// iscope_lint -- the project-invariant static analyzer (DESIGN.md Sec. 13).
//
//   iscope_lint [options] [paths...]
//
//     --root DIR       repo root the paths are relative to (default: .)
//     --json FILE      write the machine-readable report ("-" = stdout)
//     --baseline FILE  subtract a committed baseline report; only new
//                      findings fail the run (tools/lint/baseline.json is
//                      kept empty at merge)
//     --list-checks    print the check catalog and exit
//     -q, --quiet      suppress per-finding diagnostics (exit code only)
//
// Default paths: src tests bench examples. Exit 0 when clean, 1 when any
// unsuppressed (and un-baselined) finding remains, 2 on usage/IO errors.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "lint.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--json FILE] [--baseline FILE] "
               "[--list-checks] [-q] [paths...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_out;
  std::string baseline;
  bool quiet = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline = argv[++i];
    } else if (arg == "--list-checks") {
      for (const iscope::lint::CheckInfo& c :
           iscope::lint::check_catalog())
        std::printf("%-12s %s\n", c.name, c.summary);
      return 0;
    } else if (arg == "-q" || arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "iscope_lint: unknown option '%s'\n",
                   arg.c_str());
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "tests", "bench", "examples"};

  iscope::lint::Report report;
  try {
    report = iscope::lint::run_tree(root, paths);
    if (!baseline.empty()) {
      std::ifstream in(baseline);
      if (!in) {
        std::fprintf(stderr, "iscope_lint: cannot read baseline '%s'\n",
                     baseline.c_str());
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      iscope::lint::subtract_baseline(report, buf.str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "iscope_lint: %s\n", e.what());
    return 2;
  }

  if (!json_out.empty()) {
    const std::string doc = iscope::lint::to_json(report, root);
    if (json_out == "-") {
      std::fputs(doc.c_str(), stdout);
    } else {
      std::ofstream out(json_out);
      if (!out) {
        std::fprintf(stderr, "iscope_lint: cannot write '%s'\n",
                     json_out.c_str());
        return 2;
      }
      out << doc;
    }
  }

  if (!quiet) {
    for (const iscope::lint::Finding& f : report.findings)
      std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                   f.check.c_str(), f.message.c_str());
  }
  if (report.findings.empty()) {
    if (!quiet)
      std::fprintf(stderr,
                   "iscope_lint: clean (%d files, %d suppressions used)\n",
                   report.files_scanned, report.suppressions_used);
    return 0;
  }
  std::fprintf(stderr, "iscope_lint: %zu finding%s in %d files\n",
               report.findings.size(),
               report.findings.size() == 1 ? "" : "s",
               report.files_scanned);
  return 1;
}
