// Check catalog for iscope_lint (DESIGN.md Sec. 13).
//
// Each check encodes one invariant the repo's headline guarantees rest on,
// as a pure function of a file's token stream -- no build, no LLVM, so the
// whole tree lints in milliseconds and the checks are unit-testable against
// fixture snippets (tests/data/lint/).
//
//   determinism  Bit-identical replay (shard/worker/telemetry/fault
//                identity suites) forbids order- and host-dependent
//                sources on simulation paths: unordered containers,
//                rand/random_device, wall clocks, parallel reductions.
//                Scope: src/ only -- benches and tests time things on
//                purpose. Host-clock telemetry spans are the canonical
//                justified suppression.
//   layering     The module DAG (common at the bottom, core at the top)
//                stays acyclic: every `#include "module/..."` must follow
//                a declared edge. Telemetry is a sink any module may
//                consume, but only from .cpp files -- a header include
//                would close a cycle through common.
//   quantity     Dimensional safety (Quantity<Dim>): `.raw()` escapes stay
//                inside the documented hot-loop files, and public headers
//                of src/power + src/energy never reintroduce suffix-typed
//                `double`s (`_w`, `_j`, ...) where a typed Watts/Joules
//                belongs.
//   telemetry    Instrumentation discipline: spans only via the
//                ISCOPE_SPAN macros (direct ScopedSpan construction skips
//                the enabled() gate), and no registry name lookups
//                (`.counter/.gauge/.histogram`) inside loop bodies --
//                lookups hash the name; loops must use cached cells.
//   simd         Compile-time SIMD dispatch stays falsifiable in scalar
//                builds: ISCOPE_SIMD conditionals in headers carry an
//                #else scalar fallback, and a `*_simd` identifier used
//                outside an ISCOPE_SIMD region needs its `*_scalar` twin
//                in the same file.
//   suppression  Meta-check keeping the escape hatch honest: every
//                `iscope-lint: allow(<check>)` needs a justification and
//                must actually suppress something; unknown check names are
//                errors.
//
// Suppression syntax, recognized in // and /* */ comments:
//
//   code();  // iscope-lint: allow(determinism) one-line justification
//
// suppresses findings of that check on the comment's line; a comment alone
// on its line suppresses the next line instead.
#pragma once

#include <string>
#include <vector>

#include "lexer.hpp"

namespace iscope::lint {

struct Finding {
  std::string check;    ///< catalog name, e.g. "determinism"
  std::string file;     ///< path relative to the repo root
  int line = 0;         ///< 1-based
  std::string message;  ///< human diagnostic, no trailing newline
};

struct CheckInfo {
  const char* name;
  const char* summary;
};

/// The catalog, in reporting order.
const std::vector<CheckInfo>& check_catalog();

/// True when `name` names a catalog check (suppressions may only target
/// these).
bool known_check(const std::string& name);

struct AnalysisResult {
  std::vector<Finding> findings;      ///< post-suppression, sorted by line
  int suppressions_used = 0;          ///< allow() markers that fired
};

/// Lint one file. `path` is the repo-relative path and drives every scope
/// decision (module membership, header vs implementation, allowlists);
/// `content` is the file text. Pure function: no filesystem access.
AnalysisResult analyze_source(const std::string& path,
                              std::string_view content);

}  // namespace iscope::lint
