#include "checks.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <set>
#include <sstream>

namespace iscope::lint {

namespace {

// --- path classification -------------------------------------------------

struct PathInfo {
  std::string path;    ///< repo-relative, forward slashes
  std::string module;  ///< "sim" for src/sim/...; "" outside src/
  bool is_header = false;
  bool in_src = false;
};

PathInfo classify(const std::string& path) {
  PathInfo info;
  info.path = path;
  info.is_header = path.ends_with(".hpp") || path.ends_with(".h");
  if (path.starts_with("src/")) {
    info.in_src = true;
    const std::size_t slash = path.find('/', 4);
    if (slash != std::string::npos) info.module = path.substr(4, slash - 4);
  }
  return info;
}

// --- module DAG ----------------------------------------------------------

// Allowed include targets per module: the transitive closure of the
// sanctioned architecture (DESIGN.md Sec. 13). Adding an edge here is an
// architecture decision and belongs in the same review as the code that
// needs it. Telemetry is handled separately: it is a sink every module may
// include from a .cpp file (metrics publication), never from a header
// (that would close a cycle through common).
const std::map<std::string, std::set<std::string>>& module_dag() {
  static const std::map<std::string, std::set<std::string>> kDag = {
      {"common", {"common"}},
      {"telemetry", {"telemetry", "common"}},
      {"power", {"power", "common"}},
      {"variation", {"variation", "common"}},
      {"workload", {"workload", "common"}},
      {"energy", {"energy", "common"}},
      {"hardware", {"hardware", "power", "variation", "common"}},
      {"fault", {"fault", "energy", "common"}},
      // Thermal may look down at the hardware topology and energy/power
      // types; only sim may look into thermal (the model is driven
      // exclusively by the simulator's epoch events).
      {"thermal",
       {"thermal", "hardware", "energy", "power", "variation", "common"}},
      {"profiling",
       {"profiling", "energy", "hardware", "power", "variation", "common"}},
      {"sched",
       {"sched", "profiling", "hardware", "power", "variation", "energy",
        "common"}},
      {"sim",
       {"sim", "sched", "profiling", "fault", "thermal", "energy", "hardware",
        "power", "variation", "workload", "common"}},
      {"core",
       {"core", "sim", "sched", "profiling", "fault", "energy", "hardware",
        "power", "variation", "workload", "common"}},
      {"service",
       {"service", "core", "sim", "sched", "profiling", "fault", "energy",
        "hardware", "power", "variation", "workload", "common"}},
  };
  return kDag;
}

// --- determinism tables --------------------------------------------------

// Identifiers banned outright on src/ paths: every one is a source of
// iteration-order, seed, or host-clock nondeterminism that would break the
// bit-identity suites (shard/worker counts, telemetry on/off, zero-fault).
const std::set<std::string>& det_banned_idents() {
  static const std::set<std::string> kBanned = {
      "unordered_map",  "unordered_set", "unordered_multimap",
      "unordered_multiset", "random_device", "system_clock",
      "steady_clock",   "high_resolution_clock", "srand", "gettimeofday",
      "drand48",        "lrand48",
  };
  return kBanned;
}

// Banned only as direct calls `name(...)` (not member calls `.name(...)`):
// these collide with common member spellings like `queue_.now()` or
// `EventQueue::peek_time()`.
const std::set<std::string>& det_banned_calls() {
  static const std::set<std::string> kCalls = {"rand", "time", "clock",
                                               "timespec_get"};
  return kCalls;
}

// Banned when std-qualified: parallel reductions have unspecified
// evaluation order, so their FP sums are not replayable.
const std::set<std::string>& det_banned_std() {
  static const std::set<std::string> kStd = {"reduce", "transform_reduce",
                                             "execution"};
  return kStd;
}

// --- quantity tables -----------------------------------------------------

// The documented hot-loop files (DESIGN.md Sec. 13): the only src/ files
// where `.raw()` escapes are allowed. Everything here is a computational
// interior behind a typed public interface; quantity.hpp is the definition
// site. A new file showing up with `.raw()` must either earn a row (and a
// DESIGN.md mention) or keep quantities typed.
const std::set<std::string>& raw_allowlist() {
  static const std::set<std::string> kAllow = {
      "src/common/quantity.hpp",
      "src/energy/battery.cpp",
      "src/energy/forecast.cpp",
      "src/energy/reconcile.cpp",
      "src/energy/solar_model.cpp",
      "src/energy/supply_stats.cpp",
      "src/energy/supply_trace.cpp",
      "src/energy/wind_model.cpp",
      "src/fault/fault.cpp",
      "src/fault/noisy_forecast.cpp",
      "src/power/cooling.cpp",
      "src/power/cpu_power.cpp",
      "src/power/energy_meter.cpp",
      "src/power/node_power.cpp",
      "src/profiling/opportunistic.cpp",
      "src/profiling/overhead.cpp",
      "src/sched/power_matcher.cpp",
      "src/sim/sharded.cpp",
      "src/sim/simulator.cpp",
  };
  return kAllow;
}

// Unit suffixes that mark a raw double as a smuggled physical quantity.
// Matches the pre-PR-2 suffix conventions the Quantity<Dim> layer retired.
bool has_unit_suffix(const std::string& name) {
  static const std::set<std::string> kSuffixes = {
      "j",  "w",  "s",   "ws",  "wh",    "kwh",   "kw",      "mw",
      "hz", "ghz", "mhz", "v",  "mv",    "usd",   "joules",  "watts",
      "seconds",  "volts", "celsius",
  };
  const std::size_t us = name.rfind('_');
  if (us == std::string::npos || us + 1 >= name.size()) return false;
  return kSuffixes.count(name.substr(us + 1)) > 0;
}

// --- token helpers -------------------------------------------------------

bool is_punct(const Token& t, const char* s) {
  return t.kind == Tok::kPunct && t.text == s;
}

bool is_ident(const Token& t, const char* s) {
  return t.kind == Tok::kIdent && t.text == s;
}

const Token* at(const std::vector<Token>& toks, std::size_t i) {
  return i < toks.size() ? &toks[i] : nullptr;
}

void add(std::vector<Finding>& out, const char* check, const PathInfo& info,
         int line, std::string message) {
  out.push_back(Finding{check, info.path, line, std::move(message)});
}

// --- determinism ---------------------------------------------------------

void check_determinism(const PathInfo& info, const LexResult& lx,
                       std::vector<Finding>& out) {
  if (!info.in_src) return;  // benches and tests time things on purpose
  const auto& toks = lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kIdent) continue;
    if (det_banned_idents().count(t.text) > 0) {
      add(out, "determinism", info, t.line,
          "'" + t.text +
              "' is nondeterministic (iteration order / seed / host "
              "clock); simulation paths must replay bit-identically");
      continue;
    }
    const Token* prev = i > 0 ? &toks[i - 1] : nullptr;
    const Token* next = at(toks, i + 1);
    const bool member_access =
        prev != nullptr && (is_punct(*prev, ".") || is_punct(*prev, "->"));
    // A preceding identifier means a declaration (`double time() const`),
    // not a call -- except the expression keywords that legally precede a
    // call expression.
    const bool declaration =
        prev != nullptr && prev->kind == Tok::kIdent &&
        prev->text != "return" && prev->text != "co_return" &&
        prev->text != "case" && prev->text != "throw";
    if (det_banned_calls().count(t.text) > 0 && next != nullptr &&
        is_punct(*next, "(") && !member_access && !declaration) {
      add(out, "determinism", info, t.line,
          "call to '" + t.text +
              "()' reads host state; derive times from the simulation "
              "clock or a seeded Rng");
      continue;
    }
    if (det_banned_std().count(t.text) > 0 && prev != nullptr &&
        is_punct(*prev, "::") && i >= 2 && is_ident(toks[i - 2], "std")) {
      add(out, "determinism", info, t.line,
          "'std::" + t.text +
              "' has unspecified evaluation order; fixed-order sums only "
              "(see reconcile_wind for the pattern)");
    }
  }
}

// --- layering ------------------------------------------------------------

/// Extract the quoted target of an `#include "..."` directive, or "".
std::string include_target(const std::string& directive) {
  std::size_t p = directive.find('#');
  if (p == std::string::npos) return "";
  ++p;
  while (p < directive.size() &&
         std::isspace(static_cast<unsigned char>(directive[p])) != 0)
    ++p;
  if (directive.compare(p, 7, "include") != 0) return "";
  const std::size_t open = directive.find('"', p);
  if (open == std::string::npos) return "";
  const std::size_t close = directive.find('"', open + 1);
  if (close == std::string::npos) return "";
  return directive.substr(open + 1, close - open - 1);
}

void check_layering(const PathInfo& info, const LexResult& lx,
                    std::vector<Finding>& out) {
  if (!info.in_src || info.module.empty()) return;
  const auto& dag = module_dag();
  const auto self = dag.find(info.module);
  for (const Token& t : lx.tokens) {
    if (t.kind != Tok::kDirective) continue;
    const std::string target = include_target(t.text);
    const std::size_t slash = target.find('/');
    if (slash == std::string::npos) continue;
    const std::string target_module = target.substr(0, slash);
    if (dag.find(target_module) == dag.end()) continue;  // not a module
    if (target_module == "telemetry" && info.module != "telemetry") {
      if (info.is_header) {
        add(out, "layering", info, t.line,
            "src/" + info.module +
                " header includes \"" + target +
                "\"; telemetry is consumable from .cpp files only (a "
                "header include closes a cycle through common)");
      }
      continue;
    }
    if (self == dag.end() || self->second.count(target_module) == 0) {
      std::string allowed;
      if (self != dag.end())
        for (const std::string& m : self->second)
          allowed += (allowed.empty() ? "" : ", ") + m;
      add(out, "layering", info, t.line,
          "src/" + info.module + " may not include \"" + target +
              "\" (module DAG allows: " + allowed + ")");
    }
  }
}

// --- quantity ------------------------------------------------------------

void check_quantity(const PathInfo& info, const LexResult& lx,
                    std::vector<Finding>& out) {
  if (!info.in_src) return;
  const auto& toks = lx.tokens;

  // (a) `.raw()` escapes outside the documented hot-loop files.
  if (raw_allowlist().count(info.path) == 0) {
    for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
      if (!is_ident(toks[i], "raw")) continue;
      const bool member =
          is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->");
      if (member && is_punct(toks[i + 1], "(")) {
        add(out, "quantity", info, toks[i].line,
            ".raw() escape outside the documented hot-loop files; use the "
            "typed accessor (.watts()/.joules()/...) or add the file to "
            "the DESIGN.md Sec. 13 hot-loop table");
      }
    }
  }

  // (b) suffix-typed raw doubles in the public headers of the power and
  // energy layers -- the interfaces PR 2 converted to Quantity<Dim>.
  const bool suffix_scope =
      info.is_header && (info.module == "power" || info.module == "energy");
  if (!suffix_scope) return;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "double")) continue;
    // `double name_w` (param or field), and `vector<double> name_w`.
    std::size_t name_idx = i + 1;
    if (is_punct(toks[i + 1], ">") && i + 2 < toks.size()) name_idx = i + 2;
    const Token* name = at(toks, name_idx);
    if (name == nullptr || name->kind != Tok::kIdent) continue;
    const Token* after = at(toks, name_idx + 1);
    if (after != nullptr && is_punct(*after, "(")) continue;  // accessor fn
    if (has_unit_suffix(name->text)) {
      add(out, "quantity", info, name->line,
          "raw double '" + name->text +
              "' smuggles a unit in its suffix; public power/energy "
              "interfaces speak Quantity<Dim> (Watts, Joules, Seconds, "
              "...)");
    }
  }
}

// --- telemetry -----------------------------------------------------------

void check_telemetry(const PathInfo& info, const LexResult& lx,
                     std::vector<Finding>& out) {
  if (info.path.starts_with("src/telemetry/")) return;  // the subsystem
  const auto& toks = lx.tokens;

  // Loop tracking: a brace scope opened by a for/while/do header, plus
  // unbraced single-statement bodies until their terminating ';'.
  std::vector<char> brace_is_loop;   // stack, one entry per '{'
  int loop_braces = 0;
  bool pending_loop_header = false;  // saw for/while, waiting for '(' ... ')'
  int header_paren_depth = 0;
  bool pending_loop_body = false;    // header closed, body token next
  int unbraced_loop_semis = 0;       // active unbraced loop bodies
  int paren_depth = 0;
  bool saw_static = false;           // since the current statement started

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    // A loop header followed by anything but '{' opens an unbraced
    // single-statement body (ending at its ';'); a bare ';' is an empty
    // body. The '{' case below consumes pending_loop_body itself.
    if (pending_loop_body && !is_punct(t, "{")) {
      pending_loop_body = false;
      if (!is_punct(t, ";")) ++unbraced_loop_semis;
    }
    const bool in_loop = loop_braces > 0 || unbraced_loop_semis > 0;

    if (t.kind == Tok::kIdent) {
      if (t.text == "static") saw_static = true;
      if (t.text == "ScopedSpan") {
        add(out, "telemetry", info, t.line,
            "direct ScopedSpan construction bypasses the enabled() gate; "
            "use ISCOPE_SPAN / ISCOPE_SPAN_SIM");
      }
      if ((t.text == "counter" || t.text == "gauge" ||
           t.text == "histogram") &&
          i > 0 &&
          (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) &&
          i + 1 < toks.size() && is_punct(toks[i + 1], "(") && in_loop &&
          !saw_static) {
        add(out, "telemetry", info, t.line,
            "registry ." + t.text +
                "() name lookup inside a loop body; hoist it into a "
                "cached cell (static Family& outside the loop)");
      }
      if (t.text == "for" || t.text == "while") {
        pending_loop_header = true;
        header_paren_depth = paren_depth;
      } else if (t.text == "do") {
        pending_loop_body = true;
      }
      continue;
    }

    if (t.kind != Tok::kPunct) continue;
    const char c = t.text.size() == 1 ? t.text[0] : '\0';
    switch (c) {
      case '(':
        ++paren_depth;
        break;
      case ')':
        --paren_depth;
        if (pending_loop_header && paren_depth == header_paren_depth) {
          pending_loop_header = false;
          pending_loop_body = true;
        }
        break;
      case '{':
        brace_is_loop.push_back(pending_loop_body ? 1 : 0);
        if (pending_loop_body) ++loop_braces;
        pending_loop_body = false;
        saw_static = false;
        break;
      case '}':
        if (!brace_is_loop.empty()) {
          if (brace_is_loop.back() != 0) --loop_braces;
          brace_is_loop.pop_back();
        }
        saw_static = false;
        break;
      case ';':
        // Semicolons inside a paren (for-header clauses, defaulted args)
        // do not end the unbraced body statement.
        if (paren_depth == 0 && unbraced_loop_semis > 0)
          --unbraced_loop_semis;
        saw_static = false;
        break;
      default:
        break;
    }
  }
}

// --- simd ----------------------------------------------------------------

/// Directive keyword after '#' and whitespace: "#  ifdef X" -> "ifdef".
std::string directive_keyword(const std::string& text) {
  std::size_t p = text.find('#');
  if (p == std::string::npos) return "";
  ++p;
  while (p < text.size() &&
         std::isspace(static_cast<unsigned char>(text[p])) != 0)
    ++p;
  std::size_t e = p;
  while (e < text.size() &&
         std::isalpha(static_cast<unsigned char>(text[e])) != 0)
    ++e;
  return text.substr(p, e - p);
}

// The scalar-fallback invariant behind -DISCOPE_SIMD (DESIGN.md Sec. 14):
// compile-time dispatch means a scalar build must find a complete scalar
// path in the same file that gates the SIMD one.
//
//  (a) In a header, an `#if defined(ISCOPE_SIMD)` / `#ifdef ISCOPE_SIMD`
//      conditional needs an `#else` branch -- headers are the dispatch
//      sites, and a missing #else is a scalar build with no code path. A
//      SIMD-only implementation TU (like soa_kernels.cpp, empty in scalar
//      builds) is fine, so .cpp files are exempt from (a).
//  (b) Anywhere in src/, a `*_simd` identifier OUTSIDE an ISCOPE_SIMD
//      conditional must have its `*_scalar` sibling somewhere in the same
//      file: an unguarded SIMD call with no scalar twin is exactly the
//      untested-fallback hole the equivalence suite cannot catch in a
//      scalar-only CI run.
void check_simd(const PathInfo& info, const LexResult& lx,
                std::vector<Finding>& out) {
  if (!info.in_src) return;
  const auto& toks = lx.tokens;

  struct Cond {
    bool mentions_simd = false;  ///< any branch of it is SIMD-conditional
    bool simd_first = false;     ///< #if/#ifdef form (SIMD branch first)
    bool has_else = false;
    int line = 0;
  };
  std::vector<Cond> stack;
  struct Region {
    int begin = 0;
    int end = 0;
  };
  std::vector<Region> regions;  ///< line spans of SIMD conditionals

  auto close = [&](int end_line) {
    const Cond c = stack.back();
    stack.pop_back();
    if (!c.mentions_simd) return;
    regions.push_back(Region{c.line, end_line});
    if (info.is_header && c.simd_first && !c.has_else) {
      add(out, "simd", info, c.line,
          "ISCOPE_SIMD conditional without an #else scalar fallback; "
          "compile-time dispatch headers must give scalar builds a "
          "complete code path");
    }
  };

  int last_line = 0;
  for (const Token& t : toks) {
    last_line = t.line;
    if (t.kind != Tok::kDirective) continue;
    const std::string kw = directive_keyword(t.text);
    if (kw == "if" || kw == "ifdef" || kw == "ifndef") {
      Cond c;
      c.mentions_simd = t.text.find("ISCOPE_SIMD") != std::string::npos;
      c.simd_first = c.mentions_simd && kw != "ifndef" &&
                     t.text.find('!') == std::string::npos;
      c.line = t.line;
      stack.push_back(c);
    } else if ((kw == "else" || kw == "elif") && !stack.empty()) {
      stack.back().has_else = true;
    } else if (kw == "endif" && !stack.empty()) {
      close(t.line);
    }
  }
  while (!stack.empty()) close(last_line);  // unterminated: span to EOF

  const auto in_region = [&](int line) {
    for (const Region& r : regions)
      if (line >= r.begin && line <= r.end) return true;
    return false;
  };
  std::set<std::string> idents;
  for (const Token& t : toks)
    if (t.kind == Tok::kIdent) idents.insert(t.text);
  for (const Token& t : toks) {
    if (t.kind != Tok::kIdent || !t.text.ends_with("_simd")) continue;
    if (in_region(t.line)) continue;
    const std::string stem = t.text.substr(0, t.text.size() - 5);
    if (idents.count(stem + "_scalar") == 0) {
      add(out, "simd", info, t.line,
          "'" + t.text + "' outside an ISCOPE_SIMD conditional with no '" +
              stem + "_scalar' fallback in this file; scalar builds need "
              "a tested twin of every SIMD kernel");
    }
  }
}

// --- suppressions --------------------------------------------------------

struct Suppression {
  int comment_line = 0;
  int target_line = 0;
  std::vector<std::string> checks;
  std::vector<std::string> unknown;  ///< names not in the catalog
  bool has_justification = false;
  bool used = false;
};

std::vector<Suppression> parse_suppressions(const LexResult& lx) {
  std::vector<Suppression> out;
  for (const Comment& c : lx.comments) {
    const std::size_t mark = c.text.find("iscope-lint:");
    if (mark == std::string::npos) continue;
    Suppression s;
    s.comment_line = c.line;
    if (c.own_line) {
      // A comment standing alone suppresses the next line that carries
      // code -- justifications may wrap over several comment lines.
      s.target_line = 0;
      for (const Token& t : lx.tokens)
        if (t.line > c.line &&
            (s.target_line == 0 || t.line < s.target_line))
          s.target_line = t.line;
    } else {
      s.target_line = c.line;
    }
    std::size_t pos = mark;
    std::size_t tail = mark;
    while (true) {
      const std::size_t a = c.text.find("allow(", pos);
      if (a == std::string::npos) break;
      const std::size_t close = c.text.find(')', a + 6);
      if (close == std::string::npos) break;
      std::string name = c.text.substr(a + 6, close - a - 6);
      name.erase(std::remove_if(name.begin(), name.end(),
                                [](unsigned char ch) {
                                  return std::isspace(ch) != 0;
                                }),
                 name.end());
      (known_check(name) ? s.checks : s.unknown).push_back(name);
      pos = close + 1;
      tail = close + 1;
    }
    // Justification: any non-empty text after the last allow(...) group.
    std::string rest = c.text.substr(tail);
    s.has_justification =
        std::any_of(rest.begin(), rest.end(), [](unsigned char ch) {
          return std::isalnum(ch) != 0;
        });
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

// --- public API ----------------------------------------------------------

const std::vector<CheckInfo>& check_catalog() {
  static const std::vector<CheckInfo> kCatalog = {
      {"determinism",
       "no unordered-container iteration, rand, or host clocks in src/"},
      {"layering",
       "module includes follow the DAG; telemetry from .cpp files only"},
      {"quantity",
       ".raw() only in documented hot-loop files; no unit-suffixed "
       "doubles in power/energy headers"},
      {"telemetry",
       "spans via ISCOPE_SPAN macros; no registry lookups in loops"},
      {"simd",
       "ISCOPE_SIMD headers carry an #else scalar fallback; unguarded "
       "*_simd uses need an in-file *_scalar twin"},
      {"suppression",
       "allow() markers must be known, justified, and actually used"},
  };
  return kCatalog;
}

bool known_check(const std::string& name) {
  const auto& cat = check_catalog();
  return std::any_of(cat.begin(), cat.end(), [&](const CheckInfo& c) {
    return name == c.name;
  });
}

AnalysisResult analyze_source(const std::string& path,
                              std::string_view content) {
  const PathInfo info = classify(path);
  const LexResult lx = lex(content);

  std::vector<Finding> raw;
  check_determinism(info, lx, raw);
  check_layering(info, lx, raw);
  check_quantity(info, lx, raw);
  check_telemetry(info, lx, raw);
  check_simd(info, lx, raw);

  std::vector<Suppression> sups = parse_suppressions(lx);

  AnalysisResult result;
  for (Finding& f : raw) {
    bool suppressed = false;
    for (Suppression& s : sups) {
      if (s.target_line == f.line &&
          std::find(s.checks.begin(), s.checks.end(), f.check) !=
              s.checks.end()) {
        s.used = true;
        suppressed = true;
        ++result.suppressions_used;
        break;
      }
    }
    if (!suppressed) result.findings.push_back(std::move(f));
  }

  // The meta-check: suppressions themselves must stay honest.
  for (const Suppression& s : sups) {
    for (const std::string& name : s.unknown) {
      add(result.findings, "suppression", info, s.comment_line,
          "allow(" + name + ") names an unknown check; catalog: "
          "determinism, layering, quantity, telemetry, simd, suppression");
    }
    if (!s.checks.empty() && !s.has_justification) {
      add(result.findings, "suppression", info, s.comment_line,
          "suppression without a justification; append a one-line reason "
          "after allow(...)");
    }
    if (!s.checks.empty() && !s.used) {
      add(result.findings, "suppression", info, s.comment_line,
          "unused suppression (nothing to allow on line " +
              std::to_string(s.target_line) + "); delete it");
    }
  }

  std::stable_sort(result.findings.begin(), result.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.line != b.line) return a.line < b.line;
                     return a.check < b.check;
                   });
  return result;
}

}  // namespace iscope::lint
