#!/usr/bin/env bash
# Machine-readable benchmark runner: builds the bench binaries and captures
# BENCH_<name>.json trajectories (wall time, events/sec, rematch count,
# peak RSS -- schema in src/common/bench_json.hpp).
#
# Usage:  tools/bench.sh [options] [bench...]
#   -o outdir    where the JSON lands               (default bench-results/)
#   -s scale     ISCOPE_SCALE facility scale        (default 1)
#   -r repeats   timed iterations per bench         (default 3)
#   -w warmup    untimed iterations per bench       (default 1)
#   -l label     tag the captures (optional "label" key in the JSON;
#   --label      e.g. -l faults-on for an ISCOPE_FAULTS run)
#   --shards N   ISCOPE_SHARDS shard count          (default 1 = legacy loop)
#   --shard-workers W  ISCOPE_SHARD_WORKERS         (default 1; 0 = hw threads)
#   --thermal    ISCOPE_THERMAL=1 thermal/CRAC model (adds ScanTherm to the
#                fig8 scheme set; pair with -l thermal_on)
#   --sleep-policy P  ISCOPE_SLEEP_POLICY sleep governor
#                (none|active-idle|immediate|timeout)
#   --perf       arm the schema-v3 perf counter block (ISCOPE_BENCH_PERF=1;
#                graceful -1 sentinels where perf_event_open is refused)
#   --compare A B  diff two BENCH_*.json captures instead of running:
#                the work counters (events / rematch_count /
#                tasks_completed) must match exactly, and B's events/s must
#                not fall more than the threshold below A's. Exits 1 on a
#                regression, 2 when the captures are not comparable.
#   --threshold P  allowed events/s regression percent for --compare
#                (default 5)
#   bench...     bench binary names                 (default: the JSON-wired
#                set: bench_fig8_energy_cost bench_fig6_wind_utility)
#
# Fault-injection env knobs (ISCOPE_FAULTS, ISCOPE_FAULT_SEED) and the
# hyperscale preset size (ISCOPE_HYPERSCALE_PROCS, bench_shard_scaling
# only) pass through to the bench binaries; combine with -l to keep
# captures distinguishable (the committed scaling curve uses -l shards_N).
#
# The build tree is build-bench/ (tier-1 flags, RelWithDebInfo) so the
# developer's build/ directory is untouched. Runs are serial
# (ISCOPE_PARALLEL=1): wall time then measures the hot path, not the pool.
set -euo pipefail

cd "$(dirname "$0")/.."

usage() {
  echo "usage: tools/bench.sh [-o outdir] [-s scale] [-r repeats] [-w warmup] [-l label] [--shards N] [--shard-workers W] [--thermal] [--sleep-policy P] [--perf] [bench...]" >&2
  echo "       tools/bench.sh --compare A.json B.json [--threshold pct]" >&2
  exit 2
}

# First numeric value of a flat top-level key in a BENCH_*.json capture
# (the schema indents top-level scalars by exactly two spaces); empty when
# the key is absent.
json_num() {
  sed -n 's/^  "'"$2"'": \(-\{0,1\}[0-9][0-9.eE+-]*\),\{0,1\}$/\1/p' "$1" \
    | head -n 1
}

json_str() {
  sed -n 's/^  "'"$2"'": "\(.*\)",\{0,1\}$/\1/p' "$1" | head -n 1
}

# Diff two captures: identical work counters are a precondition (different
# counters mean the runs did different work, so events/s is meaningless),
# then gate on the events/s regression threshold.
compare_captures() {
  local a="$1" b="$2" threshold="$3" f key va vb
  for f in "$a" "$b"; do
    [ -r "$f" ] || { echo "bench.sh: cannot read capture $f" >&2; exit 2; }
  done
  va="$(json_str "$a" name)"; vb="$(json_str "$b" name)"
  if [ "$va" != "$vb" ]; then
    echo "bench.sh: comparing different benches: '$va' vs '$vb'" >&2
    exit 2
  fi
  local mismatched=0
  for key in events rematch_count tasks_completed; do
    va="$(json_num "$a" "$key")"; vb="$(json_num "$b" "$key")"
    if [ "$va" != "$vb" ]; then
      echo "counter mismatch: $key = ${va:-absent} vs ${vb:-absent}" >&2
      mismatched=1
    fi
  done
  if [ "$mismatched" -ne 0 ]; then
    echo "bench.sh: captures did different work; not comparable" >&2
    exit 2
  fi
  va="$(json_num "$a" events_per_sec)"; vb="$(json_num "$b" events_per_sec)"
  if [ -z "$va" ] || [ -z "$vb" ]; then
    echo "bench.sh: capture lacks events_per_sec" >&2
    exit 2
  fi
  awk -v a="$va" -v b="$vb" -v thr="$threshold" -v na="$a" -v nb="$b" '
    BEGIN {
      delta = (b - a) / a * 100.0
      printf "%s: %.0f events/s\n%s: %.0f events/s\n", na, a, nb, b
      if (delta < -thr) {
        printf "REGRESSION: %+.2f%% events/s (threshold -%g%%)\n", delta, thr
        exit 1
      }
      printf "ok: %+.2f%% events/s (threshold -%g%%)\n", delta, thr
    }'
}

OUT="bench-results"
SCALE=1
REPEATS=3
WARMUP=1
LABEL=""
PERF=0
COMPARE_A=""
COMPARE_B=""
THRESHOLD=5
SHARDS="${ISCOPE_SHARDS:-1}"
SHARD_WORKERS="${ISCOPE_SHARD_WORKERS:-1}"
THERMAL="${ISCOPE_THERMAL:-0}"
SLEEP_POLICY="${ISCOPE_SLEEP_POLICY:-}"
while [ $# -gt 0 ]; do
  case "$1" in
    -o) [ $# -ge 2 ] || usage; OUT="$2"; shift 2 ;;
    -s) [ $# -ge 2 ] || usage; SCALE="$2"; shift 2 ;;
    -r) [ $# -ge 2 ] || usage; REPEATS="$2"; shift 2 ;;
    -w) [ $# -ge 2 ] || usage; WARMUP="$2"; shift 2 ;;
    -l|--label) [ $# -ge 2 ] || usage; LABEL="$2"; shift 2 ;;
    --shards) [ $# -ge 2 ] || usage; SHARDS="$2"; shift 2 ;;
    --shard-workers) [ $# -ge 2 ] || usage; SHARD_WORKERS="$2"; shift 2 ;;
    --thermal) THERMAL=1; shift ;;
    --sleep-policy) [ $# -ge 2 ] || usage; SLEEP_POLICY="$2"; shift 2 ;;
    --perf) PERF=1; shift ;;
    --compare) [ $# -ge 3 ] || usage; COMPARE_A="$2"; COMPARE_B="$3"; shift 3 ;;
    --threshold) [ $# -ge 2 ] || usage; THRESHOLD="$2"; shift 2 ;;
    --) shift; break ;;
    -*) usage ;;
    *) break ;;
  esac
done

if [ -n "$COMPARE_A" ]; then
  compare_captures "$COMPARE_A" "$COMPARE_B" "$THRESHOLD"
  exit 0
fi
BENCHES=("$@")
if [ "${#BENCHES[@]}" -eq 0 ]; then
  BENCHES=(bench_fig8_energy_cost bench_fig6_wind_utility)
fi

JOBS="$(nproc 2>/dev/null || echo 2)"
cmake -B build-bench -S . > /dev/null
cmake --build build-bench -j "$JOBS" --target "${BENCHES[@]}"

mkdir -p "$OUT"
for bench in "${BENCHES[@]}"; do
  echo "==== $bench (scale $SCALE, $WARMUP warmup + $REPEATS timed) ===="
  ISCOPE_BENCH_JSON="$OUT" ISCOPE_BENCH_REPEAT="$REPEATS" \
  ISCOPE_BENCH_WARMUP="$WARMUP" ISCOPE_SCALE="$SCALE" ISCOPE_PARALLEL=1 \
  ISCOPE_BENCH_LABEL="$LABEL" ISCOPE_BENCH_PERF="$PERF" \
  ISCOPE_SHARDS="$SHARDS" ISCOPE_SHARD_WORKERS="$SHARD_WORKERS" \
  ISCOPE_THERMAL="$THERMAL" ISCOPE_SLEEP_POLICY="$SLEEP_POLICY" \
      "build-bench/bench/$bench" | tail -1
done

echo "==== captures in $OUT/ ===="
ls -1 "$OUT"/BENCH_*.json
