#!/usr/bin/env bash
# Machine-readable benchmark runner: builds the bench binaries and captures
# BENCH_<name>.json trajectories (wall time, events/sec, rematch count,
# peak RSS -- schema in src/common/bench_json.hpp).
#
# Usage:  tools/bench.sh [options] [bench...]
#   -o outdir    where the JSON lands               (default bench-results/)
#   -s scale     ISCOPE_SCALE facility scale        (default 1)
#   -r repeats   timed iterations per bench         (default 3)
#   -w warmup    untimed iterations per bench       (default 1)
#   -l label     tag the captures (optional "label" key in the JSON;
#   --label      e.g. -l faults-on for an ISCOPE_FAULTS run)
#   --shards N   ISCOPE_SHARDS shard count          (default 1 = legacy loop)
#   --shard-workers W  ISCOPE_SHARD_WORKERS         (default 1; 0 = hw threads)
#   bench...     bench binary names                 (default: the JSON-wired
#                set: bench_fig8_energy_cost bench_fig6_wind_utility)
#
# Fault-injection env knobs (ISCOPE_FAULTS, ISCOPE_FAULT_SEED) and the
# hyperscale preset size (ISCOPE_HYPERSCALE_PROCS, bench_shard_scaling
# only) pass through to the bench binaries; combine with -l to keep
# captures distinguishable (the committed scaling curve uses -l shards_N).
#
# The build tree is build-bench/ (tier-1 flags, RelWithDebInfo) so the
# developer's build/ directory is untouched. Runs are serial
# (ISCOPE_PARALLEL=1): wall time then measures the hot path, not the pool.
set -euo pipefail

cd "$(dirname "$0")/.."

usage() {
  echo "usage: tools/bench.sh [-o outdir] [-s scale] [-r repeats] [-w warmup] [-l label] [--shards N] [--shard-workers W] [bench...]" >&2
  exit 2
}

OUT="bench-results"
SCALE=1
REPEATS=3
WARMUP=1
LABEL=""
SHARDS="${ISCOPE_SHARDS:-1}"
SHARD_WORKERS="${ISCOPE_SHARD_WORKERS:-1}"
while [ $# -gt 0 ]; do
  case "$1" in
    -o) [ $# -ge 2 ] || usage; OUT="$2"; shift 2 ;;
    -s) [ $# -ge 2 ] || usage; SCALE="$2"; shift 2 ;;
    -r) [ $# -ge 2 ] || usage; REPEATS="$2"; shift 2 ;;
    -w) [ $# -ge 2 ] || usage; WARMUP="$2"; shift 2 ;;
    -l|--label) [ $# -ge 2 ] || usage; LABEL="$2"; shift 2 ;;
    --shards) [ $# -ge 2 ] || usage; SHARDS="$2"; shift 2 ;;
    --shard-workers) [ $# -ge 2 ] || usage; SHARD_WORKERS="$2"; shift 2 ;;
    --) shift; break ;;
    -*) usage ;;
    *) break ;;
  esac
done
BENCHES=("$@")
if [ "${#BENCHES[@]}" -eq 0 ]; then
  BENCHES=(bench_fig8_energy_cost bench_fig6_wind_utility)
fi

JOBS="$(nproc 2>/dev/null || echo 2)"
cmake -B build-bench -S . > /dev/null
cmake --build build-bench -j "$JOBS" --target "${BENCHES[@]}"

mkdir -p "$OUT"
for bench in "${BENCHES[@]}"; do
  echo "==== $bench (scale $SCALE, $WARMUP warmup + $REPEATS timed) ===="
  ISCOPE_BENCH_JSON="$OUT" ISCOPE_BENCH_REPEAT="$REPEATS" \
  ISCOPE_BENCH_WARMUP="$WARMUP" ISCOPE_SCALE="$SCALE" ISCOPE_PARALLEL=1 \
  ISCOPE_BENCH_LABEL="$LABEL" \
  ISCOPE_SHARDS="$SHARDS" ISCOPE_SHARD_WORKERS="$SHARD_WORKERS" \
      "build-bench/bench/$bench" | tail -1
done

echo "==== captures in $OUT/ ===="
ls -1 "$OUT"/BENCH_*.json
