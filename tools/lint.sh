#!/usr/bin/env bash
# Developer entry point for the project linter (tools/lint/, DESIGN.md
# Sec. 13): builds iscope_lint, lints the tree, and diffs the result
# against the committed baseline -- only findings NOT in the baseline fail
# the run. The baseline (tools/lint/baseline.json) is kept empty at merge;
# a non-empty one is temporary debt under review.
#
# Usage:  tools/lint.sh [--update-baseline] [paths...]
#   --update-baseline  rewrite tools/lint/baseline.json from the current
#                      findings (review the diff before committing!)
#   paths...           lint only these paths (default: src tests bench
#                      examples)
#
# The machine-readable report lands in build-check/lint-report.json either
# way. Exit codes follow iscope_lint: 0 clean, 1 new findings, 2 usage/IO.
set -euo pipefail

cd "$(dirname "$0")/.."

UPDATE=0
PATHS=()
for arg in "$@"; do
  case "$arg" in
    --update-baseline) UPDATE=1 ;;
    --help|-h) sed -n '2,16p' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    -*) echo "unknown argument: $arg (see --help)" >&2; exit 2 ;;
    *) PATHS+=("$arg") ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"
BASELINE="tools/lint/baseline.json"
REPORT="build-check/lint-report.json"

cmake -B build-check/strict -S . \
      -DISCOPE_WERROR=ON -DISCOPE_AUDIT=ON > /dev/null
cmake --build build-check/strict -j "$JOBS" --target iscope_lint > /dev/null
LINT=./build-check/strict/tools/lint/iscope_lint
mkdir -p "$(dirname "$REPORT")"

if [ "$UPDATE" -eq 1 ]; then
  # Capture the un-baselined findings as the new baseline. A failing lint
  # run here is expected -- that is what the baseline is for.
  "$LINT" --root . --json "$BASELINE" -q "${PATHS[@]+"${PATHS[@]}"}" \
      || true
  cp "$BASELINE" "$REPORT"
  N="$(grep -c '"check"' "$BASELINE" || true)"
  echo "baseline updated: $BASELINE ($N finding(s)); review before committing"
  exit 0
fi

"$LINT" --root . --baseline "$BASELINE" --json "$REPORT" \
    "${PATHS[@]+"${PATHS[@]}"}"
