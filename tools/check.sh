#!/usr/bin/env bash
# One-stop verification gate: strict build, full test suite, clang-tidy
# (when installed) and an UndefinedBehaviorSanitizer pass over the tests.
#
# Usage:  tools/check.sh [--fast]
#   --fast   skip the UBSan rebuild (strict build + tests + tidy only)
#
# Exits non-zero on the first failing stage. Build trees are kept under
# build-check/ so the developer's main build/ directory is untouched.
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"

stage() { printf '\n==== %s ====\n' "$1"; }

stage "strict build (-Werror -Wconversion -Wdouble-promotion, audit on)"
cmake -B build-check/strict -S . \
      -DISCOPE_WERROR=ON -DISCOPE_AUDIT=ON > /dev/null
cmake --build build-check/strict -j "$JOBS"

stage "tests (strict build)"
ctest --test-dir build-check/strict --output-on-failure

stage "bench smoke (BENCH_*.json emission)"
BENCH_DIR="build-check/bench-smoke"
mkdir -p "$BENCH_DIR"
ISCOPE_SCALE=0.2 ISCOPE_PARALLEL=1 \
ISCOPE_BENCH_JSON="$BENCH_DIR" ISCOPE_BENCH_REPEAT=1 ISCOPE_BENCH_WARMUP=0 \
    ./build-check/strict/bench/bench_fig8_energy_cost > /dev/null
SMOKE_JSON="$BENCH_DIR/BENCH_fig8_energy_cost.json"
[ -s "$SMOKE_JSON" ] || { echo "bench smoke: $SMOKE_JSON missing" >&2; exit 1; }
grep -q '"schema_version": 1' "$SMOKE_JSON" \
    || { echo "bench smoke: $SMOKE_JSON lacks schema_version 1" >&2; exit 1; }
echo "bench capture ok: $SMOKE_JSON"

stage "clang-tidy"
if command -v clang-tidy > /dev/null 2>&1; then
  cmake -B build-check/tidy -S . -DISCOPE_CLANG_TIDY=ON > /dev/null
  cmake --build build-check/tidy -j "$JOBS"
else
  echo "clang-tidy not installed; skipping static analysis stage"
fi

if [ "$FAST" -eq 0 ]; then
  stage "UBSan build + tests"
  cmake -B build-check/ubsan -S . \
        -DISCOPE_SANITIZE=undefined -DISCOPE_AUDIT=ON > /dev/null
  cmake --build build-check/ubsan -j "$JOBS"
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
      ctest --test-dir build-check/ubsan --output-on-failure
fi

stage "all checks passed"
