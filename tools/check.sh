#!/usr/bin/env bash
# One-stop verification gate: strict build, full test suite, the smoke
# stages (benchmark JSON, telemetry bundle, shard identity, service-mode
# daemon), project lint (iscope_lint), clang-tidy (when installed),
# sanitizer passes over the tests, and a line-coverage floor for the
# fault-injection and scheduling layers.
#
# Usage:  tools/check.sh [--fast] [--stage <name>] [--help]
#   --fast          skip the UBSan/ASan/TSan rebuilds and the coverage
#                   stage (strict build + tests + smokes + lint + tidy)
#   --stage <name>  run a single named stage (plus the strict build it
#                   depends on, where applicable)
#   --help          list the stages and exit
#
# Exits non-zero on the first failing stage. Build trees are kept under
# build-check/ so the developer's main build/ directory is untouched.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
# Minimum line coverage (percent) the fault + sched layers must keep.
# Pinned from a measured 95.4%; drops below the floor mean dead branches
# crept in or the fault suites stopped exercising the recovery paths.
COVERAGE_MIN=90

# Stage registry: name -> one-line description, in default running order.
STAGES=(
  "strict          strict build (-Werror -Wconversion -Wdouble-promotion, audit on)"
  "tests           full ctest suite on the strict build"
  "bench-smoke     BENCH_*.json emission smoke (fig8 capture)"
  "telemetry-smoke report bundle + registry/SimResult cross-check"
  "shard-identity  1-shard bit-identity + worker-count determinism"
  "service         iscope_serve daemon: checkpoint identity, e2e stream-vs-batch, wire fuzz"
  "thermal         thermal/sleep off-identity + sharded thermal determinism (TSan smoke rides in the tsan stage)"
  "lint            iscope_lint project invariants (determinism/layering/quantity/telemetry)"
  "tidy            clang-tidy profile, warnings-as-errors (skips if not installed)"
  "ubsan           UBSan rebuild + full tests"
  "asan            ASan fault-injection + parser-fuzz tests"
  "tsan            TSan multi-shard smoke (fig8, 4 shards x 4 workers) + service chaos daemon"
  "coverage        src/fault + src/sched line-coverage floor (${COVERAGE_MIN}%)"
  "bench-compare   fig8 events/s vs the committed baseline (opt-in: --stage only, wall clocks are machine-relative)"
)

usage() {
  sed -n '2,16p' "$0" | sed 's/^# \{0,1\}//'
  printf '\nStages (default order; --fast stops after tidy):\n'
  for s in "${STAGES[@]}"; do printf '  %s\n' "$s"; done
}

FAST=0
ONLY_STAGE=""
while [ $# -gt 0 ]; do
  case "$1" in
    --fast) FAST=1 ;;
    --stage)
      [ $# -ge 2 ] || { echo "--stage needs a name (see --help)" >&2; exit 2; }
      ONLY_STAGE="$2"; shift ;;
    --help|-h) usage; exit 0 ;;
    *) echo "unknown argument: $1 (see --help)" >&2; exit 2 ;;
  esac
  shift
done

if [ -n "$ONLY_STAGE" ]; then
  known=0
  for s in "${STAGES[@]}"; do
    [ "${s%% *}" = "$ONLY_STAGE" ] && known=1
  done
  [ "$known" -eq 1 ] \
      || { echo "unknown stage: $ONLY_STAGE (see --help)" >&2; exit 2; }
fi

stage() { printf '\n==== %s ====\n' "$1"; }

# True when the named stage should run under the current selection.
want() {
  if [ -n "$ONLY_STAGE" ]; then [ "$1" = "$ONLY_STAGE" ]; return; fi
  case "$1" in
    ubsan|asan|tsan|coverage) [ "$FAST" -eq 0 ] ;;
    # Opt-in only: the committed baseline's wall clocks were taken on one
    # machine, so the threshold gate is meaningful there, noise elsewhere.
    bench-compare) false ;;
    *) true ;;
  esac
}

# The strict tree backs several stages; configure once, build on demand.
ensure_strict() {
  cmake -B build-check/strict -S . \
        -DISCOPE_WERROR=ON -DISCOPE_AUDIT=ON > /dev/null
  cmake --build build-check/strict -j "$JOBS" ${1:+--target "$1"}
}

stage_strict() {
  stage "strict build (-Werror -Wconversion -Wdouble-promotion, audit on)"
  ensure_strict
}

stage_tests() {
  stage "tests (strict build)"
  [ -n "$ONLY_STAGE" ] && ensure_strict > /dev/null
  ctest --test-dir build-check/strict --output-on-failure
}

stage_bench_smoke() {
  stage "bench smoke (BENCH_*.json emission)"
  [ -n "$ONLY_STAGE" ] && ensure_strict bench_fig8_energy_cost > /dev/null
  BENCH_DIR="build-check/bench-smoke"
  mkdir -p "$BENCH_DIR"
  ISCOPE_SCALE=0.2 ISCOPE_PARALLEL=1 \
  ISCOPE_BENCH_JSON="$BENCH_DIR" ISCOPE_BENCH_REPEAT=1 ISCOPE_BENCH_WARMUP=0 \
      ./build-check/strict/bench/bench_fig8_energy_cost > /dev/null
  SMOKE_JSON="$BENCH_DIR/BENCH_fig8_energy_cost.json"
  [ -s "$SMOKE_JSON" ] || { echo "bench smoke: $SMOKE_JSON missing" >&2; exit 1; }
  grep -q '"schema_version": 1' "$SMOKE_JSON" \
      || { echo "bench smoke: $SMOKE_JSON lacks schema_version 1" >&2; exit 1; }
  echo "bench capture ok: $SMOKE_JSON"
}

stage_telemetry_smoke() {
  stage "telemetry smoke (report bundle + registry/SimResult cross-check)"
  [ -n "$ONLY_STAGE" ] && ensure_strict iscope_cli > /dev/null
  TELEM_DIR="build-check/telemetry-smoke"
  rm -rf "$TELEM_DIR" && mkdir -p "$TELEM_DIR"
  ./build-check/strict/examples/iscope_cli simulate --scheme ScanEffi \
      --procs 64 --jobs 200 \
      --telemetry "$TELEM_DIR/report" --trace-out "$TELEM_DIR/trace_only.json" \
      > "$TELEM_DIR/stdout.txt"
  grep -q 'telemetry cross-check ok' "$TELEM_DIR/stdout.txt" \
      || { echo "telemetry smoke: cross-check line missing" >&2;
           cat "$TELEM_DIR/stdout.txt" >&2; exit 1; }
  for f in "$TELEM_DIR/report/metrics.prom" "$TELEM_DIR/report/metrics.json" \
           "$TELEM_DIR/report/samples.csv" "$TELEM_DIR/report/trace.json" \
           "$TELEM_DIR/trace_only.json"; do
    [ -s "$f" ] || { echo "telemetry smoke: $f missing or empty" >&2; exit 1; }
  done
  # The counters the CLI cross-checks must actually be in the exposition.
  grep -q '^iscope_sim_events_total{' "$TELEM_DIR/report/metrics.prom" \
      || { echo "telemetry smoke: iscope_sim_events_total absent" >&2; exit 1; }
  grep -q '"traceEvents"' "$TELEM_DIR/trace_only.json" \
      || { echo "telemetry smoke: trace_only.json lacks traceEvents" >&2; exit 1; }
  echo "telemetry bundle ok: $TELEM_DIR/report"
}

stage_shard_identity() {
  stage "shard identity (1-shard bit-identity + worker-count determinism)"
  [ -n "$ONLY_STAGE" ] && ensure_strict test_shard > /dev/null
  # The sharded simulator's hard invariant (DESIGN.md Sec. 12): one shard is
  # bit-identical to the legacy event loop across all five schemes, and
  # N-shard results do not move by a bit with the worker count.
  ./build-check/strict/tests/test_shard \
      --gtest_filter='ShardIdentity.*:ShardDeterminism.*' > /dev/null \
      || { echo "shard identity: test_shard invariants failed" >&2; exit 1; }
  echo "shard identity ok: 1-shard bitwise, N-shard worker-independent"
}

stage_service() {
  stage "service mode (iscope_serve: checkpoint identity, e2e stream-vs-batch, wire fuzz)"
  [ -n "$ONLY_STAGE" ] && ensure_strict > /dev/null
  # The daemon's three invariants (DESIGN.md Sec. 15): a restored checkpoint
  # replays bit-identically, the streamed decision path equals a batch run,
  # and the wire/checkpoint codecs reject hostile bytes as typed errors.
  ./build-check/strict/tests/test_checkpoint > /dev/null \
      && echo "service ok: checkpoint identity (resume bitwise, 5 schemes)"
  ./build-check/strict/tests/test_service_e2e > /dev/null \
      && echo "service ok: daemon e2e (streamed decisions == batch, SIGTERM resume)"
  ./build-check/strict/tests/test_fuzz_parsers --gtest_filter='*Service*' \
      > /dev/null \
      && echo "service ok: wire + checkpoint fuzz corpus"
}

stage_thermal() {
  stage "thermal (off-identity + accounting + sharded determinism + sleep)"
  [ -n "$ONLY_STAGE" ] && ensure_strict test_thermal > /dev/null
  # The subsystem's hard invariant (DESIGN.md Sec. 16): thermal disabled +
  # sleep off is bit-identical to the pre-subsystem tree, and N-shard
  # thermal runs are worker-count independent (coordinator-resolved CRAC).
  ./build-check/strict/tests/test_thermal \
      --gtest_filter='ThermalOffIdentity.*:ThermalDeterminism.*' > /dev/null \
      || { echo "thermal: identity/determinism suites failed" >&2; exit 1; }
  echo "thermal ok: off-identity bitwise, sharded runs worker-independent"
  ./build-check/strict/tests/test_thermal \
      --gtest_filter='-ThermalOffIdentity.*:ThermalDeterminism.*' > /dev/null \
      || { echo "thermal: model/accounting/scheme suites failed" >&2; exit 1; }
  echo "thermal ok: CRAC model, cooling/sleep accounting, ScanTherm schemes"
}

stage_lint() {
  stage "lint (iscope_lint: determinism / layering / quantity / telemetry)"
  # The project linter (tools/lint/, DESIGN.md Sec. 13): the tree must be
  # clean modulo the committed baseline (empty at merge). Fails with
  # file:line diagnostics naming the violated check.
  cmake -B build-check/strict -S . \
        -DISCOPE_WERROR=ON -DISCOPE_AUDIT=ON > /dev/null
  cmake --build build-check/strict -j "$JOBS" --target iscope_lint
  ./build-check/strict/tools/lint/iscope_lint --root . \
      --baseline tools/lint/baseline.json src tests bench examples
}

stage_tidy() {
  stage "clang-tidy (warnings as errors)"
  if command -v clang-tidy > /dev/null 2>&1; then
    cmake -B build-check/tidy -S . \
          -DISCOPE_CLANG_TIDY=ON -DISCOPE_CLANG_TIDY_WERROR=ON > /dev/null
    cmake --build build-check/tidy -j "$JOBS"
  else
    echo "clang-tidy not installed; skipping static analysis stage"
  fi
}

stage_ubsan() {
  stage "UBSan build + tests"
  cmake -B build-check/ubsan -S . \
        -DISCOPE_SANITIZE=undefined -DISCOPE_AUDIT=ON > /dev/null
  cmake --build build-check/ubsan -j "$JOBS"
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
      ctest --test-dir build-check/ubsan --output-on-failure
}

stage_asan() {
  stage "ASan fault-injection + parser-fuzz tests"
  # Targeted: the suites that stress failure paths, requeue bookkeeping,
  # and hostile parser inputs -- where lifetime bugs would hide.
  ASAN_TESTS="test_fault test_fuzz_parsers test_properties"
  cmake -B build-check/asan -S . \
        -DISCOPE_SANITIZE=address -DISCOPE_AUDIT=ON > /dev/null
  # shellcheck disable=SC2086
  cmake --build build-check/asan -j "$JOBS" --target $ASAN_TESTS
  for t in $ASAN_TESTS; do
    ASAN_OPTIONS=halt_on_error=1 "./build-check/asan/tests/$t" > /dev/null \
        && echo "asan ok: $t"
  done
}

stage_tsan() {
  stage "TSan multi-shard smoke (fig8, 4 shards x 4 workers) + service chaos"
  # Epoch-barrier handoff under real thread interleaving: the fig8 energy
  # scenario at scale 0.5 (240 CPUs = 5 racks, so 4 rack-aligned shards
  # fit) with the shard loops fanned out over 4 pool workers. Any data
  # race on the shard queues, supply views, or telemetry sinks trips TSan.
  cmake -B build-check/tsan -S . \
        -DISCOPE_SANITIZE=thread -DISCOPE_AUDIT=ON > /dev/null
  cmake --build build-check/tsan -j "$JOBS" \
        --target bench_fig8_energy_cost test_shard test_service_chaos
  TSAN_OPTIONS=halt_on_error=1 \
      ./build-check/tsan/tests/test_shard \
      --gtest_filter='ShardDeterminism.*' > /dev/null \
      && echo "tsan ok: test_shard worker determinism"
  TSAN_OPTIONS=halt_on_error=1 \
  ISCOPE_SCALE=0.5 ISCOPE_PARALLEL=1 ISCOPE_SHARDS=4 ISCOPE_SHARD_WORKERS=4 \
      ./build-check/tsan/bench/bench_fig8_energy_cost > /dev/null \
      && echo "tsan ok: bench_fig8_energy_cost sharded"
  # Same partition with the thermal/CRAC model and the timeout sleep
  # governor armed: the coordinator-resolved thermal step and the sleep
  # event chains must survive real thread interleaving (thermal stage's
  # TSan half).
  TSAN_OPTIONS=halt_on_error=1 \
  ISCOPE_SCALE=0.5 ISCOPE_PARALLEL=1 ISCOPE_SHARDS=4 ISCOPE_SHARD_WORKERS=4 \
  ISCOPE_THERMAL=1 ISCOPE_SLEEP_POLICY=timeout \
      ./build-check/tsan/bench/bench_fig8_energy_cost > /dev/null \
      && echo "tsan ok: bench_fig8_energy_cost sharded thermal+sleep"
  # FaultSpec replay against the live daemon: the poll loop, the signal
  # flag, and the client interplay are raced-checked end to end.
  TSAN_OPTIONS=halt_on_error=1 \
      ./build-check/tsan/tests/test_service_chaos > /dev/null \
      && echo "tsan ok: test_service_chaos daemon under fault storm"
}

stage_coverage() {
  stage "coverage floor (src/fault + src/sched >= ${COVERAGE_MIN}% lines)"
  COV_TESTS="test_fault test_knowledge test_policy test_simulator \
             test_match_equivalence test_properties"
  cmake -B build-check/coverage -S . -DISCOPE_COVERAGE=ON > /dev/null
  # shellcheck disable=SC2086
  cmake --build build-check/coverage -j "$JOBS" --target $COV_TESTS
  for t in $COV_TESTS; do
    "./build-check/coverage/tests/$t" > /dev/null
  done
  # Aggregate gcov line coverage over the gated directories. gcov prints a
  # `File '...'` header followed by its `Lines executed:P% of N` summary;
  # trailing per-object aggregates have no File header and are skipped.
  COV_WORK="build-check/coverage/gcov-work"
  rm -rf "$COV_WORK" && mkdir -p "$COV_WORK"
  find "$PWD/build-check/coverage/src/fault" \
       "$PWD/build-check/coverage/src/sched" -name '*.gcda' \
    | (cd "$COV_WORK" && xargs gcov -n 2>/dev/null) \
    | awk -v min="$COVERAGE_MIN" '
        /^File /          { keep = ($0 ~ /src\/(fault|sched)\//) }
        /^Lines executed:/ {
          if (keep) {
            line = $0; sub(/^Lines executed:/, "", line);
            split(line, b, "% of ");
            covered += b[1] * b[2] / 100; total += b[2];
          }
          keep = 0
        }
        END {
          if (total == 0) { print "coverage: no gcov data found"; exit 1 }
          pct = covered / total * 100;
          printf "coverage: %.2f%% of %d lines (floor %s%%)\n", \
                 pct, total, min;
          exit (pct < min) ? 1 : 0
        }'
}

stage_bench_compare() {
  stage "bench compare (fig8 events/s vs committed baseline, -5% gate)"
  BASELINE="bench/baseline/BENCH_fig8_energy_cost.soa_post.json"
  [ -r "$BASELINE" ] \
      || { echo "bench compare: $BASELINE missing" >&2; exit 1; }
  # Re-capture with the baseline's exact settings (scale 1, 1 warmup + 3
  # timed, serial) and gate with the default +/-5% events/s threshold.
  # Counter equality doubles as a behavioral-identity check: a capture
  # that processed different events is an error, not a regression.
  tools/bench.sh -o build-check/bench-compare -r 3 -w 1 -l current \
      bench_fig8_energy_cost > /dev/null
  tools/bench.sh --compare "$BASELINE" \
      build-check/bench-compare/BENCH_fig8_energy_cost.current.json
}

want strict          && stage_strict
want tests           && stage_tests
want bench-smoke     && stage_bench_smoke
want telemetry-smoke && stage_telemetry_smoke
want shard-identity  && stage_shard_identity
want service         && stage_service
want thermal         && stage_thermal
want lint            && stage_lint
want tidy            && stage_tidy
want ubsan           && stage_ubsan
want asan            && stage_asan
want tsan            && stage_tsan
want coverage        && stage_coverage
want bench-compare   && stage_bench_compare

if [ -n "$ONLY_STAGE" ]; then
  stage "stage '$ONLY_STAGE' passed"
else
  stage "all checks passed"
fi
