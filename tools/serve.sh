#!/usr/bin/env bash
# Launcher for the iscope_serve scheduling daemon: builds the binary in the
# default build/ tree (configuring it first if absent) and execs it with
# the given flags. A default --socket is supplied when none is passed, so
#
#   tools/serve.sh --scheme ScanEffi --battery
#
# is enough to get a daemon listening. All flags pass through verbatim:
#
#   --socket PATH        unix socket to listen on
#                        (default /tmp/iscope_serve_$UID.sock)
#   --scheme NAME        scheduling scheme        (default ScanFair)
#   --scale F            facility scale factor    (default 1.0)
#   --seed N             run seed                 (default 2015)
#   --no-wind            utility-only supply
#   --battery            attach the battery model
#   --faults SPEC        fault spec, e.g. mtbf=30000,repair=600
#   --checkpoint PATH    where SIGTERM snapshots land; with --resume,
#                        restore from it at startup
#   --resume             restore from --checkpoint before serving
#   --metrics-port N     HTTP /metrics on loopback TCP port N
#   --admit-capacity N   admission-queue bound before BUSY (default 1024)
#
# SIGTERM checkpoints (when --checkpoint is set) and exits 0; a restarted
# daemon with --resume continues the run bit-identically (DESIGN.md
# Sec. 15). Stop without a checkpoint by sending SHUTDOWN over the wire.
set -euo pipefail

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--help" ] || [ "${1:-}" = "-h" ]; then
  sed -n '2,26p' "$0" | sed 's/^# \{0,1\}//'
  exit 0
fi

[ -d build ] || cmake -B build -S . > /dev/null
cmake --build build -j "$(nproc 2>/dev/null || echo 2)" \
      --target iscope_serve > /dev/null

SOCKET_SET=0
for arg in "$@"; do
  [ "$arg" = "--socket" ] && SOCKET_SET=1
done
if [ "$SOCKET_SET" -eq 0 ]; then
  set -- --socket "/tmp/iscope_serve_$(id -u).sock" "$@"
fi

exec ./build/src/service/iscope_serve "$@"
