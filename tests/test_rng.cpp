#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.hpp"

namespace iscope {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsDeterministic) {
  Rng parent(7);
  Rng c1 = parent.fork("wind");
  Rng c2 = Rng(7).fork("wind");
  for (int i = 0; i < 50; ++i) EXPECT_EQ(c1.uniform(), c2.uniform());
}

TEST(Rng, ForkTagsGiveIndependentStreams) {
  Rng parent(7);
  Rng a = parent.fork("a");
  Rng b = parent.fork("b");
  EXPECT_NE(a.seed(), b.seed());
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a(9), b(9);
  (void)a.fork("x");
  EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(1, 6));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, NormalZeroSigmaIsDegenerate) {
  Rng rng(6);
  EXPECT_EQ(rng.normal(3.5, 0.0), 3.5);
}

TEST(Rng, TruncatedNormalRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.truncated_normal(0.0, 1.0, -0.5, 0.5);
    EXPECT_GE(x, -0.5);
    EXPECT_LE(x, 0.5);
  }
}

TEST(Rng, TruncatedNormalFarWindowClamps) {
  Rng rng(9);
  // Window 100 sigmas away: rejection gives up and clamps.
  const double x = rng.truncated_normal(0.0, 1.0, 100.0, 101.0);
  EXPECT_GE(x, 100.0);
  EXPECT_LE(x, 101.0);
}

TEST(Rng, PoissonMean) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(65.0));
  EXPECT_NEAR(sum / n, 65.0, 0.5);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(11);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, WeibullShape1IsExponential) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.weibull(1.0, 3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(14);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++heads;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(15);
  const auto p = rng.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(16);
  std::vector<int> v = {1, 2, 3, 4, 5};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ArgumentValidation) {
  Rng rng(17);
  EXPECT_THROW(rng.uniform(5.0, 2.0), InvalidArgument);
  EXPECT_THROW(rng.uniform_int(5, 2), InvalidArgument);
  EXPECT_THROW(rng.normal(0.0, -1.0), InvalidArgument);
  EXPECT_THROW(rng.exponential(0.0), InvalidArgument);
  EXPECT_THROW(rng.poisson(-1.0), InvalidArgument);
  EXPECT_THROW(rng.weibull(0.0, 1.0), InvalidArgument);
  EXPECT_THROW(rng.bernoulli(1.5), InvalidArgument);
}

TEST(Rng, SplitMix64Avalanche) {
  // Neighboring inputs produce wildly different outputs.
  const std::uint64_t a = splitmix64(1);
  const std::uint64_t b = splitmix64(2);
  int diff_bits = 0;
  for (std::uint64_t x = a ^ b; x != 0; x >>= 1) diff_bits += x & 1;
  EXPECT_GT(diff_bits, 16);
}

}  // namespace
}  // namespace iscope
