#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "workload/synthetic.hpp"
#include "workload/task.hpp"
#include "workload/urgency.hpp"

namespace iscope {
namespace {

Task make_task(double runtime = 100.0, double gamma = 1.0) {
  Task t;
  t.id = 1;
  t.submit_s = 10.0;
  t.cpus = 4;
  t.runtime_s = runtime;
  t.gamma = gamma;
  t.deadline_s = t.submit_s + 12.0 * runtime;
  return t;
}

// --------------------------------------------------------------- Eq-3

TEST(TaskEq3, FullyCpuBoundIsInverse) {
  const Task t = make_task(100.0, 1.0);
  // gamma = 1: halving frequency doubles execution time.
  EXPECT_DOUBLE_EQ(t.exec_time_s(1.0, 2.0), 200.0);
  EXPECT_DOUBLE_EQ(t.exec_time_s(2.0, 2.0), 100.0);
}

TEST(TaskEq3, NonCpuBoundUnaffected) {
  const Task t = make_task(100.0, 0.0);
  // gamma = 0: frequency does not matter.
  EXPECT_DOUBLE_EQ(t.exec_time_s(0.75, 2.0), 100.0);
}

TEST(TaskEq3, IntermediateGamma) {
  const Task t = make_task(100.0, 0.5);
  // T(f) = 100 * (0.5*(2/1 - 1) + 1) = 150.
  EXPECT_DOUBLE_EQ(t.exec_time_s(1.0, 2.0), 150.0);
}

TEST(TaskEq3, SlowdownMonotoneInFrequencyDrop) {
  const Task t = make_task(100.0, 0.7);
  double prev = 0.0;
  for (double f = 2.0; f >= 0.75; f -= 0.25) {
    const double s = t.slowdown(f, 2.0);
    EXPECT_GE(s, prev >= 1.0 ? 1.0 : 0.0);
    EXPECT_GE(s, 1.0 - 1e-12);
    if (prev > 0.0) {
      EXPECT_GE(s, prev);
    }
    prev = s;
  }
}

TEST(TaskEq3, LatestStart) {
  const Task t = make_task(100.0, 1.0);  // deadline = 10 + 1200
  EXPECT_DOUBLE_EQ(t.latest_start_s(2.0, 2.0), 1210.0 - 100.0);
  EXPECT_DOUBLE_EQ(t.latest_start_s(1.0, 2.0), 1210.0 - 200.0);
}

TEST(TaskEq3, Validation) {
  const Task t = make_task();
  EXPECT_THROW(t.slowdown(0.0, 2.0), InvalidArgument);
  EXPECT_THROW(t.slowdown(3.0, 2.0), InvalidArgument);  // above fmax
}

// ----------------------------------------------------------- task utils

TEST(TaskUtils, ValidateCatchesBadTasks) {
  std::vector<Task> ok = {make_task()};
  EXPECT_NO_THROW(validate_tasks(ok));
  auto bad = ok;
  bad[0].runtime_s = 0.0;
  EXPECT_THROW(validate_tasks(bad), InvalidArgument);
  bad = ok;
  bad[0].cpus = 0;
  EXPECT_THROW(validate_tasks(bad), InvalidArgument);
  bad = ok;
  bad[0].deadline_s = bad[0].submit_s;
  EXPECT_THROW(validate_tasks(bad), InvalidArgument);
  bad = ok;
  bad[0].gamma = 1.5;
  EXPECT_THROW(validate_tasks(bad), InvalidArgument);
}

TEST(TaskUtils, SortBySubmitStable) {
  std::vector<Task> tasks(3, make_task());
  tasks[0].submit_s = 30.0;
  tasks[0].id = 1;
  tasks[1].submit_s = 10.0;
  tasks[1].id = 2;
  tasks[2].submit_s = 10.0;
  tasks[2].id = 3;
  for (auto& t : tasks) t.deadline_s = t.submit_s + 100.0;
  sort_by_submit(tasks);
  EXPECT_EQ(tasks[0].id, 2);
  EXPECT_EQ(tasks[1].id, 3);  // stable: keeps input order on ties
  EXPECT_EQ(tasks[2].id, 1);
}

TEST(TaskUtils, ArrivalScalingKeepsSlack) {
  std::vector<Task> tasks = {make_task()};
  const double slack = tasks[0].deadline_s - tasks[0].submit_s;
  const auto scaled = scale_arrival_rate(tasks, 5.0);
  // "arrival rate of 5X => submit time is 20% of the origin" (Sec. V-D).
  EXPECT_DOUBLE_EQ(scaled[0].submit_s, 2.0);
  EXPECT_DOUBLE_EQ(scaled[0].deadline_s - scaled[0].submit_s, slack);
  EXPECT_THROW(scale_arrival_rate(tasks, 0.0), InvalidArgument);
}

TEST(TaskUtils, ClampWidths) {
  std::vector<Task> tasks = {make_task()};
  tasks[0].cpus = 4096;
  const auto clamped = clamp_widths(tasks, 100);
  EXPECT_EQ(clamped[0].cpus, 100u);
  EXPECT_THROW(clamp_widths(tasks, 0), InvalidArgument);
}

// ------------------------------------------------------------- generator

TEST(Synthetic, GeneratesRequestedJobs) {
  SyntheticWorkloadConfig cfg;
  cfg.num_jobs = 500;
  const auto tasks = generate_workload(cfg);
  EXPECT_EQ(tasks.size(), 500u);
  EXPECT_NO_THROW(validate_tasks(tasks));
}

TEST(Synthetic, SubmitTimesAscend) {
  const auto tasks = generate_workload(SyntheticWorkloadConfig{});
  for (std::size_t i = 1; i < tasks.size(); ++i)
    EXPECT_GE(tasks[i].submit_s, tasks[i - 1].submit_s);
}

TEST(Synthetic, WidthsWithinCap) {
  SyntheticWorkloadConfig cfg;
  cfg.max_cpus = 64;
  for (const Task& t : generate_workload(cfg)) {
    EXPECT_GE(t.cpus, 1u);
    EXPECT_LE(t.cpus, 64u);
  }
}

TEST(Synthetic, GammaWithinConfiguredRange) {
  SyntheticWorkloadConfig cfg;
  cfg.gamma_lo = 0.6;
  cfg.gamma_hi = 0.9;
  for (const Task& t : generate_workload(cfg)) {
    EXPECT_GE(t.gamma, 0.6);
    EXPECT_LE(t.gamma, 0.9);
  }
}

TEST(Synthetic, Deterministic) {
  SyntheticWorkloadConfig cfg;
  const auto a = generate_workload(cfg);
  const auto b = generate_workload(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submit_s, b[i].submit_s);
    EXPECT_EQ(a[i].cpus, b[i].cpus);
    EXPECT_EQ(a[i].runtime_s, b[i].runtime_s);
  }
}

TEST(Synthetic, PowerOfTwoWidthsDominate) {
  SyntheticWorkloadConfig cfg;
  cfg.num_jobs = 2000;
  cfg.pow2_fraction = 0.85;
  std::size_t pow2 = 0;
  for (const Task& t : generate_workload(cfg)) {
    if ((t.cpus & (t.cpus - 1)) == 0) ++pow2;
  }
  EXPECT_GT(static_cast<double>(pow2) / 2000.0, 0.7);
}

TEST(Synthetic, DiurnalArrivalSwing) {
  SyntheticWorkloadConfig cfg;
  cfg.num_jobs = 6000;
  cfg.diurnal_amplitude = 0.9;
  cfg.mean_interarrival_s = 30.0;
  const auto tasks = generate_workload(cfg);
  // Bucket arrivals by hour-of-day; the peak hour should see far more
  // arrivals than the trough.
  std::vector<double> per_hour(24, 0.0);
  for (const Task& t : tasks)
    per_hour[static_cast<std::size_t>(std::fmod(t.submit_s / 3600.0, 24.0))] +=
        1.0;
  double lo = 1e18, hi = 0.0;
  for (const double c : per_hour) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_GT(hi, 2.0 * lo);
}

TEST(Synthetic, Validation) {
  SyntheticWorkloadConfig cfg;
  cfg.num_jobs = 0;
  EXPECT_THROW(generate_workload(cfg), InvalidArgument);
  cfg = SyntheticWorkloadConfig{};
  cfg.diurnal_amplitude = 1.0;
  EXPECT_THROW(generate_workload(cfg), InvalidArgument);
  cfg = SyntheticWorkloadConfig{};
  cfg.gamma_lo = 0.9;
  cfg.gamma_hi = 0.5;
  EXPECT_THROW(generate_workload(cfg), InvalidArgument);
}

// --------------------------------------------------------------- demand

TEST(DemandFraction, CountsOverlappingJobs) {
  std::vector<Task> tasks(2, make_task());
  tasks[0].submit_s = 0.0;
  tasks[0].runtime_s = 120.0;  // minutes 0-1
  tasks[0].cpus = 10;
  tasks[0].deadline_s = 1e4;
  tasks[1].submit_s = 60.0;
  tasks[1].runtime_s = 60.0;   // minute 1
  tasks[1].cpus = 30;
  tasks[1].deadline_s = 1e4;
  const auto d = demanded_cpu_fraction_per_minute(tasks, 100, 240.0);
  ASSERT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d[0], 0.10);
  EXPECT_DOUBLE_EQ(d[1], 0.40);
  EXPECT_DOUBLE_EQ(d[2], 0.0);  // both end exactly at the minute-2 boundary
  EXPECT_DOUBLE_EQ(d[3], 0.0);
}

TEST(DemandFraction, CapsAtOne) {
  std::vector<Task> tasks = {make_task()};
  tasks[0].cpus = 500;
  tasks[0].runtime_s = 60.0;
  tasks[0].submit_s = 0.0;
  tasks[0].deadline_s = 1e4;
  const auto d = demanded_cpu_fraction_per_minute(tasks, 100, 120.0);
  EXPECT_DOUBLE_EQ(d[0], 1.0);
}

// -------------------------------------------------------------- urgency

TEST(Urgency, HuFractionRespected) {
  auto tasks = generate_workload(SyntheticWorkloadConfig{});
  UrgencyConfig cfg;
  cfg.hu_fraction = 0.3;
  assign_deadlines(tasks, cfg);
  EXPECT_NEAR(hu_fraction(tasks), 0.3, 0.05);
}

TEST(Urgency, ExtremesAllOrNone) {
  auto tasks = generate_workload(SyntheticWorkloadConfig{});
  UrgencyConfig cfg;
  cfg.hu_fraction = 0.0;
  assign_deadlines(tasks, cfg);
  EXPECT_DOUBLE_EQ(hu_fraction(tasks), 0.0);
  cfg.hu_fraction = 1.0;
  assign_deadlines(tasks, cfg);
  EXPECT_DOUBLE_EQ(hu_fraction(tasks), 1.0);
}

TEST(Urgency, DeadlinesFeasibleAtFmax) {
  auto tasks = generate_workload(SyntheticWorkloadConfig{});
  UrgencyConfig cfg;
  cfg.hu_fraction = 0.5;
  assign_deadlines(tasks, cfg);
  for (const Task& t : tasks)
    EXPECT_GE(t.deadline_s - t.submit_s,
              cfg.min_multiplier * t.runtime_s - 1e-9);
}

TEST(Urgency, HuTighterThanLu) {
  auto tasks = generate_workload(SyntheticWorkloadConfig{});
  UrgencyConfig cfg;
  cfg.hu_fraction = 0.5;
  assign_deadlines(tasks, cfg);
  RunningStats hu_mult, lu_mult;
  for (const Task& t : tasks) {
    const double m = (t.deadline_s - t.submit_s) / t.runtime_s;
    (t.urgency == Urgency::kHigh ? hu_mult : lu_mult).add(m);
  }
  // Paper Sec. V-D: HU ~ Normal(4, var 2), LU ~ Normal(12, var 2).
  EXPECT_NEAR(hu_mult.mean(), 4.0, 0.3);
  EXPECT_NEAR(lu_mult.mean(), 12.0, 0.3);
  EXPECT_LT(hu_mult.mean(), lu_mult.mean());
}

TEST(Urgency, Deterministic) {
  auto a = generate_workload(SyntheticWorkloadConfig{});
  auto b = a;
  UrgencyConfig cfg;
  assign_deadlines(a, cfg);
  assign_deadlines(b, cfg);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].deadline_s, b[i].deadline_s);
}

TEST(Urgency, Validation) {
  UrgencyConfig cfg;
  cfg.hu_fraction = 1.5;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = UrgencyConfig{};
  cfg.min_multiplier = 0.5;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

}  // namespace
}  // namespace iscope
