#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace iscope {
namespace {

TEST(CsvParse, SimpleRows) {
  const auto doc = parse_csv("a,b,c\n1,2,3\n4,5,6\n", true);
  ASSERT_EQ(doc.header.size(), 3u);
  EXPECT_EQ(doc.header[1], "b");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][2], "6");
}

TEST(CsvParse, NoHeader) {
  const auto doc = parse_csv("1,2\n3,4\n", false);
  EXPECT_TRUE(doc.header.empty());
  ASSERT_EQ(doc.rows.size(), 2u);
}

TEST(CsvParse, QuotedFieldsWithCommasAndQuotes) {
  const auto doc = parse_csv("x,y\n\"a,b\",\"he said \"\"hi\"\"\"\n", true);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "a,b");
  EXPECT_EQ(doc.rows[0][1], "he said \"hi\"");
}

TEST(CsvParse, QuotedNewline) {
  const auto doc = parse_csv("x\n\"line1\nline2\"\n", true);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "line1\nline2");
}

TEST(CsvParse, CommentsSkipped) {
  const auto doc = parse_csv("# comment\na,b\n# another\n1,2\n", true);
  EXPECT_EQ(doc.header[0], "a");
  ASSERT_EQ(doc.rows.size(), 1u);
}

TEST(CsvParse, CrLfHandled) {
  const auto doc = parse_csv("a,b\r\n1,2\r\n", true);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(CsvParse, MissingFinalNewline) {
  const auto doc = parse_csv("a\n42", true);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "42");
}

TEST(CsvParse, EmptyFieldsPreserved) {
  const auto doc = parse_csv("a,b,c\n1,,3\n", true);
  ASSERT_EQ(doc.rows[0].size(), 3u);
  EXPECT_EQ(doc.rows[0][1], "");
}

TEST(CsvParse, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("a\n\"oops\n", true), ParseError);
}

TEST(CsvDocument, ColumnLookup) {
  const auto doc = parse_csv("time_s,power_w\n0,1\n", true);
  EXPECT_EQ(doc.column("power_w"), 1u);
  EXPECT_THROW(doc.column("nope"), ParseError);
}

TEST(CsvEscape, OnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("q\"q"), "\"q\"\"q\"");
  EXPECT_EQ(csv_escape("nl\n"), "\"nl\n\"");
}

TEST(CsvWriter, RoundTrip) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"a", "b,c"});
  w.write_row({"1", "2"});
  const auto doc = parse_csv(out.str(), true);
  EXPECT_EQ(doc.header[1], "b,c");
  EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(CsvWriter, NumericPrecisionRoundTrips) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row_numeric({1.0 / 3.0, 6.02e23});
  const auto doc = parse_csv(out.str(), false);
  EXPECT_NEAR(parse_double(doc.rows[0][0]), 1.0 / 3.0, 1e-11);
  EXPECT_NEAR(parse_double(doc.rows[0][1]) / 6.02e23, 1.0, 1e-11);
}

TEST(ParseNumbers, Strict) {
  EXPECT_DOUBLE_EQ(parse_double("3.25"), 3.25);
  EXPECT_EQ(parse_int("-42"), -42);
  EXPECT_THROW(parse_double(""), ParseError);
  EXPECT_THROW(parse_double("1.2x"), ParseError);
  EXPECT_THROW(parse_int("3.5"), ParseError);
  EXPECT_THROW(parse_int(""), ParseError);
}

TEST(CsvFile, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path.csv", true), ParseError);
}

}  // namespace
}  // namespace iscope
