#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace iscope {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  q.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesRunInInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i)
    q.schedule(5.0, [&fired, i] { fired.push_back(i); });
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, HandlersCanScheduleMore) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) q.schedule(q.now() + 1.0, chain);
  };
  q.schedule(0.0, chain);
  q.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, SchedulingIntoPastThrows) {
  EventQueue q;
  q.schedule(10.0, [] {});
  q.step();
  EXPECT_THROW(q.schedule(5.0, [] {}), InvalidArgument);
  // Same-time scheduling is fine.
  EXPECT_NO_THROW(q.schedule(10.0, [] {}));
}

TEST(EventQueue, NullHandlerThrows) {
  EventQueue q;
  EXPECT_THROW(q.schedule(1.0, EventQueue::Handler{}), InvalidArgument);
}

TEST(EventQueue, RunRespectsBudget) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) q.schedule(i, [] {});
  EXPECT_EQ(q.run(4), 4u);
  EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0})
    q.schedule(t, [&fired, &q] { fired.push_back(q.now()); });
  EXPECT_EQ(q.run_until(2.5), 2u);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(q.now(), 2.5);  // clock advanced to the boundary
  EXPECT_EQ(q.pending(), 2u);
}

TEST(EventQueue, RunUntilOnEmptyAdvancesClock) {
  EventQueue q;
  q.run_until(100.0);
  EXPECT_DOUBLE_EQ(q.now(), 100.0);
}

TEST(EventQueue, RunUntilBudgetExhaustionHoldsClockAtLastEvent) {
  EventQueue q;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0})
    q.schedule(t, [&fired, &q] { fired.push_back(q.now()); });
  // The budget stops the slice with events <= until_s still pending: the
  // clock must NOT jump to the boundary, or those events would sit behind
  // it and the next step() would run time backwards.
  EXPECT_EQ(q.run_until(10.0, 2), 2u);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 2u);
  // Resuming the slice completes it and only then parks at the boundary.
  EXPECT_EQ(q.run_until(10.0, SIZE_MAX), 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, WakePendingAtSliceBoundarySurvivesBudgetStop) {
  // Regression (extends the clock-vs-budget fix): a kWake event sitting
  // exactly ON the slice boundary must not be skipped when max_events
  // stops run_until before reaching it -- the clock stays behind it and
  // the resumed slice delivers it.
  EventQueue q;
  std::vector<std::string> fired;
  q.schedule(1.0, EventDesc{EventDesc::Kind::kSleepEnter, 3, 0},
             [&fired] { fired.push_back("sleep"); });
  q.schedule(2.0, EventDesc{EventDesc::Kind::kEpoch, 0, 0, 2.0},
             [&fired] { fired.push_back("epoch"); });
  q.schedule(5.0, EventDesc{EventDesc::Kind::kWake, 7, 1},
             [&fired] { fired.push_back("wake"); });  // on the boundary
  EXPECT_EQ(q.run_until(5.0, 2), 2u);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);  // held at the last processed event
  ASSERT_EQ(q.pending(), 1u);
  EXPECT_DOUBLE_EQ(q.peek_time(), 5.0);
  // The resumed slice runs the wake; nothing was lost.
  EXPECT_EQ(q.run_until(5.0), 1u);
  EXPECT_EQ(fired, (std::vector<std::string>{"sleep", "epoch", "wake"}));
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueue, ThermalTiesRunBeforeSameInstantArrivals) {
  // kThermal occupies tie class 0: at the same instant the epoch's
  // thermal resolve must apply before arrivals and completions read the
  // demand it recomputes, whatever the scheduling order was.
  EventQueue q;
  std::vector<std::string> fired;
  q.schedule(600.0, EventDesc{EventDesc::Kind::kArrival, 0, 0},
             [&fired] { fired.push_back("arrival"); });
  q.schedule(600.0, EventDesc{EventDesc::Kind::kCompletion, 0, 1},
             [&fired] { fired.push_back("completion"); });
  q.schedule(600.0, EventDesc{EventDesc::Kind::kThermal, 0, 0, 600.0},
             [&fired] { fired.push_back("thermal"); });
  q.run();
  EXPECT_EQ(fired, (std::vector<std::string>{"thermal", "arrival",
                                             "completion"}));
}

TEST(EventQueue, PeekTime) {
  EventQueue q;
  q.schedule(7.0, [] {});
  EXPECT_DOUBLE_EQ(q.peek_time(), 7.0);
  q.step();
  EXPECT_THROW(q.peek_time(), InvalidArgument);
}

TEST(EventQueue, StepOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EqualTimestampsStayFifoUnderMidRunScheduling) {
  // Heap-order stability: events at one timestamp fire in scheduling order
  // even when some of them are scheduled from inside handlers while other
  // equal-time events are already pending.
  EventQueue q;
  std::vector<int> fired;
  q.schedule(5.0, [&] {
    fired.push_back(0);
    // Scheduled mid-run at the current time: must run after every
    // already-pending event at t=5, in its own insertion order.
    q.schedule(5.0, [&] { fired.push_back(3); });
    q.schedule(5.0, [&] { fired.push_back(4); });
  });
  q.schedule(5.0, [&] { fired.push_back(1); });
  q.schedule(5.0, [&] { fired.push_back(2); });
  q.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ClearKeepsCapacityAndRewindsClock) {
  EventQueue q;
  int count = 0;
  for (int i = 0; i < 100; ++i) q.schedule(i, [&] { ++count; });
  q.run();
  EXPECT_DOUBLE_EQ(q.now(), 99.0);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  // Reusable: times before the old clock are valid again.
  q.schedule(1.0, [&] { ++count; });
  q.run();
  EXPECT_EQ(count, 101);
}

TEST(SmallFn, InlineAndHeapStorage) {
  int hits = 0;
  SmallFn<64> small([&hits] { ++hits; });
  EXPECT_TRUE(small.is_inline());
  small();
  EXPECT_EQ(hits, 1);

  // A capture larger than the inline capacity falls back to the heap but
  // still works (std::function drop-in behavior).
  struct Big {
    double pad[12];
  };
  Big big{};
  big.pad[11] = 7.0;
  double seen = 0.0;
  SmallFn<64> large([big, &seen] { seen = big.pad[11]; });
  EXPECT_FALSE(large.is_inline());
  large();
  EXPECT_DOUBLE_EQ(seen, 7.0);

  // Move transfers the callable and empties the source.
  SmallFn<64> moved = std::move(large);
  EXPECT_TRUE(static_cast<bool>(moved));
  EXPECT_FALSE(static_cast<bool>(large));
  seen = 0.0;
  moved();
  EXPECT_DOUBLE_EQ(seen, 7.0);
}

TEST(SmallFn, SimulatorClosuresFitInline) {
  // The zero-allocation rematch path depends on every closure the
  // simulator schedules fitting SmallFn's inline buffer.
  EventQueue q;
  auto* self = &q;
  std::size_t idx = 3;
  std::uint64_t version = 9;
  std::vector<std::size_t> taken{1, 2, 3};
  double started = 1.5;
  SmallFn<64> completion([self, idx, version] {
    (void)self;
    (void)idx;
    (void)version;
  });
  SmallFn<64> profiling_end([self, t = std::move(taken), started] {
    (void)self;
    (void)t;
    (void)started;
  });
  EXPECT_TRUE(completion.is_inline());
  EXPECT_TRUE(profiling_end.is_inline());
}

TEST(EventQueue, LargeVolumeStaysOrdered) {
  EventQueue q;
  double last = -1.0;
  bool ordered = true;
  for (int i = 0; i < 10000; ++i) {
    const double t = static_cast<double>((i * 7919) % 10007);
    q.schedule(t, [&, t] {
      if (t < last) ordered = false;
      last = t;
    });
  }
  q.run();
  EXPECT_TRUE(ordered);
}

}  // namespace
}  // namespace iscope
