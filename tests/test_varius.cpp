#include "variation/varius.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace iscope {
namespace {

VariusModel default_model() {
  return VariusModel(VariusParams{}, quad_core_layout());
}

CoreVariation nominal_core(const VariusModel& m) {
  CoreVariation c;
  c.vth = m.params().vth_nominal;
  c.speed_k = m.nominal_speed_k();
  c.leak_scale = 1.0;
  return c;
}

TEST(VariusParams, ValidationCatchesBadValues) {
  VariusParams p;
  p.vth_nominal = -0.1;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = VariusParams{};
  p.alpha_power = 0.9;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = VariusParams{};
  p.v_nominal = 0.2;  // below vth
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = VariusParams{};
  p.vdd_margin = 0.6;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = VariusParams{};
  p.v_floor = 2.0;
  EXPECT_THROW(p.validate(), InvalidArgument);
}

TEST(VariusModel, CalibrationAnchor) {
  // The exactly-nominal core's fmax at the anchor voltage equals f_nominal.
  const VariusModel m = default_model();
  const VariusParams& p = m.params();
  const double v_anchor = p.v_nominal * (1.0 - p.vdd_margin);
  const CoreVariation core = nominal_core(m);
  EXPECT_NEAR(m.fmax_ghz(core, v_anchor), p.f_nominal_ghz, 1e-9);
}

TEST(VariusModel, FmaxMonotoneInVoltage) {
  const VariusModel m = default_model();
  const CoreVariation core = nominal_core(m);
  double prev = 0.0;
  for (double v = 0.5; v <= 1.6; v += 0.05) {
    const double f = m.fmax_ghz(core, v);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(VariusModel, FmaxZeroBelowThreshold) {
  const VariusModel m = default_model();
  const CoreVariation core = nominal_core(m);
  EXPECT_EQ(m.fmax_ghz(core, core.vth * 0.9), 0.0);
}

TEST(VariusModel, MinVddInvertsAlphaPowerLaw) {
  const VariusModel m = default_model();
  const CoreVariation core = nominal_core(m);
  for (const double f : {0.75, 1.0, 1.5, 2.0}) {
    const double v = m.min_vdd(core, f);
    if (v > m.params().v_floor) {
      EXPECT_NEAR(m.fmax_ghz(core, v), f, 1e-6);
    } else {
      // Floor binds: the core can actually go faster at the floor voltage.
      EXPECT_GE(m.fmax_ghz(core, v), f);
    }
  }
}

TEST(VariusModel, MinVddMonotoneInFrequency) {
  const VariusModel m = default_model();
  const CoreVariation core = nominal_core(m);
  double prev = 0.0;
  for (double f = 0.5; f <= 2.0; f += 0.25) {
    const double v = m.min_vdd(core, f);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(VariusModel, MinVddRespectsFloor) {
  const VariusModel m = default_model();
  const CoreVariation core = nominal_core(m);
  EXPECT_GE(m.min_vdd(core, 0.1), m.params().v_floor);
}

TEST(VariusModel, MinVddUnreachableThrows) {
  const VariusModel m = default_model();
  const CoreVariation core = nominal_core(m);
  EXPECT_THROW(m.min_vdd(core, 100.0), InvalidArgument);
  EXPECT_THROW(m.min_vdd(core, 1.0, core.vth * 0.5), InvalidArgument);
}

TEST(VariusModel, SlowerCoreNeedsHigherVoltage) {
  const VariusModel m = default_model();
  CoreVariation fast = nominal_core(m);
  CoreVariation slow = fast;
  slow.vth *= 1.1;  // higher threshold -> slower
  EXPECT_GT(m.min_vdd(slow, 2.0), m.min_vdd(fast, 2.0));
}

TEST(VariusModel, LeakageFallsWithVth) {
  const VariusModel m = default_model();
  Rng rng(1);
  const ChipVariation chip = m.sample_chip(rng);
  // Across sampled cores, higher vth must mean lower leak_scale.
  for (std::size_t i = 0; i < chip.cores.size(); ++i)
    for (std::size_t j = 0; j < chip.cores.size(); ++j)
      if (chip.cores[i].vth > chip.cores[j].vth) {
        EXPECT_LT(chip.cores[i].leak_scale, chip.cores[j].leak_scale);
      }
}

TEST(VariusModel, LeakageScalesWithVoltage) {
  const VariusModel m = default_model();
  const CoreVariation core = nominal_core(m);
  EXPECT_GT(m.leakage_rel(core, 1.3), m.leakage_rel(core, 1.0));
  EXPECT_NEAR(m.leakage_rel(core, m.params().v_nominal), 1.0, 1e-12);
}

TEST(VariusModel, SampleChipDeterministic) {
  const VariusModel m = default_model();
  Rng a(5), b(5);
  const ChipVariation c1 = m.sample_chip(a);
  const ChipVariation c2 = m.sample_chip(b);
  ASSERT_EQ(c1.cores.size(), c2.cores.size());
  for (std::size_t i = 0; i < c1.cores.size(); ++i) {
    EXPECT_EQ(c1.cores[i].vth, c2.cores[i].vth);
    EXPECT_EQ(c1.cores[i].speed_k, c2.cores[i].speed_k);
  }
}

TEST(VariusModel, PopulationStatistics) {
  const VariusModel m = default_model();
  Rng rng(9);
  RunningStats vth;
  for (int i = 0; i < 500; ++i) {
    const ChipVariation chip = m.sample_chip(rng);
    for (const auto& core : chip.cores) vth.add(core.vth);
  }
  const VariusParams& p = m.params();
  EXPECT_NEAR(vth.mean(), p.vth_nominal, 0.01);
  // Core-averaged WID variance is damped; D2D passes through fully, so the
  // observed sigma lies between sigma_d2d and the combined value.
  const double rel_sigma = vth.stddev() / p.vth_nominal;
  EXPECT_GT(rel_sigma, p.sigma_d2d * 0.8);
  EXPECT_LT(rel_sigma,
            std::sqrt(p.sigma_d2d * p.sigma_d2d + p.sigma_wid * p.sigma_wid) *
                1.2);
}

TEST(VariusModel, LeakageSpreadIsLarge) {
  // The paper cites up to 20x chip leakage spread [14]; with default sigmas
  // the population min/max leak ratio should span at least several-fold.
  const VariusModel m = default_model();
  Rng rng(10);
  double lo = 1e18, hi = 0.0;
  for (int i = 0; i < 500; ++i) {
    const ChipVariation chip = m.sample_chip(rng);
    for (const auto& core : chip.cores) {
      lo = std::min(lo, core.leak_scale);
      hi = std::max(hi, core.leak_scale);
    }
  }
  EXPECT_GT(hi / lo, 4.0);
}

TEST(A10Params, CalibratedToFigure4) {
  // Fabricate many A10-like cores; Min Vdd at 3.8 GHz should center near
  // the paper's 1.219 V mean and stay within a plausible band of the
  // reported [1.19, 1.25] range.
  const VariusParams p = a10_params();
  const VariusModel m(p, quad_core_layout());
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 200; ++i) {
    const ChipVariation chip = m.sample_chip(rng);
    for (const auto& core : chip.cores)
      stats.add(m.min_vdd(core, 3.8));
  }
  EXPECT_NEAR(stats.mean(), 1.219, 0.015);
  EXPECT_GT(stats.min(), 1.13);
  EXPECT_LT(stats.max(), 1.31);
  // Everything runs below the 1.375 V nominal (the ~9% margin claim).
  EXPECT_LT(stats.max(), 1.375);
}

}  // namespace
}  // namespace iscope
