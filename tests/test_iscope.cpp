// End-to-end lifecycle tests of the IScope facade: commission -> scan ->
// schedule -> wear -> periodic re-scan.
#include "core/iscope.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"

namespace iscope {
namespace {

IScope::Options small_options(std::size_t procs = 16) {
  IScope::Options opt;
  opt.cluster.num_processors = procs;
  opt.cluster.seed = 7;
  opt.opportunistic.domain_size = 4;
  return opt;
}

std::vector<Task> burst(std::size_t n, std::size_t cpus = 2,
                        double runtime = 400.0) {
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    Task t;
    t.id = static_cast<std::int64_t>(i);
    t.submit_s = static_cast<double>(i) * 300.0;
    t.cpus = cpus;
    t.runtime_s = runtime;
    t.gamma = 0.9;
    t.deadline_s = t.submit_s + 12.0 * runtime;
    tasks.push_back(t);
  }
  return tasks;
}

TEST(IScope, StartsUnprofiled) {
  const IScope iscope(small_options());
  EXPECT_EQ(iscope.profiles().profiled_count(), 0u);
  EXPECT_EQ(iscope.stale_processors(0.0).size(), 16u);
}

TEST(IScope, ScanAllProfilesEverything) {
  IScope iscope(small_options());
  iscope.scan_all(0.0);
  EXPECT_EQ(iscope.profiles().profiled_count(), 16u);
  EXPECT_TRUE(iscope.stale_processors(1000.0).empty());
  // Fresh profiles against fresh silicon: no violations.
  EXPECT_EQ(iscope.undervolt_violations(), 0u);
}

TEST(IScope, StalenessReappearsAfterRescanPeriod) {
  IScope::Options opt = small_options();
  opt.rescan_period_s = units::days_to_s(30.0);
  IScope iscope(opt);
  iscope.scan_all(0.0);
  EXPECT_TRUE(iscope.stale_processors(units::days_to_s(29.0)).empty());
  EXPECT_EQ(iscope.stale_processors(units::days_to_s(31.0)).size(), 16u);
}

TEST(IScope, PlanCoversOnlyStaleProcessors) {
  IScope iscope(small_options());
  iscope.scan_all(0.0);
  // All idle all day; nothing stale right after the scan.
  const std::vector<double> idle_demand(1440, 0.05);
  const ProfilingPlan plan =
      iscope.plan_scans(idle_demand, HybridSupply{}, 1.0);
  EXPECT_EQ(plan.placed_count() + plan.unplaced.size(), 0u);
}

TEST(IScope, ExecutePlanFillsDatabase) {
  IScope iscope(small_options());
  const std::vector<double> idle_demand(10 * 1440, 0.05);
  const ProfilingPlan plan =
      iscope.plan_scans(idle_demand, HybridSupply{}, 0.0);
  EXPECT_GT(plan.placed_count(), 0u);
  iscope.execute_plan(plan);
  EXPECT_EQ(iscope.profiles().profiled_count(), plan.placed_count());
}

TEST(IScope, ScheduleRunsAllSchemes) {
  IScope iscope(small_options());
  iscope.scan_all(0.0);
  const auto tasks = burst(10);
  for (const Scheme s : kAllSchemes) {
    const SimResult r = iscope.schedule(s, tasks, HybridSupply{});
    EXPECT_EQ(r.tasks_completed, tasks.size()) << scheme_name(s);
  }
}

TEST(IScope, WearCreatesViolationsRescanClearsThem) {
  IScope iscope(small_options());
  iscope.scan_all(0.0);
  EXPECT_EQ(iscope.undervolt_violations(), 0u);

  // Five years of heavy wear with stale profiles.
  iscope.apply_wear(
      std::vector<double>(iscope.cluster().size(), units::days_to_s(5 * 365.0)));
  const std::size_t stale_violations = iscope.undervolt_violations();
  EXPECT_GT(stale_violations, 0u);

  // Periodic re-profiling closes the gap.
  iscope.scan_all(units::days_to_s(5 * 365.0));
  EXPECT_LT(iscope.undervolt_violations(), stale_violations);
  EXPECT_EQ(iscope.undervolt_violations(), 0u);
}

TEST(IScope, WearAccumulates) {
  IScope iscope(small_options());
  std::vector<double> wear(iscope.cluster().size(), 100.0);
  iscope.apply_wear(wear);
  iscope.apply_wear(wear);
  EXPECT_DOUBLE_EQ(iscope.total_wear_s(0), 200.0);
  EXPECT_THROW(iscope.apply_wear(std::vector<double>(3, 1.0)),
               InvalidArgument);
  EXPECT_THROW(iscope.total_wear_s(999), InvalidArgument);
}

TEST(IScope, WearRaisesEnergyOfStaleScheduling) {
  // After silicon drift, a ScanEffi run on stale profiles consumes no less
  // energy than right after commissioning (the efficiency map decayed).
  IScope iscope(small_options(24));
  iscope.scan_all(0.0);
  const auto tasks = burst(20);
  const SimResult fresh = iscope.schedule(Scheme::kScanEffi, tasks,
                                          HybridSupply{});
  iscope.apply_wear(
      std::vector<double>(iscope.cluster().size(), units::days_to_s(4 * 365.0)));
  const SimResult stale = iscope.schedule(Scheme::kScanEffi, tasks,
                                          HybridSupply{});
  EXPECT_GE(stale.energy.total().joules(), fresh.energy.total().joules() * 0.99);
}

TEST(IScope, ScheduleWithProfilingMetersScans) {
  IScope iscope(small_options());
  ProfilingPlan plan;
  ProfilingWindow w;
  w.start_s = 50.0;  // before the first task arrives: everything is idle
  w.duration_s = 400.0;
  w.proc_ids = {12, 13, 14, 15};
  plan.windows.push_back(w);
  auto tasks = burst(3);
  for (Task& t : tasks) t.submit_s += 600.0;
  for (Task& t : tasks) t.deadline_s += 600.0;
  const SimResult r = iscope.schedule_with_profiling(
      Scheme::kBinRan, tasks, HybridSupply{}, plan);
  EXPECT_EQ(r.profiling_procs_scanned, 4u);
  EXPECT_GT(r.profiling_proc_seconds, 0.0);
}

TEST(IScope, DeterministicAcrossInstances) {
  IScope a(small_options()), b(small_options());
  a.scan_all(0.0);
  b.scan_all(0.0);
  const auto tasks = burst(8);
  const SimResult ra = a.schedule(Scheme::kScanFair, tasks, HybridSupply{});
  const SimResult rb = b.schedule(Scheme::kScanFair, tasks, HybridSupply{});
  EXPECT_EQ(ra.energy.utility.joules(), rb.energy.utility.joules());
  EXPECT_EQ(ra.busy_time_s, rb.busy_time_s);
}

}  // namespace
}  // namespace iscope
