// Chaos suite: a live daemon under fault injection (PR 4's FaultSpec
// replayed mid-stream) must degrade gracefully, not fall over:
//
//  * the daemon stays responsive between fault storms (DECIDE_NOW answers
//    while CPUs crash and repair under the stream);
//  * requeues are bounded by the retry cap -- no livelock of a task
//    bouncing between failing processors forever;
//  * no task is silently lost: completed + failed == admitted;
//  * admission backpressure engages under a tiny --admit-capacity and the
//    stream still drains (no deadlock between BUSY and ADVANCE);
//  * the whole chaotic interaction is deterministic: a second daemon fed
//    the same stream produces the bitwise-identical summary.
//
// tools/check.sh runs this binary under TSan in the `tsan` stage, so the
// daemon's poll loop and the client interplay are raced-checked too.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "service/server.hpp"
#include "service_client.hpp"
#include "workload/task.hpp"

namespace iscope::service {
namespace {

constexpr const char* kFaultSpec = "mtbf=30000,repair=600,misprofile=0.05";

std::string socket_path(const std::string& tag) {
  return "/tmp/iscope_chaos_" + tag + "_" + std::to_string(::getpid()) +
         ".sock";
}

ServiceOptions chaos_options(const std::string& tag) {
  ServiceOptions opt;
  opt.scheme = Scheme::kScanFair;
  opt.scale = 0.05;
  opt.seed = 77;
  opt.fault_spec = kFaultSpec;
  opt.socket_path = socket_path(tag);
  return opt;
}

std::vector<std::string> to_args(const ServiceOptions& opt,
                                 const std::string& capacity) {
  return {"--socket",         opt.socket_path,
          "--scheme",         scheme_name(opt.scheme),
          "--scale",          "0.05",
          "--seed",           std::to_string(opt.seed),
          "--faults",         opt.fault_spec,
          "--admit-capacity", capacity};
}

/// Feed the whole workload through a tiny admission window, interleaving
/// advances and liveness probes; the final summary lands in `*out`.
/// (ASSERT_* needs a void function, hence the out-parameter.)
void drive(Client& client, const std::vector<Task>& tasks,
           std::size_t* busy_count, ResultSummary* out) {
  double horizon = 1500.0;
  std::vector<TimelineEvent> decisions;
  std::size_t next = 0;
  while (next < tasks.size()) {
    const Frame reply = client.admit(tasks[next]);
    if (reply.type == MsgType::kAdmitOk) {
      ++next;
      continue;
    }
    ASSERT_EQ(reply.type, MsgType::kBusy) << "task " << next;
    if (busy_count != nullptr) ++*busy_count;
    // Backpressure: make room by advancing (injects the backlog). The
    // horizon never passes the next task's submit time, so admission
    // validity is preserved.
    const double target = std::min(horizon, tasks[next].submit_s);
    client.advance(target, decisions);
    horizon += 1500.0;
    // Liveness probe between storms: the daemon answers from O(1) state
    // even while the fault plan is killing processors under the stream.
    const DecisionSnapshot snap = client.decide_now();
    ASSERT_LE(snap.now_s, target + 1e-9);
  }
  client.drain(decisions);
  *out = client.result();
  client.shutdown();
}

TEST(ServiceChaos, FaultStormDegradesGracefully) {
  const ServiceOptions opt = chaos_options("storm");
  SimHost twin(opt);
  std::vector<Task> tasks = twin.context().make_tasks(0.3);
  sort_by_submit(tasks);

  ServeProcess proc(ISCOPE_SERVE_BIN, to_args(opt, "4"));
  ASSERT_TRUE(proc.wait_ready());
  Client client(opt.socket_path);
  std::size_t busy = 0;
  ResultSummary summary;
  drive(client, tasks, &busy, &summary);

  // The window is a quarter of the stream: backpressure must have engaged.
  EXPECT_GT(busy, 0u);
  // No silent loss, bounded requeues (FaultSpec default: 3 retries/task).
  EXPECT_EQ(summary.tasks_completed + summary.tasks_failed, tasks.size());
  EXPECT_LE(summary.task_requeues, 3 * tasks.size());
  EXPECT_GT(summary.events_processed, 0u);
}

TEST(ServiceChaos, ChaoticRunIsDeterministic) {
  const ServiceOptions opt_a = chaos_options("det_a");
  SimHost twin(opt_a);
  std::vector<Task> tasks = twin.context().make_tasks(0.3);
  sort_by_submit(tasks);

  ResultSummary a;
  {
    ServeProcess proc(ISCOPE_SERVE_BIN, to_args(opt_a, "4"));
    ASSERT_TRUE(proc.wait_ready());
    Client client(opt_a.socket_path);
    drive(client, tasks, nullptr, &a);
  }
  ServiceOptions opt_b = chaos_options("det_b");
  ResultSummary b;
  {
    ServeProcess proc(ISCOPE_SERVE_BIN, to_args(opt_b, "4"));
    ASSERT_TRUE(proc.wait_ready());
    Client client(opt_b.socket_path);
    drive(client, tasks, nullptr, &b);
  }

  EXPECT_EQ(a.wind_j, b.wind_j);
  EXPECT_EQ(a.utility_j, b.utility_j);
  EXPECT_EQ(a.curtailed_j, b.curtailed_j);
  EXPECT_EQ(a.cost_usd, b.cost_usd);
  EXPECT_EQ(a.tasks_completed, b.tasks_completed);
  EXPECT_EQ(a.tasks_failed, b.tasks_failed);
  EXPECT_EQ(a.task_requeues, b.task_requeues);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.mean_wait_s, b.mean_wait_s);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.rematches, b.rematches);
}

}  // namespace
}  // namespace iscope::service
