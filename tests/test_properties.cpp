// Parameterized property suites: invariants that must hold across whole
// parameter grids, not just hand-picked points.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <numeric>
#include <tuple>

#include "profiling/scanner.hpp"
#include "sim/simulator.hpp"
#include "variation/binning.hpp"
#include "workload/task.hpp"

namespace iscope {
namespace {

// ------------------------------------------------- Eq-3 over (gamma, f)

class Eq3Property
    : public testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(Eq3Property, SlowdownBoundsAndMonotonicity) {
  const double gamma = std::get<0>(GetParam());
  const double f = std::get<1>(GetParam());
  Task t;
  t.runtime_s = 100.0;
  t.gamma = gamma;
  const double fmax = 2.0;
  const double s = t.slowdown(f, fmax);
  // Slowdown is at least 1 and bounded by the full-CPU-bound case.
  EXPECT_GE(s, 1.0 - 1e-12);
  EXPECT_LE(s, fmax / f + 1e-12);
  // At fmax there is no slowdown; a lower frequency never speeds it up.
  EXPECT_DOUBLE_EQ(t.slowdown(fmax, fmax), 1.0);
  if (f < fmax) {
    EXPECT_GE(s, t.slowdown(fmax, fmax));
  }
  // Interpolation property: gamma scales linearly between the extremes.
  const double s0 = 1.0;
  const double s1 = fmax / f;
  EXPECT_NEAR(s, s0 + gamma * (s1 - s0), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    GammaFreqGrid, Eq3Property,
    testing::Combine(testing::Values(0.0, 0.25, 0.5, 0.75, 1.0),
                     testing::Values(0.75, 1.0625, 1.375, 1.6875, 2.0)));

// ---------------------------------------- matcher demand vs wind budget

class MatcherWindProperty : public testing::TestWithParam<double> {
 protected:
  static const Cluster& cluster() {
    static const Cluster c = build_cluster([] {
      ClusterConfig cfg;
      cfg.num_processors = 16;
      cfg.seed = 11;
      return cfg;
    }());
    return c;
  }
};

TEST_P(MatcherWindProperty, DemandMonotoneInBudgetAndSafe) {
  const double wind_w = GetParam();
  const Knowledge knowledge(&cluster(), KnowledgeSource::kBin);
  const PowerMatcher matcher(&knowledge, 1.4);

  auto make_tasks = [&] {
    std::vector<ActiveTask> tasks;
    for (std::size_t i = 0; i < 6; ++i) {
      ActiveTask t;
      t.remaining_work_s = 500.0 + 100.0 * static_cast<double>(i);
      t.deadline_s = 3600.0 * (1.0 + static_cast<double>(i));
      t.gamma = 0.5 + 0.1 * static_cast<double>(i % 5);
      t.procs = {2 * i, 2 * i + 1};
      tasks.push_back(std::move(t));
    }
    return tasks;
  };

  auto tasks = make_tasks();
  const MatchResult r = matcher.match(tasks, Watts{wind_w}, 0.0);

  // Levels never violate deadline floors.
  for (const auto& t : tasks)
    EXPECT_GE(t.level, matcher.min_feasible_level(t, 0.0));

  // More wind never increases demand... (fitting relaxes monotonically)
  auto tasks_more = make_tasks();
  const MatchResult more = matcher.match(tasks_more, Watts{wind_w * 2.0 + 10.0}, 0.0);
  EXPECT_GE(more.demand.watts(), r.demand.watts() - 1e-9);

  // Demand equals the sum of the assigned task powers times cooling.
  double sum = 0.0;
  for (const auto& t : tasks) sum += matcher.task_power(t, t.level).watts();
  EXPECT_NEAR(r.demand.watts(), sum * 1.4, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(WindBudgets, MatcherWindProperty,
                         testing::Values(0.0, 100.0, 300.0, 600.0, 1000.0,
                                         2000.0, 5000.0, 1e9));

// ------------------------------------------------ schemes x supply grid

class SchemeProperty
    : public testing::TestWithParam<std::tuple<Scheme, bool>> {
 protected:
  struct World {
    Cluster cluster;
    ProfileDb db;
    World()
        : cluster(build_cluster([] {
            ClusterConfig cfg;
            cfg.num_processors = 12;
            cfg.seed = 21;
            return cfg;
          }())),
          db(cluster.size()) {
      const Scanner scanner(&cluster, ScanConfig{});
      Rng rng(5);
      std::vector<std::size_t> all(cluster.size());
      std::iota(all.begin(), all.end(), 0);
      scanner.scan_domain(all, 0.0, rng, db);
    }
  };
  static const World& world() {
    static const World w;
    return w;
  }
};

TEST_P(SchemeProperty, CompletesAccountsAndConserves) {
  const Scheme scheme = std::get<0>(GetParam());
  const bool with_wind = std::get<1>(GetParam());

  std::vector<Task> tasks;
  for (int i = 0; i < 25; ++i) {
    Task t;
    t.id = i;
    t.submit_s = i * 120.0;
    t.cpus = 1 + static_cast<std::size_t>(i) % 6;
    t.runtime_s = 200.0 + 40.0 * (i % 7);
    t.gamma = 0.5 + 0.1 * (i % 5);
    t.deadline_s = t.submit_s + (i % 3 == 0 ? 4.0 : 12.0) * t.runtime_s;
    tasks.push_back(t);
  }

  const SupplyTrace wind(Seconds{600.0}, std::vector<double>(300, 600.0));
  const HybridSupply supply =
      with_wind ? HybridSupply(wind) : HybridSupply();

  const SimResult r = run_scheme(world().cluster, scheme, &world().db, supply,
                                 tasks, SimConfig{});

  EXPECT_EQ(r.tasks_completed, tasks.size());
  EXPECT_GT(r.energy.total().joules(), 0.0);
  EXPECT_GT(r.cost.dollars(), 0.0);
  if (!with_wind) {
    EXPECT_DOUBLE_EQ(r.energy.wind.joules(), 0.0);
  }
  // Busy-time sanity.
  for (const double b : r.busy_time_s) {
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, r.makespan.seconds() + 1e-6);
  }
  // Determinism: identical rerun gives identical outputs.
  const SimResult again = run_scheme(world().cluster, scheme, &world().db,
                                     supply, tasks, SimConfig{});
  EXPECT_EQ(r.energy.utility.joules(), again.energy.utility.joules());
  EXPECT_EQ(r.energy.wind.joules(), again.energy.wind.joules());
  EXPECT_EQ(r.deadline_misses, again.deadline_misses);
  EXPECT_EQ(r.busy_time_s, again.busy_time_s);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeProperty,
    testing::Combine(testing::Values(Scheme::kBinRan, Scheme::kBinEffi,
                                     Scheme::kScanRan, Scheme::kScanEffi,
                                     Scheme::kScanFair),
                     testing::Bool()),
    [](const testing::TestParamInfo<SchemeProperty::ParamType>& info) {
      return std::string(scheme_name(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_wind" : "_utility");
    });

// ----------------------------------------------- scanner vs noise level

class ScannerNoiseProperty : public testing::TestWithParam<double> {};

TEST_P(ScannerNoiseProperty, NeverUnsafeAndNearTruth) {
  const double noise = GetParam();
  ClusterConfig cfg;
  cfg.num_processors = 6;
  cfg.seed = 31;
  const Cluster cluster = build_cluster(cfg);
  // The production safety margin must cover the configured noise.
  ScanConfig scan;
  scan.noise_sigma = noise;
  scan.safety_margin = std::max(0.005, 3.0 * noise);
  scan.repeats = noise > 0.0 ? 3 : 1;
  Rng rng(noise > 0.0 ? 91 : 17);
  for (std::size_t chip = 0; chip < cluster.size(); ++chip) {
    const ChipProfile p = Scanner(&cluster, scan).scan_chip(chip, 0.0, rng);
    for (std::size_t core = 0; core < p.core_vdd.size(); ++core) {
      for (std::size_t l = 0; l < p.core_vdd[core].levels(); ++l) {
        const double truth = cluster.proc(chip).core_truth[core].vdd(l);
        const double vnom = cluster.levels().vdd_nom[l];
        // Safe: never more than a whisker below the silicon truth.
        EXPECT_GE(p.core_vdd[core].vdd(l), truth * (1.0 - 2.0 * noise) - 1e-9);
        // Useful: never far above the stock voltage.
        EXPECT_LE(p.core_vdd[core].vdd(l),
                  std::max(truth, vnom) * (1.0 + scan.sweep_depth));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, ScannerNoiseProperty,
                         testing::Values(0.0, 0.002, 0.005, 0.01));

// ------------------------------------------------- binning vs bin count

class BinningProperty : public testing::TestWithParam<int> {};

TEST_P(BinningProperty, CoverageDominanceAndMonotoneHeadroom) {
  const int bins = GetParam();
  const Cluster cluster = build_cluster([] {
    ClusterConfig cfg;
    cfg.num_processors = 48;
    cfg.seed = 41;
    return cfg;
  }());
  std::vector<MinVddCurve> chips;
  for (std::size_t i = 0; i < cluster.size(); ++i)
    chips.push_back(cluster.proc(i).chip_truth);
  const BinningResult r = speed_bin(chips, bins);

  std::size_t covered = 0;
  for (const std::size_t s : r.bin_sizes) covered += s;
  EXPECT_EQ(covered, chips.size());

  double headroom = 0.0;
  const std::size_t top = chips.front().levels() - 1;
  for (std::size_t i = 0; i < chips.size(); ++i) {
    const double bin_v =
        r.bin_curve[static_cast<std::size_t>(r.bin_of_chip[i])].vdd(top);
    EXPECT_GE(bin_v, chips[i].vdd(top));
    headroom += bin_v - chips[i].vdd(top);
  }
  // More bins -> tighter fit -> less total guardband headroom.
  if (bins > 1) {
    const BinningResult coarser = speed_bin(chips, bins - 1);
    double coarse_headroom = 0.0;
    for (std::size_t i = 0; i < chips.size(); ++i)
      coarse_headroom +=
          coarser.bin_curve[static_cast<std::size_t>(coarser.bin_of_chip[i])]
              .vdd(top) -
          chips[i].vdd(top);
    EXPECT_LE(headroom, coarse_headroom + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(BinCounts, BinningProperty,
                         testing::Values(1, 2, 3, 4, 6, 8));

// ------------------------------------------- fault injection vs seed

// Invariants that must survive *any* seeded fault schedule (50 seeds):
// no task is ever silently lost, per-task requeues respect the retry
// budget, energy accounting stays positive and self-consistent, and the
// same seed replays the identical schedule bit for bit.
class FaultSeedProperty : public testing::TestWithParam<std::uint64_t> {
 protected:
  struct World {
    Cluster cluster;
    ProfileDb db;
    std::vector<Task> tasks;
    HybridSupply supply;
    World()
        : cluster(build_cluster([] {
            ClusterConfig cfg;
            cfg.num_processors = 10;
            cfg.seed = 71;
            return cfg;
          }())),
          db(cluster.size()),
          supply(SupplyTrace(Seconds{600.0},
                             std::vector<double>(300, 800.0))) {
      const Scanner scanner(&cluster, ScanConfig{});
      Rng rng(72);
      std::vector<std::size_t> all(cluster.size());
      std::iota(all.begin(), all.end(), 0);
      scanner.scan_domain(all, 0.0, rng, db);
      for (int i = 0; i < 30; ++i) {
        Task t;
        t.id = i + 1;
        t.submit_s = 200.0 * i;
        t.cpus = 1 + static_cast<std::size_t>(i) % 4;
        t.runtime_s = 300.0 + 80.0 * (i % 6);
        t.gamma = 0.4 + 0.1 * (i % 6);
        t.deadline_s = t.submit_s + 20.0 * t.runtime_s;
        tasks.push_back(t);
      }
    }
  };
  static const World& world() {
    static const World w;
    return w;
  }

  static SimResult run_faulty(std::uint64_t seed) {
    SimConfig cfg;
    cfg.record_timeline = true;
    // Aggressive enough that most seeds see failures mid-run.
    cfg.faults.crash_mtbf_s = 8.0 * 3600.0;
    cfg.faults.repair_mean_s = 1200.0;
    cfg.faults.misprofile_prob = 0.15;
    cfg.faults.misprofile_latency_mean_s = 600.0;
    cfg.faults.max_retries = 3;
    cfg.fault_seed = seed;
    Knowledge knowledge(&world().cluster,
                        scheme_knowledge(Scheme::kScanEffi), &world().db);
    DatacenterSim sim(&knowledge, scheme_rule(Scheme::kScanEffi),
                      &world().supply, cfg);
    return sim.run(world().tasks);
  }
};

TEST_P(FaultSeedProperty, NoTaskLostRetriesBoundedAndReplayable) {
  const std::uint64_t seed = GetParam();
  const SimResult r = run_faulty(seed);

  // Conservation: every submitted task either completed or was counted as
  // terminally failed -- nothing vanishes.
  EXPECT_EQ(r.tasks_completed + r.faults.tasks_failed,
            world().tasks.size());

  // Requeues per task never exceed the retry budget (timeline audit).
  std::map<std::int64_t, std::size_t> requeues;
  std::size_t abandons = 0;
  for (const TimelineEvent& e : r.timeline) {
    if (e.kind == TimelineKind::kTaskRequeue) ++requeues[e.task_id];
    if (e.kind == TimelineKind::kTaskAbandon) ++abandons;
  }
  std::size_t total_requeues = 0;
  for (const auto& [id, n] : requeues) {
    EXPECT_LE(n, 3u) << "task " << id;
    total_requeues += n;
  }
  EXPECT_EQ(total_requeues, r.faults.task_requeues);
  EXPECT_EQ(abandons, r.faults.tasks_failed);

  // Repairs never outnumber failures; lost work only when tasks died.
  EXPECT_LE(r.faults.cpu_repairs, r.faults.cpu_failures);
  EXPECT_GE(r.faults.lost_cpu_seconds, 0.0);
  if (r.faults.task_requeues == 0 && r.faults.tasks_failed == 0) {
    EXPECT_EQ(r.faults.lost_cpu_seconds, 0.0);
  }

  // Energy accounting stays sane under injection (the debug-mode energy
  // auditor additionally re-verifies conservation at every accrual).
  EXPECT_GT(r.energy.total().joules(), 0.0);
  EXPECT_GT(r.cost.dollars(), 0.0);
  for (const double b : r.busy_time_s) {
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, r.makespan.seconds() + 1e-6);
  }

  // Same seed => same schedule, bit for bit.
  const SimResult again = run_faulty(seed);
  EXPECT_EQ(r.cost.raw(), again.cost.raw());
  EXPECT_EQ(r.energy.utility.joules(), again.energy.utility.joules());
  EXPECT_EQ(r.tasks_completed, again.tasks_completed);
  EXPECT_EQ(r.faults.cpu_failures, again.faults.cpu_failures);
  EXPECT_EQ(r.faults.task_requeues, again.faults.task_requeues);
  EXPECT_EQ(r.faults.lost_cpu_seconds, again.faults.lost_cpu_seconds);
  ASSERT_EQ(r.timeline.size(), again.timeline.size());
  for (std::size_t i = 0; i < r.timeline.size(); ++i) {
    EXPECT_EQ(r.timeline[i].time_s, again.timeline[i].time_s);
    EXPECT_EQ(r.timeline[i].kind, again.timeline[i].kind);
    EXPECT_EQ(r.timeline[i].task_id, again.timeline[i].task_id);
  }
}

INSTANTIATE_TEST_SUITE_P(FiftySeeds, FaultSeedProperty,
                         testing::Range<std::uint64_t>(0, 50));

}  // namespace
}  // namespace iscope
