// Scheduler-equivalence suite (DESIGN.md Sec. 9).
//
// The allocation-free rematch path (per-task power tables, reusable
// matcher scratch, intrusive running list, pool-rejection memo) must be a
// pure performance change: the simulator's *decisions* have to match the
// retained pre-optimization matcher path bit for bit. These tests run the
// same scenario through both paths (SimConfig::use_reference_matcher) and
// compare every SimResult field, every trace sample, and every timeline
// event with exact floating-point equality -- across all five schemes,
// with and without wind, a battery, and in-band profiling windows, on
// randomized clusters and workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "profiling/scanner.hpp"
#include "sched/power_matcher.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/telemetry.hpp"

namespace iscope {
namespace {

void expect_identical(const SimResult& a, const SimResult& b) {
  // Exact equality everywhere: EXPECT_EQ on doubles is bitwise-meaningful
  // here because both runs must execute the same arithmetic.
  EXPECT_EQ(a.energy.wind.joules(), b.energy.wind.joules());
  EXPECT_EQ(a.energy.utility.joules(), b.energy.utility.joules());
  EXPECT_EQ(a.cost.raw(), b.cost.raw());
  EXPECT_EQ(a.wind_curtailed.joules(), b.wind_curtailed.joules());
  EXPECT_EQ(a.battery_delivered.joules(), b.battery_delivered.joules());
  EXPECT_EQ(a.battery_losses.joules(), b.battery_losses.joules());
  EXPECT_EQ(a.tasks_completed, b.tasks_completed);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.mean_wait.seconds(), b.mean_wait.seconds());
  EXPECT_EQ(a.makespan.seconds(), b.makespan.seconds());
  EXPECT_EQ(a.busy_variance_h2, b.busy_variance_h2);
  EXPECT_EQ(a.procs_used_fraction, b.procs_used_fraction);
  EXPECT_EQ(a.dvfs_rematch_count, b.dvfs_rematch_count);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.profiling_procs_scanned, b.profiling_procs_scanned);
  EXPECT_EQ(a.profiling_procs_skipped, b.profiling_procs_skipped);
  EXPECT_EQ(a.profiling_proc_seconds, b.profiling_proc_seconds);
  EXPECT_EQ(a.faults.cpu_failures, b.faults.cpu_failures);
  EXPECT_EQ(a.faults.cpu_repairs, b.faults.cpu_repairs);
  EXPECT_EQ(a.faults.misprofile_failures, b.faults.misprofile_failures);
  EXPECT_EQ(a.faults.task_requeues, b.faults.task_requeues);
  EXPECT_EQ(a.faults.tasks_failed, b.faults.tasks_failed);
  EXPECT_EQ(a.faults.lost_cpu_seconds, b.faults.lost_cpu_seconds);
  EXPECT_EQ(a.faults.fault_deadline_misses, b.faults.fault_deadline_misses);

  ASSERT_EQ(a.busy_time_s.size(), b.busy_time_s.size());
  for (std::size_t i = 0; i < a.busy_time_s.size(); ++i)
    EXPECT_EQ(a.busy_time_s[i], b.busy_time_s[i]) << "proc " << i;

  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].time.seconds(), b.trace[i].time.seconds());
    EXPECT_EQ(a.trace[i].demand.watts(), b.trace[i].demand.watts());
    EXPECT_EQ(a.trace[i].wind.watts(), b.trace[i].wind.watts());
    EXPECT_EQ(a.trace[i].utility.watts(), b.trace[i].utility.watts());
    EXPECT_EQ(a.trace[i].wind_avail.watts(), b.trace[i].wind_avail.watts());
    EXPECT_EQ(a.trace[i].battery.watts(), b.trace[i].battery.watts());
  }

  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].time_s, b.timeline[i].time_s) << "event " << i;
    EXPECT_EQ(a.timeline[i].kind, b.timeline[i].kind) << "event " << i;
    EXPECT_EQ(a.timeline[i].task_id, b.timeline[i].task_id) << "event " << i;
    EXPECT_EQ(a.timeline[i].value, b.timeline[i].value) << "event " << i;
  }
}

struct Scenario {
  Cluster cluster;
  ProfileDb db;

  explicit Scenario(std::size_t n, std::uint64_t seed)
      : cluster(build_cluster([&] {
          ClusterConfig cfg;
          cfg.num_processors = n;
          cfg.seed = seed;
          return cfg;
        }())),
        db(n) {
    const Scanner scanner(&cluster, ScanConfig{});
    Rng rng(seed + 7);
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    scanner.scan_domain(all, 0.0, rng, db);
  }

  /// Randomized workload: mixed widths, runtimes, CPU-boundness, and
  /// deadline tightness (some forced starts, some loose waits).
  std::vector<Task> make_tasks(std::size_t count, std::uint64_t seed) const {
    Rng rng(seed);
    std::vector<Task> tasks;
    tasks.reserve(count);
    double submit = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      submit += rng.uniform(0.0, 400.0);
      Task t;
      t.id = static_cast<std::int64_t>(i + 1);
      t.submit_s = submit;
      t.cpus = static_cast<std::size_t>(rng.uniform_int(
          1, static_cast<std::int64_t>(cluster.size() / 2)));
      t.runtime_s = rng.uniform(100.0, 2000.0);
      t.gamma = rng.uniform(0.3, 1.0);
      t.deadline_s = t.submit_s + t.runtime_s * rng.uniform(1.5, 10.0);
      tasks.push_back(t);
    }
    return tasks;
  }

  /// A wind trace whose level crosses the facility's demand regime.
  HybridSupply make_supply(std::uint64_t seed) const {
    Rng rng(seed);
    std::vector<double> watts;
    const std::size_t steps = 200;
    const double peak =
        estimated_peak_power(cluster).watts();
    for (std::size_t i = 0; i < steps; ++i)
      watts.push_back(rng.uniform(0.0, 0.9 * peak));
    return HybridSupply(SupplyTrace(Seconds{600.0}, std::move(watts)));
  }

  static Watts estimated_peak_power(const Cluster& cluster) {
    Watts total;
    const std::size_t top = cluster.levels().freq_ghz.size() - 1;
    for (std::size_t p = 0; p < cluster.size(); ++p)
      total += cluster.power(p, top, Volts{cluster.levels().vdd_nom[top]});
    return total;
  }

  SimResult run(Scheme scheme, const std::vector<Task>& tasks,
                const HybridSupply& supply, SimConfig cfg,
                const std::vector<ProfilingWindow>& profiling = {}) const {
    cfg.record_trace = true;
    cfg.record_timeline = true;
    // Mutable knowledge so fault-active scenarios can quarantine; with no
    // faults this is behaviorally identical to the const-view constructor.
    Knowledge knowledge(&cluster, scheme_knowledge(scheme),
                        scheme_uses_scan(scheme) ? &db : nullptr);
    DatacenterSim sim(&knowledge, scheme_rule(scheme), &supply, cfg);
    return sim.run(tasks, profiling);
  }

  void check_equivalence(Scheme scheme, const std::vector<Task>& tasks,
                         const HybridSupply& supply, SimConfig cfg,
                         const std::vector<ProfilingWindow>& profiling = {})
      const {
    cfg.use_reference_matcher = false;
    const SimResult optimized = run(scheme, tasks, supply, cfg, profiling);
    cfg.use_reference_matcher = true;
    const SimResult reference = run(scheme, tasks, supply, cfg, profiling);
    expect_identical(optimized, reference);
  }

  /// The delta-rematch identity (DESIGN.md Sec. 14): a run that replays
  /// cached greedy trajectories on wind-only epochs must be bit-identical
  /// both to a run that full-solves every rematch and to the reference
  /// matcher. Zero cost gap -- the declared bound is exact equality.
  void check_incremental_identity(
      Scheme scheme, const std::vector<Task>& tasks,
      const HybridSupply& supply, SimConfig cfg,
      const std::vector<ProfilingWindow>& profiling = {}) const {
    cfg.use_reference_matcher = false;
    cfg.incremental_rematch = true;
    const SimResult incremental = run(scheme, tasks, supply, cfg, profiling);
    cfg.incremental_rematch = false;
    const SimResult full = run(scheme, tasks, supply, cfg, profiling);
    expect_identical(incremental, full);
    cfg.use_reference_matcher = true;
    const SimResult reference = run(scheme, tasks, supply, cfg, profiling);
    expect_identical(incremental, reference);
  }
};

TEST(MatchEquivalence, AllSchemesUtilityOnly) {
  const Scenario s(16, 11);
  const auto tasks = s.make_tasks(40, 21);
  for (const Scheme scheme : kAllSchemes) {
    SCOPED_TRACE(scheme_name(scheme));
    s.check_equivalence(scheme, tasks, HybridSupply{}, SimConfig{});
  }
}

TEST(MatchEquivalence, AllSchemesWithWind) {
  const Scenario s(16, 13);
  const auto tasks = s.make_tasks(40, 23);
  const HybridSupply supply = s.make_supply(31);
  for (const Scheme scheme : kAllSchemes) {
    SCOPED_TRACE(scheme_name(scheme));
    s.check_equivalence(scheme, tasks, supply, SimConfig{});
  }
}

TEST(MatchEquivalence, RandomizedClustersAndWorkloads) {
  // Several independently-seeded cluster/workload/supply draws; the two
  // schemes with the most scheduling structure (Effi waits, Fair defers).
  for (const std::uint64_t seed : {101u, 202u, 303u}) {
    SCOPED_TRACE(seed);
    const Scenario s(12, seed);
    const auto tasks = s.make_tasks(30, seed * 3);
    const HybridSupply supply = s.make_supply(seed * 5);
    s.check_equivalence(Scheme::kScanEffi, tasks, supply, SimConfig{});
    s.check_equivalence(Scheme::kScanFair, tasks, supply, SimConfig{});
  }
}

TEST(MatchEquivalence, WithBattery) {
  const Scenario s(16, 17);
  const auto tasks = s.make_tasks(35, 27);
  const HybridSupply supply = s.make_supply(37);
  SimConfig cfg;
  cfg.battery = BatteryConfig::make(/*capacity_kwh=*/2.0, /*power_kw=*/1.0);
  for (const Scheme scheme : {Scheme::kScanFair, Scheme::kBinEffi}) {
    SCOPED_TRACE(scheme_name(scheme));
    s.check_equivalence(scheme, tasks, supply, cfg);
  }
}

TEST(MatchEquivalence, WithProfilingWindows) {
  const Scenario s(16, 19);
  const auto tasks = s.make_tasks(35, 29);
  const HybridSupply supply = s.make_supply(39);
  std::vector<ProfilingWindow> windows;
  for (std::size_t w = 0; w < 4; ++w) {
    ProfilingWindow win;
    win.start_s = 500.0 + 2500.0 * static_cast<double>(w);
    win.duration_s = 900.0;
    win.proc_ids = {w, w + 4, w + 8};
    windows.push_back(win);
  }
  s.check_equivalence(Scheme::kScanEffi, tasks, supply, SimConfig{}, windows);
  s.check_equivalence(Scheme::kScanRan, tasks, supply, SimConfig{}, windows);
}

// ----------------------------------------------- incremental identity
//
// ISSUE 8's delta-rematch contract: SimConfig::incremental_rematch is a
// pure performance switch. Every scenario axis the optimized matcher is
// held to (schemes, wind, battery, profiling windows, active faults,
// sharding) must come out bit-identical with the cache on, with it off,
// and against the reference matcher.

TEST(IncrementalIdentity, AllSchemesWithWind) {
  const Scenario s(16, 111);
  const auto tasks = s.make_tasks(40, 113);
  const HybridSupply supply = s.make_supply(117);
  for (const Scheme scheme : kAllSchemes) {
    SCOPED_TRACE(scheme_name(scheme));
    s.check_incremental_identity(scheme, tasks, supply, SimConfig{});
  }
}

TEST(IncrementalIdentity, AllSchemesUtilityOnly) {
  // No wind: phase 2 never fires and the cached trajectories stay empty,
  // but the cursor machinery still runs on every epoch -- it must be
  // inert.
  const Scenario s(16, 121);
  const auto tasks = s.make_tasks(40, 123);
  for (const Scheme scheme : kAllSchemes) {
    SCOPED_TRACE(scheme_name(scheme));
    s.check_incremental_identity(scheme, tasks, HybridSupply{}, SimConfig{});
  }
}

TEST(IncrementalIdentity, WithBattery) {
  const Scenario s(16, 131);
  const auto tasks = s.make_tasks(35, 133);
  const HybridSupply supply = s.make_supply(137);
  SimConfig cfg;
  cfg.battery = BatteryConfig::make(/*capacity_kwh=*/2.0, /*power_kw=*/1.0);
  for (const Scheme scheme : {Scheme::kScanFair, Scheme::kBinEffi}) {
    SCOPED_TRACE(scheme_name(scheme));
    s.check_incremental_identity(scheme, tasks, supply, cfg);
  }
}

TEST(IncrementalIdentity, WithProfilingWindows) {
  const Scenario s(16, 141);
  const auto tasks = s.make_tasks(35, 143);
  const HybridSupply supply = s.make_supply(147);
  std::vector<ProfilingWindow> windows;
  for (std::size_t w = 0; w < 4; ++w) {
    ProfilingWindow win;
    win.start_s = 500.0 + 2500.0 * static_cast<double>(w);
    win.duration_s = 900.0;
    win.proc_ids = {w, w + 4, w + 8};
    windows.push_back(win);
  }
  s.check_incremental_identity(Scheme::kScanEffi, tasks, supply, SimConfig{},
                               windows);
  s.check_incremental_identity(Scheme::kScanRan, tasks, supply, SimConfig{},
                               windows);
}

TEST(IncrementalIdentity, WithFaultsActive) {
  // Crashes, requeues and quarantine generation bumps all invalidate the
  // cache mid-flight; the fallback full solves must leave no trace.
  const Scenario s(16, 151);
  const auto tasks = s.make_tasks(40, 153);
  const HybridSupply supply = s.make_supply(157);
  SimConfig cfg;
  cfg.faults.crash_mtbf_s = 6.0 * 3600.0;
  cfg.faults.repair_mean_s = 900.0;
  cfg.faults.misprofile_prob = 0.2;
  cfg.fault_seed = 19;
  for (const Scheme scheme : {Scheme::kScanEffi, Scheme::kScanFair,
                              Scheme::kBinEffi}) {
    SCOPED_TRACE(scheme_name(scheme));
    s.check_incremental_identity(scheme, tasks, supply, cfg);
  }
}

TEST(IncrementalIdentity, TwoShards) {
  // Each shard owns its own MatcherColumns and IncrementalMatchState; the
  // epoch-barrier wind reconciliation must see identical per-shard demand
  // whichever way each shard solved.
  const Scenario s(16, 161);
  const auto tasks = s.make_tasks(40, 163);
  const HybridSupply supply = s.make_supply(167);
  SimConfig cfg;
  cfg.record_trace = true;
  cfg.record_timeline = true;
  cfg.topology.cpus_per_rack = 2;
  cfg.topology.shards = 2;
  for (const Scheme scheme : {Scheme::kScanEffi, Scheme::kScanFair}) {
    SCOPED_TRACE(scheme_name(scheme));
    const ProfileDb* db = scheme_uses_scan(scheme) ? &s.db : nullptr;
    SimConfig on = cfg;
    on.incremental_rematch = true;
    SimConfig off = cfg;
    off.incremental_rematch = false;
    ShardedSim sim_on(s.cluster, scheme, db, supply, on);
    ShardedSim sim_off(s.cluster, scheme, db, supply, off);
    const SimResult a = sim_on.run(tasks);
    const SimResult b = sim_off.run(tasks);
    expect_identical(a, b);
  }
}

// ----------------------------------------------- 50-seed delta property
//
// Matcher-scope property test: whatever wind-budget walk an epoch
// sequence throws at it, a match_incremental hit must reproduce the
// from-scratch match_columns solve exactly -- compute, demand, step
// count, and every per-row level, to the bit. The walk also perturbs
// task progress and the clock between epochs; when that moves a deadline
// floor the incremental path must *refuse* (return false) rather than
// replay a stale trajectory.

TEST(IncrementalProperty, RandomDeltaWalksAreExact) {
  ClusterConfig ccfg;
  ccfg.num_processors = 64;
  ccfg.seed = 5;
  const Cluster cluster = build_cluster(ccfg);
  const Knowledge knowledge(&cluster, KnowledgeSource::kBin);
  const PowerMatcher matcher(&knowledge, 1.4);
  const std::size_t levels = knowledge.levels();
  const double fmax = cluster.levels().freq_ghz.back();
  std::vector<double> ratio;
  for (const double f : cluster.levels().freq_ghz)
    ratio.push_back(fmax / f - 1.0);

  std::size_t hits = 0;
  std::size_t total = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    SCOPED_TRACE(seed);
    Rng rng(seed * 1000 + 17);
    const auto rows =
        static_cast<std::size_t>(rng.uniform_int(1, 40));
    MatcherColumns cols;
    cols.reset(levels, rows);
    std::vector<double> power_row(levels);
    double now = 0.0;
    std::size_t next_proc = 0;
    for (std::size_t r = 0; r < rows; ++r) {
      const double remaining = rng.uniform(50.0, 5000.0);
      const double deadline = remaining * rng.uniform(1.2, 12.0);
      cols.append(r, remaining, deadline);
      for (std::size_t l = 0; l < levels; ++l) {
        Watts p;
        for (int k = 0; k < 4; ++k)
          p += knowledge.power((next_proc + static_cast<std::size_t>(k)) %
                                   cluster.size(),
                               l);
        power_row[l] = p.raw();
      }
      next_proc += 4;
      cols.fill_row(r, rng.uniform(0.3, 1.0), ratio.data(), power_row.data());
    }

    MatchScratch scratch;
    IncrementalMatchState inc;
    // Zero-wind solve: phase 2 gated off, so the cache starts with an
    // empty trajectory AND no heap -- the first fitting epoch must take
    // the heap_built escape hatch and full-solve.
    const MatchResult cached =
        matcher.match_columns(cols, Watts{}, now, scratch, &inc);
    const double top_demand = cached.demand.raw();

    for (int step = 0; step < 40; ++step) {
      // Occasionally let the tasks progress and the clock move: floors
      // that survive keep the cache hot; floors that move must force a
      // refusal, never a stale replay.
      if (rng.uniform(0.0, 1.0) < 0.25) {
        now += rng.uniform(0.0, 300.0);
        for (std::size_t r = 0; r < rows; ++r)
          cols.remaining[r] =
              std::max(0.0, cols.remaining[r] - rng.uniform(0.0, 100.0));
      }
      const Watts wind{rng.uniform(0.0, 1.3 * top_demand)};
      MatcherColumns fresh = cols;
      MatchScratch fresh_scratch;
      const MatchResult full =
          matcher.match_columns(fresh, wind, now, fresh_scratch);
      MatchResult out;
      ++total;
      if (matcher.match_incremental(cols, wind, now, scratch, inc, out)) {
        ++hits;
      } else {
        out = matcher.match_columns(cols, wind, now, scratch, &inc);
      }
      ASSERT_EQ(out.compute.raw(), full.compute.raw()) << "step " << step;
      ASSERT_EQ(out.demand.raw(), full.demand.raw()) << "step " << step;
      ASSERT_EQ(out.steps, full.steps) << "step " << step;
      for (std::size_t r = 0; r < rows; ++r)
        ASSERT_EQ(cols.level[r], fresh.level[r])
            << "step " << step << " row " << r;
    }
  }
  // The walk must actually exercise the replay path, not just fall back.
  EXPECT_GT(hits, total / 4);
}

// ----------------------------------------------- zero-fault identity
//
// The fault layer's core contract (src/fault/fault.hpp): a run with the
// default SimConfig (no FaultSpec, no plan) and a run handed an explicitly
// empty FaultPlan must both be bit-identical to each other -- the fault
// machinery may not perturb a single event, draw, or accumulation when it
// has nothing to inject.

TEST(ZeroFaultIdentity, EmptyPlanIsBitIdenticalAllSchemes) {
  const Scenario s(16, 43);
  const auto tasks = s.make_tasks(40, 53);
  const HybridSupply supply = s.make_supply(61);
  for (const Scheme scheme : kAllSchemes) {
    SCOPED_TRACE(scheme_name(scheme));
    SimConfig plain;                   // never heard of faults
    SimConfig with_empty_plan;         // explicit empty plan wired through
    with_empty_plan.fault_plan = std::make_shared<const FaultPlan>();
    const SimResult a = s.run(scheme, tasks, supply, plain);
    const SimResult b = s.run(scheme, tasks, supply, with_empty_plan);
    expect_identical(a, b);
    EXPECT_EQ(b.faults.cpu_failures, 0u);
    EXPECT_EQ(b.faults.task_requeues, 0u);
    EXPECT_EQ(b.faults.tasks_failed, 0u);
    EXPECT_EQ(b.faults.lost_cpu_seconds, 0.0);
  }
}

TEST(ZeroFaultIdentity, WithBatteryAndProfilingWindows) {
  const Scenario s(16, 47);
  const auto tasks = s.make_tasks(35, 57);
  const HybridSupply supply = s.make_supply(67);
  SimConfig cfg;
  cfg.battery = BatteryConfig::make(/*capacity_kwh=*/2.0, /*power_kw=*/1.0);
  std::vector<ProfilingWindow> windows;
  for (std::size_t w = 0; w < 3; ++w) {
    ProfilingWindow win;
    win.start_s = 800.0 + 3000.0 * static_cast<double>(w);
    win.duration_s = 600.0;
    win.proc_ids = {w, w + 5, w + 10};
    windows.push_back(win);
  }
  for (const Scheme scheme : {Scheme::kScanEffi, Scheme::kBinRan}) {
    SCOPED_TRACE(scheme_name(scheme));
    SimConfig with_empty_plan = cfg;
    with_empty_plan.fault_plan = std::make_shared<const FaultPlan>();
    const SimResult a = s.run(scheme, tasks, supply, cfg, windows);
    const SimResult b = s.run(scheme, tasks, supply, with_empty_plan,
                              windows);
    expect_identical(a, b);
  }
}

TEST(MatchEquivalence, FaultsActiveOptimizedMatchesReference) {
  // The allocation-free rematch path must stay bit-equivalent to the
  // reference matcher even while CPUs crash, tasks requeue, and the
  // knowledge view's quarantine generation churns under it.
  const Scenario s(16, 51);
  const auto tasks = s.make_tasks(40, 59);
  const HybridSupply supply = s.make_supply(71);
  SimConfig cfg;
  cfg.faults.crash_mtbf_s = 6.0 * 3600.0;
  cfg.faults.repair_mean_s = 900.0;
  cfg.faults.misprofile_prob = 0.2;
  cfg.fault_seed = 13;
  for (const Scheme scheme : {Scheme::kScanEffi, Scheme::kScanFair,
                              Scheme::kBinEffi}) {
    SCOPED_TRACE(scheme_name(scheme));
    s.check_equivalence(scheme, tasks, supply, cfg);
  }
}

// ----------------------------------------------- telemetry-off identity
//
// The telemetry subsystem's core contract (DESIGN.md Sec. 11): spans,
// counters, and the epoch sampler are pure observers. A run with telemetry
// enabled must produce a bit-identical SimResult to one with it disabled --
// same events, same draws, same accumulations -- because instrumentation
// schedules no events and touches no simulator state.

class TelemetryOffIdentity : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::set_enabled(false);
    telemetry::reset_global_telemetry();
  }
  void TearDown() override {
    telemetry::set_enabled(false);
    telemetry::reset_global_telemetry();
  }
};

TEST_F(TelemetryOffIdentity, EnabledRunIsBitIdenticalAllSchemes) {
  const Scenario s(16, 71);
  const auto tasks = s.make_tasks(40, 73);
  const HybridSupply supply = s.make_supply(79);
  for (const Scheme scheme : kAllSchemes) {
    SCOPED_TRACE(scheme_name(scheme));
    telemetry::set_enabled(false);
    const SimResult off = s.run(scheme, tasks, supply, SimConfig{});
    telemetry::set_enabled(true);
    const SimResult on = s.run(scheme, tasks, supply, SimConfig{});
    telemetry::set_enabled(false);
    expect_identical(off, on);
  }
  // The instrumented runs actually produced telemetry (unless the whole
  // subsystem was compiled out).
#ifndef ISCOPE_TELEMETRY_OFF
  EXPECT_GT(telemetry::SampleLog::global().size(), 0u);
  EXPECT_GT(telemetry::TraceLog::global().total_events(), 0u);
#endif
}

TEST_F(TelemetryOffIdentity, WithBatteryProfilingAndFaults) {
  // The hardest mix: battery arbitration, in-band profiling windows, and
  // an active fault plan all share the event queue the sampler piggybacks
  // on. Telemetry must still not perturb a single draw.
  const Scenario s(16, 83);
  const auto tasks = s.make_tasks(35, 89);
  const HybridSupply supply = s.make_supply(97);
  SimConfig cfg;
  cfg.battery = BatteryConfig::make(/*capacity_kwh=*/2.0, /*power_kw=*/1.0);
  cfg.faults.crash_mtbf_s = 6.0 * 3600.0;
  cfg.faults.repair_mean_s = 900.0;
  cfg.faults.misprofile_prob = 0.2;
  cfg.fault_seed = 17;
  std::vector<ProfilingWindow> windows;
  for (std::size_t w = 0; w < 3; ++w) {
    ProfilingWindow win;
    win.start_s = 700.0 + 2800.0 * static_cast<double>(w);
    win.duration_s = 700.0;
    win.proc_ids = {w, w + 4, w + 9};
    windows.push_back(win);
  }
  for (const Scheme scheme : {Scheme::kScanEffi, Scheme::kBinEffi}) {
    SCOPED_TRACE(scheme_name(scheme));
    telemetry::set_enabled(false);
    const SimResult off = s.run(scheme, tasks, supply, cfg, windows);
    telemetry::set_enabled(true);
    const SimResult on = s.run(scheme, tasks, supply, cfg, windows);
    telemetry::set_enabled(false);
    expect_identical(off, on);
  }
}

TEST(MatchEquivalence, ReusedSimulatorStaysEquivalent) {
  // Back-to-back runs on one simulator (warm scratch buffers) must behave
  // exactly like a fresh one.
  const Scenario s(12, 23);
  const auto tasks = s.make_tasks(25, 33);
  const HybridSupply supply = s.make_supply(43);
  SimConfig cfg;
  cfg.record_trace = true;
  cfg.record_timeline = true;
  const Knowledge knowledge(&s.cluster, scheme_knowledge(Scheme::kScanEffi),
                            &s.db);
  DatacenterSim sim(&knowledge, scheme_rule(Scheme::kScanEffi), &supply, cfg);
  const SimResult first = sim.run(tasks);
  const SimResult second = sim.run(tasks);
  expect_identical(first, second);
}

}  // namespace
}  // namespace iscope
