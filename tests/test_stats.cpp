#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace iscope {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.0);
  EXPECT_EQ(s.max(), 3.0);
  EXPECT_EQ(s.sum(), 3.0);
}

TEST(RunningStats, MatchesBatchFormulas) {
  Rng rng(1);
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(5.0, 3.0);
    xs.push_back(x);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(s.variance(), variance(xs), 1e-9);
  EXPECT_NEAR(s.stddev(), stddev(xs), 1e-9);
}

TEST(RunningStats, SampleVarianceUsesNMinusOne) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);         // population
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);  // sample
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(2);
  RunningStats all, a, b;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  const double m = a.mean();
  a.merge(b);
  EXPECT_EQ(a.mean(), m);
  b.merge(a);
  EXPECT_EQ(b.mean(), m);
}

TEST(BatchStats, EmptyInputs) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(variance({}), 0.0);
  EXPECT_EQ(coeff_of_variation({}), 0.0);
}

TEST(BatchStats, KnownValues) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
  EXPECT_DOUBLE_EQ(coeff_of_variation(xs), 0.4);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 33.0), 7.0);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({30.0, 10.0, 20.0}, 50.0), 20.0);
}

TEST(Percentile, Errors) {
  EXPECT_THROW(percentile({}, 50.0), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, -1.0), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, 101.0), InvalidArgument);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, Errors) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.bin_count(2), InvalidArgument);
  EXPECT_THROW(h.bin_lo(5), InvalidArgument);
}

}  // namespace
}  // namespace iscope
