// Scheme registry (sched/scheme.hpp): the paper's five schemes keep their
// historical names and ids, and new (knowledge, rule) combinations
// registered at runtime flow through name lookup and run_scheme() exactly
// like the built-ins.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "profiling/scanner.hpp"
#include "sim/simulator.hpp"

namespace iscope {
namespace {

TEST(SchemeRegistry, PaperSchemesKeepTheirNamesAndIds) {
  // These strings are load-bearing: CLI flags, sweep configs, and the
  // committed bench baselines all reference them.
  EXPECT_STREQ(scheme_name(Scheme::kBinRan), "BinRan");
  EXPECT_STREQ(scheme_name(Scheme::kBinEffi), "BinEffi");
  EXPECT_STREQ(scheme_name(Scheme::kScanRan), "ScanRan");
  EXPECT_STREQ(scheme_name(Scheme::kScanEffi), "ScanEffi");
  EXPECT_STREQ(scheme_name(Scheme::kScanFair), "ScanFair");
  for (const Scheme s : kAllSchemes) {
    EXPECT_EQ(scheme_from_name(scheme_name(s)), s);
    EXPECT_TRUE(SchemeRegistry::global().known(s));
  }
}

TEST(SchemeRegistry, PaperSchemeFactoryInputs) {
  EXPECT_EQ(scheme_knowledge(Scheme::kBinRan), KnowledgeSource::kBin);
  EXPECT_EQ(scheme_knowledge(Scheme::kScanFair), KnowledgeSource::kScan);
  EXPECT_EQ(scheme_rule(Scheme::kBinRan), PlacementRule::kRandom);
  EXPECT_EQ(scheme_rule(Scheme::kScanEffi), PlacementRule::kEfficiency);
  EXPECT_EQ(scheme_rule(Scheme::kScanFair), PlacementRule::kFair);
  EXPECT_FALSE(scheme_uses_scan(Scheme::kBinEffi));
  EXPECT_TRUE(scheme_uses_scan(Scheme::kScanRan));
}

TEST(SchemeRegistry, UnknownLookupsThrow) {
  EXPECT_THROW(scheme_from_name("NoSuchScheme"), InvalidArgument);
  EXPECT_THROW(SchemeRegistry::global().info(static_cast<Scheme>(250)),
               InvalidArgument);
  EXPECT_FALSE(SchemeRegistry::global().known(static_cast<Scheme>(250)));
}

TEST(SchemeRegistry, RegisteredSchemeRoundTrips) {
  // The missing sixth combination: binned knowledge + Fair placement.
  const Scheme bin_fair = SchemeRegistry::global().register_scheme(
      "BinFairRoundTrip", KnowledgeSource::kBin, PlacementRule::kFair);
  EXPECT_GE(static_cast<std::size_t>(bin_fair), kAllSchemes.size());
  EXPECT_STREQ(scheme_name(bin_fair), "BinFairRoundTrip");
  EXPECT_EQ(scheme_from_name("BinFairRoundTrip"), bin_fair);
  EXPECT_EQ(scheme_knowledge(bin_fair), KnowledgeSource::kBin);
  EXPECT_EQ(scheme_rule(bin_fair), PlacementRule::kFair);
  EXPECT_FALSE(scheme_uses_scan(bin_fair));

  // Duplicate names are a caller bug.
  EXPECT_THROW(SchemeRegistry::global().register_scheme(
                   "BinFairRoundTrip", KnowledgeSource::kScan,
                   PlacementRule::kRandom),
               InvalidArgument);
  EXPECT_THROW(SchemeRegistry::global().register_scheme(
                   "ScanFair", KnowledgeSource::kScan, PlacementRule::kFair),
               InvalidArgument);

  // all() lists the paper five first, then the extension.
  const std::vector<Scheme> all = SchemeRegistry::global().all();
  ASSERT_GE(all.size(), 6u);
  for (std::size_t i = 0; i < kAllSchemes.size(); ++i)
    EXPECT_EQ(all[i], kAllSchemes[i]);
}

TEST(SchemeRegistry, RegisteredSchemeRunsThroughRunScheme) {
  ClusterConfig ccfg;
  ccfg.num_processors = 16;
  ccfg.seed = 3;
  const Cluster cluster = build_cluster(ccfg);

  const Scheme bin_fair = SchemeRegistry::global().register_scheme(
      "BinFairSimulated", KnowledgeSource::kBin, PlacementRule::kFair);

  Rng rng(5);
  std::vector<Task> tasks;
  double submit = 0.0;
  for (std::size_t i = 0; i < 20; ++i) {
    submit += rng.uniform(0.0, 300.0);
    Task t;
    t.id = static_cast<std::int64_t>(i + 1);
    t.submit_s = submit;
    t.cpus = static_cast<std::size_t>(rng.uniform_int(1, 6));
    t.runtime_s = rng.uniform(100.0, 1500.0);
    t.gamma = rng.uniform(0.3, 1.0);
    t.deadline_s = t.submit_s + t.runtime_s * 8.0;
    tasks.push_back(t);
  }

  // Bin knowledge: no ProfileDb needed, exactly like BinRan/BinEffi.
  const SimResult r =
      run_scheme(cluster, bin_fair, nullptr, HybridSupply{}, tasks,
                 SimConfig{});
  EXPECT_EQ(r.tasks_completed, tasks.size());
  EXPECT_GT(r.events_processed, 0u);
  EXPECT_GT(r.energy.total().joules(), 0.0);
}

}  // namespace
}  // namespace iscope
