#include "sched/power_matcher.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hardware/cluster.hpp"

namespace iscope {
namespace {

struct Fixture {
  Cluster cluster;
  Knowledge knowledge;
  PowerMatcher matcher;

  Fixture()
      : cluster(build_cluster([] {
          ClusterConfig cfg;
          cfg.num_processors = 16;
          cfg.seed = 7;
          return cfg;
        }())),
        knowledge(&cluster, KnowledgeSource::kBin),
        matcher(&knowledge, 1.4) {}

  ActiveTask task(double work = 1000.0, double deadline = 1e9,
                  double gamma = 1.0,
                  std::vector<std::size_t> procs = {0, 1}) {
    ActiveTask t;
    t.remaining_work_s = work;
    t.deadline_s = deadline;
    t.gamma = gamma;
    t.procs = std::move(procs);
    return t;
  }
};

TEST(MinFeasibleLevel, LooseDeadlineAllowsBottom) {
  Fixture f;
  const ActiveTask t = f.task(1000.0, 1e9);
  EXPECT_EQ(f.matcher.min_feasible_level(t, 0.0), 0u);
}

TEST(MinFeasibleLevel, TightDeadlineForcesTop) {
  Fixture f;
  // Work 1000 s at Fmax, deadline in 1000 s: only the top level fits.
  const ActiveTask t = f.task(1000.0, 1000.0);
  EXPECT_EQ(f.matcher.min_feasible_level(t, 0.0),
            f.knowledge.levels() - 1);
}

TEST(MinFeasibleLevel, ImpossibleDeadlineStillTop) {
  Fixture f;
  const ActiveTask t = f.task(1000.0, 10.0);
  EXPECT_EQ(f.matcher.min_feasible_level(t, 0.0),
            f.knowledge.levels() - 1);
}

TEST(MinFeasibleLevel, IntermediateDeadline) {
  Fixture f;
  // gamma=1: level freq 1.375 GHz has slowdown 2/1.375 = 1.4545...
  // 1000 * 1.4545 = 1454 s. Deadline 1500 from now admits level 2.
  const ActiveTask t = f.task(1000.0, 1500.0);
  const std::size_t l = f.matcher.min_feasible_level(t, 0.0);
  EXPECT_EQ(l, 2u);
  // Moving "now" later tightens it.
  EXPECT_GT(f.matcher.min_feasible_level(t, 400.0), l);
}

TEST(EnergyOptimal, NotTheBottomLevel) {
  // With beta = 65 dominating at low f, crawling wastes static energy:
  // the optimum must sit above the bottom level for a CPU-bound task.
  Fixture f;
  const ActiveTask t = f.task(1000.0, 1e9, 1.0);
  const std::size_t l = f.matcher.energy_optimal_level(t, 0);
  EXPECT_GT(l, 0u);
  EXPECT_LT(l, f.knowledge.levels());
}

TEST(EnergyOptimal, RespectsFloor) {
  Fixture f;
  const ActiveTask t = f.task();
  const std::size_t top = f.knowledge.levels() - 1;
  EXPECT_EQ(f.matcher.energy_optimal_level(t, top), top);
}

TEST(EnergyOptimal, IsActuallyOptimal) {
  Fixture f;
  ActiveTask t = f.task(1000.0, 1e9, 0.8, {3, 4, 5});
  const std::size_t best = f.matcher.energy_optimal_level(t, 0);
  const double e_best =
      f.matcher.task_power(t, best).watts() * f.matcher.slowdown(t, best);
  for (std::size_t l = 0; l < f.knowledge.levels(); ++l) {
    const double e = f.matcher.task_power(t, l).watts() * f.matcher.slowdown(t, l);
    EXPECT_GE(e, e_best - 1e-9);
  }
}

TEST(EnergyOptimal, IoBoundPrefersLowerFrequency) {
  // gamma = 0: runtime does not stretch, so the cheapest level is the
  // bottom one (pure power minimization).
  Fixture f;
  const ActiveTask t = f.task(1000.0, 1e9, 0.0);
  EXPECT_EQ(f.matcher.energy_optimal_level(t, 0), 0u);
}

TEST(Match, EmptyTaskListIsZero) {
  Fixture f;
  std::vector<ActiveTask> tasks;
  const MatchResult r = f.matcher.match(tasks, Watts{1000.0}, 0.0);
  EXPECT_DOUBLE_EQ(r.demand.watts(), 0.0);
  EXPECT_EQ(r.steps, 0u);
}

TEST(Match, NoWindRunsEnergyOptimalBaseline) {
  Fixture f;
  std::vector<ActiveTask> tasks = {f.task(), f.task(500.0, 1e9, 0.9, {2, 3})};
  const MatchResult r = f.matcher.match(tasks, Watts{0.0}, 0.0);
  EXPECT_EQ(r.steps, 0u);
  for (const auto& t : tasks) {
    const std::size_t expect = f.matcher.energy_optimal_level(
        t, f.matcher.min_feasible_level(t, 0.0));
    EXPECT_EQ(t.level, expect);
  }
}

TEST(Match, AbundantWindKeepsBaseline) {
  Fixture f;
  std::vector<ActiveTask> tasks = {f.task()};
  const MatchResult r = f.matcher.match(tasks, Watts{1e9}, 0.0);
  EXPECT_EQ(r.steps, 0u);
  EXPECT_LE(r.demand.watts(), 1e9);
}

TEST(Match, MidWindStepsDownToFit) {
  Fixture f;
  std::vector<ActiveTask> tasks;
  for (int i = 0; i < 4; ++i)
    tasks.push_back(f.task(1000.0, 1e9, 1.0,
                           {static_cast<std::size_t>(2 * i),
                            static_cast<std::size_t>(2 * i + 1)}));
  // Baseline demand:
  std::vector<ActiveTask> probe = tasks;
  const double baseline = f.matcher.match(probe, Watts{0.0}, 0.0).demand.watts();
  // All-floor demand:
  std::vector<ActiveTask> floors = tasks;
  double floor_w = 0.0;
  for (auto& t : floors)
    floor_w += f.matcher.task_power(t, 0).watts();
  floor_w *= f.matcher.cooling_factor();
  // A budget between floor and baseline is reachable by stepping down.
  const double budget = 0.5 * (floor_w + baseline);
  const MatchResult r = f.matcher.match(tasks, Watts{budget}, 0.0);
  EXPECT_GT(r.steps, 0u);
  EXPECT_LE(r.demand.watts(), budget + 1e-9);
}

TEST(Match, UnreachableWindSkipsStretching) {
  // Wind below the all-floors demand: stretching would only defer utility
  // burn, so the matcher keeps the energy-optimal baseline (DESIGN.md /
  // Sec. V-C refinement).
  Fixture f;
  std::vector<ActiveTask> tasks = {f.task(), f.task(800.0, 1e9, 1.0, {4, 5})};
  const MatchResult no_wind = f.matcher.match(tasks, Watts{0.0}, 0.0);
  std::vector<ActiveTask> again = {f.task(), f.task(800.0, 1e9, 1.0, {4, 5})};
  const MatchResult tiny_wind = f.matcher.match(again, Watts{1.0}, 0.0);
  EXPECT_EQ(tiny_wind.steps, 0u);
  EXPECT_DOUBLE_EQ(tiny_wind.demand.watts(), no_wind.demand.watts());
}

TEST(Match, DeadlineFloorsAreRespected) {
  Fixture f;
  // Tight deadline: floor at the top level; wind pressure must not push it
  // below.
  std::vector<ActiveTask> tasks = {f.task(1000.0, 1000.0)};
  const MatchResult r = f.matcher.match(tasks, Watts{10.0}, 0.0);
  EXPECT_EQ(tasks[0].level, f.knowledge.levels() - 1);
  EXPECT_GT(r.demand.watts(), 10.0);  // utility will supplement
}

TEST(Match, DemandIncludesCoolingFactor) {
  Fixture f;
  std::vector<ActiveTask> tasks = {f.task()};
  const MatchResult r = f.matcher.match(tasks, Watts{0.0}, 0.0);
  EXPECT_NEAR(r.demand.watts(), r.compute.watts() * 1.4, 1e-9);
}

TEST(Match, Deterministic) {
  Fixture f;
  std::vector<ActiveTask> a = {f.task(), f.task(500.0, 5000.0, 0.7, {2, 3})};
  std::vector<ActiveTask> b = a;
  const MatchResult ra = f.matcher.match(a, Watts{300.0}, 0.0);
  const MatchResult rb = f.matcher.match(b, Watts{300.0}, 0.0);
  EXPECT_EQ(ra.demand.watts(), rb.demand.watts());
  EXPECT_EQ(a[0].level, b[0].level);
  EXPECT_EQ(a[1].level, b[1].level);
}

TEST(Match, TaskPowerSumsProcessors) {
  Fixture f;
  ActiveTask t = f.task(100.0, 1e9, 1.0, {0, 1, 2});
  const std::size_t top = f.knowledge.levels() - 1;
  const double expect = f.knowledge.power(0, top).watts() +
                        f.knowledge.power(1, top).watts() +
                        f.knowledge.power(2, top).watts();
  EXPECT_DOUBLE_EQ(f.matcher.task_power(t, top).watts(), expect);
}

TEST(Match, Validation) {
  Fixture f;
  EXPECT_THROW(PowerMatcher(nullptr, 1.4), InvalidArgument);
  EXPECT_THROW(PowerMatcher(&f.knowledge, 0.9), InvalidArgument);
  std::vector<ActiveTask> tasks = {f.task()};
  EXPECT_THROW(f.matcher.match(tasks, Watts{-1.0}, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace iscope
