#include "variation/vdd_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace iscope {
namespace {

TEST(FreqLevels, PaperDefaultMatchesSectionVB) {
  const FreqLevels levels = FreqLevels::paper_default();
  ASSERT_EQ(levels.count(), 5u);  // 5 DVFS levels
  EXPECT_DOUBLE_EQ(levels.freq_ghz.front(), 0.75);  // 750 MHz
  EXPECT_DOUBLE_EQ(levels.freq_ghz.back(), 2.0);    // 2 GHz
  EXPECT_NO_THROW(levels.validate());
}

TEST(FreqLevels, ValidationRejectsBadTables) {
  FreqLevels empty;
  EXPECT_THROW(empty.validate(), InvalidArgument);

  FreqLevels mismatch{{1.0, 2.0}, {1.0}};
  EXPECT_THROW(mismatch.validate(), InvalidArgument);

  FreqLevels descending{{2.0, 1.0}, {1.0, 1.1}};
  EXPECT_THROW(descending.validate(), InvalidArgument);

  FreqLevels vdd_drop{{1.0, 2.0}, {1.2, 1.0}};
  EXPECT_THROW(vdd_drop.validate(), InvalidArgument);
}

TEST(MinVddCurve, AccessorsAndBounds) {
  const MinVddCurve c({1.0, 2.0}, {0.9, 1.1});
  EXPECT_EQ(c.levels(), 2u);
  EXPECT_DOUBLE_EQ(c.freq(1), 2.0);
  EXPECT_DOUBLE_EQ(c.vdd(0), 0.9);
  EXPECT_THROW(c.freq(2), InvalidArgument);
  EXPECT_THROW(c.vdd(2), InvalidArgument);
}

TEST(MinVddCurve, RejectsNonMonotone) {
  EXPECT_THROW(MinVddCurve({2.0, 1.0}, {1.0, 1.1}), InvalidArgument);
  EXPECT_THROW(MinVddCurve({1.0, 2.0}, {1.1, 1.0}), InvalidArgument);
  EXPECT_THROW(MinVddCurve({1.0}, {1.0, 1.1}), InvalidArgument);
}

TEST(MinVddCurve, ChipWorstCaseTakesMax) {
  const MinVddCurve a({1.0, 2.0}, {0.90, 1.10});
  const MinVddCurve b({1.0, 2.0}, {0.95, 1.05});
  const std::vector<MinVddCurve> cores = {a, b};
  const MinVddCurve chip = MinVddCurve::chip_worst_case(cores);
  EXPECT_DOUBLE_EQ(chip.vdd(0), 0.95);
  EXPECT_DOUBLE_EQ(chip.vdd(1), 1.10);
}

TEST(MinVddCurve, ChipWorstCaseChecksInputs) {
  const std::vector<MinVddCurve> none;
  EXPECT_THROW(MinVddCurve::chip_worst_case(none), InvalidArgument);
  const MinVddCurve a({1.0, 2.0}, {0.9, 1.1});
  const MinVddCurve other({1.0, 3.0}, {0.9, 1.1});
  const std::vector<MinVddCurve> mixed = {a, other};
  EXPECT_THROW(MinVddCurve::chip_worst_case(mixed), InvalidArgument);
}

TEST(MinVddCurve, ScaledMultipliesVoltages) {
  const MinVddCurve c({1.0, 2.0}, {1.0, 1.2});
  const MinVddCurve s = c.scaled(1.1);
  EXPECT_DOUBLE_EQ(s.vdd(0), 1.1);
  EXPECT_NEAR(s.vdd(1), 1.32, 1e-12);
  EXPECT_THROW(c.scaled(0.0), InvalidArgument);
}

TEST(BuildCoreCurve, MonotoneAndAboveFloor) {
  const VariusModel m(VariusParams{}, quad_core_layout());
  Rng rng(1);
  const ChipVariation chip = m.sample_chip(rng);
  const FreqLevels levels = FreqLevels::paper_default();
  for (const auto& core : chip.cores) {
    const MinVddCurve curve = build_core_curve(m, core, levels);
    for (std::size_t l = 0; l < curve.levels(); ++l) {
      EXPECT_GE(curve.vdd(l), m.params().v_floor);
      if (l > 0) {
        EXPECT_GE(curve.vdd(l), curve.vdd(l - 1));
      }
    }
  }
}

TEST(BuildCoreCurve, GuardbandRaisesVoltage) {
  const VariusModel m(VariusParams{}, quad_core_layout());
  Rng rng(2);
  const ChipVariation chip = m.sample_chip(rng);
  const FreqLevels levels = FreqLevels::paper_default();
  const MinVddCurve bare = build_core_curve(m, chip.cores[0], levels, 0.0);
  const MinVddCurve guarded = build_core_curve(m, chip.cores[0], levels, 0.05);
  const std::size_t top = levels.count() - 1;
  EXPECT_GT(guarded.vdd(top), bare.vdd(top));
  EXPECT_NEAR(guarded.vdd(top) / bare.vdd(top), 1.05, 1e-9);
}

TEST(BuildCoreCurve, NegativeGuardbandRejected) {
  const VariusModel m(VariusParams{}, quad_core_layout());
  Rng rng(3);
  const ChipVariation chip = m.sample_chip(rng);
  EXPECT_THROW(
      build_core_curve(m, chip.cores[0], FreqLevels::paper_default(), -0.1),
      InvalidArgument);
}

TEST(GpuPenalty, MatchesFigure4Ratio) {
  // 1.232 V (GPU on) over 1.219 V (GPU off).
  EXPECT_NEAR(kIntegratedGpuPenalty, 1.232 / 1.219, 1e-12);
  EXPECT_GT(kIntegratedGpuPenalty, 1.0);
}

}  // namespace
}  // namespace iscope
