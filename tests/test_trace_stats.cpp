#include "workload/trace_stats.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "sim/timeline.hpp"
#include "workload/synthetic.hpp"
#include "workload/urgency.hpp"

namespace iscope {
namespace {

std::vector<Task> tiny_trace() {
  std::vector<Task> tasks;
  for (int i = 0; i < 4; ++i) {
    Task t;
    t.id = i;
    t.submit_s = i * 100.0;
    t.cpus = (i == 3) ? 3 : 4;  // three pow2, one not
    t.runtime_s = 600.0;
    t.deadline_s = t.submit_s + 6.0 * t.runtime_s;
    t.urgency = (i % 2 == 0) ? Urgency::kHigh : Urgency::kLow;
    tasks.push_back(t);
  }
  return tasks;
}

TEST(TraceStats, BasicAggregates) {
  const TraceStats s = compute_trace_stats(tiny_trace());
  EXPECT_EQ(s.jobs, 4u);
  EXPECT_DOUBLE_EQ(s.span_s, 300.0);
  EXPECT_DOUBLE_EQ(s.mean_interarrival_s, 100.0);
  EXPECT_DOUBLE_EQ(s.mean_width, 3.75);
  EXPECT_EQ(s.max_width, 4u);
  EXPECT_DOUBLE_EQ(s.pow2_width_fraction, 0.75);
  EXPECT_DOUBLE_EQ(s.mean_runtime_s, 600.0);
  EXPECT_DOUBLE_EQ(s.hu_fraction, 0.5);
  EXPECT_DOUBLE_EQ(s.mean_deadline_multiplier, 6.0);
  EXPECT_DOUBLE_EQ(s.total_cpu_seconds, 15.0 * 600.0);
}

TEST(TraceStats, OfferedUtilization) {
  const TraceStats s = compute_trace_stats(tiny_trace());
  // 9000 CPU-seconds over (300 + 600) s horizon = 10 CPUs offered.
  EXPECT_NEAR(s.offered_cpus, 10.0, 1e-9);
  EXPECT_NEAR(offered_utilization(s, 40), 0.25, 1e-9);
  EXPECT_THROW(offered_utilization(s, 0), InvalidArgument);
}

TEST(TraceStats, EmptyTraceThrows) {
  EXPECT_THROW(compute_trace_stats({}), InvalidArgument);
}

TEST(TraceStats, SummaryMentionsKeyNumbers) {
  const std::string text = compute_trace_stats(tiny_trace()).summary();
  EXPECT_NE(text.find("4 jobs"), std::string::npos);
  EXPECT_NE(text.find("75.0%"), std::string::npos);  // pow2 share
}

TEST(TraceStats, SyntheticGeneratorProfile) {
  // The generator's output should land near its configured statistics.
  SyntheticWorkloadConfig cfg;
  cfg.num_jobs = 3000;
  cfg.pow2_fraction = 0.85;
  auto tasks = generate_workload(cfg);
  UrgencyConfig urgency;
  urgency.hu_fraction = 0.3;
  assign_deadlines(tasks, urgency);
  const TraceStats s = compute_trace_stats(tasks);
  EXPECT_NEAR(s.mean_interarrival_s, cfg.mean_interarrival_s, 5.0);
  EXPECT_GT(s.pow2_width_fraction, 0.8);
  EXPECT_NEAR(s.hu_fraction, 0.3, 0.03);
  // HU ~4x at 30%, LU ~12x at 70% -> mean multiplier ~9.6.
  EXPECT_NEAR(s.mean_deadline_multiplier, 9.6, 0.5);
}

// ---------------------------------------------------------------- timeline

TEST(Timeline, KindNames) {
  EXPECT_STREQ(timeline_kind_name(TimelineKind::kArrival), "arrival");
  EXPECT_STREQ(timeline_kind_name(TimelineKind::kDeadlineMiss),
               "deadline_miss");
  EXPECT_STREQ(timeline_kind_name(TimelineKind::kProfilingEnd),
               "profiling_end");
}

TEST(Timeline, CsvExport) {
  std::vector<TimelineEvent> events = {
      {0.0, TimelineKind::kArrival, 1, 4.0},
      {10.0, TimelineKind::kStart, 1, 10.0},
      {100.0, TimelineKind::kCompletion, 1, 90.0},
  };
  const std::string path = testing::TempDir() + "/timeline.csv";
  save_timeline_csv(path, events);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "time_s,kind,task_id,value");
  std::getline(in, line);
  EXPECT_NE(line.find("arrival"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Timeline, BadPathThrows) {
  EXPECT_THROW(save_timeline_csv("/nonexistent/dir/x.csv", {}), ParseError);
}

}  // namespace
}  // namespace iscope
