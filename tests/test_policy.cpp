#include "sched/policy.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/error.hpp"
#include "hardware/cluster.hpp"

namespace iscope {
namespace {

struct Fixture {
  Cluster cluster;
  Knowledge knowledge;
  std::vector<double> busy;

  explicit Fixture(std::size_t n = 20)
      : cluster(build_cluster([&] {
          ClusterConfig cfg;
          cfg.num_processors = n;
          cfg.seed = 3;
          return cfg;
        }())),
        knowledge(&cluster, KnowledgeSource::kBin),
        busy(n, 0.0) {}

  PlacementContext ctx(bool wind_abundant = false, bool forced = false,
                       bool has_wind = false,
                       double slack_s = 10.0 * 3600.0) {
    PlacementContext c;
    c.busy_time_s = &busy;
    c.now_s = 0.0;
    c.has_wind = has_wind;
    c.wind_abundant = wind_abundant;
    c.forced = forced;
    c.slack_s = slack_s;  // generous by default: deferral allowed
    return c;
  }

  std::vector<std::size_t> all_idle() {
    std::vector<std::size_t> idle(cluster.size());
    std::iota(idle.begin(), idle.end(), 0);
    return idle;
  }
};

TEST(PolicyNames, Strings) {
  EXPECT_STREQ(placement_rule_name(PlacementRule::kRandom), "Ran");
  EXPECT_STREQ(placement_rule_name(PlacementRule::kEfficiency), "Effi");
  EXPECT_STREQ(placement_rule_name(PlacementRule::kFair), "Fair");
}

TEST(RandomPolicy, PicksDistinctIdleProcs) {
  Fixture f;
  PlacementPolicy p(&f.knowledge, PlacementRule::kRandom, 1);
  auto idle = f.all_idle();
  const auto ctx = f.ctx();
  for (int round = 0; round < 20; ++round) {
    auto scratch = idle;
    auto pick = p.choose(5, scratch, ctx);
    ASSERT_TRUE(pick.has_value());
    std::set<std::size_t> uniq(pick->begin(), pick->end());
    EXPECT_EQ(uniq.size(), 5u);
    for (const std::size_t id : *pick) EXPECT_LT(id, f.cluster.size());
  }
}

TEST(RandomPolicy, NeverWaitsVoluntarily) {
  Fixture f;
  PlacementPolicy p(&f.knowledge, PlacementRule::kRandom, 2);
  auto idle = f.all_idle();
  const auto ctx = f.ctx(false, false);
  EXPECT_TRUE(p.choose(1, idle, ctx).has_value());
}

TEST(RandomPolicy, DifferentSeedsDifferentPicks) {
  Fixture f;
  PlacementPolicy a(&f.knowledge, PlacementRule::kRandom, 1);
  PlacementPolicy b(&f.knowledge, PlacementRule::kRandom, 99);
  auto i1 = f.all_idle(), i2 = f.all_idle();
  const auto ctx = f.ctx();
  EXPECT_NE(*a.choose(8, i1, ctx), *b.choose(8, i2, ctx));
}

TEST(AnyPolicy, InsufficientIdleMeansWait) {
  Fixture f;
  PlacementPolicy p(&f.knowledge, PlacementRule::kRandom, 3);
  std::vector<std::size_t> idle = {0, 1};
  EXPECT_FALSE(p.choose(3, idle, f.ctx()).has_value());
}

TEST(EffiPolicy, PicksMostEfficientIdle) {
  Fixture f;
  PlacementPolicy p(&f.knowledge, PlacementRule::kEfficiency, 4);
  auto idle = f.all_idle();
  auto pick = p.choose(3, idle, f.ctx());
  ASSERT_TRUE(pick.has_value());
  // The picked three are exactly the three best-ranked processors.
  std::set<std::size_t> expect(f.knowledge.efficiency_order().begin(),
                               f.knowledge.efficiency_order().begin() + 3);
  std::set<std::size_t> got(pick->begin(), pick->end());
  EXPECT_EQ(got, expect);
}

TEST(EffiPolicy, WaitsWhenPoolBusy) {
  Fixture f(20);
  // Pool = 35% of 20 = 7 best processors. Make them unavailable.
  PlacementPolicy p(&f.knowledge, PlacementRule::kEfficiency, 5, 0.35);
  std::vector<std::size_t> idle(
      f.knowledge.efficiency_order().begin() + 7,
      f.knowledge.efficiency_order().end());
  EXPECT_FALSE(p.choose(2, idle, f.ctx(false, false)).has_value());
}

TEST(EffiPolicy, ForcedStartsAnywhere) {
  Fixture f(20);
  PlacementPolicy p(&f.knowledge, PlacementRule::kEfficiency, 6, 0.35);
  std::vector<std::size_t> idle(
      f.knowledge.efficiency_order().begin() + 7,
      f.knowledge.efficiency_order().end());
  EXPECT_TRUE(p.choose(2, idle, f.ctx(false, true)).has_value());
}

TEST(EffiPolicy, PartialPoolOverlapStillWaits) {
  // If the n-th chosen falls outside the pool, the task waits even though
  // the first choices are inside.
  Fixture f(20);
  PlacementPolicy p(&f.knowledge, PlacementRule::kEfficiency, 7, 0.35);
  const auto& order = f.knowledge.efficiency_order();
  std::vector<std::size_t> idle = {order[0], order[10], order[15]};
  EXPECT_FALSE(p.choose(2, idle, f.ctx()).has_value());
  EXPECT_TRUE(p.choose(1, idle, f.ctx()).has_value());
}

TEST(FairPolicy, NoWindDegeneratesToEffi) {
  Fixture f;
  PlacementPolicy fair(&f.knowledge, PlacementRule::kFair, 8);
  PlacementPolicy effi(&f.knowledge, PlacementRule::kEfficiency, 8);
  auto i1 = f.all_idle(), i2 = f.all_idle();
  const auto ctx = f.ctx(false, false, /*has_wind=*/false);
  EXPECT_EQ(*fair.choose(3, i1, ctx), *effi.choose(3, i2, ctx));
}

TEST(FairPolicy, DefersWhenWindScarce) {
  Fixture f;
  PlacementPolicy p(&f.knowledge, PlacementRule::kFair, 9);
  auto idle = f.all_idle();
  // Wind exists but is scarce; task not forced and has slack -> defer.
  EXPECT_FALSE(p.choose(2, idle, f.ctx(false, false, true)).has_value());
}

TEST(FairPolicy, TightSlackStartsInsteadOfDeferring) {
  Fixture f;
  PlacementPolicy p(&f.knowledge, PlacementRule::kFair, 9);
  auto idle = f.all_idle();
  // Below the deferral slack threshold the task starts immediately.
  EXPECT_TRUE(p.choose(2, idle, f.ctx(false, false, true, 600.0)).has_value());
}

TEST(FairPolicy, HeavyBacklogStopsDeferral) {
  Fixture f;
  PlacementPolicy p(&f.knowledge, PlacementRule::kFair, 9);
  auto idle = f.all_idle();
  auto c = f.ctx(false, false, true);
  c.queue_pressure = kMaxDeferBacklog + 0.1;
  EXPECT_TRUE(p.choose(2, idle, c).has_value());
}

TEST(FairPolicy, ScarceButForcedUsesEfficient) {
  Fixture f;
  PlacementPolicy p(&f.knowledge, PlacementRule::kFair, 10);
  auto idle = f.all_idle();
  auto pick = p.choose(2, idle, f.ctx(false, true, true));
  ASSERT_TRUE(pick.has_value());
  std::set<std::size_t> expect(f.knowledge.efficiency_order().begin(),
                               f.knowledge.efficiency_order().begin() + 2);
  EXPECT_EQ(std::set<std::size_t>(pick->begin(), pick->end()), expect);
}

TEST(FairPolicy, AbundantPicksLeastUsed) {
  Fixture f;
  for (std::size_t i = 0; i < f.busy.size(); ++i)
    f.busy[i] = static_cast<double>(i);  // proc 0 least used
  PlacementPolicy p(&f.knowledge, PlacementRule::kFair, 11);
  auto idle = f.all_idle();
  auto pick = p.choose(3, idle, f.ctx(true, false, true));
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(std::set<std::size_t>(pick->begin(), pick->end()),
            (std::set<std::size_t>{0, 1, 2}));
}

TEST(FairPolicy, AbundantStartsEvenUnforced) {
  Fixture f;
  PlacementPolicy p(&f.knowledge, PlacementRule::kFair, 12);
  auto idle = f.all_idle();
  EXPECT_TRUE(p.choose(1, idle, f.ctx(true, false, true)).has_value());
}

TEST(Policy, ChosenAreFirstNOfIdle) {
  // The simulator relies on this contract to remove chosen procs.
  Fixture f;
  for (const PlacementRule rule :
       {PlacementRule::kRandom, PlacementRule::kEfficiency,
        PlacementRule::kFair}) {
    PlacementPolicy p(&f.knowledge, rule, 13);
    auto idle = f.all_idle();
    auto pick = p.choose(4, idle, f.ctx(true, true, true));
    ASSERT_TRUE(pick.has_value());
    for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ((*pick)[i], idle[i]);
  }
}

TEST(Policy, EfficiencyRankInverse) {
  Fixture f;
  PlacementPolicy p(&f.knowledge, PlacementRule::kEfficiency, 14);
  const auto& order = f.knowledge.efficiency_order();
  for (std::size_t rank = 0; rank < order.size(); ++rank)
    EXPECT_EQ(p.efficiency_rank(order[rank]), rank);
}

TEST(Policy, Validation) {
  Fixture f;
  EXPECT_THROW(PlacementPolicy(nullptr, PlacementRule::kRandom, 1),
               InvalidArgument);
  EXPECT_THROW(PlacementPolicy(&f.knowledge, PlacementRule::kRandom, 1, 0.0),
               InvalidArgument);
  PlacementPolicy p(&f.knowledge, PlacementRule::kRandom, 1);
  auto idle = f.all_idle();
  EXPECT_THROW(p.choose(0, idle, f.ctx()), InvalidArgument);
}

}  // namespace
}  // namespace iscope
