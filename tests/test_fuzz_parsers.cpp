// Fuzz-style robustness tests for the two external-input parsers (SWF
// workload traces, supply CSVs). Two layers:
//
//  1. a seed corpus (tests/data/fuzz/) of hand-written hostile inputs --
//     truncated lines, NaN/negative values, CRLF endings, embedded NULs --
//     with pinned expected outcomes;
//  2. deterministic mutation fuzzing: a seeded Rng mauls valid inputs a
//     few hundred ways and every outcome must be either a clean
//     ParseError or a successful parse with sane, finite contents. Any
//     other exception (or a crash/UB under the sanitizer stages of
//     tools/check.sh) is a bug.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "energy/supply_trace.hpp"
#include "workload/swf.hpp"

namespace iscope {
namespace {

std::string data_path(const std::string& name) {
  return std::string(ISCOPE_TEST_DATA_DIR) + "/fuzz/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ------------------------------------------------------- corpus: SWF

TEST(FuzzCorpusSwf, ValidFileParses) {
  const auto jobs = parse_swf(slurp(data_path("swf_valid.swf")));
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].job_id, 1);
  EXPECT_DOUBLE_EQ(jobs[0].runtime_s, 3600.0);
  EXPECT_EQ(jobs[0].requested_procs, 4);
  EXPECT_DOUBLE_EQ(jobs[2].submit_s, 600.0);
}

TEST(FuzzCorpusSwf, CrlfEndingsAreTolerated) {
  const auto jobs = parse_swf(slurp(data_path("swf_crlf.swf")));
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_DOUBLE_EQ(jobs[1].runtime_s, 1800.0);
}

TEST(FuzzCorpusSwf, HostileFilesThrowParseError) {
  for (const char* name :
       {"swf_truncated.swf", "swf_nan.swf", "swf_text.swf", "swf_nul.swf"}) {
    SCOPED_TRACE(name);
    EXPECT_THROW(parse_swf(slurp(data_path(name))), ParseError);
  }
}

TEST(FuzzCorpusSwf, MissingFileThrows) {
  EXPECT_THROW(read_swf_file(data_path("does_not_exist.swf")), ParseError);
}

// ------------------------------------------------ corpus: supply CSV

TEST(FuzzCorpusSupply, ValidFileLoads) {
  const SupplyTrace trace = SupplyTrace::load_csv(data_path("supply_valid.csv"));
  ASSERT_EQ(trace.samples(), 4u);
  EXPECT_DOUBLE_EQ(trace.step().seconds(), 600.0);
  EXPECT_DOUBLE_EQ(trace.sample(1).watts(), 650.0);
  EXPECT_DOUBLE_EQ(trace.sample(3).watts(), 0.0);
}

TEST(FuzzCorpusSupply, HostileFilesThrowParseError) {
  for (const char* name :
       {"supply_nan.csv", "supply_nan_time.csv", "supply_negative.csv",
        "supply_nonuniform.csv", "supply_empty.csv",
        "supply_truncated_row.csv"}) {
    SCOPED_TRACE(name);
    EXPECT_THROW(SupplyTrace::load_csv(data_path(name)), ParseError);
  }
}

// -------------------------------------------------- mutation fuzzing

/// Apply one seeded mutation to `text`: byte flip, truncation, chunk
/// duplication, or hostile-token splice.
std::string mutate(const std::string& text, Rng& rng) {
  std::string s = text;
  switch (rng.uniform_int(0, 3)) {
    case 0: {  // flip a byte to an arbitrary value (NULs included)
      if (s.empty()) break;
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(s.size()) - 1));
      s[pos] = static_cast<char>(rng.uniform_int(0, 255));
      break;
    }
    case 1: {  // truncate mid-stream
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(s.size())));
      s.resize(pos);
      break;
    }
    case 2: {  // duplicate a random chunk somewhere else
      if (s.size() < 4) break;
      const auto n = static_cast<std::size_t>(rng.uniform_int(1, 16));
      const auto from = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(s.size()) - 2));
      const auto to = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(s.size()) - 1));
      s.insert(to, s.substr(from, std::min(n, s.size() - from)));
      break;
    }
    default: {  // splice in a token parsers must not choke on
      static const std::string kTokens[] = {
          "nan", "-inf", "1e999", "--", std::string(1, '\0'),
          "\r",  "9.9.9", "0x1p4"};
      const std::string& tok = kTokens[rng.uniform_int(
          0, static_cast<std::int64_t>(std::size(kTokens)) - 1)];
      const auto to = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(s.size())));
      s.insert(to, tok);
      break;
    }
  }
  return s;
}

TEST(FuzzMutation, SwfParserNeverMisbehaves) {
  const std::string base = slurp(data_path("swf_valid.swf"));
  Rng rng(0xf0221);
  int parsed = 0, rejected = 0;
  for (int iter = 0; iter < 300; ++iter) {
    std::string input = base;
    const int rounds = static_cast<int>(rng.uniform_int(1, 4));
    for (int m = 0; m < rounds; ++m) input = mutate(input, rng);
    try {
      const auto jobs = parse_swf(input);
      ++parsed;
      // A successful parse must yield only finite, plausible fields.
      for (const SwfJob& j : jobs) {
        EXPECT_TRUE(std::isfinite(j.submit_s));
        EXPECT_TRUE(std::isfinite(j.runtime_s));
        EXPECT_TRUE(std::isfinite(j.wait_s));
        EXPECT_TRUE(std::isfinite(j.requested_time_s));
      }
      // And conversion downstream must not blow up either.
      const auto tasks = swf_to_tasks(jobs);
      for (const Task& t : tasks) {
        EXPECT_GT(t.runtime_s, 0.0);
        EXPECT_GT(t.cpus, 0u);
        EXPECT_GE(t.submit_s, 0.0);
      }
    } catch (const ParseError&) {
      ++rejected;  // the only acceptable failure mode
    }
  }
  // The mutator must actually exercise both outcomes.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(FuzzMutation, SupplyCsvLoaderNeverMisbehaves) {
  const std::string base = slurp(data_path("supply_valid.csv"));
  const std::string tmp = testing::TempDir() + "iscope_fuzz_supply.csv";
  Rng rng(0xf0222);
  int parsed = 0, rejected = 0;
  for (int iter = 0; iter < 300; ++iter) {
    std::string input = base;
    const int rounds = static_cast<int>(rng.uniform_int(1, 4));
    for (int m = 0; m < rounds; ++m) input = mutate(input, rng);
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(out.good());
      out.write(input.data(),
                static_cast<std::streamsize>(input.size()));
    }
    try {
      const SupplyTrace trace = SupplyTrace::load_csv(tmp);
      ++parsed;
      EXPECT_GT(trace.step().seconds(), 0.0);
      for (std::size_t i = 0; i < trace.samples(); ++i) {
        EXPECT_TRUE(std::isfinite(trace.sample(i).watts()));
        EXPECT_GE(trace.sample(i).watts(), 0.0);
      }
    } catch (const ParseError&) {
      ++rejected;
    }
  }
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
  std::remove(tmp.c_str());
}

}  // namespace
}  // namespace iscope
