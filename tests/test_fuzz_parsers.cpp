// Fuzz-style robustness tests for the external-input parsers: SWF
// workload traces, supply CSVs, the iscope_serve wire protocol, and the
// checkpoint codec. Two layers:
//
//  1. a seed corpus (tests/data/fuzz/) of hand-written hostile inputs --
//     truncated lines, NaN/negative values, CRLF endings, embedded NULs,
//     lying length prefixes, oversize frame headers -- with pinned
//     expected outcomes. The service_* binaries double as wire-format
//     pins: they were emitted by the production codec, so a layout change
//     that breaks old peers or old checkpoints fails here first;
//  2. deterministic mutation fuzzing: a seeded Rng mauls valid inputs a
//     few hundred ways and every outcome must be either a clean
//     ParseError / CheckpointError or a successful parse with sane,
//     finite contents. Any other exception (or a crash/UB under the
//     sanitizer stages of tools/check.sh) is a bug.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "energy/supply_trace.hpp"
#include "service/checkpoint.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"
#include "workload/swf.hpp"

namespace iscope {
namespace {

std::string data_path(const std::string& name) {
  return std::string(ISCOPE_TEST_DATA_DIR) + "/fuzz/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ------------------------------------------------------- corpus: SWF

TEST(FuzzCorpusSwf, ValidFileParses) {
  const auto jobs = parse_swf(slurp(data_path("swf_valid.swf")));
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].job_id, 1);
  EXPECT_DOUBLE_EQ(jobs[0].runtime_s, 3600.0);
  EXPECT_EQ(jobs[0].requested_procs, 4);
  EXPECT_DOUBLE_EQ(jobs[2].submit_s, 600.0);
}

TEST(FuzzCorpusSwf, CrlfEndingsAreTolerated) {
  const auto jobs = parse_swf(slurp(data_path("swf_crlf.swf")));
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_DOUBLE_EQ(jobs[1].runtime_s, 1800.0);
}

TEST(FuzzCorpusSwf, HostileFilesThrowParseError) {
  for (const char* name :
       {"swf_truncated.swf", "swf_nan.swf", "swf_text.swf", "swf_nul.swf"}) {
    SCOPED_TRACE(name);
    EXPECT_THROW(parse_swf(slurp(data_path(name))), ParseError);
  }
}

TEST(FuzzCorpusSwf, MissingFileThrows) {
  EXPECT_THROW(read_swf_file(data_path("does_not_exist.swf")), ParseError);
}

// ------------------------------------------------ corpus: supply CSV

TEST(FuzzCorpusSupply, ValidFileLoads) {
  const SupplyTrace trace = SupplyTrace::load_csv(data_path("supply_valid.csv"));
  ASSERT_EQ(trace.samples(), 4u);
  EXPECT_DOUBLE_EQ(trace.step().seconds(), 600.0);
  EXPECT_DOUBLE_EQ(trace.sample(1).watts(), 650.0);
  EXPECT_DOUBLE_EQ(trace.sample(3).watts(), 0.0);
}

TEST(FuzzCorpusSupply, HostileFilesThrowParseError) {
  for (const char* name :
       {"supply_nan.csv", "supply_nan_time.csv", "supply_negative.csv",
        "supply_nonuniform.csv", "supply_empty.csv",
        "supply_truncated_row.csv"}) {
    SCOPED_TRACE(name);
    EXPECT_THROW(SupplyTrace::load_csv(data_path(name)), ParseError);
  }
}

// -------------------------------------------------- mutation fuzzing

/// Apply one seeded mutation to `text`: byte flip, truncation, chunk
/// duplication, or hostile-token splice.
std::string mutate(const std::string& text, Rng& rng) {
  std::string s = text;
  switch (rng.uniform_int(0, 3)) {
    case 0: {  // flip a byte to an arbitrary value (NULs included)
      if (s.empty()) break;
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(s.size()) - 1));
      s[pos] = static_cast<char>(rng.uniform_int(0, 255));
      break;
    }
    case 1: {  // truncate mid-stream
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(s.size())));
      s.resize(pos);
      break;
    }
    case 2: {  // duplicate a random chunk somewhere else
      if (s.size() < 4) break;
      const auto n = static_cast<std::size_t>(rng.uniform_int(1, 16));
      const auto from = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(s.size()) - 2));
      const auto to = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(s.size()) - 1));
      s.insert(to, s.substr(from, std::min(n, s.size() - from)));
      break;
    }
    default: {  // splice in a token parsers must not choke on
      static const std::string kTokens[] = {
          "nan", "-inf", "1e999", "--", std::string(1, '\0'),
          "\r",  "9.9.9", "0x1p4"};
      const std::string& tok = kTokens[rng.uniform_int(
          0, static_cast<std::int64_t>(std::size(kTokens)) - 1)];
      const auto to = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(s.size())));
      s.insert(to, tok);
      break;
    }
  }
  return s;
}

TEST(FuzzMutation, SwfParserNeverMisbehaves) {
  const std::string base = slurp(data_path("swf_valid.swf"));
  Rng rng(0xf0221);
  int parsed = 0, rejected = 0;
  for (int iter = 0; iter < 300; ++iter) {
    std::string input = base;
    const int rounds = static_cast<int>(rng.uniform_int(1, 4));
    for (int m = 0; m < rounds; ++m) input = mutate(input, rng);
    try {
      const auto jobs = parse_swf(input);
      ++parsed;
      // A successful parse must yield only finite, plausible fields.
      for (const SwfJob& j : jobs) {
        EXPECT_TRUE(std::isfinite(j.submit_s));
        EXPECT_TRUE(std::isfinite(j.runtime_s));
        EXPECT_TRUE(std::isfinite(j.wait_s));
        EXPECT_TRUE(std::isfinite(j.requested_time_s));
      }
      // And conversion downstream must not blow up either.
      const auto tasks = swf_to_tasks(jobs);
      for (const Task& t : tasks) {
        EXPECT_GT(t.runtime_s, 0.0);
        EXPECT_GT(t.cpus, 0u);
        EXPECT_GE(t.submit_s, 0.0);
      }
    } catch (const ParseError&) {
      ++rejected;  // the only acceptable failure mode
    }
  }
  // The mutator must actually exercise both outcomes.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(FuzzMutation, SupplyCsvLoaderNeverMisbehaves) {
  const std::string base = slurp(data_path("supply_valid.csv"));
  const std::string tmp = testing::TempDir() + "iscope_fuzz_supply.csv";
  Rng rng(0xf0222);
  int parsed = 0, rejected = 0;
  for (int iter = 0; iter < 300; ++iter) {
    std::string input = base;
    const int rounds = static_cast<int>(rng.uniform_int(1, 4));
    for (int m = 0; m < rounds; ++m) input = mutate(input, rng);
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(out.good());
      out.write(input.data(),
                static_cast<std::streamsize>(input.size()));
    }
    try {
      const SupplyTrace trace = SupplyTrace::load_csv(tmp);
      ++parsed;
      EXPECT_GT(trace.step().seconds(), 0.0);
      for (std::size_t i = 0; i < trace.samples(); ++i) {
        EXPECT_TRUE(std::isfinite(trace.sample(i).watts()));
        EXPECT_GE(trace.sample(i).watts(), 0.0);
      }
    } catch (const ParseError&) {
      ++rejected;
    }
  }
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
  std::remove(tmp.c_str());
}

// ----------------------------------------------- corpus: wire frames

std::vector<std::uint8_t> slurp_bytes(const std::string& path) {
  const std::string s = slurp(path);
  return {s.begin(), s.end()};
}

/// Feed a whole byte blob to a fresh FrameReader and collect every
/// complete frame (throws ParseError exactly where the daemon would).
std::vector<service::Frame> frames_of(const std::vector<std::uint8_t>& blob) {
  service::FrameReader reader;
  reader.feed(blob.data(), blob.size());
  std::vector<service::Frame> out;
  service::Frame f;
  while (reader.next(f)) out.push_back(f);
  return out;
}

/// The pinned task the corpus generator encoded into service_admit_*.bin.
Task corpus_task() {
  Task t;
  t.id = 42;
  t.submit_s = 120.5;
  t.cpus = 4;
  t.runtime_s = 300.0;
  t.gamma = 0.75;
  t.deadline_s = 1800.0;
  t.urgency = Urgency::kHigh;
  return t;
}

TEST(FuzzCorpusService, ValidAdmitFrameIsWireFormatPin) {
  const auto frames = frames_of(slurp_bytes(data_path("service_admit_valid.bin")));
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].type, service::MsgType::kAdmit);
  const Task t = service::parse_admit(frames[0].payload);
  const Task want = corpus_task();
  EXPECT_EQ(t.id, want.id);
  EXPECT_EQ(t.submit_s, want.submit_s);
  EXPECT_EQ(t.cpus, want.cpus);
  EXPECT_EQ(t.runtime_s, want.runtime_s);
  EXPECT_EQ(t.gamma, want.gamma);
  EXPECT_EQ(t.deadline_s, want.deadline_s);
  EXPECT_EQ(t.urgency, want.urgency);
  // Byte-for-byte: re-encoding must reproduce the committed file, so any
  // codec layout change is caught as a compatibility break, not silently.
  EXPECT_EQ(service::encode_frame(service::MsgType::kAdmit,
                                  service::encode_admit(want)),
            slurp_bytes(data_path("service_admit_valid.bin")));
}

TEST(FuzzCorpusService, NanPayloadIsRejected) {
  const auto frames = frames_of(slurp_bytes(data_path("service_admit_nan.bin")));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_THROW(service::parse_admit(frames[0].payload), ParseError);
}

TEST(FuzzCorpusService, TruncatedFrameParksWithoutError) {
  const auto blob = slurp_bytes(data_path("service_frame_truncated.bin"));
  service::FrameReader reader;
  reader.feed(blob.data(), blob.size());
  service::Frame f;
  EXPECT_FALSE(reader.next(f));          // incomplete, waits for more bytes
  EXPECT_EQ(reader.buffered(), blob.size());
}

TEST(FuzzCorpusService, LyingLengthPrefixTruncatesPayload) {
  // The prefix claims 8 bytes fewer than the admit codec wrote: the frame
  // completes, but the payload parser must reject the short body.
  const auto frames = frames_of(slurp_bytes(data_path("service_len_lie.bin")));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_THROW(service::parse_admit(frames[0].payload), ParseError);
}

TEST(FuzzCorpusService, OversizeAndZeroHeadersThrowBeforeBuffering) {
  // The reader rejects a hostile prefix the moment the 4-byte header is
  // decodable -- before waiting for (or allocating) the bytes it claims.
  for (const char* name :
       {"service_frame_oversize.bin", "service_frame_zero.bin"}) {
    SCOPED_TRACE(name);
    const auto blob = slurp_bytes(data_path(name));
    service::FrameReader reader;
    reader.feed(blob.data(), blob.size());
    service::Frame f;
    EXPECT_THROW(reader.next(f), ParseError);
  }
}

TEST(FuzzCorpusService, HostileCheckpointsAreRejected) {
  service::ServiceOptions opt;
  opt.scale = 0.05;
  opt.seed = 9;
  service::SimHost host(opt);
  host.sim().prepare({}, {});
  for (const char* name :
       {"service_ckpt_badmagic.bin", "service_ckpt_truncated.bin",
        // Format-v1 envelope: the v2 reader must refuse old blobs with a
        // version error, never misparse them as v2.
        "service_ckpt_v1_version.bin",
        // v2 blob cut inside the thermal/sleep identity section.
        "service_ckpt_truncated_thermal.bin"}) {
    SCOPED_TRACE(name);
    const auto blob = slurp_bytes(data_path(name));
    EXPECT_THROW(
        restore_from_bytes(host.sim(), blob.data(), blob.size()),
        CheckpointError);
  }
}

// ------------------------------------- mutation fuzzing: wire frames

/// A plausible client session as one byte stream: the daemon's inbound
/// surface is exactly this concatenation shape.
std::string wire_session_bytes() {
  using service::MsgType;
  std::vector<std::uint8_t> stream;
  const auto append = [&stream](MsgType type,
                                const std::vector<std::uint8_t>& payload) {
    const auto f = service::encode_frame(type, payload);
    stream.insert(stream.end(), f.begin(), f.end());
  };
  append(MsgType::kHello, service::encode_hello());
  append(MsgType::kAdmit, service::encode_admit(corpus_task()));
  append(MsgType::kAdvance, service::encode_advance(5000.0));
  append(MsgType::kDecideNow, {});
  append(MsgType::kCheckpoint, service::encode_text("/tmp/ckpt.bin"));
  append(MsgType::kDrain, {});
  return {stream.begin(), stream.end()};
}

/// Parse one inbound frame the way ServiceServer::handle_frame does;
/// throws ParseError on malformed payloads, returns false for types that
/// carry no client payload codec.
bool dispatch_client_frame(const service::Frame& f) {
  using service::MsgType;
  switch (f.type) {
    case MsgType::kHello:
      service::parse_hello(f.payload);
      return true;
    case MsgType::kAdmit: {
      const Task t = service::parse_admit(f.payload);
      EXPECT_TRUE(std::isfinite(t.submit_s));
      EXPECT_TRUE(std::isfinite(t.runtime_s));
      EXPECT_TRUE(std::isfinite(t.deadline_s));
      return true;
    }
    case MsgType::kAdvance: {
      const double t = service::parse_advance(f.payload);
      EXPECT_TRUE(!std::isnan(t));
      return true;
    }
    case MsgType::kCheckpoint:
      service::parse_text(f.payload);
      return true;
    default:
      return false;  // payloadless or unknown type -- nothing to parse
  }
}

TEST(FuzzMutationService, FrameStreamNeverMisbehaves) {
  const std::string base = wire_session_bytes();
  Rng rng(0xf0223);
  int parsed = 0, rejected = 0;
  for (int iter = 0; iter < 400; ++iter) {
    std::string input = base;
    const int rounds = static_cast<int>(rng.uniform_int(1, 4));
    for (int m = 0; m < rounds; ++m) input = mutate(input, rng);
    service::FrameReader reader;
    std::size_t off = 0;
    try {
      // Deliver in random-size chunks: reassembly must not depend on read
      // boundaries, exactly as with a trickling socket peer.
      while (off < input.size()) {
        const auto chunk = static_cast<std::size_t>(rng.uniform_int(
            1, std::min<std::int64_t>(
                   97, static_cast<std::int64_t>(input.size() - off))));
        reader.feed(reinterpret_cast<const std::uint8_t*>(input.data()) + off,
                    chunk);
        off += chunk;
        service::Frame f;
        while (reader.next(f)) {
          if (dispatch_client_frame(f)) ++parsed;
        }
      }
    } catch (const ParseError&) {
      ++rejected;  // the daemon answers kErr / drops the connection
    }
  }
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(FuzzMutationService, ReplyCodecsNeverMisbehave) {
  using service::MsgType;
  // Server->client payloads, mutated as a hostile daemon a client talks to.
  service::HelloOk hello;
  hello.version = service::kProtoVersion;
  hello.scheme = "ScanFair";
  hello.procs = 24;
  hello.seed = 7;
  TimelineEvent ev;
  ev.time_s = 123.0;
  ev.kind = TimelineKind::kArrival;
  ev.task_id = 5;
  ev.value = 4.0;
  DecisionSnapshot snap;
  snap.now_s = 99.5;
  snap.tasks_admitted = 3;
  service::ResultSummary sum;
  sum.wind_j = 1.5e6;
  sum.tasks_completed = 40;
  const struct {
    const char* name;
    std::vector<std::uint8_t> payload;
    void (*parse)(const std::vector<std::uint8_t>&);
  } cases[] = {
      {"hello_ok", service::encode_hello_ok(hello),
       [](const std::vector<std::uint8_t>& p) {
         const auto h = service::parse_hello_ok(p);
         EXPECT_LE(h.scheme.size(), 1u << 20);
       }},
      {"decision", service::encode_decision(ev),
       [](const std::vector<std::uint8_t>& p) {
         const auto e = service::parse_decision(p);
         EXPECT_TRUE(std::isfinite(e.time_s));
         EXPECT_TRUE(std::isfinite(e.value));
       }},
      {"advance_done",
       service::encode_advance_done({4000.0, 123}),
       [](const std::vector<std::uint8_t>& p) {
         const auto d = service::parse_advance_done(p);
         EXPECT_TRUE(!std::isnan(d.now_s));
       }},
      {"snapshot", service::encode_snapshot(snap),
       [](const std::vector<std::uint8_t>& p) {
         const auto s = service::parse_snapshot(p);
         EXPECT_TRUE(std::isfinite(s.now_s));
       }},
      {"result_summary", service::encode_result_summary(sum),
       [](const std::vector<std::uint8_t>& p) {
         const auto r = service::parse_result_summary(p);
         EXPECT_TRUE(std::isfinite(r.wind_j));
         EXPECT_TRUE(std::isfinite(r.cost_usd));
       }},
  };
  Rng rng(0xf0224);
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    const std::string base(c.payload.begin(), c.payload.end());
    int parsed = 0, rejected = 0;
    for (int iter = 0; iter < 200; ++iter) {
      std::string input = base;
      const int rounds = static_cast<int>(rng.uniform_int(1, 3));
      for (int m = 0; m < rounds; ++m) input = mutate(input, rng);
      const std::vector<std::uint8_t> bytes(input.begin(), input.end());
      try {
        c.parse(bytes);
        ++parsed;
      } catch (const ParseError&) {
        ++rejected;
      }
    }
    EXPECT_GT(parsed + rejected, 0);
    EXPECT_GT(rejected, 0);
  }
}

// --------------------------------- mutation fuzzing: checkpoint blobs

TEST(FuzzMutationService, CheckpointRestoreNeverMisbehaves) {
  service::ServiceOptions opt;
  opt.scale = 0.05;
  opt.seed = 9;
  service::SimHost source(opt);
  std::vector<Task> tasks = source.context().make_tasks(0.3);
  source.sim().prepare(tasks);
  source.sim().step_until(3000.0);
  const std::vector<std::uint8_t> blob =
      checkpoint_bytes(source.sim());

  service::SimHost target(opt);
  const std::string base(blob.begin(), blob.end());
  Rng rng(0xf0225);
  int restored = 0, rejected = 0;
  for (int iter = 0; iter < 150; ++iter) {
    std::string input = base;
    const int rounds = static_cast<int>(rng.uniform_int(1, 3));
    for (int m = 0; m < rounds; ++m) input = mutate(input, rng);
    const std::vector<std::uint8_t> bytes(input.begin(), input.end());
    // prepare() resets the sim wholesale, so a prior partial load cannot
    // leak state into the next attempt.
    target.sim().prepare({}, {});
    try {
      restore_from_bytes(target.sim(), bytes.data(), bytes.size());
      ++restored;
    } catch (const CheckpointError&) {
      ++rejected;
    }
  }
  // Identity mutations (chunk duplication past the end, truncation at the
  // exact boundary) restore; everything else must reject cleanly.
  EXPECT_GT(restored + rejected, 0);
  EXPECT_GT(rejected, 0);
}

}  // namespace
}  // namespace iscope
