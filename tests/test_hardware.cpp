#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hardware/cluster.hpp"
#include "hardware/dvfs.hpp"

namespace iscope {
namespace {

ClusterConfig small_config(std::size_t n = 32, std::uint64_t seed = 1) {
  ClusterConfig cfg;
  cfg.num_processors = n;
  cfg.seed = seed;
  return cfg;
}

// ------------------------------------------------------------------ DVFS

TEST(Dvfs, StartsGated) {
  const FreqLevels levels = FreqLevels::paper_default();
  DvfsState s(&levels);
  EXPECT_FALSE(s.is_on());
  EXPECT_DOUBLE_EQ(s.freq().gigahertz(), 0.0);
  EXPECT_THROW(s.level(), InvalidArgument);
}

TEST(Dvfs, PowerOnOffCycle) {
  const FreqLevels levels = FreqLevels::paper_default();
  DvfsState s(&levels);
  s.power_on(2);
  EXPECT_TRUE(s.is_on());
  EXPECT_EQ(s.level(), 2u);
  EXPECT_DOUBLE_EQ(s.freq().gigahertz(), levels.freq_ghz[2]);
  s.set_level(4);
  EXPECT_EQ(s.level(), 4u);
  s.power_off();
  EXPECT_FALSE(s.is_on());
  EXPECT_DOUBLE_EQ(s.freq().gigahertz(), 0.0);
}

TEST(Dvfs, Validation) {
  const FreqLevels levels = FreqLevels::paper_default();
  EXPECT_THROW(DvfsState(nullptr), InvalidArgument);
  DvfsState s(&levels);
  EXPECT_THROW(s.power_on(99), InvalidArgument);
  EXPECT_THROW(s.set_level(0), InvalidArgument);  // gated
  s.power_on(0);
  EXPECT_THROW(s.set_level(99), InvalidArgument);
  EXPECT_EQ(s.num_levels(), 5u);
  EXPECT_EQ(s.top_level(), 4u);
}

// ---------------------------------------------------------------- Cluster

TEST(Cluster, BuildAssignsIdsAndBins) {
  const Cluster c = build_cluster(small_config());
  EXPECT_EQ(c.size(), 32u);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.proc(i).id, i);
    EXPECT_GE(c.proc(i).bin, 0);
    EXPECT_LT(c.proc(i).bin, 3);
    EXPECT_EQ(c.proc(i).core_count(), 4u);  // quad-core layout
  }
}

TEST(Cluster, TruthCurvesConsistent) {
  const Cluster c = build_cluster(small_config());
  const std::size_t levels = c.levels().count();
  for (std::size_t i = 0; i < c.size(); ++i) {
    const Processor& p = c.proc(i);
    for (std::size_t l = 0; l < levels; ++l) {
      // Chip truth is the max over cores.
      double max_core = 0.0;
      for (const auto& core : p.core_truth)
        max_core = std::max(max_core, core.vdd(l));
      EXPECT_DOUBLE_EQ(p.chip_truth.vdd(l), max_core);
      EXPECT_DOUBLE_EQ(c.true_vdd(i, l).volts(), p.chip_truth.vdd(l));
    }
  }
}

TEST(Cluster, BinVoltageDominatesTruth) {
  const Cluster c = build_cluster(small_config(64, 3));
  for (std::size_t i = 0; i < c.size(); ++i)
    for (std::size_t l = 0; l < c.levels().count(); ++l)
      EXPECT_GE(c.bin_vdd(i, l), c.true_vdd(i, l));
}

TEST(Cluster, DeterministicAcrossBuilds) {
  const Cluster a = build_cluster(small_config(16, 42));
  const Cluster b = build_cluster(small_config(16, 42));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.proc(i).coeffs.alpha, b.proc(i).coeffs.alpha);
    EXPECT_EQ(a.proc(i).coeffs.beta, b.proc(i).coeffs.beta);
    EXPECT_EQ(a.proc(i).chip_truth.vdds(), b.proc(i).chip_truth.vdds());
    EXPECT_EQ(a.proc(i).bin, b.proc(i).bin);
  }
}

TEST(Cluster, SeedsChangePopulation) {
  const Cluster a = build_cluster(small_config(16, 1));
  const Cluster b = build_cluster(small_config(16, 2));
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a.proc(i).chip_truth.vdds() != b.proc(i).chip_truth.vdds())
      any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Cluster, PowerMatchesModel) {
  const Cluster c = build_cluster(small_config());
  const std::size_t top = c.levels().count() - 1;
  const Processor& p = c.proc(0);
  const double v = c.levels().vdd_nom[top];
  EXPECT_DOUBLE_EQ(
      c.power(0, top, Volts{v}).watts(),
      c.power_model()
          .power_eq1(p.coeffs, Gigahertz{c.levels().freq_ghz[top]})
          .watts());
}

TEST(Cluster, ScanVoltageCheaperThanBin) {
  const Cluster c = build_cluster(small_config(64, 7));
  const std::size_t top = c.levels().count() - 1;
  double scan_total = 0.0, bin_total = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    scan_total += c.power(i, top, c.true_vdd(i, top)).watts();
    bin_total += c.power(i, top, c.bin_vdd(i, top)).watts();
  }
  EXPECT_LT(scan_total, bin_total);
}

TEST(Cluster, Validation) {
  ClusterConfig cfg = small_config();
  cfg.num_processors = 0;
  EXPECT_THROW(build_cluster(cfg), InvalidArgument);
  cfg = small_config();
  cfg.num_bins = 0;
  EXPECT_THROW(build_cluster(cfg), InvalidArgument);
  const Cluster c = build_cluster(small_config());
  EXPECT_THROW(c.proc(999), InvalidArgument);
  EXPECT_THROW(c.power(0, 99, Volts{1.0}), InvalidArgument);
}

TEST(Cluster, BinPopulationsBalanced) {
  const Cluster c = build_cluster(small_config(90, 5));
  const auto& sizes = c.binning().bin_sizes;
  ASSERT_EQ(sizes.size(), 3u);
  for (const std::size_t s : sizes) EXPECT_EQ(s, 30u);
}

}  // namespace
}  // namespace iscope
