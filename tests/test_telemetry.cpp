// Telemetry subsystem suite (DESIGN.md Sec. 11): registry semantics,
// histogram bucketing, span rings, Chrome trace export, sample sinks, the
// run-report bundle, and multi-threaded counter hammering.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace iscope::telemetry {
namespace {

// Tests below share the process-global registry/trace/sample singletons
// with the instrumented library code; isolate every test.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    reset_global_telemetry();
  }
  void TearDown() override {
    set_enabled(false);
    reset_global_telemetry();
  }
};

TEST(TelemetryCounter, SingleWriterAndConcurrentIncrements) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.inc_concurrent();
  c.inc_concurrent(7);
  EXPECT_EQ(c.value(), 50u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(TelemetryGauge, SetAddAndMaxVariants) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.set_max(4.0);  // below current: no-op
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.set_max(6.0);
  EXPECT_DOUBLE_EQ(g.value(), 6.0);
  g.add_concurrent(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.set_max_concurrent(3.0);  // below current: no-op
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.set_max_concurrent(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(TelemetryHistogram, LogLinearBucketGrid) {
  // [1, 1000] at 3 bounds per decade: exact-decimal boundaries.
  const HistogramBuckets b = HistogramBuckets::log_linear(1.0, 1000.0, 3);
  const std::vector<double> want = {4.0,   7.0,   10.0,  40.0, 70.0,
                                    100.0, 400.0, 700.0, 1000.0};
  ASSERT_EQ(b.bounds.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_DOUBLE_EQ(b.bounds[i], want[i]) << "bound " << i;

  // Prometheus `le` semantics: a value on a bound lands in that bucket;
  // past the last bound is the +Inf bucket (index == bounds.size()).
  EXPECT_EQ(b.index(0.5), 0u);
  EXPECT_EQ(b.index(4.0), 0u);
  EXPECT_EQ(b.index(4.0000001), 1u);
  EXPECT_EQ(b.index(100.0), 5u);
  EXPECT_EQ(b.index(1000.0), 8u);
  EXPECT_EQ(b.index(1000.5), 9u);

  EXPECT_THROW(HistogramBuckets::log_linear(0.0, 1.0, 3), InvalidArgument);
  EXPECT_THROW(HistogramBuckets::log_linear(2.0, 1.0, 3), InvalidArgument);
  EXPECT_THROW(HistogramBuckets::log_linear(1.0, 10.0, 0), InvalidArgument);
}

TEST(TelemetryHistogram, ObserveFillsBucketsSumAndCount) {
  const HistogramBuckets buckets =
      HistogramBuckets::log_linear(1.0, 1000.0, 3);
  Histogram h(&buckets);
  h.observe(2.0);     // bucket 0 (le 4)
  h.observe(4.0);     // bucket 0 (on the bound)
  h.observe(50.0);    // bucket 4 (le 70)
  h.observe_concurrent(5000.0);  // +Inf bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 2.0 + 4.0 + 50.0 + 5000.0);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(4), 1u);
  EXPECT_EQ(h.bucket_count(buckets.bounds.size()), 1u);  // +Inf
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.bucket_count(0), 0u);
}

TEST(TelemetryFamily, CellsDedupAndLabelArityIsChecked) {
  Registry reg;
  CounterFamily& fam = reg.counter("iscope_test_total", "help", {"scheme"});
  Counter& a = fam.with({"ScanEffi"});
  Counter& b = fam.with({"ScanEffi"});
  Counter& c = fam.with({"BinRan"});
  EXPECT_EQ(&a, &b);  // dedup: stable cell per label tuple
  EXPECT_NE(&a, &c);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);

  EXPECT_THROW(fam.with({}), InvalidArgument);
  EXPECT_THROW(fam.with({"x", "y"}), InvalidArgument);

  HistogramFamily& hist = reg.histogram(
      "iscope_test_seconds", "help",
      HistogramBuckets::log_linear(1e-3, 10.0, 3), {"stage"});
  EXPECT_THROW(hist.with({}), InvalidArgument);
  EXPECT_EQ(&hist.with({"match"}), &hist.with({"match"}));
}

TEST(TelemetryFamily, ReRegistrationMustAgree) {
  Registry reg;
  CounterFamily& fam = reg.counter("iscope_redo_total", "help", {"run"});
  // Same name/kind/keys: the same family comes back.
  EXPECT_EQ(&fam, &reg.counter("iscope_redo_total", "help", {"run"}));
  // Different kind or different label keys: caller bug.
  EXPECT_THROW(reg.gauge("iscope_redo_total", "help", {"run"}),
               InvalidArgument);
  EXPECT_THROW(reg.counter("iscope_redo_total", "help", {"other"}),
               InvalidArgument);
  EXPECT_THROW(
      reg.histogram("iscope_redo_total", "help",
                    HistogramBuckets::log_linear(1.0, 10.0, 3), {"run"}),
      InvalidArgument);
}

TEST(TelemetryRegistry, SnapshotRendersPrometheusAndJson) {
  Registry reg;
  reg.counter("iscope_events_total", "processed events", {"run"})
      .with({"ScanEffi"})
      .inc(123);
  reg.gauge("iscope_depth", "queue depth").get().set(7.5);
  Histogram& h =
      reg.histogram("iscope_wait_seconds", "queue wait",
                    HistogramBuckets::log_linear(1.0, 1000.0, 3))
          .get();
  h.observe(2.0);
  h.observe(5000.0);

  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_DOUBLE_EQ(
      snapshot_value(snap, "iscope_events_total", {"ScanEffi"}), 123.0);
  EXPECT_DOUBLE_EQ(snapshot_value(snap, "iscope_depth"), 7.5);
  EXPECT_DOUBLE_EQ(snapshot_value(snap, "iscope_no_such", {}, -1.0), -1.0);
  EXPECT_DOUBLE_EQ(snapshot_histogram_sum(snap, "iscope_wait_seconds"),
                   5002.0);
  EXPECT_DOUBLE_EQ(snapshot_histogram_sum(snap, "iscope_depth", -2.0), -2.0);

  const std::string prom = to_prometheus(snap);
  EXPECT_EQ(validate_prometheus_text(prom), "") << prom;
  EXPECT_NE(prom.find("iscope_events_total{run=\"ScanEffi\"} 123"),
            std::string::npos);
  // Cumulative buckets with the implicit +Inf terminator.
  EXPECT_NE(prom.find("iscope_wait_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("iscope_wait_seconds_count 2"), std::string::npos);

  const json::Value doc = json::parse(to_json(snap));
  ASSERT_TRUE(doc.is(json::Value::Kind::kObject));
  const json::Value* metrics = json::find(doc, "metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is(json::Value::Kind::kArray));
  EXPECT_EQ(metrics->array.size(), 3u);
}

TEST(TelemetryRegistry, ResetZeroesCellsButKeepsReferences) {
  Registry reg;
  Counter& c = reg.counter("iscope_keep_total", "help").get();
  c.inc(9);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // cached reference survives reset
  c.inc(2);
  EXPECT_DOUBLE_EQ(snapshot_value(reg.snapshot(), "iscope_keep_total"), 2.0);
}

TEST(TelemetryValidator, RejectsMalformedPrometheusText) {
  EXPECT_EQ(validate_prometheus_text(""), "");
  EXPECT_EQ(validate_prometheus_text("# just a comment\n"), "");
  EXPECT_EQ(validate_prometheus_text("x_total 1\ny{le=\"+Inf\"} +Inf\n"), "");
  EXPECT_NE(validate_prometheus_text("missing_value\n"), "");
  EXPECT_NE(validate_prometheus_text("name{unterminated=\"x\" 1\n"), "");
  EXPECT_NE(validate_prometheus_text("name not-a-number\n"), "");
  EXPECT_NE(validate_prometheus_text("name 1 trailing\n"), "");
  EXPECT_NE(validate_prometheus_text("{\"no\": \"name\"} 1\n"), "");
}

TEST_F(TelemetryTest, SpansNestAndRecordBothClocks) {
#ifdef ISCOPE_TELEMETRY_OFF
  GTEST_SKIP() << "span macros compile to nothing under ISCOPE_TELEMETRY_OFF";
#endif
  set_enabled(true);
  TraceLog::global().set_thread_name("test-main");
  {
    ISCOPE_SPAN_SIM("outer", 600.0);
    {
      ISCOPE_SPAN("inner");
    }
    {
      ISCOPE_SPAN("inner");
    }
  }
  set_enabled(false);

  const std::vector<SpanEvent> events = TraceLog::global().local().events();
  ASSERT_EQ(events.size(), 3u);
  // Rings record spans in completion order: both inners close before the
  // outer does.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_DOUBLE_EQ(events[0].sim_s, -1.0);
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_STREQ(events[2].name, "outer");
  EXPECT_EQ(events[2].depth, 0);
  EXPECT_DOUBLE_EQ(events[2].sim_s, 600.0);
  // The outer span covers its children.
  EXPECT_LE(events[2].start_ns, events[0].start_ns);
  EXPECT_GE(events[2].start_ns + events[2].dur_ns,
            events[1].start_ns + events[1].dur_ns);
  EXPECT_GT(TraceLog::global().span_seconds("inner"), 0.0);
  EXPECT_DOUBLE_EQ(TraceLog::global().span_seconds("absent"), 0.0);
}

TEST(TelemetrySpanRing, OverflowDropsOldestAndCounts) {
  SpanRing ring(0, "ring-test", 4);
  for (std::uint64_t i = 0; i < 7; ++i) {
    SpanEvent e;
    e.name = "s";
    e.start_ns = i * 100;
    e.dur_ns = 10;
    ring.push(e);
  }
  EXPECT_EQ(ring.dropped(), 3u);
  const std::vector<SpanEvent> events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  // A trace is a tail window: the oldest three events are gone.
  EXPECT_EQ(events.front().start_ns, 300u);
  EXPECT_EQ(events.back().start_ns, 600u);
  ring.clear();
  EXPECT_EQ(ring.events().size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST_F(TelemetryTest, ChromeTraceExportIsWellFormed) {
  // Direct ScopedSpan construction: stays compiled (and testable) even
  // under ISCOPE_TELEMETRY_OFF, where the macros expand to nothing.
  TraceLog::global().set_thread_name("chrome-test");
  {
    // iscope-lint: allow(telemetry) this test exercises the span
    // machinery itself; production code must use ISCOPE_SPAN.
    const ScopedSpan match("match", 1200.0, /*active=*/true);
  }
  {
    // iscope-lint: allow(telemetry) direct construction under test again.
    const ScopedSpan rematch("rematch", -1.0, /*active=*/true);
  }

  const json::Value doc = json::parse(TraceLog::global().to_chrome_json());
  ASSERT_TRUE(doc.is(json::Value::Kind::kObject));
  const json::Value* events = json::find(doc, "traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is(json::Value::Kind::kArray));

  bool saw_meta = false, saw_match = false, saw_rematch = false;
  for (const json::Value& e : events->array) {
    ASSERT_TRUE(e.is(json::Value::Kind::kObject));
    const json::Value* ph = json::find(e, "ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "M") {
      const json::Value* name = json::find(e, "name");
      ASSERT_NE(name, nullptr);
      if (name->string == "thread_name") saw_meta = true;
      continue;
    }
    ASSERT_EQ(ph->string, "X");
    EXPECT_EQ(json::check_key(e, "ts", json::Value::Kind::kNumber), "");
    EXPECT_EQ(json::check_key(e, "dur", json::Value::Kind::kNumber), "");
    const json::Value* name = json::find(e, "name");
    ASSERT_NE(name, nullptr);
    if (name->string == "match") {
      saw_match = true;
      const json::Value* args = json::find(e, "args");
      ASSERT_NE(args, nullptr);
      const json::Value* sim = json::find(*args, "sim_s");
      ASSERT_NE(sim, nullptr);
      EXPECT_DOUBLE_EQ(sim->number, 1200.0);
    }
    if (name->string == "rematch") saw_rematch = true;
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_match);
  EXPECT_TRUE(saw_rematch);
}

TEST_F(TelemetryTest, SampleLogRoundTripsThroughCsvAndJson) {
  SampleLog log;
  SampleRow r;
  r.label = "ScanEffi";
  r.time_s = 600.0;
  r.demand_w = 1234.5;
  r.wind_avail_w = 900.0;
  r.wind_w = 800.0;
  r.battery_w = 50.0;
  r.utility_w = 384.5;
  r.queue_depth = 12;
  r.waiting_tasks = 3;
  r.running_tasks = 8;
  r.idle_procs = 4;
  log.append(r);
  r.label = "needs,quoting";
  r.time_s = 1200.0;
  log.append(r);
  EXPECT_EQ(log.size(), 2u);

  const CsvDocument doc = parse_csv(log.to_csv(), /*has_header=*/true);
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][doc.column("label")], "ScanEffi");
  EXPECT_EQ(doc.rows[1][doc.column("label")], "needs,quoting");
  EXPECT_DOUBLE_EQ(parse_double(doc.rows[0][doc.column("demand_w")]), 1234.5);
  EXPECT_EQ(parse_int(doc.rows[0][doc.column("queue_depth")]), 12);
  EXPECT_DOUBLE_EQ(parse_double(doc.rows[1][doc.column("time_s")]), 1200.0);

  const json::Value arr = json::parse(log.to_json());
  ASSERT_TRUE(arr.is(json::Value::Kind::kArray));
  ASSERT_EQ(arr.array.size(), 2u);
  const json::Value* label = json::find(arr.array[0], "label");
  ASSERT_NE(label, nullptr);
  EXPECT_EQ(label->string, "ScanEffi");
  EXPECT_EQ(json::check_key(arr.array[0], "utility_w",
                            json::Value::Kind::kNumber),
            "");

  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST_F(TelemetryTest, WriteRunReportDropsTheFullBundle) {
  set_enabled(true);
  Registry::global().counter("iscope_report_total", "help").get().inc(5);
  {
    ISCOPE_SPAN("report_span");
  }
  SampleRow row;
  row.label = "report";
  row.time_s = 600.0;
  SampleLog::global().append(row);
  set_enabled(false);

  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "iscope_telemetry_report")
          .string();
  std::filesystem::remove_all(dir);
  const RunReportPaths paths = write_run_report(dir);
  for (const std::string& p :
       {paths.metrics_prom, paths.metrics_json, paths.samples_csv,
        paths.trace_json}) {
    ASSERT_TRUE(std::filesystem::exists(p)) << p;
    EXPECT_GT(std::filesystem::file_size(p), 0u) << p;
  }
  std::filesystem::remove_all(dir);

  EXPECT_THROW(write_run_report(""), InvalidArgument);
}

TEST_F(TelemetryTest, ResetGlobalTelemetryZeroesEverything) {
  set_enabled(true);
  Counter& c = Registry::global().counter("iscope_reset_total", "help").get();
  c.inc(4);
  {
    ISCOPE_SPAN("reset_span");
  }
  SampleLog::global().append(SampleRow{});
  set_enabled(false);

  reset_global_telemetry();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(TraceLog::global().total_events(), 0u);
  EXPECT_EQ(SampleLog::global().size(), 0u);
}

TEST(TelemetryRegistry, ConcurrentHammeringKeepsExactTotals) {
  // Exact totals after join: the *_concurrent variants are real RMWs, so
  // no increment may be lost even with every thread on one family.
  Registry reg;
  CounterFamily& counters = reg.counter("iscope_hammer_total", "h", {"t"});
  GaugeFamily& gauges = reg.gauge("iscope_hammer_gauge", "h");
  HistogramFamily& hists =
      reg.histogram("iscope_hammer_seconds", "h",
                    HistogramBuckets::log_linear(1.0, 1000.0, 3));
  Gauge& peak = reg.gauge("iscope_hammer_peak", "h").get();

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kIters = 20000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Shared cell hammered by everyone + one private cell per thread.
      Counter& shared = counters.with({"shared"});
      Counter& mine = counters.with({std::to_string(t)});
      Gauge& g = gauges.get();
      Histogram& h = hists.get();
      for (std::size_t i = 0; i < kIters; ++i) {
        shared.inc_concurrent();
        mine.inc_concurrent();
        g.add_concurrent(1.0);
        h.observe_concurrent(static_cast<double>(i % 1500));
        peak.set_max_concurrent(static_cast<double>(t * kIters + i));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(counters.with({"shared"}).value(), kThreads * kIters);
  for (std::size_t t = 0; t < kThreads; ++t)
    EXPECT_EQ(counters.with({std::to_string(t)}).value(), kIters);
  EXPECT_DOUBLE_EQ(gauges.get().value(),
                   static_cast<double>(kThreads * kIters));
  EXPECT_EQ(hists.get().count(), kThreads * kIters);
  EXPECT_DOUBLE_EQ(peak.value(),
                   static_cast<double>((kThreads - 1) * kIters + kIters - 1));
  // Bucket counts add up to the observation count.
  std::uint64_t bucket_total = 0;
  const std::size_t num_buckets = hists.buckets().bounds.size() + 1;
  for (std::size_t i = 0; i < num_buckets; ++i)
    bucket_total += hists.get().bucket_count(i);
  EXPECT_EQ(bucket_total, kThreads * kIters);
}

}  // namespace
}  // namespace iscope::telemetry
