#include "core/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"

namespace iscope {
namespace {

TEST(MarkdownReport, Heading) {
  MarkdownReport md;
  md.heading(1, "Title");
  md.heading(3, "Sub");
  EXPECT_NE(md.str().find("# Title\n"), std::string::npos);
  EXPECT_NE(md.str().find("### Sub\n"), std::string::npos);
  EXPECT_THROW(md.heading(0, "x"), InvalidArgument);
  EXPECT_THROW(md.heading(7, "x"), InvalidArgument);
}

TEST(MarkdownReport, TableSyntax) {
  MarkdownReport md;
  md.table({"a", "b"}, {{"1", "2"}, {"3", "4"}});
  const std::string& s = md.str();
  EXPECT_NE(s.find("| a | b |"), std::string::npos);
  EXPECT_NE(s.find("|---|---|"), std::string::npos);
  EXPECT_NE(s.find("| 3 | 4 |"), std::string::npos);
}

TEST(MarkdownReport, TableValidation) {
  MarkdownReport md;
  EXPECT_THROW(md.table({}, {}), InvalidArgument);
  EXPECT_THROW(md.table({"a", "b"}, {{"only one"}}), InvalidArgument);
}

TEST(MarkdownReport, BulletsAndParagraphs) {
  MarkdownReport md;
  md.paragraph("Some prose.");
  md.bullet("first");
  md.bullet("second");
  EXPECT_NE(md.str().find("Some prose.\n\n"), std::string::npos);
  EXPECT_NE(md.str().find("* first\n* second\n"), std::string::npos);
}

TEST(MarkdownReport, CodeBlock) {
  MarkdownReport md;
  md.code_block("cmake -B build", "sh");
  EXPECT_NE(md.str().find("```sh\ncmake -B build\n```"), std::string::npos);
}

TEST(MarkdownReport, SaveRoundTrip) {
  MarkdownReport md;
  md.heading(1, "X");
  const std::string path = testing::TempDir() + "/report.md";
  md.save(path);
  std::ifstream in(path);
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "# X");
  std::remove(path.c_str());
  EXPECT_THROW(md.save("/nonexistent/dir/report.md"), ParseError);
}

TEST(MarkdownReport, NumberHelpers) {
  EXPECT_EQ(md_num(3.14159, 2), "3.14");
  EXPECT_EQ(md_pct(0.125), "12.5%");
}

}  // namespace
}  // namespace iscope
