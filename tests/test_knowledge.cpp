#include "sched/knowledge.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "profiling/scanner.hpp"
#include "sched/scheme.hpp"

namespace iscope {
namespace {

struct Fixture {
  Cluster cluster;
  ProfileDb db;

  explicit Fixture(std::size_t n = 24, std::uint64_t seed = 1)
      : cluster(build_cluster([&] {
          ClusterConfig cfg;
          cfg.num_processors = n;
          cfg.seed = seed;
          return cfg;
        }())),
        db(n) {
    const Scanner scanner(&cluster, ScanConfig{});
    Rng rng(2);
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    scanner.scan_domain(all, 0.0, rng, db);
  }
};

TEST(Knowledge, BinUsesBinVoltage) {
  const Fixture f;
  const Knowledge k(&f.cluster, KnowledgeSource::kBin);
  for (std::size_t i = 0; i < k.procs(); ++i)
    for (std::size_t l = 0; l < k.levels(); ++l)
      EXPECT_DOUBLE_EQ(k.vdd(i, l).volts(), f.cluster.bin_vdd(i, l).volts());
}

TEST(Knowledge, ScanUsesDiscoveredVoltage) {
  // The latest scan is the currently-validated bound and is applied as-is
  // (the factory bin spec only covers unscanned chips).
  const Fixture f;
  const Knowledge k(&f.cluster, KnowledgeSource::kScan, &f.db);
  for (std::size_t i = 0; i < k.procs(); ++i)
    for (std::size_t l = 0; l < k.levels(); ++l)
      EXPECT_DOUBLE_EQ(k.vdd(i, l).volts(), f.db.get(i).chip_vdd.vdd(l));
}

TEST(Knowledge, ScanVoltageAtMostQuantizationAboveBin) {
  // At t=0 the bin spec dominates every member's true Min Vdd, so a
  // discovered value can exceed it only by scanner quantization: safety
  // margin plus one grid step.
  const Fixture f;
  const Knowledge scan(&f.cluster, KnowledgeSource::kScan, &f.db);
  const Knowledge bin(&f.cluster, KnowledgeSource::kBin);
  const ScanConfig scan_cfg;  // the fixture's scanner settings
  for (std::size_t i = 0; i < scan.procs(); ++i) {
    for (std::size_t l = 0; l < scan.levels(); ++l) {
      const double vnom = f.cluster.levels().vdd_nom[l];
      const double step = vnom * scan_cfg.sweep_depth /
                          static_cast<double>(scan_cfg.voltage_points - 1);
      // discovered = grid_point*(1+margin); grid_point <= truth + step,
      // plus one extra step of headroom for measurement noise stopping the
      // sweep early.
      EXPECT_LE(scan.vdd(i, l).volts(),
                (bin.vdd(i, l).volts() + 2.0 * step) *
                    (1.0 + scan_cfg.safety_margin));
    }
  }
}

TEST(Knowledge, ScanFallsBackToBinForUnscanned) {
  const Fixture f;
  ProfileDb partial(f.cluster.size());
  const Scanner scanner(&f.cluster, ScanConfig{});
  Rng rng(3);
  partial.store(scanner.scan_chip(0, 0.0, rng));
  const Knowledge k(&f.cluster, KnowledgeSource::kScan, &partial);
  EXPECT_DOUBLE_EQ(k.vdd(0, 0).volts(), partial.get(0).chip_vdd.vdd(0));
  EXPECT_DOUBLE_EQ(k.vdd(1, 0).volts(), f.cluster.bin_vdd(1, 0).volts());
}

TEST(Knowledge, BinChipsInSameBinShareEfficiency) {
  const Fixture f;
  const Knowledge k(&f.cluster, KnowledgeSource::kBin);
  for (std::size_t a = 0; a < k.procs(); ++a)
    for (std::size_t b = 0; b < k.procs(); ++b)
      if (f.cluster.proc(a).bin == f.cluster.proc(b).bin) {
        EXPECT_DOUBLE_EQ(k.efficiency(a).watts_per_ghz(),
                         k.efficiency(b).watts_per_ghz());
      }
}

TEST(Knowledge, BinBetterBinsScoreBetter) {
  const Fixture f;
  const Knowledge k(&f.cluster, KnowledgeSource::kBin);
  for (std::size_t a = 0; a < k.procs(); ++a)
    for (std::size_t b = 0; b < k.procs(); ++b)
      if (f.cluster.proc(a).bin < f.cluster.proc(b).bin) {
        EXPECT_LE(k.efficiency(a).watts_per_ghz(),
                  k.efficiency(b).watts_per_ghz());
      }
}

TEST(Knowledge, ScanDiscriminatesWithinBin) {
  const Fixture f;
  const Knowledge k(&f.cluster, KnowledgeSource::kScan, &f.db);
  // Within some bin there should be chips with different scores.
  bool found_diff = false;
  for (std::size_t a = 0; a < k.procs() && !found_diff; ++a)
    for (std::size_t b = a + 1; b < k.procs(); ++b)
      if (f.cluster.proc(a).bin == f.cluster.proc(b).bin &&
          k.efficiency(a) != k.efficiency(b))
        found_diff = true;
  EXPECT_TRUE(found_diff);
}

TEST(Knowledge, PowerIsTrueChipPowerAtAppliedVoltage) {
  const Fixture f;
  const Knowledge bin(&f.cluster, KnowledgeSource::kBin);
  const Knowledge scan(&f.cluster, KnowledgeSource::kScan, &f.db);
  for (std::size_t i = 0; i < bin.procs(); ++i) {
    for (std::size_t l = 0; l < bin.levels(); ++l) {
      EXPECT_DOUBLE_EQ(bin.power(i, l).watts(),
                       f.cluster.power(i, l, bin.vdd(i, l)).watts());
      EXPECT_DOUBLE_EQ(scan.power(i, l).watts(),
                       f.cluster.power(i, l, scan.vdd(i, l)).watts());
    }
  }
}

TEST(Knowledge, ScanPowerNeverAboveBinPower) {
  // Scanned voltage <= bin worst case (up to the scanner's safety margin),
  // so power at any level is lower or equal.
  const Fixture f;
  const Knowledge bin(&f.cluster, KnowledgeSource::kBin);
  const Knowledge scan(&f.cluster, KnowledgeSource::kScan, &f.db);
  double bin_total = 0.0, scan_total = 0.0;
  for (std::size_t i = 0; i < bin.procs(); ++i) {
    bin_total += bin.power(i, bin.levels() - 1).watts();
    scan_total += scan.power(i, bin.levels() - 1).watts();
  }
  EXPECT_LT(scan_total, bin_total);
}

TEST(Knowledge, EfficiencyOrderSorted) {
  const Fixture f;
  const Knowledge k(&f.cluster, KnowledgeSource::kScan, &f.db);
  const auto& order = k.efficiency_order();
  ASSERT_EQ(order.size(), k.procs());
  for (std::size_t r = 1; r < order.size(); ++r)
    EXPECT_LE(k.efficiency(order[r - 1]).watts_per_ghz(),
              k.efficiency(order[r]).watts_per_ghz());
}

TEST(Knowledge, RefreshPicksUpNewProfiles) {
  const Fixture f;
  ProfileDb db(f.cluster.size());
  Knowledge k(&f.cluster, KnowledgeSource::kScan, &db);
  // Unscanned: bin-specified efficiency (shared within a bin).
  const double eff_before = k.efficiency(0).watts_per_ghz();
  const Scanner scanner(&f.cluster, ScanConfig{});
  Rng rng(4);
  db.store(scanner.scan_chip(0, 0.0, rng));
  k.refresh();
  // Scanned: individually measured efficiency differs from the bin spec.
  EXPECT_NE(k.efficiency(0).watts_per_ghz(), eff_before);
}

TEST(Knowledge, Validation) {
  const Fixture f;
  EXPECT_THROW(Knowledge(nullptr, KnowledgeSource::kBin), InvalidArgument);
  EXPECT_THROW(Knowledge(&f.cluster, KnowledgeSource::kScan, nullptr),
               InvalidArgument);
  const Knowledge k(&f.cluster, KnowledgeSource::kBin);
  EXPECT_THROW(k.vdd(999, 0), InvalidArgument);
  EXPECT_THROW(k.power(0, 99), InvalidArgument);
  EXPECT_THROW(k.efficiency(999), InvalidArgument);
}

// ------------------------------------------------------------------ Scheme

TEST(Scheme, Table2Definitions) {
  EXPECT_EQ(scheme_knowledge(Scheme::kBinRan), KnowledgeSource::kBin);
  EXPECT_EQ(scheme_knowledge(Scheme::kBinEffi), KnowledgeSource::kBin);
  EXPECT_EQ(scheme_knowledge(Scheme::kScanRan), KnowledgeSource::kScan);
  EXPECT_EQ(scheme_knowledge(Scheme::kScanEffi), KnowledgeSource::kScan);
  EXPECT_EQ(scheme_knowledge(Scheme::kScanFair), KnowledgeSource::kScan);
  EXPECT_EQ(scheme_rule(Scheme::kBinRan), PlacementRule::kRandom);
  EXPECT_EQ(scheme_rule(Scheme::kBinEffi), PlacementRule::kEfficiency);
  EXPECT_EQ(scheme_rule(Scheme::kScanRan), PlacementRule::kRandom);
  EXPECT_EQ(scheme_rule(Scheme::kScanEffi), PlacementRule::kEfficiency);
  EXPECT_EQ(scheme_rule(Scheme::kScanFair), PlacementRule::kFair);
}

TEST(Scheme, NamesRoundTrip) {
  for (const Scheme s : kAllSchemes)
    EXPECT_EQ(scheme_from_name(scheme_name(s)), s);
  EXPECT_THROW(scheme_from_name("Nope"), InvalidArgument);
}

TEST(Scheme, ScanFlag) {
  EXPECT_FALSE(scheme_uses_scan(Scheme::kBinRan));
  EXPECT_TRUE(scheme_uses_scan(Scheme::kScanFair));
}

}  // namespace
}  // namespace iscope
