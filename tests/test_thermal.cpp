// Thermal/CRAC + C-state sleep subsystem contracts (DESIGN.md Sec. 16).
//
//  * ThermalOffIdentity: thermal disabled + sleep kNone is bit-identical
//    to a default-config run even when every inert knob is changed -- the
//    subsystem must be provably absent when off.
//  * Model unit contracts: the COP curve, the recirculation matrix's
//    structure (middle racks recirculate more than end racks), and the
//    CRAC operating-point solve (clamping, derate).
//  * Accounting: thermal billing replaces the flat Eq-2 factor; sleep
//    residency power is metered; counters move only under their policy.
//  * Determinism: a 1-shard ShardedSim with thermal + sleep on is
//    bit-identical to the flat simulator; an N-shard run is independent
//    of shard_workers; step_until() slicing across wake boundaries is
//    bit-identical to one drain (PR 9 clock-fix coverage, sleep edition).
//  * Extended schemes: ScanTherm forces the thermal model on; the *Sleep
//    variants force a sleep policy.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "fault/fault.hpp"
#include "profiling/scanner.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "thermal/thermal.hpp"

namespace iscope {
namespace {

void expect_identical(const SimResult& a, const SimResult& b) {
  // Exact FP equality: both runs must execute the same arithmetic in the
  // same order, so EXPECT_EQ on doubles is bitwise-meaningful.
  EXPECT_EQ(a.energy.wind.joules(), b.energy.wind.joules());
  EXPECT_EQ(a.energy.utility.joules(), b.energy.utility.joules());
  EXPECT_EQ(a.cost.raw(), b.cost.raw());
  EXPECT_EQ(a.wind_curtailed.joules(), b.wind_curtailed.joules());
  EXPECT_EQ(a.battery_delivered.joules(), b.battery_delivered.joules());
  EXPECT_EQ(a.battery_losses.joules(), b.battery_losses.joules());
  EXPECT_EQ(a.cooling_energy.joules(), b.cooling_energy.joules());
  EXPECT_EQ(a.idle_energy.joules(), b.idle_energy.joules());
  EXPECT_EQ(a.peak_inlet_c, b.peak_inlet_c);
  EXPECT_EQ(a.sleep_enters, b.sleep_enters);
  EXPECT_EQ(a.sleep_wakes, b.sleep_wakes);
  EXPECT_EQ(a.tasks_completed, b.tasks_completed);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.mean_wait.seconds(), b.mean_wait.seconds());
  EXPECT_EQ(a.makespan.seconds(), b.makespan.seconds());
  EXPECT_EQ(a.busy_variance_h2, b.busy_variance_h2);
  EXPECT_EQ(a.procs_used_fraction, b.procs_used_fraction);
  EXPECT_EQ(a.dvfs_rematch_count, b.dvfs_rematch_count);
  EXPECT_EQ(a.events_processed, b.events_processed);
  ASSERT_EQ(a.busy_time_s.size(), b.busy_time_s.size());
  for (std::size_t i = 0; i < a.busy_time_s.size(); ++i)
    EXPECT_EQ(a.busy_time_s[i], b.busy_time_s[i]) << "proc " << i;
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].time.seconds(), b.trace[i].time.seconds());
    EXPECT_EQ(a.trace[i].demand.watts(), b.trace[i].demand.watts());
    EXPECT_EQ(a.trace[i].wind.watts(), b.trace[i].wind.watts());
    EXPECT_EQ(a.trace[i].utility.watts(), b.trace[i].utility.watts());
    EXPECT_EQ(a.trace[i].battery.watts(), b.trace[i].battery.watts());
  }
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].time_s, b.timeline[i].time_s) << "event " << i;
    EXPECT_EQ(a.timeline[i].kind, b.timeline[i].kind) << "event " << i;
    EXPECT_EQ(a.timeline[i].task_id, b.timeline[i].task_id) << "event " << i;
    EXPECT_EQ(a.timeline[i].value, b.timeline[i].value) << "event " << i;
  }
}

struct Scenario {
  Cluster cluster;
  ProfileDb db;

  explicit Scenario(std::size_t n, std::uint64_t seed)
      : cluster(build_cluster([&] {
          ClusterConfig cfg;
          cfg.num_processors = n;
          cfg.seed = seed;
          return cfg;
        }())),
        db(n) {
    const Scanner scanner(&cluster, ScanConfig{});
    Rng rng(seed + 7);
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    scanner.scan_domain(all, 0.0, rng, db);
  }

  std::vector<Task> make_tasks(std::size_t count, std::size_t max_cpus,
                               std::uint64_t seed) const {
    Rng rng(seed);
    std::vector<Task> tasks;
    tasks.reserve(count);
    double submit = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      submit += rng.uniform(0.0, 400.0);
      Task t;
      t.id = static_cast<std::int64_t>(i + 1);
      t.submit_s = submit;
      t.cpus = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(max_cpus)));
      t.runtime_s = rng.uniform(100.0, 2000.0);
      t.gamma = rng.uniform(0.3, 1.0);
      t.deadline_s = t.submit_s + t.runtime_s * rng.uniform(1.5, 10.0);
      tasks.push_back(t);
    }
    return tasks;
  }

  HybridSupply make_supply(std::uint64_t seed) const {
    Rng rng(seed);
    std::vector<double> watts;
    Watts peak;
    const std::size_t top = cluster.levels().freq_ghz.size() - 1;
    for (std::size_t p = 0; p < cluster.size(); ++p)
      peak += cluster.power(p, top, Volts{cluster.levels().vdd_nom[top]});
    for (std::size_t i = 0; i < 200; ++i)
      watts.push_back(rng.uniform(0.0, 0.9 * peak.watts()));
    return HybridSupply(SupplyTrace(Seconds{600.0}, std::move(watts)));
  }

  SimConfig base_config() const {
    SimConfig cfg;
    cfg.record_trace = true;
    cfg.record_timeline = true;
    cfg.topology.cpus_per_rack = 2;
    return cfg;
  }

  SimResult run_flat(Scheme scheme, const std::vector<Task>& tasks,
                     const HybridSupply& supply, const SimConfig& cfg) const {
    Knowledge knowledge(&cluster, scheme_knowledge(scheme),
                        scheme_uses_scan(scheme) ? &db : nullptr);
    DatacenterSim sim(&knowledge, scheme_rule(scheme), &supply, cfg);
    return sim.run(tasks);
  }

  SimResult run_sharded(Scheme scheme, const std::vector<Task>& tasks,
                        const HybridSupply& supply, SimConfig cfg,
                        std::size_t shards, std::size_t workers) const {
    cfg.topology.shards = shards;
    cfg.shard_workers = workers;
    ShardedSim sim(cluster, scheme, scheme_uses_scan(scheme) ? &db : nullptr,
                   supply, cfg);
    return sim.run(tasks);
  }
};

// ------------------------------------------------------------ model units

TEST(ThermalModel, CracCopCurveMatchesMooreEtAl) {
  // COP(T) = 0.0068 T^2 + 0.0008 T + 0.458.
  EXPECT_DOUBLE_EQ(crac_cop(25.0), 0.0068 * 625.0 + 0.0008 * 25.0 + 0.458);
  EXPECT_DOUBLE_EQ(crac_cop(15.0), 0.0068 * 225.0 + 0.0008 * 15.0 + 0.458);
  // Colder supply is strictly less efficient.
  EXPECT_LT(crac_cop(15.0), crac_cop(25.0));
}

TEST(ThermalModel, MatrixMiddleRacksRecirculateMore) {
  ThermalConfig cfg;
  cfg.enabled = true;
  TopologyConfig topo;
  topo.cpus_per_rack = 2;
  topo.racks_per_row = 8;  // one aisle row, ends vs middle well-defined
  const RecirculationMatrix m(cfg, topo, /*racks=*/8);
  ASSERT_EQ(m.racks(), 8u);
  // Rows are normalized, so the diagonal is not the raw self-coupling --
  // but self-coupling still dominates every row, and nothing is negative.
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_GE(m.at(i, j), 0.0);
      if (j != i) {
        EXPECT_GT(m.at(i, i), m.at(i, j)) << i << "," << j;
      }
    }
  }
  // A watt in a mid-row rack raises more total inlet temperature than a
  // watt at the row's end (geedo0's MinHR ranking rationale).
  double max_end = std::max(m.heat_weight(0), m.heat_weight(7));
  double min_mid = std::min(m.heat_weight(3), m.heat_weight(4));
  EXPECT_GT(min_mid, max_end);
}

TEST(ThermalModel, SolveClampsSupplyAndReportsPeak) {
  ThermalConfig cfg;
  cfg.enabled = true;
  TopologyConfig topo;
  topo.cpus_per_rack = 2;
  const ThermalModel model(cfg, topo, 4);

  // No load: no recirculation, the CRAC relaxes to its warmest supply.
  ThermalSolution idle = model.solve({0.0, 0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(idle.supply_c, cfg.max_supply_c);
  EXPECT_DOUBLE_EQ(idle.max_rise_c, 0.0);
  EXPECT_DOUBLE_EQ(idle.peak_inlet_c, cfg.max_supply_c);

  // Moderate load: supply drops to hold the hottest inlet at the red line.
  ThermalSolution warm = model.solve({2000.0, 2000.0, 2000.0, 2000.0});
  EXPECT_LT(warm.supply_c, cfg.max_supply_c);
  EXPECT_GE(warm.supply_c, cfg.min_supply_c);
  EXPECT_GT(warm.peak_inlet_c, warm.supply_c);
  EXPECT_LE(warm.peak_inlet_c, cfg.red_line_c + 1e-9);

  // Extreme load: the supply pegs at its floor and the inlets run past
  // the red line -- reported, not hidden.
  ThermalSolution hot = model.solve({9e4, 9e4, 9e4, 9e4});
  EXPECT_DOUBLE_EQ(hot.supply_c, cfg.min_supply_c);
  EXPECT_GT(hot.peak_inlet_c, cfg.red_line_c);

  // A degraded CRAC delivers the same air at a worse COP.
  ThermalSolution derated = model.solve({2000.0, 2000.0, 2000.0, 2000.0}, 0.5);
  EXPECT_DOUBLE_EQ(derated.supply_c, warm.supply_c);
  EXPECT_LT(derated.cop, warm.cop);
}

// ----------------------------------------------------- off-path identity

TEST(ThermalOffIdentity, DisabledKnobsAreInert) {
  // thermal.enabled=false + sleep kNone must be bit-identical to a config
  // that never mentioned either subsystem, whatever the inert knobs say.
  const Scenario s(16, 101);
  const auto tasks = s.make_tasks(30, 6, 201);
  const HybridSupply supply = s.make_supply(301);
  for (const Scheme scheme : kAllSchemes) {
    SCOPED_TRACE(scheme_name(scheme));
    const SimResult base = s.run_flat(scheme, tasks, supply, s.base_config());
    SimConfig knobs = s.base_config();
    knobs.thermal.red_line_c = 99.0;
    knobs.thermal.self_coupling_k_per_w = 1.0;
    knobs.thermal.cross_row_coupling = 0.9;
    knobs.sleep.timeout_s = 1.0;
    knobs.sleep.active_idle_frac = 0.99;
    const SimResult tweaked = s.run_flat(scheme, tasks, supply, knobs);
    expect_identical(base, tweaked);
    // And the subsystem's outputs are provably absent.
    EXPECT_EQ(base.cooling_energy.joules(), 0.0);
    EXPECT_EQ(base.idle_energy.joules(), 0.0);
    EXPECT_EQ(base.peak_inlet_c, 0.0);
    EXPECT_EQ(base.sleep_enters, 0u);
    EXPECT_EQ(base.sleep_wakes, 0u);
  }
}

// ---------------------------------------------------------- accounting

TEST(ThermalAccounting, EnabledModelBillsCoolingAndTracksPeakInlet) {
  const Scenario s(16, 103);
  const auto tasks = s.make_tasks(30, 6, 203);
  const HybridSupply supply = s.make_supply(303);
  SimConfig cfg = s.base_config();
  cfg.thermal.enabled = true;
  const SimResult r = s.run_flat(Scheme::kScanEffi, tasks, supply, cfg);
  EXPECT_GT(r.cooling_energy.joules(), 0.0);
  EXPECT_GE(r.peak_inlet_c, cfg.thermal.min_supply_c);
  EXPECT_EQ(r.tasks_completed, tasks.size());
  // The CRAC bill moved: thermal billing is not the flat Eq-2 overhead.
  const SimResult flat =
      s.run_flat(Scheme::kScanEffi, tasks, supply, s.base_config());
  EXPECT_NE(r.cost.raw(), flat.cost.raw());
}

TEST(ThermalAccounting, CracDerateWindowRaisesTheCoolingBill) {
  const Scenario s(16, 107);
  const auto tasks = s.make_tasks(30, 6, 207);
  const HybridSupply supply = s.make_supply(307);
  SimConfig cfg = s.base_config();
  cfg.thermal.enabled = true;
  const SimResult healthy = s.run_flat(Scheme::kScanFair, tasks, supply, cfg);
  cfg.faults = parse_fault_spec("crac=0.5,crac-start=0,crac-duration=20000");
  const SimResult degraded = s.run_flat(Scheme::kScanFair, tasks, supply, cfg);
  EXPECT_GT(degraded.cooling_energy.joules(), healthy.cooling_energy.joules());
}

TEST(SleepAccounting, ActiveIdleBillsResidencyButNeverSleeps) {
  const Scenario s(16, 109);
  const auto tasks = s.make_tasks(25, 6, 209);
  const HybridSupply supply = s.make_supply(309);
  SimConfig cfg = s.base_config();
  cfg.sleep.policy = SleepPolicy::kActiveIdle;
  const SimResult r = s.run_flat(Scheme::kScanEffi, tasks, supply, cfg);
  EXPECT_GT(r.idle_energy.joules(), 0.0);
  EXPECT_EQ(r.sleep_enters, 0u);
  EXPECT_EQ(r.sleep_wakes, 0u);
  EXPECT_EQ(r.tasks_completed, tasks.size());
}

TEST(SleepAccounting, ImmediatePolicySleepsDeepAndDelaysStarts) {
  const Scenario s(16, 113);
  const auto tasks = s.make_tasks(25, 6, 211);
  const HybridSupply supply = s.make_supply(311);
  SimConfig active = s.base_config();
  active.sleep.policy = SleepPolicy::kActiveIdle;
  SimConfig deep = s.base_config();
  deep.sleep.policy = SleepPolicy::kImmediate;
  const SimResult base = s.run_flat(Scheme::kScanEffi, tasks, supply, active);
  const SimResult r = s.run_flat(Scheme::kScanEffi, tasks, supply, deep);
  EXPECT_GT(r.sleep_enters, 0u);
  EXPECT_GT(r.sleep_wakes, 0u);  // cold facility: first starts must wake
  EXPECT_EQ(r.tasks_completed, tasks.size());
  // Sleeping saves residency energy relative to the honest idle baseline...
  EXPECT_LT(r.idle_energy.joules(), base.idle_energy.joules());
  // ...at the price of wake latency on the critical path.
  EXPECT_GE(r.makespan.seconds(), base.makespan.seconds());
}

TEST(SleepAccounting, TimeoutPolicyDescendsAfterResidency) {
  const Scenario s(16, 127);
  const auto tasks = s.make_tasks(20, 6, 213);
  const HybridSupply supply = s.make_supply(313);
  SimConfig cfg = s.base_config();
  cfg.sleep.policy = SleepPolicy::kTimeout;
  cfg.sleep.timeout_s = 50.0;  // short: idle gaps comfortably exceed it
  const SimResult r = s.run_flat(Scheme::kScanFair, tasks, supply, cfg);
  EXPECT_GT(r.sleep_enters, 0u);
  EXPECT_EQ(r.tasks_completed, tasks.size());
}

// ---------------------------------------------------------- determinism

TEST(ThermalDeterminism, OneShardShardedMatchesFlat) {
  const Scenario s(24, 131);
  const auto tasks = s.make_tasks(30, 8, 217);
  const HybridSupply supply = s.make_supply(317);
  SimConfig cfg = s.base_config();
  cfg.thermal.enabled = true;
  cfg.sleep.policy = SleepPolicy::kTimeout;
  cfg.sleep.timeout_s = 120.0;
  for (const Scheme scheme : {Scheme::kScanEffi, Scheme::kScanFair}) {
    SCOPED_TRACE(scheme_name(scheme));
    const SimResult flat = s.run_flat(scheme, tasks, supply, cfg);
    const SimResult sharded =
        s.run_sharded(scheme, tasks, supply, cfg, /*shards=*/1, /*workers=*/1);
    expect_identical(flat, sharded);
  }
}

TEST(ThermalDeterminism, MultiShardRunIsWorkerCountIndependent) {
  const Scenario s(24, 137);
  const auto tasks = s.make_tasks(30, 6, 219);
  const HybridSupply supply = s.make_supply(319);
  SimConfig cfg = s.base_config();
  cfg.thermal.enabled = true;
  cfg.sleep.policy = SleepPolicy::kImmediate;
  cfg.topology.shards = 2;
  const SimResult serial =
      s.run_sharded(Scheme::kScanEffi, tasks, supply, cfg, 2, 1);
  const SimResult two =
      s.run_sharded(Scheme::kScanEffi, tasks, supply, cfg, 2, 2);
  const SimResult eight =
      s.run_sharded(Scheme::kScanEffi, tasks, supply, cfg, 2, 8);
  expect_identical(serial, two);
  expect_identical(serial, eight);
  EXPECT_GT(serial.cooling_energy.joules(), 0.0);
}

// Satellite 1 (sim level): a wake event pending at a slice boundary is
// not skipped when step_until() slices the run -- chunked execution with
// sleep transitions is bit-identical to one uninterrupted drain.
TEST(ThermalDeterminism, SlicedStepUntilCrossesWakeBoundaries) {
  const Scenario s(16, 139);
  const auto tasks = s.make_tasks(25, 6, 221);
  const HybridSupply supply = s.make_supply(321);
  SimConfig cfg = s.base_config();
  cfg.thermal.enabled = true;
  cfg.sleep.policy = SleepPolicy::kImmediate;  // every start pays a wake

  // Idle power never stops, so the result depends on the final clock
  // position; drive both runs to the same end instant and compare.
  const double t_end = 200000.0;

  Knowledge k1(&s.cluster, KnowledgeSource::kScan, &s.db);
  DatacenterSim whole(&k1, PlacementRule::kEfficiency, &supply, cfg);
  whole.prepare(tasks);
  whole.step_until(t_end);  // one uninterrupted slice
  ASSERT_TRUE(whole.drained());
  const SimResult one = whole.finish();
  ASSERT_GT(one.sleep_wakes, 0u);

  Knowledge k2(&s.cluster, KnowledgeSource::kScan, &s.db);
  DatacenterSim sliced(&k2, PlacementRule::kEfficiency, &supply, cfg);
  sliced.prepare(tasks);
  // 37 s slices land between (not on) event times, so kWake events keep
  // crossing slice boundaries.
  for (double t = 37.0; t < t_end; t += 37.0) sliced.step_until(t);
  sliced.step_until(t_end);
  ASSERT_TRUE(sliced.drained());
  expect_identical(one, sliced.finish());
}

// ------------------------------------------------------ extended schemes

TEST(ExtendedSchemes, ScanThermForcesTheThermalModelOn) {
  const Scheme scan_therm = ensure_extended_schemes_registered();
  EXPECT_STREQ(scheme_name(scan_therm), "ScanTherm");
  const Scenario s(16, 149);
  const auto tasks = s.make_tasks(25, 6, 223);
  const HybridSupply supply = s.make_supply(323);
  const SimResult r = run_scheme(s.cluster, scan_therm, &s.db, supply, tasks,
                                 s.base_config());
  EXPECT_GT(r.cooling_energy.joules(), 0.0);  // thermal billing active
  EXPECT_GT(r.peak_inlet_c, 0.0);
  EXPECT_EQ(r.tasks_completed, tasks.size());
}

TEST(ExtendedSchemes, SleepVariantsForceASleepPolicy) {
  ensure_extended_schemes_registered();
  const Scenario s(16, 151);
  const auto tasks = s.make_tasks(20, 6, 227);
  const HybridSupply supply = s.make_supply(327);
  const Scheme scheme = scheme_from_name("ScanEffiSleep");
  const SimResult r =
      run_scheme(s.cluster, scheme, &s.db, supply, tasks, s.base_config());
  EXPECT_GT(r.idle_energy.joules(), 0.0);  // residency power billed
  EXPECT_EQ(r.tasks_completed, tasks.size());
  // The caller's explicit policy wins over the scheme default.
  SimConfig explicit_cfg = s.base_config();
  explicit_cfg.sleep.policy = SleepPolicy::kActiveIdle;
  const SimResult honest =
      run_scheme(s.cluster, scheme, &s.db, supply, tasks, explicit_cfg);
  EXPECT_EQ(honest.sleep_enters, 0u);
}

}  // namespace
}  // namespace iscope
