#include "workload/swf.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace iscope {
namespace {

const char* kSampleSwf =
    "; SWF header comment\n"
    ";   Computer: LLNL Thunder-like\n"
    "1 100 5 3600 64 -1 -1 64 7200 -1 1 1 1 -1 1 -1 -1 -1\n"
    "2 160 0 1800 16 -1 -1 32 3600 -1 1 2 1 -1 1 -1 -1 -1\n"
    "3 200 0 -1 8 -1 -1 8 100 -1 0 3 1 -1 1 -1 -1 -1\n"
    "4 220 0 600 0 -1 -1 0 100 -1 1 4 1 -1 1 -1 -1 -1\n";

TEST(Swf, ParsesFields) {
  const auto jobs = parse_swf(kSampleSwf);
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(jobs[0].job_id, 1);
  EXPECT_DOUBLE_EQ(jobs[0].submit_s, 100.0);
  EXPECT_DOUBLE_EQ(jobs[0].wait_s, 5.0);
  EXPECT_DOUBLE_EQ(jobs[0].runtime_s, 3600.0);
  EXPECT_EQ(jobs[0].allocated_procs, 64);
  EXPECT_EQ(jobs[0].requested_procs, 64);
  EXPECT_DOUBLE_EQ(jobs[0].requested_time_s, 7200.0);
  EXPECT_EQ(jobs[0].status, 1);
}

TEST(Swf, CommentsSkipped) {
  const auto jobs = parse_swf("; only comments\n;\n");
  EXPECT_TRUE(jobs.empty());
}

TEST(Swf, ShortLineThrows) {
  EXPECT_THROW(parse_swf("1 2 3\n"), ParseError);
}

TEST(Swf, AllocatedFallsBackToRequested) {
  const auto jobs = parse_swf(kSampleSwf);
  const auto tasks = swf_to_tasks(jobs);
  // Job 2 allocated 16 (used over requested 32); job 3 dropped (runtime -1);
  // job 4 dropped (0 procs).
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_EQ(tasks[0].cpus, 64u);
  EXPECT_EQ(tasks[1].cpus, 16u);
}

TEST(Swf, SubmitTimesRebasedToZero) {
  const auto tasks = swf_to_tasks(parse_swf(kSampleSwf));
  EXPECT_DOUBLE_EQ(tasks[0].submit_s, 0.0);
  EXPECT_DOUBLE_EQ(tasks[1].submit_s, 60.0);
}

TEST(Swf, TasksValidAfterConversion) {
  const auto tasks = swf_to_tasks(parse_swf(kSampleSwf));
  EXPECT_NO_THROW(validate_tasks(tasks));
}

TEST(Swf, ExportRoundTrip) {
  const auto tasks = swf_to_tasks(parse_swf(kSampleSwf));
  const std::string text = tasks_to_swf(tasks);
  const auto back = swf_to_tasks(parse_swf(text));
  ASSERT_EQ(back.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(back[i].cpus, tasks[i].cpus);
    EXPECT_DOUBLE_EQ(back[i].runtime_s, tasks[i].runtime_s);
    EXPECT_DOUBLE_EQ(back[i].submit_s, tasks[i].submit_s);
  }
}

TEST(Swf, MissingFileThrows) {
  EXPECT_THROW(read_swf_file("/nonexistent.swf"), ParseError);
}

TEST(Swf, WindowsLineEndings) {
  const auto jobs =
      parse_swf("1 0 0 100 4 -1 -1 4 -1 -1 1 1 1 -1 1 -1 -1 -1\r\n");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].runtime_s, 100.0);
}

}  // namespace
}  // namespace iscope
