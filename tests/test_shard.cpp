// Sharded-simulator contracts (DESIGN.md Sec. 12, sim/sharded.hpp).
//
//  * ShardIdentity: a 1-shard ShardedSim run is bit-identical to the
//    single-event-loop DatacenterSim across all five schemes, +- battery,
//    +- profiling windows, +- fault injection -- every SimResult field,
//    trace sample and timeline event compared with exact FP equality.
//  * Worker independence: an N-shard run is a pure function of
//    (inputs, seed); the shard_workers knob (1/2/8) must not move a bit.
//  * Reconciliation: the epoch-barrier wind allocator conserves the budget
//    at 0 ULP of the fixed-shard-order sum and never over-grants.
//  * Partition: tasks land exactly once, always on a shard they fit.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "energy/reconcile.hpp"
#include "fault/fault.hpp"
#include "profiling/scanner.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"

namespace iscope {
namespace {

void expect_identical(const SimResult& a, const SimResult& b) {
  // Exact equality everywhere: EXPECT_EQ on doubles is bitwise-meaningful
  // because both runs must execute the same arithmetic in the same order.
  EXPECT_EQ(a.energy.wind.joules(), b.energy.wind.joules());
  EXPECT_EQ(a.energy.utility.joules(), b.energy.utility.joules());
  EXPECT_EQ(a.cost.raw(), b.cost.raw());
  EXPECT_EQ(a.wind_curtailed.joules(), b.wind_curtailed.joules());
  EXPECT_EQ(a.battery_delivered.joules(), b.battery_delivered.joules());
  EXPECT_EQ(a.battery_losses.joules(), b.battery_losses.joules());
  EXPECT_EQ(a.tasks_completed, b.tasks_completed);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.mean_wait.seconds(), b.mean_wait.seconds());
  EXPECT_EQ(a.makespan.seconds(), b.makespan.seconds());
  EXPECT_EQ(a.busy_variance_h2, b.busy_variance_h2);
  EXPECT_EQ(a.procs_used_fraction, b.procs_used_fraction);
  EXPECT_EQ(a.dvfs_rematch_count, b.dvfs_rematch_count);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.profiling_procs_scanned, b.profiling_procs_scanned);
  EXPECT_EQ(a.profiling_procs_skipped, b.profiling_procs_skipped);
  EXPECT_EQ(a.profiling_proc_seconds, b.profiling_proc_seconds);
  EXPECT_EQ(a.faults.cpu_failures, b.faults.cpu_failures);
  EXPECT_EQ(a.faults.cpu_repairs, b.faults.cpu_repairs);
  EXPECT_EQ(a.faults.misprofile_failures, b.faults.misprofile_failures);
  EXPECT_EQ(a.faults.task_requeues, b.faults.task_requeues);
  EXPECT_EQ(a.faults.tasks_failed, b.faults.tasks_failed);
  EXPECT_EQ(a.faults.lost_cpu_seconds, b.faults.lost_cpu_seconds);
  EXPECT_EQ(a.faults.fault_deadline_misses, b.faults.fault_deadline_misses);

  ASSERT_EQ(a.busy_time_s.size(), b.busy_time_s.size());
  for (std::size_t i = 0; i < a.busy_time_s.size(); ++i)
    EXPECT_EQ(a.busy_time_s[i], b.busy_time_s[i]) << "proc " << i;

  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].time.seconds(), b.trace[i].time.seconds());
    EXPECT_EQ(a.trace[i].demand.watts(), b.trace[i].demand.watts());
    EXPECT_EQ(a.trace[i].wind.watts(), b.trace[i].wind.watts());
    EXPECT_EQ(a.trace[i].utility.watts(), b.trace[i].utility.watts());
    EXPECT_EQ(a.trace[i].wind_avail.watts(), b.trace[i].wind_avail.watts());
    EXPECT_EQ(a.trace[i].battery.watts(), b.trace[i].battery.watts());
  }

  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].time_s, b.timeline[i].time_s) << "event " << i;
    EXPECT_EQ(a.timeline[i].kind, b.timeline[i].kind) << "event " << i;
    EXPECT_EQ(a.timeline[i].task_id, b.timeline[i].task_id) << "event " << i;
    EXPECT_EQ(a.timeline[i].value, b.timeline[i].value) << "event " << i;
  }
}

/// Small facility with a fine rack grain (2 CPUs/rack) so a couple dozen
/// processors still split into several rack-aligned shards.
struct Scenario {
  Cluster cluster;
  ProfileDb db;

  explicit Scenario(std::size_t n, std::uint64_t seed)
      : cluster(build_cluster([&] {
          ClusterConfig cfg;
          cfg.num_processors = n;
          cfg.seed = seed;
          return cfg;
        }())),
        db(n) {
    const Scanner scanner(&cluster, ScanConfig{});
    Rng rng(seed + 7);
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    scanner.scan_domain(all, 0.0, rng, db);
  }

  /// Randomized workload capped at `max_cpus` so every task fits a shard
  /// slice in the multi-shard configurations under test.
  std::vector<Task> make_tasks(std::size_t count, std::size_t max_cpus,
                               std::uint64_t seed) const {
    Rng rng(seed);
    std::vector<Task> tasks;
    tasks.reserve(count);
    double submit = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      submit += rng.uniform(0.0, 400.0);
      Task t;
      t.id = static_cast<std::int64_t>(i + 1);
      t.submit_s = submit;
      t.cpus = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(max_cpus)));
      t.runtime_s = rng.uniform(100.0, 2000.0);
      t.gamma = rng.uniform(0.3, 1.0);
      t.deadline_s = t.submit_s + t.runtime_s * rng.uniform(1.5, 10.0);
      tasks.push_back(t);
    }
    return tasks;
  }

  HybridSupply make_supply(std::uint64_t seed) const {
    Rng rng(seed);
    std::vector<double> watts;
    Watts peak;
    const std::size_t top = cluster.levels().freq_ghz.size() - 1;
    for (std::size_t p = 0; p < cluster.size(); ++p)
      peak += cluster.power(p, top, Volts{cluster.levels().vdd_nom[top]});
    for (std::size_t i = 0; i < 200; ++i)
      watts.push_back(rng.uniform(0.0, 0.9 * peak.watts()));
    return HybridSupply(SupplyTrace(Seconds{600.0}, std::move(watts)));
  }

  SimConfig base_config(std::size_t shards) const {
    SimConfig cfg;
    cfg.record_trace = true;
    cfg.record_timeline = true;
    cfg.topology.cpus_per_rack = 2;
    cfg.topology.shards = shards;
    return cfg;
  }

  SimResult run_legacy(Scheme scheme, const std::vector<Task>& tasks,
                       const HybridSupply& supply, SimConfig cfg,
                       const std::vector<ProfilingWindow>& profiling = {})
      const {
    cfg.topology.shards = 1;
    Knowledge knowledge(&cluster, scheme_knowledge(scheme),
                        scheme_uses_scan(scheme) ? &db : nullptr);
    DatacenterSim sim(&knowledge, scheme_rule(scheme), &supply, cfg);
    return sim.run(tasks, profiling);
  }

  SimResult run_sharded(Scheme scheme, const std::vector<Task>& tasks,
                        const HybridSupply& supply, SimConfig cfg,
                        const std::vector<ProfilingWindow>& profiling = {})
      const {
    ShardedSim sim(cluster, scheme, scheme_uses_scan(scheme) ? &db : nullptr,
                   supply, cfg);
    return sim.run(tasks, profiling);
  }

  /// The tentpole invariant: the 1-shard sharded run (chunked event
  /// processing, reconciled fraction pinned to 1.0) is bit-identical to
  /// one uninterrupted DatacenterSim drain.
  void check_one_shard_identity(
      Scheme scheme, const std::vector<Task>& tasks,
      const HybridSupply& supply, SimConfig cfg,
      const std::vector<ProfilingWindow>& profiling = {}) const {
    cfg.topology.shards = 1;
    const SimResult legacy = run_legacy(scheme, tasks, supply, cfg, profiling);
    const SimResult sharded =
        run_sharded(scheme, tasks, supply, cfg, profiling);
    expect_identical(legacy, sharded);
  }
};

std::vector<ProfilingWindow> spread_windows(std::size_t procs) {
  std::vector<ProfilingWindow> windows;
  for (std::size_t w = 0; w < 4; ++w) {
    ProfilingWindow win;
    win.start_s = 500.0 + 2500.0 * static_cast<double>(w);
    win.duration_s = 900.0;
    // Processors spread across the whole facility, so multi-shard runs
    // exercise the window split.
    win.proc_ids = {w, (w + procs / 3) % procs, (w + 2 * procs / 3) % procs};
    windows.push_back(win);
  }
  return windows;
}

// ----------------------------------------------------- 1-shard identity

TEST(ShardIdentity, AllSchemesWithWind) {
  const Scenario s(24, 11);
  const auto tasks = s.make_tasks(40, 8, 21);
  const HybridSupply supply = s.make_supply(31);
  for (const Scheme scheme : kAllSchemes) {
    SCOPED_TRACE(scheme_name(scheme));
    s.check_one_shard_identity(scheme, tasks, supply, s.base_config(1));
  }
}

TEST(ShardIdentity, UtilityOnly) {
  const Scenario s(24, 13);
  const auto tasks = s.make_tasks(30, 8, 23);
  for (const Scheme scheme : {Scheme::kScanFair, Scheme::kBinRan}) {
    SCOPED_TRACE(scheme_name(scheme));
    s.check_one_shard_identity(scheme, tasks, HybridSupply{},
                               s.base_config(1));
  }
}

TEST(ShardIdentity, WithBattery) {
  const Scenario s(24, 17);
  const auto tasks = s.make_tasks(35, 8, 27);
  const HybridSupply supply = s.make_supply(37);
  SimConfig cfg = s.base_config(1);
  cfg.battery = BatteryConfig::make(/*capacity_kwh=*/2.0, /*power_kw=*/1.0);
  for (const Scheme scheme : {Scheme::kScanFair, Scheme::kBinEffi}) {
    SCOPED_TRACE(scheme_name(scheme));
    s.check_one_shard_identity(scheme, tasks, supply, cfg);
  }
}

TEST(ShardIdentity, WithProfilingWindows) {
  const Scenario s(24, 19);
  const auto tasks = s.make_tasks(35, 8, 29);
  const HybridSupply supply = s.make_supply(39);
  const auto windows = spread_windows(24);
  s.check_one_shard_identity(Scheme::kScanEffi, tasks, supply,
                             s.base_config(1), windows);
  s.check_one_shard_identity(Scheme::kScanRan, tasks, supply,
                             s.base_config(1), windows);
}

TEST(ShardIdentity, WithFaultInjection) {
  const Scenario s(24, 23);
  const auto tasks = s.make_tasks(35, 8, 33);
  const HybridSupply supply = s.make_supply(41);
  SimConfig cfg = s.base_config(1);
  // Representative spec: crashes + repairs + scan mis-profiling. The
  // legacy path builds its plan from the spec directly; the sharded path
  // builds the same global plan and slices it -- slice(0, procs) must
  // reproduce it exactly.
  cfg.faults = parse_fault_spec("mtbf=30000,repair=1800,misprofile=0.05");
  cfg.fault_seed = 77;
  for (const Scheme scheme : {Scheme::kScanFair, Scheme::kScanEffi}) {
    SCOPED_TRACE(scheme_name(scheme));
    s.check_one_shard_identity(scheme, tasks, supply, cfg);
  }
}

TEST(ShardIdentity, BatteryPlusProfilingPlusFaults) {
  // Everything at once: the kitchen-sink scenario from the equivalence
  // suite's playbook.
  const Scenario s(24, 29);
  const auto tasks = s.make_tasks(30, 8, 43);
  const HybridSupply supply = s.make_supply(47);
  SimConfig cfg = s.base_config(1);
  cfg.battery = BatteryConfig::make(1.0, 0.5);
  cfg.faults = parse_fault_spec("mtbf=40000,repair=2400,misprofile=0.03");
  cfg.fault_seed = 5;
  s.check_one_shard_identity(Scheme::kScanFair, tasks, supply, cfg,
                             spread_windows(24));
}

// ----------------------------------------- N-shard seed determinism

TEST(ShardDeterminism, WorkerCountDoesNotMoveABit) {
  const Scenario s(24, 31);
  const auto tasks = s.make_tasks(60, 4, 51);
  const HybridSupply supply = s.make_supply(53);
  SimConfig cfg = s.base_config(4);
  SimResult first;
  bool have_first = false;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    SCOPED_TRACE(workers);
    cfg.shard_workers = workers;
    const SimResult r = s.run_sharded(Scheme::kScanFair, tasks, supply, cfg);
    if (!have_first) {
      first = r;
      have_first = true;
      // Sanity: the run did real work and lost no task.
      EXPECT_EQ(r.tasks_completed, tasks.size());
      EXPECT_GT(r.events_processed, 0u);
    } else {
      expect_identical(first, r);
    }
  }
}

TEST(ShardDeterminism, RepeatedRunsAreIdentical) {
  const Scenario s(26, 37);  // partial last rack
  const auto tasks = s.make_tasks(50, 4, 57);
  const HybridSupply supply = s.make_supply(59);
  const SimConfig cfg = s.base_config(3);
  const SimResult a = s.run_sharded(Scheme::kScanEffi, tasks, supply, cfg);
  const SimResult b = s.run_sharded(Scheme::kScanEffi, tasks, supply, cfg);
  expect_identical(a, b);
}

TEST(ShardDeterminism, MultiShardConservesTasksAndEnergyAccounting) {
  const Scenario s(24, 41);
  const auto tasks = s.make_tasks(60, 4, 61);
  const HybridSupply supply = s.make_supply(63);
  for (const std::size_t shards : {2u, 4u, 6u}) {
    SCOPED_TRACE(shards);
    const SimResult r =
        s.run_sharded(Scheme::kScanFair, tasks, supply, s.base_config(shards));
    EXPECT_EQ(r.tasks_completed, tasks.size());
    EXPECT_EQ(r.deadline_misses + r.faults.tasks_failed,
              r.deadline_misses);  // no faults configured
    EXPECT_GT(r.energy.total().joules(), 0.0);
    EXPECT_EQ(r.busy_time_s.size(), s.cluster.size());
    // Cost re-priced from the aggregate split must match the reported cost.
    EXPECT_EQ(r.cost.raw(), EnergyPrices{}.cost(r.energy).raw());
  }
}

// ----------------------------------------------- wind reconciliation

TEST(Reconcile, SingleShardFractionIsExactlyOne) {
  const WindAllocation a =
      reconcile_wind(Watts{1234.5}, {Watts{900.0}}, {1.0});
  EXPECT_EQ(a.fraction[0], 1.0);
  EXPECT_EQ(a.grant[0].watts(), 1234.5);
  EXPECT_EQ(a.total_granted.watts(), 1234.5);
  // Even a becalmed barrier pins the lone shard's view to the whole farm.
  const WindAllocation calm =
      reconcile_wind(Watts{}, {Watts{900.0}}, {1.0});
  EXPECT_EQ(calm.fraction[0], 1.0);
}

TEST(Reconcile, ZeroWindSplitsByCapacity) {
  const WindAllocation a = reconcile_wind(
      Watts{}, {Watts{10.0}, Watts{20.0}, Watts{30.0}}, {0.5, 0.25, 0.25});
  EXPECT_EQ(a.total_granted.watts(), 0.0);
  EXPECT_EQ(a.fraction[0], 0.5);
  EXPECT_EQ(a.fraction[1], 0.25);
  EXPECT_EQ(a.fraction[2], 0.25);
}

TEST(Reconcile, ConservationAtZeroUlp) {
  // total_granted_w must BE the fixed-shard-order sum of the grants (not
  // merely close to it), and never exceed the budget.
  Rng rng(97);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 16));
    std::vector<Watts> demand(n);
    std::vector<double> share(n);
    double share_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      demand[i] = Watts{rng.uniform(0.0, 5000.0)};
      share[i] = rng.uniform(0.1, 10.0);
      share_sum += share[i];
    }
    for (std::size_t i = 0; i < n; ++i) share[i] /= share_sum;
    const Watts available{rng.uniform(0.0, 8000.0)};

    const WindAllocation a = reconcile_wind(available, demand, share);
    double fixed_order_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_GE(a.grant[i].watts(), 0.0);
      EXPECT_GE(a.fraction[i], 0.0);
      EXPECT_LE(a.fraction[i], 1.0);
      fixed_order_sum += a.grant[i].watts();
    }
    EXPECT_EQ(fixed_order_sum, a.total_granted.watts()) << "trial " << trial;
    EXPECT_LE(a.total_granted.watts(), available.watts())
        << "trial " << trial;
  }
}

TEST(Reconcile, UnmetDemandDrawsTheLeftoverInShardOrder) {
  // Shard 0 wants little, shard 1 wants much more than its fair slice:
  // the leftover commits to shard 1 before any capacity spread.
  const WindAllocation a = reconcile_wind(
      Watts{1000.0}, {Watts{100.0}, Watts{2000.0}}, {0.5, 0.5});
  EXPECT_EQ(a.grant[0].watts(), 100.0);
  EXPECT_EQ(a.grant[1].watts(), 900.0);
  EXPECT_EQ(a.total_granted.watts(), 1000.0);
}

TEST(Reconcile, SurplusSpreadsByCapacityShare) {
  // Facility demand below the wind: the surplus comes back by capacity so
  // shard batteries/curtailment meters see it.
  const WindAllocation a = reconcile_wind(
      Watts{1000.0}, {Watts{100.0}, Watts{100.0}}, {0.75, 0.25});
  EXPECT_GT(a.grant[0].watts(), a.grant[1].watts());
  EXPECT_EQ(a.grant[0].watts() + a.grant[1].watts(),
            a.total_granted.watts());
  EXPECT_LE(a.total_granted.watts(), 1000.0);
}

TEST(Reconcile, RejectsMalformedInputs) {
  EXPECT_THROW(reconcile_wind(Watts{1.0}, {}, {}), InvalidArgument);
  EXPECT_THROW(reconcile_wind(Watts{1.0}, {Watts{1.0}, Watts{2.0}}, {1.0}),
               InvalidArgument);
  EXPECT_THROW(reconcile_wind(Watts{-1.0}, {Watts{1.0}}, {1.0}),
               InvalidArgument);
}

// ----------------------------------------------------- task partition

TEST(Partition, EveryTaskLandsExactlyOnceAndFits) {
  const Topology topo([] {
    TopologyConfig cfg;
    cfg.cpus_per_rack = 4;
    cfg.shards = 4;
    return cfg;
  }(), 48);
  Rng rng(7);
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < 100; ++i) {
    Task t;
    t.id = static_cast<std::int64_t>(i);
    t.submit_s = rng.uniform(0.0, 10000.0);
    t.cpus = static_cast<std::size_t>(rng.uniform_int(1, 12));
    t.runtime_s = rng.uniform(10.0, 1000.0);
    t.deadline_s = t.submit_s + 100000.0;
    tasks.push_back(t);
  }
  const auto parts = partition_tasks(tasks, topo);
  ASSERT_EQ(parts.size(), 4u);
  std::vector<int> seen(100, 0);
  for (std::size_t s = 0; s < parts.size(); ++s) {
    for (const Task& t : parts[s]) {
      ++seen[static_cast<std::size_t>(t.id)];
      EXPECT_LE(t.cpus, topo.slice(s).proc_count)
          << "task " << t.id << " cannot fit shard " << s;
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_EQ(seen[i], 1) << "task " << i;
}

TEST(Partition, SingleShardIsIdentity) {
  const Topology topo(TopologyConfig{}, 480);
  std::vector<Task> tasks(5);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].id = static_cast<std::int64_t>(i);
    tasks[i].submit_s = static_cast<double>(5 - i);  // deliberately unsorted
    tasks[i].cpus = 1;
    tasks[i].runtime_s = 1.0;
    tasks[i].deadline_s = 1e9;
  }
  const auto parts = partition_tasks(tasks, topo);
  ASSERT_EQ(parts.size(), 1u);
  ASSERT_EQ(parts[0].size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i)
    EXPECT_EQ(parts[0][i].id, tasks[i].id);  // order untouched
}

TEST(Partition, ThrowsWhenATaskFitsNoShard) {
  const Topology topo([] {
    TopologyConfig cfg;
    cfg.cpus_per_rack = 4;
    cfg.shards = 4;
    return cfg;
  }(), 32);  // 8 CPUs per shard
  std::vector<Task> tasks(1);
  tasks[0].cpus = 9;
  tasks[0].runtime_s = 1.0;
  tasks[0].deadline_s = 1.0;
  EXPECT_THROW(partition_tasks(tasks, topo), InvalidArgument);
}

TEST(Partition, WindowsSplitToLocalIds) {
  const Topology topo([] {
    TopologyConfig cfg;
    cfg.cpus_per_rack = 4;
    cfg.shards = 2;
    return cfg;
  }(), 16);  // shard 0: procs 0-7, shard 1: procs 8-15
  ProfilingWindow w;
  w.start_s = 10.0;
  w.duration_s = 60.0;
  w.proc_ids = {2, 7, 8, 15};
  const auto parts = partition_windows({w}, topo);
  ASSERT_EQ(parts.size(), 2u);
  ASSERT_EQ(parts[0].size(), 1u);
  ASSERT_EQ(parts[1].size(), 1u);
  EXPECT_EQ(parts[0][0].proc_ids, (std::vector<std::size_t>{2, 7}));
  EXPECT_EQ(parts[1][0].proc_ids, (std::vector<std::size_t>{0, 7}));
  EXPECT_EQ(parts[1][0].start_s, 10.0);
  // A window touching only shard 0 is dropped for shard 1.
  w.proc_ids = {0, 1};
  const auto only0 = partition_windows({w}, topo);
  EXPECT_EQ(only0[0].size(), 1u);
  EXPECT_TRUE(only0[1].empty());
}

}  // namespace
}  // namespace iscope
