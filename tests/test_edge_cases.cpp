// Cross-cutting edge cases and failure injection that the per-module
// suites do not reach.
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "core/iscope.hpp"
#include "energy/solar_model.hpp"
#include "energy/wind_model.hpp"
#include "profiling/scanner.hpp"
#include "sim/simulator.hpp"

namespace iscope {
namespace {

struct Fixture {
  Cluster cluster;
  ProfileDb db;
  Knowledge knowledge;

  Fixture()
      : cluster(build_cluster([] {
          ClusterConfig cfg;
          cfg.num_processors = 8;
          cfg.seed = 99;
          return cfg;
        }())),
        db(cluster.size()),
        knowledge(&cluster, KnowledgeSource::kBin) {
    const Scanner scanner(&cluster, ScanConfig{});
    Rng rng(1);
    std::vector<std::size_t> all(cluster.size());
    std::iota(all.begin(), all.end(), 0);
    scanner.scan_domain(all, 0.0, rng, db);
  }
};

Task task_at(double submit, std::size_t cpus, double runtime,
             double mult = 12.0) {
  static std::int64_t next_id = 1;
  Task t;
  t.id = next_id++;
  t.submit_s = submit;
  t.cpus = cpus;
  t.runtime_s = runtime;
  t.gamma = 1.0;
  t.deadline_s = submit + mult * runtime;
  return t;
}

TEST(EdgeCases, SupplyTraceNoWrapThroughHybrid) {
  const SupplyTrace t(Seconds{600.0}, {100.0, 200.0});
  const HybridSupply wrap(t, 1.0, /*wrap=*/true);
  const HybridSupply hold(t, 1.0, /*wrap=*/false);
  EXPECT_DOUBLE_EQ(wrap.wind_available(Seconds{1200.0}).watts(), 100.0);  // wraps
  EXPECT_DOUBLE_EQ(hold.wind_available(Seconds{1200.0}).watts(), 200.0);  // holds last
}

TEST(EdgeCases, BatteryWindAndProfilingTogether) {
  // All three simulator extensions active in one run: battery-buffered
  // fluctuating wind, in-band profiling window, normal workload.
  Fixture f;
  std::vector<double> pattern;
  for (int i = 0; i < 100; ++i) pattern.push_back(i % 2 ? 0.0 : 2500.0);
  const HybridSupply supply(SupplyTrace(Seconds{600.0}, pattern));
  SimConfig cfg;
  cfg.battery = BatteryConfig::make(20.0, 10.0);
  cfg.record_timeline = true;
  DatacenterSim sim(&f.knowledge, PlacementRule::kFair, &supply, cfg);

  ProfilingWindow w;
  w.start_s = 100.0;
  w.duration_s = 500.0;
  w.proc_ids = {6, 7};
  const SimResult r = sim.run({task_at(1000.0, 2, 800.0),
                               task_at(1500.0, 4, 600.0)},
                              {w});
  EXPECT_EQ(r.tasks_completed, 2u);
  EXPECT_EQ(r.profiling_procs_scanned, 2u);
  EXPECT_GT(r.battery_delivered.kwh(), 0.0);
  EXPECT_FALSE(r.timeline.empty());
}

TEST(EdgeCases, SingleCpuClusterWorks) {
  ClusterConfig cfg;
  cfg.num_processors = 1;
  cfg.num_bins = 1;
  const Cluster cluster = build_cluster(cfg);
  const Knowledge knowledge(&cluster, KnowledgeSource::kBin);
  const HybridSupply supply;
  DatacenterSim sim(&knowledge, PlacementRule::kEfficiency, &supply,
                    SimConfig{});
  const SimResult r = sim.run({task_at(0.0, 1, 100.0),
                               task_at(0.0, 1, 100.0)});
  EXPECT_EQ(r.tasks_completed, 2u);
  EXPECT_GT(r.mean_wait.seconds(), 0.0);  // the second had to queue
}

TEST(EdgeCases, ZeroDurationWindBetweenTasks) {
  // Tasks separated by more than the trace: wrap keeps the supply defined
  // arbitrarily far out.
  Fixture f;
  const HybridSupply supply(SupplyTrace(Seconds{600.0}, {500.0}), 1.0, true);
  DatacenterSim sim(&f.knowledge, PlacementRule::kRandom, &supply,
                    SimConfig{});
  const SimResult r = sim.run({task_at(0.0, 1, 50.0),
                               task_at(1e6, 1, 50.0)});
  EXPECT_EQ(r.tasks_completed, 2u);
}

TEST(EdgeCases, ScannerAllRepeatsMajority) {
  // Even repeats: ties are a fail (2*passes > repeats is strict).
  const Fixture f;
  ScanConfig cfg;
  cfg.repeats = 2;
  cfg.noise_sigma = 0.0;
  EXPECT_NO_THROW(Scanner(&f.cluster, cfg));
  Rng rng(3);
  const ChipProfile p = Scanner(&f.cluster, cfg).scan_chip(0, 0.0, rng);
  // Still discovers something sane.
  for (std::size_t l = 0; l < p.chip_vdd.levels(); ++l)
    EXPECT_GE(p.chip_vdd.vdd(l), f.cluster.true_vdd(0, l).volts() * 0.99);
}

TEST(EdgeCases, CombineManyDaysOfHybridSupply) {
  SolarFarmConfig solar;
  WindFarmConfig wind;
  const SupplyTrace s = generate_solar_days(solar, 30.0);
  const SupplyTrace w = generate_wind_days(wind, 30.0);
  const SupplyTrace h = combine_supplies(s, w);
  EXPECT_EQ(h.samples(), std::min(s.samples(), w.samples()));
  for (std::size_t i = 0; i < h.samples(); i += 37)
    EXPECT_DOUBLE_EQ(h.sample(i).watts(), s.sample(i).watts() + w.sample(i).watts());
}

TEST(EdgeCases, IScopePlanRespectsDomainSize) {
  IScope::Options opt;
  opt.cluster.num_processors = 12;
  opt.opportunistic.domain_size = 5;
  IScope fleet(opt);
  const std::vector<double> idle(14 * 1440, 0.0);
  const ProfilingPlan plan = fleet.plan_scans(idle, HybridSupply{}, 0.0);
  for (const auto& w : plan.windows) EXPECT_LE(w.proc_ids.size(), 5u);
}

TEST(EdgeCases, TaskExactlyAtClusterWidth) {
  Fixture f;
  const HybridSupply supply;
  DatacenterSim sim(&f.knowledge, PlacementRule::kFair, &supply, SimConfig{});
  const SimResult r = sim.run({task_at(0.0, 8, 200.0)});
  EXPECT_EQ(r.tasks_completed, 1u);
  EXPECT_DOUBLE_EQ(r.procs_used_fraction, 1.0);
}

}  // namespace
}  // namespace iscope
