// The dimensional-analysis layer (common/quantity.hpp).
//
// Three families of guarantees:
//  * constexpr arithmetic produces the right numbers in the right units;
//  * dimensions compose correctly (W x s -> J, USD/J x J -> USD, ...);
//  * ill-dimensioned expressions do not compile, proven by a detection-
//    idiom harness (`can_add<Watts, Joules>` is false at compile time, so
//    the guarantee is enforced by this TU compiling at all).
#include "common/quantity.hpp"

#include <gtest/gtest.h>

#include <type_traits>
#include <utility>

namespace iscope {
namespace {

// --- compile-fail harness -----------------------------------------------
//
// `can_X<A, B>` is true exactly when the expression template instantiates.
// A static_assert on the negation is a compile-fail test that runs inside
// a normal build: if someone ever makes W + J compile, this file stops
// compiling and names the broken guarantee.

template <class A, class B, class = void>
struct can_add : std::false_type {};
template <class A, class B>
struct can_add<A, B,
               std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type {};

template <class A, class B, class = void>
struct can_compare : std::false_type {};
template <class A, class B>
struct can_compare<
    A, B, std::void_t<decltype(std::declval<A>() < std::declval<B>())>>
    : std::true_type {};

template <class Q, class = void>
struct has_joules : std::false_type {};
template <class Q>
struct has_joules<Q, std::void_t<decltype(std::declval<Q>().joules())>>
    : std::true_type {};

template <class Q, class = void>
struct has_watts : std::false_type {};
template <class Q>
struct has_watts<Q, std::void_t<decltype(std::declval<Q>().watts())>>
    : std::true_type {};

template <class A, class B, class = void>
struct can_assign : std::false_type {};
template <class A, class B>
struct can_assign<
    A, B, std::void_t<decltype(std::declval<A&>() = std::declval<B>())>>
    : std::true_type {};

// Same dimension: everything works.
static_assert(can_add<Watts, Watts>::value);
static_assert(can_compare<Seconds, Seconds>::value);
static_assert(has_joules<Joules>::value);

// Mismatched dimensions: none of it compiles.
static_assert(!can_add<Watts, Joules>::value, "W + J must not compile");
static_assert(!can_add<Seconds, Gigahertz>::value,
              "s + GHz must not compile (frequency is its own axis)");
static_assert(!can_add<Usd, Joules>::value, "USD + J must not compile");
static_assert(!can_compare<Watts, Joules>::value, "W < J must not compile");
static_assert(!can_assign<Watts, Joules>::value, "W = J must not compile");
static_assert(!can_assign<Watts, double>::value,
              "implicit double -> Watts must not compile");
static_assert(!can_add<Volts, Celsius>::value, "V + degC must not compile");

// Unit accessors exist only on the matching dimension.
static_assert(!has_joules<Watts>::value, "Watts has no .joules()");
static_assert(!has_watts<Joules>::value, "Joules has no .watts()");
static_assert(has_watts<Watts>::value);

// --- zero-overhead layout ------------------------------------------------
static_assert(sizeof(Watts) == sizeof(double));
static_assert(sizeof(UsdPerJoule) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Joules>);
static_assert(std::is_trivially_copyable_v<WattsPerCubicGigahertz>);

// --- constexpr arithmetic ------------------------------------------------
static_assert((Watts{100.0} + Watts{25.0}).watts() == 125.0);
static_assert((Watts{100.0} - Watts{25.0}).watts() == 75.0);
static_assert((-Watts{5.0}).watts() == -5.0);
static_assert((Watts{50.0} * 2.0).watts() == 100.0);
static_assert((2.0 * Watts{50.0}).watts() == 100.0);
static_assert((Watts{50.0} / 2.0).watts() == 25.0);
static_assert(Watts{2.0} < Watts{3.0});
static_assert(units::abs(Watts{-7.0}).watts() == 7.0);

// --- dimension composition ----------------------------------------------
static_assert(std::is_same_v<decltype(Watts{2.0} * Seconds{3.0}), Joules>);
static_assert(std::is_same_v<decltype(Seconds{3.0} * Watts{2.0}), Joules>);
static_assert(std::is_same_v<decltype(Joules{6.0} / Seconds{2.0}), Watts>);
static_assert(std::is_same_v<decltype(Joules{6.0} / Watts{2.0}), Seconds>);
static_assert(std::is_same_v<decltype(Usd{1.0} / Joules{1.0}), UsdPerJoule>);
static_assert(std::is_same_v<decltype(UsdPerJoule{1.0} * Joules{1.0}), Usd>);
static_assert(
    std::is_same_v<decltype(Watts{1.0} / Gigahertz{1.0}), WattsPerGigahertz>);
// Eq-1's alpha term: W/GHz^3 climbs back to W through three multiplies.
static_assert(
    std::is_same_v<decltype(WattsPerCubicGigahertz{1.0} * Gigahertz{1.0} *
                            Gigahertz{1.0} * Gigahertz{1.0}),
                   Watts>);
// Same-dimension ratios (and any cancelling product) collapse to double.
static_assert(std::is_same_v<decltype(Joules{1.0} / Joules{1.0}), double>);
static_assert(std::is_same_v<decltype(Usd{1.0} / Usd{1.0}), double>);
static_assert(
    std::is_same_v<decltype(Gigahertz{1.0} * (1.0 / Gigahertz{1.0})), double>);

static_assert((Watts{2.0} * Seconds{3.0}).joules() == 6.0);
static_assert(Joules{6.0} / Joules{2.0} == 3.0);

// --- runtime checks (values, conversions, the paper's arithmetic) -------

TEST(Quantity, FactoriesStoreCanonicalUnits) {
  EXPECT_DOUBLE_EQ(units::minutes(10.0).seconds(), 600.0);
  EXPECT_DOUBLE_EQ(units::hours(2.0).seconds(), 7200.0);
  EXPECT_DOUBLE_EQ(units::days(1.0).seconds(), 86400.0);
  EXPECT_DOUBLE_EQ(units::kwh(1.0).joules(), 3.6e6);
  EXPECT_DOUBLE_EQ(units::kilowatts(2.5).watts(), 2500.0);
  EXPECT_DOUBLE_EQ(units::megawatts(1.5).watts(), 1.5e6);
  EXPECT_DOUBLE_EQ(units::millivolts(900.0).volts(), 0.9);
  EXPECT_DOUBLE_EQ(units::megahertz(750.0).gigahertz(), 0.75);
  EXPECT_DOUBLE_EQ(units::celsius(65.0).celsius(), 65.0);
  EXPECT_DOUBLE_EQ(units::usd(3.5).dollars(), 3.5);
}

TEST(Quantity, AccessorsInvertFactories) {
  EXPECT_DOUBLE_EQ(units::minutes(17.5).minutes(), 17.5);
  EXPECT_DOUBLE_EQ(units::hours(3.25).hours(), 3.25);
  EXPECT_DOUBLE_EQ(units::days(2.5).days(), 2.5);
  EXPECT_DOUBLE_EQ(units::kwh(4600.0).kwh(), 4600.0);
  EXPECT_DOUBLE_EQ(units::kilowatts(0.5).kilowatts(), 0.5);
  EXPECT_DOUBLE_EQ(units::megawatts(1.5).megawatts(), 1.5);
  EXPECT_DOUBLE_EQ(units::millivolts(1250.0).millivolts(), 1250.0);
  EXPECT_DOUBLE_EQ(units::megahertz(1400.0).megahertz(), 1400.0);
  EXPECT_DOUBLE_EQ(units::usd_per_kwh(0.13).usd_per_kwh(), 0.13);
}

TEST(Quantity, EnergyCostComposition) {
  // 2 kW for 3 hours at 0.13 USD/kWh = 0.78 USD, built purely from typed
  // arithmetic: W x s -> J, USD/J x J -> USD.
  const Joules energy = units::kilowatts(2.0) * units::hours(3.0);
  EXPECT_DOUBLE_EQ(energy.kwh(), 6.0);
  const Usd cost = units::usd_per_kwh(0.13) * energy;
  EXPECT_NEAR(cost.dollars(), 0.78, 1e-12);
}

TEST(Quantity, PaperOverheadArithmetic) {
  // Sec. VI-E: 4800 CPUs x 115 W x 500 min = 4600 kWh.
  const Joules campaign =
      Watts{115.0} * units::minutes(500.0) * 4800.0;
  EXPECT_NEAR(campaign.kwh(), 4600.0, 1.0);
}

TEST(Quantity, Eq1PowerShape) {
  // alpha * f^3 with alpha in W/GHz^3 lands back in watts.
  const WattsPerCubicGigahertz alpha{7.5};
  const Gigahertz f{2.0};
  const Watts dynamic = alpha * f * f * f;
  EXPECT_DOUBLE_EQ(dynamic.watts(), 7.5 * 8.0);
}

TEST(Quantity, DimensionlessRatios) {
  const double slowdown = units::hours(2.0) / units::hours(0.5);
  EXPECT_DOUBLE_EQ(slowdown, 4.0);
  const double saving = 1.0 - Usd{69.3} / Usd{100.0};
  EXPECT_NEAR(saving, 0.307, 1e-12);
}

TEST(Quantity, DefaultIsZero) {
  EXPECT_DOUBLE_EQ(Watts{}.watts(), 0.0);
  EXPECT_DOUBLE_EQ(Joules{}.joules(), 0.0);
  Joules acc;
  acc += Watts{10.0} * Seconds{5.0};
  acc -= Joules{20.0};
  EXPECT_DOUBLE_EQ(acc.joules(), 30.0);
}

TEST(Quantity, ScalarDivision) {
  Watts w{100.0};
  w /= 4.0;
  EXPECT_DOUBLE_EQ(w.watts(), 25.0);
  w *= 2.0;
  EXPECT_DOUBLE_EQ(w.watts(), 50.0);
  EXPECT_DOUBLE_EQ((1.0 / Seconds{0.5}).raw(), 2.0);
}

}  // namespace
}  // namespace iscope
