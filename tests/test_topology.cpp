// Rack/row topology and shard-partition invariants (hardware/topology.hpp).
//
// The partition is the foundation of the sharded simulator's determinism
// claim (DESIGN.md Sec. 12): shard slices must cover every processor
// exactly once, be rack-aligned, contiguous, and a pure function of
// (config, processor count).
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "hardware/topology.hpp"

namespace iscope {
namespace {

TopologyConfig make_config(std::size_t cpus_per_rack, std::size_t shards) {
  TopologyConfig cfg;
  cfg.cpus_per_rack = cpus_per_rack;
  cfg.shards = shards;
  return cfg;
}

/// Every processor is owned by exactly one slice, slices are contiguous
/// and in ascending order, and shard_of_proc agrees with the slices.
void expect_exact_cover(const Topology& topo) {
  std::size_t next = 0;
  for (std::size_t s = 0; s < topo.shards(); ++s) {
    const ShardSlice& slice = topo.slice(s);
    EXPECT_EQ(slice.proc_lo, next) << "gap or overlap before shard " << s;
    EXPECT_GT(slice.proc_count, 0u) << "empty shard " << s;
    EXPECT_GT(slice.rack_count, 0u) << "rack-less shard " << s;
    next = slice.proc_lo + slice.proc_count;
  }
  EXPECT_EQ(next, topo.procs()) << "slices do not cover the facility";
  for (std::size_t p = 0; p < topo.procs(); ++p) {
    const std::size_t s = topo.shard_of_proc(p);
    const ShardSlice& slice = topo.slice(s);
    EXPECT_GE(p, slice.proc_lo);
    EXPECT_LT(p, slice.proc_lo + slice.proc_count);
  }
}

TEST(Topology, SingleShardOwnsEverything) {
  const Topology topo(make_config(48, 1), 480);
  EXPECT_EQ(topo.shards(), 1u);
  EXPECT_EQ(topo.racks(), 10u);
  EXPECT_EQ(topo.slice(0).proc_lo, 0u);
  EXPECT_EQ(topo.slice(0).proc_count, 480u);
  expect_exact_cover(topo);
}

TEST(Topology, RoundTripCoversEveryProcessorExactlyOnce) {
  // Sweep shard counts and awkward facility sizes (partial last rack,
  // racks not divisible by shards).
  for (const std::size_t procs : {48u, 96u, 100u, 480u, 481u, 1000u}) {
    for (const std::size_t shards : {1u, 2u, 3u, 4u, 7u}) {
      const std::size_t racks = (procs + 47) / 48;
      if (shards > racks) continue;
      SCOPED_TRACE(procs);
      SCOPED_TRACE(shards);
      const Topology topo(make_config(48, shards), procs);
      EXPECT_EQ(topo.shards(), shards);
      expect_exact_cover(topo);
    }
  }
}

TEST(Topology, ShardsAreRackAligned) {
  const Topology topo(make_config(10, 3), 100);  // 10 racks over 3 shards
  std::size_t next_rack = 0;
  for (std::size_t s = 0; s < topo.shards(); ++s) {
    const ShardSlice& slice = topo.slice(s);
    EXPECT_EQ(slice.rack_lo, next_rack);
    EXPECT_EQ(slice.proc_lo, slice.rack_lo * 10);
    next_rack += slice.rack_count;
  }
  EXPECT_EQ(next_rack, topo.racks());
  // Sizes differ by at most one rack (balanced contiguous split).
  std::size_t lo = topo.slice(0).rack_count, hi = lo;
  for (std::size_t s = 1; s < topo.shards(); ++s) {
    lo = std::min(lo, topo.slice(s).rack_count);
    hi = std::max(hi, topo.slice(s).rack_count);
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(Topology, PartialLastRack) {
  // 100 CPUs at 48/rack: 3 racks, the last holding only 4 CPUs.
  const Topology topo(make_config(48, 3), 100);
  EXPECT_EQ(topo.racks(), 3u);
  expect_exact_cover(topo);
  EXPECT_EQ(topo.slice(2).proc_count, 4u);
}

TEST(Topology, RowsDeriveFromRacks) {
  TopologyConfig cfg = make_config(48, 1);
  cfg.racks_per_row = 10;
  EXPECT_EQ(Topology(cfg, 480).rows(), 1u);
  EXPECT_EQ(Topology(cfg, 481).rows(), 2u);
  EXPECT_EQ(Topology(cfg, 4800).rows(), 10u);
}

TEST(Topology, DeterministicPartition) {
  // Same (config, procs) => same slices, field for field.
  const Topology a(make_config(16, 5), 1000);
  const Topology b(make_config(16, 5), 1000);
  ASSERT_EQ(a.shards(), b.shards());
  for (std::size_t s = 0; s < a.shards(); ++s) {
    EXPECT_EQ(a.slice(s).rack_lo, b.slice(s).rack_lo);
    EXPECT_EQ(a.slice(s).rack_count, b.slice(s).rack_count);
    EXPECT_EQ(a.slice(s).proc_lo, b.slice(s).proc_lo);
    EXPECT_EQ(a.slice(s).proc_count, b.slice(s).proc_count);
  }
}

TEST(Topology, RejectsBadConfigs) {
  EXPECT_THROW(make_config(0, 1).validate(), InvalidArgument);
  EXPECT_THROW(make_config(48, 0).validate(), InvalidArgument);
  TopologyConfig no_rows = make_config(48, 1);
  no_rows.racks_per_row = 0;
  EXPECT_THROW(no_rows.validate(), InvalidArgument);
  // More shards than racks: a shard must own at least one whole rack.
  EXPECT_THROW(Topology(make_config(48, 3), 96), InvalidArgument);
  // Zero-processor facility.
  EXPECT_THROW(Topology(make_config(48, 1), 0), InvalidArgument);
}

}  // namespace
}  // namespace iscope
