#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace iscope {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTable, TitleShown) {
  TextTable t;
  t.set_title("My Title");
  t.add_row({"x"});
  EXPECT_NE(t.render().find("== My Title =="), std::string::npos);
}

TEST(TextTable, ColumnsAligned) {
  TextTable t;
  t.set_header({"a", "b"});
  t.add_row({"longvalue", "1"});
  t.add_row({"x", "2"});
  std::istringstream in(t.render());
  std::string header, sep, r1, r2;
  std::getline(in, header);
  std::getline(in, sep);
  std::getline(in, r1);
  std::getline(in, r2);
  // "1" and "2" columns start at the same offset.
  EXPECT_EQ(r1.find('1'), r2.find('2'));
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), InvalidArgument);
}

TEST(TextTable, NoHeaderAllowed) {
  TextTable t;
  t.add_row({"a", "b"});
  t.add_row({"c"});  // ragged rows fine without a header
  EXPECT_NE(t.render().find('c'), std::string::npos);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::num(-1.5, 1), "-1.5");
}

TEST(TextTable, PctFormatting) {
  EXPECT_EQ(TextTable::pct(0.1234), "12.3%");
  EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

TEST(TextTable, PrintMatchesRender) {
  TextTable t;
  t.add_row({"z"});
  std::ostringstream out;
  t.print(out);
  EXPECT_EQ(out.str(), t.render());
}

}  // namespace
}  // namespace iscope
