// Checkpoint/restore contracts (DESIGN.md Sec. 15, service/checkpoint.hpp).
//
//  * Resume determinism: run-to-completion == run / checkpoint / restore /
//    run, compared bitwise on the full SimResult -- across all five
//    schemes, +- battery, +- profiling windows, +- fault injection, and
//    through the sharded coordinator.
//  * Randomized cut points: 50 seeds checkpoint at an arbitrary epoch of an
//    arbitrary scheme's run and must still resume bit-identically.
//  * Rejection: bad magic, version skew, kind mismatch, identity mismatch
//    and truncation at every prefix length raise CheckpointError -- never a
//    crash, never a silently wrong simulator.
//  * Streamed admission: prepare({}) + admit() in submit order == one batch
//    prepare(tasks) (the daemon's equivalence contract).
#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "energy/hybrid_supply.hpp"
#include "profiling/scanner.hpp"
#include "service/checkpoint.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"

namespace iscope {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void expect_identical(const SimResult& a, const SimResult& b) {
  // Exact equality everywhere: both runs must execute the same arithmetic
  // in the same order, so EXPECT_EQ on doubles is bitwise-meaningful.
  EXPECT_EQ(a.energy.wind.joules(), b.energy.wind.joules());
  EXPECT_EQ(a.energy.utility.joules(), b.energy.utility.joules());
  EXPECT_EQ(a.cost.dollars(), b.cost.dollars());
  EXPECT_EQ(a.wind_curtailed.joules(), b.wind_curtailed.joules());
  EXPECT_EQ(a.battery_delivered.joules(), b.battery_delivered.joules());
  EXPECT_EQ(a.battery_losses.joules(), b.battery_losses.joules());
  EXPECT_EQ(a.cooling_energy.joules(), b.cooling_energy.joules());
  EXPECT_EQ(a.idle_energy.joules(), b.idle_energy.joules());
  EXPECT_EQ(a.peak_inlet_c, b.peak_inlet_c);
  EXPECT_EQ(a.sleep_enters, b.sleep_enters);
  EXPECT_EQ(a.sleep_wakes, b.sleep_wakes);
  EXPECT_EQ(a.tasks_completed, b.tasks_completed);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.mean_wait.seconds(), b.mean_wait.seconds());
  EXPECT_EQ(a.makespan.seconds(), b.makespan.seconds());
  EXPECT_EQ(a.busy_variance_h2, b.busy_variance_h2);
  EXPECT_EQ(a.procs_used_fraction, b.procs_used_fraction);
  EXPECT_EQ(a.dvfs_rematch_count, b.dvfs_rematch_count);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.profiling_procs_scanned, b.profiling_procs_scanned);
  EXPECT_EQ(a.profiling_procs_skipped, b.profiling_procs_skipped);
  EXPECT_EQ(a.profiling_proc_seconds, b.profiling_proc_seconds);
  EXPECT_EQ(a.faults.cpu_failures, b.faults.cpu_failures);
  EXPECT_EQ(a.faults.cpu_repairs, b.faults.cpu_repairs);
  EXPECT_EQ(a.faults.misprofile_failures, b.faults.misprofile_failures);
  EXPECT_EQ(a.faults.task_requeues, b.faults.task_requeues);
  EXPECT_EQ(a.faults.tasks_failed, b.faults.tasks_failed);
  EXPECT_EQ(a.faults.lost_cpu_seconds, b.faults.lost_cpu_seconds);
  EXPECT_EQ(a.faults.fault_deadline_misses, b.faults.fault_deadline_misses);

  ASSERT_EQ(a.busy_time_s.size(), b.busy_time_s.size());
  for (std::size_t i = 0; i < a.busy_time_s.size(); ++i)
    EXPECT_EQ(a.busy_time_s[i], b.busy_time_s[i]) << "proc " << i;

  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].time.seconds(), b.trace[i].time.seconds());
    EXPECT_EQ(a.trace[i].demand.watts(), b.trace[i].demand.watts());
    EXPECT_EQ(a.trace[i].wind.watts(), b.trace[i].wind.watts());
    EXPECT_EQ(a.trace[i].utility.watts(), b.trace[i].utility.watts());
    EXPECT_EQ(a.trace[i].wind_avail.watts(), b.trace[i].wind_avail.watts());
    EXPECT_EQ(a.trace[i].battery.watts(), b.trace[i].battery.watts());
  }

  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].time_s, b.timeline[i].time_s) << "event " << i;
    EXPECT_EQ(a.timeline[i].kind, b.timeline[i].kind) << "event " << i;
    EXPECT_EQ(a.timeline[i].task_id, b.timeline[i].task_id) << "event " << i;
    EXPECT_EQ(a.timeline[i].value, b.timeline[i].value) << "event " << i;
  }
}

/// Small fully-scanned facility (mirrors tests/test_shard.cpp).
struct Scenario {
  Cluster cluster;
  ProfileDb db;

  explicit Scenario(std::size_t n, std::uint64_t seed)
      : cluster(build_cluster([&] {
          ClusterConfig cfg;
          cfg.num_processors = n;
          cfg.seed = seed;
          return cfg;
        }())),
        db(n) {
    const Scanner scanner(&cluster, ScanConfig{});
    Rng rng(seed + 7);
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    scanner.scan_domain(all, 0.0, rng, db);
  }

  std::vector<Task> make_tasks(std::size_t count, std::size_t max_cpus,
                               std::uint64_t seed) const {
    Rng rng(seed);
    std::vector<Task> tasks;
    tasks.reserve(count);
    double submit = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      submit += rng.uniform(0.0, 400.0);
      Task t;
      t.id = static_cast<std::int64_t>(i + 1);
      t.submit_s = submit;
      t.cpus = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(max_cpus)));
      t.runtime_s = rng.uniform(100.0, 2000.0);
      t.gamma = rng.uniform(0.3, 1.0);
      t.deadline_s = t.submit_s + t.runtime_s * rng.uniform(1.5, 10.0);
      tasks.push_back(t);
    }
    return tasks;
  }

  HybridSupply make_supply(std::uint64_t seed) const {
    Rng rng(seed);
    std::vector<double> watts;
    Watts peak;
    const std::size_t top = cluster.levels().freq_ghz.size() - 1;
    for (std::size_t p = 0; p < cluster.size(); ++p)
      peak += cluster.power(p, top, Volts{cluster.levels().vdd_nom[top]});
    for (std::size_t i = 0; i < 200; ++i)
      watts.push_back(rng.uniform(0.0, 0.9 * peak.watts()));
    return HybridSupply(SupplyTrace(Seconds{600.0}, std::move(watts)));
  }

  SimResult run_batch(Scheme scheme, const std::vector<Task>& tasks,
                      const HybridSupply& supply, const SimConfig& cfg,
                      const std::vector<ProfilingWindow>& profiling = {})
      const {
    Knowledge knowledge(&cluster, scheme_knowledge(scheme),
                        scheme_uses_scan(scheme) ? &db : nullptr);
    DatacenterSim sim(&knowledge, scheme_rule(scheme), &supply, cfg);
    return sim.run(tasks, profiling);
  }

  /// The tentpole invariant: step to `ck_time`, checkpoint, restore into a
  /// freshly constructed simulator, run both to completion -- bitwise
  /// equal SimResults. Saving is non-destructive, so the checkpointed
  /// simulator itself continues as the uninterrupted baseline. When the
  /// cut lands inside the run (ck <= makespan) the baseline is further
  /// required to equal a plain batch run(); past the end the clock parks
  /// at ck and finish() accrues the extra idle interval in both runs
  /// identically -- deterministic, but not a state a batch run visits.
  void check_roundtrip(Scheme scheme, const std::vector<Task>& tasks,
                       const HybridSupply& supply, const SimConfig& cfg,
                       double ck_time,
                       const std::vector<ProfilingWindow>& profiling = {})
      const {
    Knowledge k1(&cluster, scheme_knowledge(scheme),
                 scheme_uses_scan(scheme) ? &db : nullptr);
    DatacenterSim sim1(&k1, scheme_rule(scheme), &supply, cfg);
    sim1.prepare(tasks, profiling);
    sim1.step_until(ck_time);
    const std::vector<std::uint8_t> blob = checkpoint_bytes(sim1);

    Knowledge k2(&cluster, scheme_knowledge(scheme),
                 scheme_uses_scan(scheme) ? &db : nullptr);
    DatacenterSim sim2(&k2, scheme_rule(scheme), &supply, cfg);
    sim2.prepare({}, {});
    restore_from_bytes(sim2, blob.data(), blob.size());

    sim1.advance_before(kInf);
    const SimResult uninterrupted = sim1.finish();
    sim2.advance_before(kInf);
    const SimResult resumed = sim2.finish();
    expect_identical(uninterrupted, resumed);

    if (ck_time <= uninterrupted.makespan.seconds()) {
      const SimResult batch =
          run_batch(scheme, tasks, supply, cfg, profiling);
      expect_identical(batch, resumed);
    }
  }
};

std::vector<ProfilingWindow> spread_windows(std::size_t procs) {
  std::vector<ProfilingWindow> windows;
  for (std::size_t w = 0; w < 4; ++w) {
    ProfilingWindow win;
    win.start_s = 500.0 + 2500.0 * static_cast<double>(w);
    win.duration_s = 900.0;
    win.proc_ids = {w, (w + procs / 3) % procs, (w + 2 * procs / 3) % procs};
    windows.push_back(win);
  }
  return windows;
}

SimConfig base_config() {
  SimConfig cfg;
  cfg.record_trace = true;
  cfg.record_timeline = true;
  return cfg;
}

// --- the full scheme x battery x profiling x faults matrix ----------------

TEST(Checkpoint, AllSchemesMidRun) {
  const Scenario sc(24, 11);
  const std::vector<Task> tasks = sc.make_tasks(40, 6, 21);
  const HybridSupply supply = sc.make_supply(31);
  for (const Scheme scheme : kAllSchemes)
    sc.check_roundtrip(scheme, tasks, supply, base_config(), 5000.0);
}

TEST(Checkpoint, WithBattery) {
  const Scenario sc(24, 12);
  const std::vector<Task> tasks = sc.make_tasks(40, 6, 22);
  const HybridSupply supply = sc.make_supply(32);
  SimConfig cfg = base_config();
  cfg.battery = BatteryConfig::make(2.0, 1.0);
  for (const Scheme scheme : {Scheme::kScanFair, Scheme::kBinEffi})
    sc.check_roundtrip(scheme, tasks, supply, cfg, 4000.0);
}

TEST(Checkpoint, WithProfilingWindows) {
  const Scenario sc(24, 13);
  const std::vector<Task> tasks = sc.make_tasks(40, 6, 23);
  const HybridSupply supply = sc.make_supply(33);
  const std::vector<ProfilingWindow> windows = spread_windows(24);
  // Cut inside the third window (start 5500, duration 900) so in-flight
  // scan state crosses the checkpoint.
  for (const Scheme scheme : {Scheme::kScanFair, Scheme::kScanEffi})
    sc.check_roundtrip(scheme, tasks, supply, base_config(), 5900.0, windows);
}

TEST(Checkpoint, WithFaults) {
  const Scenario sc(24, 14);
  const std::vector<Task> tasks = sc.make_tasks(40, 6, 24);
  const HybridSupply supply = sc.make_supply(34);
  SimConfig cfg = base_config();
  cfg.faults.crash_mtbf_s = 40000.0;
  cfg.faults.repair_mean_s = 900.0;
  cfg.faults.misprofile_prob = 0.05;
  cfg.fault_seed = 99;
  for (const Scheme scheme : {Scheme::kScanFair, Scheme::kScanRan})
    sc.check_roundtrip(scheme, tasks, supply, cfg, 4500.0);
}

TEST(Checkpoint, EverythingAtOnce) {
  const Scenario sc(24, 15);
  const std::vector<Task> tasks = sc.make_tasks(40, 6, 25);
  const HybridSupply supply = sc.make_supply(35);
  SimConfig cfg = base_config();
  cfg.battery = BatteryConfig::make(2.0, 1.0);
  cfg.faults.crash_mtbf_s = 50000.0;
  cfg.faults.repair_mean_s = 1200.0;
  cfg.fault_seed = 7;
  sc.check_roundtrip(Scheme::kScanFair, tasks, supply, cfg, 5200.0,
                     spread_windows(24));
}

// --- format v2: thermal + sleep state across the checkpoint ---------------

TEST(Checkpoint, ThermalAndSleepAllSchemesMidRun) {
  // Pending kThermal/kSleepEnter/kWake events, per-processor C-state
  // ladders and the CRAC operating point all cross the cut.
  const Scenario sc(24, 41);
  const std::vector<Task> tasks = sc.make_tasks(40, 6, 51);
  const HybridSupply supply = sc.make_supply(61);
  SimConfig cfg = base_config();
  cfg.topology.cpus_per_rack = 2;
  cfg.thermal.enabled = true;
  cfg.sleep.policy = SleepPolicy::kTimeout;
  cfg.sleep.timeout_s = 120.0;
  for (const Scheme scheme : kAllSchemes)
    sc.check_roundtrip(scheme, tasks, supply, cfg, 5000.0);
}

TEST(Checkpoint, ThermalSleepWithBatteryAndCracFault) {
  const Scenario sc(24, 42);
  const std::vector<Task> tasks = sc.make_tasks(40, 6, 52);
  const HybridSupply supply = sc.make_supply(62);
  SimConfig cfg = base_config();
  cfg.topology.cpus_per_rack = 2;
  cfg.thermal.enabled = true;
  cfg.sleep.policy = SleepPolicy::kImmediate;
  cfg.battery = BatteryConfig::make(2.0, 1.0);
  // Cut inside the degraded-CRAC window so the derated operating point is
  // the one that crosses the checkpoint.
  cfg.faults = parse_fault_spec(
      "mtbf=50000,repair=1200,crac=0.4,crac-start=3000,crac-duration=9000");
  cfg.fault_seed = 7;
  for (const Scheme scheme : {Scheme::kScanFair, Scheme::kBinEffi})
    sc.check_roundtrip(scheme, tasks, supply, cfg, 5200.0);
}

TEST(Checkpoint, ScanThermSchemeRoundtrip) {
  // The kTherm placement rule derives its order from the recirculation
  // matrix; load() must reinstall it before the rank tables rebuild.
  const Scheme scan_therm = ensure_extended_schemes_registered();
  const Scenario sc(24, 43);
  const std::vector<Task> tasks = sc.make_tasks(40, 6, 53);
  const HybridSupply supply = sc.make_supply(63);
  SimConfig cfg = base_config();
  cfg.topology.cpus_per_rack = 2;
  cfg.thermal.enabled = true;  // run_scheme would set this for ScanTherm
  sc.check_roundtrip(scan_therm, tasks, supply, cfg, 5000.0);
}

TEST(Checkpoint, ShardedThermalRoundtrip) {
  const Scenario sc(24, 44);
  const std::vector<Task> tasks = sc.make_tasks(40, 3, 54);
  const HybridSupply supply = sc.make_supply(64);
  SimConfig cfg = base_config();
  cfg.topology.cpus_per_rack = 2;
  cfg.topology.shards = 4;
  cfg.thermal.enabled = true;
  cfg.sleep.policy = SleepPolicy::kTimeout;
  cfg.sleep.timeout_s = 180.0;

  ShardedSim batch(sc.cluster, Scheme::kScanFair, &sc.db, supply, cfg);
  const SimResult expected = batch.run(tasks);
  EXPECT_GT(expected.cooling_energy.joules(), 0.0);

  ShardedSim sim1(sc.cluster, Scheme::kScanFair, &sc.db, supply, cfg);
  sim1.prepare(tasks, {});
  for (int round = 0; round < 8 && !sim1.drained(); ++round)
    sim1.advance_round();
  const std::vector<std::uint8_t> blob = checkpoint_bytes(sim1);

  ShardedSim sim2(sc.cluster, Scheme::kScanFair, &sc.db, supply, cfg);
  sim2.prepare({}, {});
  restore_from_bytes(sim2, blob.data(), blob.size());
  while (!sim2.drained()) sim2.advance_round();
  expect_identical(expected, sim2.collect());
}

// --- randomized cut points over 50 seeds ----------------------------------

TEST(Checkpoint, RandomizedEpochsFiftySeeds) {
  const Scenario sc(16, 16);
  const HybridSupply supply = sc.make_supply(36);
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed * 1000 + 17);
    const Scheme scheme = kAllSchemes[seed % kAllSchemes.size()];
    const std::vector<Task> tasks = sc.make_tasks(20, 4, seed + 41);
    SimConfig cfg = base_config();
    // Unaligned cut points exercise mid-epoch, mid-task, pre-first-event
    // and past-the-end positions alike.
    const double ck = rng.uniform(0.0, 15000.0);
    SCOPED_TRACE("seed " + std::to_string(seed) + " scheme " +
                 scheme_name(scheme) + " ck " + std::to_string(ck));
    sc.check_roundtrip(scheme, tasks, supply, cfg, ck);
  }
}

// --- sharded coordinator round-trip ---------------------------------------

TEST(Checkpoint, ShardedRoundtrip) {
  const Scenario sc(24, 18);
  const std::vector<Task> tasks = sc.make_tasks(40, 3, 28);
  const HybridSupply supply = sc.make_supply(38);
  SimConfig cfg = base_config();
  cfg.topology.cpus_per_rack = 2;
  cfg.topology.shards = 4;

  ShardedSim batch(sc.cluster, Scheme::kScanFair, &sc.db, supply, cfg);
  const SimResult expected = batch.run(tasks);

  ShardedSim sim1(sc.cluster, Scheme::kScanFair, &sc.db, supply, cfg);
  sim1.prepare(tasks, {});
  for (int round = 0; round < 8 && !sim1.drained(); ++round)
    sim1.advance_round();
  const std::vector<std::uint8_t> blob = checkpoint_bytes(sim1);

  ShardedSim sim2(sc.cluster, Scheme::kScanFair, &sc.db, supply, cfg);
  sim2.prepare({}, {});
  restore_from_bytes(sim2, blob.data(), blob.size());
  while (!sim2.drained()) sim2.advance_round();
  const SimResult resumed = sim2.collect();

  expect_identical(expected, resumed);
}

// --- streamed admission == batch prepare ----------------------------------

TEST(Checkpoint, StreamedAdmissionMatchesBatch) {
  const Scenario sc(24, 19);
  std::vector<Task> tasks = sc.make_tasks(40, 6, 29);
  const HybridSupply supply = sc.make_supply(39);
  const SimConfig cfg = base_config();

  const SimResult batch =
      sc.run_batch(Scheme::kScanFair, tasks, supply, cfg);

  Knowledge k(&sc.cluster, scheme_knowledge(Scheme::kScanFair), &sc.db);
  DatacenterSim sim(&k, scheme_rule(Scheme::kScanFair), &supply, cfg);
  sim.prepare({}, {});
  sort_by_submit(tasks);
  // Interleave admission with clock advances. The first admit happens at
  // clock 0 so the epoch/sample chains start where a batch prepare()
  // starts them, and there is always one admitted not-yet-arrived task, so
  // the chains never die mid-stream (DatacenterSim::admit's equivalence
  // contract).
  sim.admit(tasks.front());
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    sim.step_until(tasks[i - 1].submit_s);
    sim.admit(tasks[i]);
  }
  sim.advance_before(kInf);
  expect_identical(batch, sim.finish());
}

// --- rejection paths ------------------------------------------------------

struct Rejection : ::testing::Test {
  Rejection() : sc(12, 20), supply(sc.make_supply(40)) {}

  std::vector<std::uint8_t> make_blob(std::uint64_t seed = 2015) {
    cfg = base_config();
    cfg.seed = seed;
    k = std::make_unique<Knowledge>(&sc.cluster,
                                    scheme_knowledge(Scheme::kScanFair),
                                    &sc.db);
    sim = std::make_unique<DatacenterSim>(
        k.get(), scheme_rule(Scheme::kScanFair), &supply, cfg);
    sim->prepare(sc.make_tasks(10, 3, 30), {});
    sim->step_until(2000.0);
    return checkpoint_bytes(*sim);
  }

  void expect_reject(const std::vector<std::uint8_t>& blob) {
    Knowledge k2(&sc.cluster, scheme_knowledge(Scheme::kScanFair), &sc.db);
    DatacenterSim sim2(&k2, scheme_rule(Scheme::kScanFair), &supply, cfg);
    sim2.prepare({}, {});
    EXPECT_THROW(restore_from_bytes(sim2, blob.data(), blob.size()),
                 CheckpointError);
  }

  /// Same staging with the thermal + sleep subsystems live, so the v2
  /// section carries real state.
  std::vector<std::uint8_t> make_thermal_blob() {
    cfg = base_config();
    cfg.topology.cpus_per_rack = 2;
    cfg.thermal.enabled = true;
    cfg.sleep.policy = SleepPolicy::kTimeout;
    cfg.sleep.timeout_s = 120.0;
    k = std::make_unique<Knowledge>(&sc.cluster,
                                    scheme_knowledge(Scheme::kScanFair),
                                    &sc.db);
    sim = std::make_unique<DatacenterSim>(
        k.get(), scheme_rule(Scheme::kScanFair), &supply, cfg);
    sim->prepare(sc.make_tasks(10, 3, 30), {});
    sim->step_until(2000.0);
    return checkpoint_bytes(*sim);
  }

  Scenario sc;
  HybridSupply supply;
  SimConfig cfg;
  std::unique_ptr<Knowledge> k;
  std::unique_ptr<DatacenterSim> sim;
};

TEST_F(Rejection, BadMagic) {
  std::vector<std::uint8_t> blob = make_blob();
  blob[0] ^= 0xff;
  expect_reject(blob);
}

TEST_F(Rejection, VersionSkew) {
  std::vector<std::uint8_t> blob = make_blob();
  blob[4] = static_cast<std::uint8_t>(kCheckpointVersion + 1);
  expect_reject(blob);
}

TEST_F(Rejection, KindMismatch) {
  std::vector<std::uint8_t> blob = make_blob();
  blob[8] = 1;  // claims a sharded body inside a single-sim envelope
  expect_reject(blob);
}

TEST_F(Rejection, IdentityMismatch) {
  const std::vector<std::uint8_t> blob = make_blob(2015);
  // A simulator constructed with a different seed must refuse the blob.
  SimConfig other = cfg;
  other.seed = 2016;
  Knowledge k2(&sc.cluster, scheme_knowledge(Scheme::kScanFair), &sc.db);
  DatacenterSim sim2(&k2, scheme_rule(Scheme::kScanFair), &supply, other);
  sim2.prepare({}, {});
  EXPECT_THROW(restore_from_bytes(sim2, blob.data(), blob.size()),
               CheckpointError);
}

TEST_F(Rejection, TruncationAtEveryPrefix) {
  const std::vector<std::uint8_t> blob = make_blob();
  // Every strict prefix must reject cleanly. Stride keeps the quadratic
  // restore cost bounded; the first 64 lengths are covered exhaustively.
  for (std::size_t len = 0; len < blob.size();
       len += (len < 64 ? 1 : 97)) {
    SCOPED_TRACE("prefix " + std::to_string(len));
    std::vector<std::uint8_t> cut(blob.begin(),
                                  blob.begin() + static_cast<std::ptrdiff_t>(len));
    expect_reject(cut);
  }
}

TEST_F(Rejection, ThermalConfigIdentityMismatch) {
  const std::vector<std::uint8_t> blob = make_thermal_blob();
  // thermal/sleep knobs are identity: a restore under a different COP
  // curve regime or wake-latency ladder must refuse, not diverge.
  for (const auto tweak : {+[](SimConfig& c) { c.thermal.enabled = false; },
                           +[](SimConfig& c) { c.thermal.red_line_c = 35.0; },
                           +[](SimConfig& c) {
                             c.sleep.policy = SleepPolicy::kImmediate;
                           },
                           +[](SimConfig& c) { c.sleep.timeout_s = 60.0; }}) {
    SimConfig other = cfg;
    tweak(other);
    Knowledge k2(&sc.cluster, scheme_knowledge(Scheme::kScanFair), &sc.db);
    DatacenterSim sim2(&k2, scheme_rule(Scheme::kScanFair), &supply, other);
    sim2.prepare({}, {});
    EXPECT_THROW(restore_from_bytes(sim2, blob.data(), blob.size()),
                 CheckpointError);
  }
}

TEST_F(Rejection, TruncatedThermalSectionAtEveryPrefix) {
  // The v2 blob ends ...thermal/sleep state, RNG string; cutting anywhere
  // inside the new sections must reject cleanly, never restore a sim with
  // half a C-state ladder.
  const std::vector<std::uint8_t> blob = make_thermal_blob();
  for (std::size_t len = 0; len < blob.size();
       len += (len < 64 ? 1 : 89)) {
    SCOPED_TRACE("prefix " + std::to_string(len));
    std::vector<std::uint8_t> cut(
        blob.begin(), blob.begin() + static_cast<std::ptrdiff_t>(len));
    expect_reject(cut);
  }
  // And corrupt sleep depths (beyond the 3-rung ladder) are rejected even
  // when the frame is well-formed: flip high bits over the tail of the
  // blob until one lands on a depth byte -- every outcome must be a clean
  // CheckpointError or a successful restore, never UB (the fuzz corpus
  // pins the same property over random mutations).
  std::size_t rejected = 0;
  for (std::size_t i = blob.size() - 200; i < blob.size(); ++i) {
    std::vector<std::uint8_t> mut = blob;
    mut[i] ^= 0x80;
    Knowledge k2(&sc.cluster, scheme_knowledge(Scheme::kScanFair), &sc.db);
    DatacenterSim sim2(&k2, scheme_rule(Scheme::kScanFair), &supply, cfg);
    sim2.prepare({}, {});
    try {
      restore_from_bytes(sim2, mut.data(), mut.size());
    } catch (const CheckpointError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
}

TEST_F(Rejection, FileRoundtripAndMissingFile) {
  const std::vector<std::uint8_t> blob = make_blob();
  const std::string path =
      ::testing::TempDir() + "iscope_ckpt_test.bin";
  write_checkpoint(path, blob);
  EXPECT_EQ(read_checkpoint(path), blob);
  std::remove(path.c_str());
  EXPECT_THROW(read_checkpoint(path), CheckpointError);
}

}  // namespace
}  // namespace iscope
