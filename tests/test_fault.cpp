// Fault-injection layer (src/fault/): plan construction, determinism,
// scripted schedules, supply dropouts, forecast noise, quarantine, and the
// simulator's graceful-degradation path (requeue, retry bound, repair).
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "fault/fault.hpp"
#include "fault/noisy_forecast.hpp"
#include "profiling/scanner.hpp"
#include "sched/knowledge.hpp"
#include "sim/simulator.hpp"

namespace iscope {
namespace {

// ------------------------------------------------------------ FaultSpec

TEST(FaultSpec_, DefaultIsInertAndValid) {
  const FaultSpec spec;
  EXPECT_FALSE(spec.any());
  EXPECT_NO_THROW(spec.validate());
}

TEST(FaultSpec_, AnyDetectsEachChannel) {
  FaultSpec s;
  s.misprofile_prob = 0.1;
  EXPECT_TRUE(s.any());
  s = FaultSpec{};
  s.crash_mtbf_s = 1000.0;
  EXPECT_TRUE(s.any());
  s = FaultSpec{};
  s.forecast_error = 0.2;
  EXPECT_TRUE(s.any());
  s = FaultSpec{};
  s.dropouts_per_day = 1.0;
  EXPECT_TRUE(s.any());
}

TEST(FaultSpec_, ValidateRejectsBadValues) {
  FaultSpec s;
  s.misprofile_prob = 1.5;
  EXPECT_THROW(s.validate(), InvalidArgument);
  s = FaultSpec{};
  s.forecast_error = 1.0;  // must be < 1
  EXPECT_THROW(s.validate(), InvalidArgument);
  s = FaultSpec{};
  s.crash_mtbf_s = -10.0;
  EXPECT_THROW(s.validate(), InvalidArgument);
  s = FaultSpec{};
  s.crash_mtbf_s = 1000.0;
  s.repair_mean_s = 0.0;  // crashes need a repair process
  EXPECT_THROW(s.validate(), InvalidArgument);
  s = FaultSpec{};
  s.misprofile_prob = 0.1;
  s.repair_mean_s = 0.0;  // mis-profile fail-stops need one too
  EXPECT_THROW(s.validate(), InvalidArgument);
}

TEST(FaultSpecParse, RoundTripsAllKeys) {
  const FaultSpec s = parse_fault_spec(
      "mtbf=7200, repair=600, misprofile=0.05, misprofile-latency=900, "
      "forecast=0.25, dropouts=1.5, dropout-mean=1200, retries=5, "
      "horizon=86400");
  EXPECT_DOUBLE_EQ(s.crash_mtbf_s, 7200.0);
  EXPECT_DOUBLE_EQ(s.repair_mean_s, 600.0);
  EXPECT_DOUBLE_EQ(s.misprofile_prob, 0.05);
  EXPECT_DOUBLE_EQ(s.misprofile_latency_mean_s, 900.0);
  EXPECT_DOUBLE_EQ(s.forecast_error, 0.25);
  EXPECT_DOUBLE_EQ(s.dropouts_per_day, 1.5);
  EXPECT_DOUBLE_EQ(s.dropout_mean_s, 1200.0);
  EXPECT_EQ(s.max_retries, 5u);
  EXPECT_DOUBLE_EQ(s.horizon_s, 86400.0);
  EXPECT_TRUE(s.any());
}

TEST(FaultSpecParse, RejectsGarbage) {
  EXPECT_THROW(parse_fault_spec("mtbf"), InvalidArgument);
  EXPECT_THROW(parse_fault_spec("bogus=1"), InvalidArgument);
  EXPECT_THROW(parse_fault_spec("mtbf=abc"), InvalidArgument);
  EXPECT_THROW(parse_fault_spec("mtbf=nan"), InvalidArgument);
  EXPECT_THROW(parse_fault_spec("mtbf=1e3x"), InvalidArgument);
  EXPECT_THROW(parse_fault_spec("misprofile=2"), InvalidArgument);
}

TEST(FaultSpecParse, EmptyStringIsInert) {
  const FaultSpec s = parse_fault_spec("");
  EXPECT_FALSE(s.any());
}

// ------------------------------------------------------------ FaultPlan

FaultSpec crashy_spec() {
  FaultSpec s;
  s.crash_mtbf_s = 20.0 * 3600.0;
  s.repair_mean_s = 1800.0;
  s.horizon_s = 10.0 * 86400.0;
  return s;
}

TEST(FaultPlan_, DefaultPlanIsEmpty) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(plan.sim_empty());
  EXPECT_TRUE(plan.events().empty());
  EXPECT_EQ(plan.misprofile_count(), 0u);
  EXPECT_EQ(plan.procs_referenced(), 0u);
}

TEST(FaultPlan_, BuildIsDeterministic) {
  const FaultSpec spec = crashy_spec();
  const FaultPlan a = FaultPlan::build(spec, 42, 16);
  const FaultPlan b = FaultPlan::build(spec, 42, 16);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].time_s, b.events()[i].time_s);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].proc, b.events()[i].proc);
  }
  // A different seed produces a genuinely different schedule.
  const FaultPlan c = FaultPlan::build(spec, 43, 16);
  bool differs = a.events().size() != c.events().size();
  for (std::size_t i = 0; !differs && i < a.events().size(); ++i)
    differs = a.events()[i].time_s != c.events()[i].time_s;
  EXPECT_TRUE(differs);
}

TEST(FaultPlan_, EveryCrashHasAMatchingRepair) {
  const FaultPlan plan = FaultPlan::build(crashy_spec(), 7, 12);
  ASSERT_FALSE(plan.events().empty());
  // Per processor: strictly increasing times, alternating crash/repair
  // starting with a crash, equal counts (no processor lost forever).
  for (std::size_t p = 0; p < 12; ++p) {
    double last = -1.0;
    bool expect_crash = true;
    std::size_t crashes = 0, repairs = 0;
    for (const FaultEvent& e : plan.events()) {
      if (e.proc != p) continue;
      EXPECT_GT(e.time_s, last);
      last = e.time_s;
      EXPECT_EQ(e.kind, expect_crash ? FaultKind::kCrash : FaultKind::kRepair);
      expect_crash = !expect_crash;
      (e.kind == FaultKind::kCrash ? crashes : repairs)++;
    }
    EXPECT_EQ(crashes, repairs) << "proc " << p;
  }
  // Globally sorted by time.
  for (std::size_t i = 1; i < plan.events().size(); ++i)
    EXPECT_LE(plan.events()[i - 1].time_s, plan.events()[i].time_s);
  EXPECT_LE(plan.procs_referenced(), 12u);
}

TEST(FaultPlan_, MisprofileDrawsArePerProcessorIndependent) {
  FaultSpec spec;
  spec.misprofile_prob = 0.3;
  spec.repair_mean_s = 600.0;
  // Growing the facility must not reshuffle which of the first N chips
  // are mis-profiled (unconditional per-proc draws).
  const FaultPlan small = FaultPlan::build(spec, 5, 8);
  const FaultPlan big = FaultPlan::build(spec, 5, 32);
  for (std::size_t p = 0; p < 8; ++p) {
    EXPECT_EQ(small.misprofiled(p), big.misprofiled(p)) << "proc " << p;
    EXPECT_EQ(small.misprofile_latency_s(p), big.misprofile_latency_s(p));
    EXPECT_EQ(small.misprofile_repair_s(p), big.misprofile_repair_s(p));
  }
  // With prob 0.3 over 32 chips, some but not all should be flagged.
  EXPECT_GT(big.misprofile_count(), 0u);
  EXPECT_LT(big.misprofile_count(), 32u);
  for (std::size_t p = 0; p < 32; ++p) {
    if (big.misprofiled(p)) {
      EXPECT_GE(big.misprofile_latency_s(p), 0.0);
      EXPECT_GT(big.misprofile_repair_s(p), 0.0);
    } else {
      EXPECT_EQ(big.misprofile_latency_s(p), -1.0);
    }
  }
}

TEST(FaultPlan_, DropoutWindowsIgnoreProcessorCount) {
  FaultSpec spec;
  spec.dropouts_per_day = 2.0;
  spec.dropout_mean_s = 900.0;
  spec.horizon_s = 5.0 * 86400.0;
  // The experiment layer builds a procs=0 plan just to place dropouts; it
  // must agree with the simulator's full plan.
  const FaultPlan zero = FaultPlan::build(spec, 11, 0);
  const FaultPlan full = FaultPlan::build(spec, 11, 64);
  ASSERT_EQ(zero.dropouts().size(), full.dropouts().size());
  ASSERT_FALSE(zero.dropouts().empty());
  for (std::size_t i = 0; i < zero.dropouts().size(); ++i) {
    EXPECT_EQ(zero.dropouts()[i].start_s, full.dropouts()[i].start_s);
    EXPECT_EQ(zero.dropouts()[i].end_s, full.dropouts()[i].end_s);
    EXPECT_LT(zero.dropouts()[i].start_s, zero.dropouts()[i].end_s);
  }
}

TEST(FaultPlan_, ApplyDropoutsZeroesExactlyTheWindows) {
  std::vector<FaultEvent> no_events;
  FaultPlan plan = FaultPlan::scripted(no_events);
  // Scripted plans carry no dropouts; exercise apply via a built plan.
  FaultSpec spec;
  spec.dropouts_per_day = 4.0;
  spec.dropout_mean_s = 1800.0;
  spec.horizon_s = 2.0 * 86400.0;
  plan = FaultPlan::build(spec, 3, 0);
  ASSERT_FALSE(plan.dropouts().empty());

  const SupplyTrace trace(Seconds{600.0}, std::vector<double>(288, 500.0));
  const SupplyTrace gapped = plan.apply_dropouts(trace);
  ASSERT_EQ(gapped.samples(), trace.samples());
  EXPECT_EQ(gapped.step().raw(), trace.step().raw());
  std::size_t zeroed = 0;
  for (std::size_t i = 0; i < gapped.samples(); ++i) {
    const double t = 600.0 * static_cast<double>(i);
    bool inside = false;
    for (const DropoutWindow& w : plan.dropouts())
      inside = inside || (t >= w.start_s && t < w.end_s);
    EXPECT_EQ(gapped.sample(i).watts(), inside ? 0.0 : 500.0) << "i=" << i;
    zeroed += inside ? 1 : 0;
  }
  EXPECT_GT(zeroed, 0u);
  EXPECT_LT(zeroed, gapped.samples());
}

TEST(FaultPlan_, ScriptedValidatesAlternation) {
  // Valid: crash then repair per proc, any submission order.
  std::vector<FaultEvent> ok = {
      {2000.0, FaultKind::kRepair, 1},
      {1000.0, FaultKind::kCrash, 1},
      {500.0, FaultKind::kCrash, 0},
  };
  const FaultPlan plan = FaultPlan::scripted(ok, /*max_retries=*/2);
  ASSERT_EQ(plan.events().size(), 3u);
  EXPECT_EQ(plan.events()[0].time_s, 500.0);
  EXPECT_EQ(plan.max_retries(), 2u);
  EXPECT_FALSE(plan.sim_empty());
  EXPECT_EQ(plan.procs_referenced(), 2u);

  // Repair before any crash.
  std::vector<FaultEvent> bad1 = {{100.0, FaultKind::kRepair, 0}};
  EXPECT_THROW(FaultPlan::scripted(bad1), InvalidArgument);
  // Double crash.
  std::vector<FaultEvent> bad2 = {{100.0, FaultKind::kCrash, 0},
                                  {200.0, FaultKind::kCrash, 0}};
  EXPECT_THROW(FaultPlan::scripted(bad2), InvalidArgument);
}

// ------------------------------------------------------ NoisyForecaster

class FlatForecaster final : public WindForecaster {
 public:
  Watts forecast_mean(Seconds, Seconds) const override {
    return Watts{1000.0};
  }
};

TEST(NoisyForecaster_, BoundedAndStateless) {
  const FlatForecaster base;
  const NoisyForecaster noisy(&base, 0.3, 99);
  double lo = 2.0, hi = 0.0;
  for (int i = 0; i < 200; ++i) {
    const Seconds now{60.0 * i};
    const Watts w = noisy.forecast_mean(now, Seconds{3600.0});
    const double factor = w.watts() / 1000.0;
    EXPECT_GE(factor, 0.7 - 1e-12);
    EXPECT_LE(factor, 1.3 + 1e-12);
    lo = std::min(lo, factor);
    hi = std::max(hi, factor);
    // Stateless: asking again (out of order, interleaved) changes nothing.
    EXPECT_EQ(noisy.forecast_mean(now, Seconds{3600.0}).watts(), w.watts());
  }
  // The noise actually moves (spread over the 200 queries).
  EXPECT_LT(lo, 0.95);
  EXPECT_GT(hi, 1.05);
  // Different horizon => independent draw.
  const double a = noisy.forecast_mean(Seconds{0.0}, Seconds{3600.0}).watts();
  const double b = noisy.forecast_mean(Seconds{0.0}, Seconds{7200.0}).watts();
  EXPECT_NE(a, b);
}

TEST(NoisyForecaster_, ZeroErrorPassesThrough) {
  const FlatForecaster base;
  const NoisyForecaster noisy(&base, 0.0, 1);
  EXPECT_EQ(noisy.forecast_mean(Seconds{10.0}, Seconds{100.0}).watts(),
            1000.0);
}

// ------------------------------------------------- Knowledge quarantine

TEST(KnowledgeQuarantine, BumpsGenerationAndCounts) {
  const Cluster cluster = build_cluster([] {
    ClusterConfig cfg;
    cfg.num_processors = 8;
    cfg.seed = 3;
    return cfg;
  }());
  Knowledge k(&cluster, KnowledgeSource::kBin);
  const std::uint64_t g0 = k.generation();
  EXPECT_EQ(k.quarantined_count(), 0u);

  k.quarantine(2);
  EXPECT_TRUE(k.quarantined(2));
  EXPECT_FALSE(k.quarantined(3));
  EXPECT_EQ(k.quarantined_count(), 1u);
  EXPECT_GT(k.generation(), g0);

  const std::uint64_t g1 = k.generation();
  k.release(2);
  EXPECT_FALSE(k.quarantined(2));
  EXPECT_EQ(k.quarantined_count(), 0u);
  EXPECT_GT(k.generation(), g1);

  k.quarantine(0);
  k.quarantine(5);
  EXPECT_EQ(k.quarantined_count(), 2u);
  k.clear_quarantine();
  EXPECT_EQ(k.quarantined_count(), 0u);
  EXPECT_FALSE(k.quarantined(0));
  EXPECT_FALSE(k.quarantined(5));
}

// ------------------------------------------------------ sim integration

const HybridSupply& utility_only() {
  static const HybridSupply supply;
  return supply;
}

struct FaultWorld {
  Cluster cluster;
  ProfileDb db;
  explicit FaultWorld(std::size_t n = 8, std::uint64_t seed = 9)
      : cluster(build_cluster([&] {
          ClusterConfig cfg;
          cfg.num_processors = n;
          cfg.seed = seed;
          return cfg;
        }())),
        db(n) {
    const Scanner scanner(&cluster, ScanConfig{});
    Rng rng(seed + 1);
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    scanner.scan_domain(all, 0.0, rng, db);
  }

  static std::vector<Task> one_task(double runtime_s, std::size_t cpus,
                                    double slack = 20.0) {
    Task t;
    t.id = 1;
    t.submit_s = 0.0;
    t.cpus = cpus;
    t.runtime_s = runtime_s;
    t.deadline_s = runtime_s * slack;
    return {t};
  }

  SimResult run(const std::shared_ptr<const FaultPlan>& plan,
                std::vector<Task> tasks, Scheme scheme = Scheme::kScanEffi) {
    SimConfig cfg;
    cfg.record_timeline = true;
    cfg.fault_plan = plan;
    Knowledge knowledge(&cluster, scheme_knowledge(scheme),
                        scheme_uses_scan(scheme) ? &db : nullptr);
    DatacenterSim sim(&knowledge, scheme_rule(scheme), &utility_only(), cfg);
    return sim.run(std::move(tasks));
  }
};

std::size_t count_kind(const SimResult& r, TimelineKind kind) {
  std::size_t n = 0;
  for (const TimelineEvent& e : r.timeline) n += e.kind == kind ? 1 : 0;
  return n;
}

TEST(FaultSim, CrashKillsRunningTaskAndItRecovers) {
  FaultWorld w;
  // The lone 1-wide task starts at t=0 on some processor; crash every
  // processor at t=100 so it is certainly hit, repair at t=400.
  std::vector<FaultEvent> events;
  for (std::size_t p = 0; p < 8; ++p) {
    events.push_back({100.0, FaultKind::kCrash, p});
    events.push_back({400.0, FaultKind::kRepair, p});
  }
  const auto plan =
      std::make_shared<const FaultPlan>(FaultPlan::scripted(events));
  const SimResult r = w.run(plan, FaultWorld::one_task(1000.0, 1));

  EXPECT_EQ(r.tasks_completed, 1u);
  EXPECT_EQ(r.faults.tasks_failed, 0u);
  EXPECT_EQ(r.faults.cpu_failures, 8u);
  EXPECT_EQ(r.faults.cpu_repairs, 8u);
  EXPECT_EQ(r.faults.task_requeues, 1u);
  // 1 proc x 100 s of work discarded.
  EXPECT_NEAR(r.faults.lost_cpu_seconds, 100.0, 1e-9);
  // The task restarted *from scratch* when the cluster repaired at t=400:
  // runtime_s is seconds-at-Fmax, so the re-execution takes >= 1000 s on
  // top of the outage. (This caught a real bug once: resetting the task's
  // event version on restart resurrected the cancelled completion event
  // from the first stint, finishing the task without re-running it.)
  std::size_t starts = 0;
  for (const TimelineEvent& e : r.timeline)
    starts += e.kind == TimelineKind::kStart ? 1 : 0;
  EXPECT_EQ(starts, 2u);
  EXPECT_GE(r.makespan.seconds(), 400.0 + 1000.0 - 1e-9);
  EXPECT_EQ(count_kind(r, TimelineKind::kCpuFail), 8u);
  EXPECT_EQ(count_kind(r, TimelineKind::kCpuRepair), 8u);
  EXPECT_EQ(count_kind(r, TimelineKind::kTaskRequeue), 1u);
  EXPECT_EQ(count_kind(r, TimelineKind::kTaskAbandon), 0u);
}

TEST(FaultSim, RetryBudgetExhaustionAbandonsTask) {
  FaultWorld w;
  // Crash everything shortly after each (re)start, more times than the
  // retry budget allows, and never repair until far too late.
  std::vector<FaultEvent> events;
  for (int round = 0; round < 3; ++round) {
    const double crash_t = 50.0 + 1000.0 * round;
    const double repair_t = 900.0 + 1000.0 * round;
    for (std::size_t p = 0; p < 8; ++p) {
      events.push_back({crash_t, FaultKind::kCrash, p});
      events.push_back({repair_t, FaultKind::kRepair, p});
    }
  }
  const auto plan = std::make_shared<const FaultPlan>(
      FaultPlan::scripted(events, /*max_retries=*/2));
  const SimResult r = w.run(plan, FaultWorld::one_task(2000.0, 1));

  // Killed at ~50s, ~1050s, ~2050s; retries 1 and 2 allowed, third kill
  // exceeds the budget => abandoned, never silently lost.
  EXPECT_EQ(r.tasks_completed, 0u);
  EXPECT_EQ(r.faults.tasks_failed, 1u);
  EXPECT_EQ(r.faults.task_requeues, 2u);
  EXPECT_EQ(count_kind(r, TimelineKind::kTaskAbandon), 1u);
  EXPECT_EQ(r.tasks_completed + r.faults.tasks_failed, 1u);
}

TEST(FaultSim, IdleCrashDoesNotTouchTasks) {
  FaultWorld w;
  // Crash a processor long after the single short task finished.
  std::vector<FaultEvent> events = {{50000.0, FaultKind::kCrash, 3},
                                    {50600.0, FaultKind::kRepair, 3}};
  const auto plan =
      std::make_shared<const FaultPlan>(FaultPlan::scripted(events));
  const SimResult r = w.run(plan, FaultWorld::one_task(300.0, 1));
  EXPECT_EQ(r.tasks_completed, 1u);
  EXPECT_EQ(r.faults.task_requeues, 0u);
  EXPECT_EQ(r.faults.lost_cpu_seconds, 0.0);
  // The crash itself may or may not be processed depending on whether the
  // event queue drains first; either way nothing was lost.
  EXPECT_LE(r.faults.cpu_failures, 1u);
}

TEST(FaultSim, MisprofileHitsScanButNotBin) {
  FaultSpec spec;
  spec.misprofile_prob = 1.0;  // every scanned chip is a landmine
  spec.misprofile_latency_mean_s = 200.0;
  spec.repair_mean_s = 600.0;
  SimConfig cfg;
  cfg.record_timeline = true;
  cfg.faults = spec;
  cfg.fault_seed = 21;

  FaultWorld w;
  const auto run_one = [&](Scheme scheme) {
    Knowledge knowledge(&w.cluster, scheme_knowledge(scheme),
                        scheme_uses_scan(scheme) ? &w.db : nullptr);
    DatacenterSim sim(&knowledge, scheme_rule(scheme), &utility_only(), cfg);
    std::vector<Task> tasks;
    for (int i = 0; i < 6; ++i) {
      Task t;
      t.id = i + 1;
      t.submit_s = 0.0;
      t.cpus = 1;
      t.runtime_s = 5000.0;
      t.deadline_s = 200000.0;
      tasks.push_back(t);
    }
    return sim.run(std::move(tasks));
  };

  const SimResult scan = run_one(Scheme::kScanEffi);
  EXPECT_GT(scan.faults.misprofile_failures, 0u);
  EXPECT_EQ(scan.tasks_completed + scan.faults.tasks_failed, 6u);
  // Every fail-stop eventually repairs (counters may trail by the final
  // repair if the sim drains first, but failures never exceed repairs + n).
  EXPECT_LE(scan.faults.cpu_repairs, scan.faults.cpu_failures);

  // A Bin view never runs chips at the scanned Min-Vdd point, so the same
  // spec injects no mis-profile fail-stops there.
  const SimResult bin = run_one(Scheme::kBinEffi);
  EXPECT_EQ(bin.faults.misprofile_failures, 0u);
  EXPECT_EQ(bin.tasks_completed, 6u);
}

TEST(FaultSim, SeededRunsReplayBitIdentically) {
  FaultWorld w;
  FaultSpec spec;
  spec.crash_mtbf_s = 4.0 * 3600.0;
  spec.repair_mean_s = 600.0;
  spec.misprofile_prob = 0.25;
  spec.repair_mean_s = 600.0;

  std::vector<Task> tasks;
  for (int i = 0; i < 20; ++i) {
    Task t;
    t.id = i + 1;
    t.submit_s = 300.0 * i;
    t.cpus = 1 + static_cast<std::size_t>(i % 3);
    t.runtime_s = 800.0 + 120.0 * (i % 5);
    t.deadline_s = t.submit_s + 30.0 * t.runtime_s;
    tasks.push_back(t);
  }

  const auto run_once = [&] {
    SimConfig cfg;
    cfg.record_timeline = true;
    cfg.record_trace = true;
    cfg.faults = spec;
    cfg.fault_seed = 77;
    Knowledge knowledge(&w.cluster, scheme_knowledge(Scheme::kScanFair),
                        &w.db);
    DatacenterSim sim(&knowledge, scheme_rule(Scheme::kScanFair), &utility_only(),
                      cfg);
    return sim.run(tasks);
  };

  const SimResult a = run_once();
  const SimResult b = run_once();
  EXPECT_EQ(a.cost.raw(), b.cost.raw());
  EXPECT_EQ(a.energy.utility.joules(), b.energy.utility.joules());
  EXPECT_EQ(a.tasks_completed, b.tasks_completed);
  EXPECT_EQ(a.faults.cpu_failures, b.faults.cpu_failures);
  EXPECT_EQ(a.faults.misprofile_failures, b.faults.misprofile_failures);
  EXPECT_EQ(a.faults.task_requeues, b.faults.task_requeues);
  EXPECT_EQ(a.faults.lost_cpu_seconds, b.faults.lost_cpu_seconds);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].time_s, b.timeline[i].time_s);
    EXPECT_EQ(a.timeline[i].kind, b.timeline[i].kind);
    EXPECT_EQ(a.timeline[i].task_id, b.timeline[i].task_id);
  }
}

TEST(FaultSim, CpuFaultsRequireMutableKnowledge) {
  FaultWorld w;
  std::vector<FaultEvent> events = {{100.0, FaultKind::kCrash, 0},
                                    {200.0, FaultKind::kRepair, 0}};
  SimConfig cfg;
  cfg.fault_plan =
      std::make_shared<const FaultPlan>(FaultPlan::scripted(events));
  const Knowledge frozen(&w.cluster, KnowledgeSource::kBin);
  DatacenterSim sim(&frozen, scheme_rule(Scheme::kBinEffi), &utility_only(), cfg);
  EXPECT_THROW(sim.run(FaultWorld::one_task(1000.0, 1)), InvalidArgument);
}

TEST(FaultSim, PlanWiderThanClusterIsRejected) {
  FaultWorld w;  // 8 processors
  std::vector<FaultEvent> events = {{100.0, FaultKind::kCrash, 12},
                                    {200.0, FaultKind::kRepair, 12}};
  const auto plan =
      std::make_shared<const FaultPlan>(FaultPlan::scripted(events));
  EXPECT_THROW(w.run(plan, FaultWorld::one_task(1000.0, 1)),
               InvalidArgument);
}

}  // namespace
}  // namespace iscope
