// End-to-end service-mode suite: spawns the real iscope_serve binary
// (ISCOPE_SERVE_BIN, injected by CMake) on a unix socket and drives it
// through the wire protocol. The batch comparator is built through the
// same SimHost type the daemon uses, with the same options -- identical
// construction by construction -- so every assertion below isolates the
// service path itself:
//
//  * the streamed decision sequence (ADMIT.. ADVANCE.. DRAIN) equals the
//    batch simulator's timeline on the same seed, bitwise;
//  * the RESULT summary equals the batch SimResult, bitwise;
//  * /metrics counters cross-check the RESULT summary;
//  * SIGTERM checkpoints, a --resume daemon continues the decision stream
//    exactly where the first left off (splice == batch) -- including
//    admissions acknowledged but never ADVANCEd before the signal;
//  * CHECKPOINT frames snapshot the pending backlog too, and can only
//    write the operator-configured --checkpoint target;
//  * a fresh ADMIT after RESULT invalidates the cached summary;
//  * admission backpressure (BUSY) engages at --admit-capacity and clears
//    after an ADVANCE injects the backlog;
//  * malformed payloads get ERR without killing the connection; a broken
//    frame header gets ERR and a disconnect.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/serial.hpp"
#include "service/server.hpp"
#include "service_client.hpp"
#include "sim/simulator.hpp"
#include "workload/task.hpp"

namespace iscope::service {
namespace {

std::string socket_path(const std::string& tag) {
  // Unix socket paths are capped (~108 bytes); keep them short and unique.
  return "/tmp/iscope_e2e_" + tag + "_" + std::to_string(::getpid()) +
         ".sock";
}

ServiceOptions base_options(const std::string& tag) {
  ServiceOptions opt;
  opt.scheme = Scheme::kScanFair;
  opt.scale = 0.05;  // 24 CPUs / 40 jobs: seconds, not minutes
  opt.seed = 123;
  opt.socket_path = socket_path(tag);
  return opt;
}

std::vector<std::string> to_args(const ServiceOptions& opt) {
  std::vector<std::string> args = {"--socket",  opt.socket_path,
                                   "--scheme",  scheme_name(opt.scheme),
                                   "--scale",   "0.05",
                                   "--seed",    std::to_string(opt.seed)};
  if (!opt.checkpoint_path.empty()) {
    args.push_back("--checkpoint");
    args.push_back(opt.checkpoint_path);
  }
  if (opt.resume) args.push_back("--resume");
  if (!opt.fault_spec.empty()) {
    args.push_back("--faults");
    args.push_back(opt.fault_spec);
  }
  if (opt.thermal) args.push_back("--thermal");
  if (opt.sleep_policy != SleepPolicy::kNone) {
    args.push_back("--sleep-policy");
    args.push_back(sleep_policy_name(opt.sleep_policy));
  }
  return args;
}

/// The workload both sides share: generated from the twin's context, so
/// the daemon only ever sees it through ADMIT frames.
std::vector<Task> make_workload(const SimHost& host) {
  std::vector<Task> tasks = host.context().make_tasks(0.3);
  sort_by_submit(tasks);
  return tasks;
}

void expect_summary_matches(const ResultSummary& s, const SimResult& r) {
  EXPECT_EQ(s.wind_j, r.energy.wind.joules());
  EXPECT_EQ(s.utility_j, r.energy.utility.joules());
  EXPECT_EQ(s.curtailed_j, r.wind_curtailed.joules());
  EXPECT_EQ(s.battery_delivered_j, r.battery_delivered.joules());
  EXPECT_EQ(s.battery_losses_j, r.battery_losses.joules());
  EXPECT_EQ(s.cost_usd, r.cost.dollars());
  EXPECT_EQ(s.tasks_completed, r.tasks_completed);
  EXPECT_EQ(s.deadline_misses, r.deadline_misses);
  EXPECT_EQ(s.mean_wait_s, r.mean_wait.seconds());
  EXPECT_EQ(s.makespan_s, r.makespan.seconds());
  EXPECT_EQ(s.events_processed, r.events_processed);
  EXPECT_EQ(s.rematches, r.dvfs_rematch_count);
  EXPECT_EQ(s.task_requeues, r.faults.task_requeues);
  EXPECT_EQ(s.tasks_failed, r.faults.tasks_failed);
}

void expect_decisions_match(const std::vector<TimelineEvent>& streamed,
                            const std::vector<TimelineEvent>& batch) {
  ASSERT_EQ(streamed.size(), batch.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].time_s, batch[i].time_s) << "decision " << i;
    EXPECT_EQ(streamed[i].kind, batch[i].kind) << "decision " << i;
    EXPECT_EQ(streamed[i].task_id, batch[i].task_id) << "decision " << i;
    EXPECT_EQ(streamed[i].value, batch[i].value) << "decision " << i;
  }
}

/// Pull `name{run="label"} value` out of Prometheus text.
double metric_value(const std::string& text, const std::string& name,
                    const std::string& label) {
  const std::string needle = name + "{run=\"" + label + "\"} ";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return -1.0;
  return std::stod(text.substr(at + needle.size()));
}

TEST(ServiceE2E, HelloReportsIdentity) {
  const ServiceOptions opt = base_options("hello");
  ServeProcess proc(ISCOPE_SERVE_BIN, to_args(opt));
  ASSERT_TRUE(proc.wait_ready());
  Client client(opt.socket_path);
  const HelloOk h = client.hello();
  EXPECT_EQ(h.version, kProtoVersion);
  EXPECT_EQ(h.scheme, "ScanFair");
  EXPECT_EQ(h.procs, 24u);
  EXPECT_EQ(h.seed, 123u);
  const DecisionSnapshot s = client.decide_now();
  EXPECT_EQ(s.now_s, 0.0);
  EXPECT_EQ(s.tasks_admitted, 0u);
  EXPECT_EQ(s.idle_procs, 24u);
  // Whoever can reach the socket can admit work and trigger checkpoints:
  // the node must be owner-only from the moment it is bound.
  struct stat st {};
  ASSERT_EQ(::stat(opt.socket_path.c_str(), &st), 0);
  EXPECT_TRUE(S_ISSOCK(st.st_mode));
  EXPECT_EQ(st.st_mode & 077u, 0u) << "socket grants group/other access";
  client.shutdown();
  EXPECT_TRUE(client.recv_eof());
}

TEST(ServiceE2E, StreamedDecisionsMatchBatch) {
  const ServiceOptions opt = base_options("stream");
  SimHost twin(opt);
  const std::vector<Task> tasks = make_workload(twin);
  const SimResult batch = twin.sim().run(tasks);

  ServeProcess proc(ISCOPE_SERVE_BIN, to_args(opt));
  ASSERT_TRUE(proc.wait_ready());
  Client client(opt.socket_path);
  client.hello();
  for (const Task& t : tasks) {
    const Frame reply = client.admit(t);
    ASSERT_EQ(reply.type, MsgType::kAdmitOk);
  }

  // Advance in uneven slices, then drain: the decision stream must not
  // depend on how the wall clock is chopped.
  std::vector<TimelineEvent> decisions;
  client.advance(2000.0, decisions);
  client.advance(2000.0, decisions);  // zero-width slice is legal
  client.advance(7777.7, decisions);
  const DecisionSnapshot mid = client.decide_now();
  EXPECT_EQ(mid.now_s, 7777.7);
  EXPECT_EQ(mid.tasks_admitted, tasks.size());
  client.drain(decisions);
  const ResultSummary summary = client.result();
  // RESULT is cached: a second ask returns the identical summary.
  const ResultSummary again = client.result();
  EXPECT_EQ(summary.events_processed, again.events_processed);
  EXPECT_EQ(summary.cost_usd, again.cost_usd);
  client.shutdown();

  expect_decisions_match(decisions, batch.timeline);
  expect_summary_matches(summary, batch);
}

TEST(ServiceE2E, ThermalSleepFlagsMatchBatch) {
  // --thermal / --sleep-policy reach the daemon's SimConfig: the streamed
  // run must match a batch twin built from the same options, and the
  // thermal/sleep machinery must actually have fired (nonzero cooling).
  ServiceOptions opt = base_options("therm");
  opt.thermal = true;
  opt.sleep_policy = SleepPolicy::kTimeout;
  SimHost twin(opt);
  const std::vector<Task> tasks = make_workload(twin);
  const SimResult batch = twin.sim().run(tasks);
  ASSERT_GT(batch.cooling_energy.joules(), 0.0);

  ServeProcess proc(ISCOPE_SERVE_BIN, to_args(opt));
  ASSERT_TRUE(proc.wait_ready());
  Client client(opt.socket_path);
  client.hello();
  for (const Task& t : tasks)
    ASSERT_EQ(client.admit(t).type, MsgType::kAdmitOk);
  std::vector<TimelineEvent> decisions;
  client.advance(5000.0, decisions);
  client.drain(decisions);
  const ResultSummary summary = client.result();
  client.shutdown();

  expect_decisions_match(decisions, batch.timeline);
  expect_summary_matches(summary, batch);
}

TEST(ServiceE2E, MetricsCrossCheckResult) {
  const ServiceOptions opt = base_options("metrics");
  SimHost twin(opt);
  const std::vector<Task> tasks = make_workload(twin);

  ServeProcess proc(ISCOPE_SERVE_BIN, to_args(opt));
  ASSERT_TRUE(proc.wait_ready());
  Client client(opt.socket_path);
  for (const Task& t : tasks)
    ASSERT_EQ(client.admit(t).type, MsgType::kAdmitOk);
  std::vector<TimelineEvent> decisions;
  client.drain(decisions);
  const ResultSummary summary = client.result();

  // finish() published the run counters under the daemon's label; the
  // /metrics text must agree with the RESULT frame exactly.
  const std::string text = client.metrics();
  const std::string label = "serve/ScanFair";
  EXPECT_EQ(metric_value(text, "iscope_sim_events_total", label),
            static_cast<double>(summary.events_processed));
  EXPECT_EQ(metric_value(text, "iscope_sim_rematches_total", label),
            static_cast<double>(summary.rematches));
  EXPECT_EQ(metric_value(text, "iscope_sim_tasks_completed_total", label),
            static_cast<double>(summary.tasks_completed));
  EXPECT_EQ(metric_value(text, "iscope_sim_deadline_misses_total", label),
            static_cast<double>(summary.deadline_misses));
  client.shutdown();
}

TEST(ServiceE2E, SigtermCheckpointResumeSplicesStream) {
  ServiceOptions opt = base_options("ckpt");
  opt.checkpoint_path =
      "/tmp/iscope_e2e_ck_" + std::to_string(::getpid()) + ".bin";
  SimHost twin(opt);
  const std::vector<Task> tasks = make_workload(twin);
  const SimResult batch = twin.sim().run(tasks);

  std::vector<TimelineEvent> decisions;
  {
    ServeProcess proc(ISCOPE_SERVE_BIN, to_args(opt));
    ASSERT_TRUE(proc.wait_ready());
    Client client(opt.socket_path);
    for (const Task& t : tasks)
      ASSERT_EQ(client.admit(t).type, MsgType::kAdmitOk);
    client.advance(4000.0, decisions);
    proc.sigterm();
    EXPECT_EQ(proc.wait_exit(), 0);
  }

  ServiceOptions opt2 = opt;
  opt2.resume = true;
  opt2.socket_path = socket_path("ckpt2");
  ServeProcess proc2(ISCOPE_SERVE_BIN, to_args(opt2));
  ASSERT_TRUE(proc2.wait_ready());
  Client client2(opt2.socket_path);
  const DecisionSnapshot resumed = client2.decide_now();
  EXPECT_EQ(resumed.now_s, 4000.0);
  EXPECT_EQ(resumed.tasks_admitted, tasks.size());
  client2.drain(decisions);
  const ResultSummary summary = client2.result();
  client2.shutdown();
  std::remove(opt.checkpoint_path.c_str());

  // The pre-SIGTERM stream plus the post-resume stream is the batch
  // timeline, with no seam: same events, same order, same bits.
  expect_decisions_match(decisions, batch.timeline);
  expect_summary_matches(summary, batch);
}

TEST(ServiceE2E, SigtermPreservesPendingAdmissions) {
  ServiceOptions opt = base_options("ckpend");
  opt.checkpoint_path =
      "/tmp/iscope_e2e_ckp_" + std::to_string(::getpid()) + ".bin";
  SimHost twin(opt);
  const std::vector<Task> tasks = make_workload(twin);
  const SimResult batch = twin.sim().run(tasks);

  // Split the workload at a mid-stream cut: early tasks are admitted and
  // ADVANCEd past, late ones are acknowledged with ADMIT_OK but still in
  // the daemon's pending queue when SIGTERM lands. The checkpoint must
  // carry them, or acknowledged work silently vanishes across the restart.
  const std::size_t half = tasks.size() / 2;
  const double cut = (tasks[half - 1].submit_s + tasks[half].submit_s) / 2.0;
  std::vector<Task> early, late;
  for (const Task& t : tasks) (t.submit_s <= cut ? early : late).push_back(t);
  ASSERT_FALSE(early.empty());
  ASSERT_FALSE(late.empty());

  std::vector<TimelineEvent> decisions;
  {
    ServeProcess proc(ISCOPE_SERVE_BIN, to_args(opt));
    ASSERT_TRUE(proc.wait_ready());
    Client client(opt.socket_path);
    for (const Task& t : early)
      ASSERT_EQ(client.admit(t).type, MsgType::kAdmitOk);
    client.advance(cut, decisions);
    for (const Task& t : late)
      ASSERT_EQ(client.admit(t).type, MsgType::kAdmitOk);
    proc.sigterm();
    EXPECT_EQ(proc.wait_exit(), 0);
  }

  ServiceOptions opt2 = opt;
  opt2.resume = true;
  opt2.socket_path = socket_path("ckpend2");
  ServeProcess proc2(ISCOPE_SERVE_BIN, to_args(opt2));
  ASSERT_TRUE(proc2.wait_ready());
  Client client2(opt2.socket_path);
  const DecisionSnapshot resumed = client2.decide_now();
  EXPECT_EQ(resumed.tasks_admitted, tasks.size());
  client2.drain(decisions);
  const ResultSummary summary = client2.result();
  client2.shutdown();
  std::remove(opt.checkpoint_path.c_str());

  expect_decisions_match(decisions, batch.timeline);
  expect_summary_matches(summary, batch);
}

TEST(ServiceE2E, CheckpointFramePathPolicy) {
  ServiceOptions opt = base_options("ckpol");
  opt.checkpoint_path =
      "/tmp/iscope_e2e_ckpol_" + std::to_string(::getpid()) + ".bin";
  SimHost twin(opt);
  const std::vector<Task> tasks = make_workload(twin);
  const SimResult batch = twin.sim().run(tasks);

  {
    ServeProcess proc(ISCOPE_SERVE_BIN, to_args(opt));
    ASSERT_TRUE(proc.wait_ready());
    Client client(opt.socket_path);
    for (const Task& t : tasks)
      ASSERT_EQ(client.admit(t).type, MsgType::kAdmitOk);
    // The wire cannot redirect daemon writes: any path other than the
    // operator-configured --checkpoint target is refused.
    client.send_frame(MsgType::kCheckpoint,
                      encode_text("/tmp/iscope_e2e_elsewhere.bin"));
    EXPECT_EQ(client.recv_frame().type, MsgType::kErr);
    // Empty and exact-match paths both snapshot -- and the snapshot folds
    // in the never-ADVANCEd admission backlog.
    EXPECT_EQ(client.checkpoint(), opt.checkpoint_path);
    EXPECT_EQ(client.checkpoint(opt.checkpoint_path), opt.checkpoint_path);
    client.shutdown();
  }

  ServiceOptions opt2 = opt;
  opt2.resume = true;
  opt2.socket_path = socket_path("ckpol2");
  ServeProcess proc2(ISCOPE_SERVE_BIN, to_args(opt2));
  ASSERT_TRUE(proc2.wait_ready());
  Client client2(opt2.socket_path);
  EXPECT_EQ(client2.decide_now().tasks_admitted, tasks.size());
  std::vector<TimelineEvent> decisions;
  client2.drain(decisions);
  const ResultSummary summary = client2.result();
  client2.shutdown();
  std::remove(opt.checkpoint_path.c_str());
  expect_decisions_match(decisions, batch.timeline);
  expect_summary_matches(summary, batch);
}

TEST(ServiceE2E, CheckpointFrameWithoutTargetIsAnError) {
  const ServiceOptions opt = base_options("cknone");
  ServeProcess proc(ISCOPE_SERVE_BIN, to_args(opt));
  ASSERT_TRUE(proc.wait_ready());
  Client client(opt.socket_path);
  client.send_frame(MsgType::kCheckpoint, encode_text(""));
  EXPECT_EQ(client.recv_frame().type, MsgType::kErr);
  client.shutdown();
}

TEST(ServiceE2E, NewAdmissionsInvalidateCachedResult) {
  const ServiceOptions opt = base_options("reres");
  SimHost twin(opt);
  const std::vector<Task> tasks = make_workload(twin);
  ServeProcess proc(ISCOPE_SERVE_BIN, to_args(opt));
  ASSERT_TRUE(proc.wait_ready());
  Client client(opt.socket_path);
  ASSERT_EQ(client.admit(tasks[0]).type, MsgType::kAdmitOk);
  std::vector<TimelineEvent> decisions;
  const AdvanceDone drained = client.drain(decisions);
  const ResultSummary first = client.result();
  EXPECT_EQ(first.tasks_completed, 1u);

  // More work after a RESULT: the next drained RESULT must re-summarize,
  // not replay the stale cache. (Submit relative to the drained clock --
  // the last event can trail the makespan by up to an epoch.)
  Task later = tasks[1];
  later.submit_s = drained.now_s + 500.0;
  later.deadline_s = later.submit_s + 1.0e6;
  ASSERT_EQ(client.admit(later).type, MsgType::kAdmitOk);
  client.drain(decisions);
  const ResultSummary second = client.result();
  EXPECT_EQ(second.tasks_completed, 2u);
  EXPECT_GT(second.events_processed, first.events_processed);
  client.shutdown();
}

TEST(ServiceE2E, BackpressureEngagesAndClears) {
  ServiceOptions opt = base_options("busy");
  SimHost twin(opt);
  std::vector<Task> tasks = make_workload(twin);
  ASSERT_GE(tasks.size(), 6u);

  std::vector<std::string> args = to_args(opt);
  args.push_back("--admit-capacity");
  args.push_back("4");
  ServeProcess proc(ISCOPE_SERVE_BIN, args);
  ASSERT_TRUE(proc.wait_ready());
  Client client(opt.socket_path);
  for (std::size_t i = 0; i < 4; ++i)
    ASSERT_EQ(client.admit(tasks[i]).type, MsgType::kAdmitOk);
  EXPECT_EQ(client.admit(tasks[4]).type, MsgType::kBusy);
  // An advance injects the backlog into the simulator; admission reopens.
  std::vector<TimelineEvent> decisions;
  client.advance(0.0, decisions);
  EXPECT_EQ(client.admit(tasks[4]).type, MsgType::kAdmitOk);
  client.shutdown();
}

TEST(ServiceE2E, MalformedPayloadKeepsConnection) {
  const ServiceOptions opt = base_options("err");
  ServeProcess proc(ISCOPE_SERVE_BIN, to_args(opt));
  ASSERT_TRUE(proc.wait_ready());
  Client client(opt.socket_path);

  // Admitting into the past is a semantic error -> ERR, connection lives.
  Task t;
  t.id = 1;
  t.submit_s = -5.0;
  t.cpus = 1;
  t.runtime_s = 100.0;
  t.gamma = 0.5;
  t.deadline_s = 1000.0;
  EXPECT_EQ(client.admit(t).type, MsgType::kErr);

  // A NaN submit time dies in the payload parser -> ERR, connection lives.
  serial::Writer w;
  w.i64(1);
  w.f64(std::numeric_limits<double>::quiet_NaN());
  w.u64(1);
  w.f64(100.0);
  w.f64(0.5);
  w.f64(1000.0);
  w.u8(0);
  client.send_frame(MsgType::kAdmit, w.take());
  EXPECT_EQ(client.recv_frame().type, MsgType::kErr);

  // A truncated admit payload -> ERR, connection lives.
  serial::Writer w2;
  w2.i64(7);
  client.send_frame(MsgType::kAdmit, w2.take());
  EXPECT_EQ(client.recv_frame().type, MsgType::kErr);

  // Still healthy.
  EXPECT_EQ(client.hello().version, kProtoVersion);

  // A lying length prefix breaks framing -> ERR, then disconnect.
  const std::uint8_t huge[4] = {0xff, 0xff, 0xff, 0x7f};
  client.send_raw(huge, sizeof(huge));
  EXPECT_EQ(client.recv_frame().type, MsgType::kErr);
  EXPECT_TRUE(client.recv_eof());
}

TEST(ServiceE2E, ResultBeforeDrainIsAnError) {
  const ServiceOptions opt = base_options("early");
  SimHost twin(opt);
  const std::vector<Task> tasks = make_workload(twin);
  ServeProcess proc(ISCOPE_SERVE_BIN, to_args(opt));
  ASSERT_TRUE(proc.wait_ready());
  Client client(opt.socket_path);
  ASSERT_EQ(client.admit(tasks[0]).type, MsgType::kAdmitOk);
  client.send_frame(MsgType::kResult);
  EXPECT_EQ(client.recv_frame().type, MsgType::kErr);
  client.shutdown();
}

}  // namespace
}  // namespace iscope::service
