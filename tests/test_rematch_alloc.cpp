// Zero-allocation guarantee for the rematch hot path (DESIGN.md Sec. 9).
//
// Global operator new/delete are overridden to count heap allocations, and
// DatacenterSim::rematch_probe gates the counter so only allocations made
// *inside* rematch() windows are charged. The simulator is run twice on
// the same instance: the first run grows every reusable buffer (event
// heap, matcher views/scratch, power tables) to its high-water mark, and
// the second run must then perform zero heap allocations across all of
// its rematches -- including the very first.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "profiling/scanner.hpp"
#include "sim/simulator.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocs{0};

void count_alloc() {
  if (g_counting.load(std::memory_order_relaxed))
    g_allocs.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

// GCC's -Wmismatched-new-delete pairs the malloc inlined from the
// replaced operator new with the free inlined from the replaced deletes
// and flags a mismatch at callers; the replacement set is
// self-consistent, so the warning is a false positive here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  count_alloc();
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  count_alloc();
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace iscope {
namespace {

bool g_armed = false;

void rematch_window_probe(bool entering) {
  if (!g_armed) return;
  g_counting.store(entering, std::memory_order_relaxed);
}

std::vector<Task> make_tasks(std::size_t count, std::size_t max_width,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Task> tasks;
  tasks.reserve(count);
  double submit = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    submit += rng.uniform(0.0, 300.0);
    Task t;
    t.id = static_cast<std::int64_t>(i + 1);
    t.submit_s = submit;
    t.cpus = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(max_width)));
    t.runtime_s = rng.uniform(100.0, 1500.0);
    t.gamma = rng.uniform(0.3, 1.0);
    t.deadline_s = t.submit_s + t.runtime_s * rng.uniform(1.5, 8.0);
    tasks.push_back(t);
  }
  return tasks;
}

TEST(RematchAlloc, SteadyStateRematchIsAllocationFree) {
  const std::size_t n = 16;
  ClusterConfig ccfg;
  ccfg.num_processors = n;
  ccfg.seed = 5;
  const Cluster cluster = build_cluster(ccfg);
  ProfileDb db(n);
  {
    const Scanner scanner(&cluster, ScanConfig{});
    Rng rng(9);
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    scanner.scan_domain(all, 0.0, rng, db);
  }
  const auto tasks = make_tasks(50, n / 2, 77);

  // Wind level that crosses demand so phase-2 down-stepping runs too.
  Rng wind_rng(13);
  std::vector<double> watts;
  for (std::size_t i = 0; i < 200; ++i)
    watts.push_back(wind_rng.uniform(0.0, 400.0));
  const HybridSupply supply(SupplyTrace(Seconds{600.0}, std::move(watts)));

  SimConfig cfg;
  cfg.battery = BatteryConfig::make(/*capacity_kwh=*/1.0, /*power_kw=*/0.5);
  const Knowledge knowledge(&cluster, scheme_knowledge(Scheme::kScanEffi),
                            &db);
  DatacenterSim sim(&knowledge, scheme_rule(Scheme::kScanEffi), &supply, cfg);

  // Warm-up run: every reusable buffer reaches its high-water mark.
  const SimResult warm = sim.run(tasks);
  ASSERT_EQ(warm.tasks_completed, tasks.size());
  ASSERT_GT(warm.dvfs_rematch_count, 0u);

  // Counted run: no rematch may touch the heap.
  DatacenterSim::rematch_probe = &rematch_window_probe;
  g_armed = true;
  g_allocs.store(0, std::memory_order_relaxed);
  const SimResult counted = sim.run(tasks);
  g_armed = false;
  g_counting.store(false, std::memory_order_relaxed);
  DatacenterSim::rematch_probe = nullptr;

  EXPECT_EQ(counted.tasks_completed, tasks.size());
  EXPECT_EQ(counted.dvfs_rematch_count, warm.dvfs_rematch_count);
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), 0u)
      << "heap allocations inside rematch() on a warmed simulator";
}

}  // namespace
}  // namespace iscope
