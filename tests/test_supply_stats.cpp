#include "energy/supply_stats.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "energy/wind_model.hpp"

namespace iscope {
namespace {

TEST(SupplyStats, ConstantTrace) {
  const SupplyTrace t(Seconds{600.0}, std::vector<double>(10, 50.0));
  const SupplyStats s = compute_supply_stats(t);
  EXPECT_DOUBLE_EQ(s.mean_power.watts(), 50.0);
  EXPECT_DOUBLE_EQ(s.capacity_factor, 1.0);
  EXPECT_DOUBLE_EQ(s.mean_abs_ramp, 0.0);
  EXPECT_DOUBLE_EQ(s.calm_fraction, 0.0);
  EXPECT_EQ(s.calm_spells, 0u);
}

TEST(SupplyStats, SquareWaveSpells) {
  // 3 samples on, 3 off, repeated twice.
  std::vector<double> p = {90.0, 90.0, 90.0, 0.0, 0.0, 0.0,
                           90.0, 90.0, 90.0, 0.0, 0.0, 0.0};
  const SupplyStats s = compute_supply_stats(SupplyTrace(Seconds{600.0}, p));
  EXPECT_DOUBLE_EQ(s.mean_power.watts(), 45.0);
  EXPECT_DOUBLE_EQ(s.capacity_factor, 0.5);
  EXPECT_DOUBLE_EQ(s.calm_fraction, 0.5);
  EXPECT_EQ(s.calm_spells, 2u);
  EXPECT_DOUBLE_EQ(s.mean_calm_spell.seconds(), 1800.0);
  EXPECT_DOUBLE_EQ(s.longest_calm_spell.seconds(), 1800.0);
}

TEST(SupplyStats, RampsNormalizedByMean) {
  // Mean 50; single jump 0 -> 100: ramp = 2x mean.
  const SupplyTrace t(Seconds{600.0}, {0.0, 100.0});
  const SupplyStats s = compute_supply_stats(t);
  EXPECT_DOUBLE_EQ(s.mean_abs_ramp, 2.0);
}

TEST(SupplyStats, CalmSpellAtTraceEndCounted) {
  const SupplyTrace t(Seconds{600.0}, {100.0, 0.0, 0.0});
  const SupplyStats s = compute_supply_stats(t);
  EXPECT_EQ(s.calm_spells, 1u);
  EXPECT_DOUBLE_EQ(s.longest_calm_spell.seconds(), 1200.0);
}

TEST(SupplyStats, AutocorrelationOfAlternatingIsNegative) {
  std::vector<double> p;
  for (int i = 0; i < 100; ++i) p.push_back(i % 2 == 0 ? 100.0 : 0.0);
  const SupplyStats s = compute_supply_stats(SupplyTrace(Seconds{600.0}, p));
  EXPECT_LT(s.lag1_autocorrelation, -0.8);
}

TEST(SupplyStats, WindModelIsPersistentAndIntermittent) {
  const SupplyTrace t = generate_wind_days(WindFarmConfig{}, 14.0);
  const SupplyStats s = compute_supply_stats(t);
  // AR(1)-driven farm: strongly persistent step to step.
  EXPECT_GT(s.lag1_autocorrelation, 0.8);
  // Real-looking capacity factor for a good site (20-60%).
  EXPECT_GT(s.capacity_factor, 0.2);
  EXPECT_LT(s.capacity_factor, 0.7);
  // There are real calms, and they last hours, not single steps.
  EXPECT_GT(s.calm_spells, 0u);
  EXPECT_GT(s.mean_calm_spell.seconds(), 600.0);
}

TEST(SupplyStats, SummaryContainsHeadlineNumbers) {
  const SupplyTrace t(Seconds{600.0}, {0.0, 100.0, 100.0, 0.0});
  const std::string text = compute_supply_stats(t).summary();
  EXPECT_NE(text.find("capacity factor"), std::string::npos);
  EXPECT_NE(text.find("calms"), std::string::npos);
}

TEST(SupplyStats, Validation) {
  EXPECT_THROW(compute_supply_stats(SupplyTrace{}), InvalidArgument);
  const SupplyTrace t(Seconds{600.0}, {1.0});
  EXPECT_THROW(compute_supply_stats(t, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace iscope
