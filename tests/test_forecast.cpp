#include "energy/forecast.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/simulator.hpp"
#include "profiling/scanner.hpp"

#include <numeric>

namespace iscope {
namespace {

// Square-wave supply: 1 kW for the first hour, 0 for the second, repeat.
HybridSupply square_supply() {
  std::vector<double> p;
  for (int i = 0; i < 48; ++i) p.push_back((i / 6) % 2 == 0 ? 1000.0 : 0.0);
  return HybridSupply(SupplyTrace(Seconds{600.0}, std::move(p)));
}

TEST(Climatology, ReturnsGlobalMean) {
  const HybridSupply supply = square_supply();
  const ClimatologyForecaster f(&supply);
  EXPECT_NEAR(f.forecast_mean(Seconds{0.0}, Seconds{3600.0}).watts(), 500.0, 1e-9);
  EXPECT_NEAR(f.forecast_mean(Seconds{99999.0}, Seconds{60.0}).watts(), 500.0, 1e-9);
}

TEST(Climatology, UtilityOnlyIsZero) {
  const HybridSupply none;
  const ClimatologyForecaster f(&none);
  EXPECT_DOUBLE_EQ(f.forecast_mean(Seconds{0.0}, Seconds{3600.0}).watts(), 0.0);
}

TEST(Persistence, TracksCurrentValue) {
  const HybridSupply supply = square_supply();
  const PersistenceForecaster f(&supply);
  EXPECT_DOUBLE_EQ(f.forecast_mean(Seconds{0.0}, Seconds{3600.0}).watts(), 1000.0);    // windy now
  EXPECT_DOUBLE_EQ(f.forecast_mean(Seconds{3600.0}, Seconds{3600.0}).watts(), 0.0);    // calm now
}

TEST(Blended, InterpolatesPersistenceToClimatology) {
  const HybridSupply supply = square_supply();
  const BlendedForecaster f(&supply, /*decay=*/Seconds{1800.0});
  // Short horizon ~ persistence; long horizon ~ climatology.
  const double shortf = f.forecast_mean(Seconds{0.0}, Seconds{60.0}).watts();
  const double longf = f.forecast_mean(Seconds{0.0}, Seconds{24.0 * 3600.0}).watts();
  EXPECT_GT(shortf, 950.0);
  EXPECT_NEAR(longf, 500.0, 60.0);
  // During a calm the ordering flips.
  const double calm_short = f.forecast_mean(Seconds{3600.0}, Seconds{60.0}).watts();
  const double calm_long = f.forecast_mean(Seconds{3600.0}, Seconds{24.0 * 3600.0}).watts();
  EXPECT_LT(calm_short, 50.0);
  EXPECT_GT(calm_long, 400.0);
}

TEST(Oracle, IntegratesTheActualFuture) {
  const HybridSupply supply = square_supply();
  const OracleForecaster f(&supply);
  // First hour windy: mean over 1 h = 1000.
  EXPECT_NEAR(f.forecast_mean(Seconds{0.0}, Seconds{3600.0}).watts(), 1000.0, 1e-6);
  // Over 2 h (one windy + one calm) = 500.
  EXPECT_NEAR(f.forecast_mean(Seconds{0.0}, Seconds{7200.0}).watts(), 500.0, 1e-6);
  // Starting at the calm hour, 1 h ahead = 0.
  EXPECT_NEAR(f.forecast_mean(Seconds{3600.0}, Seconds{3600.0}).watts(), 0.0, 1e-6);
}

TEST(Oracle, PartialStepsWeighted) {
  const HybridSupply supply = square_supply();
  const OracleForecaster f(&supply);
  // 90 minutes from t=0: 60 windy + 30 calm -> 666.7.
  EXPECT_NEAR(f.forecast_mean(Seconds{0.0}, Seconds{5400.0}).watts(), 1000.0 * 60.0 / 90.0, 1e-6);
}

TEST(Forecasters, Validation) {
  EXPECT_THROW(ClimatologyForecaster(nullptr), InvalidArgument);
  EXPECT_THROW(PersistenceForecaster(nullptr), InvalidArgument);
  EXPECT_THROW(OracleForecaster(nullptr), InvalidArgument);
  const HybridSupply supply = square_supply();
  EXPECT_THROW(BlendedForecaster(&supply, Seconds{}), InvalidArgument);
  const PersistenceForecaster f(&supply);
  EXPECT_THROW(f.forecast_mean(Seconds{0.0}, Seconds{0.0}), InvalidArgument);
  EXPECT_THROW(f.forecast_mean(Seconds{-1.0}, Seconds{10.0}),
               InvalidArgument);
}

TEST(ForecastInSim, OracleNeverWorseThanBlindOnUtility) {
  // Informed deferral should not *increase* utility consumption compared
  // to blind deferral on a supply with long dead calms.
  ClusterConfig cfg;
  cfg.num_processors = 16;
  cfg.seed = 5;
  const Cluster cluster = build_cluster(cfg);
  ProfileDb db(cluster.size());
  const Scanner scanner(&cluster, ScanConfig{});
  Rng rng(3);
  std::vector<std::size_t> all(cluster.size());
  std::iota(all.begin(), all.end(), 0);
  scanner.scan_domain(all, 0.0, rng, db);
  const Knowledge knowledge(&cluster, KnowledgeSource::kScan, &db);

  // Wind that dies at t=2h and never returns.
  std::vector<double> p(12, 2000.0);
  p.resize(200, 0.0);
  const HybridSupply supply(SupplyTrace(Seconds{600.0}, std::move(p)), 1.0,
                            /*wrap=*/false);

  std::vector<Task> tasks;
  for (int i = 0; i < 30; ++i) {
    Task t;
    t.id = i;
    t.submit_s = 7200.0 + i * 200.0;  // all arrive after the wind dies
    t.cpus = 2;
    // Generous slack (>> kMinDeferSlackS) so blind Fair does defer.
    t.runtime_s = 1500.0;
    t.gamma = 1.0;
    t.deadline_s = t.submit_s + 12.0 * t.runtime_s;
    tasks.push_back(t);
  }

  const OracleForecaster oracle(&supply);
  DatacenterSim blind(&knowledge, PlacementRule::kFair, &supply, SimConfig{});
  DatacenterSim informed(&knowledge, PlacementRule::kFair, &supply,
                         SimConfig{}, &oracle);
  const SimResult b = blind.run(tasks);
  const SimResult o = informed.run(tasks);
  // The oracle knows the calm is permanent: it starts work immediately at
  // efficient operating points instead of deferring to the deadline edge.
  EXPECT_LE(o.energy.utility_kwh(), b.energy.utility_kwh() + 1e-9);
  EXPECT_LT(o.mean_wait.seconds(), b.mean_wait.seconds());
}

}  // namespace
}  // namespace iscope
