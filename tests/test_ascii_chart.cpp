#include "common/ascii_chart.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace iscope {
namespace {

TEST(AsciiChart, RendersMarksAndLegend) {
  ChartSeries s{"demand", {1.0, 2.0, 3.0, 2.0, 1.0}, '#'};
  const std::string out = render_chart({s});
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("# = demand"), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);  // axis corner
}

TEST(AsciiChart, HeightAndWidthRespected) {
  ChartSeries s{"x", {0.0, 1.0}, '*'};
  ChartOptions opts;
  opts.width = 20;
  opts.height = 6;
  const std::string out = render_chart({s}, opts);
  std::istringstream in(out);
  std::string line;
  std::size_t plot_rows = 0;
  while (std::getline(in, line))
    if (line.find('|') != std::string::npos) ++plot_rows;
  EXPECT_EQ(plot_rows, 6u);
}

TEST(AsciiChart, ConstantSeriesSitsOnOneRow) {
  ChartSeries s{"flat", std::vector<double>(50, 5.0), 'o'};
  ChartOptions opts;
  opts.y_min = 0.0;
  opts.y_max = 10.0;
  const std::string out = render_chart({s}, opts);
  // All marks on the same (middle) row.
  std::istringstream in(out);
  std::string line;
  std::size_t rows_with_marks = 0;
  while (std::getline(in, line)) {
    if (line.find('|') != std::string::npos &&
        line.find('o') != std::string::npos)
      ++rows_with_marks;
  }
  EXPECT_EQ(rows_with_marks, 1u);
}

TEST(AsciiChart, AutoScaleCoversMax) {
  ChartSeries s{"ramp", {0.0, 100.0}, '*'};
  const std::string out = render_chart({s});
  EXPECT_NE(out.find("100.0"), std::string::npos);
}

TEST(AsciiChart, MultipleSeriesShareAxis) {
  ChartSeries hi{"hi", std::vector<double>(10, 9.0), 'h'};
  ChartSeries lo{"lo", std::vector<double>(10, 1.0), 'l'};
  ChartOptions opts;
  opts.y_min = 0.0;
  opts.y_max = 10.0;
  const std::string out = render_chart({hi, lo}, opts);
  // 'h' appears above 'l'.
  EXPECT_LT(out.find('h'), out.find('l'));
}

TEST(AsciiChart, SeriesLongerThanWidthIsAveraged) {
  std::vector<double> long_series(1000, 3.0);
  ChartSeries s{"long", std::move(long_series), '*'};
  EXPECT_NO_THROW(render_chart({s}));
}

TEST(AsciiChart, Validation) {
  EXPECT_THROW(render_chart({}), InvalidArgument);
  ChartSeries empty{"e", {}, '*'};
  EXPECT_THROW(render_chart({empty}), InvalidArgument);
  ChartSeries ok{"ok", {1.0}, '*'};
  ChartOptions tiny;
  tiny.width = 2;
  EXPECT_THROW(render_chart({ok}, tiny), InvalidArgument);
}

TEST(AsciiChart, LabelsShown) {
  ChartSeries s{"s", {1.0, 2.0}, '*'};
  ChartOptions opts;
  opts.x_label = "time";
  opts.y_label = "power";
  const std::string out = render_chart({s}, opts);
  EXPECT_NE(out.find("time"), std::string::npos);
  EXPECT_NE(out.find("power"), std::string::npos);
}

}  // namespace
}  // namespace iscope
