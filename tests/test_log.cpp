// Logger suite: pluggable sinks, level thresholds, line atomicity under
// concurrent writers, and per-level telemetry counters.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/telemetry.hpp"

namespace iscope {
namespace {

/// Installs a capture sink for the test body and restores whatever was
/// active before, so suites never leak a dangling sink.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_sink_ = set_log_sink(&capture_);
    previous_level_ = log_level();
    telemetry::set_enabled(false);
  }
  void TearDown() override {
    set_log_sink(previous_sink_);
    set_log_level(previous_level_);
    telemetry::set_enabled(false);
    telemetry::reset_global_telemetry();
  }

  CaptureSink capture_;
  LogSink* previous_sink_ = nullptr;
  LogLevel previous_level_ = LogLevel::kWarn;
};

TEST_F(LogTest, LinesCarryLevelPrefixAndNewline) {
  set_log_level(LogLevel::kDebug);
  ISCOPE_DEBUG("dbg " << 1);
  ISCOPE_INFO("inf " << 2);
  ISCOPE_WARN("wrn " << 3);
  ISCOPE_ERROR("err " << 4);
  const std::vector<std::string> lines = capture_.lines();
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "[iscope DEBUG] dbg 1\n");
  EXPECT_EQ(lines[1], "[iscope INFO] inf 2\n");
  EXPECT_EQ(lines[2], "[iscope WARN] wrn 3\n");
  EXPECT_EQ(lines[3], "[iscope ERROR] err 4\n");
  EXPECT_EQ(capture_.text(), lines[0] + lines[1] + lines[2] + lines[3]);
}

TEST_F(LogTest, ThresholdFiltersBelowLevel) {
  set_log_level(LogLevel::kWarn);
  ISCOPE_DEBUG("dropped");
  ISCOPE_INFO("dropped");
  ISCOPE_WARN("kept");
  ISCOPE_ERROR("kept");
  EXPECT_EQ(capture_.lines().size(), 2u);

  capture_.clear();
  set_log_level(LogLevel::kOff);
  ISCOPE_ERROR("dropped too");
  EXPECT_EQ(capture_.lines().size(), 0u);
}

TEST_F(LogTest, SetLogSinkReturnsPreviousSink) {
  // The fixture installed capture_; swapping in another sink hands it back.
  CaptureSink other;
  EXPECT_EQ(set_log_sink(&other), &capture_);
  set_log_level(LogLevel::kInfo);
  ISCOPE_INFO("to other");
  EXPECT_EQ(capture_.lines().size(), 0u);
  ASSERT_EQ(other.lines().size(), 1u);

  // nullptr restores the default stderr sink (and returns `other`).
  EXPECT_EQ(set_log_sink(nullptr), &other);
  EXPECT_EQ(set_log_sink(&capture_), nullptr);
}

TEST_F(LogTest, ConcurrentLoggersNeverInterleaveMidLine) {
  set_log_level(LogLevel::kInfo);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kLines = 500;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      const std::string tag = "writer-" + std::to_string(t);
      for (std::size_t i = 0; i < kLines; ++i)
        ISCOPE_INFO(tag << " line " << i << " payload-abcdefghijklmnop");
    });
  }
  for (std::thread& t : threads) t.join();

  const std::vector<std::string> lines = capture_.lines();
  ASSERT_EQ(lines.size(), kThreads * kLines);
  // Every captured line must be exactly one complete record: the full
  // prefix, one tag, and the terminating newline with none embedded.
  for (const std::string& line : lines) {
    EXPECT_EQ(line.rfind("[iscope INFO] writer-", 0), 0u) << line;
    EXPECT_EQ(line.find('\n'), line.size() - 1) << line;
    EXPECT_NE(line.find("payload-abcdefghijklmnop\n"), std::string::npos)
        << line;
  }
}

TEST_F(LogTest, TelemetryCountsLinesPerLevel) {
#ifdef ISCOPE_TELEMETRY_OFF
  GTEST_SKIP() << "per-level counters compile out under ISCOPE_TELEMETRY_OFF";
#endif
  telemetry::set_enabled(true);
  set_log_level(LogLevel::kDebug);
  ISCOPE_INFO("one");
  ISCOPE_INFO("two");
  ISCOPE_WARN("three");
  ISCOPE_DEBUG("four");
  telemetry::set_enabled(false);
  ISCOPE_ERROR("not counted while disabled");

  const telemetry::Snapshot snap = telemetry::Registry::global().snapshot();
  EXPECT_DOUBLE_EQ(
      telemetry::snapshot_value(snap, "iscope_log_lines_total", {"INFO"}),
      2.0);
  EXPECT_DOUBLE_EQ(
      telemetry::snapshot_value(snap, "iscope_log_lines_total", {"WARN"}),
      1.0);
  EXPECT_DOUBLE_EQ(
      telemetry::snapshot_value(snap, "iscope_log_lines_total", {"DEBUG"}),
      1.0);
  EXPECT_DOUBLE_EQ(telemetry::snapshot_value(
                       snap, "iscope_log_lines_total", {"ERROR"}, 0.0),
                   0.0);
  // All five lines reached the sink regardless of the counter gate.
  EXPECT_EQ(capture_.lines().size(), 5u);
}

}  // namespace
}  // namespace iscope
