// Fixture: direct span construction and an uncached registry lookup inside
// a loop body. Two findings under any non-telemetry path.
#include "telemetry/telemetry.hpp"

namespace fixture {

void tick(iscope::telemetry::Registry& reg, int n) {
  iscope::telemetry::ScopedSpan span("fixture.tick");
  for (int i = 0; i < n; ++i) {
    reg.counter("fixture.ticks").increment();
  }
}

}  // namespace fixture
