// Fixture: every determinism ban fires (linted under a src/sim/ path).
#include <chrono>
#include <cstdlib>
#include <unordered_map>

namespace fixture {

int hash_order(const std::unordered_map<int, int>& m) {
  int sum = 0;
  for (const auto& [k, v] : m) sum += v;  // iteration order is per-process
  return sum;
}

double host_noise() {
  std::srand(42);
  const int r = rand();
  const auto t = std::chrono::system_clock::now();
  (void)t;
  return static_cast<double>(r) + static_cast<double>(time(nullptr));
}

}  // namespace fixture
