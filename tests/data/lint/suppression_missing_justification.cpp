// Fixture: a suppression with no justification text. The underlying
// determinism finding is suppressed, but the meta "suppression" check must
// fire on the bare allow().
#include <cstdlib>

namespace fixture {

int roll() {
  return std::rand();  // iscope-lint: allow(determinism)
}

}  // namespace fixture
