// Fixture: downward includes only (linted under a src/sim/ path), plus a
// telemetry include which is fine from a .cpp. Zero findings.
#include "sim/event_queue.hpp"

#include <vector>

#include "common/units.hpp"
#include "sched/policy.hpp"
#include "telemetry/telemetry.hpp"

namespace fixture {
int x() { return 2; }
}  // namespace fixture
