// Fixture: the typed counterpart -- Quantity<Dim> fields, named-unit
// accessor functions (suffixed *functions* are the sanctioned idiom, as in
// EnergySplit::wind_kwh()). Zero findings under src/energy/.
#pragma once

#include <vector>

#include "common/units.hpp"

namespace fixture {

struct Budget {
  std::vector<iscope::Watts> grant;
  iscope::Joules headroom;
  double wind_kwh() const { return headroom.kwh(); }
};

inline bool over(iscope::Watts demand, iscope::Watts limit) {
  return demand > limit;
}

}  // namespace fixture
