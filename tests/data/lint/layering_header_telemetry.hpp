// Fixture: a header (linted under src/sim/) including telemetry -- the
// cpp-only rule must fire even though sim may use telemetry from .cpp.
#pragma once

#include "telemetry/registry.hpp"

namespace fixture {
int y();
}  // namespace fixture
