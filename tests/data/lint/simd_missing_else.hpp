// Violation: a dispatch header whose ISCOPE_SIMD conditional has no
// #else branch -- a scalar build of an includer gets no code path.
#pragma once

#include <cstddef>

namespace iscope::soa {

#ifdef ISCOPE_SIMD
double sum_simd(const double* v, std::size_t n);

inline double sum(const double* v, std::size_t n) {
  return sum_simd(v, n);
}
#endif

}  // namespace iscope::soa
