// Fixture: a justified suppression on a line with nothing to suppress.
// The meta "suppression" check must flag it as unused.
#include <map>

namespace fixture {

// iscope-lint: allow(determinism) ordered map is already deterministic.
std::map<int, int> table;

}  // namespace fixture
