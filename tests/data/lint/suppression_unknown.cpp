// Fixture: allow() naming a check that does not exist. The meta check must
// flag the unknown name instead of silently ignoring it.
#include <cstdlib>

namespace fixture {

int roll() {
  return std::rand();  // iscope-lint: allow(entropy) dice need entropy.
}

}  // namespace fixture
