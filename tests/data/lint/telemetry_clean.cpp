// Fixture: the sanctioned idioms -- the ISCOPE_SPAN macro and a cached
// static Family reference hoisting the registry lookup out of the loop.
// Zero findings.
#include "telemetry/telemetry.hpp"

namespace fixture {

void tick(iscope::telemetry::Registry& reg, int n) {
  ISCOPE_SPAN("fixture.tick");
  static auto& ticks = reg.counter("fixture.ticks");
  for (int i = 0; i < n; ++i) {
    ticks.increment();
  }
  // Lookup outside any loop body is also fine.
  reg.gauge("fixture.last_n").set(static_cast<double>(n));
}

}  // namespace fixture
