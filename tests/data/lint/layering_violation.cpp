// Fixture: upward includes (linted under a src/power/ path). power sits
// below sim and sched in the module DAG, so both includes must fire.
#include "sim/simulator.hpp"

#include "common/units.hpp"
#include "sched/policy.hpp"

namespace fixture {
int x() { return 1; }
}  // namespace fixture
