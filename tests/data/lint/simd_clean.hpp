// Clean SIMD dispatch header: the ISCOPE_SIMD conditional carries an
// #else scalar fallback, and the kernel pair is complete in-file.
#pragma once

#include <cstddef>

namespace iscope::soa {

inline double sum_scalar(const double* v, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += v[i];
  return s;
}

#if defined(ISCOPE_SIMD)
double sum_simd(const double* v, std::size_t n);

inline double sum(const double* v, std::size_t n) {
  return sum_simd(v, n);
}
#else
inline double sum(const double* v, std::size_t n) {
  return sum_scalar(v, n);
}
#endif

}  // namespace iscope::soa
