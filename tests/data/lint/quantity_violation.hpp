// Fixture: suffix-typed raw doubles in a power/energy public header, plus
// a .raw() escape outside the hot-loop allowlist. Four findings: grant_w,
// headroom_j, the limit_w parameter, and the .raw() call.
#pragma once

#include <vector>

#include "common/units.hpp"

namespace fixture {

struct Budget {
  std::vector<double> grant_w;
  double headroom_j = 0.0;
};

inline bool over(iscope::Watts demand, double limit_w) {
  return demand.raw() > limit_w;
}

}  // namespace fixture
