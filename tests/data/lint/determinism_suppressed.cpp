// Fixture: the same clock read, suppressed with a justification -- the
// canonical telemetry-style escape. Must produce zero findings and report
// one suppression used.
#include <chrono>

namespace fixture {

double wall_epoch() {
  // iscope-lint: allow(determinism) host-clock span epoch; observability
  // output only, never simulation input.
  const auto t = std::chrono::steady_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}

}  // namespace fixture
