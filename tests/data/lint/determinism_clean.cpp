// Fixture: the deterministic counterparts -- ordered containers, seeded
// RNG, simulation clock. Must produce zero findings under src/sim/.
#include <map>

namespace fixture {

struct Rng {
  explicit Rng(unsigned seed) : state(seed) {}
  unsigned next() { return state = state * 1664525u + 1013904223u; }
  unsigned state;
};

int ordered_sum(const std::map<int, int>& m) {
  int sum = 0;
  for (const auto& [k, v] : m) sum += v;
  return sum;
}

double sim_time(double queue_now) {
  Rng rng(1234);
  // Member spellings that collide with banned call names must not fire.
  struct Clock {
    double time() const { return 0.0; }
  } clk;
  return queue_now + clk.time() + static_cast<double>(rng.next());
}

}  // namespace fixture
