// Fixture: the thermal module reaching UP the DAG (linted under a
// src/thermal/ path). thermal may see hardware/energy/power/variation/
// common only, so both of these must fire.
#include "sim/simulator.hpp"

#include "common/units.hpp"
#include "sched/policy.hpp"

namespace fixture {
int x() { return 3; }
}  // namespace fixture
