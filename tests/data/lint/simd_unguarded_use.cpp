// Violation: calls a *_simd kernel outside any ISCOPE_SIMD conditional
// and never names the *_scalar twin -- a scalar build has no tested
// fallback for this path.
#include <cstddef>

namespace iscope {

double sum_simd(const double* v, std::size_t n);

double total(const double* v, std::size_t n) {
  return sum_simd(v, n);
}

}  // namespace iscope
