// Fixture: the thermal module consuming only its allowed lower layers
// (linted under a src/thermal/ path). Zero findings.
#include "thermal/thermal.hpp"

#include <vector>

#include "common/error.hpp"
#include "energy/hybrid_supply.hpp"
#include "hardware/topology.hpp"

namespace fixture {
int x() { return 4; }
}  // namespace fixture
