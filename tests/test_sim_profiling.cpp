// In-band opportunistic profiling inside the simulator (paper Sec. III-C),
// plus the battery-in-simulator and rush-mode behaviours.
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "profiling/scanner.hpp"
#include "sim/simulator.hpp"

namespace iscope {
namespace {

struct Fixture {
  Cluster cluster;
  ProfileDb db;
  Knowledge knowledge;

  Fixture()
      : cluster(build_cluster([] {
          ClusterConfig cfg;
          cfg.num_processors = 8;
          cfg.seed = 77;
          return cfg;
        }())),
        db(cluster.size()),
        knowledge(&cluster, KnowledgeSource::kBin) {
    const Scanner scanner(&cluster, ScanConfig{});
    Rng rng(7);
    std::vector<std::size_t> all(cluster.size());
    std::iota(all.begin(), all.end(), 0);
    scanner.scan_domain(all, 0.0, rng, db);
  }
};

Task simple_task(std::int64_t id, double submit, std::size_t cpus,
                 double runtime, double deadline_mult = 12.0) {
  Task t;
  t.id = id;
  t.submit_s = submit;
  t.cpus = cpus;
  t.runtime_s = runtime;
  t.gamma = 1.0;
  t.deadline_s = submit + deadline_mult * runtime;
  return t;
}

ProfilingWindow window(double start, double duration,
                       std::vector<std::size_t> procs) {
  ProfilingWindow w;
  w.start_s = start;
  w.duration_s = duration;
  w.proc_ids = std::move(procs);
  return w;
}

TEST(SimProfiling, IdleProcessorsGetScanned) {
  Fixture f;
  const HybridSupply supply;
  DatacenterSim sim(&f.knowledge, PlacementRule::kRandom, &supply,
                    SimConfig{});
  // One small task; window targets processors guaranteed idle.
  const SimResult r = sim.run({simple_task(1, 0.0, 1, 100.0)},
                              {window(10.0, 300.0, {4, 5, 6})});
  EXPECT_EQ(r.profiling_procs_scanned, 3u);
  EXPECT_EQ(r.profiling_procs_skipped, 0u);
  EXPECT_NEAR(r.profiling_proc_seconds, 3.0 * 300.0, 1e-6);
}

TEST(SimProfiling, BusyProcessorsAreSkipped) {
  Fixture f;
  const HybridSupply supply;
  DatacenterSim sim(&f.knowledge, PlacementRule::kRandom, &supply,
                    SimConfig{});
  // A full-cluster task occupies everything when the window opens.
  const SimResult r = sim.run({simple_task(1, 0.0, 8, 1000.0)},
                              {window(100.0, 300.0, {0, 1, 2, 3})});
  EXPECT_EQ(r.profiling_procs_scanned, 0u);
  EXPECT_EQ(r.profiling_procs_skipped, 4u);
  EXPECT_EQ(r.tasks_completed, 1u);
}

TEST(SimProfiling, ScanPowerIsMetered) {
  Fixture f;
  const HybridSupply supply;
  DatacenterSim sim(&f.knowledge, PlacementRule::kRandom, &supply,
                    SimConfig{});
  const SimResult idle_run = sim.run({simple_task(1, 0.0, 1, 100.0)}, {});
  const SimResult scan_run = sim.run({simple_task(1, 0.0, 1, 100.0)},
                                     {window(0.0, 600.0, {5, 6, 7})});
  EXPECT_GT(scan_run.energy.total().joules(), idle_run.energy.total().joules());
}

TEST(SimProfiling, ReservedProcessorsNotSchedulable) {
  Fixture f;
  const HybridSupply supply;
  DatacenterSim sim(&f.knowledge, PlacementRule::kRandom, &supply,
                    SimConfig{});
  // Reserve 6 of 8 processors, then submit a 4-wide task during the
  // window: it must wait for the window to end.
  const SimResult r = sim.run({simple_task(1, 100.0, 4, 50.0)},
                              {window(0.0, 2000.0, {0, 1, 2, 3, 4, 5})});
  EXPECT_EQ(r.tasks_completed, 1u);
  EXPECT_GE(r.mean_wait.seconds(), 1900.0 - 100.0 - 1e-6);
}

TEST(SimProfiling, ProfilingOnlyRunDrains) {
  Fixture f;
  const HybridSupply supply;
  DatacenterSim sim(&f.knowledge, PlacementRule::kRandom, &supply,
                    SimConfig{});
  const SimResult r = sim.run({}, {window(0.0, 300.0, {0, 1})});
  EXPECT_EQ(r.tasks_completed, 0u);
  EXPECT_EQ(r.profiling_procs_scanned, 2u);
  EXPECT_GT(r.energy.total().joules(), 0.0);  // scan power was metered
}

TEST(SimProfiling, BadWindowThrows) {
  Fixture f;
  const HybridSupply supply;
  DatacenterSim sim(&f.knowledge, PlacementRule::kRandom, &supply,
                    SimConfig{});
  EXPECT_THROW(sim.run({}, {window(0.0, 0.0, {0})}), InvalidArgument);
}

// ------------------------------------------------------- battery in sim

TEST(SimBattery, BatteryCutsUtilityDraw) {
  Fixture f;
  // Strongly fluctuating wind: half the epochs windy, half calm.
  std::vector<double> pattern;
  for (int i = 0; i < 200; ++i) pattern.push_back(i % 2 == 0 ? 3000.0 : 0.0);
  const HybridSupply supply(SupplyTrace(Seconds{600.0}, pattern));

  std::vector<Task> tasks;
  for (int i = 0; i < 10; ++i)
    tasks.push_back(simple_task(i, i * 500.0, 2, 2000.0));

  SimConfig no_batt;
  SimConfig with_batt;
  with_batt.battery = BatteryConfig::make(50.0, 50.0);

  DatacenterSim sim_a(&f.knowledge, PlacementRule::kRandom, &supply, no_batt);
  DatacenterSim sim_b(&f.knowledge, PlacementRule::kRandom, &supply,
                      with_batt);
  const SimResult a = sim_a.run(tasks);
  const SimResult b = sim_b.run(tasks);

  EXPECT_GT(b.battery_delivered.kwh(), 0.0);
  EXPECT_LT(b.energy.utility_kwh(), a.energy.utility_kwh());
  // Losses are real: battery wind purchases exceed the delivered energy.
  EXPECT_GT(b.battery_losses.kwh(), 0.0);
}

TEST(SimBattery, NoBatteryFieldsAreZero) {
  Fixture f;
  const HybridSupply supply;
  DatacenterSim sim(&f.knowledge, PlacementRule::kRandom, &supply,
                    SimConfig{});
  const SimResult r = sim.run({simple_task(1, 0.0, 1, 100.0)});
  EXPECT_DOUBLE_EQ(r.battery_delivered.kwh(), 0.0);
  EXPECT_DOUBLE_EQ(r.battery_losses.kwh(), 0.0);
}

// ----------------------------------------------------------- rush mode

TEST(RushMode, StarvedForcedTaskSpeedsUpRunners) {
  Fixture f;
  const HybridSupply supply;
  // A long low-urgency task occupies the cluster; a tight task arrives
  // and is forced. Without rush the runner crawls at its energy-optimal
  // level; with rush it must finish at the top level, letting the forced
  // task meet (or nearly meet) its deadline.
  std::vector<Task> tasks = {simple_task(1, 0.0, 8, 2000.0, 12.0),
                             simple_task(2, 100.0, 8, 500.0, 5.2)};
  DatacenterSim sim(&f.knowledge, PlacementRule::kEfficiency, &supply,
                    SimConfig{});
  const SimResult r = sim.run(tasks);
  EXPECT_EQ(r.tasks_completed, 2u);
  // Task 1 at gamma=1 would take 2000 * (2.0/1.625) ~ 2460 s at its
  // energy-optimal level; rush forces it to finish in ~2000 s so task 2
  // can start by its latest start (100 + 2100 = 2200).
  EXPECT_EQ(r.deadline_misses, 0u);
}

// ------------------------------------------------------------ timeline

TEST(SimTimeline, RecordsLifecycleInOrder) {
  Fixture f;
  const HybridSupply supply;
  SimConfig cfg;
  cfg.record_timeline = true;
  DatacenterSim sim(&f.knowledge, PlacementRule::kRandom, &supply, cfg);
  const SimResult r = sim.run({simple_task(1, 50.0, 2, 300.0)},
                              {window(10.0, 100.0, {6, 7})});
  ASSERT_GE(r.timeline.size(), 5u);
  // Events are time-ordered.
  for (std::size_t i = 1; i < r.timeline.size(); ++i)
    EXPECT_GE(r.timeline[i].time_s, r.timeline[i - 1].time_s);
  // The lifecycle kinds all appear.
  auto has = [&](TimelineKind k) {
    for (const auto& e : r.timeline)
      if (e.kind == k) return true;
    return false;
  };
  EXPECT_TRUE(has(TimelineKind::kArrival));
  EXPECT_TRUE(has(TimelineKind::kStart));
  EXPECT_TRUE(has(TimelineKind::kCompletion));
  EXPECT_TRUE(has(TimelineKind::kProfilingBegin));
  EXPECT_TRUE(has(TimelineKind::kProfilingEnd));
}

TEST(SimTimeline, OffByDefault) {
  Fixture f;
  const HybridSupply supply;
  DatacenterSim sim(&f.knowledge, PlacementRule::kRandom, &supply,
                    SimConfig{});
  const SimResult r = sim.run({simple_task(1, 0.0, 1, 100.0)});
  EXPECT_TRUE(r.timeline.empty());
}

TEST(SimTimeline, MissEventCarriesLateness) {
  Fixture f;
  const HybridSupply supply;
  SimConfig cfg;
  cfg.record_timeline = true;
  DatacenterSim sim(&f.knowledge, PlacementRule::kRandom, &supply, cfg);
  // Two full-cluster tasks with tight deadlines: the second must be late.
  const SimResult r = sim.run({simple_task(1, 0.0, 8, 1000.0, 1.2),
                               simple_task(2, 0.0, 8, 1000.0, 1.2)});
  EXPECT_GE(r.deadline_misses, 1u);
  bool found = false;
  for (const auto& e : r.timeline) {
    if (e.kind == TimelineKind::kDeadlineMiss) {
      EXPECT_GT(e.value, 0.0);  // lateness
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace iscope
