// Unit suite for iscope_lint (tools/lint/, DESIGN.md Sec. 13).
//
// Strategy: every check is exercised three ways --
//
//  1. a violating fixture (tests/data/lint/) must fire, with pinned lines;
//  2. its clean counterpart must stay quiet;
//  3. scope boundaries are probed by linting the SAME content under a
//     different virtual path (analyze_source takes the path as data, so a
//     bench/ copy of a src/ violation proves the scoping, not a second
//     fixture).
//
// On top of that: suppression round-trips (used / unjustified / unused /
// unknown-name), lexer corner cases (violations hidden in comments and
// string literals must NOT fire), the JSON report schema pinned via the
// in-repo JSON reader, and baseline subtraction semantics. The full-tree
// clean run is a separate ctest (test_lint_tree) registered by
// tools/lint/CMakeLists.txt.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "checks.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "lexer.hpp"
#include "lint.hpp"

namespace iscope::lint {
namespace {

std::string fixture(const std::string& name) {
  const std::string path =
      std::string(ISCOPE_TEST_DATA_DIR) + "/lint/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Lint a fixture under a virtual repo path (the path drives all scoping).
AnalysisResult lint_as(const std::string& virtual_path,
                       const std::string& fixture_name) {
  return analyze_source(virtual_path, fixture(fixture_name));
}

int count_check(const AnalysisResult& r, const std::string& check) {
  return static_cast<int>(
      std::count_if(r.findings.begin(), r.findings.end(),
                    [&](const Finding& f) { return f.check == check; }));
}

std::vector<int> lines_of(const AnalysisResult& r) {
  std::vector<int> lines;
  for (const Finding& f : r.findings) lines.push_back(f.line);
  return lines;
}

// --- lexer ---------------------------------------------------------------

TEST(LintLexer, BannedNamesInCommentsAndStringsDoNotTokenize) {
  const auto lx = lex(
      "int a;  // unordered_map rand() system_clock\n"
      "const char* s = \"std::rand()\";\n"
      "const char* r = R\"(time(nullptr))\";\n");
  for (const Token& t : lx.tokens) {
    EXPECT_NE(t.text, "unordered_map");
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "time");
  }
  ASSERT_EQ(lx.comments.size(), 1u);
  EXPECT_FALSE(lx.comments[0].own_line);  // code precedes it on the line
}

TEST(LintLexer, DirectiveContinuationsFoldIntoOneToken) {
  const auto lx = lex("#include \\\n  \"sim/event_queue.hpp\"\nint x;\n");
  ASSERT_FALSE(lx.tokens.empty());
  EXPECT_EQ(lx.tokens[0].kind, Tok::kDirective);
  EXPECT_NE(lx.tokens[0].text.find("sim/event_queue.hpp"),
            std::string::npos);
  // The folded directive is one token on line 1; `int` follows on line 3.
  EXPECT_EQ(lx.tokens[0].line, 1);
  ASSERT_GE(lx.tokens.size(), 2u);
  EXPECT_EQ(lx.tokens[1].text, "int");
  EXPECT_EQ(lx.tokens[1].line, 3);
}

TEST(LintLexer, MultiCharPunctuatorsSurvive) {
  const auto lx = lex("a->b; c::d;");
  std::vector<std::string> puncts;
  for (const Token& t : lx.tokens)
    if (t.kind == Tok::kPunct) puncts.push_back(t.text);
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "->"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "::"), puncts.end());
}

// --- catalog -------------------------------------------------------------

TEST(LintCatalog, SixChecksAndKnownCheckAgree) {
  const auto& cat = check_catalog();
  ASSERT_EQ(cat.size(), 6u);
  for (const CheckInfo& c : cat) EXPECT_TRUE(known_check(c.name));
  EXPECT_FALSE(known_check("entropy"));
  EXPECT_FALSE(known_check(""));
}

// --- determinism ---------------------------------------------------------

TEST(LintDeterminism, ViolationFixtureFiresOnEveryBan) {
  const auto r =
      lint_as("src/sim/determinism_violation.cpp", "determinism_violation.cpp");
  EXPECT_EQ(count_check(r, "determinism"), 5);
  EXPECT_EQ(static_cast<int>(r.findings.size()), 5);
  // unordered_map, srand, rand(), system_clock, time(nullptr).
  EXPECT_EQ(lines_of(r), (std::vector<int>{8, 15, 16, 17, 19}));
}

TEST(LintDeterminism, CleanFixtureIsQuiet) {
  const auto r =
      lint_as("src/sim/determinism_clean.cpp", "determinism_clean.cpp");
  EXPECT_TRUE(r.findings.empty())
      << r.findings[0].message << " at line " << r.findings[0].line;
}

TEST(LintDeterminism, ScopeIsSrcOnly) {
  // Benches and tests time things on purpose: the same content that fires
  // five findings under src/ must be silent under bench/ and tests/.
  const auto bench =
      lint_as("bench/determinism_violation.cpp", "determinism_violation.cpp");
  const auto tests =
      lint_as("tests/determinism_violation.cpp", "determinism_violation.cpp");
  EXPECT_TRUE(bench.findings.empty());
  EXPECT_TRUE(tests.findings.empty());
}

TEST(LintDeterminism, JustifiedSuppressionSilencesAndCounts) {
  const auto r =
      lint_as("src/sim/determinism_suppressed.cpp", "determinism_suppressed.cpp");
  EXPECT_TRUE(r.findings.empty())
      << r.findings[0].check << ": " << r.findings[0].message;
  EXPECT_EQ(r.suppressions_used, 1);
}

TEST(LintDeterminism, MemberCallsWithColidingNamesDoNotFire) {
  const auto r = analyze_source(
      "src/sim/x.cpp", "double f(Queue& q) { return q.time() + q.clock(); }");
  EXPECT_TRUE(r.findings.empty());
}

// --- layering ------------------------------------------------------------

TEST(LintLayering, UpwardIncludesFire) {
  const auto r =
      lint_as("src/power/layering_violation.cpp", "layering_violation.cpp");
  EXPECT_EQ(count_check(r, "layering"), 2);
  EXPECT_EQ(lines_of(r), (std::vector<int>{3, 6}));  // sim/, sched/
  for (const Finding& f : r.findings)
    EXPECT_NE(f.message.find("module DAG"), std::string::npos);
}

TEST(LintLayering, DownwardIncludesAndCppTelemetryAreQuiet) {
  const auto r = lint_as("src/sim/layering_clean.cpp", "layering_clean.cpp");
  EXPECT_TRUE(r.findings.empty())
      << r.findings[0].message << " at line " << r.findings[0].line;
}

TEST(LintLayering, TelemetryFromHeaderFiresButCppIsFine) {
  const auto hdr = lint_as("src/sim/layering_header_telemetry.hpp",
                           "layering_header_telemetry.hpp");
  EXPECT_EQ(count_check(hdr, "layering"), 1);
  ASSERT_FALSE(hdr.findings.empty());
  EXPECT_EQ(hdr.findings[0].line, 5);
  EXPECT_NE(hdr.findings[0].message.find(".cpp files only"),
            std::string::npos);
  // Identical content as an implementation file: telemetry is a sink any
  // module may consume from .cpp.
  const auto cpp = lint_as("src/sim/layering_header_telemetry.cpp",
                           "layering_header_telemetry.hpp");
  EXPECT_TRUE(cpp.findings.empty());
}

TEST(LintLayering, ThermalMayNotReachUpIntoSimOrSched) {
  const auto r = lint_as("src/thermal/thermal_layering_violation.cpp",
                         "thermal_layering_violation.cpp");
  EXPECT_EQ(count_check(r, "layering"), 2);
  EXPECT_EQ(lines_of(r), (std::vector<int>{4, 7}));  // sim/, sched/
}

TEST(LintLayering, ThermalOverItsAllowedLayersIsQuiet) {
  const auto r = lint_as("src/thermal/thermal_layering_clean.cpp",
                         "thermal_layering_clean.cpp");
  EXPECT_TRUE(r.findings.empty())
      << r.findings[0].message << " at line " << r.findings[0].line;
}

TEST(LintLayering, OnlySimMayLookIntoThermal) {
  // sim is the sole consumer of thermal in the DAG; the same include from
  // a lower module fires.
  const std::string src = "#include \"thermal/thermal.hpp\"\n";
  EXPECT_TRUE(analyze_source("src/sim/x.cpp", src).findings.empty());
  EXPECT_EQ(count_check(analyze_source("src/energy/x.cpp", src), "layering"),
            1);
  EXPECT_EQ(count_check(analyze_source("src/hardware/x.cpp", src),
                        "layering"),
            1);
}

TEST(LintLayering, NonModuleIncludesAreIgnored) {
  const auto r = analyze_source("src/power/x.cpp",
                                "#include <vector>\n"
                                "#include \"third_party/header.hpp\"\n");
  EXPECT_TRUE(r.findings.empty());
}

// --- quantity ------------------------------------------------------------

TEST(LintQuantity, SuffixedDoublesAndStrayRawFire) {
  const auto r =
      lint_as("src/power/quantity_violation.hpp", "quantity_violation.hpp");
  EXPECT_EQ(count_check(r, "quantity"), 4);
  // grant_w, headroom_j, limit_w param, .raw().
  EXPECT_EQ(lines_of(r), (std::vector<int>{13, 14, 17, 18}));
}

TEST(LintQuantity, TypedHeaderIsQuiet) {
  // Includes `double wind_kwh() const` -- suffixed *accessor functions*
  // are the sanctioned naming idiom and must not fire.
  const auto r =
      lint_as("src/energy/quantity_clean.hpp", "quantity_clean.hpp");
  EXPECT_TRUE(r.findings.empty())
      << r.findings[0].message << " at line " << r.findings[0].line;
}

TEST(LintQuantity, SuffixScopeIsPowerEnergyHeadersOnly) {
  // Same violating content under a sched header: only the .raw() escape
  // remains in scope (suffix doubles are sim-time idiom elsewhere).
  const auto sched =
      lint_as("src/sched/quantity_violation.hpp", "quantity_violation.hpp");
  EXPECT_EQ(count_check(sched, "quantity"), 1);
  ASSERT_EQ(sched.findings.size(), 1u);
  EXPECT_NE(sched.findings[0].message.find(".raw()"), std::string::npos);
  // And under a power .cpp the suffix check (headers-only) stays off too.
  const auto cpp =
      lint_as("src/power/quantity_violation.cpp", "quantity_violation.hpp");
  EXPECT_EQ(count_check(cpp, "quantity"), 1);
}

TEST(LintQuantity, RawAllowlistedHotLoopFileIsQuiet) {
  const std::string snippet =
      "#include \"common/units.hpp\"\n"
      "double f(iscope::Watts w) { return w.raw() * 2.0; }\n";
  const auto hot = analyze_source("src/energy/reconcile.cpp", snippet);
  EXPECT_TRUE(hot.findings.empty());
  const auto cold = analyze_source("src/energy/other.cpp", snippet);
  EXPECT_EQ(count_check(cold, "quantity"), 1);
}

// --- simd ----------------------------------------------------------------

TEST(LintSimd, DispatchHeaderWithFallbackIsQuiet) {
  const auto r = lint_as("src/sched/simd_clean.hpp", "simd_clean.hpp");
  EXPECT_TRUE(r.findings.empty())
      << r.findings[0].message << " at line " << r.findings[0].line;
}

TEST(LintSimd, HeaderConditionalWithoutElseFires) {
  const auto r =
      lint_as("src/sched/simd_missing_else.hpp", "simd_missing_else.hpp");
  EXPECT_EQ(count_check(r, "simd"), 1);
  EXPECT_EQ(lines_of(r), (std::vector<int>{9}));
  EXPECT_NE(r.findings[0].message.find("#else"), std::string::npos);
}

TEST(LintSimd, MissingElseRuleIsHeadersOnly) {
  // The same content as a .cpp is a SIMD-only implementation TU (empty in
  // scalar builds, like soa_kernels.cpp) -- sanctioned.
  const auto r =
      lint_as("src/sched/simd_missing_else.cpp", "simd_missing_else.hpp");
  EXPECT_EQ(count_check(r, "simd"), 0);
}

TEST(LintSimd, UnguardedSimdUseWithoutScalarTwinFires) {
  // Both the declaration and the call sit outside any ISCOPE_SIMD region
  // with no *_scalar sibling in the file.
  const auto r =
      lint_as("src/sched/simd_unguarded_use.cpp", "simd_unguarded_use.cpp");
  EXPECT_EQ(count_check(r, "simd"), 2);
  EXPECT_EQ(lines_of(r), (std::vector<int>{8, 11}));
  EXPECT_NE(r.findings[0].message.find("sum_scalar"), std::string::npos);
}

TEST(LintSimd, ScalarTwinInFileSilencesUnguardedUse) {
  const auto r = analyze_source(
      "src/sched/x.cpp",
      "double sum_simd(const double* v, int n);\n"
      "double sum_scalar(const double* v, int n);\n"
      "double total(const double* v, int n) { return sum_simd(v, n); }\n");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintSimd, GuardedUseNeedsNoTwin) {
  const auto r = analyze_source(
      "src/sched/x.cpp",
      "#if defined(ISCOPE_SIMD)\n"
      "double sum_simd(const double* v, int n);\n"
      "double total(const double* v, int n) { return sum_simd(v, n); }\n"
      "#endif\n");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintSimd, InverseGuardNeedsNoElse) {
  // #ifndef ISCOPE_SIMD opens the *scalar* branch first; no #else means
  // scalar-only code, which is always a complete path.
  const auto r = analyze_source(
      "src/sched/x.hpp",
      "#ifndef ISCOPE_SIMD\n"
      "inline double sum(const double* v, int n) { return v[0] + n; }\n"
      "#endif\n");
  EXPECT_EQ(count_check(r, "simd"), 0);
}

TEST(LintSimd, ScopeIsSrcOnly) {
  const auto r = lint_as("bench/simd_unguarded_use.cpp",
                         "simd_unguarded_use.cpp");
  EXPECT_TRUE(r.findings.empty());
}

// --- telemetry -----------------------------------------------------------

TEST(LintTelemetry, DirectSpanAndLoopLookupFire) {
  const auto r =
      lint_as("src/sim/telemetry_violation.cpp", "telemetry_violation.cpp");
  EXPECT_EQ(count_check(r, "telemetry"), 2);
  EXPECT_EQ(lines_of(r), (std::vector<int>{8, 10}));
  EXPECT_NE(r.findings[0].message.find("ISCOPE_SPAN"), std::string::npos);
  EXPECT_NE(r.findings[1].message.find("cached cell"), std::string::npos);
}

TEST(LintTelemetry, MacroSpanAndCachedCellAreQuiet) {
  const auto r =
      lint_as("src/sim/telemetry_clean.cpp", "telemetry_clean.cpp");
  EXPECT_TRUE(r.findings.empty())
      << r.findings[0].message << " at line " << r.findings[0].line;
}

TEST(LintTelemetry, TheSubsystemItselfIsExempt) {
  const auto r = lint_as("src/telemetry/telemetry_violation.cpp",
                         "telemetry_violation.cpp");
  EXPECT_EQ(count_check(r, "telemetry"), 0);
}

TEST(LintTelemetry, UnbracedLoopBodyIsStillALoop) {
  const auto r = analyze_source(
      "src/sim/x.cpp",
      "void f(Reg& reg, int n) {\n"
      "  for (int i = 0; i < n; ++i) reg.counter(\"x\").increment();\n"
      "}\n");
  EXPECT_EQ(count_check(r, "telemetry"), 1);
}

TEST(LintTelemetry, StaticCacheInsideLoopIsQuiet) {
  // The cached-cell idiom hoists the hash to first execution; a static
  // in the loop body is therefore fine.
  const auto r = analyze_source(
      "src/sim/x.cpp",
      "void f(Reg& reg, int n) {\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    static auto& c = reg.counter(\"x\");\n"
      "    c.increment();\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintTelemetry, LookupOutsideLoopsIsQuiet) {
  const auto r = analyze_source(
      "src/sim/x.cpp",
      "void f(Reg& reg) { reg.gauge(\"x\").set(1.0); }\n");
  EXPECT_TRUE(r.findings.empty());
}

// --- suppression meta-check ----------------------------------------------

TEST(LintSuppression, MissingJustificationIsFlagged) {
  const auto r = lint_as("src/sim/suppression_missing_justification.cpp",
                         "suppression_missing_justification.cpp");
  // The rand() finding itself IS suppressed...
  EXPECT_EQ(count_check(r, "determinism"), 0);
  EXPECT_EQ(r.suppressions_used, 1);
  // ...but the bare allow() draws a meta-finding.
  ASSERT_EQ(count_check(r, "suppression"), 1);
  EXPECT_NE(r.findings[0].message.find("justification"), std::string::npos);
}

TEST(LintSuppression, UnusedSuppressionIsFlagged) {
  const auto r =
      lint_as("src/sim/suppression_unused.cpp", "suppression_unused.cpp");
  EXPECT_EQ(r.suppressions_used, 0);
  ASSERT_EQ(count_check(r, "suppression"), 1);
  EXPECT_NE(r.findings[0].message.find("unused"), std::string::npos);
}

TEST(LintSuppression, UnknownCheckNameIsFlaggedAndDoesNotSuppress) {
  const auto r =
      lint_as("src/sim/suppression_unknown.cpp", "suppression_unknown.cpp");
  // allow(entropy) suppresses nothing: the determinism finding survives,
  // and the unknown name draws its own meta-finding.
  EXPECT_EQ(count_check(r, "determinism"), 1);
  EXPECT_EQ(count_check(r, "suppression"), 1);
  EXPECT_EQ(r.suppressions_used, 0);
}

TEST(LintSuppression, OwnLineCommentTargetsNextCodeLine) {
  const auto r = analyze_source(
      "src/sim/x.cpp",
      "// iscope-lint: allow(determinism) wall-clock for the log banner\n"
      "// only; the value never feeds the simulation.\n"
      "auto t = std::chrono::system_clock::now();\n");
  EXPECT_TRUE(r.findings.empty())
      << r.findings[0].check << ": " << r.findings[0].message;
  EXPECT_EQ(r.suppressions_used, 1);
}

TEST(LintSuppression, SameLineCommentTargetsItsOwnLine) {
  const auto r = analyze_source(
      "src/sim/x.cpp",
      "int a = rand();  // iscope-lint: allow(determinism) fixture only\n"
      "int b = rand();\n");
  EXPECT_EQ(count_check(r, "determinism"), 1);
  ASSERT_FALSE(r.findings.empty());
  EXPECT_EQ(r.findings[0].line, 2);  // line 1 suppressed, line 2 survives
  EXPECT_EQ(r.suppressions_used, 1);
}

// --- JSON report ---------------------------------------------------------

TEST(LintReport, JsonSchemaIsPinned) {
  Report report;
  report.files_scanned = 3;
  report.suppressions_used = 2;
  report.findings.push_back(Finding{
      "determinism", "src/sim/x.cpp", 12, "call to 'rand()' reads host "
      "state; a \"quoted\" bit to exercise escaping"});
  const std::string text = to_json(report, "/root/repo");

  const json::Value doc = json::parse(text);
  ASSERT_TRUE(doc.is(json::Value::Kind::kObject));
  EXPECT_EQ(json::check_key(doc, "schema_version",
                            json::Value::Kind::kNumber), "");
  EXPECT_EQ(json::find(doc, "schema_version")->number, 1.0);
  EXPECT_EQ(json::find(doc, "tool")->string, "iscope_lint");
  EXPECT_EQ(json::find(doc, "files_scanned")->number, 3.0);
  EXPECT_EQ(json::find(doc, "suppressions_used")->number, 2.0);

  const json::Value* counts = json::find(doc, "counts");
  ASSERT_NE(counts, nullptr);
  ASSERT_TRUE(counts->is(json::Value::Kind::kObject));
  // One bucket per catalog check, even when zero.
  EXPECT_EQ(counts->object.size(), check_catalog().size());
  EXPECT_EQ(json::find(*counts, "determinism")->number, 1.0);
  EXPECT_EQ(json::find(*counts, "layering")->number, 0.0);

  const json::Value* findings = json::find(doc, "findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_TRUE(findings->is(json::Value::Kind::kArray));
  ASSERT_EQ(findings->array.size(), 1u);
  const json::Value& f = findings->array[0];
  EXPECT_EQ(json::check_key(f, "check", json::Value::Kind::kString), "");
  EXPECT_EQ(json::check_key(f, "file", json::Value::Kind::kString), "");
  EXPECT_EQ(json::check_key(f, "line", json::Value::Kind::kNumber), "");
  EXPECT_EQ(json::check_key(f, "message", json::Value::Kind::kString), "");
  EXPECT_EQ(json::find(f, "line")->number, 12.0);
}

TEST(LintReport, EmptyReportStillParses) {
  const Report report;
  const json::Value doc = json::parse(to_json(report, "."));
  EXPECT_EQ(json::find(doc, "findings")->array.size(), 0u);
}

// --- baseline subtraction ------------------------------------------------

Report two_finding_report() {
  Report report;
  report.findings.push_back(
      Finding{"quantity", "src/power/a.cpp", 10, "stray raw"});
  report.findings.push_back(
      Finding{"layering", "src/power/b.cpp", 20, "upward include"});
  return report;
}

TEST(LintBaseline, MatchesOnCheckFileMessageIgnoringLine) {
  Report report = two_finding_report();
  // Baselined at a DIFFERENT line: edits above a known finding must not
  // churn the baseline.
  const std::string baseline =
      "{\"schema_version\": 1, \"findings\": ["
      "{\"check\": \"quantity\", \"file\": \"src/power/a.cpp\","
      " \"line\": 99, \"message\": \"stray raw\"}]}";
  subtract_baseline(report, baseline);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].check, "layering");
}

TEST(LintBaseline, EmptyBaselineRemovesNothing) {
  Report report = two_finding_report();
  subtract_baseline(report,
                    "{\"schema_version\": 1, \"findings\": []}");
  EXPECT_EQ(report.findings.size(), 2u);
}

TEST(LintBaseline, DifferentMessageDoesNotMatch) {
  Report report = two_finding_report();
  const std::string baseline =
      "{\"schema_version\": 1, \"findings\": ["
      "{\"check\": \"quantity\", \"file\": \"src/power/a.cpp\","
      " \"line\": 10, \"message\": \"some other text\"}]}";
  subtract_baseline(report, baseline);
  EXPECT_EQ(report.findings.size(), 2u);
}

TEST(LintBaseline, MalformedBaselineThrows) {
  Report report = two_finding_report();
  EXPECT_THROW(subtract_baseline(report, "{not json"), iscope::ParseError);
}

// --- committed baseline stays empty at merge ------------------------------

TEST(LintBaseline, CommittedBaselineIsEmpty) {
  std::ifstream in(std::string(ISCOPE_LINT_BASELINE));
  ASSERT_TRUE(in.good()) << "missing " << ISCOPE_LINT_BASELINE;
  std::ostringstream ss;
  ss << in.rdbuf();
  const json::Value doc = json::parse(ss.str());
  const json::Value* findings = json::find(doc, "findings");
  ASSERT_NE(findings, nullptr);
  EXPECT_TRUE(findings->array.empty())
      << "tools/lint/baseline.json must be empty at merge; fix or "
         "suppress the findings instead of baselining them";
}

}  // namespace
}  // namespace iscope::lint
