#include "variation/gaussian_field.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace iscope {
namespace {

TEST(SphericalCorrelation, BoundaryValues) {
  const GaussianField f(quad_core_layout(), 0.5);
  EXPECT_DOUBLE_EQ(f.correlation(0.0), 1.0);
  EXPECT_DOUBLE_EQ(f.correlation(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f.correlation(1.0), 0.0);
}

TEST(SphericalCorrelation, MonotoneDecreasing) {
  const GaussianField f(quad_core_layout(), 0.5);
  double prev = 1.0;
  for (double d = 0.05; d < 0.5; d += 0.05) {
    const double c = f.correlation(d);
    EXPECT_LT(c, prev);
    EXPECT_GE(c, 0.0);
    prev = c;
  }
}

TEST(GaussianField, SampleSizeMatchesGrid) {
  const DieLayout layout{8, 8, 2, 2};
  const GaussianField f(layout, 0.5);
  Rng rng(1);
  EXPECT_EQ(f.sample(rng).size(), 64u);
}

TEST(GaussianField, MarginalsAreStandardNormal) {
  const GaussianField f(quad_core_layout(), 0.5);
  Rng rng(2);
  RunningStats s;
  for (int i = 0; i < 400; ++i)
    for (const double v : f.sample(rng)) s.add(v);
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.variance(), 1.0, 0.05);
}

TEST(GaussianField, NearbyPointsMoreCorrelatedThanFar) {
  const DieLayout layout{8, 8, 2, 2};
  const GaussianField f(layout, 0.5);
  Rng rng(3);
  // Empirical correlation between neighbors (0,1) and far corners (0,63).
  double near_sum = 0.0, far_sum = 0.0;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    const auto s = f.sample(rng);
    near_sum += s[0] * s[1];
    far_sum += s[0] * s[63];
  }
  EXPECT_GT(near_sum / n, 0.5);
  EXPECT_LT(std::abs(far_sum / n), 0.15);
}

TEST(GaussianField, Deterministic) {
  const GaussianField f(quad_core_layout(), 0.5);
  Rng a(7), b(7);
  EXPECT_EQ(f.sample(a), f.sample(b));
}

TEST(GaussianField, CoreMeansAverageRegions) {
  const DieLayout layout{2, 2, 2, 2};  // one grid point per core
  const GaussianField f(layout, 0.5);
  const std::vector<double> field = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(f.core_means(field), field);
}

TEST(GaussianField, CoreMeansAveragesMultiplePoints) {
  const DieLayout layout{4, 4, 2, 2};  // 2x2 grid points per core
  const GaussianField f(layout, 0.5);
  std::vector<double> field(16, 0.0);
  // Top-left core covers grid (0,0),(1,0),(0,1),(1,1) = indices 0,1,4,5.
  field[0] = 4.0;
  field[1] = 0.0;
  field[4] = 0.0;
  field[5] = 0.0;
  const auto means = f.core_means(field);
  EXPECT_DOUBLE_EQ(means[0], 1.0);
  EXPECT_DOUBLE_EQ(means[3], 0.0);
}

TEST(GaussianField, CoreMeansSizeValidation) {
  const GaussianField f(quad_core_layout(), 0.5);
  EXPECT_THROW(f.core_means(std::vector<double>(3)), InvalidArgument);
}

TEST(GaussianField, WiderPhiMeansMoreCoreCorrelation) {
  const DieLayout layout{8, 8, 2, 2};
  const GaussianField tight(layout, 0.2);
  const GaussianField wide(layout, 1.2);
  Rng r1(4), r2(4);
  double tight_c = 0.0, wide_c = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const auto ct = tight.core_means(tight.sample(r1));
    const auto cw = wide.core_means(wide.sample(r2));
    tight_c += ct[0] * ct[3];  // diagonal cores
    wide_c += cw[0] * cw[3];
  }
  EXPECT_GT(wide_c / n, tight_c / n);
}

TEST(GaussianField, InvalidParams) {
  EXPECT_THROW(GaussianField(quad_core_layout(), 0.0), InvalidArgument);
  EXPECT_THROW(GaussianField(quad_core_layout(), 0.5, -1.0), InvalidArgument);
  DieLayout bad{7, 8, 2, 2};  // 7 not divisible by 2
  EXPECT_THROW(GaussianField(bad, 0.5), InvalidArgument);
}

TEST(DieLayout, Accessors) {
  const DieLayout l{8, 4, 4, 2};
  EXPECT_EQ(l.grid_points(), 32u);
  EXPECT_EQ(l.core_count(), 8u);
  EXPECT_DOUBLE_EQ(l.grid_x(0), 0.0625);
  EXPECT_DOUBLE_EQ(l.grid_y(3), 0.875);
}

}  // namespace
}  // namespace iscope
