// ThreadPool: submission, futures, exception propagation, drain-on-destroy.
#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace iscope {
namespace {

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), InvalidArgument);
}

TEST(ThreadPool, ReportsSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ReturnsValuesThroughFutures) {
  ThreadPool pool(2);
  auto a = pool.submit([]() { return 7; });
  auto b = pool.submit([]() { return std::string("hello"); });
  auto c = pool.submit([]() { /* void task */ });
  EXPECT_EQ(a.get(), 7);
  EXPECT_EQ(b.get(), "hello");
  EXPECT_NO_THROW(c.get());
}

TEST(ThreadPool, ManyTasksOnFewThreadsAllComplete) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  futures.reserve(100);
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([i]() { return i * i; }));
  // Collected in submission order regardless of completion order.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, TasksRunOffTheCallerThread) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  auto worker = pool.submit([]() { return std::this_thread::get_id(); });
  EXPECT_NE(worker.get(), caller);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  auto good = pool.submit([]() { return 1; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // A throwing task must not take its worker down with it.
  EXPECT_EQ(good.get(), 1);
}

TEST(ThreadPool, DestructionDrainsTheQueue) {
  std::atomic<int> completed{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      futures.push_back(pool.submit([&completed]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        completed.fetch_add(1);
      }));
    }
    // Destructor runs here with most of the queue still pending.
  }
  EXPECT_EQ(completed.load(), 50);
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

TEST(ThreadPool, SharedAccumulationIsComplete) {
  // Not a determinism test (that lives in test_sweep.cpp) -- just checks
  // no submitted work is lost under contention.
  std::atomic<long> sum{0};
  {
    ThreadPool pool(4);
    for (int i = 1; i <= 200; ++i)
      pool.submit([&sum, i]() { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 200L * 201L / 2L);
}

}  // namespace
}  // namespace iscope
