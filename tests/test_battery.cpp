#include "energy/battery.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace iscope {
namespace {

TEST(Battery, AbsentBankDoesNothing) {
  BatteryBank bank;
  EXPECT_FALSE(bank.present());
  EXPECT_DOUBLE_EQ(bank.charge(Watts{1000.0}, Seconds{60.0}).watts(), 0.0);
  EXPECT_DOUBLE_EQ(bank.discharge(Watts{1000.0}, Seconds{60.0}).watts(), 0.0);
  EXPECT_DOUBLE_EQ(bank.soc(), 0.0);
}

TEST(Battery, MakeHelper) {
  const BatteryConfig cfg = BatteryConfig::make(10.0, 5.0);
  EXPECT_DOUBLE_EQ(cfg.capacity.joules(), 3.6e7);
  EXPECT_DOUBLE_EQ(cfg.max_charge.watts(), 5000.0);
  EXPECT_DOUBLE_EQ(cfg.max_discharge.watts(), 5000.0);
}

TEST(Battery, ChargeStoresWithEfficiency) {
  BatteryConfig cfg = BatteryConfig::make(100.0, 1000.0);
  cfg.initial_soc = 0.0;
  cfg.charge_efficiency = 0.9;
  BatteryBank bank(cfg);
  const double absorbed_w = bank.charge(Watts{1000.0}, Seconds{3600.0}).watts();
  EXPECT_DOUBLE_EQ(absorbed_w, 1000.0);
  // 1 kWh AC in -> 0.9 kWh at the cell.
  EXPECT_NEAR(bank.stored().joules(), 0.9 * 3.6e6, 1.0);
}

TEST(Battery, ChargePowerLimited) {
  BatteryConfig cfg = BatteryConfig::make(1000.0, 10.0);  // 10 kW limit
  cfg.initial_soc = 0.0;
  BatteryBank bank(cfg);
  EXPECT_DOUBLE_EQ(bank.charge(Watts{50e3}, Seconds{60.0}).watts(), 10e3);
}

TEST(Battery, ChargeStopsAtCapacity) {
  BatteryConfig cfg = BatteryConfig::make(1.0, 1000.0);  // 1 kWh
  cfg.initial_soc = 0.0;
  cfg.charge_efficiency = 1.0;
  BatteryBank bank(cfg);
  // Offer far more than fits in one hour.
  bank.charge(Watts{100e3}, Seconds{3600.0});
  EXPECT_NEAR(bank.soc(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(bank.charge(Watts{100e3}, Seconds{3600.0}).watts(), 0.0);
}

TEST(Battery, DischargeDeliversWithEfficiency) {
  BatteryConfig cfg = BatteryConfig::make(100.0, 1e6);
  cfg.initial_soc = 1.0;
  cfg.discharge_efficiency = 0.9;
  BatteryBank bank(cfg);
  const double delivered_w = bank.discharge(Watts{1000.0}, Seconds{3600.0}).watts();
  EXPECT_DOUBLE_EQ(delivered_w, 1000.0);
  // 1 kWh AC out drains 1/0.9 kWh from the cell.
  EXPECT_NEAR(bank.stored().joules(), 100.0 * 3.6e6 - 3.6e6 / 0.9, 10.0);
}

TEST(Battery, DischargeStopsWhenEmpty) {
  BatteryConfig cfg = BatteryConfig::make(1.0, 1e6);
  cfg.initial_soc = 1.0;
  cfg.discharge_efficiency = 1.0;
  BatteryBank bank(cfg);
  const double got_w = bank.discharge(Watts{10e3}, Seconds{3600.0}).watts();
  EXPECT_NEAR(got_w * 3600.0, 3.6e6, 1.0);  // exactly the stored kWh
  EXPECT_DOUBLE_EQ(bank.discharge(Watts{10e3}, Seconds{60.0}).watts(), 0.0);
}

TEST(Battery, RoundTripLossesAccounted) {
  BatteryConfig cfg = BatteryConfig::make(100.0, 1e6);
  cfg.initial_soc = 0.0;
  cfg.charge_efficiency = 0.9;
  cfg.discharge_efficiency = 0.9;
  BatteryBank bank(cfg);
  bank.charge(Watts{10e3}, Seconds{3600.0});  // 10 kWh in -> 9 kWh stored
  bank.discharge(Watts{100e3}, Seconds{3600.0});  // drain it: 8.1 kWh out
  EXPECT_NEAR(bank.delivered().joules() / 3.6e6, 8.1, 0.01);
  EXPECT_NEAR(bank.losses().joules() / 3.6e6, 1.9, 0.01);
}

TEST(Battery, ConservationInvariant) {
  // absorbed = delivered + losses + delta(stored).
  BatteryConfig cfg = BatteryConfig::make(50.0, 20.0);
  cfg.initial_soc = 0.3;
  BatteryBank bank(cfg);
  const double initial = bank.stored().joules();
  for (int i = 0; i < 50; ++i) {
    bank.charge(Watts{(i % 3) * 5e3}, Seconds{600.0});
    bank.discharge(Watts{(i % 5) * 3e3}, Seconds{600.0});
  }
  EXPECT_NEAR(bank.absorbed().joules(),
              bank.delivered().joules() + bank.losses().joules() +
                  (bank.stored().joules() - initial),
              1e-6);
}

TEST(Battery, Validation) {
  BatteryConfig bad;
  bad.capacity = Joules{-1.0};
  EXPECT_THROW(BatteryBank{bad}, InvalidArgument);
  bad = BatteryConfig{};
  bad.charge_efficiency = 1.5;
  EXPECT_THROW(BatteryBank{bad}, InvalidArgument);
  BatteryBank bank(BatteryConfig::make(1.0, 1.0));
  EXPECT_THROW(bank.charge(Watts{-1.0}, Seconds{1.0}), InvalidArgument);
  EXPECT_THROW(bank.discharge(Watts{1.0}, Seconds{-1.0}), InvalidArgument);
}

}  // namespace
}  // namespace iscope
