// Cross-module integration: the experiment layer reproduces the paper's
// qualitative shapes on a miniature facility.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace iscope {
namespace {

// One small shared context for the whole suite (construction scans the
// cluster, so reuse it).
const ExperimentContext& ctx() {
  static const ExperimentContext* instance = [] {
    ExperimentConfig cfg = ExperimentConfig::paper_small().scaled(0.25);
    return new ExperimentContext(cfg);
  }();
  return *instance;
}

double result_for(const std::vector<SweepPoint>& points, Scheme s, double x,
                  double (*metric)(const SimResult&)) {
  for (const auto& p : points)
    if (p.scheme == s && p.x == x) return metric(p.result);
  throw InternalError("sweep point not found");
}

TEST(ExperimentConfig, Validation) {
  ExperimentConfig cfg = ExperimentConfig::paper_small();
  EXPECT_NO_THROW(cfg.validate());
  cfg.wind_mean_fraction_of_peak = -1.0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

TEST(ExperimentConfig, ScaledKeepsProportions) {
  const ExperimentConfig base = ExperimentConfig::paper_small();
  const ExperimentConfig big = base.scaled(2.0);
  EXPECT_EQ(big.cluster.num_processors, 2 * base.cluster.num_processors);
  EXPECT_EQ(big.workload.num_jobs, 2 * base.workload.num_jobs);
  EXPECT_DOUBLE_EQ(big.workload.mean_interarrival_s,
                   base.workload.mean_interarrival_s / 2.0);
  EXPECT_THROW(base.scaled(0.0), InvalidArgument);
}

TEST(ExperimentConfig, FullScaleIsPaperSize) {
  EXPECT_EQ(ExperimentConfig::paper_full().cluster.num_processors, 4800u);
}

TEST(ExperimentConfig, PeakDemandEstimate) {
  // 125 W per CPU x N x 1.4 cooling.
  ClusterConfig cluster;
  cluster.num_processors = 100;
  EXPECT_NEAR(estimated_peak_demand(cluster, 2.5).watts(), 125.0 * 100.0 * 1.4,
              1e-6);
}

TEST(ExperimentContext, BuildsScannedCluster) {
  EXPECT_EQ(ctx().profile_db().profiled_count(), ctx().cluster().size());
  EXPECT_GT(ctx().wind_trace().mean_power().watts(), 0.0);
}

TEST(ExperimentContext, TasksRespectHuFraction) {
  const auto lo = ctx().make_tasks(0.0);
  const auto hi = ctx().make_tasks(1.0);
  EXPECT_DOUBLE_EQ(hu_fraction(lo), 0.0);
  EXPECT_DOUBLE_EQ(hu_fraction(hi), 1.0);
}

TEST(ExperimentContext, ArrivalRateCompressesSubmits) {
  const auto slow = ctx().make_tasks(0.3, 1.0);
  const auto fast = ctx().make_tasks(0.3, 4.0);
  EXPECT_NEAR(fast.back().submit_s, slow.back().submit_s / 4.0, 1e-6);
}

TEST(ExperimentContext, SupplyKinds) {
  EXPECT_FALSE(ctx().make_supply(false).has_wind());
  EXPECT_TRUE(ctx().make_supply(true).has_wind());
  EXPECT_DOUBLE_EQ(ctx().make_supply(true, 1.8).wind_available(Seconds{0.0}).watts(),
                   1.8 * ctx().make_supply(true, 1.0).wind_available(Seconds{0.0}).watts());
}

// ------------------------------------------------ paper-shape assertions

TEST(PaperShapes, EffiBeatsRanOnUtilityEnergy) {
  const auto tasks = ctx().make_tasks(0.3);
  const auto supply = ctx().make_supply(false);
  const double ran =
      ctx().run(Scheme::kBinRan, tasks, supply).energy.utility_kwh();
  const double effi =
      ctx().run(Scheme::kBinEffi, tasks, supply).energy.utility_kwh();
  EXPECT_LT(effi, ran);
}

TEST(PaperShapes, ScanBeatsBinOnUtilityEnergy) {
  const auto tasks = ctx().make_tasks(0.3);
  const auto supply = ctx().make_supply(false);
  const double bin =
      ctx().run(Scheme::kBinEffi, tasks, supply).energy.utility_kwh();
  const double scan =
      ctx().run(Scheme::kScanEffi, tasks, supply).energy.utility_kwh();
  EXPECT_LT(scan, bin);
  const double bin_ran =
      ctx().run(Scheme::kBinRan, tasks, supply).energy.utility_kwh();
  const double scan_ran =
      ctx().run(Scheme::kScanRan, tasks, supply).energy.utility_kwh();
  EXPECT_LT(scan_ran, bin_ran);
}

TEST(PaperShapes, ScanFairCheapestWithWind) {
  const auto rows = energy_costs(ctx());
  double binran = 0.0, scanfair = 0.0, scaneffi = 0.0;
  for (const CostRow& r : rows) {
    if (!r.with_wind) continue;
    if (r.scheme == Scheme::kBinRan) binran = r.cost.dollars();
    if (r.scheme == Scheme::kScanFair) scanfair = r.cost.dollars();
    if (r.scheme == Scheme::kScanEffi) scaneffi = r.cost.dollars();
  }
  EXPECT_LT(scanfair, binran);
  EXPECT_LT(scaneffi, binran);
}

TEST(PaperShapes, FairBalancesBetterThanEffi) {
  const auto points = sweep_wind_strength(ctx(), {1.4});
  const auto var = [](const SimResult& r) { return r.busy_variance_h2; };
  const double effi = result_for(points, Scheme::kScanEffi, 1.4, var);
  const double fair = result_for(points, Scheme::kScanFair, 1.4, var);
  const double ran = result_for(points, Scheme::kScanRan, 1.4, var);
  // Paper Fig. 9 ordering: Effi by far the worst; Ran and Fair both low
  // (Fair balances *actively*, so at small scale it can even beat Ran).
  EXPECT_LT(fair, effi);
  EXPECT_LT(ran, effi);
  EXPECT_LT(fair, 3.0 * ran + 1.0);
}

TEST(PaperShapes, ScanFairUsesMostWind) {
  const auto tasks = ctx().make_tasks(0.3);
  const auto supply = ctx().make_supply(true);
  const double fair_wind =
      ctx().run(Scheme::kScanFair, tasks, supply).energy.wind_kwh();
  const double ran_wind =
      ctx().run(Scheme::kScanRan, tasks, supply).energy.wind_kwh();
  EXPECT_GT(fair_wind, ran_wind);
}

TEST(PaperShapes, SweepsCoverAllSchemesAndPoints) {
  const auto points = sweep_hu(ctx(), {0.0, 0.5}, false);
  EXPECT_EQ(points.size(), 2u * kAllSchemes.size());
  const auto rates = sweep_arrival(ctx(), {1.0, 3.0}, false);
  EXPECT_EQ(rates.size(), 2u * kAllSchemes.size());
}

TEST(PaperShapes, PowerTracesRecorded) {
  const auto traces = power_traces(ctx());
  ASSERT_EQ(traces.size(), 3u);  // the three Scan schemes
  for (const auto& p : traces) {
    EXPECT_GT(p.result.trace.size(), 10u);
    EXPECT_TRUE(scheme_uses_scan(p.scheme));
  }
}

TEST(PaperShapes, EnergyCostsCoverBothSupplies) {
  const auto rows = energy_costs(ctx());
  EXPECT_EQ(rows.size(), 2u * kAllSchemes.size());
  for (const CostRow& r : rows) {
    EXPECT_GT(r.cost.dollars(), 0.0);
    if (!r.with_wind) {
      EXPECT_DOUBLE_EQ(r.wind.kwh(), 0.0);
    }
  }
}

TEST(EnvScale, DefaultsToOne) {
  // (Cannot portably set env vars per test; just exercise the parser path.)
  const double s = env_scale();
  EXPECT_GE(s, 0.1);
  EXPECT_LE(s, 20.0);
}

}  // namespace
}  // namespace iscope
