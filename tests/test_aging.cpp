#include "hardware/aging.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"

namespace iscope {
namespace {

Cluster small_cluster(std::size_t n = 12, std::uint64_t seed = 1) {
  ClusterConfig cfg;
  cfg.num_processors = n;
  cfg.seed = seed;
  return build_cluster(cfg);
}

TEST(AgingParams, DeltaVthPowerLaw) {
  AgingParams p;
  EXPECT_DOUBLE_EQ(p.delta_vth(0.0, 0.3), 0.0);
  const double ref_s = p.reference_hours * units::kSecondsPerHour;
  // At the reference age the shift equals prefactor * vth.
  EXPECT_NEAR(p.delta_vth(ref_s, 0.3), p.prefactor * 0.3, 1e-12);
  // Sub-linear growth: doubling the age grows the shift by 2^n < 2.
  const double d1 = p.delta_vth(ref_s, 0.3);
  const double d2 = p.delta_vth(2.0 * ref_s, 0.3);
  EXPECT_GT(d2, d1);
  EXPECT_LT(d2, 2.0 * d1);
  EXPECT_NEAR(d2 / d1, std::pow(2.0, p.exponent), 1e-9);
}

TEST(AgingParams, Validation) {
  AgingParams p;
  p.exponent = 1.5;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = AgingParams{};
  p.prefactor = -0.1;
  EXPECT_THROW(p.validate(), InvalidArgument);
  EXPECT_THROW(AgingParams{}.delta_vth(-1.0, 0.3), InvalidArgument);
}

TEST(AgeCore, RaisesVthLowersLeakage) {
  const VariusParams varius;
  CoreVariation core;
  core.vth = varius.vth_nominal;
  core.speed_k = 5.0;
  core.leak_scale = 1.0;
  const CoreVariation aged =
      age_core(core, units::days_to_s(365.0), AgingParams{}, varius);
  EXPECT_GT(aged.vth, core.vth);
  EXPECT_LT(aged.leak_scale, core.leak_scale);
  EXPECT_EQ(aged.speed_k, core.speed_k);
}

TEST(AgeCore, ZeroStressIsIdentity) {
  const VariusParams varius;
  CoreVariation core;
  core.vth = 0.31;
  core.speed_k = 5.0;
  core.leak_scale = 0.9;
  const CoreVariation aged = age_core(core, 0.0, AgingParams{}, varius);
  EXPECT_EQ(aged.vth, core.vth);
  EXPECT_EQ(aged.leak_scale, core.leak_scale);
}

TEST(AgedCluster, MinVddRises) {
  const Cluster fresh = small_cluster();
  const std::vector<double> stress(fresh.size(), units::days_to_s(2.0 * 365.0));
  const Cluster aged = aged_cluster(fresh, stress);
  const std::size_t top = fresh.levels().count() - 1;
  for (std::size_t i = 0; i < fresh.size(); ++i)
    EXPECT_GT(aged.true_vdd(i, top), fresh.true_vdd(i, top));
}

TEST(AgedCluster, UnstressedChipsUnchanged) {
  const Cluster fresh = small_cluster();
  std::vector<double> stress(fresh.size(), 0.0);
  stress[3] = units::days_to_s(1000.0);
  const Cluster aged = aged_cluster(fresh, stress);
  const std::size_t top = fresh.levels().count() - 1;
  EXPECT_DOUBLE_EQ(aged.true_vdd(0, top).volts(),
                   fresh.true_vdd(0, top).volts());
  EXPECT_GT(aged.true_vdd(3, top), fresh.true_vdd(3, top));
}

TEST(AgedCluster, KeepsFactoryBinsAndCoefficients) {
  const Cluster fresh = small_cluster();
  const std::vector<double> stress(fresh.size(), units::days_to_s(500.0));
  const Cluster aged = aged_cluster(fresh, stress);
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(aged.proc(i).bin, fresh.proc(i).bin);
    EXPECT_EQ(aged.proc(i).coeffs.alpha, fresh.proc(i).coeffs.alpha);
    EXPECT_EQ(aged.bin_vdd(i, 0), fresh.bin_vdd(i, 0));
  }
}

TEST(AgedCluster, MoreStressMeansMoreDriftPerChip) {
  // The paper's Sec. III-C claim: different utilization times redistribute
  // the variation map. For any given chip, more stress means more drift
  // (across chips the sensitivity varies with each chip's own Vth).
  const Cluster fresh = small_cluster(10, 2);
  const std::size_t top = fresh.levels().count() - 1;
  const Cluster light = aged_cluster(
      fresh, std::vector<double>(fresh.size(), units::days_to_s(200.0)));
  const Cluster heavy = aged_cluster(
      fresh, std::vector<double>(fresh.size(), units::days_to_s(2000.0)));
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    const double d_light =
        (light.true_vdd(i, top) - fresh.true_vdd(i, top)).volts();
    const double d_heavy =
        (heavy.true_vdd(i, top) - fresh.true_vdd(i, top)).volts();
    EXPECT_GT(d_light, 0.0);
    EXPECT_GT(d_heavy, d_light);
  }
}

TEST(AgedCluster, StressSizeMismatchThrows) {
  const Cluster fresh = small_cluster();
  EXPECT_THROW(aged_cluster(fresh, std::vector<double>(3, 0.0)),
               InvalidArgument);
}

TEST(UndervoltViolations, DetectsStaleKnowledge) {
  const Cluster fresh = small_cluster(8, 3);
  // Applied map = the fresh truth (a perfect scan at t=0).
  std::vector<std::vector<double>> applied(fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i)
    for (std::size_t l = 0; l < fresh.levels().count(); ++l)
      applied[i].push_back(fresh.true_vdd(i, l).volts());

  EXPECT_EQ(count_undervolt_violations(fresh, applied), 0u);

  // After five years of wear the stale map undervolts the silicon.
  const Cluster aged = aged_cluster(
      fresh, std::vector<double>(fresh.size(), units::days_to_s(5 * 365.0)));
  EXPECT_GT(count_undervolt_violations(aged, applied), 0u);
}

TEST(UndervoltViolations, ShapeValidation) {
  const Cluster fresh = small_cluster();
  std::vector<std::vector<double>> wrong_rows(2);
  EXPECT_THROW(count_undervolt_violations(fresh, wrong_rows), InvalidArgument);
  std::vector<std::vector<double>> wrong_cols(fresh.size(),
                                              std::vector<double>(2, 1.0));
  EXPECT_THROW(count_undervolt_violations(fresh, wrong_cols), InvalidArgument);
}

}  // namespace
}  // namespace iscope
