#include <gtest/gtest.h>

#include <cstdio>

#include "common/error.hpp"
#include "common/units.hpp"
#include "hardware/cluster.hpp"
#include "profiling/failing_test.hpp"
#include "profiling/opportunistic.hpp"
#include "profiling/overhead.hpp"
#include "profiling/profile_db.hpp"
#include "profiling/scanner.hpp"

namespace iscope {
namespace {

Cluster small_cluster(std::size_t n = 8, std::uint64_t seed = 1) {
  ClusterConfig cfg;
  cfg.num_processors = n;
  cfg.seed = seed;
  return build_cluster(cfg);
}

// ------------------------------------------------------------ FailingTest

TEST(FailingTest, Durations) {
  // Sec. III-C: stress test 10 minutes, SBFFT 29 seconds.
  EXPECT_DOUBLE_EQ(test_duration_s(TestKind::kStress), 600.0);
  EXPECT_DOUBLE_EQ(test_duration_s(TestKind::kFunctionalFailing), 29.0);
}

TEST(FailingTest, NoiselessOracleMatchesTruth) {
  const Cluster cluster = small_cluster();
  const StabilityTester tester(&cluster, TestKind::kFunctionalFailing, 0.0);
  Rng rng(1);
  const double v_true = cluster.proc(0).core_truth[0].vdd(0);
  EXPECT_TRUE(tester.run(0, 0, 0, v_true + 1e-6, rng).passed);
  EXPECT_FALSE(tester.run(0, 0, 0, v_true - 1e-6, rng).passed);
}

TEST(FailingTest, AccountsTimeAndEnergy) {
  const Cluster cluster = small_cluster();
  const StabilityTester tester(&cluster, TestKind::kStress, 0.0);
  Rng rng(2);
  const TrialResult r = tester.run(0, 0, 2, 1.1, rng);
  EXPECT_DOUBLE_EQ(r.duration_s, 600.0);
  EXPECT_DOUBLE_EQ(r.energy_j,
                   (cluster.power(0, 2, Volts{1.1}) * Seconds{600.0}).joules());
}

TEST(FailingTest, Validation) {
  const Cluster cluster = small_cluster();
  EXPECT_THROW(StabilityTester(nullptr, TestKind::kStress), InvalidArgument);
  EXPECT_THROW(StabilityTester(&cluster, TestKind::kStress, 0.5),
               InvalidArgument);
  const StabilityTester tester(&cluster, TestKind::kStress);
  Rng rng(3);
  EXPECT_THROW(tester.run(0, 99, 0, 1.0, rng), InvalidArgument);
  EXPECT_THROW(tester.run(0, 0, 0, -1.0, rng), InvalidArgument);
}

// ---------------------------------------------------------------- Scanner

TEST(Scanner, DiscoversTruthWithinGrid) {
  const Cluster cluster = small_cluster(16, 5);
  ScanConfig cfg;
  cfg.voltage_points = 40;
  cfg.safety_margin = 0.0;
  const Scanner scanner(&cluster, cfg);
  Rng rng(4);
  for (std::size_t chip = 0; chip < 4; ++chip) {
    const ChipProfile p = scanner.scan_chip(chip, 0.0, rng);
    for (std::size_t core = 0; core < p.core_vdd.size(); ++core) {
      for (std::size_t l = 0; l < p.core_vdd[core].levels(); ++l) {
        const double truth = cluster.proc(chip).core_truth[core].vdd(l);
        const double found = p.core_vdd[core].vdd(l);
        const double vnom = cluster.levels().vdd_nom[l];
        const double grid =
            vnom * cfg.sweep_depth / static_cast<double>(cfg.voltage_points - 1);
        // Discovered is never unsafely below truth and within ~2 grid
        // steps above it (noise can stop the sweep one step early).
        EXPECT_GE(found, truth - grid * 0.5);
        EXPECT_LE(found, std::max(truth, vnom) + 2.0 * grid);
      }
    }
  }
}

TEST(Scanner, DiscoveredCurvesMonotone) {
  const Cluster cluster = small_cluster(8, 6);
  const Scanner scanner(&cluster, ScanConfig{});
  Rng rng(5);
  const ChipProfile p = scanner.scan_chip(0, 0.0, rng);
  for (const auto& curve : p.core_vdd)
    for (std::size_t l = 1; l < curve.levels(); ++l)
      EXPECT_GE(curve.vdd(l), curve.vdd(l - 1));
}

TEST(Scanner, OverVoltsSlowChips) {
  // A chip whose true Min Vdd exceeds stock voltage must be discovered at
  // an elevated (safe) voltage, not an unsafely low one.
  ClusterConfig cfg;
  cfg.num_processors = 64;
  cfg.varius.sigma_d2d = 0.10;  // force slow outliers
  cfg.seed = 9;
  const Cluster cluster = build_cluster(cfg);
  const std::size_t top = cluster.levels().count() - 1;
  ScanConfig scan;
  scan.safety_margin = 0.0;
  const Scanner scanner(&cluster, scan);
  Rng rng(6);
  bool found_outlier = false;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const double truth = cluster.true_vdd(i, top).volts();
    if (truth <= cluster.levels().vdd_nom[top]) continue;
    found_outlier = true;
    const ChipProfile p = scanner.scan_chip(i, 0.0, rng);
    EXPECT_GE(p.chip_vdd.vdd(top), truth * 0.995);
  }
  EXPECT_TRUE(found_outlier) << "test population produced no slow outlier";
}

TEST(Scanner, ChipCurveIsWorstOfCores) {
  const Cluster cluster = small_cluster();
  const Scanner scanner(&cluster, ScanConfig{});
  Rng rng(7);
  const ChipProfile p = scanner.scan_chip(0, 0.0, rng);
  for (std::size_t l = 0; l < p.chip_vdd.levels(); ++l) {
    double worst = 0.0;
    for (const auto& c : p.core_vdd) worst = std::max(worst, c.vdd(l));
    EXPECT_DOUBLE_EQ(p.chip_vdd.vdd(l), worst);
  }
}

TEST(Scanner, ParallelCoresTakeMaxTime) {
  const Cluster cluster = small_cluster();
  ScanConfig par;
  par.parallel_cores = true;
  ScanConfig seq;
  seq.parallel_cores = false;
  Rng r1(8), r2(8);
  const ChipProfile p_par = Scanner(&cluster, par).scan_chip(0, 0.0, r1);
  const ChipProfile p_seq = Scanner(&cluster, seq).scan_chip(0, 0.0, r2);
  EXPECT_LT(p_par.scan_time_s, p_seq.scan_time_s);
  EXPECT_GE(p_seq.scan_time_s, p_par.scan_time_s * 3.0);  // ~4 cores
}

TEST(Scanner, StressCostsMoreThanSbfft) {
  const Cluster cluster = small_cluster();
  ScanConfig stress;
  stress.kind = TestKind::kStress;
  ScanConfig sbfft;
  sbfft.kind = TestKind::kFunctionalFailing;
  Rng r1(9), r2(9);
  const ChipProfile a = Scanner(&cluster, stress).scan_chip(0, 0.0, r1);
  const ChipProfile b = Scanner(&cluster, sbfft).scan_chip(0, 0.0, r2);
  EXPECT_GT(a.scan_time_s, b.scan_time_s * 10.0);
  EXPECT_GT(a.scan_energy_j, b.scan_energy_j * 10.0);
}

TEST(Scanner, DomainScanStoresAll) {
  const Cluster cluster = small_cluster(8, 2);
  const Scanner scanner(&cluster, ScanConfig{});
  ProfileDb db(cluster.size());
  Rng rng(10);
  const double wall = scanner.scan_domain({0, 2, 5}, 100.0, rng, db);
  EXPECT_EQ(db.profiled_count(), 3u);
  EXPECT_TRUE(db.is_profiled(2));
  EXPECT_FALSE(db.is_profiled(1));
  EXPECT_GT(wall, 0.0);
  // Profiles are stamped sequentially within the domain.
  EXPECT_GE(db.get(5).profiled_at_s, db.get(0).profiled_at_s);
}

TEST(Scanner, BinarySearchMatchesLinearNoiseless) {
  // With a noiseless tester, bisection must find exactly the same grid
  // boundary as the linear descent.
  const Cluster cluster = small_cluster(12, 8);
  ScanConfig linear;
  linear.noise_sigma = 0.0;
  linear.strategy = SearchStrategy::kLinearDescent;
  ScanConfig binary = linear;
  binary.strategy = SearchStrategy::kBinarySearch;
  Rng r1(1), r2(1);
  for (std::size_t chip = 0; chip < cluster.size(); ++chip) {
    const ChipProfile a = Scanner(&cluster, linear).scan_chip(chip, 0.0, r1);
    const ChipProfile b = Scanner(&cluster, binary).scan_chip(chip, 0.0, r2);
    for (std::size_t c = 0; c < a.core_vdd.size(); ++c)
      for (std::size_t l = 0; l < a.core_vdd[c].levels(); ++l)
        EXPECT_NEAR(a.core_vdd[c].vdd(l), b.core_vdd[c].vdd(l), 1e-12);
  }
}

TEST(Scanner, BinarySearchUsesFewerTrials) {
  const Cluster cluster = small_cluster(8, 9);
  ScanConfig linear;
  linear.voltage_points = 40;
  linear.noise_sigma = 0.0;
  ScanConfig binary = linear;
  binary.strategy = SearchStrategy::kBinarySearch;
  Rng r1(2), r2(2);
  std::size_t linear_trials = 0, binary_trials = 0;
  for (std::size_t chip = 0; chip < cluster.size(); ++chip) {
    linear_trials += Scanner(&cluster, linear).scan_chip(chip, 0.0, r1).trials;
    binary_trials += Scanner(&cluster, binary).scan_chip(chip, 0.0, r2).trials;
  }
  EXPECT_LT(binary_trials, linear_trials / 2);
}

TEST(Scanner, BinarySearchHandlesSlowOutliers) {
  ClusterConfig cfg;
  cfg.num_processors = 64;
  cfg.varius.sigma_d2d = 0.10;
  cfg.seed = 9;
  const Cluster cluster = build_cluster(cfg);
  const std::size_t top = cluster.levels().count() - 1;
  ScanConfig scan;
  scan.strategy = SearchStrategy::kBinarySearch;
  scan.safety_margin = 0.0;
  const Scanner scanner(&cluster, scan);
  Rng rng(6);
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const double truth = cluster.true_vdd(i, top).volts();
    if (truth <= cluster.levels().vdd_nom[top]) continue;
    const ChipProfile p = scanner.scan_chip(i, 0.0, rng);
    EXPECT_GE(p.chip_vdd.vdd(top), truth * 0.995);
  }
}

TEST(Scanner, ConfigValidation) {
  const Cluster cluster = small_cluster();
  ScanConfig bad;
  bad.voltage_points = 1;
  EXPECT_THROW(Scanner(&cluster, bad), InvalidArgument);
  bad = ScanConfig{};
  bad.sweep_depth = 0.9;
  EXPECT_THROW(Scanner(&cluster, bad), InvalidArgument);
  EXPECT_THROW(Scanner(nullptr, ScanConfig{}), InvalidArgument);
}

// --------------------------------------------------------------- ProfileDb

TEST(ProfileDb, StoreFindGet) {
  const Cluster cluster = small_cluster();
  const Scanner scanner(&cluster, ScanConfig{});
  ProfileDb db(cluster.size());
  Rng rng(11);
  EXPECT_EQ(db.find(0), nullptr);
  EXPECT_THROW(db.get(0), InvalidArgument);
  db.store(scanner.scan_chip(0, 42.0, rng));
  EXPECT_NE(db.find(0), nullptr);
  EXPECT_DOUBLE_EQ(db.get(0).profiled_at_s, 42.0);
  EXPECT_EQ(db.profiled_count(), 1u);
  // Overwrite does not double count.
  db.store(scanner.scan_chip(0, 50.0, rng));
  EXPECT_EQ(db.profiled_count(), 1u);
  EXPECT_DOUBLE_EQ(db.get(0).profiled_at_s, 50.0);
}

TEST(ProfileDb, StaleTracking) {
  const Cluster cluster = small_cluster(4, 3);
  const Scanner scanner(&cluster, ScanConfig{});
  ProfileDb db(4);
  Rng rng(12);
  db.store(scanner.scan_chip(0, 10.0, rng));
  db.store(scanner.scan_chip(1, 100.0, rng));
  const auto stale = db.stale(50.0);
  // Chips 2 and 3 never scanned, chip 0 stale.
  EXPECT_EQ(stale.size(), 3u);
  EXPECT_EQ(stale[0], 0u);
}

TEST(ProfileDb, AggregateCosts) {
  const Cluster cluster = small_cluster(4, 4);
  const Scanner scanner(&cluster, ScanConfig{});
  ProfileDb db(4);
  Rng rng(13);
  scanner.scan_domain({0, 1}, 0.0, rng, db);
  EXPECT_GT(db.total_scan_time_s(), 0.0);
  EXPECT_GT(db.total_scan_energy_j(), 0.0);
  EXPECT_GT(db.total_trials(), 0u);
}

TEST(ProfileDb, CsvRoundTrip) {
  const Cluster cluster = small_cluster(4, 5);
  const Scanner scanner(&cluster, ScanConfig{});
  ProfileDb db(4);
  Rng rng(14);
  scanner.scan_domain({0, 3}, 7.0, rng, db);
  const std::string path = testing::TempDir() + "/profiles.csv";
  db.save_csv(path);
  const ProfileDb back = ProfileDb::load_csv(path, 4);
  EXPECT_EQ(back.profiled_count(), 2u);
  for (const std::size_t id : {0u, 3u}) {
    const ChipProfile& a = db.get(id);
    const ChipProfile& b = back.get(id);
    ASSERT_EQ(a.core_vdd.size(), b.core_vdd.size());
    for (std::size_t c = 0; c < a.core_vdd.size(); ++c)
      for (std::size_t l = 0; l < a.core_vdd[c].levels(); ++l)
        EXPECT_NEAR(a.core_vdd[c].vdd(l), b.core_vdd[c].vdd(l), 1e-9);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- Overhead

TEST(Overhead, MatchesPaperStressNumbers) {
  // 4800 CPUs x 115 W x 5 bins x 10 voltages x 10 min => 4600 kWh,
  // 230 USD wind / 598 USD utility (Sec. VI-E).
  OverheadConfig cfg;
  cfg.kind = TestKind::kStress;
  const OverheadReport r = compute_overhead(cfg);
  EXPECT_NEAR(r.total_energy.kwh(), 4600.0, 1.0);
  EXPECT_NEAR(r.cost_wind.dollars(), 230.0, 0.5);
  EXPECT_NEAR(r.cost_utility.dollars(), 598.0, 0.5);
}

TEST(Overhead, MatchesPaperSbfftNumbers) {
  // 29 s test => 11.2 USD wind / 28.9 USD utility.
  OverheadConfig cfg;
  cfg.kind = TestKind::kFunctionalFailing;
  const OverheadReport r = compute_overhead(cfg);
  EXPECT_NEAR(r.cost_wind.dollars(), 11.2, 0.2);
  EXPECT_NEAR(r.cost_utility.dollars(), 28.9, 0.2);
}

TEST(Overhead, Validation) {
  OverheadConfig cfg;
  cfg.processors = 0;
  EXPECT_THROW(compute_overhead(cfg), InvalidArgument);
}

// ------------------------------------------------------------ Opportunistic

TEST(IdleWindows, SquareWaveAnalysis) {
  // 60 minutes idle, 60 busy, 60 idle.
  std::vector<double> demand(180, 0.5);
  for (int m = 0; m < 60; ++m) demand[static_cast<std::size_t>(m)] = 0.1;
  for (int m = 120; m < 180; ++m) demand[static_cast<std::size_t>(m)] = 0.1;
  const IdleWindowStats s = analyze_idle_windows(demand, 0.30);
  EXPECT_NEAR(s.idle_fraction, 120.0 / 180.0, 1e-9);
  EXPECT_EQ(s.window_count, 2u);
  EXPECT_DOUBLE_EQ(s.longest_window_s, 3600.0);
  EXPECT_DOUBLE_EQ(s.mean_window_s, 3600.0);
}

TEST(IdleWindows, AllBusy) {
  const IdleWindowStats s = analyze_idle_windows({0.9, 0.8, 0.95}, 0.30);
  EXPECT_DOUBLE_EQ(s.idle_fraction, 0.0);
  EXPECT_EQ(s.window_count, 0u);
}

TEST(PlanProfiling, PlacesIntoIdleWindows) {
  std::vector<double> demand(120, 0.9);
  for (int m = 30; m < 90; ++m) demand[static_cast<std::size_t>(m)] = 0.05;
  OpportunisticConfig cfg;
  cfg.scan_time_per_proc_s = 60.0;
  cfg.domain_size = 4;  // one domain = 4 min
  std::vector<std::size_t> procs = {0, 1, 2, 3, 4, 5, 6, 7};
  const ProfilingPlan plan =
      plan_profiling(demand, HybridSupply{}, procs, cfg);
  EXPECT_EQ(plan.placed_count(), 8u);
  EXPECT_TRUE(plan.unplaced.empty());
  for (const auto& w : plan.windows) {
    EXPECT_GE(w.start_s, 30.0 * 60.0);
    EXPECT_LE(w.start_s + w.duration_s, 90.0 * 60.0 + 1e-9);
  }
}

TEST(PlanProfiling, DefersWhenNoRoom) {
  const std::vector<double> demand(60, 0.9);  // always busy
  OpportunisticConfig cfg;
  cfg.scan_time_per_proc_s = 60.0;
  const ProfilingPlan plan =
      plan_profiling(demand, HybridSupply{}, {0, 1, 2}, cfg);
  EXPECT_EQ(plan.placed_count(), 0u);
  EXPECT_EQ(plan.unplaced.size(), 3u);
}

TEST(PlanProfiling, WindRequirementFilters) {
  std::vector<double> demand(120, 0.05);  // always idle
  OpportunisticConfig cfg;
  cfg.scan_time_per_proc_s = 60.0;
  cfg.domain_size = 2;
  cfg.require_wind = true;
  cfg.min_wind = Watts{50.0};
  // Wind only in the second hour.
  SupplyTrace wind(Seconds{3600.0}, {0.0, 100.0});
  const HybridSupply supply(wind);
  const ProfilingPlan plan = plan_profiling(demand, supply, {0, 1}, cfg);
  ASSERT_EQ(plan.windows.size(), 1u);
  EXPECT_GE(plan.windows[0].start_s, 3600.0);
}

TEST(PlanProfiling, Validation) {
  OpportunisticConfig cfg;  // scan_time_per_proc_s defaults to 0
  EXPECT_THROW(plan_profiling({0.1}, HybridSupply{}, {0}, cfg),
               InvalidArgument);
}

}  // namespace
}  // namespace iscope
