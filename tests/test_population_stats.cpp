#include "variation/population_stats.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace iscope {
namespace {

TEST(PopulationStats, MatchesPaperCitedMagnitudes) {
  const VariusModel model(VariusParams{}, quad_core_layout());
  const PopulationStats s = measure_population(model, 500, 1);
  EXPECT_EQ(s.chips, 500u);
  EXPECT_EQ(s.cores, 2000u);
  // Frequency spread in the 10-60% band (paper cites up to 30%).
  EXPECT_GT(s.fmax_spread_fraction, 0.10);
  EXPECT_LT(s.fmax_spread_fraction, 0.8);
  // Core-to-core spread present but smaller than the population spread.
  EXPECT_GT(s.c2c_fmax_spread_fraction, 0.01);
  EXPECT_LT(s.c2c_fmax_spread_fraction, s.fmax_spread_fraction);
  // Multi-fold leakage spread (paper cites up to 20x).
  EXPECT_GT(s.leakage_spread_ratio, 4.0);
  // Min Vdd spread at the calibration point: several percent.
  EXPECT_GT(s.min_vdd_spread_fraction, 0.03);
  EXPECT_LT(s.min_vdd_spread_fraction, 0.5);
}

TEST(PopulationStats, Deterministic) {
  const VariusModel model(VariusParams{}, quad_core_layout());
  const PopulationStats a = measure_population(model, 50, 7);
  const PopulationStats b = measure_population(model, 50, 7);
  EXPECT_EQ(a.fmax_mean_ghz, b.fmax_mean_ghz);
  EXPECT_EQ(a.leakage_spread_ratio, b.leakage_spread_ratio);
}

TEST(PopulationStats, TighterProcessSmallerSpread) {
  VariusParams tight;
  tight.sigma_d2d = 0.01;
  tight.sigma_wid = 0.01;
  VariusParams loose;
  loose.sigma_d2d = 0.08;
  loose.sigma_wid = 0.06;
  const VariusModel tm(tight, quad_core_layout());
  const VariusModel lm(loose, quad_core_layout());
  const PopulationStats ts = measure_population(tm, 200, 3);
  const PopulationStats ls = measure_population(lm, 200, 3);
  EXPECT_LT(ts.fmax_spread_fraction, ls.fmax_spread_fraction);
  EXPECT_LT(ts.leakage_spread_ratio, ls.leakage_spread_ratio);
}

TEST(PopulationStats, SummaryMentionsPaperReferences) {
  const VariusModel model(VariusParams{}, quad_core_layout());
  const std::string text = measure_population(model, 20, 5).summary();
  EXPECT_NE(text.find("[14]"), std::string::npos);
  EXPECT_NE(text.find("[8]"), std::string::npos);
}

TEST(PopulationStats, Validation) {
  const VariusModel model(VariusParams{}, quad_core_layout());
  EXPECT_THROW(measure_population(model, 0, 1), InvalidArgument);
}

}  // namespace
}  // namespace iscope
