#include "common/units.hpp"

#include <gtest/gtest.h>

#include "common/log.hpp"

namespace iscope {
namespace {

TEST(Units, Time) {
  EXPECT_DOUBLE_EQ(units::minutes(10.0), 600.0);
  EXPECT_DOUBLE_EQ(units::hours(2.0), 7200.0);
  EXPECT_DOUBLE_EQ(units::days(1.0), 86400.0);
}

TEST(Units, EnergyRoundTrip) {
  EXPECT_DOUBLE_EQ(units::joules_to_kwh(3.6e6), 1.0);
  EXPECT_DOUBLE_EQ(units::kwh_to_joules(units::joules_to_kwh(12345.0)),
                   12345.0);
}

TEST(Units, Power) {
  EXPECT_DOUBLE_EQ(units::kilowatts(2.5), 2500.0);
  EXPECT_DOUBLE_EQ(units::megawatts(1.5), 1.5e6);
  EXPECT_DOUBLE_EQ(units::watts_to_kw(500.0), 0.5);
}

TEST(Units, Frequency) {
  EXPECT_DOUBLE_EQ(units::mhz_to_ghz(750.0), 0.75);
  EXPECT_DOUBLE_EQ(units::ghz_to_mhz(2.0), 2000.0);
}

TEST(Units, PaperSanity) {
  // Sec. VI-E arithmetic: 4800 CPUs x 115 W x 500 min = 4600 kWh.
  const double joules = 4800.0 * 115.0 * units::minutes(500.0);
  EXPECT_NEAR(units::joules_to_kwh(joules), 4600.0, 1.0);
}

TEST(Log, LevelGate) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
  set_log_level(prev);
}

}  // namespace
}  // namespace iscope
