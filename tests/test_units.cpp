#include "common/units.hpp"

#include <gtest/gtest.h>

#include "common/log.hpp"

namespace iscope {
namespace {

// Every raw conversion kernel must have an exact inverse: the pairs are
// defined from the same constant, so round-trips are bit-exact for values
// that do not overflow.

TEST(Units, TimeRoundTrip) {
  EXPECT_DOUBLE_EQ(units::minutes_to_s(10.0), 600.0);
  EXPECT_DOUBLE_EQ(units::s_to_minutes(units::minutes_to_s(17.5)), 17.5);
  EXPECT_DOUBLE_EQ(units::hours_to_s(2.0), 7200.0);
  EXPECT_DOUBLE_EQ(units::s_to_hours(units::hours_to_s(3.25)), 3.25);
  EXPECT_DOUBLE_EQ(units::days_to_s(1.0), 86400.0);
  EXPECT_DOUBLE_EQ(units::s_to_days(units::days_to_s(2.5)), 2.5);
}

TEST(Units, EnergyRoundTrip) {
  EXPECT_DOUBLE_EQ(units::joules_to_kwh(3.6e6), 1.0);
  EXPECT_DOUBLE_EQ(units::kwh_to_joules(units::joules_to_kwh(12345.0)),
                   12345.0);
}

TEST(Units, PowerRoundTrip) {
  EXPECT_DOUBLE_EQ(units::kw_to_watts(2.5), 2500.0);
  EXPECT_DOUBLE_EQ(units::watts_to_kw(units::kw_to_watts(0.75)), 0.75);
  EXPECT_DOUBLE_EQ(units::mw_to_watts(1.5), 1.5e6);
  EXPECT_DOUBLE_EQ(units::watts_to_mw(units::mw_to_watts(0.2)), 0.2);
}

TEST(Units, FrequencyRoundTrip) {
  EXPECT_DOUBLE_EQ(units::mhz_to_ghz(750.0), 0.75);
  EXPECT_DOUBLE_EQ(units::ghz_to_mhz(units::mhz_to_ghz(1400.0)), 1400.0);
}

TEST(Units, KernelsAgreeWithTypedLayer) {
  // The raw kernels and the Quantity factories share one constant table;
  // they can never drift apart.
  EXPECT_DOUBLE_EQ(units::minutes_to_s(10.0), units::minutes(10.0).seconds());
  EXPECT_DOUBLE_EQ(units::kwh_to_joules(2.0), units::kwh(2.0).joules());
  EXPECT_DOUBLE_EQ(units::kw_to_watts(2.5), units::kilowatts(2.5).watts());
  EXPECT_DOUBLE_EQ(units::mhz_to_ghz(750.0),
                   units::megahertz(750.0).gigahertz());
}

TEST(Units, PaperSanity) {
  // Sec. VI-E arithmetic: 4800 CPUs x 115 W x 500 min = 4600 kWh.
  const double joules = 4800.0 * 115.0 * units::minutes_to_s(500.0);
  EXPECT_NEAR(units::joules_to_kwh(joules), 4600.0, 1.0);
}

TEST(Log, LevelGate) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
  set_log_level(prev);
}

}  // namespace
}  // namespace iscope
