#include "common/bench_json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace iscope {
namespace {

BenchReport sample_report() {
  BenchReport r;
  r.name = "unit_test";
  r.scale = 2.0;
  r.warmup = 1;
  r.wall_s = {0.5, 0.4, 0.6};
  r.counters.events = 1000;
  r.counters.rematches = 250;
  r.peak_rss_bytes = 4096;
  return r;
}

TEST(BenchJson, DerivedStats) {
  const BenchReport r = sample_report();
  EXPECT_DOUBLE_EQ(r.wall_mean_s(), 0.5);
  EXPECT_DOUBLE_EQ(r.wall_min_s(), 0.4);
  EXPECT_DOUBLE_EQ(r.wall_max_s(), 0.6);
  EXPECT_DOUBLE_EQ(r.events_per_sec(), 1000.0 / 0.5);

  const BenchReport empty;
  EXPECT_DOUBLE_EQ(empty.wall_mean_s(), 0.0);
  EXPECT_DOUBLE_EQ(empty.events_per_sec(), 0.0);
}

TEST(BenchJson, RoundTripValidates) {
  const std::string json = to_json(sample_report());
  EXPECT_EQ(validate_bench_json(json), "");
  // Spot-check emitted fields.
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"rematch_count\": 250"), std::string::npos);
}

TEST(BenchJson, CorruptionsAreDiagnosed) {
  // Each corruption must produce a non-empty diagnostic.
  EXPECT_NE(validate_bench_json(""), "");
  EXPECT_NE(validate_bench_json("not json at all"), "");
  EXPECT_NE(validate_bench_json("[1, 2, 3]"), "");
  EXPECT_NE(validate_bench_json("{\"schema_version\": 1}"), "");

  std::string json = to_json(sample_report());
  // Wrong schema version.
  std::string bad = json;
  bad.replace(bad.find("\"schema_version\": 1"),
              std::string("\"schema_version\": 1").size(),
              "\"schema_version\": 99");
  EXPECT_NE(validate_bench_json(bad), "");

  // Truncated document.
  EXPECT_NE(validate_bench_json(json.substr(0, json.size() / 2)), "");

  // Sample count disagreeing with `repeats`.
  bad = json;
  bad.replace(bad.find("\"repeats\": 3"), std::string("\"repeats\": 3").size(),
              "\"repeats\": 7");
  EXPECT_NE(validate_bench_json(bad), "");
}

BenchReport telemetry_report() {
  BenchReport r = sample_report();
  r.telemetry.present = true;
  r.telemetry.match_span_s = 0.125;
  r.telemetry.rematch_span_s = 0.5;
  r.telemetry.span_events = 4096;
  r.telemetry.span_dropped = 12;
  r.telemetry.event_queue_peak = 321;
  r.telemetry.worker_busy_fraction = {0.75, 0.5};
  return r;
}

TEST(BenchJson, SchemaV1IsUnchangedWithoutTelemetry) {
  // Pin the v1 document shape: no telemetry key, version 1, and the exact
  // field set committed baselines rely on.
  const std::string json = to_json(sample_report());
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_EQ(json.find("\"telemetry\""), std::string::npos);
  EXPECT_EQ(validate_bench_json(json), "");
}

TEST(BenchJson, TasksCompletedIsOptInAndValidated) {
  // Benches that don't track the scheduling outcome (tasks_completed == 0)
  // emit the historical document, byte for byte.
  EXPECT_EQ(to_json(sample_report()).find("tasks_completed"),
            std::string::npos);

  // The shard-scaling baselines carry it; it validates and round-trips.
  BenchReport r = sample_report();
  r.counters.tasks_completed = 170666;
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"tasks_completed\": 170666"), std::string::npos);
  EXPECT_EQ(validate_bench_json(json), "");

  // Wrong type is a writer bug, not an extension.
  std::string bad = json;
  const auto pos = bad.find(": 170666");
  bad.replace(pos, 8, ": \"many\"");
  EXPECT_NE(validate_bench_json(bad), "");
}

TEST(BenchJson, SchemaV2RoundTripValidates) {
  const std::string json = to_json(telemetry_report());
  EXPECT_EQ(validate_bench_json(json), "");
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"telemetry\": {"), std::string::npos);
  EXPECT_NE(json.find("\"event_queue_peak\": 321"), std::string::npos);
  EXPECT_NE(json.find("\"worker_busy_fraction\": [0.75, 0.5]"),
            std::string::npos);
  // The v1 fields are untouched by the upgrade.
  EXPECT_NE(json.find("\"rematch_count\": 250"), std::string::npos);
}

TEST(BenchJson, SchemaV2CorruptionsAreDiagnosed) {
  const std::string json = to_json(telemetry_report());

  // A v1 document must not smuggle in a telemetry block.
  std::string bad = json;
  bad.replace(bad.find("\"schema_version\": 2"),
              std::string("\"schema_version\": 2").size(),
              "\"schema_version\": 1");
  EXPECT_NE(validate_bench_json(bad), "");

  // A v2 document must carry one.
  bad = to_json(sample_report());
  bad.replace(bad.find("\"schema_version\": 1"),
              std::string("\"schema_version\": 1").size(),
              "\"schema_version\": 2");
  EXPECT_NE(validate_bench_json(bad), "");

  // Busy fractions outside [0, 1] are a writer bug.
  bad = json;
  bad.replace(bad.find("[0.75, 0.5]"), std::string("[0.75, 0.5]").size(),
              "[1.5, 0.5]");
  EXPECT_NE(validate_bench_json(bad), "");

  // Missing telemetry sub-key.
  bad = json;
  bad.replace(bad.find("\"span_dropped\""),
              std::string("\"span_dropped\"").size(), "\"span_dripped\"");
  EXPECT_NE(validate_bench_json(bad), "");
}

BenchReport perf_report() {
  BenchReport r = sample_report();
  r.perf.present = true;
  r.perf.instructions = 123456789;
  r.perf.cycles = 987654321;
  r.perf.branch_misses = 4242;
  r.perf.minor_faults = 77;
  r.perf.peak_rss_bytes = 8192;
  return r;
}

TEST(BenchJson, SchemaV3RoundTripValidates) {
  const std::string json = to_json(perf_report());
  EXPECT_EQ(validate_bench_json(json), "");
  EXPECT_NE(json.find("\"schema_version\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"perf\": {"), std::string::npos);
  EXPECT_NE(json.find("\"instructions\": 123456789"), std::string::npos);
  EXPECT_NE(json.find("\"branch_misses\": 4242"), std::string::npos);
  EXPECT_NE(json.find("\"minor_faults\": 77"), std::string::npos);
  // The v1 fields are untouched by the upgrade.
  EXPECT_NE(json.find("\"rematch_count\": 250"), std::string::npos);
}

TEST(BenchJson, SchemaV2IsUnchangedWithoutPerf) {
  // Perf-off captures must stay byte-identical to the historical v1/v2
  // documents: same version numbers, no perf key anywhere.
  const std::string v1 = to_json(sample_report());
  EXPECT_NE(v1.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_EQ(v1.find("\"perf\""), std::string::npos);

  const std::string v2 = to_json(telemetry_report());
  EXPECT_NE(v2.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_EQ(v2.find("\"perf\""), std::string::npos);
}

TEST(BenchJson, SchemaV3CarriesTelemetryOptionally) {
  // perf + telemetry: version 3, both blocks present and validated.
  BenchReport r = telemetry_report();
  r.perf = perf_report().perf;
  const std::string json = to_json(r);
  EXPECT_EQ(validate_bench_json(json), "");
  EXPECT_NE(json.find("\"schema_version\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"telemetry\": {"), std::string::npos);
  EXPECT_NE(json.find("\"perf\": {"), std::string::npos);
}

TEST(BenchJson, UnavailableHardwareCountersAreSentinels) {
  // Inside a container that refuses perf_event_open the hardware fields
  // hold -1; the document must still validate (the rusage half is real).
  BenchReport r = perf_report();
  r.perf.instructions = -1;
  r.perf.cycles = -1;
  r.perf.branch_misses = -1;
  const std::string json = to_json(r);
  EXPECT_EQ(validate_bench_json(json), "");
  EXPECT_NE(json.find("\"instructions\": -1"), std::string::npos);
}

TEST(BenchJson, SchemaV3CorruptionsAreDiagnosed) {
  const std::string json = to_json(perf_report());

  // A v1/v2 document must not smuggle in a perf block.
  std::string bad = json;
  bad.replace(bad.find("\"schema_version\": 3"),
              std::string("\"schema_version\": 3").size(),
              "\"schema_version\": 1");
  EXPECT_NE(validate_bench_json(bad), "");

  // A v3 document must carry one.
  bad = to_json(sample_report());
  bad.replace(bad.find("\"schema_version\": 1"),
              std::string("\"schema_version\": 1").size(),
              "\"schema_version\": 3");
  EXPECT_NE(validate_bench_json(bad), "");

  // Missing perf sub-key.
  bad = json;
  bad.replace(bad.find("\"cycles\""), std::string("\"cycles\"").size(),
              "\"cycle_count\"");
  EXPECT_NE(validate_bench_json(bad), "");

  // Below the -1 absence sentinel marks a corrupted capture.
  bad = json;
  bad.replace(bad.find(": 4242"), std::string(": 4242").size(), ": -7");
  EXPECT_NE(validate_bench_json(bad), "");
}

TEST(BenchJson, PerfProbeIsGracefulEverywhere) {
  // Whether or not this kernel grants perf_event_open, the probe must
  // produce a valid capture: real counts or the -1 sentinel, and a
  // non-negative rusage half.
  PerfProbe probe;
  probe.start();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  const PerfSummary p = probe.stop();
  EXPECT_TRUE(p.present);
  EXPECT_GE(p.minor_faults, 0);
  EXPECT_GT(p.peak_rss_bytes, 0L);
  if (probe.hardware_available()) {
    EXPECT_GT(p.instructions, 0);
  } else {
    EXPECT_EQ(p.instructions, -1);
    EXPECT_EQ(p.cycles, -1);
    EXPECT_EQ(p.branch_misses, -1);
  }
  BenchReport r = sample_report();
  r.perf = p;
  EXPECT_EQ(validate_bench_json(to_json(r)), "");
}

TEST(BenchJson, WriteReadBack) {
  const std::string dir = ::testing::TempDir();
  const BenchReport r = sample_report();
  const std::string path = write_bench_json(dir, r);
  EXPECT_EQ(path, bench_json_path(dir, "unit_test"));
  EXPECT_NE(path.find("BENCH_unit_test.json"), std::string::npos);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(validate_bench_json(buf.str()), "");
  std::remove(path.c_str());
}

TEST(BenchJson, LabelNormalization) {
  EXPECT_EQ(normalize_bench_label("shards_4"), "shards_4");
  EXPECT_EQ(normalize_bench_label("Faults ON"), "faults_on");
  EXPECT_EQ(normalize_bench_label("faults-on"), "faults_on");
  EXPECT_EQ(normalize_bench_label("  --weird__tag--  "), "weird_tag");
  EXPECT_EQ(normalize_bench_label("!!!"), "");
  EXPECT_EQ(normalize_bench_label(""), "");
}

TEST(BenchJson, LabeledPathConvention) {
  // The committed-baseline convention: BENCH_<name>.<label>.json.
  EXPECT_EQ(bench_json_path("d", "shard_scaling", "shards_16"),
            "d/BENCH_shard_scaling.shards_16.json");
  // Labels normalize on the way into the file name.
  EXPECT_EQ(bench_json_path("d", "x", "Faults ON"),
            "d/BENCH_x.faults_on.json");
  // No label (or an all-junk one) keeps the unlabeled name.
  EXPECT_EQ(bench_json_path("d", "x"), "d/BENCH_x.json");
  EXPECT_EQ(bench_json_path("d", "x", "~~"), "d/BENCH_x.json");
}

TEST(BenchJson, LabeledWriteLandsAtLabeledPath) {
  const std::string dir = ::testing::TempDir();
  BenchReport r = sample_report();
  r.label = "shards_4";
  const std::string path = write_bench_json(dir, r);
  EXPECT_EQ(path, bench_json_path(dir, "unit_test", "shards_4"));
  EXPECT_NE(path.find("BENCH_unit_test.shards_4.json"), std::string::npos);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(validate_bench_json(buf.str()), "");
  EXPECT_NE(buf.str().find("\"label\": \"shards_4\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(BenchJson, PeakRssIsPositive) {
  // getrusage must report something for a live process.
  EXPECT_GT(peak_rss_bytes(), 0L);
}

}  // namespace
}  // namespace iscope
