// Test-side client for iscope_serve: spawns the daemon (fork/exec, stdout
// readiness handshake) and speaks the wire protocol over its unix socket
// with blocking I/O. Used by test_service_e2e.cpp and
// test_service_chaos.cpp; the production encode/parse functions from
// service/wire.hpp do all the framing, so the tests exercise the exact
// codec the daemon runs.
#pragma once

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/wire.hpp"

namespace iscope::service {

/// A running iscope_serve child process.
class ServeProcess {
 public:
  ServeProcess(const std::string& binary,
               const std::vector<std::string>& args) {
    int out[2];
    if (::pipe(out) != 0) throw std::runtime_error("pipe failed");
    pid_ = ::fork();
    if (pid_ < 0) throw std::runtime_error("fork failed");
    if (pid_ == 0) {
      ::dup2(out[1], STDOUT_FILENO);
      ::close(out[0]);
      ::close(out[1]);
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(binary.c_str()));
      for (const std::string& a : args)
        argv.push_back(const_cast<char*>(a.c_str()));
      argv.push_back(nullptr);
      ::execv(binary.c_str(), argv.data());
      ::_exit(127);
    }
    ::close(out[1]);
    stdout_fd_ = out[0];
  }

  ~ServeProcess() {
    if (stdout_fd_ >= 0) ::close(stdout_fd_);
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
  }

  /// Block until the daemon prints its readiness line (or timeout).
  bool wait_ready(int timeout_ms = 30000) {
    std::string seen;
    pollfd p{stdout_fd_, POLLIN, 0};
    while (timeout_ms > 0) {
      const int r = ::poll(&p, 1, 100);
      timeout_ms -= 100;
      if (r <= 0) continue;
      char buf[256];
      const ssize_t n = ::read(stdout_fd_, buf, sizeof(buf));
      if (n <= 0) return false;  // daemon exited before readiness
      seen.append(buf, static_cast<std::size_t>(n));
      if (seen.find("listening on") != std::string::npos) return true;
    }
    return false;
  }

  void sigterm() const { ::kill(pid_, SIGTERM); }

  /// Reap the child and return its exit code (-1 on abnormal death).
  int wait_exit() {
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

 private:
  pid_t pid_ = -1;
  int stdout_fd_ = -1;
};

/// Blocking wire-protocol client over a unix stream socket.
class Client {
 public:
  explicit Client(const std::string& socket_path, int timeout_ms = 30000) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("client socket failed");
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    // The daemon binds asynchronously with the readiness line; retry the
    // connect briefly in case the socket appears a beat later.
    while (true) {
      if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0)
        break;
      timeout_ms -= 50;
      if (timeout_ms <= 0) {
        ::close(fd_);
        throw std::runtime_error("connect to " + socket_path + " failed: " +
                                 std::strerror(errno));
      }
      ::usleep(50 * 1000);
    }
    timeval tv{};
    tv.tv_sec = 30;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void send_frame(MsgType type,
                  const std::vector<std::uint8_t>& payload = {}) {
    const std::vector<std::uint8_t> f = encode_frame(type, payload);
    send_raw(f.data(), f.size());
  }

  /// Escape hatch for malformed-input tests: bytes hit the wire verbatim.
  void send_raw(const std::uint8_t* data, std::size_t n) {
    std::size_t off = 0;
    while (off < n) {
      const ssize_t w = ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
      if (w < 0) throw std::runtime_error("send failed");
      off += static_cast<std::size_t>(w);
    }
  }

  /// Blocking read of the next complete frame.
  Frame recv_frame() {
    Frame f;
    while (!reader_.next(f)) {
      std::uint8_t buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) throw std::runtime_error("recv failed (peer closed?)");
      reader_.feed(buf, static_cast<std::size_t>(n));
    }
    return f;
  }

  /// True when the peer closed cleanly with no further frames.
  bool recv_eof() {
    Frame f;
    if (reader_.next(f)) return false;
    std::uint8_t buf[256];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    return n == 0;
  }

  // --- typed round-trips ------------------------------------------------

  HelloOk hello() {
    send_frame(MsgType::kHello, encode_hello());
    const Frame f = recv_frame();
    if (f.type != MsgType::kHelloOk)
      throw std::runtime_error("hello: unexpected reply");
    return parse_hello_ok(f.payload);
  }

  /// Returns the admission reply verbatim (kAdmitOk / kBusy / kErr).
  Frame admit(const Task& t) {
    send_frame(MsgType::kAdmit, encode_admit(t));
    return recv_frame();
  }

  /// Advance to `t_limit`, appending streamed decisions to `decisions`.
  AdvanceDone advance(double t_limit, std::vector<TimelineEvent>& decisions) {
    send_frame(MsgType::kAdvance, encode_advance(t_limit));
    while (true) {
      const Frame f = recv_frame();
      if (f.type == MsgType::kDecision) {
        decisions.push_back(parse_decision(f.payload));
      } else if (f.type == MsgType::kAdvanceDone) {
        return parse_advance_done(f.payload);
      } else {
        throw std::runtime_error("advance: unexpected reply");
      }
    }
  }

  AdvanceDone drain(std::vector<TimelineEvent>& decisions) {
    send_frame(MsgType::kDrain);
    while (true) {
      const Frame f = recv_frame();
      if (f.type == MsgType::kDecision) {
        decisions.push_back(parse_decision(f.payload));
      } else if (f.type == MsgType::kDrained) {
        return parse_advance_done(f.payload);
      } else {
        throw std::runtime_error("drain: unexpected reply");
      }
    }
  }

  DecisionSnapshot decide_now() {
    send_frame(MsgType::kDecideNow);
    const Frame f = recv_frame();
    if (f.type != MsgType::kSnapshot)
      throw std::runtime_error("decide_now: unexpected reply");
    return parse_snapshot(f.payload);
  }

  ResultSummary result() {
    send_frame(MsgType::kResult);
    const Frame f = recv_frame();
    if (f.type != MsgType::kResultSummary)
      throw std::runtime_error("result: unexpected reply");
    return parse_result_summary(f.payload);
  }

  std::string metrics() {
    send_frame(MsgType::kMetrics);
    const Frame f = recv_frame();
    if (f.type != MsgType::kMetricsText)
      throw std::runtime_error("metrics: unexpected reply");
    return parse_text(f.payload);
  }

  std::string checkpoint(const std::string& path = "") {
    send_frame(MsgType::kCheckpoint, encode_text(path));
    const Frame f = recv_frame();
    if (f.type != MsgType::kCheckpointOk)
      throw std::runtime_error("checkpoint: unexpected reply");
    return parse_text(f.payload);
  }

  void shutdown() {
    send_frame(MsgType::kShutdown);
    const Frame f = recv_frame();
    if (f.type != MsgType::kShutdownOk)
      throw std::runtime_error("shutdown: unexpected reply");
  }

 private:
  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace iscope::service
