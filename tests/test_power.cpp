#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "power/cooling.hpp"
#include "power/cost.hpp"
#include "power/cpu_power.hpp"
#include "power/energy_meter.hpp"

namespace iscope {
namespace {

// ---------------------------------------------------------------- CpuPower

TEST(CpuPower, Eq1AtNominalVoltage) {
  // With V == Vnom the extended model reduces exactly to Eq-1.
  const CpuPowerModel m;
  const PowerCoefficients c{WattsPerCubicGigahertz{7.5}, Watts{65.0}};
  for (const double f : {0.75, 1.375, 2.0})
    EXPECT_DOUBLE_EQ(
        m.power(c, Gigahertz{f}, Volts{1.2}, Volts{1.2}).watts(),
        m.power_eq1(c, Gigahertz{f}).watts());
}

TEST(CpuPower, PaperHeadlineNumber) {
  // alpha=7.5, beta=65 at 2 GHz -> 125 W (the Eq-1 anchor).
  const CpuPowerModel m;
  const PowerCoefficients c{WattsPerCubicGigahertz{7.5}, Watts{65.0}};
  EXPECT_DOUBLE_EQ(m.power_eq1(c, Gigahertz{2.0}).watts(), 125.0);
}

TEST(CpuPower, VoltageScaling) {
  const CpuPowerModel m;
  const PowerCoefficients c{WattsPerCubicGigahertz{10.0}, Watts{}};  // pure dynamic
  // Dynamic power scales with (V/Vnom)^2.
  EXPECT_NEAR(m.power(c, Gigahertz{1.0}, Volts{0.9}, Volts{1.0}).watts(),
              10.0 * 0.81, 1e-12);
  const PowerCoefficients s{WattsPerCubicGigahertz{}, Watts{50.0}};  // pure static
  // Half of beta tracks voltage (leakage), half is fixed platform power:
  // 50 * (0.5 * 0.9 + 0.5) = 47.5.
  EXPECT_NEAR(m.power(s, Gigahertz{1.0}, Volts{0.9}, Volts{1.0}).watts(),
              47.5, 1e-12);
}

TEST(CpuPower, LeakageShareExtremes) {
  PowerModelParams all_leak;
  all_leak.leakage_voltage_share = 1.0;
  PowerModelParams no_leak;
  no_leak.leakage_voltage_share = 0.0;
  const PowerCoefficients s{WattsPerCubicGigahertz{}, Watts{100.0}};
  // s=1: static fully tracks voltage; s=0: the paper's constant beta.
  EXPECT_DOUBLE_EQ(
      CpuPowerModel(all_leak)
          .power(s, Gigahertz{1.0}, Volts{0.8}, Volts{1.0})
          .watts(),
      80.0);
  EXPECT_DOUBLE_EQ(CpuPowerModel(no_leak)
                       .power(s, Gigahertz{1.0}, Volts{0.8}, Volts{1.0})
                       .watts(),
                   100.0);
}

TEST(CpuPower, LowerVddAlwaysCheaper) {
  const CpuPowerModel m;
  const PowerCoefficients c{WattsPerCubicGigahertz{7.5}, Watts{65.0}};
  EXPECT_LT(m.power(c, Gigahertz{2.0}, Volts{1.15}, Volts{1.30}),
            m.power(c, Gigahertz{2.0}, Volts{1.30}, Volts{1.30}));
}

TEST(CpuPower, CubicInFrequency) {
  const CpuPowerModel m;
  const PowerCoefficients c{WattsPerCubicGigahertz{8.0}, Watts{}};
  const double p1 = m.power_eq1(c, Gigahertz{1.0}).watts();
  const double p2 = m.power_eq1(c, Gigahertz{2.0}).watts();
  EXPECT_DOUBLE_EQ(p2 / p1, 8.0);
}

TEST(CpuPower, WattsPerGhz) {
  const CpuPowerModel m;
  const PowerCoefficients c{WattsPerCubicGigahertz{7.5}, Watts{65.0}};
  EXPECT_DOUBLE_EQ(
      m.efficiency(c, Gigahertz{2.0}, Volts{1.3}, Volts{1.3}).watts_per_ghz(),
      125.0 / 2.0);
  EXPECT_THROW(m.efficiency(c, Gigahertz{}, Volts{1.3}, Volts{1.3}),
               InvalidArgument);
}

TEST(CpuPower, SampleDistributions) {
  const CpuPowerModel m;
  Rng rng(1);
  RunningStats alpha, beta;
  for (int i = 0; i < 5000; ++i) {
    const PowerCoefficients c = m.sample(rng);
    alpha.add(c.alpha.raw());
    beta.add(c.beta.watts());
    EXPECT_GT(c.alpha.raw(), 0.0);
    EXPECT_GE(c.beta.watts(), 0.0);
  }
  EXPECT_NEAR(alpha.mean(), 7.5, 0.05);    // Normal(7.5, 0.75)
  EXPECT_NEAR(alpha.stddev(), 0.75, 0.05);
  EXPECT_NEAR(beta.mean(), 65.0, 0.5);     // Poisson(65)
  EXPECT_NEAR(beta.variance(), 65.0, 5.0);
}

TEST(CpuPower, Validation) {
  PowerModelParams bad;
  bad.alpha_mean = -1.0;
  EXPECT_THROW(CpuPowerModel{bad}, InvalidArgument);
  const CpuPowerModel m;
  const PowerCoefficients c{WattsPerCubicGigahertz{7.5}, Watts{65.0}};
  EXPECT_THROW(m.power(c, Gigahertz{-1.0}, Volts{1.0}, Volts{1.0}),
               InvalidArgument);
  EXPECT_THROW(m.power(c, Gigahertz{1.0}, Volts{}, Volts{1.0}),
               InvalidArgument);
}

// ---------------------------------------------------------------- Cooling

TEST(Cooling, Eq2Factor) {
  const CoolingModel cop25(2.5);
  EXPECT_DOUBLE_EQ(cop25.overhead_factor(), 1.4);
  EXPECT_DOUBLE_EQ(cop25.total_power(Watts{100.0}).watts(), 140.0);
  EXPECT_DOUBLE_EQ(cop25.cooling_power(Watts{100.0}).watts(), 40.0);
}

TEST(Cooling, GreenbergSampleInRange) {
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const CoolingModel m = CoolingModel::sample_greenberg(rng);
    EXPECT_GE(m.cop(), 0.6);
    EXPECT_LE(m.cop(), 3.5);
  }
}

TEST(Cooling, Validation) {
  EXPECT_THROW(CoolingModel(0.0), InvalidArgument);
  EXPECT_THROW(CoolingModel(2.5).total_power(Watts{-1.0}), InvalidArgument);
}

// ------------------------------------------------------------ EnergyMeter

TEST(EnergyMeter, WindFirstSplit) {
  EnergyMeter meter;
  // Demand 100 W, wind 60 W, 10 s: 600 J wind + 400 J utility.
  const EnergySplit step =
      meter.accrue(Watts{100.0}, Watts{60.0}, Seconds{10.0});
  EXPECT_DOUBLE_EQ(step.wind.joules(), 600.0);
  EXPECT_DOUBLE_EQ(step.utility.joules(), 400.0);
  EXPECT_DOUBLE_EQ(meter.total().total().joules(), 1000.0);
}

TEST(EnergyMeter, SurplusWindCurtailed) {
  EnergyMeter meter;
  meter.accrue(Watts{50.0}, Watts{120.0}, Seconds{2.0});
  EXPECT_DOUBLE_EQ(meter.total().wind.joules(), 100.0);
  EXPECT_DOUBLE_EQ(meter.total().utility.joules(), 0.0);
  EXPECT_DOUBLE_EQ(meter.wind_curtailed().joules(), 140.0);
}

TEST(EnergyMeter, WindFraction) {
  EnergyMeter meter;
  EXPECT_DOUBLE_EQ(meter.wind_fraction(), 0.0);
  meter.accrue(Watts{100.0}, Watts{25.0}, Seconds{1.0});
  EXPECT_DOUBLE_EQ(meter.wind_fraction(), 0.25);
}

TEST(EnergyMeter, AccumulatesAndResets) {
  EnergyMeter meter;
  meter.accrue(Watts{10.0}, Watts{}, Seconds{1.0});
  meter.accrue(Watts{10.0}, Watts{}, Seconds{1.0});
  EXPECT_DOUBLE_EQ(meter.total().utility.joules(), 20.0);
  meter.record_sample(PowerSample{});
  EXPECT_EQ(meter.trace().size(), 1u);
  meter.reset();
  EXPECT_DOUBLE_EQ(meter.total().total().joules(), 0.0);
  EXPECT_TRUE(meter.trace().empty());
  EXPECT_DOUBLE_EQ(meter.wind_curtailed().joules(), 0.0);
}

TEST(EnergyMeter, Validation) {
  EnergyMeter meter;
  EXPECT_THROW(meter.accrue(Watts{-1.0}, Watts{}, Seconds{1.0}),
               InvalidArgument);
  EXPECT_THROW(meter.accrue(Watts{1.0}, Watts{-1.0}, Seconds{1.0}),
               InvalidArgument);
  EXPECT_THROW(meter.accrue(Watts{1.0}, Watts{}, Seconds{-1.0}),
               InvalidArgument);
}

TEST(EnergySplit, KwhConversions) {
  EnergySplit s;
  s.wind = Joules{3.6e6};
  s.utility = Joules{7.2e6};
  EXPECT_DOUBLE_EQ(s.wind_kwh(), 1.0);
  EXPECT_DOUBLE_EQ(s.utility_kwh(), 2.0);
  EXPECT_DOUBLE_EQ(s.total_kwh(), 3.0);
}

// ------------------------------------------------------------------ Cost

TEST(Cost, PaperPrices) {
  const EnergyPrices prices;
  EXPECT_DOUBLE_EQ(prices.utility_rate.usd_per_kwh(), 0.13);  // California rate
  EXPECT_DOUBLE_EQ(prices.wind_rate.usd_per_kwh(), 0.05);     // AWEA wind rate
  EnergySplit s;
  s.wind = units::kwh(10.0);
  s.utility = units::kwh(10.0);
  EXPECT_DOUBLE_EQ(prices.cost(s).dollars(), 1.8);
}

TEST(Cost, FutureWindPrice) {
  const EnergyPrices future = EnergyPrices::future_wind();
  EXPECT_DOUBLE_EQ(future.wind_rate.usd_per_kwh(), 0.005);  // ref [2] projection
  EXPECT_DOUBLE_EQ(future.utility_rate.usd_per_kwh(), 0.13);
}

TEST(Cost, UtilityOnlyHelper) {
  const EnergyPrices prices;
  EXPECT_DOUBLE_EQ(prices.utility_cost(units::kwh(100.0)).dollars(), 13.0);
}

}  // namespace
}  // namespace iscope
