#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "profiling/scanner.hpp"

namespace iscope {
namespace {

struct Fixture {
  Cluster cluster;
  ProfileDb db;

  explicit Fixture(std::size_t n = 8, std::uint64_t seed = 1)
      : cluster(build_cluster([&] {
          ClusterConfig cfg;
          cfg.num_processors = n;
          cfg.seed = seed;
          return cfg;
        }())),
        db(n) {
    const Scanner scanner(&cluster, ScanConfig{});
    Rng rng(2);
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    scanner.scan_domain(all, 0.0, rng, db);
  }

  SimResult run(Scheme scheme, const std::vector<Task>& tasks,
                const HybridSupply& supply = HybridSupply{},
                SimConfig cfg = SimConfig{}) {
    return run_scheme(cluster, scheme, &db, supply, tasks, cfg);
  }
};

Task simple_task(std::int64_t id, double submit, std::size_t cpus,
                 double runtime, double deadline_mult = 12.0,
                 double gamma = 1.0) {
  Task t;
  t.id = id;
  t.submit_s = submit;
  t.cpus = cpus;
  t.runtime_s = runtime;
  t.gamma = gamma;
  t.deadline_s = submit + deadline_mult * runtime;
  return t;
}

TEST(Simulator, SingleTaskCompletes) {
  Fixture f;
  const SimResult r = f.run(Scheme::kBinRan, {simple_task(1, 0.0, 2, 100.0)});
  EXPECT_EQ(r.tasks_completed, 1u);
  EXPECT_EQ(r.deadline_misses, 0u);
  EXPECT_GT(r.makespan.seconds(), 0.0);
  EXPECT_GT(r.energy.total().joules(), 0.0);
}

TEST(Simulator, UtilityOnlyUsesNoWind) {
  Fixture f;
  const SimResult r = f.run(Scheme::kBinEffi, {simple_task(1, 0.0, 2, 100.0)});
  EXPECT_DOUBLE_EQ(r.energy.wind.joules(), 0.0);
  EXPECT_GT(r.energy.utility.joules(), 0.0);
}

TEST(Simulator, EnergyMatchesPowerTimesTime) {
  // One task, gamma 0 (no DVFS stretch effect on runtime), loose deadline:
  // it runs at the bottom level (cheapest for gamma=0). Check the meter
  // against an analytic value.
  Fixture f;
  Task t = simple_task(1, 0.0, 1, 500.0, 100.0, 0.0);
  const SimResult r = f.run(Scheme::kBinEffi, {t});
  EXPECT_EQ(r.tasks_completed, 1u);
  EXPECT_NEAR(r.makespan.seconds(), 500.0, 1e-6);
  // The chosen processor is the believed-most-efficient one; find the
  // minimum true power over the bin-voltage bottom level across procs in
  // the best bin and verify the energy is plausibly in range.
  const double cooling = 1.4;
  double lo = 1e18, hi = 0.0;
  for (std::size_t i = 0; i < f.cluster.size(); ++i) {
    const double p = f.cluster.power(i, 0, f.cluster.bin_vdd(i, 0)).watts();
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  EXPECT_GE(r.energy.total().joules(), lo * 500.0 * cooling - 1e-6);
  EXPECT_LE(r.energy.total().joules(), hi * 500.0 * cooling + 1e-6);
}

TEST(Simulator, GangTaskOccupiesAllProcessors) {
  Fixture f;
  const SimResult r = f.run(Scheme::kBinRan, {simple_task(1, 0.0, 8, 100.0)});
  EXPECT_EQ(r.tasks_completed, 1u);
  std::size_t used = 0;
  for (const double b : r.busy_time_s)
    if (b > 0.0) ++used;
  EXPECT_EQ(used, 8u);
}

TEST(Simulator, TasksQueueWhenClusterFull) {
  Fixture f;
  // Two full-cluster tasks: the second must wait for the first.
  std::vector<Task> tasks = {simple_task(1, 0.0, 8, 100.0),
                             simple_task(2, 0.0, 8, 100.0)};
  const SimResult r = f.run(Scheme::kBinRan, tasks);
  EXPECT_EQ(r.tasks_completed, 2u);
  EXPECT_GT(r.mean_wait.seconds(), 0.0);
  EXPECT_GT(r.makespan.seconds(), 2.0 * 100.0 - 1e-6);
}

TEST(Simulator, ImpossibleDeadlineCountsMiss) {
  Fixture f;
  Task t = simple_task(1, 0.0, 2, 1000.0);
  t.deadline_s = t.submit_s + 1050.0 * 1.0;  // feasible only at Fmax...
  std::vector<Task> tasks = {t, simple_task(2, 0.0, 8, 500.0, 1.1)};
  // Task 2 wants the whole cluster with an almost-impossible deadline;
  // task 1 holds 2 processors, so task 2 must miss.
  const SimResult r = f.run(Scheme::kBinRan, tasks);
  EXPECT_EQ(r.tasks_completed, 2u);
  EXPECT_GE(r.deadline_misses, 1u);
}

TEST(Simulator, WiderThanClusterThrows) {
  Fixture f;
  EXPECT_THROW(f.run(Scheme::kBinRan, {simple_task(1, 0.0, 9, 10.0)}),
               InvalidArgument);
}

TEST(Simulator, Deterministic) {
  Fixture f;
  std::vector<Task> tasks;
  for (int i = 0; i < 20; ++i)
    tasks.push_back(simple_task(i, i * 50.0, 1 + i % 4, 200.0 + i));
  const SimResult a = f.run(Scheme::kScanFair, tasks);
  const SimResult b = f.run(Scheme::kScanFair, tasks);
  EXPECT_EQ(a.energy.utility.joules(), b.energy.utility.joules());
  EXPECT_EQ(a.energy.wind.joules(), b.energy.wind.joules());
  EXPECT_EQ(a.makespan.seconds(), b.makespan.seconds());
  EXPECT_EQ(a.busy_time_s, b.busy_time_s);
}

TEST(Simulator, SeedChangesRandomPlacement) {
  Fixture f;
  // Keep the cluster mostly idle so the random choice actually matters (a
  // saturated cluster forces every scheme onto whatever just freed).
  std::vector<Task> tasks;
  for (int i = 0; i < 20; ++i)
    tasks.push_back(simple_task(i, i * 2000.0, 2, 300.0));
  SimConfig c1, c2;
  c1.seed = 1;
  c2.seed = 2;
  const SimResult a = f.run(Scheme::kBinRan, tasks, HybridSupply{}, c1);
  const SimResult b = f.run(Scheme::kBinRan, tasks, HybridSupply{}, c2);
  EXPECT_NE(a.busy_time_s, b.busy_time_s);
}

TEST(Simulator, WindAccountingSplits) {
  Fixture f;
  // Constant wind well below demand: both sources used.
  const SupplyTrace wind(Seconds{600.0}, std::vector<double>(100, 50.0));
  const HybridSupply supply(wind);
  const SimResult r =
      f.run(Scheme::kBinRan, {simple_task(1, 0.0, 8, 1000.0)}, supply);
  EXPECT_GT(r.energy.wind.joules(), 0.0);
  EXPECT_GT(r.energy.utility.joules(), 0.0);
  // Wind can never exceed available power x makespan.
  EXPECT_LE(r.energy.wind.joules(), 50.0 * r.makespan.seconds() + 1e-6);
}

TEST(Simulator, AbundantWindCoversEverything) {
  Fixture f;
  const SupplyTrace wind(Seconds{600.0}, std::vector<double>(100, 1e7));
  const HybridSupply supply(wind);
  const SimResult r =
      f.run(Scheme::kScanEffi, {simple_task(1, 0.0, 4, 500.0)}, supply);
  EXPECT_DOUBLE_EQ(r.energy.utility.joules(), 0.0);
  EXPECT_GT(r.energy.wind.joules(), 0.0);
  EXPECT_GT(r.wind_curtailed.kwh(), 0.0);
}

TEST(Simulator, TraceRecordedWhenRequested) {
  Fixture f;
  SimConfig cfg;
  cfg.record_trace = true;
  cfg.sample_interval_s = 100.0;
  const SimResult r = f.run(Scheme::kBinRan,
                            {simple_task(1, 0.0, 2, 1000.0)},
                            HybridSupply{}, cfg);
  EXPECT_GT(r.trace.size(), 5u);
  for (const PowerSample& s : r.trace) {
    EXPECT_GE(s.demand.watts(), 0.0);
    EXPECT_DOUBLE_EQ(s.utility.watts() + s.wind.watts(), s.demand.watts());
  }
}

TEST(Simulator, TraceSamplesRouteThroughBatteryWaterfall) {
  // No wind, a full high-power battery: every sampled watt of demand must
  // be attributed to battery discharge, none to the utility -- the sample
  // waterfall has to match the wind -> battery -> utility split the meter
  // integrates, not the old wind/utility-only formula.
  Fixture f;
  SimConfig cfg;
  cfg.record_trace = true;
  cfg.sample_interval_s = 100.0;
  cfg.battery = BatteryConfig::make(/*capacity_kwh=*/1000.0,
                                    /*power_kw=*/1000.0);
  cfg.battery.initial_soc = 1.0;
  const SimResult r = f.run(Scheme::kBinRan,
                            {simple_task(1, 0.0, 2, 1000.0)},
                            HybridSupply{}, cfg);
  ASSERT_GT(r.trace.size(), 3u);
  bool saw_demand = false;
  for (const PowerSample& s : r.trace) {
    if (s.demand.watts() <= 0.0) continue;
    saw_demand = true;
    EXPECT_DOUBLE_EQ(s.battery.watts(), s.demand.watts());
    EXPECT_DOUBLE_EQ(s.utility.watts(), 0.0);
    EXPECT_DOUBLE_EQ(s.wind.watts(), 0.0);
  }
  EXPECT_TRUE(saw_demand);
}

TEST(Simulator, TraceSamplesConserveDemandWithWindAndBattery) {
  Fixture f;
  SimConfig cfg;
  cfg.record_trace = true;
  cfg.sample_interval_s = 100.0;
  cfg.battery = BatteryConfig::make(/*capacity_kwh=*/5.0, /*power_kw=*/0.2);
  // A wind level that sometimes covers demand and sometimes falls short.
  std::vector<double> watts;
  for (int i = 0; i < 50; ++i) watts.push_back(i % 2 == 0 ? 0.0 : 500.0);
  const HybridSupply supply(SupplyTrace(Seconds{600.0}, std::move(watts)));
  const SimResult r = f.run(Scheme::kScanFair,
                            {simple_task(1, 0.0, 4, 2000.0, 20.0)},
                            supply, cfg);
  ASSERT_GT(r.trace.size(), 3u);
  for (const PowerSample& s : r.trace) {
    // Wind serving demand (s.wind minus any charging) + battery + utility
    // must supply exactly the demand.
    const double serving =
        std::min(s.demand.watts(), s.wind_avail.watts());
    EXPECT_NEAR(serving + s.battery.watts() + s.utility.watts(),
                s.demand.watts(), 1e-9);
    // The sample's wind consumption is at least what serves demand
    // (charging can only add to it) and never exceeds availability.
    EXPECT_GE(s.wind.watts(), serving - 1e-12);
    EXPECT_LE(s.wind.watts(), s.wind_avail.watts() + 1e-12);
  }
}

TEST(Simulator, NoTraceByDefault) {
  Fixture f;
  const SimResult r = f.run(Scheme::kBinRan, {simple_task(1, 0.0, 2, 100.0)});
  EXPECT_TRUE(r.trace.empty());
}

TEST(Simulator, BusyTimeConservation) {
  Fixture f;
  std::vector<Task> tasks;
  for (int i = 0; i < 10; ++i)
    tasks.push_back(simple_task(i, i * 100.0, 2, 150.0));
  const SimResult r = f.run(Scheme::kScanEffi, tasks);
  // Busy time per processor never exceeds the makespan.
  for (const double b : r.busy_time_s) {
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, r.makespan.seconds() + 1e-6);
  }
  // Total busy time is at least total work at Fmax x width (DVFS only
  // stretches runtimes).
  double total_busy = 0.0;
  for (const double b : r.busy_time_s) total_busy += b;
  double min_work = 0.0;
  for (const Task& t : tasks)
    min_work += t.runtime_s * static_cast<double>(t.cpus);
  EXPECT_GE(total_busy, min_work - 1e-6);
}

TEST(Simulator, EffiConcentratesMoreThanRandom) {
  Fixture f(16, 4);
  std::vector<Task> tasks;
  for (int i = 0; i < 60; ++i)
    tasks.push_back(simple_task(i, i * 200.0, 2, 400.0));
  const SimResult ran = f.run(Scheme::kScanRan, tasks);
  const SimResult effi = f.run(Scheme::kScanEffi, tasks);
  EXPECT_GT(effi.busy_variance_h2, ran.busy_variance_h2);
}

TEST(Simulator, ScanBeatsBinOnEnergy) {
  Fixture f(16, 5);
  std::vector<Task> tasks;
  for (int i = 0; i < 40; ++i)
    tasks.push_back(simple_task(i, i * 100.0, 2, 500.0));
  const SimResult bin = f.run(Scheme::kBinEffi, tasks);
  const SimResult scan = f.run(Scheme::kScanEffi, tasks);
  EXPECT_LT(scan.energy.total().joules(), bin.energy.total().joules());
}

TEST(Simulator, AllSchemesCompleteAllTasks) {
  Fixture f(16, 6);
  std::vector<Task> tasks;
  for (int i = 0; i < 30; ++i)
    tasks.push_back(simple_task(i, i * 150.0, 1 + i % 8, 300.0));
  const SupplyTrace wind(Seconds{600.0}, std::vector<double>(200, 400.0));
  const HybridSupply supply(wind);
  for (const Scheme s : kAllSchemes) {
    const SimResult r = f.run(s, tasks, supply);
    EXPECT_EQ(r.tasks_completed, tasks.size()) << scheme_name(s);
    EXPECT_GT(r.cost.dollars(), 0.0) << scheme_name(s);
  }
}

TEST(Simulator, RematchCountGrowsWithEpochs) {
  Fixture f;
  SimConfig fast, slow;
  fast.epoch_s = 100.0;
  slow.epoch_s = 10000.0;
  const std::vector<Task> tasks = {simple_task(1, 0.0, 2, 2000.0)};
  const SimResult a = f.run(Scheme::kBinRan, tasks, HybridSupply{}, fast);
  const SimResult b = f.run(Scheme::kBinRan, tasks, HybridSupply{}, slow);
  EXPECT_GT(a.dvfs_rematch_count, b.dvfs_rematch_count);
}

TEST(Simulator, EmptyTaskListIsNoop) {
  Fixture f;
  const SimResult r = f.run(Scheme::kBinRan, {});
  EXPECT_EQ(r.tasks_completed, 0u);
  EXPECT_DOUBLE_EQ(r.energy.total().joules(), 0.0);
}

TEST(Simulator, ConfigValidation) {
  SimConfig bad;
  bad.cooling_cop = 0.0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = SimConfig{};
  bad.efficient_pool_fraction = 1.5;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = SimConfig{};
  bad.wind_abundance_headroom = 0.5;
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

TEST(Simulator, ScanSchemeRequiresDb) {
  Fixture f;
  EXPECT_THROW(run_scheme(f.cluster, Scheme::kScanEffi, nullptr,
                          HybridSupply{}, {simple_task(1, 0.0, 1, 10.0)},
                          SimConfig{}),
               InvalidArgument);
  // Bin schemes run fine without one.
  EXPECT_NO_THROW(run_scheme(f.cluster, Scheme::kBinRan, nullptr,
                             HybridSupply{}, {simple_task(1, 0.0, 1, 10.0)},
                             SimConfig{}));
}

TEST(Simulator, HighUrgencyRunsFasterThanLowUrgency) {
  // A tight-deadline task must finish sooner than an identical loose one.
  Fixture f;
  const SimResult tight =
      f.run(Scheme::kBinEffi, {simple_task(1, 0.0, 2, 1000.0, 1.2)});
  const SimResult loose =
      f.run(Scheme::kBinEffi, {simple_task(1, 0.0, 2, 1000.0, 12.0)});
  EXPECT_LT(tight.makespan.seconds(), loose.makespan.seconds() + 1e-6);
  EXPECT_EQ(tight.deadline_misses, 0u);
}

}  // namespace
}  // namespace iscope
