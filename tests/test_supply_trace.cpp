#include "energy/supply_trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "energy/hybrid_supply.hpp"

namespace iscope {
namespace {

TEST(SupplyTrace, StepFunctionLookup) {
  const SupplyTrace t(Seconds{600.0}, {10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(t.power_at(Seconds{0.0}).watts(), 10.0);
  EXPECT_DOUBLE_EQ(t.power_at(Seconds{599.9}).watts(), 10.0);
  EXPECT_DOUBLE_EQ(t.power_at(Seconds{600.0}).watts(), 20.0);
  EXPECT_DOUBLE_EQ(t.power_at(Seconds{1500.0}).watts(), 30.0);
}

TEST(SupplyTrace, WrapAround) {
  const SupplyTrace t(Seconds{600.0}, {10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(t.power_at(Seconds{1800.0}, true).watts(), 10.0);  // wraps to start
  EXPECT_DOUBLE_EQ(t.power_at(Seconds{2400.0}, true).watts(), 20.0);
}

TEST(SupplyTrace, NoWrapHoldsLast) {
  const SupplyTrace t(Seconds{600.0}, {10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(t.power_at(Seconds{99999.0}, false).watts(), 30.0);
}

TEST(SupplyTrace, EmptyTraceIsZero) {
  const SupplyTrace t;
  EXPECT_DOUBLE_EQ(t.power_at(Seconds{123.0}).watts(), 0.0);
  EXPECT_TRUE(t.empty());
}

TEST(SupplyTrace, Stats) {
  const SupplyTrace t(Seconds{600.0}, {10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(t.mean_power().watts(), 20.0);
  EXPECT_DOUBLE_EQ(t.max_power().watts(), 30.0);
  EXPECT_DOUBLE_EQ(t.duration().seconds(), 1800.0);
  EXPECT_EQ(t.samples(), 3u);
}

TEST(SupplyTrace, Scaled) {
  const SupplyTrace t(Seconds{600.0}, {10.0, 20.0});
  const SupplyTrace s = t.scaled(3.5);  // the paper's NREL down-scaling knob
  EXPECT_DOUBLE_EQ(s.sample(0).watts(), 35.0);
  EXPECT_DOUBLE_EQ(s.sample(1).watts(), 70.0);
  EXPECT_THROW(t.scaled(-1.0), InvalidArgument);
}

TEST(SupplyTrace, ScaledToMean) {
  const SupplyTrace t(Seconds{600.0}, {10.0, 30.0});
  const SupplyTrace s = t.scaled_to_mean(Watts{100.0});
  EXPECT_DOUBLE_EQ(s.mean_power().watts(), 100.0);
  const SupplyTrace zeros(Seconds{600.0}, {0.0, 0.0});
  EXPECT_THROW(zeros.scaled_to_mean(Watts{5.0}), InvalidArgument);
}

TEST(SupplyTrace, Resampled) {
  const SupplyTrace t(Seconds{600.0}, {10.0, 20.0});
  const SupplyTrace fine = t.resampled(Seconds{300.0});
  EXPECT_EQ(fine.samples(), 4u);
  EXPECT_DOUBLE_EQ(fine.sample(0).watts(), 10.0);
  EXPECT_DOUBLE_EQ(fine.sample(1).watts(), 10.0);
  EXPECT_DOUBLE_EQ(fine.sample(2).watts(), 20.0);
}

TEST(SupplyTrace, RejectsNegativePower) {
  EXPECT_THROW(SupplyTrace(Seconds{600.0}, {1.0, -2.0}), InvalidArgument);
  EXPECT_THROW(SupplyTrace(Seconds{0.0}, {1.0}), InvalidArgument);
}

TEST(SupplyTrace, CsvRoundTrip) {
  const SupplyTrace t(Seconds{600.0}, {10.5, 20.25, 0.0});
  const std::string path = testing::TempDir() + "/trace_rt.csv";
  t.save_csv(path);
  const SupplyTrace back = SupplyTrace::load_csv(path);
  ASSERT_EQ(back.samples(), 3u);
  EXPECT_DOUBLE_EQ(back.step().seconds(), 600.0);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(back.sample(i).watts(), t.sample(i).watts());
  std::remove(path.c_str());
}

TEST(SupplyTrace, CsvRejectsNonUniformStep) {
  const std::string path = testing::TempDir() + "/trace_bad.csv";
  std::ofstream(path) << "time_s,power_w\n0,1\n600,2\n900,3\n";
  EXPECT_THROW(SupplyTrace::load_csv(path), ParseError);
  std::remove(path.c_str());
}

TEST(SupplyTrace, CsvRejectsEmpty) {
  const std::string path = testing::TempDir() + "/trace_empty.csv";
  std::ofstream(path) << "time_s,power_w\n";
  EXPECT_THROW(SupplyTrace::load_csv(path), ParseError);
  std::remove(path.c_str());
}

// ---------------------------------------------------------- HybridSupply

TEST(HybridSupply, UtilityOnlyHasNoWind) {
  const HybridSupply supply;
  EXPECT_FALSE(supply.has_wind());
  EXPECT_DOUBLE_EQ(supply.wind_available(Seconds{0.0}).watts(), 0.0);
  EXPECT_DOUBLE_EQ(supply.wind_available(Seconds{1e6}).watts(), 0.0);
}

TEST(HybridSupply, WindScaledByStrength) {
  const SupplyTrace t(Seconds{600.0}, {100.0, 200.0});
  const HybridSupply swp(t, 1.0);
  const HybridSupply swp18(t, 1.8);  // the Fig. 9 sweep knob
  EXPECT_DOUBLE_EQ(swp.wind_available(Seconds{0.0}).watts(), 100.0);
  EXPECT_DOUBLE_EQ(swp18.wind_available(Seconds{0.0}).watts(), 180.0);
  EXPECT_TRUE(swp.has_wind());
}

TEST(HybridSupply, NegativeStrengthRejected) {
  const SupplyTrace t(Seconds{600.0}, {1.0});
  EXPECT_THROW(HybridSupply(t, -0.5), InvalidArgument);
}

}  // namespace
}  // namespace iscope
