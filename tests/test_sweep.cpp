// Scenario-sweep engine: spec ordering, overrides, and the headline
// guarantee -- serial and parallel execution are bit-identical.
#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/error.hpp"
#include "core/experiment.hpp"

namespace iscope {
namespace {

// One small shared context for the whole suite (construction scans the
// cluster, so reuse it).
const ExperimentContext& ctx() {
  static const ExperimentContext* instance = [] {
    ExperimentConfig cfg = ExperimentConfig::paper_small().scaled(0.25);
    return new ExperimentContext(cfg);
  }();
  return *instance;
}

// Field-by-field bitwise equality of two SimResults. EXPECT_EQ on doubles
// is exact (no tolerance): that is the point -- parallel execution must not
// perturb a single bit.
void expect_bit_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.energy.wind.joules(), b.energy.wind.joules());
  EXPECT_EQ(a.energy.utility.joules(), b.energy.utility.joules());
  EXPECT_EQ(a.cost.dollars(), b.cost.dollars());
  EXPECT_EQ(a.wind_curtailed.kwh(), b.wind_curtailed.kwh());
  EXPECT_EQ(a.battery_delivered.kwh(), b.battery_delivered.kwh());
  EXPECT_EQ(a.battery_losses.kwh(), b.battery_losses.kwh());
  EXPECT_EQ(a.tasks_completed, b.tasks_completed);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.mean_wait.seconds(), b.mean_wait.seconds());
  EXPECT_EQ(a.makespan.seconds(), b.makespan.seconds());
  EXPECT_EQ(a.busy_time_s, b.busy_time_s);
  EXPECT_EQ(a.busy_variance_h2, b.busy_variance_h2);
  EXPECT_EQ(a.procs_used_fraction, b.procs_used_fraction);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].time.seconds(), b.trace[i].time.seconds());
    EXPECT_EQ(a.trace[i].demand.watts(), b.trace[i].demand.watts());
    EXPECT_EQ(a.trace[i].wind.watts(), b.trace[i].wind.watts());
    EXPECT_EQ(a.trace[i].utility.watts(), b.trace[i].utility.watts());
    EXPECT_EQ(a.trace[i].wind_avail.watts(), b.trace[i].wind_avail.watts());
  }
  EXPECT_EQ(a.dvfs_rematch_count, b.dvfs_rematch_count);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

TEST(SweepRunner, ResolvesParallelism) {
  EXPECT_GE(SweepRunner(ctx()).parallelism(), 1u);  // 0 -> hardware
  EXPECT_EQ(SweepRunner(ctx(), 1).parallelism(), 1u);
  EXPECT_EQ(SweepRunner(ctx(), 8).parallelism(), 8u);
}

TEST(SweepRunner, RejectsIncompleteSpecs) {
  ScenarioSpec spec;
  spec.tasks = nullptr;
  EXPECT_THROW(SweepRunner(ctx(), 1).run_one(spec), InvalidArgument);
}

TEST(SweepRunner, ResultsComeBackInSpecOrder) {
  const auto tasks =
      std::make_shared<const std::vector<Task>>(ctx().make_tasks(0.3));
  const auto supply =
      std::make_shared<const HybridSupply>(ctx().make_supply(false));
  std::vector<ScenarioSpec> specs;
  for (const Scheme scheme : kAllSchemes) {
    ScenarioSpec s;
    s.scheme = scheme;
    s.tasks = tasks;
    s.supply = supply;
    s.x = static_cast<double>(specs.size());
    specs.push_back(std::move(s));
  }
  const auto points = SweepRunner(ctx(), 4).run_points(specs);
  ASSERT_EQ(points.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(points[i].scheme, specs[i].scheme);
    EXPECT_EQ(points[i].x, specs[i].x);
    // Each result matches a direct single run of the same scenario.
    expect_bit_identical(points[i].result,
                         ctx().run(specs[i].scheme, *tasks, *supply));
  }
}

TEST(SweepRunner, SerialAndParallelSweepHuAreBitIdentical) {
  // The ISSUE's determinism guarantee: sweep_hu at parallelism=1 and
  // parallelism=8 produce bit-identical SimResults at the same seed.
  ExperimentConfig serial_cfg = ctx().config();
  serial_cfg.parallelism = 1;
  ExperimentConfig parallel_cfg = ctx().config();
  parallel_cfg.parallelism = 8;
  const ExperimentContext serial_ctx(serial_cfg);
  const ExperimentContext parallel_ctx(parallel_cfg);

  const std::vector<double> hu = {0.0, 0.5, 1.0};
  const auto a = sweep_hu(serial_ctx, hu, /*with_wind=*/true);
  const auto b = sweep_hu(parallel_ctx, hu, /*with_wind=*/true);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].scheme, b[i].scheme);
    EXPECT_EQ(a[i].x, b[i].x);
    expect_bit_identical(a[i].result, b[i].result);
  }
}

TEST(SweepRunner, PowerTracesIdenticalAcrossParallelism) {
  // record_trace runs carry their PowerSamples through the pool untouched.
  ExperimentConfig cfg = ctx().config();
  cfg.parallelism = 3;
  const ExperimentContext parallel_ctx(cfg);
  const auto serial = power_traces(ctx());  // ctx() default: may be 1 core
  const auto parallel = power_traces(parallel_ctx);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_GT(serial[i].result.trace.size(), 0u);
    expect_bit_identical(serial[i].result, parallel[i].result);
  }
}

TEST(SweepRunner, SimOverrideIsHonored) {
  const auto tasks =
      std::make_shared<const std::vector<Task>>(ctx().make_tasks(0.3));
  const auto supply =
      std::make_shared<const HybridSupply>(ctx().make_supply(false));
  ScenarioSpec spec;
  spec.scheme = Scheme::kScanFair;
  spec.tasks = tasks;
  spec.supply = supply;
  SimConfig sim = ctx().config().sim;
  sim.record_timeline = true;
  spec.sim = sim;
  const SimResult r = SweepRunner(ctx(), 1).run_one(spec);
  EXPECT_GT(r.timeline.size(), 0u);
  // The override keeps the derived-seed policy: same run as the default
  // config apart from the recorded timeline.
  const SimResult base = ctx().run(Scheme::kScanFair, *tasks, *supply);
  EXPECT_EQ(r.energy.utility.joules(), base.energy.utility.joules());
  EXPECT_EQ(r.energy.wind.joules(), base.energy.wind.joules());
  EXPECT_EQ(r.events_processed, base.events_processed);
}

TEST(SweepRunner, ExplicitSeedOverridesDerivation) {
  const auto tasks =
      std::make_shared<const std::vector<Task>>(ctx().make_tasks(0.3));
  const auto supply =
      std::make_shared<const HybridSupply>(ctx().make_supply(false));
  ScenarioSpec spec;
  spec.scheme = Scheme::kBinRan;  // random placement: seed-sensitive
  spec.tasks = tasks;
  spec.supply = supply;
  const SimResult derived = SweepRunner(ctx(), 1).run_one(spec);
  spec.seed = 123456789u;
  const SimResult reseeded = SweepRunner(ctx(), 1).run_one(spec);
  EXPECT_NE(derived.busy_time_s, reseeded.busy_time_s);
}

TEST(SweepRunner, TaskExceptionsReachTheCaller) {
  const auto tasks =
      std::make_shared<const std::vector<Task>>(ctx().make_tasks(0.3));
  const auto supply =
      std::make_shared<const HybridSupply>(ctx().make_supply(false));
  ScenarioSpec good;
  good.scheme = Scheme::kBinRan;
  good.tasks = tasks;
  good.supply = supply;
  ScenarioSpec bad = good;
  bad.supply = nullptr;
  EXPECT_THROW(SweepRunner(ctx(), 4).run({good, bad, good}), InvalidArgument);
}

}  // namespace
}  // namespace iscope
