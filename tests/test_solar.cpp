#include "energy/solar_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"

namespace iscope {
namespace {

TEST(ClearSky, NightIsZero) {
  EXPECT_DOUBLE_EQ(clear_sky_fraction(0.0, 6.0, 18.0), 0.0);
  EXPECT_DOUBLE_EQ(clear_sky_fraction(5.9, 6.0, 18.0), 0.0);
  EXPECT_DOUBLE_EQ(clear_sky_fraction(18.1, 6.0, 18.0), 0.0);
  EXPECT_DOUBLE_EQ(clear_sky_fraction(23.5, 6.0, 18.0), 0.0);
}

TEST(ClearSky, NoonIsPeak) {
  EXPECT_NEAR(clear_sky_fraction(12.0, 6.0, 18.0), 1.0, 1e-12);
  EXPECT_GT(clear_sky_fraction(12.0, 6.0, 18.0),
            clear_sky_fraction(8.0, 6.0, 18.0));
  EXPECT_GT(clear_sky_fraction(12.0, 6.0, 18.0),
            clear_sky_fraction(16.0, 6.0, 18.0));
}

TEST(ClearSky, SymmetricAroundNoon) {
  EXPECT_NEAR(clear_sky_fraction(9.0, 6.0, 18.0),
              clear_sky_fraction(15.0, 6.0, 18.0), 1e-12);
}

TEST(ClearSky, WrapsPast24Hours) {
  EXPECT_NEAR(clear_sky_fraction(36.0, 6.0, 18.0),
              clear_sky_fraction(12.0, 6.0, 18.0), 1e-12);
}

TEST(SolarFarm, BoundsAndDiurnalShape) {
  SolarFarmConfig cfg;
  const SupplyTrace t = generate_solar_days(cfg, 3.0);
  double night_sum = 0.0, day_sum = 0.0;
  for (std::size_t i = 0; i < t.samples(); ++i) {
    const double p = t.sample(i).watts();
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, cfg.peak.watts());
    const double hour = std::fmod(
        static_cast<double>(i) * cfg.step.seconds() / units::kSecondsPerHour, 24.0);
    if (hour < 5.0 || hour > 19.0) night_sum += p;
    if (hour > 10.0 && hour < 14.0) day_sum += p;
  }
  EXPECT_DOUBLE_EQ(night_sum, 0.0);
  EXPECT_GT(day_sum, 0.0);
}

TEST(SolarFarm, Deterministic) {
  SolarFarmConfig cfg;
  EXPECT_EQ(generate_solar_trace(cfg, 200).raw(),
            generate_solar_trace(cfg, 200).raw());
}

TEST(SolarFarm, CloudierClimateYieldsLess) {
  SolarFarmConfig sunny, cloudy;
  sunny.clear_fraction = 0.9;
  cloudy.clear_fraction = 0.4;
  EXPECT_GT(generate_solar_days(sunny, 5.0).mean_power().watts(),
            generate_solar_days(cloudy, 5.0).mean_power().watts());
}

TEST(SolarFarm, Validation) {
  SolarFarmConfig cfg;
  cfg.sunrise_hour = 20.0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = SolarFarmConfig{};
  cfg.clear_fraction = 0.0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = SolarFarmConfig{};
  EXPECT_THROW(generate_solar_trace(cfg, 0), InvalidArgument);
}

TEST(CombineSupplies, SumsElementwise) {
  const SupplyTrace a(Seconds{600.0}, {1.0, 2.0, 3.0});
  const SupplyTrace b(Seconds{600.0}, {10.0, 20.0});
  const SupplyTrace c = combine_supplies(a, b);
  ASSERT_EQ(c.samples(), 2u);  // shorter length wins
  EXPECT_DOUBLE_EQ(c.sample(0).watts(), 11.0);
  EXPECT_DOUBLE_EQ(c.sample(1).watts(), 22.0);
}

TEST(CombineSupplies, StepMismatchThrows) {
  const SupplyTrace a(Seconds{600.0}, {1.0});
  const SupplyTrace b(Seconds{300.0}, {1.0});
  EXPECT_THROW(combine_supplies(a, b), InvalidArgument);
  EXPECT_THROW(combine_supplies(a, SupplyTrace{}), InvalidArgument);
}

TEST(CombineSupplies, WindPlusSolarSmoothsNights) {
  // A hybrid farm has generation at night (wind) and a midday boost
  // (solar) -- the combination covers more hours than solar alone.
  SolarFarmConfig solar;
  const SupplyTrace s = generate_solar_days(solar, 2.0);
  const SupplyTrace flat_wind(Seconds{600.0},
                              std::vector<double>(s.samples(), 5e3));
  const SupplyTrace hybrid = combine_supplies(s, flat_wind);
  std::size_t covered = 0;
  for (std::size_t i = 0; i < hybrid.samples(); ++i)
    if (hybrid.sample(i).watts() > 1e3) ++covered;
  EXPECT_EQ(covered, hybrid.samples());
}

}  // namespace
}  // namespace iscope
