#include "power/node_power.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace iscope {
namespace {

TEST(PsuEfficiency, BathtubShape) {
  const NodePowerModel m;
  // Trickle loads are inefficient; the sweet spot is mid-load.
  EXPECT_LT(m.psu_efficiency(0.05), m.psu_efficiency(0.2));
  EXPECT_LT(m.psu_efficiency(0.2), m.psu_efficiency(0.5));
  EXPECT_GT(m.psu_efficiency(0.5), m.psu_efficiency(1.0));
  // Anchor points of the curve.
  EXPECT_NEAR(m.psu_efficiency(0.10), 0.80, 1e-9);
  EXPECT_NEAR(m.psu_efficiency(0.50), 0.92, 1e-9);
}

TEST(PsuEfficiency, ClampedAndValidated) {
  const NodePowerModel m;
  EXPECT_GE(m.psu_efficiency(0.0), 0.5);
  EXPECT_LE(m.psu_efficiency(5.0), 0.99);
  EXPECT_THROW(m.psu_efficiency(-0.1), InvalidArgument);
}

TEST(NodePower, DcComposition) {
  NodeComponents c;
  c.memory_idle = Watts{10.0};
  c.memory_active = Watts{30.0};
  c.disk = Watts{5.0};
  c.nic = Watts{5.0};
  c.board = Watts{20.0};
  const NodePowerModel m(c);
  // Idle memory: cpu + 10 + 5 + 5 + 20.
  EXPECT_DOUBLE_EQ(m.dc_power(Watts{100.0}, 0.0).watts(), 140.0);
  // Full memory activity adds the DRAM swing.
  EXPECT_DOUBLE_EQ(m.dc_power(Watts{100.0}, 1.0).watts(), 160.0);
  // Halfway interpolates.
  EXPECT_DOUBLE_EQ(m.dc_power(Watts{100.0}, 0.5).watts(), 150.0);
}

TEST(NodePower, WallExceedsDc) {
  const NodePowerModel m;
  const double dc = m.dc_power(Watts{125.0}, 0.5).watts();
  const double wall = m.wall_power(Watts{125.0}, 0.5).watts();
  EXPECT_GT(wall, dc);
  EXPECT_LT(wall, dc / 0.5);  // never worse than the efficiency floor
}

TEST(NodePower, MemoryBoundNodeOverheadDominates) {
  // The paper's Sec. IV-A caveat: for memory-bound work the non-CPU share
  // is substantial. At a low CPU power (memory-bound task on a slow DVFS
  // level), the node overhead exceeds half the CPU draw.
  const NodePowerModel m;
  const double cpu_w = 70.0;  // low-level DVFS point
  const double overhead = m.wall_power(Watts{cpu_w}, 1.0).watts() - cpu_w;
  EXPECT_GT(overhead, 0.5 * cpu_w);
}

TEST(NodePower, VariationSampling) {
  const NodePowerModel m;
  Rng rng(1);
  RunningStats mem;
  for (int i = 0; i < 2000; ++i) {
    const NodeVariation v = m.sample_variation(rng);
    mem.add(v.memory_scale);
    EXPECT_GE(v.memory_scale, 0.7);
    EXPECT_LE(v.memory_scale, 1.3);
    EXPECT_GE(v.psu_efficiency_shift, -0.02);
    EXPECT_LE(v.psu_efficiency_shift, 0.02);
  }
  EXPECT_NEAR(mem.mean(), 1.0, 0.01);
}

TEST(NodePower, VariationChangesWallPower) {
  const NodePowerModel m;
  NodeVariation hot;
  hot.memory_scale = 1.2;
  hot.board_scale = 1.1;
  hot.psu_efficiency_shift = -0.02;
  EXPECT_GT(m.wall_power(Watts{100.0}, 0.5, hot).watts(), m.wall_power(Watts{100.0}, 0.5).watts());
}

TEST(NodePower, Validation) {
  NodeComponents bad;
  bad.memory_active = Watts{1.0};
  bad.memory_idle = Watts{5.0};  // idle > active
  EXPECT_THROW(NodePowerModel{bad}, InvalidArgument);
  const NodePowerModel m;
  EXPECT_THROW(m.dc_power(Watts{-1.0}, 0.5), InvalidArgument);
  EXPECT_THROW(m.dc_power(Watts{1.0}, 1.5), InvalidArgument);
}

}  // namespace
}  // namespace iscope
