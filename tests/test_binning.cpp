#include "variation/binning.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "variation/varius.hpp"

namespace iscope {
namespace {

std::vector<MinVddCurve> sample_population(std::size_t n, std::uint64_t seed) {
  const VariusModel m(VariusParams{}, quad_core_layout());
  const FreqLevels levels = FreqLevels::paper_default();
  Rng rng(seed);
  std::vector<MinVddCurve> chips;
  for (std::size_t i = 0; i < n; ++i) {
    const ChipVariation chip = m.sample_chip(rng);
    std::vector<MinVddCurve> cores;
    for (const auto& c : chip.cores)
      cores.push_back(build_core_curve(m, c, levels));
    chips.push_back(MinVddCurve::chip_worst_case(cores));
  }
  return chips;
}

TEST(SpeedBin, NearEqualPopulation) {
  const auto chips = sample_population(90, 1);
  const BinningResult r = speed_bin(chips, 3);
  EXPECT_EQ(r.bin_sizes.size(), 3u);
  for (const std::size_t s : r.bin_sizes) EXPECT_EQ(s, 30u);
}

TEST(SpeedBin, UnevenPopulationStillCovered) {
  const auto chips = sample_population(10, 2);
  const BinningResult r = speed_bin(chips, 3);
  std::size_t total = 0;
  for (const std::size_t s : r.bin_sizes) total += s;
  EXPECT_EQ(total, 10u);
}

TEST(SpeedBin, BinVoltageDominatesMembers) {
  const auto chips = sample_population(60, 3);
  const BinningResult r = speed_bin(chips, 3);
  for (std::size_t i = 0; i < chips.size(); ++i) {
    const auto& bin = r.bin_curve[static_cast<std::size_t>(r.bin_of_chip[i])];
    for (std::size_t l = 0; l < chips[i].levels(); ++l)
      EXPECT_GE(bin.vdd(l), chips[i].vdd(l));
  }
}

TEST(SpeedBin, BinsOrderedByEfficiency) {
  const auto chips = sample_population(60, 4);
  const BinningResult r = speed_bin(chips, 3);
  const std::size_t top = chips.front().levels() - 1;
  // Every chip in bin 0 needs at most the voltage of every chip in bin 2.
  double bin0_max = 0.0, bin2_min = 1e9;
  for (std::size_t i = 0; i < chips.size(); ++i) {
    if (r.bin_of_chip[i] == 0)
      bin0_max = std::max(bin0_max, chips[i].vdd(top));
    if (r.bin_of_chip[i] == 2)
      bin2_min = std::min(bin2_min, chips[i].vdd(top));
  }
  EXPECT_LE(bin0_max, bin2_min);
}

TEST(SpeedBin, BinCurvesMonotone) {
  const auto chips = sample_population(40, 5);
  const BinningResult r = speed_bin(chips, 3);
  for (const auto& bin : r.bin_curve)
    for (std::size_t l = 1; l < bin.levels(); ++l)
      EXPECT_GE(bin.vdd(l), bin.vdd(l - 1));
}

TEST(SpeedBin, SingleBinIsGlobalWorstCase) {
  const auto chips = sample_population(25, 6);
  const BinningResult r = speed_bin(chips, 1);
  const std::size_t top = chips.front().levels() - 1;
  double worst = 0.0;
  for (const auto& c : chips) worst = std::max(worst, c.vdd(top));
  EXPECT_DOUBLE_EQ(r.bin_curve[0].vdd(top), worst);
}

TEST(SpeedBin, OneBinPerChipHasZeroHeadroom) {
  const auto chips = sample_population(8, 7);
  const BinningResult r = speed_bin(chips, 8);
  for (std::size_t i = 0; i < chips.size(); ++i) {
    const auto& bin = r.bin_curve[static_cast<std::size_t>(r.bin_of_chip[i])];
    for (std::size_t l = 0; l < chips[i].levels(); ++l)
      EXPECT_DOUBLE_EQ(bin.vdd(l), chips[i].vdd(l));
  }
}

TEST(SpeedBin, Deterministic) {
  const auto chips = sample_population(30, 8);
  const BinningResult a = speed_bin(chips, 3);
  const BinningResult b = speed_bin(chips, 3);
  EXPECT_EQ(a.bin_of_chip, b.bin_of_chip);
}

TEST(SpeedBin, Errors) {
  const std::vector<MinVddCurve> none;
  EXPECT_THROW(speed_bin(none, 3), InvalidArgument);
  const auto chips = sample_population(5, 9);
  EXPECT_THROW(speed_bin(chips, 0), InvalidArgument);
  EXPECT_THROW(speed_bin(chips, 6), InvalidArgument);
}

TEST(SpeedBin, MeanHeadroomPositive) {
  // The scanner's payoff: the average chip sits below its bin's voltage.
  const auto chips = sample_population(120, 10);
  const BinningResult r = speed_bin(chips, 3);
  const std::size_t top = chips.front().levels() - 1;
  double headroom = 0.0;
  for (std::size_t i = 0; i < chips.size(); ++i)
    headroom += r.bin_curve[static_cast<std::size_t>(r.bin_of_chip[i])].vdd(top) -
                chips[i].vdd(top);
  EXPECT_GT(headroom / static_cast<double>(chips.size()), 0.005);
}

}  // namespace
}  // namespace iscope
