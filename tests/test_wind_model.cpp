#include "energy/wind_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace iscope {
namespace {

TEST(TurbineCurve, Regions) {
  const TurbineCurve t;  // cut-in 3, rated 12, cut-out 25, 1.5 MW
  EXPECT_DOUBLE_EQ(t.power(0.0).watts(), 0.0);
  EXPECT_DOUBLE_EQ(t.power(2.9).watts(), 0.0);        // below cut-in
  EXPECT_GT(t.power(5.0).watts(), 0.0);               // ramp
  EXPECT_LT(t.power(5.0).watts(), t.rated.watts());
  EXPECT_DOUBLE_EQ(t.power(12.0).watts(), t.rated.watts()); // rated
  EXPECT_DOUBLE_EQ(t.power(20.0).watts(), t.rated.watts()); // still rated
  EXPECT_DOUBLE_EQ(t.power(25.0).watts(), 0.0);       // cut-out
  EXPECT_DOUBLE_EQ(t.power(30.0).watts(), 0.0);       // storm shutdown
}

TEST(TurbineCurve, RampIsMonotoneCubic) {
  const TurbineCurve t;
  double prev = 0.0;
  for (double v = 3.0; v <= 12.0; v += 0.5) {
    const double p = t.power(v).watts();
    EXPECT_GE(p, prev);
    prev = p;
  }
  // Exactly cubic between cut-in and rated.
  const double mid = 7.5;
  const double expected = t.rated.watts() *
      (mid * mid * mid - 27.0) / (12.0 * 12.0 * 12.0 - 27.0);
  EXPECT_NEAR(t.power(mid).watts(), expected, 1e-6);
}

TEST(TurbineCurve, Validation) {
  TurbineCurve bad;
  bad.cut_in_ms = 15.0;  // above rated
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = TurbineCurve{};
  bad.rated = Watts{0.0};
  EXPECT_THROW(bad.validate(), InvalidArgument);
  EXPECT_THROW(TurbineCurve{}.power(-1.0), InvalidArgument);
}

TEST(WindFarm, TraceBounds) {
  WindFarmConfig cfg;
  cfg.turbines = 10;
  const SupplyTrace t = generate_wind_trace(cfg, 500);
  EXPECT_EQ(t.samples(), 500u);
  EXPECT_DOUBLE_EQ(t.step().seconds(), 600.0);  // 10-minute NREL cadence
  for (std::size_t i = 0; i < t.samples(); ++i) {
    EXPECT_GE(t.sample(i).watts(), 0.0);
    EXPECT_LE(t.sample(i).watts(), 10.0 * cfg.turbine.rated.watts());
  }
}

TEST(WindFarm, Deterministic) {
  WindFarmConfig cfg;
  const SupplyTrace a = generate_wind_trace(cfg, 100);
  const SupplyTrace b = generate_wind_trace(cfg, 100);
  EXPECT_EQ(a.raw(), b.raw());
}

TEST(WindFarm, SeedChangesTrace) {
  WindFarmConfig a, b;
  b.seed = a.seed + 1;
  EXPECT_NE(generate_wind_trace(a, 100).raw(),
            generate_wind_trace(b, 100).raw());
}

TEST(WindFarm, TemporalCorrelation) {
  // Adjacent samples must correlate far more than samples a day apart.
  WindFarmConfig cfg;
  cfg.diurnal_amplitude = 0.0;  // isolate the AR(1) effect
  const SupplyTrace t = generate_wind_trace(cfg, 2000);
  RunningStats all;
  for (std::size_t i = 0; i < t.samples(); ++i) all.add(t.sample(i).watts());
  const double mean = all.mean();
  double adj = 0.0, far = 0.0;
  std::size_t n_adj = 0, n_far = 0;
  for (std::size_t i = 0; i + 144 < t.samples(); ++i) {
    adj += (t.sample(i).watts() - mean) * (t.sample(i + 1).watts() - mean);
    ++n_adj;
    far += (t.sample(i).watts() - mean) * (t.sample(i + 144).watts() - mean);
    ++n_far;
  }
  const double var = all.variance();
  EXPECT_GT(adj / static_cast<double>(n_adj) / var, 0.7);
  EXPECT_LT(std::abs(far / static_cast<double>(n_far) / var), 0.35);
}

TEST(WindFarm, VariabilityIsSubstantial) {
  // The paper's premise: wind "can change from full grade to zero".
  const SupplyTrace t = generate_wind_trace(WindFarmConfig{}, 2016);  // 2 weeks
  EXPECT_GT(t.max_power().watts(), 2.0 * t.mean_power().watts() * 0.9);
  std::size_t calm = 0;
  for (std::size_t i = 0; i < t.samples(); ++i)
    if (t.sample(i).watts() < 0.05 * t.mean_power().watts()) ++calm;
  EXPECT_GT(calm, 0u);  // real calms occur
  EXPECT_LT(static_cast<double>(calm) / static_cast<double>(t.samples()),
            0.5);  // but not always
}

TEST(WindFarm, GenerateDays) {
  WindFarmConfig cfg;
  const SupplyTrace t = generate_wind_days(cfg, 2.0);
  EXPECT_DOUBLE_EQ(t.duration().seconds(), 2.0 * units::kSecondsPerDay);
}

TEST(WindFarm, TurbineCountScalesOutput) {
  WindFarmConfig one, many;
  one.turbines = 1;
  many.turbines = 30;
  const double m1 = generate_wind_trace(one, 500).mean_power().watts();
  const double m30 = generate_wind_trace(many, 500).mean_power().watts();
  EXPECT_NEAR(m30 / m1, 30.0, 1e-9);
}

TEST(WindFarm, Validation) {
  WindFarmConfig cfg;
  cfg.ar1 = 1.0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = WindFarmConfig{};
  cfg.turbines = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = WindFarmConfig{};
  EXPECT_THROW(generate_wind_trace(cfg, 0), InvalidArgument);
}

}  // namespace
}  // namespace iscope
