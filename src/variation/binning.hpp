// Factory speed binning (paper Table 1 / Sec. V-B).
//
// Processors are graded into a small number of bins by their power
// efficiency. All chips placed in a bin must run at the *worst-case* chip's
// Min Vdd of that bin at every frequency level -- this is exactly the
// conservative guardband the paper's `Bin*` schemes are stuck with, and the
// efficiency headroom the `Scan*` schemes recover.
#pragma once

#include <cstddef>
#include <vector>

#include "variation/vdd_model.hpp"

namespace iscope {

struct BinningResult {
  /// bin index per chip; bin 0 is the most efficient grade.
  std::vector<int> bin_of_chip;
  /// per bin, the worst-case (max) Min Vdd at each frequency level.
  std::vector<MinVddCurve> bin_curve;
  /// chips per bin.
  std::vector<std::size_t> bin_sizes;

  int bins() const { return static_cast<int>(bin_curve.size()); }
};

/// Grade `chip_curves` (chip-level Min Vdd curves) into `num_bins` bins of
/// near-equal population by ascending Min Vdd at the top frequency level
/// (a proxy for power efficiency, as in AMD's Opteron 6300 binning), then
/// compute each bin's worst-case voltage curve.
BinningResult speed_bin(const std::vector<MinVddCurve>& chip_curves,
                        int num_bins);

}  // namespace iscope
