// Min Vdd curves: the per-core / per-chip minimum safe supply voltage at
// each DVFS frequency level. These are the *ground-truth* hardware
// characteristics that the iScope scanner rediscovers through pass/fail
// testing, and that the scheduler's knowledge views consume.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "variation/varius.hpp"

namespace iscope {

/// Ascending DVFS frequency levels [GHz] with their stock ("nominal")
/// supply voltages. The paper's datacenter CPUs expose 5 levels spanning
/// 750 MHz - 2 GHz (Sec. V-B).
struct FreqLevels {
  std::vector<double> freq_ghz;  ///< ascending
  std::vector<double> vdd_nom;   ///< stock voltage per level

  std::size_t count() const { return freq_ghz.size(); }
  void validate() const;

  /// The paper's 5-level table: 750 MHz .. 2 GHz, evenly spaced, with a
  /// linear stock-voltage ramp 0.85 V .. 1.30 V.
  static FreqLevels paper_default();
};

/// Min Vdd per frequency level for one core or one chip.
class MinVddCurve {
 public:
  MinVddCurve() = default;
  MinVddCurve(std::vector<double> freq_ghz, std::vector<double> vdd);

  std::size_t levels() const { return freq_ghz_.size(); }
  double freq(std::size_t level) const;
  double vdd(std::size_t level) const;
  const std::vector<double>& freqs() const { return freq_ghz_; }
  const std::vector<double>& vdds() const { return vdd_; }

  /// Chip-level curve under a shared voltage domain: per level, the max
  /// over all member cores (the slowest core dictates the chip voltage --
  /// paper Sec. III-B default).
  static MinVddCurve chip_worst_case(std::span<const MinVddCurve> cores);

  /// Scale all voltages by `factor` (e.g. the iGPU-enabled penalty of
  /// Sec. V-A, or an extra guardband). Curve stays monotone.
  MinVddCurve scaled(double factor) const;

 private:
  std::vector<double> freq_ghz_;
  std::vector<double> vdd_;
};

/// Build the ground-truth Min Vdd curve of a core: alpha-power-law inversion
/// at each level plus an intrinsic guardband (the chip's own safety margin
/// for aging/noise, *not* the factory worst-case margin).
MinVddCurve build_core_curve(const VariusModel& model, const CoreVariation& core,
                             const FreqLevels& levels,
                             double intrinsic_guardband = 0.01);

/// Multiplier applied to Min Vdd when the integrated GPU is enabled.
/// Calibrated so the 16-core mean moves 1.219 V -> 1.232 V as measured on
/// the A10-5800K testbed (paper Fig. 4B): 1.232/1.219.
inline constexpr double kIntegratedGpuPenalty = 1.232 / 1.219;

}  // namespace iscope
