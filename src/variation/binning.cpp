#include "variation/binning.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace iscope {

BinningResult speed_bin(const std::vector<MinVddCurve>& chip_curves,
                        int num_bins) {
  ISCOPE_CHECK_ARG(!chip_curves.empty(), "speed_bin: no chips");
  ISCOPE_CHECK_ARG(num_bins >= 1, "speed_bin: need at least one bin");
  ISCOPE_CHECK_ARG(static_cast<std::size_t>(num_bins) <= chip_curves.size(),
                   "speed_bin: more bins than chips");
  const std::size_t n = chip_curves.size();
  const std::size_t levels = chip_curves.front().levels();
  for (const auto& c : chip_curves)
    ISCOPE_CHECK_ARG(c.levels() == levels,
                     "speed_bin: chips must share frequency levels");

  // Order chips by efficiency: ascending Min Vdd at the top level.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double va = chip_curves[a].vdd(levels - 1);
    const double vb = chip_curves[b].vdd(levels - 1);
    if (va != vb) return va < vb;
    return a < b;  // stable tiebreak for determinism
  });

  BinningResult result;
  result.bin_of_chip.assign(n, 0);
  result.bin_sizes.assign(static_cast<std::size_t>(num_bins), 0);

  // Near-equal population split, best chips first.
  for (std::size_t rank = 0; rank < n; ++rank) {
    const int bin = static_cast<int>(
        (rank * static_cast<std::size_t>(num_bins)) / n);
    result.bin_of_chip[order[rank]] = bin;
    ++result.bin_sizes[static_cast<std::size_t>(bin)];
  }

  // Worst-case voltage per bin per level.
  const auto& freqs = chip_curves.front().freqs();
  std::vector<std::vector<double>> worst(
      static_cast<std::size_t>(num_bins),
      std::vector<double>(levels, 0.0));
  for (std::size_t chip = 0; chip < n; ++chip) {
    auto& w = worst[static_cast<std::size_t>(result.bin_of_chip[chip])];
    for (std::size_t l = 0; l < levels; ++l)
      w[l] = std::max(w[l], chip_curves[chip].vdd(l));
  }
  result.bin_curve.reserve(static_cast<std::size_t>(num_bins));
  for (auto& w : worst) {
    // A bin's worst-case curve can be non-monotone only if bins are empty
    // (excluded above); still, enforce monotonicity defensively.
    for (std::size_t l = 1; l < w.size(); ++l) w[l] = std::max(w[l], w[l - 1]);
    result.bin_curve.emplace_back(freqs, std::move(w));
  }
  return result;
}

}  // namespace iscope
