#include "variation/population_stats.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace iscope {

PopulationStats measure_population(const VariusModel& model,
                                   std::size_t chips, std::uint64_t seed) {
  ISCOPE_CHECK_ARG(chips > 0, "measure_population: need chips > 0");
  Rng rng(seed);

  PopulationStats s;
  s.chips = chips;
  const double v_nom = model.params().v_nominal;
  const double f_cal = model.params().f_nominal_ghz;

  RunningStats fmax, minvdd, c2c;
  double leak_lo = 1e300, leak_hi = 0.0;
  for (std::size_t i = 0; i < chips; ++i) {
    const ChipVariation chip = model.sample_chip(rng);
    double chip_f_lo = 1e300, chip_f_hi = 0.0;
    for (const CoreVariation& core : chip.cores) {
      const double f = model.fmax_ghz(core, v_nom);
      fmax.add(f);
      chip_f_lo = std::min(chip_f_lo, f);
      chip_f_hi = std::max(chip_f_hi, f);
      leak_lo = std::min(leak_lo, core.leak_scale);
      leak_hi = std::max(leak_hi, core.leak_scale);
      minvdd.add(model.min_vdd(core, f_cal, 3.0));
      ++s.cores;
    }
    if (chip_f_lo > 0.0) c2c.add((chip_f_hi - chip_f_lo) / chip_f_lo);
  }

  s.fmax_mean_ghz = fmax.mean();
  s.fmax_min_ghz = fmax.min();
  s.fmax_max_ghz = fmax.max();
  s.fmax_spread_fraction =
      fmax.mean() > 0.0 ? (fmax.max() - fmax.min()) / fmax.mean() : 0.0;
  s.c2c_fmax_spread_fraction = c2c.mean();
  s.leakage_spread_ratio = leak_lo > 0.0 ? leak_hi / leak_lo : 0.0;
  s.min_vdd_mean = minvdd.mean();
  s.min_vdd_spread_fraction =
      minvdd.mean() > 0.0 ? (minvdd.max() - minvdd.min()) / minvdd.mean()
                          : 0.0;
  return s;
}

std::string PopulationStats::summary() const {
  std::ostringstream out;
  out << chips << " chips / " << cores << " cores at nominal voltage:\n"
      << "fmax " << TextTable::num(fmax_mean_ghz, 2) << " GHz mean, ["
      << TextTable::num(fmax_min_ghz, 2) << ", "
      << TextTable::num(fmax_max_ghz, 2) << "] -> spread "
      << TextTable::pct(fmax_spread_fraction)
      << " (paper cites up to 30% [14])\n"
      << "core-to-core fmax spread " << TextTable::pct(c2c_fmax_spread_fraction)
      << " per chip (paper cites ~20% [8])\n"
      << "leakage spread " << TextTable::num(leakage_spread_ratio, 1)
      << "x (paper cites up to 20x [14])\n"
      << "Min Vdd at calibration frequency: mean "
      << TextTable::num(min_vdd_mean, 3) << " V, spread "
      << TextTable::pct(min_vdd_spread_fraction) << "\n";
  return out.str();
}

}  // namespace iscope
