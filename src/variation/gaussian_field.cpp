#include "variation/gaussian_field.hpp"

#include <cmath>

#include "common/error.hpp"

namespace iscope {

GaussianField::GaussianField(const DieLayout& layout, double phi, double nugget)
    : layout_(layout), phi_(phi), n_(layout.grid_points()) {
  layout_.validate();
  ISCOPE_CHECK_ARG(phi > 0.0, "GaussianField: phi must be > 0");
  ISCOPE_CHECK_ARG(nugget >= 0.0, "GaussianField: nugget must be >= 0");

  // Build the covariance matrix over grid cell centers.
  std::vector<double> cov(n_ * n_);
  for (std::size_t a = 0; a < n_; ++a) {
    const double xa = layout_.grid_x(a % layout_.grid_w);
    const double ya = layout_.grid_y(a / layout_.grid_w);
    for (std::size_t b = 0; b <= a; ++b) {
      const double xb = layout_.grid_x(b % layout_.grid_w);
      const double yb = layout_.grid_y(b / layout_.grid_w);
      const double d = std::hypot(xa - xb, ya - yb);
      double c = correlation(d);
      if (a == b) c += nugget;
      cov[a * n_ + b] = c;
      cov[b * n_ + a] = c;
    }
  }

  // In-place Cholesky (lower triangular). The matrix is small (grid is
  // typically 8x8 = 64 points) so the O(n^3) cost is negligible and paid
  // once per layout.
  chol_.assign(n_ * n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = cov[i * n_ + j];
      for (std::size_t k = 0; k < j; ++k)
        s -= chol_[i * n_ + k] * chol_[j * n_ + k];
      if (i == j) {
        ISCOPE_CHECK(s > 0.0, "GaussianField: covariance not positive definite");
        chol_[i * n_ + i] = std::sqrt(s);
      } else {
        chol_[i * n_ + j] = s / chol_[j * n_ + j];
      }
    }
  }
}

double GaussianField::correlation(double d) const {
  if (d >= phi_) return 0.0;
  const double r = d / phi_;
  return 1.0 - 1.5 * r + 0.5 * r * r * r;
}

std::vector<double> GaussianField::sample(Rng& rng) const {
  std::vector<double> z(n_);
  for (auto& v : z) v = rng.normal(0.0, 1.0);
  std::vector<double> out(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    double s = 0.0;
    for (std::size_t k = 0; k <= i; ++k) s += chol_[i * n_ + k] * z[k];
    out[i] = s;
  }
  return out;
}

std::vector<double> GaussianField::core_means(
    const std::vector<double>& field) const {
  ISCOPE_CHECK_ARG(field.size() == n_, "core_means: field size mismatch");
  const std::size_t cw = layout_.grid_w / layout_.cores_x;
  const std::size_t ch = layout_.grid_h / layout_.cores_y;
  std::vector<double> out(layout_.core_count(), 0.0);
  for (std::size_t cy = 0; cy < layout_.cores_y; ++cy) {
    for (std::size_t cx = 0; cx < layout_.cores_x; ++cx) {
      double s = 0.0;
      for (std::size_t j = cy * ch; j < (cy + 1) * ch; ++j)
        for (std::size_t i = cx * cw; i < (cx + 1) * cw; ++i)
          s += field[j * layout_.grid_w + i];
      out[cy * layout_.cores_x + cx] =
          s / static_cast<double>(cw * ch);
    }
  }
  return out;
}

}  // namespace iscope
