// Population-level characterization of a fabricated chip sample.
//
// The paper motivates iScope with published variation figures: up to 30%
// frequency deviation and 20x leakage spread within a process (Borkar
// [14]), ~20% core-to-core frequency difference (Humenay [8]), ~5% Min Vdd
// spread within a speed bin (Sec. II-B). This module measures exactly
// those quantities on a sampled population so the model's realism is a
// checked property, not an assumption.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "variation/die_layout.hpp"
#include "variation/varius.hpp"

namespace iscope {

struct PopulationStats {
  std::size_t chips = 0;
  std::size_t cores = 0;

  /// Max sustainable frequency at nominal voltage, across all cores [GHz].
  double fmax_mean_ghz = 0.0;
  double fmax_min_ghz = 0.0;
  double fmax_max_ghz = 0.0;
  /// (max - min) / mean -- compare to the cited ~30% process deviation.
  double fmax_spread_fraction = 0.0;
  /// Mean over chips of the within-chip core-to-core fmax spread --
  /// compare to the ~20% C2C figure.
  double c2c_fmax_spread_fraction = 0.0;

  /// Leakage multiplier spread across all cores (max/min) -- compare to
  /// the cited up-to-20x.
  double leakage_spread_ratio = 0.0;

  /// Min Vdd at the calibration frequency: population spread as a
  /// fraction of the mean -- compare to the ~5% within-bin figure.
  double min_vdd_mean = 0.0;
  double min_vdd_spread_fraction = 0.0;

  std::string summary() const;
};

/// Fabricate `chips` chips from the model and measure the population.
PopulationStats measure_population(const VariusModel& model,
                                   std::size_t chips, std::uint64_t seed);

}  // namespace iscope
