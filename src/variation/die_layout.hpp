// Die geometry for the process-variation model.
//
// A die is modeled as a unit square discretized into `grid_w x grid_h`
// sample points. Cores tile the die as a `cores_x x cores_y` array of
// rectangles; a core's parameter value is the mean of the field over the
// grid points it covers. This mirrors the VARIUS observation that within-die
// variation is spatially correlated and its chief impact manifests *across*
// cores rather than within them (paper Sec. II-B, ref [15]).
#pragma once

#include <cstddef>

#include "common/error.hpp"

namespace iscope {

struct DieLayout {
  std::size_t grid_w = 8;   ///< field sample points per die edge (x)
  std::size_t grid_h = 8;   ///< field sample points per die edge (y)
  std::size_t cores_x = 2;  ///< cores per die edge (x)
  std::size_t cores_y = 2;  ///< cores per die edge (y)

  std::size_t grid_points() const { return grid_w * grid_h; }
  std::size_t core_count() const { return cores_x * cores_y; }

  void validate() const {
    ISCOPE_CHECK_ARG(grid_w > 0 && grid_h > 0, "DieLayout: empty grid");
    ISCOPE_CHECK_ARG(cores_x > 0 && cores_y > 0, "DieLayout: no cores");
    ISCOPE_CHECK_ARG(grid_w % cores_x == 0 && grid_h % cores_y == 0,
                     "DieLayout: cores must tile the grid evenly");
  }

  /// Grid x-coordinate in [0,1] of grid column i (cell center).
  double grid_x(std::size_t i) const {
    return (static_cast<double>(i) + 0.5) / static_cast<double>(grid_w);
  }
  /// Grid y-coordinate in [0,1] of grid row j (cell center).
  double grid_y(std::size_t j) const {
    return (static_cast<double>(j) + 0.5) / static_cast<double>(grid_h);
  }
};

/// Quad-core die on an 8x8 field grid -- the default used for the paper's
/// AMD A10-5800K quad-core experiments and the datacenter population.
inline DieLayout quad_core_layout() { return DieLayout{8, 8, 2, 2}; }

}  // namespace iscope
