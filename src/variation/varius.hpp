// VARIUS-style process-variation model (paper ref [36], Teodorescu et al.).
//
// Each chip draws a die-to-die (D2D) offset plus two spatially correlated
// within-die (WID) fields -- one for threshold voltage Vth, one for the
// speed factor (effective gate length Leff). Per-core values are field
// averages over the core's die region.
//
// Core speed follows the alpha-power law:
//
//     fmax(V) = k * (V - Vth)^alpha / V
//
// which we invert (it is monotone in V for alpha >= 1) to obtain the
// minimum supply voltage at which a core sustains a target frequency --
// the quantity the paper's profiling experiments measure (Min Vdd, Fig. 4).
// Leakage scales exponentially with -dVth (subthreshold conduction), which
// reproduces the "20x leakage variation" spread reported by Intel
// (paper Sec. II-B, ref [14]) at realistic sigma values.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "variation/die_layout.hpp"
#include "variation/gaussian_field.hpp"

namespace iscope {

/// Parameters of the variation model. Defaults model the paper's simulated
/// datacenter CPUs (5 DVFS levels, 750 MHz - 2 GHz); `a10_params()` models
/// the AMD A10-5800K profiling testbed of Sec. V-A.
struct VariusParams {
  // Sigma defaults are at the aggressive end of the deep-submicron range --
  // the paper motivates iScope with Intel's reported 30% frequency deviation
  // and 20x leakage spread [14], and the Bin-vs-Scan headroom scales with
  // these.
  double vth_nominal = 0.30;   ///< nominal threshold voltage [V]
  double sigma_d2d = 0.06;     ///< D2D sigma/mu of Vth
  double sigma_wid = 0.05;     ///< WID sigma/mu of Vth
  double speed_sigma = 0.05;   ///< WID sigma of the multiplicative speed factor
  double phi = 0.5;            ///< correlation range (fraction of die edge)
  double alpha_power = 1.3;    ///< alpha-power law exponent
  double f_nominal_ghz = 2.0;  ///< frequency the calibration anchors to
  double v_nominal = 1.30;     ///< stock supply voltage at f_nominal [V]
  double vdd_margin = 0.10;    ///< nominal core's MinVdd = v_nominal*(1-margin)
  double v_floor = 0.70;       ///< SRAM retention floor: MinVdd never below [V]
  double subthreshold_slope = 0.10;  ///< V per decade of leakage

  void validate() const;
};

/// AMD A10-5800K calibration (Sec. V-A): nominal 3.8 GHz at 1.375 V; profiled
/// Min Vdd between 1.19 V and 1.25 V, mean 1.219 V (Fig. 4A).
VariusParams a10_params();

/// Sampled variation of one core.
struct CoreVariation {
  double vth = 0.0;        ///< threshold voltage [V]
  double speed_k = 0.0;    ///< alpha-power-law speed coefficient
  double leak_scale = 1.0; ///< leakage multiplier relative to nominal core
};

/// Sampled variation of one chip (all its cores plus the D2D component).
struct ChipVariation {
  double d2d_offset = 0.0;  ///< D2D Vth offset (fraction of vth_nominal)
  std::vector<CoreVariation> cores;
};

class VariusModel {
 public:
  VariusModel(const VariusParams& params, const DieLayout& layout);

  /// Draw a chip. Deterministic for a given RNG state.
  ChipVariation sample_chip(Rng& rng) const;

  /// Max sustainable frequency of a core at supply voltage `vdd` [GHz].
  double fmax_ghz(const CoreVariation& core, double vdd) const;

  /// Minimum supply voltage at which the core sustains `f_ghz`, including
  /// the retention floor. Throws InvalidArgument if the frequency is
  /// unreachable below `v_ceiling`.
  double min_vdd(const CoreVariation& core, double f_ghz,
                 double v_ceiling = 2.0) const;

  /// Leakage power multiplier of a core at voltage `vdd`, relative to the
  /// nominal core at `v_nominal` (linear-in-V DIBL approximation on top of
  /// the per-core exponential Vth sensitivity).
  double leakage_rel(const CoreVariation& core, double vdd) const;

  /// Speed coefficient k of the exactly-nominal core (exposed for tests).
  double nominal_speed_k() const { return k0_; }

  const VariusParams& params() const { return params_; }
  const DieLayout& layout() const { return layout_; }

 private:
  VariusParams params_;
  DieLayout layout_;
  GaussianField vth_field_;
  GaussianField speed_field_;
  double k0_;  // calibrated so the nominal core meets f_nominal at MinVdd
};

}  // namespace iscope
