// Spatially correlated zero-mean unit-variance Gaussian random field over a
// die grid, with the spherical correlation structure used by VARIUS
// (Teodorescu et al., paper ref [36]).
//
//   rho(d) = 1 - 1.5 (d/phi) + 0.5 (d/phi)^3   for d < phi, else 0
//
// where d is Euclidean distance on the unit-square die and phi is the
// correlation range. The field is sampled by Cholesky factorization of the
// covariance matrix (computed once per layout and cached inside the object).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "variation/die_layout.hpp"

namespace iscope {

class GaussianField {
 public:
  /// `phi` is the correlation range as a fraction of the die edge (0.5 is
  /// the canonical VARIUS value). A tiny nugget keeps the covariance matrix
  /// numerically positive-definite.
  GaussianField(const DieLayout& layout, double phi, double nugget = 1e-9);

  /// Spherical correlation at distance d.
  double correlation(double d) const;

  /// Draw one realization: grid_points() standard-normal values with the
  /// configured spatial correlation.
  std::vector<double> sample(Rng& rng) const;

  /// Average the field over each core's rectangle -> one value per core.
  std::vector<double> core_means(const std::vector<double>& field) const;

  const DieLayout& layout() const { return layout_; }
  double phi() const { return phi_; }

 private:
  DieLayout layout_;
  double phi_;
  // Lower-triangular Cholesky factor, row-major, n x n.
  std::vector<double> chol_;
  std::size_t n_;
};

}  // namespace iscope
