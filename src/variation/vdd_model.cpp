#include "variation/vdd_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace iscope {

void FreqLevels::validate() const {
  ISCOPE_CHECK_ARG(!freq_ghz.empty(), "FreqLevels: need at least one level");
  ISCOPE_CHECK_ARG(freq_ghz.size() == vdd_nom.size(),
                   "FreqLevels: freq/vdd size mismatch");
  for (std::size_t i = 0; i < freq_ghz.size(); ++i) {
    ISCOPE_CHECK_ARG(freq_ghz[i] > 0.0 && vdd_nom[i] > 0.0,
                     "FreqLevels: values must be positive");
    if (i > 0) {
      ISCOPE_CHECK_ARG(freq_ghz[i] > freq_ghz[i - 1],
                       "FreqLevels: frequencies must ascend");
      ISCOPE_CHECK_ARG(vdd_nom[i] >= vdd_nom[i - 1],
                       "FreqLevels: stock voltages must be non-decreasing");
    }
  }
}

FreqLevels FreqLevels::paper_default() {
  FreqLevels levels;
  const int n = 5;
  const double f_lo = 0.75, f_hi = 2.0;
  const double v_lo = 0.85, v_hi = 1.30;
  for (int i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / (n - 1);
    levels.freq_ghz.push_back(f_lo + t * (f_hi - f_lo));
    levels.vdd_nom.push_back(v_lo + t * (v_hi - v_lo));
  }
  return levels;
}

MinVddCurve::MinVddCurve(std::vector<double> freq_ghz, std::vector<double> vdd)
    : freq_ghz_(std::move(freq_ghz)), vdd_(std::move(vdd)) {
  ISCOPE_CHECK_ARG(freq_ghz_.size() == vdd_.size(),
                   "MinVddCurve: freq/vdd size mismatch");
  for (std::size_t i = 1; i < vdd_.size(); ++i) {
    ISCOPE_CHECK_ARG(freq_ghz_[i] > freq_ghz_[i - 1],
                     "MinVddCurve: frequencies must ascend");
    ISCOPE_CHECK_ARG(vdd_[i] >= vdd_[i - 1],
                     "MinVddCurve: MinVdd must be non-decreasing in f");
  }
}

double MinVddCurve::freq(std::size_t level) const {
  ISCOPE_CHECK_ARG(level < freq_ghz_.size(), "MinVddCurve: level out of range");
  return freq_ghz_[level];
}

double MinVddCurve::vdd(std::size_t level) const {
  ISCOPE_CHECK_ARG(level < vdd_.size(), "MinVddCurve: level out of range");
  return vdd_[level];
}

MinVddCurve MinVddCurve::chip_worst_case(std::span<const MinVddCurve> cores) {
  ISCOPE_CHECK_ARG(!cores.empty(), "chip_worst_case: no cores");
  std::vector<double> vdd = cores.front().vdds();
  const auto& freqs = cores.front().freqs();
  for (const auto& c : cores.subspan(1)) {
    ISCOPE_CHECK_ARG(c.freqs() == freqs,
                     "chip_worst_case: cores must share frequency levels");
    for (std::size_t i = 0; i < vdd.size(); ++i)
      vdd[i] = std::max(vdd[i], c.vdd(i));
  }
  return MinVddCurve(freqs, std::move(vdd));
}

MinVddCurve MinVddCurve::scaled(double factor) const {
  ISCOPE_CHECK_ARG(factor > 0.0, "MinVddCurve::scaled: factor must be > 0");
  std::vector<double> vdd = vdd_;
  for (auto& v : vdd) v *= factor;
  return MinVddCurve(freq_ghz_, std::move(vdd));
}

MinVddCurve build_core_curve(const VariusModel& model, const CoreVariation& core,
                             const FreqLevels& levels,
                             double intrinsic_guardband) {
  levels.validate();
  ISCOPE_CHECK_ARG(intrinsic_guardband >= 0.0,
                   "build_core_curve: guardband must be >= 0");
  std::vector<double> vdd;
  vdd.reserve(levels.count());
  double prev = 0.0;
  for (std::size_t i = 0; i < levels.count(); ++i) {
    double v = model.min_vdd(core, levels.freq_ghz[i]) *
               (1.0 + intrinsic_guardband);
    // The retention floor can flatten the low-frequency end; keep the curve
    // monotone non-decreasing.
    v = std::max(v, prev);
    prev = v;
    vdd.push_back(v);
  }
  return MinVddCurve(levels.freq_ghz, std::move(vdd));
}

}  // namespace iscope
