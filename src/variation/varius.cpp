#include "variation/varius.hpp"

#include <cmath>

#include "common/error.hpp"

namespace iscope {

void VariusParams::validate() const {
  ISCOPE_CHECK_ARG(vth_nominal > 0.0, "vth_nominal must be > 0");
  ISCOPE_CHECK_ARG(sigma_d2d >= 0.0 && sigma_wid >= 0.0 && speed_sigma >= 0.0,
                   "sigmas must be >= 0");
  ISCOPE_CHECK_ARG(phi > 0.0, "phi must be > 0");
  ISCOPE_CHECK_ARG(alpha_power >= 1.0, "alpha_power must be >= 1");
  ISCOPE_CHECK_ARG(f_nominal_ghz > 0.0, "f_nominal_ghz must be > 0");
  ISCOPE_CHECK_ARG(v_nominal > vth_nominal,
                   "v_nominal must exceed vth_nominal");
  ISCOPE_CHECK_ARG(vdd_margin > 0.0 && vdd_margin < 0.5,
                   "vdd_margin must be in (0, 0.5)");
  ISCOPE_CHECK_ARG(v_floor >= 0.0 && v_floor < v_nominal,
                   "v_floor must be in [0, v_nominal)");
  ISCOPE_CHECK_ARG(v_nominal * (1.0 - vdd_margin) > vth_nominal,
                   "calibration anchor voltage must exceed vth_nominal");
  ISCOPE_CHECK_ARG(subthreshold_slope > 0.0, "subthreshold_slope must be > 0");
}

VariusParams a10_params() {
  VariusParams p;
  p.vth_nominal = 0.35;
  p.f_nominal_ghz = 3.8;
  p.v_nominal = 1.375;
  // Nominal core MinVdd anchored at 1.219 V (Fig. 4A mean): 1 - 1.219/1.375.
  p.vdd_margin = 1.0 - 1.219 / 1.375;
  // Fig. 4A spread: Min Vdd in [1.19, 1.25] over 16 cores -> ~+-1.2% around
  // the mean, driven mostly by cross-chip (D2D) differences.
  p.sigma_d2d = 0.012;
  p.sigma_wid = 0.008;
  p.speed_sigma = 0.01;
  p.v_floor = 0.9;
  return p;
}

VariusModel::VariusModel(const VariusParams& params, const DieLayout& layout)
    : params_(params),
      layout_(layout),
      vth_field_(layout, params.phi),
      speed_field_(layout, params.phi) {
  params_.validate();
  // Calibrate k0 so the exactly-nominal core reaches f_nominal at the anchor
  // voltage v_nominal * (1 - vdd_margin):  f = k (V - Vth)^a / V.
  const double v_anchor = params_.v_nominal * (1.0 - params_.vdd_margin);
  k0_ = params_.f_nominal_ghz * v_anchor /
        std::pow(v_anchor - params_.vth_nominal, params_.alpha_power);
}

ChipVariation VariusModel::sample_chip(Rng& rng) const {
  ChipVariation chip;
  chip.d2d_offset = rng.normal(0.0, params_.sigma_d2d);
  const auto vth_wid = vth_field_.core_means(vth_field_.sample(rng));
  const auto speed_wid = speed_field_.core_means(speed_field_.sample(rng));

  chip.cores.resize(layout_.core_count());
  const double ln10_over_slope = std::log(10.0) / params_.subthreshold_slope;
  for (std::size_t c = 0; c < chip.cores.size(); ++c) {
    CoreVariation& core = chip.cores[c];
    const double rel =
        1.0 + chip.d2d_offset + params_.sigma_wid * vth_wid[c];
    core.vth = params_.vth_nominal * rel;
    core.speed_k = k0_ * (1.0 + params_.speed_sigma * speed_wid[c]);
    // Lower Vth -> exponentially more leakage (subthreshold conduction).
    core.leak_scale = std::exp(-(core.vth - params_.vth_nominal) *
                               ln10_over_slope);
  }
  return chip;
}

double VariusModel::fmax_ghz(const CoreVariation& core, double vdd) const {
  ISCOPE_CHECK_ARG(vdd > 0.0, "fmax_ghz: vdd must be > 0");
  if (vdd <= core.vth) return 0.0;
  return core.speed_k *
         std::pow(vdd - core.vth, params_.alpha_power) / vdd;
}

double VariusModel::min_vdd(const CoreVariation& core, double f_ghz,
                            double v_ceiling) const {
  ISCOPE_CHECK_ARG(f_ghz > 0.0, "min_vdd: frequency must be > 0");
  ISCOPE_CHECK_ARG(v_ceiling > core.vth, "min_vdd: ceiling below Vth");
  if (fmax_ghz(core, v_ceiling) < f_ghz)
    throw InvalidArgument("min_vdd: frequency unreachable below ceiling");
  // fmax is monotone increasing in V for alpha >= 1, so bisect.
  double lo = core.vth + 1e-6;
  double hi = v_ceiling;
  for (int it = 0; it < 80; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (fmax_ghz(core, mid) >= f_ghz) hi = mid;
    else lo = mid;
  }
  return std::max(hi, params_.v_floor);
}

double VariusModel::leakage_rel(const CoreVariation& core, double vdd) const {
  ISCOPE_CHECK_ARG(vdd > 0.0, "leakage_rel: vdd must be > 0");
  return core.leak_scale * (vdd / params_.v_nominal);
}

}  // namespace iscope
