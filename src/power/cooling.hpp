// Cooling model -- the paper's Eq-2.
//
// Total energy = (1 + 1/COP) * E_cpu, where COP is the ratio of computing
// power removed to cooling power spent. The paper fixes COP = 2.5 for the
// datacenter experiments (after Garg et al. [29]); Greenberg et al. [32]
// report COP distributed normally within [0.6, 3.5], which we expose for
// sensitivity studies.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"

namespace iscope {

class CoolingModel {
 public:
  /// `cop` must be positive; the paper's default is 2.5.
  explicit CoolingModel(double cop = 2.5);

  double cop() const { return cop_; }

  /// Facility power needed to run `compute` of IT load.
  Watts total_power(Watts compute) const;

  /// Cooling-only component.
  Watts cooling_power(Watts compute) const;

  /// Multiplier (1 + 1/COP).
  double overhead_factor() const;

  /// Draw a COP from the Greenberg survey distribution: normal over
  /// [0.6, 3.5] (mean at the interval center, 3-sigma at the edges).
  static CoolingModel sample_greenberg(Rng& rng);

 private:
  double cop_;
};

}  // namespace iscope
