// Energy accounting split by supply source.
//
// The simulator integrates facility power over time and attributes every
// joule to either the wind farm or the utility grid (wind first, utility as
// the supplement -- paper Sec. V-C). The meter also keeps a sampled power
// trace for the Fig. 7 style plots. All public quantities are strongly
// typed (common/quantity.hpp); debug/audit builds additionally re-verify
// energy conservation at every accrual step (common/audit.hpp).
#pragma once

#include <vector>

#include "common/units.hpp"

namespace iscope {

/// Energy drawn from each source.
struct EnergySplit {
  Joules wind;
  Joules utility;

  Joules total() const { return wind + utility; }
  double wind_kwh() const { return wind.kwh(); }
  double utility_kwh() const { return utility.kwh(); }
  double total_kwh() const { return total().kwh(); }

  EnergySplit& operator+=(const EnergySplit& o) {
    wind += o.wind;
    utility += o.utility;
    return *this;
  }
};

/// One sample of the facility power state (for trace plots).
struct PowerSample {
  Seconds time;
  Watts demand;      ///< total facility demand (IT + cooling)
  Watts wind;        ///< wind power consumed (serving demand + charging)
  Watts utility;     ///< utility power actually consumed
  Watts wind_avail;  ///< wind power available (consumed or not)
  Watts battery;     ///< battery discharge serving demand (0 w/o battery)
};

class EnergyMeter {
 public:
  /// Account `demand` of facility power over `dt` against `wind_avail` of
  /// available wind power: wind covers as much as it can, the utility grid
  /// supplies the rest. Returns the split for this step.
  EnergySplit accrue(Watts demand, Watts wind_avail, Seconds dt);

  /// Account a pre-computed split (used by battery-aware callers that
  /// divide the flows themselves), plus explicitly-curtailed wind energy.
  void add_split(const EnergySplit& split, Joules curtailed);

  /// Record a trace sample (caller controls the sampling cadence).
  void record_sample(const PowerSample& sample);

  const EnergySplit& total() const { return total_; }
  const std::vector<PowerSample>& trace() const { return trace_; }

  /// Wind energy that was available but not consumed (curtailment).
  Joules wind_curtailed() const { return wind_curtailed_; }

  /// Fraction of consumed energy that came from wind; 0 if nothing consumed.
  double wind_fraction() const;

  void reset();

  /// Checkpoint restore (src/service/checkpoint.cpp): overwrite the
  /// accumulated totals and the sampled trace with saved values.
  void restore_state(const EnergySplit& total, Joules curtailed,
                     std::vector<PowerSample> trace) {
    total_ = total;
    wind_curtailed_ = curtailed;
    trace_ = std::move(trace);
  }

 private:
  EnergySplit total_;
  Joules wind_curtailed_;
  std::vector<PowerSample> trace_;
};

}  // namespace iscope
