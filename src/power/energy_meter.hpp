// Energy accounting split by supply source.
//
// The simulator integrates facility power over time and attributes every
// joule to either the wind farm or the utility grid (wind first, utility as
// the supplement -- paper Sec. V-C). The meter also keeps a sampled power
// trace for the Fig. 7 style plots.
#pragma once

#include <vector>

#include "common/units.hpp"

namespace iscope {

/// Energy drawn from each source [J].
struct EnergySplit {
  double wind_j = 0.0;
  double utility_j = 0.0;

  double total_j() const { return wind_j + utility_j; }
  double wind_kwh() const { return units::joules_to_kwh(wind_j); }
  double utility_kwh() const { return units::joules_to_kwh(utility_j); }
  double total_kwh() const { return units::joules_to_kwh(total_j()); }

  EnergySplit& operator+=(const EnergySplit& o) {
    wind_j += o.wind_j;
    utility_j += o.utility_j;
    return *this;
  }
};

/// One sample of the facility power state (for trace plots).
struct PowerSample {
  double time_s = 0.0;
  double demand_w = 0.0;   ///< total facility demand (IT + cooling)
  double wind_w = 0.0;     ///< wind power actually consumed
  double utility_w = 0.0;  ///< utility power actually consumed
  double wind_avail_w = 0.0;  ///< wind power available (consumed or not)
};

class EnergyMeter {
 public:
  /// Account `demand_w` of facility power over `dt_s` seconds against
  /// `wind_avail_w` of available wind power: wind covers as much as it can,
  /// the utility grid supplies the rest. Returns the split for this step.
  EnergySplit accrue(double demand_w, double wind_avail_w, double dt_s);

  /// Account a pre-computed split (used by battery-aware callers that
  /// divide the flows themselves), plus explicitly-curtailed wind energy.
  void add_split(const EnergySplit& split, double curtailed_j);

  /// Record a trace sample (caller controls the sampling cadence).
  void record_sample(const PowerSample& sample);

  const EnergySplit& total() const { return total_; }
  const std::vector<PowerSample>& trace() const { return trace_; }

  /// Wind energy that was available but not consumed [J] (curtailment).
  double wind_curtailed_j() const { return wind_curtailed_j_; }

  /// Fraction of consumed energy that came from wind; 0 if nothing consumed.
  double wind_fraction() const;

  void reset();

 private:
  EnergySplit total_;
  double wind_curtailed_j_ = 0.0;
  std::vector<PowerSample> trace_;
};

}  // namespace iscope
