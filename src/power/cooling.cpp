#include "power/cooling.hpp"

#include "common/error.hpp"

namespace iscope {

CoolingModel::CoolingModel(double cop) : cop_(cop) {
  ISCOPE_CHECK_ARG(cop > 0.0, "CoolingModel: COP must be > 0");
}

double CoolingModel::total_power_w(double compute_w) const {
  ISCOPE_CHECK_ARG(compute_w >= 0.0, "total_power_w: negative compute power");
  return compute_w * overhead_factor();
}

double CoolingModel::cooling_power_w(double compute_w) const {
  ISCOPE_CHECK_ARG(compute_w >= 0.0, "cooling_power_w: negative compute power");
  return compute_w / cop_;
}

double CoolingModel::overhead_factor() const { return 1.0 + 1.0 / cop_; }

CoolingModel CoolingModel::sample_greenberg(Rng& rng) {
  constexpr double kLo = 0.6, kHi = 3.5;
  const double mean = 0.5 * (kLo + kHi);
  const double sigma = (kHi - kLo) / 6.0;  // 3-sigma at the edges
  return CoolingModel(rng.truncated_normal(mean, sigma, kLo, kHi));
}

}  // namespace iscope
