#include "power/cooling.hpp"

#include "common/error.hpp"

namespace iscope {

CoolingModel::CoolingModel(double cop) : cop_(cop) {
  ISCOPE_CHECK_ARG(cop > 0.0, "CoolingModel: COP must be > 0");
}

Watts CoolingModel::total_power(Watts compute) const {
  ISCOPE_CHECK_ARG(compute.raw() >= 0.0, "total_power: negative compute power");
  return compute * overhead_factor();
}

Watts CoolingModel::cooling_power(Watts compute) const {
  ISCOPE_CHECK_ARG(compute.raw() >= 0.0,
                   "cooling_power: negative compute power");
  return compute / cop_;
}

double CoolingModel::overhead_factor() const { return 1.0 + 1.0 / cop_; }

CoolingModel CoolingModel::sample_greenberg(Rng& rng) {
  constexpr double kLo = 0.6, kHi = 3.5;
  const double mean = 0.5 * (kLo + kHi);
  const double sigma = (kHi - kLo) / 6.0;  // 3-sigma at the edges
  return CoolingModel(rng.truncated_normal(mean, sigma, kLo, kHi));
}

}  // namespace iscope
