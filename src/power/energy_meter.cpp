#include "power/energy_meter.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace iscope {

EnergySplit EnergyMeter::accrue(double demand_w, double wind_avail_w,
                                double dt_s) {
  ISCOPE_CHECK_ARG(demand_w >= 0.0, "accrue: negative demand");
  ISCOPE_CHECK_ARG(wind_avail_w >= 0.0, "accrue: negative wind power");
  ISCOPE_CHECK_ARG(dt_s >= 0.0, "accrue: negative time step");
  const double wind_used_w = std::min(demand_w, wind_avail_w);
  EnergySplit step;
  step.wind_j = wind_used_w * dt_s;
  step.utility_j = (demand_w - wind_used_w) * dt_s;
  total_ += step;
  wind_curtailed_j_ += (wind_avail_w - wind_used_w) * dt_s;
  return step;
}

void EnergyMeter::add_split(const EnergySplit& split, double curtailed_j) {
  ISCOPE_CHECK_ARG(split.wind_j >= 0.0 && split.utility_j >= 0.0,
                   "add_split: negative energy");
  ISCOPE_CHECK_ARG(curtailed_j >= 0.0, "add_split: negative curtailment");
  total_ += split;
  wind_curtailed_j_ += curtailed_j;
}

void EnergyMeter::record_sample(const PowerSample& sample) {
  trace_.push_back(sample);
}

double EnergyMeter::wind_fraction() const {
  const double t = total_.total_j();
  return t == 0.0 ? 0.0 : total_.wind_j / t;
}

void EnergyMeter::reset() {
  total_ = EnergySplit{};
  wind_curtailed_j_ = 0.0;
  trace_.clear();
}

}  // namespace iscope
