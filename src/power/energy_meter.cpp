#include "power/energy_meter.hpp"

#include <algorithm>

#include "common/audit.hpp"
#include "common/error.hpp"

namespace iscope {

EnergySplit EnergyMeter::accrue(Watts demand, Watts wind_avail, Seconds dt) {
  ISCOPE_CHECK_ARG(demand.raw() >= 0.0, "accrue: negative demand");
  ISCOPE_CHECK_ARG(wind_avail.raw() >= 0.0, "accrue: negative wind power");
  ISCOPE_CHECK_ARG(dt.raw() >= 0.0, "accrue: negative time step");
  const Watts wind_used = std::min(demand, wind_avail);
  EnergySplit step;
  step.wind = wind_used * dt;
  step.utility = (demand - wind_used) * dt;
  // Conservation at the meter boundary: every joule of demand is attributed
  // to exactly one source.
  ISCOPE_AUDIT_CHECK(
      audit::close(step.total().joules(), (demand * dt).joules()),
      "energy meter: wind + utility != demand over the step");
  total_ += step;
  wind_curtailed_ += (wind_avail - wind_used) * dt;
  return step;
}

void EnergyMeter::add_split(const EnergySplit& split, Joules curtailed) {
  ISCOPE_CHECK_ARG(split.wind.raw() >= 0.0 && split.utility.raw() >= 0.0,
                   "add_split: negative energy");
  ISCOPE_CHECK_ARG(curtailed.raw() >= 0.0, "add_split: negative curtailment");
  total_ += split;
  wind_curtailed_ += curtailed;
}

void EnergyMeter::record_sample(const PowerSample& sample) {
  trace_.push_back(sample);
}

double EnergyMeter::wind_fraction() const {
  const Joules t = total_.total();
  return t.raw() == 0.0 ? 0.0 : total_.wind / t;
}

void EnergyMeter::reset() {
  total_ = EnergySplit{};
  wind_curtailed_ = Joules{};
  trace_.clear();
}

}  // namespace iscope
