// Electricity pricing (paper Sec. VI-C).
//
// Utility power is priced at the California rate of 0.13 USD/kWh [29]; wind
// at 0.05 USD/kWh [39]. The paper also projects a futuristic 0.005 USD/kWh
// wind price [2], exposed as `future_wind()`. Rates are typed USD/J so a
// rate times an energy is a cost by construction (USD/J x J -> USD).
#pragma once

#include "power/energy_meter.hpp"

namespace iscope {

struct EnergyPrices {
  UsdPerJoule utility_rate = units::usd_per_kwh(0.13);
  UsdPerJoule wind_rate = units::usd_per_kwh(0.05);

  /// Cost of a consumed energy split.
  Usd cost(const EnergySplit& split) const {
    return split.utility * utility_rate + split.wind * wind_rate;
  }

  /// Cost of `energy` from the utility grid alone.
  Usd utility_cost(Joules energy) const { return energy * utility_rate; }

  /// Paper's projected near-future wind price (ref [2]).
  static EnergyPrices future_wind() {
    return EnergyPrices{units::usd_per_kwh(0.13), units::usd_per_kwh(0.005)};
  }
};

}  // namespace iscope
