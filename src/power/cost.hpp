// Electricity pricing (paper Sec. VI-C).
//
// Utility power is priced at the California rate of 0.13 USD/kWh [29]; wind
// at 0.05 USD/kWh [39]. The paper also projects a futuristic 0.005 USD/kWh
// wind price [2], exposed as `future_wind()`.
#pragma once

#include "power/energy_meter.hpp"

namespace iscope {

struct EnergyPrices {
  double utility_usd_per_kwh = 0.13;
  double wind_usd_per_kwh = 0.05;

  /// Cost in USD of a consumed energy split.
  double cost_usd(const EnergySplit& split) const {
    return split.utility_kwh() * utility_usd_per_kwh +
           split.wind_kwh() * wind_usd_per_kwh;
  }

  /// Cost of `kwh` from the utility grid alone.
  double utility_cost_usd(double kwh) const {
    return kwh * utility_usd_per_kwh;
  }

  /// Paper's projected near-future wind price (ref [2]).
  static EnergyPrices future_wind() {
    return EnergyPrices{0.13, 0.005};
  }
};

}  // namespace iscope
