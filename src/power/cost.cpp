#include "power/cost.hpp"

// EnergyPrices is header-only; this translation unit exists so the power
// library always has a .cpp per public header (build hygiene) and gives the
// struct a home for future non-inline logic (tiered tariffs, demand charges).
