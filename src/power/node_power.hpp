// Node-level power model.
//
// Paper Sec. IV-A: "If a workload is memory, I/O or network bounded, the
// energy consumption may outweigh that of a processor. In this case a
// node-level profiling is necessary if one wants to maximally release the
// efficiency potential of the datacenter." The evaluation stays CPU-level;
// this module supplies the node-level view the authors call for:
// per-component power (DRAM activity-dependent, disk, NIC, board) behind a
// load-dependent PSU efficiency curve, with per-node manufacturing
// variation so a *node* scanner has something to discover.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"

namespace iscope {

/// Nameplate component powers of one server node (one CPU package).
struct NodeComponents {
  Watts memory_idle{8.0};    ///< DRAM background/refresh
  Watts memory_active{25.0}; ///< DRAM at full access rate
  Watts disk{9.0};
  Watts nic{5.0};
  Watts board{18.0};         ///< VRM, fans, BMC, chipset
  Watts psu_rated{450.0};

  void validate() const;
};

/// Per-node multiplicative variation (DRAM bins, PSU golden samples...).
struct NodeVariation {
  double memory_scale = 1.0;
  double board_scale = 1.0;
  double psu_efficiency_shift = 0.0;  ///< additive on the efficiency curve
};

class NodePowerModel {
 public:
  explicit NodePowerModel(const NodeComponents& components = {});

  /// PSU efficiency at a DC load fraction of the rated power -- the
  /// classic 80 PLUS bathtub: poor at trickle loads, peaking near 50%,
  /// easing off toward full load. Clamped to [0.5, 0.99].
  double psu_efficiency(double load_fraction) const;

  /// DC-side (secondary) power of a node whose CPU draws `cpu` and whose
  /// memory activity is `mem_activity` in [0,1].
  Watts dc_power(Watts cpu, double mem_activity,
                 const NodeVariation& variation = {}) const;

  /// Wall (AC) power: DC power divided by the PSU efficiency at that load.
  Watts wall_power(Watts cpu, double mem_activity,
                   const NodeVariation& variation = {}) const;

  /// Sample per-node variation: DRAM power spread ~ N(1, 0.08), board
  /// ~ N(1, 0.05), PSU efficiency +- 2 points.
  NodeVariation sample_variation(Rng& rng) const;

  const NodeComponents& components() const { return components_; }

 private:
  NodeComponents components_;
};

}  // namespace iscope
