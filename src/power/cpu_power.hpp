// CPU power model -- the paper's Eq-1 extended with explicit voltage.
//
// The paper models CPU power as  p = alpha * f^3 + beta  (f in GHz), with
// per-chip  alpha ~ Normal(7.5, 0.75)  and  beta ~ Poisson(65)  following
// Wang et al. [30] and VARIUS [36]. At the stock voltage this gives the
// familiar 125 W at 2 GHz.
//
// Eq-1 hides supply voltage because the paper's authors fold V(f) into
// alpha. The entire Bin-vs-Scan effect, however, *is* a voltage effect:
// a scanned chip runs each frequency at its own Min Vdd instead of the
// bin's worst case. We therefore evaluate
//
//   p(f, V) = alpha * f^3 * (V/Vnom(f))^2
//           + beta * ( s * (V/Vref) + (1 - s) )
//
// Dynamic power scales with V^2 against the level's stock voltage. The
// static term beta is split: a fraction `s` (leakage_voltage_share) is
// chip leakage that scales with the *absolute* supply voltage (against a
// single reference Vref, the top level's stock voltage -- leakage depends
// on the physical V, not on which frequency the clock runs at), and the
// rest is platform static power (board, DRAM, VRM losses) that does not
// scale with CPU voltage at all. The paper's constant beta corresponds to
// s = 0; a fully voltage-tracking leakage is s = 1; the default 0.5 keeps
// Eq-1's race-to-idle economics while still rewarding undervolting.
// At the top level's stock point the model reduces exactly to Eq-1
// (DESIGN.md choice #1).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace iscope {

/// Per-chip Eq-1 coefficients.
struct PowerCoefficients {
  /// Dynamic coefficient at stock voltage; W/GHz^3 is a first-class
  /// dimension so alpha * f^3 composes to Watts at compile time.
  WattsPerCubicGigahertz alpha{7.5};
  Watts beta{65.0};  ///< static power at stock voltage
};

/// Factory distribution of Eq-1 coefficients (paper Sec. V-B).
struct PowerModelParams {
  double alpha_mean = 7.5;
  double alpha_sigma = 0.75;
  double beta_mean = 65.0;  ///< Poisson mean
  /// Fraction of beta that is voltage-scaling chip leakage (the rest is
  /// fixed platform power). See the file comment.
  double leakage_voltage_share = 0.5;

  void validate() const;
};

class CpuPowerModel {
 public:
  explicit CpuPowerModel(const PowerModelParams& params = {});

  /// Sample one chip's coefficients.
  PowerCoefficients sample(Rng& rng) const;

  /// Chip power at frequency `f` and supply voltage `vdd`, where `vdd_nom`
  /// is the stock voltage of that frequency level and `vdd_ref` the leakage
  /// reference voltage (defaults to `vdd_nom`; pass the top level's stock
  /// voltage when evaluating a multi-level table so leakage tracks absolute
  /// voltage).
  Watts power(const PowerCoefficients& c, Gigahertz f, Volts vdd,
              Volts vdd_nom, Volts vdd_ref = Volts{}) const;

  /// Paper's original Eq-1 (voltage folded in): alpha * f^3 + beta.
  Watts power_eq1(const PowerCoefficients& c, Gigahertz f) const;

  /// Energy efficiency metric used by the Effi/Fair schedulers: power per
  /// unit of compute throughput. Lower is better.
  WattsPerGigahertz efficiency(const PowerCoefficients& c, Gigahertz f,
                               Volts vdd, Volts vdd_nom) const;

  const PowerModelParams& params() const { return params_; }

 private:
  PowerModelParams params_;
};

}  // namespace iscope
