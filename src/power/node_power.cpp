#include "power/node_power.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace iscope {

void NodeComponents::validate() const {
  ISCOPE_CHECK_ARG(
      memory_idle.raw() >= 0.0 && memory_active >= memory_idle,
      "node: memory powers must satisfy 0 <= idle <= active");
  ISCOPE_CHECK_ARG(disk.raw() >= 0.0 && nic.raw() >= 0.0 && board.raw() >= 0.0,
                   "node: component powers must be >= 0");
  ISCOPE_CHECK_ARG(psu_rated.raw() > 0.0, "node: PSU rating must be > 0");
}

NodePowerModel::NodePowerModel(const NodeComponents& components)
    : components_(components) {
  components_.validate();
}

double NodePowerModel::psu_efficiency(double load_fraction) const {
  ISCOPE_CHECK_ARG(load_fraction >= 0.0, "psu: negative load");
  // Piecewise-linear 80 PLUS Gold-like curve:
  //   10% -> 0.80, 20% -> 0.87, 50% -> 0.92, 100% -> 0.89.
  static constexpr double kLoad[] = {0.0, 0.10, 0.20, 0.50, 1.00};
  static constexpr double kEff[] = {0.60, 0.80, 0.87, 0.92, 0.89};
  const double x = std::min(load_fraction, 1.2);
  double eff = kEff[4];
  for (int i = 1; i < 5; ++i) {
    if (x <= kLoad[i]) {
      const double t = (x - kLoad[i - 1]) / (kLoad[i] - kLoad[i - 1]);
      eff = kEff[i - 1] + t * (kEff[i] - kEff[i - 1]);
      break;
    }
  }
  return std::clamp(eff, 0.5, 0.99);
}

Watts NodePowerModel::dc_power(Watts cpu, double mem_activity,
                               const NodeVariation& variation) const {
  ISCOPE_CHECK_ARG(cpu.raw() >= 0.0, "node: negative CPU power");
  ISCOPE_CHECK_ARG(mem_activity >= 0.0 && mem_activity <= 1.0,
                   "node: memory activity must be in [0,1]");
  const Watts memory =
      (components_.memory_idle +
       mem_activity * (components_.memory_active - components_.memory_idle)) *
      variation.memory_scale;
  const Watts board = components_.board * variation.board_scale;
  return cpu + memory + components_.disk + components_.nic + board;
}

Watts NodePowerModel::wall_power(Watts cpu, double mem_activity,
                                 const NodeVariation& variation) const {
  const Watts dc = dc_power(cpu, mem_activity, variation);
  const double eff = std::clamp(
      psu_efficiency(dc / components_.psu_rated) +
          variation.psu_efficiency_shift,
      0.5, 0.99);
  return dc / eff;
}

NodeVariation NodePowerModel::sample_variation(Rng& rng) const {
  NodeVariation v;
  v.memory_scale = rng.truncated_normal(1.0, 0.08, 0.7, 1.3);
  v.board_scale = rng.truncated_normal(1.0, 0.05, 0.8, 1.2);
  v.psu_efficiency_shift = rng.truncated_normal(0.0, 0.01, -0.02, 0.02);
  return v;
}

}  // namespace iscope
