#include "power/cpu_power.hpp"

#include "common/error.hpp"

namespace iscope {

void PowerModelParams::validate() const {
  ISCOPE_CHECK_ARG(alpha_mean > 0.0, "alpha_mean must be > 0");
  ISCOPE_CHECK_ARG(alpha_sigma >= 0.0, "alpha_sigma must be >= 0");
  ISCOPE_CHECK_ARG(beta_mean >= 0.0, "beta_mean must be >= 0");
  ISCOPE_CHECK_ARG(leakage_voltage_share >= 0.0 && leakage_voltage_share <= 1.0,
                   "leakage_voltage_share must be in [0,1]");
}

CpuPowerModel::CpuPowerModel(const PowerModelParams& params) : params_(params) {
  params_.validate();
}

PowerCoefficients CpuPowerModel::sample(Rng& rng) const {
  PowerCoefficients c;
  // Truncate alpha at 4 sigma (and away from zero) so a pathological draw
  // cannot produce a negative-power chip.
  c.alpha = WattsPerCubicGigahertz{rng.truncated_normal(
      params_.alpha_mean, params_.alpha_sigma,
      std::max(0.1, params_.alpha_mean - 4.0 * params_.alpha_sigma),
      params_.alpha_mean + 4.0 * params_.alpha_sigma)};
  c.beta = Watts{static_cast<double>(rng.poisson(params_.beta_mean))};
  return c;
}

Watts CpuPowerModel::power(const PowerCoefficients& c, Gigahertz f, Volts vdd,
                           Volts vdd_nom, Volts vdd_ref) const {
  ISCOPE_CHECK_ARG(f.raw() >= 0.0, "power: negative frequency");
  ISCOPE_CHECK_ARG(vdd.raw() > 0.0 && vdd_nom.raw() > 0.0,
                   "power: voltages must be > 0");
  if (vdd_ref.raw() <= 0.0) vdd_ref = vdd_nom;
  const double vr = vdd / vdd_nom;
  const double s = params_.leakage_voltage_share;
  const double static_factor = s * (vdd / vdd_ref) + (1.0 - s);
  return c.alpha * f * f * f * (vr * vr) + c.beta * static_factor;
}

Watts CpuPowerModel::power_eq1(const PowerCoefficients& c, Gigahertz f) const {
  ISCOPE_CHECK_ARG(f.raw() >= 0.0, "power_eq1: negative frequency");
  return c.alpha * f * f * f + c.beta;
}

WattsPerGigahertz CpuPowerModel::efficiency(const PowerCoefficients& c,
                                            Gigahertz f, Volts vdd,
                                            Volts vdd_nom) const {
  ISCOPE_CHECK_ARG(f.raw() > 0.0, "efficiency: frequency must be > 0");
  return power(c, f, vdd, vdd_nom) / f;
}

}  // namespace iscope
