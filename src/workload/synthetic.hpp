// Thunder-calibrated synthetic workload generator.
//
// Substitute for the LLNL Thunder trace (Parallel Workloads Archive): the
// generator reproduces the statistics the paper's experiments exercise --
// a large-cluster parallel workload with power-of-two-leaning job widths,
// heavy-tailed (lognormal) runtimes, and a diurnal arrival cycle (the
// Fig. 10 profiling-window experiment depends on the day/night demand
// swing). Real SWF traces can be used instead via workload/swf.hpp.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "workload/task.hpp"

namespace iscope {

struct SyntheticWorkloadConfig {
  std::size_t num_jobs = 2000;
  /// Width cap; Thunder had 4096 processors.
  std::size_t max_cpus = 4096;
  /// Mean inter-arrival time at the diurnal average [s].
  double mean_interarrival_s = 40.0;
  /// Day/night arrival-rate swing: rate(t) = mean * (1 + a*sin(...)).
  double diurnal_amplitude = 0.75;
  /// Hour of peak demand (0-24).
  double peak_hour = 14.0;
  /// Lognormal runtime: ln T ~ Normal(mu, sigma). Defaults give a median
  /// of ~15 min and a tail past several hours, Thunder-like.
  double runtime_log_mu = 6.8;
  double runtime_log_sigma = 1.4;
  /// Fraction of jobs whose width is a power of two.
  double pow2_fraction = 0.75;
  /// Geometric-ish decay of width exponent (bigger -> narrower jobs).
  double width_decay = 0.55;
  /// CPU-boundness gamma ~ Uniform(lo, hi).
  double gamma_lo = 0.5;
  double gamma_hi = 1.0;
  std::uint64_t seed = 7;

  void validate() const;
};

/// Generate jobs sorted by submit time. Deadlines are provisional (12x) --
/// apply `assign_deadlines` to set the HU/LU mix of an experiment.
std::vector<Task> generate_workload(const SyntheticWorkloadConfig& config);

/// Per-minute demanded-CPU fraction over the trace's span, assuming every
/// job runs exactly [submit, submit+runtime) on its requested CPUs. This is
/// the "required number of nodes" signal of the paper's Fig. 10.
std::vector<double> demanded_cpu_fraction_per_minute(
    const std::vector<Task>& tasks, std::size_t total_cpus,
    double horizon_s);

}  // namespace iscope
