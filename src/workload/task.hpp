// Task model (paper Sec. IV-A).
//
// A task arrives dynamically with: requested number of CPUs, CPU-boundness
// gamma, nominal execution time at the top frequency, and a deadline. Its
// execution time at frequency f follows Hsu et al. [33] (the paper's Eq-3):
//
//   T(f) = T(Fmax) * ( gamma * (Fmax/f - 1) + 1 )
//
// For scheduling under DVFS we track *work* in units of "seconds at Fmax":
// a task running at frequency f makes progress at rate 1 / slowdown(f).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iscope {

enum class Urgency : std::uint8_t {
  kHigh,  ///< HU: deadline ~ Normal(4x, var 2) of nominal runtime
  kLow,   ///< LU: deadline ~ Normal(12x, var 2)
};

struct Task {
  std::int64_t id = 0;
  double submit_s = 0.0;    ///< arrival time
  std::size_t cpus = 1;     ///< requested number of CPUs (processors)
  double runtime_s = 0.0;   ///< nominal execution time at Fmax
  double gamma = 1.0;       ///< CPU-boundness in [0,1] (1 = fully CPU-bound)
  double deadline_s = 0.0;  ///< absolute completion deadline
  Urgency urgency = Urgency::kLow;

  /// Eq-3 slowdown factor at frequency `f_ghz` given top frequency
  /// `fmax_ghz`: execution takes `runtime_s * slowdown`.
  double slowdown(double f_ghz, double fmax_ghz) const;

  /// Execution time at frequency `f_ghz` (Eq-3).
  double exec_time_s(double f_ghz, double fmax_ghz) const;

  /// Latest start time (at frequency f) that still meets the deadline.
  double latest_start_s(double f_ghz, double fmax_ghz) const;
};

/// Sanity-check a task list: positive runtimes and widths, deadlines after
/// submission, gamma in [0,1], non-decreasing submit order not required.
void validate_tasks(const std::vector<Task>& tasks);

/// Sort by submit time (stable; ties keep input order).
void sort_by_submit(std::vector<Task>& tasks);

/// Scale the arrival rate: rate 5 means each submit time becomes 1/5 of the
/// original ("an arrival rate of 5X indicates the adjusted task submit time
/// is 20% of the origin setting" -- paper Sec. V-D). Deadlines shift with
/// their submit times, keeping the same slack after arrival.
std::vector<Task> scale_arrival_rate(std::vector<Task> tasks, double rate);

/// Clamp task widths to `max_cpus` (replaying a 4096-CPU archive trace on a
/// smaller simulated cluster).
std::vector<Task> clamp_widths(std::vector<Task> tasks, std::size_t max_cpus);

}  // namespace iscope
