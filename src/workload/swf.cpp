#include "workload/swf.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace iscope {

std::vector<SwfJob> parse_swf(const std::string& text) {
  std::vector<SwfJob> jobs;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip CR and leading whitespace.
    while (!line.empty() && (line.back() == '\r' || line.back() == '\n'))
      line.pop_back();
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line[first] == ';') continue;  // header/comment

    std::istringstream fields(line);
    std::vector<double> f;
    double v;
    while (fields >> v) {
      // Reject non-finite values outright: "nan" parses as a double but a
      // NaN runtime/width would sail through every downstream `<= 0`
      // guard and silently poison the simulation.
      if (!std::isfinite(v))
        throw ParseError("SWF line " + std::to_string(lineno) +
                         ": non-finite field");
      f.push_back(v);
    }
    // The extraction must have consumed the whole line; stopping early
    // means a malformed token (stray text, embedded NUL, truncated float).
    if (!fields.eof())
      throw ParseError("SWF line " + std::to_string(lineno) +
                       ": malformed numeric field");
    if (f.size() < 8) {
      throw ParseError("SWF line " + std::to_string(lineno) +
                       ": expected >= 8 fields, got " +
                       std::to_string(f.size()));
    }
    SwfJob job;
    job.job_id = static_cast<std::int64_t>(f[0]);
    job.submit_s = f[1];
    job.wait_s = f[2];
    job.runtime_s = f[3];
    job.allocated_procs = static_cast<std::int64_t>(f[4]);
    job.requested_procs = static_cast<std::int64_t>(f[7]);
    if (f.size() > 8) job.requested_time_s = f[8];
    if (f.size() > 10) job.status = static_cast<std::int64_t>(f[10]);
    jobs.push_back(job);
  }
  return jobs;
}

std::vector<SwfJob> read_swf_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("cannot open SWF file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_swf(ss.str());
}

std::vector<Task> swf_to_tasks(const std::vector<SwfJob>& jobs) {
  std::vector<Task> tasks;
  tasks.reserve(jobs.size());
  double first_submit = -1.0;
  for (const SwfJob& j : jobs) {
    // Width preference: allocated (what actually ran), else requested.
    const std::int64_t procs =
        j.allocated_procs > 0 ? j.allocated_procs : j.requested_procs;
    if (j.runtime_s <= 0.0 || procs <= 0) continue;
    if (first_submit < 0.0) first_submit = j.submit_s;
    Task t;
    t.id = j.job_id;
    t.submit_s = std::max(0.0, j.submit_s - first_submit);
    t.cpus = static_cast<std::size_t>(procs);
    t.runtime_s = j.runtime_s;
    // Deadline is assigned later by the urgency model; keep it provisional
    // but valid so validate_tasks passes on raw conversions.
    t.deadline_s = t.submit_s + 12.0 * t.runtime_s;
    tasks.push_back(t);
  }
  return tasks;
}

std::string tasks_to_swf(const std::vector<Task>& tasks) {
  std::ostringstream out;
  out << "; SWF exported by iScope\n";
  out << "; fields: job submit wait runtime procs cpu_used mem procs_req "
         "time_req mem_req status uid gid exe queue part prev think\n";
  for (const Task& t : tasks) {
    out << t.id << ' ' << t.submit_s << " 0 " << t.runtime_s << ' ' << t.cpus
        << " -1 -1 " << t.cpus << " -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
  }
  return out.str();
}

}  // namespace iscope
