#include "workload/task.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace iscope {

double Task::slowdown(double f_ghz, double fmax_ghz) const {
  ISCOPE_CHECK_ARG(f_ghz > 0.0 && fmax_ghz > 0.0,
                   "slowdown: frequencies must be > 0");
  ISCOPE_CHECK_ARG(f_ghz <= fmax_ghz + 1e-12,
                   "slowdown: f must not exceed fmax");
  return gamma * (fmax_ghz / f_ghz - 1.0) + 1.0;
}

double Task::exec_time_s(double f_ghz, double fmax_ghz) const {
  return runtime_s * slowdown(f_ghz, fmax_ghz);
}

double Task::latest_start_s(double f_ghz, double fmax_ghz) const {
  return deadline_s - exec_time_s(f_ghz, fmax_ghz);
}

void validate_tasks(const std::vector<Task>& tasks) {
  for (const Task& t : tasks) {
    ISCOPE_CHECK_ARG(t.runtime_s > 0.0, "task: runtime must be > 0");
    ISCOPE_CHECK_ARG(t.cpus > 0, "task: must request at least one CPU");
    ISCOPE_CHECK_ARG(t.submit_s >= 0.0, "task: negative submit time");
    ISCOPE_CHECK_ARG(t.deadline_s > t.submit_s,
                     "task: deadline must follow submission");
    ISCOPE_CHECK_ARG(t.gamma >= 0.0 && t.gamma <= 1.0,
                     "task: gamma must be in [0,1]");
  }
}

void sort_by_submit(std::vector<Task>& tasks) {
  std::stable_sort(tasks.begin(), tasks.end(),
                   [](const Task& a, const Task& b) {
                     return a.submit_s < b.submit_s;
                   });
}

std::vector<Task> scale_arrival_rate(std::vector<Task> tasks, double rate) {
  ISCOPE_CHECK_ARG(rate > 0.0, "scale_arrival_rate: rate must be > 0");
  for (Task& t : tasks) {
    const double slack = t.deadline_s - t.submit_s;
    t.submit_s /= rate;
    t.deadline_s = t.submit_s + slack;
  }
  return tasks;
}

std::vector<Task> clamp_widths(std::vector<Task> tasks, std::size_t max_cpus) {
  ISCOPE_CHECK_ARG(max_cpus > 0, "clamp_widths: max_cpus must be > 0");
  for (Task& t : tasks) t.cpus = std::min(t.cpus, max_cpus);
  return tasks;
}

}  // namespace iscope
