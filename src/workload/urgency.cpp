#include "workload/urgency.hpp"

#include <cmath>

#include "common/error.hpp"

namespace iscope {

void UrgencyConfig::validate() const {
  ISCOPE_CHECK_ARG(hu_fraction >= 0.0 && hu_fraction <= 1.0,
                   "urgency: hu_fraction must be in [0,1]");
  ISCOPE_CHECK_ARG(hu_mean > 1.0 && lu_mean > 1.0,
                   "urgency: multiplier means must exceed 1");
  ISCOPE_CHECK_ARG(variance >= 0.0, "urgency: negative variance");
  ISCOPE_CHECK_ARG(min_multiplier >= 1.0,
                   "urgency: min multiplier must be >= 1");
}

void assign_deadlines(std::vector<Task>& tasks, const UrgencyConfig& config) {
  config.validate();
  Rng rng(config.seed);
  const double sigma = std::sqrt(config.variance);
  for (Task& t : tasks) {
    const bool high = rng.bernoulli(config.hu_fraction);
    t.urgency = high ? Urgency::kHigh : Urgency::kLow;
    const double mean = high ? config.hu_mean : config.lu_mean;
    const double m = rng.truncated_normal(mean, sigma, config.min_multiplier,
                                          mean + 6.0 * (sigma + 1.0));
    t.deadline_s = t.submit_s + m * t.runtime_s;
  }
}

double hu_fraction(const std::vector<Task>& tasks) {
  if (tasks.empty()) return 0.0;
  std::size_t hu = 0;
  for (const Task& t : tasks)
    if (t.urgency == Urgency::kHigh) ++hu;
  return static_cast<double>(hu) / static_cast<double>(tasks.size());
}

}  // namespace iscope
