#include "workload/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace iscope {

void SyntheticWorkloadConfig::validate() const {
  ISCOPE_CHECK_ARG(num_jobs > 0, "workload: need at least one job");
  ISCOPE_CHECK_ARG(max_cpus > 0, "workload: max_cpus must be > 0");
  ISCOPE_CHECK_ARG(mean_interarrival_s > 0.0,
                   "workload: interarrival must be > 0");
  ISCOPE_CHECK_ARG(diurnal_amplitude >= 0.0 && diurnal_amplitude < 1.0,
                   "workload: diurnal amplitude must be in [0,1)");
  ISCOPE_CHECK_ARG(peak_hour >= 0.0 && peak_hour < 24.0,
                   "workload: peak hour out of range");
  ISCOPE_CHECK_ARG(runtime_log_sigma >= 0.0, "workload: negative sigma");
  ISCOPE_CHECK_ARG(pow2_fraction >= 0.0 && pow2_fraction <= 1.0,
                   "workload: pow2 fraction in [0,1]");
  ISCOPE_CHECK_ARG(width_decay > 0.0 && width_decay < 1.0,
                   "workload: width decay in (0,1)");
  ISCOPE_CHECK_ARG(0.0 <= gamma_lo && gamma_lo <= gamma_hi && gamma_hi <= 1.0,
                   "workload: need 0 <= gamma_lo <= gamma_hi <= 1");
}

namespace {
/// Thinning: draw the next arrival of an inhomogeneous Poisson process with
/// diurnal rate modulation.
double next_arrival(double t, const SyntheticWorkloadConfig& cfg, Rng& rng) {
  const double lambda_max =
      (1.0 + cfg.diurnal_amplitude) / cfg.mean_interarrival_s;
  for (;;) {
    t += rng.exponential(lambda_max);
    const double hour = std::fmod(t / units::kSecondsPerHour, 24.0);
    const double phase = 2.0 * M_PI * (hour - cfg.peak_hour) / 24.0;
    const double lambda =
        (1.0 + cfg.diurnal_amplitude * std::cos(phase)) /
        cfg.mean_interarrival_s;
    if (rng.uniform() * lambda_max <= lambda) return t;
  }
}

std::size_t draw_width(const SyntheticWorkloadConfig& cfg, Rng& rng) {
  // Power-of-two widths with geometric exponent decay, else uniform small.
  const auto max_exp = static_cast<int>(std::floor(
      std::log2(static_cast<double>(cfg.max_cpus))));
  if (rng.bernoulli(cfg.pow2_fraction)) {
    int e = 0;
    while (e < max_exp && rng.bernoulli(cfg.width_decay)) ++e;
    return std::min(cfg.max_cpus, static_cast<std::size_t>(1) << e);
  }
  const auto cap = std::min<std::size_t>(cfg.max_cpus, 64);
  return static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(cap)));
}
}  // namespace

std::vector<Task> generate_workload(const SyntheticWorkloadConfig& config) {
  config.validate();
  Rng rng(config.seed);
  Rng arrival_rng = rng.fork("arrivals");
  Rng shape_rng = rng.fork("shapes");

  std::vector<Task> tasks;
  tasks.reserve(config.num_jobs);
  double t = 0.0;
  for (std::size_t i = 0; i < config.num_jobs; ++i) {
    t = next_arrival(t, config, arrival_rng);
    Task task;
    task.id = static_cast<std::int64_t>(i) + 1;
    task.submit_s = t;
    task.cpus = draw_width(config, shape_rng);
    task.runtime_s = std::max(
        1.0, shape_rng.lognormal(config.runtime_log_mu,
                                 config.runtime_log_sigma));
    task.gamma = shape_rng.uniform(config.gamma_lo, config.gamma_hi);
    task.deadline_s = task.submit_s + 12.0 * task.runtime_s;  // provisional
    tasks.push_back(task);
  }
  return tasks;
}

std::vector<double> demanded_cpu_fraction_per_minute(
    const std::vector<Task>& tasks, std::size_t total_cpus,
    double horizon_s) {
  ISCOPE_CHECK_ARG(total_cpus > 0, "demanded_cpu_fraction: no CPUs");
  ISCOPE_CHECK_ARG(horizon_s > 0.0, "demanded_cpu_fraction: empty horizon");
  const auto minutes =
      static_cast<std::size_t>(std::ceil(horizon_s / 60.0));
  std::vector<double> demand(minutes, 0.0);
  for (const Task& t : tasks) {
    const double start = t.submit_s;
    const double end = t.submit_s + t.runtime_s;
    if (start >= horizon_s) continue;
    const auto m0 = static_cast<std::size_t>(start / 60.0);
    // End is exclusive: a job ending exactly on a minute boundary does not
    // occupy that minute.
    auto m1 = static_cast<std::size_t>(
        std::min(std::max(end - 1e-9, start), horizon_s - 1e-9) / 60.0);
    m1 = std::min(m1, minutes - 1);
    for (std::size_t m = m0; m <= m1; ++m)
      demand[m] += static_cast<double>(t.cpus);
  }
  for (auto& d : demand)
    d = std::min(1.0, d / static_cast<double>(total_cpus));
  return demand;
}

}  // namespace iscope
