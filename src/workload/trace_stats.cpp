#include "workload/trace_stats.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace iscope {

TraceStats compute_trace_stats(const std::vector<Task>& tasks) {
  ISCOPE_CHECK_ARG(!tasks.empty(), "trace stats: empty trace");
  TraceStats s;
  s.jobs = tasks.size();

  double first = tasks.front().submit_s, last = tasks.front().submit_s;
  std::vector<double> widths, runtimes;
  widths.reserve(tasks.size());
  runtimes.reserve(tasks.size());
  std::size_t pow2 = 0, hu = 0;
  double mult_sum = 0.0;
  for (const Task& t : tasks) {
    first = std::min(first, t.submit_s);
    last = std::max(last, t.submit_s);
    widths.push_back(static_cast<double>(t.cpus));
    runtimes.push_back(t.runtime_s);
    s.max_width = std::max(s.max_width, t.cpus);
    if ((t.cpus & (t.cpus - 1)) == 0) ++pow2;
    if (t.urgency == Urgency::kHigh) ++hu;
    s.total_cpu_seconds += static_cast<double>(t.cpus) * t.runtime_s;
    mult_sum += (t.deadline_s - t.submit_s) / t.runtime_s;
  }
  s.span_s = last - first;
  s.mean_interarrival_s =
      tasks.size() > 1 ? s.span_s / static_cast<double>(tasks.size() - 1) : 0.0;
  s.mean_width = mean(widths);
  s.p50_width = percentile(widths, 50.0);
  s.p95_width = percentile(widths, 95.0);
  s.pow2_width_fraction =
      static_cast<double>(pow2) / static_cast<double>(tasks.size());
  s.mean_runtime_s = mean(runtimes);
  s.p50_runtime_s = percentile(runtimes, 50.0);
  s.p95_runtime_s = percentile(runtimes, 95.0);
  // Offered CPUs over the busy horizon (span plus the tail of the last job).
  const double horizon = std::max(s.span_s + s.mean_runtime_s, 1.0);
  s.offered_cpus = s.total_cpu_seconds / horizon;
  s.hu_fraction = static_cast<double>(hu) / static_cast<double>(tasks.size());
  s.mean_deadline_multiplier =
      mult_sum / static_cast<double>(tasks.size());
  return s;
}

double offered_utilization(const TraceStats& stats, std::size_t num_cpus) {
  ISCOPE_CHECK_ARG(num_cpus > 0, "offered_utilization: no CPUs");
  return stats.offered_cpus / static_cast<double>(num_cpus);
}

std::string TraceStats::summary() const {
  std::ostringstream out;
  out << jobs << " jobs over " << TextTable::num(span_s / 3600.0, 1)
      << " h (mean interarrival " << TextTable::num(mean_interarrival_s, 0)
      << " s)\n"
      << "widths: mean " << TextTable::num(mean_width, 1) << ", p50 "
      << TextTable::num(p50_width, 0) << ", p95 "
      << TextTable::num(p95_width, 0) << ", max " << max_width << " ("
      << TextTable::pct(pow2_width_fraction) << " power-of-two)\n"
      << "runtimes: mean " << TextTable::num(mean_runtime_s / 60.0, 1)
      << " min, p50 " << TextTable::num(p50_runtime_s / 60.0, 1)
      << " min, p95 " << TextTable::num(p95_runtime_s / 60.0, 1) << " min\n"
      << "offered load: " << TextTable::num(offered_cpus, 1)
      << " CPUs on average; HU share " << TextTable::pct(hu_fraction)
      << ", mean deadline multiplier "
      << TextTable::num(mean_deadline_multiplier, 1) << "x\n";
  return out.str();
}

}  // namespace iscope
