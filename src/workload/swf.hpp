// Standard Workload Format (SWF) parser.
//
// The paper's workload is the LLNL Thunder trace from the Parallel Workloads
// Archive (Sec. V-D). SWF is the archive's line format: `;` comment header
// followed by rows of 18 whitespace-separated integer fields. We read the
// fields the experiments need:
//
//   1 job number, 2 submit time [s], 4 run time [s],
//   5 allocated processors, 8 requested processors.
//
// Jobs with unknown (-1) or zero runtime/width are skipped, as is standard
// practice when replaying archive traces.
#pragma once

#include <string>
#include <vector>

#include "workload/task.hpp"

namespace iscope {

struct SwfJob {
  std::int64_t job_id = 0;
  double submit_s = 0.0;
  double wait_s = 0.0;
  double runtime_s = 0.0;
  std::int64_t allocated_procs = 0;
  std::int64_t requested_procs = 0;
  double requested_time_s = 0.0;
  std::int64_t status = 0;
};

/// Parse SWF text. Comment lines start with ';'. Returns jobs in file order.
std::vector<SwfJob> parse_swf(const std::string& text);

/// Read and parse an SWF file.
std::vector<SwfJob> read_swf_file(const std::string& path);

/// Convert archive jobs to schedulable tasks (deadlines unset -- apply
/// `assign_deadlines` afterwards). Jobs with non-positive runtime or width
/// are dropped; submit times are rebased so the first job arrives at t=0.
std::vector<Task> swf_to_tasks(const std::vector<SwfJob>& jobs);

/// Serialize tasks back to SWF (for interoperability tests and tooling).
std::string tasks_to_swf(const std::vector<Task>& tasks);

}  // namespace iscope
