// Descriptive statistics of a task trace.
//
// Trace characterization is half of any scheduling study: these are the
// numbers one checks before trusting a run (offered load vs capacity, HU
// share, width/runtime distributions) and the numbers our synthetic
// generator is calibrated against (the LLNL Thunder profile).
#pragma once

#include <string>
#include <vector>

#include "workload/task.hpp"

namespace iscope {

struct TraceStats {
  std::size_t jobs = 0;
  double span_s = 0.0;            ///< first submit .. last submit
  double mean_interarrival_s = 0.0;

  double mean_width = 0.0;
  double p50_width = 0.0;
  double p95_width = 0.0;
  std::size_t max_width = 0;
  double pow2_width_fraction = 0.0;

  double mean_runtime_s = 0.0;
  double p50_runtime_s = 0.0;
  double p95_runtime_s = 0.0;

  double total_cpu_seconds = 0.0;
  /// Average demanded CPUs assuming each job runs [submit, submit+runtime).
  double offered_cpus = 0.0;

  double hu_fraction = 0.0;
  double mean_deadline_multiplier = 0.0;

  /// Human-readable multi-line summary.
  std::string summary() const;
};

/// Compute statistics; throws on an empty trace.
TraceStats compute_trace_stats(const std::vector<Task>& tasks);

/// Offered utilization against a cluster of `num_cpus`: offered_cpus /
/// num_cpus. The stable-queue regime needs this comfortably below 1.
double offered_utilization(const TraceStats& stats, std::size_t num_cpus);

}  // namespace iscope
