// Deadline assignment by urgency class (paper Sec. V-D, after Garg [29]).
//
// Each task is High Urgency (HU) or Low Urgency (LU). The deadline is
// submit + runtime * m, with the multiplier m drawn from Normal(4, var 2)
// for HU and Normal(12, var 2) for LU, truncated below so every deadline is
// achievable at the top frequency (m >= min_multiplier).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "workload/task.hpp"

namespace iscope {

struct UrgencyConfig {
  double hu_fraction = 0.3;      ///< fraction of HU tasks
  double hu_mean = 4.0;          ///< HU deadline multiplier mean
  double lu_mean = 12.0;         ///< LU deadline multiplier mean
  double variance = 2.0;         ///< multiplier variance (both classes)
  double min_multiplier = 1.05;  ///< floor: keep deadlines feasible at Fmax
  std::uint64_t seed = 11;

  void validate() const;
};

/// Assign urgency classes and deadlines in place. Deterministic for a given
/// (tasks, config) pair.
void assign_deadlines(std::vector<Task>& tasks, const UrgencyConfig& config);

/// Fraction of tasks labeled HU (for assertions/reporting).
double hu_fraction(const std::vector<Task>& tasks);

}  // namespace iscope
