// Structured simulation timeline.
//
// When enabled (SimConfig::record_timeline) the simulator logs every
// schedulable moment -- arrivals, gang starts, completions, misses, rush
// transitions, profiling windows -- as typed events. The log is the
// debugging surface for scheduling behaviour ("why did this task wait?")
// and exports to CSV for external analysis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iscope {

enum class TimelineKind : std::uint8_t {
  kArrival,
  kStart,
  kCompletion,
  kDeadlineMiss,
  kRushEnter,
  kRushLeave,
  kProfilingBegin,
  kProfilingEnd,
  kCpuFail,      ///< processor fail-stopped (fault injection)
  kCpuRepair,    ///< processor returned to service
  kTaskRequeue,  ///< running task killed by a CPU failure, requeued
  kTaskAbandon,  ///< task exceeded its retry budget, terminally failed
  kSleepEnter,   ///< processor descended one C-state (value = new depth)
  kTaskWaking,   ///< gang claimed sleeping CPUs, start delayed by wake
};

const char* timeline_kind_name(TimelineKind kind);

struct TimelineEvent {
  double time_s = 0.0;
  TimelineKind kind = TimelineKind::kArrival;
  std::int64_t task_id = -1;  ///< -1 for non-task events
  double value = 0.0;         ///< kind-specific (width, wait, count...)
};

/// Write events as CSV: time_s,kind,task_id,value.
void save_timeline_csv(const std::string& path,
                       const std::vector<TimelineEvent>& events);

}  // namespace iscope
