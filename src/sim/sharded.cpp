#include "sim/sharded.hpp"

#include <algorithm>
#include <cstdint>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "energy/reconcile.hpp"
#include "telemetry/telemetry.hpp"

namespace iscope {

std::vector<std::vector<Task>> partition_tasks(const std::vector<Task>& tasks,
                                               const Topology& topology) {
  const std::size_t n = topology.shards();
  std::vector<std::vector<Task>> parts(n);
  if (n == 1) {
    parts[0] = tasks;
    return parts;
  }

  // Submit order first: the partition must not depend on the caller's
  // incidental task ordering (DatacenterSim::prepare sorts anyway).
  std::vector<Task> sorted = tasks;
  sort_by_submit(sorted);

  // Greedy load balancing: CPU-seconds assigned so far, normalized by the
  // slice's capacity so unequal shards fill at the same relative rate.
  std::vector<double> load(n, 0.0);
  for (const Task& t : sorted) {
    std::size_t best = SIZE_MAX;
    for (std::size_t s = 0; s < n; ++s) {
      if (t.cpus > topology.slice(s).proc_count) continue;  // cannot fit
      if (best == SIZE_MAX || load[s] < load[best]) best = s;  // ties: lowest
    }
    ISCOPE_CHECK_ARG(best != SIZE_MAX,
                     "partition_tasks: task wider than every shard slice");
    const ShardSlice& slice = topology.slice(best);
    load[best] += static_cast<double>(t.cpus) * t.runtime_s /
                  static_cast<double>(slice.proc_count);
    parts[best].push_back(t);
  }
  return parts;
}

std::vector<std::vector<ProfilingWindow>> partition_windows(
    const std::vector<ProfilingWindow>& profiling, const Topology& topology) {
  const std::size_t n = topology.shards();
  std::vector<std::vector<ProfilingWindow>> parts(n);
  if (n == 1) {
    parts[0] = profiling;
    return parts;
  }
  for (const ProfilingWindow& w : profiling) {
    for (std::size_t s = 0; s < n; ++s) {
      const ShardSlice& slice = topology.slice(s);
      ProfilingWindow local;
      for (std::size_t g : w.proc_ids)
        if (g >= slice.proc_lo && g < slice.proc_lo + slice.proc_count)
          local.proc_ids.push_back(g - slice.proc_lo);
      if (local.proc_ids.empty()) continue;
      local.start_s = w.start_s;
      local.duration_s = w.duration_s;
      parts[s].push_back(std::move(local));
    }
  }
  return parts;
}

ShardedSim::ShardedSim(const Cluster& cluster, Scheme scheme,
                       const ProfileDb* db, const HybridSupply& supply,
                       const SimConfig& config)
    : cluster_(&cluster),
      global_supply_(&supply),
      config_(config),
      topology_(config.topology, cluster.size()) {
  config_.validate();
  if (scheme_uses_scan(scheme))
    ISCOPE_CHECK_ARG(db != nullptr, "ShardedSim: Scan scheme needs a ProfileDb");

  const std::size_t n = topology_.shards();
  const double total = static_cast<double>(cluster.size());

  // Resolve the physical fault schedule ONCE, over the whole facility, so
  // it is a function of (spec, seed, facility size) alone -- independent of
  // the shard count -- then hand each shard its slice.
  std::shared_ptr<const FaultPlan> global_plan = config_.fault_plan;
  if (global_plan == nullptr && config_.faults.any())
    global_plan = std::make_shared<const FaultPlan>(
        FaultPlan::build(config_.faults, config_.fault_seed, cluster.size()));
  global_plan_ = global_plan;

  if (config_.thermal.enabled)
    thermal_model_ = std::make_unique<ThermalModel>(
        config_.thermal, config_.topology, topology_.racks());

  capacity_share_.reserve(n);
  shards_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    const ShardSlice& slice = topology_.slice(s);
    capacity_share_.push_back(static_cast<double>(slice.proc_count) / total);

    Shard shard;
    shard.knowledge = std::make_unique<Knowledge>(
        &cluster, scheme_knowledge(scheme),
        scheme_uses_scan(scheme) ? db : nullptr, slice.proc_lo,
        slice.proc_count);
    // Fraction starts at 1.0; the first barrier (t = 0) reconciles before
    // any event runs. For a single shard it is re-set to exactly 1.0 every
    // epoch, so the supply view stays bit-identical to the global one.
    shard.supply = std::make_unique<HybridSupply>(supply);

    SimConfig sc = config_;
    sc.topology.shards = 1;  // shards do not re-shard
    sc.shard_workers = 1;
    // Shard 0 keeps the base seed (1-shard identity); the rest fork
    // deterministic per-shard streams.
    if (s > 0) sc.seed = Rng(config_.seed).fork("shard" + std::to_string(s)).seed();
    // The battery bank splits by capacity share (x 1.0 is exact for one
    // shard), charge/discharge limits included.
    sc.battery.capacity = config_.battery.capacity * capacity_share_[s];
    sc.battery.max_charge = config_.battery.max_charge * capacity_share_[s];
    sc.battery.max_discharge =
        config_.battery.max_discharge * capacity_share_[s];
    if (global_plan != nullptr)
      sc.fault_plan = std::make_shared<const FaultPlan>(
          global_plan->slice(slice.proc_lo, slice.proc_count));
    if (n > 1 && !sc.telemetry_label.empty())
      sc.telemetry_label += "/shard" + std::to_string(s);
    shard.config = std::move(sc);

    shard.sim = std::make_unique<DatacenterSim>(
        shard.knowledge.get(), scheme_rule(scheme), shard.supply.get(),
        shard.config);
    if (config_.thermal.enabled) {
      // Shards never solve the model themselves: the coordinator resolves
      // it at every barrier and pushes. ScanTherm's placement order is
      // derived here from the facility-wide matrix so every shard ranks
      // its slice against the same global heat weights.
      shard.sim->thermal_external_ = true;
      if (scheme_rule(scheme) == PlacementRule::kTherm)
        shard.sim->install_thermal_order(thermal_model_->matrix());
    }
    shards_.push_back(std::move(shard));
  }
}

ShardedSim::~ShardedSim() = default;

void ShardedSim::ensure_pool() {
  std::size_t workers = config_.shard_workers;
  if (workers == 0)
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers = std::min(workers, shards_.size());
  if (workers > 1 && pool_ == nullptr)
    pool_ = std::make_unique<ThreadPool>(workers);
}

void ShardedSim::prepare(const std::vector<Task>& tasks,
                         const std::vector<ProfilingWindow>& profiling) {
  const std::size_t n = shards_.size();
  std::vector<std::vector<Task>> parts = partition_tasks(tasks, topology_);
  std::vector<std::vector<ProfilingWindow>> windows =
      partition_windows(profiling, topology_);
  for (std::size_t s = 0; s < n; ++s) {
    shards_[s].tasks_assigned = parts[s].size();
    shards_[s].sim->prepare(std::move(parts[s]), windows[s]);
  }
  barrier_ = 0.0;
  ensure_pool();
}

bool ShardedSim::drained() const {
  for (const Shard& sh : shards_)
    if (!sh.sim->drained()) return false;
  return true;
}

std::size_t ShardedSim::advance_round() {
  // One epoch-barrier round: (1) collect demands, (2) reconcile the global
  // wind budget in fixed shard order (single-threaded), (3) advance every
  // shard through events strictly before the next barrier. An epoch event
  // at exactly t = k*epoch_s runs in round k+1, under the fraction
  // reconciled at that barrier.
  const std::size_t n = shards_.size();
  std::vector<Watts> demand(n, Watts{});
  for (std::size_t s = 0; s < n; ++s)
    demand[s] = shards_[s].sim->demand_now();
  const Watts wind = global_supply_->wind_available(Seconds{barrier_});
  const WindAllocation alloc =
      reconcile_wind(std::max(wind, Watts{}), demand, capacity_share_);
  for (std::size_t s = 0; s < n; ++s)
    shards_[s].supply->set_fraction(alloc.fraction[s]);

  if (config_.thermal.enabled) {
    // Resolve the thermal model once over the whole facility (fixed shard
    // order; racks never straddle shards, so the per-rack sums match a
    // flat run's bit for bit) and stage the solution for every shard's
    // class-0 kThermal event at this barrier.
    rack_w_.assign(thermal_model_->matrix().racks(), 0.0);
    for (const Shard& sh : shards_) sh.sim->collect_rack_power(rack_w_);
    const double derate =
        global_plan_ != nullptr ? global_plan_->crac_factor(barrier_) : 1.0;
    const ThermalSolution sol = thermal_model_->solve(rack_w_, derate);
    for (Shard& sh : shards_)
      sh.sim->push_thermal(sol.cop, sol.supply_c, sol.peak_inlet_c);
  }

  const double next = barrier_ + config_.epoch_s;
  std::size_t events = 0;
  if (pool_ != nullptr) {
    std::vector<std::future<std::size_t>> pending;
    pending.reserve(n);
    for (Shard& sh : shards_)
      pending.push_back(pool_->submit(
          [&sim = *sh.sim, next] { return sim.advance_before(next); }));
    // Sum in fixed shard order (a size_t sum is order-independent anyway).
    for (std::future<std::size_t>& f : pending) events += f.get();
  } else {
    for (Shard& sh : shards_) events += sh.sim->advance_before(next);
  }
  barrier_ = next;
  return events;
}

SimResult ShardedSim::collect() {
  // Collect in fixed shard order; every cross-shard sum below is likewise
  // fixed-order, so the result is independent of the worker count.
  std::vector<SimResult> results;
  results.reserve(shards_.size());
  for (Shard& sh : shards_) results.push_back(sh.sim->finish());
  if (shards_.size() == 1) return std::move(results[0]);
  return aggregate(std::move(results));
}

SimResult ShardedSim::run(const std::vector<Task>& tasks,
                          const std::vector<ProfilingWindow>& profiling) {
  ISCOPE_SPAN("sharded_run");
  prepare(tasks, profiling);
  while (!drained()) advance_round();
  return collect();
}

SimResult ShardedSim::aggregate(std::vector<SimResult> results) const {
  SimResult agg;
  agg.busy_time_s.assign(cluster_->size(), 0.0);
  double total_wait_s = 0.0;
  std::size_t total_tasks = 0;
  // Power traces are sampled on the same global grid in every shard; merge
  // samples by exact timestamp, summing in shard order.
  std::map<double, PowerSample> trace;

  for (std::size_t s = 0; s < results.size(); ++s) {
    const SimResult& r = results[s];
    agg.energy += r.energy;
    agg.wind_curtailed += r.wind_curtailed;
    agg.battery_delivered += r.battery_delivered;
    agg.battery_losses += r.battery_losses;
    agg.tasks_completed += r.tasks_completed;
    agg.deadline_misses += r.deadline_misses;
    total_wait_s +=
        r.mean_wait.raw() * static_cast<double>(shards_[s].tasks_assigned);
    total_tasks += shards_[s].tasks_assigned;
    agg.makespan = std::max(agg.makespan, r.makespan);

    const ShardSlice& slice = topology_.slice(s);
    std::copy(r.busy_time_s.begin(), r.busy_time_s.end(),
              agg.busy_time_s.begin() + static_cast<std::ptrdiff_t>(slice.proc_lo));

    for (const PowerSample& p : r.trace) {
      PowerSample& acc = trace[p.time.raw()];
      acc.time = p.time;
      acc.demand += p.demand;
      acc.wind += p.wind;
      acc.utility += p.utility;
      acc.wind_avail += p.wind_avail;
      acc.battery += p.battery;
    }
    agg.timeline.insert(agg.timeline.end(), r.timeline.begin(),
                        r.timeline.end());

    agg.profiling_procs_scanned += r.profiling_procs_scanned;
    agg.profiling_procs_skipped += r.profiling_procs_skipped;
    agg.profiling_proc_seconds += r.profiling_proc_seconds;

    agg.faults.cpu_failures += r.faults.cpu_failures;
    agg.faults.cpu_repairs += r.faults.cpu_repairs;
    agg.faults.misprofile_failures += r.faults.misprofile_failures;
    agg.faults.task_requeues += r.faults.task_requeues;
    agg.faults.tasks_failed += r.faults.tasks_failed;
    agg.faults.lost_cpu_seconds += r.faults.lost_cpu_seconds;
    agg.faults.fault_deadline_misses += r.faults.fault_deadline_misses;

    agg.cooling_energy += r.cooling_energy;
    agg.idle_energy += r.idle_energy;
    agg.peak_inlet_c = std::max(agg.peak_inlet_c, r.peak_inlet_c);
    agg.sleep_enters += r.sleep_enters;
    agg.sleep_wakes += r.sleep_wakes;

    agg.dvfs_rematch_count += r.dvfs_rematch_count;
    agg.events_processed += r.events_processed;
  }

  agg.mean_wait = Seconds{total_tasks == 0
                              ? 0.0
                              : total_wait_s / static_cast<double>(total_tasks)};
  agg.cost = config_.prices.cost(agg.energy);
  agg.finalize_busy_stats();

  agg.trace.reserve(trace.size());
  for (const auto& [t, p] : trace) agg.trace.push_back(p);
  // Shard timelines are each time-sorted; a stable sort by time merges them
  // while keeping shard order among simultaneous events deterministic.
  std::stable_sort(
      agg.timeline.begin(), agg.timeline.end(),
      [](const TimelineEvent& a, const TimelineEvent& b) {
        return a.time_s < b.time_s;
      });
  return agg;
}

}  // namespace iscope
