// Simulation outputs: everything the paper's evaluation section reports.
#pragma once

#include <cstddef>
#include <vector>

#include "fault/fault.hpp"
#include "power/cost.hpp"
#include "power/energy_meter.hpp"
#include "sim/timeline.hpp"

namespace iscope {

struct SimResult {
  // --- energy & cost (Figs. 5, 6, 8) -----------------------------------
  EnergySplit energy;            ///< consumed, split wind/utility
  Usd cost;                      ///< priced with the run's EnergyPrices
  Joules wind_curtailed;
  /// Battery flows (0 when no battery is configured).
  Joules battery_delivered;
  Joules battery_losses;

  // --- thermal & sleep (src/thermal/, hardware/sleep.hpp; all-zero when
  // the thermal model and sleep management are disabled) ------------------
  Joules cooling_energy;          ///< CRAC draw over the run
  Joules idle_energy;             ///< idle/sleep residency power burned
  double peak_inlet_c = 0.0;      ///< hottest rack inlet ever reached
  std::size_t sleep_enters = 0;   ///< C-state descents taken
  std::size_t sleep_wakes = 0;    ///< gang starts delayed by a wake

  // --- task outcomes ----------------------------------------------------
  /// With fault injection disabled tasks_completed == tasks submitted;
  /// under injection, tasks_completed + faults.tasks_failed == submitted
  /// (no task is ever silently lost).
  std::size_t tasks_completed = 0;
  std::size_t deadline_misses = 0;
  Seconds mean_wait;              ///< submit -> start
  Seconds makespan;               ///< completion of the last task

  // --- processor usage (Fig. 9) ----------------------------------------
  std::vector<double> busy_time_s;     ///< per processor
  /// Variance of per-processor utilization time [hours^2] -- the paper's
  /// Fig. 9 metric.
  double busy_variance_h2 = 0.0;
  /// Fraction of processors that ever ran a task.
  double procs_used_fraction = 0.0;

  // --- power trace (Fig. 7) ---------------------------------------------
  std::vector<PowerSample> trace;

  // --- event timeline (when record_timeline is set) -----------------------
  std::vector<TimelineEvent> timeline;

  // --- in-band profiling (when a plan was supplied) -----------------------
  std::size_t profiling_procs_scanned = 0;
  std::size_t profiling_procs_skipped = 0;  ///< busy at window start (QoS)
  double profiling_proc_seconds = 0.0;      ///< processor-seconds isolated

  // --- fault injection (src/fault/; all-zero when disabled) ---------------
  FaultCounters faults;

  // --- bookkeeping --------------------------------------------------------
  std::size_t dvfs_rematch_count = 0;
  std::size_t events_processed = 0;

  /// Fill the derived busy-time statistics from `busy_time_s`.
  void finalize_busy_stats();
};

}  // namespace iscope
