#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace iscope {

void EventQueue::push_item(double time_s, const EventDesc& desc, Handler fn) {
  ISCOPE_CHECK_ARG(time_s >= now_ - 1e-9,
                   "EventQueue: cannot schedule into the past");
  ISCOPE_CHECK_ARG(static_cast<bool>(fn), "EventQueue: null handler");
  heap_.push_back(Item{std::max(time_s, now_), seq_++, tie_class(desc), desc,
                       std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  hwm_ = std::max(hwm_, heap_.size());
}

void EventQueue::schedule(double time_s, Handler fn) {
  push_item(time_s, EventDesc{}, std::move(fn));
}

void EventQueue::schedule(double time_s, const EventDesc& desc, Handler fn) {
  push_item(time_s, desc, std::move(fn));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Item item = std::move(heap_.back());
  heap_.pop_back();
  now_ = item.time;
  item.fn();
  return true;
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::size_t EventQueue::run_until(double until_s, std::size_t max_events) {
  std::size_t n = 0;
  while (!heap_.empty() && heap_.front().time <= until_s) {
    // Budget exhausted mid-slice: events at or before until_s remain, so
    // the clock must stay at the last processed event -- advancing it past
    // unprocessed events would make the next step() run time backwards.
    if (n >= max_events) return n;
    step();
    ++n;
  }
  now_ = std::max(now_, until_s);
  return n;
}

std::size_t EventQueue::run_before(double t_limit, std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && !heap_.empty() && heap_.front().time < t_limit) {
    step();
    ++n;
  }
  return n;
}

double EventQueue::peek_time() const {
  ISCOPE_CHECK_ARG(!heap_.empty(), "EventQueue: peek on empty queue");
  return heap_.front().time;
}

std::vector<SavedEvent> EventQueue::save_events() const {
  std::vector<SavedEvent> out;
  out.reserve(heap_.size());
  for (const Item& item : heap_) {
    ISCOPE_CHECK_ARG(item.desc.kind != EventDesc::Kind::kOpaque,
                     "EventQueue: cannot checkpoint an untagged (opaque) "
                     "pending event");
    out.push_back(SavedEvent{item.time, item.seq, item.desc});
  }
  return out;
}

void EventQueue::restore(
    double now, std::uint64_t next_seq, std::size_t high_water,
    const std::vector<SavedEvent>& events,
    const std::function<Handler(const SavedEvent&)>& factory) {
  heap_.clear();
  heap_.reserve(events.size());
  for (const SavedEvent& e : events) {
    ISCOPE_CHECK_ARG(e.desc.kind != EventDesc::Kind::kOpaque,
                     "EventQueue: cannot restore an opaque event");
    ISCOPE_CHECK_ARG(e.time >= now - 1e-9,
                     "EventQueue: restored event precedes the clock");
    ISCOPE_CHECK_ARG(e.seq < next_seq,
                     "EventQueue: restored sequence number from the future");
    Handler fn = factory(e);
    ISCOPE_CHECK_ARG(static_cast<bool>(fn),
                     "EventQueue: factory returned a null handler");
    // No push_heap: the snapshot is the raw layout of a valid heap, and
    // reinstalling it verbatim reproduces the uninterrupted run's exact
    // comparison/sift sequence.
    heap_.push_back(Item{e.time, e.seq, tie_class(e.desc), e.desc,
                         std::move(fn)});
  }
  ISCOPE_CHECK_ARG(
      std::is_heap(heap_.begin(), heap_.end(), Later{}),
      "EventQueue: restored events do not form a valid heap layout");
  now_ = now;
  seq_ = next_seq;
  hwm_ = std::max(high_water, heap_.size());
}

void EventQueue::clear() {
  heap_.clear();
  now_ = 0.0;
  seq_ = 0;
  hwm_ = 0;
}

}  // namespace iscope
