#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace iscope {

void EventQueue::schedule(double time_s, Handler fn) {
  ISCOPE_CHECK_ARG(time_s >= now_ - 1e-9,
                   "EventQueue: cannot schedule into the past");
  ISCOPE_CHECK_ARG(static_cast<bool>(fn), "EventQueue: null handler");
  heap_.push_back(Item{std::max(time_s, now_), seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  hwm_ = std::max(hwm_, heap_.size());
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Item item = std::move(heap_.back());
  heap_.pop_back();
  now_ = item.time;
  item.fn();
  return true;
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::size_t EventQueue::run_until(double until_s) {
  std::size_t n = 0;
  while (!heap_.empty() && heap_.front().time <= until_s) {
    step();
    ++n;
  }
  now_ = std::max(now_, until_s);
  return n;
}

std::size_t EventQueue::run_before(double t_limit, std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && !heap_.empty() && heap_.front().time < t_limit) {
    step();
    ++n;
  }
  return n;
}

double EventQueue::peek_time() const {
  ISCOPE_CHECK_ARG(!heap_.empty(), "EventQueue: peek on empty queue");
  return heap_.front().time;
}

void EventQueue::clear() {
  heap_.clear();
  now_ = 0.0;
  seq_ = 0;
  hwm_ = 0;
}

}  // namespace iscope
