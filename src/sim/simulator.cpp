#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/audit.hpp"
#include "sim/sharded.hpp"
#include "common/error.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/telemetry.hpp"

namespace iscope {

void SimConfig::validate() const {
  ISCOPE_CHECK_ARG(cooling_cop > 0.0, "SimConfig: COP must be > 0");
  ISCOPE_CHECK_ARG(epoch_s > 0.0, "SimConfig: epoch must be > 0");
  ISCOPE_CHECK_ARG(sample_interval_s > 0.0, "SimConfig: sample interval > 0");
  ISCOPE_CHECK_ARG(wind_abundance_headroom >= 1.0,
                   "SimConfig: headroom must be >= 1");
  ISCOPE_CHECK_ARG(efficient_pool_fraction > 0.0 &&
                       efficient_pool_fraction <= 1.0,
                   "SimConfig: pool fraction must be in (0,1]");
  ISCOPE_CHECK_ARG(deadline_patience_s >= 0.0,
                   "SimConfig: negative deadline patience");
  ISCOPE_CHECK_ARG(max_events > 0, "SimConfig: max_events must be > 0");
  battery.validate();
  faults.validate();
  topology.validate();
  thermal.validate();
  sleep.validate();
}

void (*DatacenterSim::rematch_probe)(bool) = nullptr;

DatacenterSim::DatacenterSim(const Knowledge* knowledge, PlacementRule rule,
                             const HybridSupply* supply,
                             const SimConfig& config,
                             const WindForecaster* forecaster)
    : knowledge_(knowledge),
      supply_(supply),
      forecaster_(forecaster),
      config_(config),
      policy_(knowledge, rule, config.seed, config.efficient_pool_fraction),
      matcher_(knowledge, CoolingModel(config.cooling_cop).overhead_factor()),
      cooling_(config.cooling_cop) {
  ISCOPE_CHECK_ARG(knowledge != nullptr, "DatacenterSim: null knowledge");
  ISCOPE_CHECK_ARG(supply != nullptr, "DatacenterSim: null supply");
  config_.validate();
  const FreqLevels& levels = knowledge_->cluster().levels();
  const double fmax = levels.freq_ghz.back();
  slowdown_ratio_.reserve(levels.freq_ghz.size());
  for (const double f : levels.freq_ghz)
    slowdown_ratio_.push_back(fmax / f - 1.0);

  // Resolve the fault plan: explicit override > built from the spec > the
  // empty plan (whose run takes no fault branch at all).
  if (config_.fault_plan != nullptr) {
    plan_ = config_.fault_plan.get();
  } else {
    if (config_.faults.any())
      plan_local_ = FaultPlan::build(config_.faults, config_.fault_seed,
                                     knowledge_->procs());
    plan_ = &plan_local_;
  }
  faults_active_ = !plan_->sim_empty();
  if (faults_active_)
    ISCOPE_CHECK_ARG(plan_->procs_referenced() <= knowledge_->procs(),
                     "DatacenterSim: fault plan references processors beyond "
                     "the cluster");
  if (plan_->forecast_error() > 0.0 && forecaster_ != nullptr) {
    noisy_forecaster_ = std::make_unique<NoisyForecaster>(
        forecaster_, plan_->forecast_error(), plan_->forecast_seed());
    forecaster_ = noisy_forecaster_.get();
  }
}

DatacenterSim::DatacenterSim(Knowledge* knowledge, PlacementRule rule,
                             const HybridSupply* supply,
                             const SimConfig& config,
                             const WindForecaster* forecaster)
    : DatacenterSim(static_cast<const Knowledge*>(knowledge), rule, supply,
                    config, forecaster) {
  knowledge_mut_ = knowledge;
}

double DatacenterSim::fmax_ghz() const {
  return knowledge_->cluster().levels().freq_ghz.back();
}

bool DatacenterSim::wind_abundant_given(Watts wind) const {
  if (wind.raw() <= 0.0) return false;
  return wind > demand_ * config_.wind_abundance_headroom;
}

double DatacenterSim::latest_start(const SimTask& t) const {
  return t.latest_start_s;
}

void DatacenterSim::link_running(std::size_t idx) {
  SimTask& t = tasks_[idx];
  t.run_prev = run_tail_;
  t.run_next = kNone;
  if (run_tail_ == kNone)
    run_head_ = idx;
  else
    tasks_[run_tail_].run_next = idx;
  run_tail_ = idx;
  ++run_count_;
}

void DatacenterSim::unlink_running(std::size_t idx) {
  SimTask& t = tasks_[idx];
  if (t.run_prev == kNone)
    run_head_ = t.run_next;
  else
    tasks_[t.run_prev].run_next = t.run_next;
  if (t.run_next == kNone)
    run_tail_ = t.run_prev;
  else
    tasks_[t.run_next].run_prev = t.run_prev;
  t.run_prev = kNone;
  t.run_next = kNone;
  --run_count_;
}

void DatacenterSim::idle_insert(std::size_t p) {
  idle_flags_[p] = 1;
  ++idle_count_;
  if (sleep_active_) sleep_on_idle(p);
  if (fast_placement_) {
    const std::size_t r = rank_of_proc_[p];
    idle_rank_bits_[r >> 6] |= std::uint64_t{1} << (r & 63);
  }
  if (maintain_idle_sorted_) {
    const auto it =
        std::lower_bound(idle_sorted_.begin(), idle_sorted_.end(), p);
    idle_sorted_.insert(it, p);
  }
  if (maintain_idle_by_busy_) {
    // Order by (busy time, id) -- the sort key of Fair's abundant-wind
    // partial_sort. Busy time only moves while a processor is running, so
    // entries keep their relative order for their whole idle stay.
    const double busy = busy_time_s_[p];
    const double* busy_all = busy_time_s_.data();
    const auto it = std::lower_bound(
        idle_by_busy_.begin(), idle_by_busy_.end(), p,
        [busy, busy_all](std::size_t a, std::size_t value) {
          if (busy_all[a] != busy) return busy_all[a] < busy;
          return a < value;
        });
    idle_by_busy_.insert(it, p);
  }
}

void DatacenterSim::idle_remove(std::size_t p) {
  ISCOPE_CHECK(idle_flags_[p] != 0, "idle_remove: processor not idle");
  idle_flags_[p] = 0;
  --idle_count_;
  if (sleep_active_) sleep_on_claim(p);
  if (fast_placement_) {
    const std::size_t r = rank_of_proc_[p];
    idle_rank_bits_[r >> 6] &= ~(std::uint64_t{1} << (r & 63));
  }
  if (maintain_idle_sorted_) {
    const auto it =
        std::lower_bound(idle_sorted_.begin(), idle_sorted_.end(), p);
    ISCOPE_CHECK(it != idle_sorted_.end() && *it == p,
                 "idle_remove: processor not idle");
    idle_sorted_.erase(it);
  }
  if (maintain_idle_by_busy_) {
    const double busy = busy_time_s_[p];
    const double* busy_all = busy_time_s_.data();
    auto it = std::lower_bound(
        idle_by_busy_.begin(), idle_by_busy_.end(), p,
        [busy, busy_all](std::size_t a, std::size_t value) {
          if (busy_all[a] != busy) return busy_all[a] < busy;
          return a < value;
        });
    ISCOPE_CHECK(it != idle_by_busy_.end() && *it == p,
                 "idle_remove: processor not in the busy-ordered list");
    idle_by_busy_.erase(it);
  }
}

void DatacenterSim::cols_remove(std::size_t idx) {
  if (config_.use_reference_matcher) return;
  SimTask& t = tasks_[idx];
  const std::size_t row = t.col;
  ISCOPE_CHECK(row != kNone && row < cols_.count && cols_.task[row] == idx,
               "cols_remove: stale column row");
  cols_.remove(row);
  t.col = kNone;
  for (std::size_t r = row; r < cols_.count; ++r) tasks_[cols_.task[r]].col = r;
  inc_.invalidate();
}

void DatacenterSim::fill_power_table(std::size_t idx) {
  const std::size_t levels = knowledge_->levels();
  const SimTask& t = tasks_[idx];
  double* row = power_table_.data() + idx * levels;
  for (std::size_t l = 0; l < levels; ++l) {
    // Same summation order as the matcher's original O(procs) loop, so the
    // cached value is bit-identical to what it used to recompute per call.
    Watts p;
    for (const std::size_t id : t.procs) p += knowledge_->power(id, l);
    row[l] = p.raw();
  }
}

void DatacenterSim::accrue_to_now() {
  const double now = queue_.now();
  const Seconds dt{now - last_accrual_s_};
  if (dt.raw() > 0.0) {
    if (extras_active_) {
      // Breakdown accumulators (already inside demand_, so the meter's
      // totals are untouched): CRAC draw and idle/sleep residency burn.
      cooling_joules_ += cooling_power_.raw() * dt.raw();
      idle_joules_ += std::max(0.0, idle_power_w_) * dt.raw();
    }
    if (!battery_.present()) {
      meter_.accrue(demand_, segment_wind_, dt);
    } else {
      // Wind first; surplus charges the battery; deficits discharge it
      // before the utility steps in. Wind is paid at absorption (so the
      // round-trip losses land on the wind bill).
      const Watts wind_used = std::min(demand_, segment_wind_);
      const Watts surplus = segment_wind_ - wind_used;
      const Watts deficit = demand_ - wind_used;
      const Watts charged = battery_.charge(surplus, dt);
      const Watts delivered = battery_.discharge(deficit, dt);
      EnergySplit step;
      step.wind = (wind_used + charged) * dt;
      // max() guards the 1-ulp case where the battery's efficiency
      // round-trip delivers epsilon more than requested.
      step.utility = std::max(Joules{}, (deficit - delivered) * dt);
      // Conservation at the meter boundary: what the facility demanded is
      // what wind + battery + utility jointly supplied.
      ISCOPE_AUDIT_CHECK(
          audit::close(
              (wind_used * dt + delivered * dt + step.utility).joules(),
              (demand_ * dt).joules()),
          "battery accrual must conserve demanded energy");
      meter_.add_split(step, std::max(Joules{}, (surplus - charged) * dt));
    }
  }
  last_accrual_s_ = now;
  segment_wind_ = supply_->wind_available(Seconds{now});
}

void DatacenterSim::rematch() {
  ISCOPE_SPAN_SIM("rematch", queue_.now());
  if (rematch_probe != nullptr) rematch_probe(true);
  accrue_to_now();
  const double now = queue_.now();
  ++rematch_count_;

  const bool columns = !config_.use_reference_matcher;

  // Power tables follow the Knowledge view; refresh them (and the derived
  // SoA rows) if it moved. New powers mean a new greedy trajectory, so the
  // incremental cache dies with the old generation.
  if (knowledge_->generation() != knowledge_gen_) {
    knowledge_gen_ = knowledge_->generation();
    const std::size_t levels = knowledge_->levels();
    for (std::size_t idx = run_head_; idx != kNone;
         idx = tasks_[idx].run_next) {
      fill_power_table(idx);
      if (columns)
        cols_.refresh_power(tasks_[idx].col, power_table_.data() + idx * levels);
    }
    if (columns) inc_.invalidate();
  }

  // Integrate progress of running tasks up to now at their current levels.
  for (std::size_t idx = run_head_; idx != kNone; idx = tasks_[idx].run_next) {
    SimTask& t = tasks_[idx];
    const double dt = now - t.last_update_s;
    if (dt > 0.0) {
      const double slowdown = level_slowdown(t);
      t.remaining_work_s = std::max(0.0, t.remaining_work_s - dt / slowdown);
    }
    t.last_update_s = now;
    if (columns) cols_.remaining[t.col] = t.remaining_work_s;
  }

  // accrue_to_now() above refreshed segment_wind_ at this exact instant;
  // reuse it rather than querying the supply a second time.
  const Watts wind = segment_wind_;

  MatchResult match;
  if (columns) {
    if (rush_mode_) {
      // A deadline-forced task is starving for processors: run everything
      // at the top level to free CPUs as soon as possible, whatever the
      // wind. Levels are forced off the cached trajectory, so it dies.
      const std::size_t top = cols_.levels - 1;
      Watts compute;
      for (std::size_t r = 0; r < cols_.count; ++r) {
        cols_.level[r] = top;
        compute += Watts{cols_.power[r * cols_.levels + top]};
      }
      match.compute = compute;
      match.demand = compute * matcher_.cooling_factor();
      inc_.invalidate();
    } else if (config_.incremental_rematch &&
               matcher_.match_incremental(cols_, wind, now, match_scratch_,
                                          inc_, match)) {
      // Only the wind budget moved: the cached greedy trajectory replayed
      // exactly (bit-identical to the full solve below).
    } else {
      match = matcher_.match_columns(cols_, wind, now, match_scratch_,
                                     config_.incremental_rematch ? &inc_
                                                                 : nullptr);
    }
  } else {
    // Reference path (tests): deep-copy the views and let the matcher
    // re-derive everything per call.
    views_.clear();
    for (std::size_t idx = run_head_; idx != kNone;
         idx = tasks_[idx].run_next) {
      const SimTask& t = tasks_[idx];
      ActiveTask v;
      v.remaining_work_s = t.remaining_work_s;
      v.deadline_s = t.spec.deadline_s;
      v.gamma = t.spec.gamma;
      v.procs = t.procs;
      views_.push_back(std::move(v));
    }
    if (rush_mode_) {
      const std::size_t top = knowledge_->levels() - 1;
      Watts compute;
      for (auto& v : views_) {
        v.level = top;
        compute += matcher_.task_power(v, top);
      }
      match.compute = compute;
      match.demand = compute * matcher_.cooling_factor();
    } else {
      match = matcher_.match_reference(views_, wind, now);
    }
  }
  // Active profiling scans draw power (and cooling) like any other load.
  last_compute_ = match.compute;
  if (extras_active_)
    recompute_demand();  // thermal COP billing and/or idle residency
  else
    demand_ = match.demand + reserved_power_ * matcher_.cooling_factor();

  // Apply levels; reschedule completion events where the level changed
  // (completion time is invariant when the level is unchanged).
  std::size_t k = 0;
  for (std::size_t idx = run_head_; idx != kNone;
       idx = tasks_[idx].run_next, ++k) {
    SimTask& t = tasks_[idx];
    const std::size_t new_level = columns ? cols_.level[t.col] : views_[k].level;
    const bool first_schedule = !t.completion_scheduled;
    if (new_level != t.level || first_schedule) {
      t.completion_scheduled = true;
      t.level = new_level;
      ++t.version;
      const double slowdown = level_slowdown(t);
      const double completion = now + t.remaining_work_s * slowdown;
      const std::uint64_t version = t.version;
      queue_.schedule(completion,
                      EventDesc{EventDesc::Kind::kCompletion, idx, version},
                      [this, idx, version] { on_completion(idx, version); });
    }
  }
  if (rematch_probe != nullptr) rematch_probe(false);
}

void DatacenterSim::on_arrival(std::size_t idx) {
  SimTask& t = tasks_[idx];
  t.state = TaskState::kWaiting;
  waiting_.push_back(idx);
  waiting_cpus_ += t.spec.cpus;
  log_event(TimelineKind::kArrival, t.spec.id,
            static_cast<double>(t.spec.cpus));
  // Wake up when deadline pressure forces this task onto whatever is idle.
  const double force_at =
      std::max(queue_.now(), latest_start(t) - config_.deadline_patience_s);
  queue_.schedule(force_at, EventDesc{EventDesc::Kind::kPass},
                  [this] { schedule_pass(); });
  schedule_pass();
}

void DatacenterSim::schedule_pass() {
  if (in_pass_ || waiting_.empty()) return;
  ISCOPE_SPAN_SIM("match", queue_.now());
  in_pass_ = true;

  // Fast path (default matcher, Effi/Fair): place straight off the
  // maintained idle flags / busy-ordered list -- no snapshot copy, no
  // per-task partial_sort. The legacy path (kRandom, whose draws consume
  // the RNG against the scratch vector's exact layout, and the reference
  // configuration) snapshots the sorted idle list as before.
  const bool fast = fast_placement_;
  if (!fast) idle_scratch_.assign(idle_sorted_.begin(), idle_sorted_.end());

  const double now = queue_.now();
  const bool has_wind = supply_->has_wind();
  // One supply lookup per pass: wind_available is a pure function of
  // `now`, which is fixed for the whole pass (abundance is still
  // re-evaluated per task as demand_ grows).
  const Watts wind_now = supply_->wind_available(Seconds{now});
  // Only Fair and Therm read the supply-side context fields (both defer
  // on wind scarcity); skipping them for Effi is observable-behavior-free
  // (forecast_mean is a pure function of its arguments -- see
  // NoisyForecaster -- and the legacy path keeps filling everything).
  const bool want_supply_ctx =
      !fast || policy_.rule() == PlacementRule::kFair ||
      policy_.rule() == PlacementRule::kTherm;

  PlacementContext ctx;
  ctx.busy_time_s = &busy_time_s_;
  ctx.now_s = now;
  ctx.has_wind = has_wind;
  ctx.queue_pressure = static_cast<double>(waiting_cpus_) /
                       static_cast<double>(proc_running_.size());

  // Two-pointer compaction: entries that stay waiting slide down over the
  // started ones, preserving arrival order with no per-start erase.
  //
  // Pool-rejection memo: when the policy's only non-forced rejection is
  // the efficient-pool check (see pool_failures_monotone), a rejection at
  // width w implies rejection at every width >= w for the rest of the pass
  // (the idle set only shrinks), so wider tasks skip the policy call --
  // and its rank scan of the idle set -- entirely.
  const bool memo_rejections = policy_.pool_failures_monotone(has_wind);
  std::size_t rejected_width = kNone;  // kNone == no rejection yet
  bool forced_blocked = false;
  std::size_t read = 0;
  std::size_t write = 0;
  while (read < waiting_.size()) {
    const std::size_t idx = waiting_[read];
    SimTask& t = tasks_[idx];
    const bool forced =
        now >= latest_start(t) - config_.deadline_patience_s;
    const std::size_t idle_avail = fast ? idle_count_ : idle_scratch_.size();
    if (t.spec.cpus > idle_avail) {
      // A forced task that cannot fit reserves the freed CPUs: stop the
      // pass so backfill cannot starve it, and rush the running work.
      if (forced) {
        forced_blocked = true;
        break;
      }
      waiting_[write++] = idx;
      ++read;
      continue;
    }
    if (memo_rejections && !forced && t.spec.cpus >= rejected_width) {
      waiting_[write++] = idx;  // known pool rejection; keep waiting
      ++read;
      continue;
    }
    ctx.forced = forced;
    ctx.slack_s = latest_start(t) - now;
    if (want_supply_ctx) {
      // Re-evaluate wind abundance as demand grows within the pass.
      ctx.wind_abundant = wind_abundant_given(wind_now);
      ctx.current_demand = demand_;
      ctx.forecast_mean =
          (forecaster_ != nullptr && ctx.slack_s > 0.0)
              ? forecaster_->forecast_mean(Seconds{now}, Seconds{ctx.slack_s})
              : Watts{std::numeric_limits<double>::infinity()};
    }
    if (fast) {
      if (!policy_.choose_soa(t.spec.cpus, idle_rank_bits_.data(),
                              idle_by_busy_, ctx, pick_scratch_)) {
        if (memo_rejections && !forced)
          rejected_width = std::min(rejected_width, t.spec.cpus);
        waiting_[write++] = idx;  // voluntarily waiting; backfill continues
        ++read;
        continue;
      }
      ++read;
      start_task(idx, pick_scratch_);  // start_task copies; scratch reused
      continue;
    }
    auto choice = policy_.choose(t.spec.cpus, idle_scratch_, ctx);
    if (!choice.has_value()) {
      if (memo_rejections && !forced)
        rejected_width = std::min(rejected_width, t.spec.cpus);
      waiting_[write++] = idx;  // voluntarily waiting; backfill may proceed
      ++read;
      continue;
    }
    // The chosen processors are the first n entries of idle_scratch_.
    idle_scratch_.erase(
        idle_scratch_.begin(),
        idle_scratch_.begin() + static_cast<std::ptrdiff_t>(t.spec.cpus));
    ++read;
    start_task(idx, std::move(*choice));
  }
  // On a forced-blocked break the unvisited tail (including the blocked
  // task itself) slides down unchanged.
  while (read < waiting_.size()) waiting_[write++] = waiting_[read++];
  waiting_.resize(write);
  in_pass_ = false;
  if (forced_blocked != rush_mode_) {
    rush_mode_ = forced_blocked;
    log_event(rush_mode_ ? TimelineKind::kRushEnter : TimelineKind::kRushLeave,
              -1, static_cast<double>(run_count_));
    rematch();  // enter/leave rush: re-decide all DVFS levels
  }
}

void DatacenterSim::start_task(std::size_t idx, std::vector<std::size_t> procs) {
  ISCOPE_SPAN_SIM("start_task", queue_.now());
  SimTask& t = tasks_[idx];
  ISCOPE_CHECK(t.state == TaskState::kWaiting, "start_task: bad state");
  const double now = queue_.now();
  t.procs = std::move(procs);
  // Claim the gang. With sleep management on, the deepest claimed
  // processor's C-state transition delays the whole gang's activation.
  double wake_s = 0.0;
  for (const std::size_t p : t.procs) {
    ISCOPE_CHECK(proc_running_[p] == kNone, "start_task: processor busy");
    proc_running_[p] = idx;
    if (sleep_active_ && sleep_state_[p] > 0)
      wake_s = std::max(wake_s,
                        config_.sleep.states[sleep_state_[p] - 1].wake_s);
    idle_remove(p);
  }
  waiting_cpus_ -= t.spec.cpus;
  if (wake_s > 0.0) {
    // Park the task until the slowest processor finishes waking. Demand
    // still moves now -- the gang left the idle pool -- but compute power
    // waits for activation.
    t.state = TaskState::kWaking;
    const std::uint64_t version = ++t.version;
    ++sleep_wakes_;
    log_event(TimelineKind::kTaskWaking, t.spec.id, wake_s);
    queue_.schedule(now + wake_s,
                    EventDesc{EventDesc::Kind::kWake, idx, version},
                    [this, idx, version] { on_wake(idx, version); });
    accrue_to_now();
    recompute_demand();
    return;
  }
  activate_task(idx);
}

void DatacenterSim::on_wake(std::size_t idx, std::uint64_t version) {
  const SimTask& t = tasks_[idx];
  if (t.state != TaskState::kWaking || t.version != version) return;  // stale
  activate_task(idx);
}

void DatacenterSim::activate_task(std::size_t idx) {
  SimTask& t = tasks_[idx];
  const double now = queue_.now();
  t.state = TaskState::kRunning;
  t.start_s = now;
  t.last_update_s = now;
  t.remaining_work_s = t.spec.runtime_s;
  // Deliberately NOT resetting t.version: a requeued task's cancelled
  // completion event is only stale while the version keeps moving forward.
  t.completion_scheduled = false;
  t.level = knowledge_->levels() - 1;
  // A requeued task already waited once; count only the first wait so the
  // mean keeps its submit->first-start meaning under injection.
  if (t.retries == 0) total_wait_s_ += now - t.spec.submit_s;
  log_event(TimelineKind::kStart, t.spec.id, now - t.spec.submit_s);
  if (faults_active_) {
    // Arm latent mis-profile fail-stops: the chip must run continuously at
    // its (unsafe) scan point for the plan's latency before it fail-stops.
    for (const std::size_t p : t.procs) {
      if (misprofile_armed_[p] == 0) continue;
      const std::uint64_t token = ++misprofile_token_[p];
      queue_.schedule(now + plan_->misprofile_latency_s(p),
                      EventDesc{EventDesc::Kind::kMisprofileTimer, p, token},
                      [this, p, token] { on_misprofile_timer(p, token); });
    }
  }
  fill_power_table(idx);
  link_running(idx);
  if (!config_.use_reference_matcher) {
    // Append the SoA row in running-list order (see matcher_columns.hpp)
    // and derive its slowdown/power/best_from blocks. A new row means a
    // new greedy trajectory, so the incremental cache dies here.
    t.col = cols_.append(idx, t.remaining_work_s, t.spec.deadline_s);
    cols_.fill_row(t.col, t.spec.gamma, slowdown_ratio_.data(),
                   power_table_.data() + idx * knowledge_->levels());
    inc_.invalidate();
  }
  rematch();
}

void DatacenterSim::on_completion(std::size_t idx, std::uint64_t version) {
  SimTask& t = tasks_[idx];
  if (t.state != TaskState::kRunning || t.version != version) return;  // stale

  const double now = queue_.now();
  t.state = TaskState::kDone;
  t.remaining_work_s = 0.0;
  ++done_count_;
  makespan_s_ = std::max(makespan_s_, now);
  log_event(TimelineKind::kCompletion, t.spec.id, now - t.start_s);
  if (now > t.spec.deadline_s + 1e-6) {
    ++miss_count_;
    // A miss of a task that had to restart is attributed to fault
    // recovery, not to the scheduling policy.
    if (t.retries > 0) ++fault_counters_.fault_deadline_misses;
    log_event(TimelineKind::kDeadlineMiss, t.spec.id,
              now - t.spec.deadline_s);
  }

  for (const std::size_t p : t.procs) {
    ISCOPE_CHECK(proc_running_[p] == idx, "completion: processor mismatch");
    proc_running_[p] = kNone;
    busy_time_s_[p] += now - t.start_s;
    if (faults_active_) ++misprofile_token_[p];  // stale any armed timer
    if (!reserved_[p]) idle_insert(p);
  }
  unlink_running(idx);
  cols_remove(idx);

  rematch();
  schedule_pass();
}

void DatacenterSim::begin_profiling_window(std::size_t window_idx) {
  const ProfilingWindow& window = profiling_[window_idx];
  // Isolate only processors that are idle right now: QoS comes first
  // (paper Sec. III-C), busy chips are skipped and left for a later pass.
  std::vector<std::size_t> taken;
  const std::size_t top = knowledge_->levels() - 1;
  for (const std::size_t p : window.proc_ids) {
    ISCOPE_CHECK_ARG(p < proc_running_.size(),
                     "profiling window: processor out of range");
    if (proc_running_[p] != kNone || reserved_[p] ||
        (faults_active_ && failed_[p] != 0)) {
      ++profiling_procs_skipped_;
      continue;
    }
    reserved_[p] = true;
    idle_remove(p);
    taken.push_back(p);
    // Scan load: the chip under test runs at the top level's stock point.
    // The cluster speaks global ids; `p` is view-local (identity for a
    // full view, shard-relative under a slice).
    reserved_power_ += knowledge_->cluster().power(
        knowledge_->global_proc(p), top,
        Volts{knowledge_->cluster().levels().vdd_nom[top]});
  }
  profiling_procs_scanned_ += taken.size();
  log_event(TimelineKind::kProfilingBegin, -1,
            static_cast<double>(taken.size()));
  if (!taken.empty()) {
    rematch();  // demand changed
    const double started = queue_.now();
    // Park the scan in a slot so the end event carries only the slot index
    // (a serializable descriptor, unlike the moved vector it used to own).
    const std::size_t slot = scans_.size();
    scans_.push_back(ActiveScan{std::move(taken), started, true});
    queue_.schedule(started + window.duration_s,
                    EventDesc{EventDesc::Kind::kProfilingEnd, slot},
                    [this, slot] { end_profiling_window(slot); });
  }
}

void DatacenterSim::end_profiling_window(std::size_t slot) {
  ActiveScan& scan = scans_[slot];
  const std::size_t top = knowledge_->levels() - 1;
  for (const std::size_t p : scan.procs) {
    reserved_[p] = false;
    if (proc_running_[p] == kNone && !(faults_active_ && failed_[p] != 0))
      idle_insert(p);
    reserved_power_ -= knowledge_->cluster().power(
        knowledge_->global_proc(p), top,
        Volts{knowledge_->cluster().levels().vdd_nom[top]});
    profiling_proc_seconds_ += queue_.now() - scan.started_s;
  }
  reserved_power_ = std::max(Watts{}, reserved_power_);
  log_event(TimelineKind::kProfilingEnd, -1,
            static_cast<double>(scan.procs.size()));
  scan.live = false;
  scan.procs.clear();
  rematch();
  schedule_pass();  // the freed processors may admit waiting tasks
}

void DatacenterSim::schedule_fault_event(std::size_t i) {
  if (i >= plan_->events().size()) return;
  const double at = plan_->events()[i].time_s;
  queue_.schedule(at, EventDesc{EventDesc::Kind::kFault, i},
                  [this, i] { on_fault_event(i); });
}

void DatacenterSim::on_fault_event(std::size_t i) {
  // The plan's crash/repair stream runs as one lazily-chained event, so an
  // all-but-infinite horizon costs nothing once the workload has drained.
  if (all_done()) return;
  const FaultEvent& e = plan_->events()[i];
  if (e.kind == FaultKind::kCrash)
    fail_proc(e.proc, /*misprofile=*/false);
  else
    repair_proc(e.proc);
  schedule_fault_event(i + 1);
}

void DatacenterSim::fail_proc(std::size_t p, bool misprofile) {
  if (failed_[p] != 0) return;  // double fault while already down
  failed_[p] = 1;
  ++fault_counters_.cpu_failures;
  if (misprofile) ++fault_counters_.misprofile_failures;
  knowledge_mut_->quarantine(p);
  log_event(TimelineKind::kCpuFail, -1, static_cast<double>(p));
  ++misprofile_token_[p];
  const std::size_t idx = proc_running_[p];
  if (idx != kNone) {
    requeue_task(idx);
    rematch();  // the victim's load vanished; re-decide DVFS levels
    schedule_pass();
  } else if (!reserved_[p]) {
    idle_remove(p);
    if (sleep_active_) {
      // No rematch follows on this branch, but the idle residency power
      // just changed; re-derive demand at this instant.
      accrue_to_now();
      recompute_demand();
    }
  }
}

void DatacenterSim::repair_proc(std::size_t p) {
  if (failed_[p] == 0) return;  // already repaired (overlapping faults)
  failed_[p] = 0;
  ++fault_counters_.cpu_repairs;
  knowledge_mut_->release(p);
  log_event(TimelineKind::kCpuRepair, -1, static_cast<double>(p));
  if (proc_running_[p] == kNone && !reserved_[p]) {
    idle_insert(p);
    if (sleep_active_) {
      // schedule_pass may start nothing; demand must still absorb the
      // repaired processor's idle residency now.
      accrue_to_now();
      recompute_demand();
    }
  }
  schedule_pass();  // restored capacity may admit waiting tasks
}

void DatacenterSim::requeue_task(std::size_t idx) {
  SimTask& t = tasks_[idx];
  // A gang still waking from a C-state can lose a processor too; it made
  // no progress, so only running victims charge lost seconds / busy time.
  const bool was_running = t.state == TaskState::kRunning;
  ISCOPE_CHECK(was_running || t.state == TaskState::kWaking,
               "requeue_task: bad state");
  const double now = queue_.now();
  // All progress on the gang is discarded; the task restarts from scratch.
  if (was_running)
    fault_counters_.lost_cpu_seconds +=
        static_cast<double>(t.spec.cpus) * (now - t.start_s);
  for (const std::size_t p : t.procs) {
    ISCOPE_CHECK(proc_running_[p] == idx, "requeue_task: processor mismatch");
    proc_running_[p] = kNone;
    if (was_running) busy_time_s_[p] += now - t.start_s;
    ++misprofile_token_[p];
    if (!reserved_[p] && failed_[p] == 0) idle_insert(p);
  }
  t.procs.clear();
  if (was_running) {
    unlink_running(idx);
    cols_remove(idx);
  }
  ++t.version;  // cancel the pending completion (or wake) event
  if (t.retries >= plan_->max_retries()) {
    t.state = TaskState::kFailed;
    ++failed_count_;
    ++fault_counters_.tasks_failed;
    makespan_s_ = std::max(makespan_s_, now);
    log_event(TimelineKind::kTaskAbandon, t.spec.id,
              static_cast<double>(t.retries));
    return;
  }
  ++t.retries;
  ++fault_counters_.task_requeues;
  t.state = TaskState::kWaiting;
  waiting_.push_back(idx);
  waiting_cpus_ += t.spec.cpus;
  log_event(TimelineKind::kTaskRequeue, t.spec.id,
            static_cast<double>(t.retries));
  // Same deadline-pressure wakeup an arrival gets (likely already due).
  const double force_at =
      std::max(now, latest_start(t) - config_.deadline_patience_s);
  queue_.schedule(force_at, EventDesc{EventDesc::Kind::kPass},
                  [this] { schedule_pass(); });
}

void DatacenterSim::on_misprofile_timer(std::size_t p, std::uint64_t token) {
  if (misprofile_token_[p] != token) return;  // occupancy ended; stale
  if (failed_[p] != 0 || proc_running_[p] == kNone) return;
  // The latent fault fires exactly once; repair re-profiles the chip.
  misprofile_armed_[p] = 0;
  fail_proc(p, /*misprofile=*/true);
  const double repair_at = queue_.now() + plan_->misprofile_repair_s(p);
  queue_.schedule(repair_at, EventDesc{EventDesc::Kind::kMisprofileRepair, p},
                  [this, p] { repair_proc(p); });
}

void DatacenterSim::sleep_on_idle(std::size_t p) {
  const SleepConfig& sc = config_.sleep;
  std::uint8_t depth = 0;
  if (sc.policy == SleepPolicy::kImmediate) {
    // One descent straight to the deepest state: the chip powers down the
    // moment it idles (maximum residency savings, maximum wake latency).
    depth = static_cast<std::uint8_t>(sc.states.size());
    ++sleeping_count_;
    ++sleep_enters_;
    log_event(TimelineKind::kSleepEnter, -1, static_cast<double>(depth));
  }
  sleep_state_[p] = depth;
  idle_power_w_ +=
      (depth == 0 ? sc.active_idle_frac : sc.states[depth - 1].idle_frac) *
      sleep_stock_w_[p];
  if (sc.policy == SleepPolicy::kTimeout) {
    const std::uint64_t token = sleep_token_[p];
    queue_.schedule(queue_.now() + sc.timeout_s,
                    EventDesc{EventDesc::Kind::kSleepEnter, p, token},
                    [this, p, token] { on_sleep_enter(p, token); });
  }
}

void DatacenterSim::sleep_on_claim(std::size_t p) {
  const SleepConfig& sc = config_.sleep;
  const std::uint8_t depth = sleep_state_[p];
  idle_power_w_ -=
      (depth == 0 ? sc.active_idle_frac : sc.states[depth - 1].idle_frac) *
      sleep_stock_w_[p];
  if (depth > 0) --sleeping_count_;
  ++sleep_token_[p];  // stale any pending descent from this idle stint
  // sleep_state_[p] deliberately survives the claim: start_task reads the
  // depth right after claiming to derive the gang's wake latency.
}

void DatacenterSim::on_sleep_enter(std::size_t p, std::uint64_t token) {
  if (sleep_token_[p] != token || idle_flags_[p] == 0) return;  // stale
  const SleepConfig& sc = config_.sleep;
  const std::uint8_t depth = sleep_state_[p];
  if (depth >= sc.states.size()) return;  // already deepest
  accrue_to_now();
  const double old_frac =
      depth == 0 ? sc.active_idle_frac : sc.states[depth - 1].idle_frac;
  idle_power_w_ += (sc.states[depth].idle_frac - old_frac) * sleep_stock_w_[p];
  sleep_state_[p] = static_cast<std::uint8_t>(depth + 1);
  if (depth == 0) ++sleeping_count_;
  ++sleep_enters_;
  log_event(TimelineKind::kSleepEnter, -1, static_cast<double>(depth + 1));
  recompute_demand();
  if (depth + std::size_t{1} < sc.states.size())
    queue_.schedule(queue_.now() + sc.timeout_s,
                    EventDesc{EventDesc::Kind::kSleepEnter, p, token},
                    [this, p, token] { on_sleep_enter(p, token); });
}

void DatacenterSim::recompute_demand() {
  // IT power: matched compute + active scans + idle/sleep residency. Only
  // ever called with thermal or sleep active; the off path keeps the
  // legacy Eq-2 composition in rematch() verbatim.
  const Watts it = last_compute_ + reserved_power_ +
                   Watts{std::max(0.0, idle_power_w_)};
  if (config_.thermal.enabled) {
    // CRAC billing at the operating COP the thermal epochs resolve against
    // the recirculation model (heat removed == IT heat dissipated).
    cooling_power_ = Watts{it.raw() / cop_now_};
  } else {
    // Sleep-only runs keep the paper's flat Eq-2 cooling overhead.
    cooling_power_ = it * (matcher_.cooling_factor() - 1.0);
  }
  demand_ = it + cooling_power_;
}

void DatacenterSim::schedule_thermal(double t) {
  thermal_chain_live_ = true;
  queue_.schedule(t, EventDesc{EventDesc::Kind::kThermal, 0, 0, t},
                  [this, t] { on_thermal(t); });
}

void DatacenterSim::on_thermal(double t) {
  accrue_to_now();
  if (thermal_external_) {
    // Sharded run: apply the solution the coordinator resolved at this
    // barrier over every shard's rack power (reconcile_wind's pattern).
    if (thermal_pending_) {
      cop_now_ = pending_cop_;
      supply_c_now_ = pending_supply_c_;
      peak_inlet_c_ = std::max(peak_inlet_c_, pending_peak_c_);
      thermal_pending_ = false;
    }
  } else {
    rack_w_scratch_.assign(thermal_model_->matrix().racks(), 0.0);
    collect_rack_power(rack_w_scratch_);
    const ThermalSolution sol =
        thermal_model_->solve(rack_w_scratch_, plan_->crac_factor(t));
    cop_now_ = sol.cop;
    supply_c_now_ = sol.supply_c;
    peak_inlet_c_ = std::max(peak_inlet_c_, sol.peak_inlet_c);
  }
  recompute_demand();
  if (!all_done())
    schedule_thermal(t + config_.epoch_s);
  else
    thermal_chain_live_ = false;
}

void DatacenterSim::collect_rack_power(std::vector<double>& rack_w) const {
  // One ascending-p pass. Per-rack sums are ordered by processor id and
  // racks never straddle shards, so any rack-aligned partition of the
  // facility produces bit-equal sums (the sharded coordinator relies on
  // this when it merges shard contributions).
  const std::size_t nprocs = knowledge_->procs();
  const std::size_t per_rack = config_.topology.cpus_per_rack;
  const std::size_t top = knowledge_->levels() - 1;
  for (std::size_t p = 0; p < nprocs; ++p) {
    double w = 0.0;
    const std::size_t idx = proc_running_[p];
    if (idx != kNone) {
      // Waking gangs draw nothing until activation.
      if (tasks_[idx].state == TaskState::kRunning)
        w = knowledge_->power(p, tasks_[idx].level).raw();
    } else if (reserved_[p]) {
      w = knowledge_->cluster()
              .power(knowledge_->global_proc(p), top,
                     Volts{knowledge_->cluster().levels().vdd_nom[top]})
              .raw();
    } else if (sleep_active_ && idle_flags_[p] != 0) {
      const std::uint8_t depth = sleep_state_[p];
      const double frac = depth == 0
                              ? config_.sleep.active_idle_frac
                              : config_.sleep.states[depth - 1].idle_frac;
      w = frac * sleep_stock_w_[p];
    }
    if (w != 0.0) rack_w[knowledge_->global_proc(p) / per_rack] += w;
  }
}

void DatacenterSim::push_thermal(double cop, double supply_c,
                                 double peak_inlet_c) {
  pending_cop_ = cop;
  pending_supply_c_ = supply_c;
  pending_peak_c_ = peak_inlet_c;
  thermal_pending_ = true;
}

void DatacenterSim::install_thermal_order(const RecirculationMatrix& matrix) {
  // The key is a pure function of the knowledge and the topology, so
  // every shard derives the same global order restricted to its slice.
  const std::size_t nprocs = knowledge_->procs();
  const std::size_t per_rack = config_.topology.cpus_per_rack;
  // The CRAC bill is governed by the *hottest* inlet (solve() subtracts
  // max_rise from the red line), and the matrix's diagonal dominates, so
  // packing work into any one rack -- even a low-heat-weight one --
  // concentrates rise and drags the supply colder. The min-max order is a
  // stripe: racks sorted by ascending heat weight, chips within a rack by
  // ascending believed efficiency (profiled where scanned, bin spec
  // otherwise), emitted round-robin one chip per rack. At partial
  // utilization that loads each rack's best silicon about evenly, keeping
  // the worst inlet -- and the cooling overhead -- near the facility
  // minimum while costing almost nothing on compute (chip quality is iid
  // across racks, so per-rack-best ~ globally-best at matching depth).
  std::vector<std::vector<std::size_t>> by_rack(matrix.racks());
  for (std::size_t p = 0; p < nprocs; ++p)
    by_rack[knowledge_->global_proc(p) / per_rack].push_back(p);
  for (std::vector<std::size_t>& rack : by_rack)
    std::sort(rack.begin(), rack.end(), [&](std::size_t a, std::size_t b) {
      const double ea = knowledge_->efficiency(a).raw();
      const double eb = knowledge_->efficiency(b).raw();
      if (ea != eb) return ea < eb;
      return a < b;  // ties fall back to processor id
    });
  std::vector<std::size_t> rack_ids;
  rack_ids.reserve(matrix.racks());
  for (std::size_t j = 0; j < matrix.racks(); ++j)
    if (!by_rack[j].empty()) rack_ids.push_back(j);
  std::sort(rack_ids.begin(), rack_ids.end(),
            [&](std::size_t a, std::size_t b) {
              if (matrix.heat_weight(a) != matrix.heat_weight(b))
                return matrix.heat_weight(a) < matrix.heat_weight(b);
              return a < b;  // ties fall back to rack id
            });
  std::vector<std::size_t> order;
  order.reserve(nprocs);
  for (std::size_t depth = 0; order.size() < nprocs; ++depth)
    for (const std::size_t j : rack_ids)
      if (depth < by_rack[j].size()) order.push_back(by_rack[j][depth]);
  policy_.override_order(std::move(order));
  therm_order_installed_ = true;
}

void DatacenterSim::schedule_epoch(double t) {
  epoch_chain_live_ = true;
  queue_.schedule(t, EventDesc{EventDesc::Kind::kEpoch, 0, 0, t},
                  [this, t] { on_epoch(t); });
}

void DatacenterSim::on_epoch(double t) {
  rematch();
  schedule_pass();  // wind regime change can unblock Fair/Effi waits
  // Telemetry rides the existing epoch event rather than scheduling its
  // own: the event count -- and therefore SimResult -- is identical with
  // telemetry on or off.
  if (telemetry::enabled()) telemetry_sample();
  if (!all_done())
    schedule_epoch(t + config_.epoch_s);
  else
    epoch_chain_live_ = false;
}

void DatacenterSim::schedule_sample(double t) {
  sample_chain_live_ = true;
  queue_.schedule(t, EventDesc{EventDesc::Kind::kSample, 0, 0, t},
                  [this, t] { on_sample(t); });
}

void DatacenterSim::on_sample(double t) {
  record_sample();
  if (!all_done())
    schedule_sample(t + config_.sample_interval_s);
  else
    sample_chain_live_ = false;
}

void DatacenterSim::log_event(TimelineKind kind, std::int64_t task_id,
                              double value) {
  if (!config_.record_timeline) return;
  timeline_.push_back(TimelineEvent{queue_.now(), kind, task_id, value});
}

PowerSample DatacenterSim::power_waterfall_now() const {
  // Same wind -> battery -> utility waterfall accrue_to_now() integrates,
  // evaluated at an instant (rate previews leave the battery untouched).
  PowerSample s;
  s.time = Seconds{queue_.now()};
  s.demand = demand_;
  s.wind_avail = supply_->wind_available(s.time);
  const Watts wind_used = std::min(s.demand, s.wind_avail);
  if (!battery_.present()) {
    s.wind = wind_used;
    s.utility = s.demand - wind_used;
  } else {
    const Watts charged = battery_.charge_preview(s.wind_avail - wind_used);
    const Watts delivered = battery_.discharge_preview(s.demand - wind_used);
    s.wind = wind_used + charged;
    s.battery = delivered;
    s.utility = std::max(Watts{}, s.demand - wind_used - delivered);
  }
  return s;
}

void DatacenterSim::record_sample() {
  meter_.record_sample(power_waterfall_now());
}

void DatacenterSim::telemetry_sample() {
  const PowerSample p = power_waterfall_now();
  telemetry::SampleRow row;
  row.label = config_.telemetry_label.empty() ? "sim" : config_.telemetry_label;
  row.time_s = queue_.now();
  row.demand_w = p.demand.raw();
  row.wind_avail_w = p.wind_avail.raw();
  row.wind_w = p.wind.raw();
  row.battery_w = p.battery.raw();
  row.utility_w = p.utility.raw();
  row.queue_depth = queue_.pending();
  row.waiting_tasks = waiting_.size();
  row.running_tasks = run_count_;
  row.idle_procs = idle_count_;
  telemetry::SampleLog::global().append(row);

  static telemetry::GaugeFamily& depth_family =
      telemetry::Registry::global().gauge(
          "iscope_sim_event_queue_depth",
          "Pending simulator events at the latest sample", {"run"});
  depth_family.with({row.label}).set(static_cast<double>(row.queue_depth));

  // The supply-side waterfall as live gauges (latest sample wins): where
  // the facility's power is coming from right now.
  static telemetry::GaugeFamily& power_family =
      telemetry::Registry::global().gauge(
          "iscope_power_watts",
          "Power waterfall at the latest sample, by source",
          {"run", "source"});
  power_family.with({row.label, "demand"}).set(row.demand_w);
  power_family.with({row.label, "wind_avail"}).set(row.wind_avail_w);
  power_family.with({row.label, "wind"}).set(row.wind_w);
  power_family.with({row.label, "battery"}).set(row.battery_w);
  power_family.with({row.label, "utility"}).set(row.utility_w);

  // Thermal/sleep gauges only exist when the subsystems are on, so a
  // default run's telemetry output is byte-identical to the pre-thermal
  // tree's.
  if (config_.thermal.enabled) {
    static telemetry::GaugeFamily& thermal_family =
        telemetry::Registry::global().gauge(
            "iscope_thermal", "Thermal model state at the latest sample",
            {"run", "field"});
    thermal_family.with({row.label, "supply_c"}).set(supply_c_now_);
    thermal_family.with({row.label, "cop"}).set(cop_now_);
    thermal_family.with({row.label, "cooling_w"}).set(cooling_power_.raw());
    thermal_family.with({row.label, "peak_inlet_c"}).set(peak_inlet_c_);
  }
  if (sleep_active_) {
    static telemetry::GaugeFamily& sleep_family =
        telemetry::Registry::global().gauge(
            "iscope_sleeping_procs",
            "Processors in a C-state deeper than active idle", {"run"});
    sleep_family.with({row.label}).set(static_cast<double>(sleeping_count_));
  }
}

void DatacenterSim::publish_run_telemetry(std::size_t events) {
  telemetry::Registry& reg = telemetry::Registry::global();
  const std::string label =
      config_.telemetry_label.empty() ? "sim" : config_.telemetry_label;
  const std::vector<std::string> labels = {label};
  // Parallel sweeps finish runs on pool workers concurrently, and runs
  // sharing a label share cells: pay for the real RMW.
  static telemetry::CounterFamily& events_family = reg.counter(
      "iscope_sim_events_total", "Simulator events processed", {"run"});
  events_family.with(labels).inc_concurrent(events);
  static telemetry::CounterFamily& rematch_family = reg.counter(
      "iscope_sim_rematches_total", "DVFS rematch passes", {"run"});
  rematch_family.with(labels).inc_concurrent(rematch_count_);
  static telemetry::CounterFamily& completed_family = reg.counter(
      "iscope_sim_tasks_completed_total", "Tasks run to completion",
      {"run"});
  completed_family.with(labels).inc_concurrent(done_count_);
  static telemetry::CounterFamily& miss_family = reg.counter(
      "iscope_sim_deadline_misses_total", "Completions past the deadline",
      {"run"});
  miss_family.with(labels).inc_concurrent(miss_count_);
  static telemetry::CounterFamily& requeue_family = reg.counter(
      "iscope_sim_task_requeues_total",
      "Task restarts forced by injected faults", {"run"});
  requeue_family.with(labels).inc_concurrent(fault_counters_.task_requeues);
  static telemetry::CounterFamily& fault_family = reg.counter(
      "iscope_sim_cpu_failures_total",
      "Processor fail-stops (crashes + mis-profiles)", {"run"});
  fault_family.with(labels).inc_concurrent(fault_counters_.cpu_failures);
  static telemetry::GaugeFamily& peak_family = reg.gauge(
      "iscope_sim_event_queue_peak",
      "Event-queue high-water mark over the run(s)", {"run"});
  peak_family.with(labels).set_max_concurrent(
      static_cast<double>(queue_.high_water()));
  static telemetry::GaugeFamily& battery_family = reg.gauge(
      "iscope_battery_delivered_joules",
      "Battery energy delivered to the facility", {"run"});
  battery_family.with(labels).add_concurrent(battery_.delivered().raw());
  static telemetry::GaugeFamily& losses_family = reg.gauge(
      "iscope_battery_losses_joules", "Battery round-trip losses", {"run"});
  losses_family.with(labels).add_concurrent(battery_.losses().raw());
}

SimResult DatacenterSim::run(std::vector<Task> tasks) {
  return run(std::move(tasks), {});
}

SimResult DatacenterSim::run(std::vector<Task> tasks,
                             const std::vector<ProfilingWindow>& profiling) {
  // One unbounded resumable slice: run() is now a client of the same
  // prepare/advance/finish API the sharded coordinator and the service
  // daemon drive, so chunked execution has no second code path to drift
  // from.
  prepare(std::move(tasks), profiling);
  advance_before(std::numeric_limits<double>::infinity());
  return finish();
}

void DatacenterSim::prepare(std::vector<Task> tasks,
                            const std::vector<ProfilingWindow>& profiling) {
  validate_tasks(tasks);
  const std::size_t nprocs = knowledge_->procs();
  for (const Task& t : tasks)
    ISCOPE_CHECK_ARG(t.cpus <= nprocs,
                     "DatacenterSim: task wider than the cluster");
  sort_by_submit(tasks);

  // Thermal/sleep staging. The model is built once (flat runs only; a
  // shard's thermal_external_ flag is set by the coordinator before
  // prepare, and the coordinator owns the facility-wide model). ScanTherm
  // installs its recirculation-aware order before the rank tables below
  // are derived from the policy.
  sleep_active_ = config_.sleep.enabled();
  extras_active_ = config_.thermal.enabled || sleep_active_;
  if (config_.thermal.enabled && !thermal_external_ &&
      thermal_model_ == nullptr) {
    const std::size_t per_rack = config_.topology.cpus_per_rack;
    const std::size_t racks = (nprocs + per_rack - 1) / per_rack;
    thermal_model_ = std::make_unique<ThermalModel>(config_.thermal,
                                                    config_.topology, racks);
  }
  if (policy_.rule() == PlacementRule::kTherm && config_.thermal.enabled &&
      !therm_order_installed_ && thermal_model_ != nullptr)
    install_thermal_order(thermal_model_->matrix());

  // Reset state. clear() (not reassignment) keeps warmed-up capacities, so
  // a reused simulator reaches steady state with no further allocations.
  queue_.clear();
  queue_.reserve(tasks.size() + profiling.size() + 8);
  meter_.reset();
  battery_ = BatteryBank(config_.battery);
  tasks_.clear();
  tasks_.reserve(tasks.size());
  const double fmax = fmax_ghz();
  for (Task& t : tasks) {
    SimTask st;
    st.spec = std::move(t);
    // Cached once: latest_start is a pure function of the immutable spec
    // (the hot scheduling pass reads it per waiting task).
    st.latest_start_s = st.spec.latest_start_s(fmax, fmax);
    tasks_.push_back(std::move(st));
  }
  waiting_.clear();
  waiting_cpus_ = 0;
  proc_running_.assign(nprocs, kNone);
  busy_time_s_.assign(nprocs, 0.0);
  // Idle bookkeeping: flags + count always; the ordered lists only where
  // a consumer needs them (see the member comments).
  fast_placement_ = !config_.use_reference_matcher &&
                    policy_.rule() != PlacementRule::kRandom;
  maintain_idle_sorted_ = !fast_placement_;
  maintain_idle_by_busy_ =
      fast_placement_ && policy_.rule() == PlacementRule::kFair;
  idle_flags_.assign(nprocs, 1);
  idle_count_ = nprocs;
  if (maintain_idle_sorted_) {
    idle_sorted_.resize(nprocs);
    for (std::size_t p = 0; p < nprocs; ++p) idle_sorted_[p] = p;
  } else {
    idle_sorted_.clear();
  }
  if (maintain_idle_by_busy_) {
    // All busy times are zero, so (busy, id) order is id order.
    idle_by_busy_.resize(nprocs);
    for (std::size_t p = 0; p < nprocs; ++p) idle_by_busy_[p] = p;
  } else {
    idle_by_busy_.clear();
  }
  if (fast_placement_) {
    // Every processor starts idle: all nprocs rank bits set, the tail of
    // the last word clear (choose_soa trusts unset bits past the end).
    rank_of_proc_.resize(nprocs);
    for (std::size_t p = 0; p < nprocs; ++p)
      rank_of_proc_[p] = policy_.efficiency_rank(p);
    const std::size_t words = (nprocs + 63) / 64;
    idle_rank_bits_.assign(words, ~std::uint64_t{0});
    if (nprocs % 64 != 0)
      idle_rank_bits_.back() = (std::uint64_t{1} << (nprocs % 64)) - 1;
  } else {
    idle_rank_bits_.clear();
    rank_of_proc_.clear();
  }
  pick_scratch_.clear();
  pick_scratch_.reserve(nprocs);
  run_head_ = kNone;
  run_tail_ = kNone;
  run_count_ = 0;
  // At most nprocs tasks run at once (every task needs >= 1 CPU), so these
  // reservations are the true high-water marks.
  power_table_.assign(tasks_.size() * knowledge_->levels(), 0.0);
  knowledge_gen_ = knowledge_->generation();
  views_.clear();
  views_.reserve(nprocs);
  match_scratch_.floor.reserve(nprocs);
  match_scratch_.heap.reserve(nprocs);
  // SoA columns + incremental cache: reserved to their high-water marks
  // (at most nprocs rows; the trajectory log can hold every task stepping
  // through every level), so steady-state rematches stay allocation-free.
  cols_.reset(knowledge_->levels(), nprocs);
  inc_.invalidate();
  inc_.log.reserve(nprocs * knowledge_->levels());
  inc_.heap.reserve(nprocs);
  demand_ = Watts{};
  last_accrual_s_ = 0.0;
  segment_wind_ = supply_->wind_available(Seconds{});
  done_count_ = 0;
  events_run_ = 0;
  rematch_count_ = 0;
  total_wait_s_ = 0.0;
  miss_count_ = 0;
  makespan_s_ = 0.0;
  in_pass_ = false;
  rush_mode_ = false;
  timeline_.clear();
  reserved_.assign(nprocs, false);
  reserved_power_ = Watts{};
  profiling_proc_seconds_ = 0.0;
  profiling_procs_scanned_ = 0;
  profiling_procs_skipped_ = 0;
  profiling_ = profiling;
  scans_.clear();
  epoch_chain_live_ = false;
  sample_chain_live_ = false;
  failed_.assign(nprocs, 0);
  misprofile_token_.assign(nprocs, 0);
  misprofile_armed_.assign(nprocs, 0);
  failed_count_ = 0;
  fault_counters_ = FaultCounters{};
  if (faults_active_) {
    ISCOPE_CHECK_ARG(knowledge_mut_ != nullptr,
                     "DatacenterSim: a fault plan with CPU faults needs the "
                     "mutable-Knowledge constructor (quarantine)");
    knowledge_mut_->clear_quarantine();
    knowledge_gen_ = knowledge_->generation();
    // A latent mis-profile only bites a chip actually running at its own
    // scanned point; under the Bin view the plan's mis-profiles are inert.
    for (std::size_t p = 0; p < nprocs; ++p)
      misprofile_armed_[p] = plan_->misprofiled(p) && knowledge_->scanned(p);
    schedule_fault_event(0);
  }

  // Thermal & sleep state. cop/supply start at the idle-facility point
  // (no rack rise => the CRAC runs at its warmest, most efficient supply).
  cop_now_ = crac_cop(config_.thermal.max_supply_c);
  supply_c_now_ = config_.thermal.max_supply_c;
  peak_inlet_c_ = 0.0;
  thermal_pending_ = false;
  pending_cop_ = 0.0;
  pending_supply_c_ = 0.0;
  pending_peak_c_ = 0.0;
  last_compute_ = Watts{};
  cooling_power_ = Watts{};
  cooling_joules_ = 0.0;
  idle_joules_ = 0.0;
  thermal_chain_live_ = false;
  sleep_state_.assign(nprocs, 0);
  sleep_token_.assign(nprocs, 0);
  idle_power_w_ = 0.0;
  sleeping_count_ = 0;
  sleep_enters_ = 0;
  sleep_wakes_ = 0;
  if (sleep_active_) {
    const std::size_t top = knowledge_->levels() - 1;
    sleep_stock_w_.resize(nprocs);
    for (std::size_t p = 0; p < nprocs; ++p)
      sleep_stock_w_[p] =
          knowledge_->cluster()
              .power(knowledge_->global_proc(p), top,
                     Volts{knowledge_->cluster().levels().vdd_nom[top]})
              .raw();
    // The whole facility starts idle: same entry path as a runtime idle
    // insert (timeout descents get scheduled, immediate goes deep now).
    for (std::size_t p = 0; p < nprocs; ++p) sleep_on_idle(p);
  }
  if (extras_active_) recompute_demand();

  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const double at = tasks_[i].spec.submit_s;
    queue_.schedule(at, EventDesc{EventDesc::Kind::kArrival, i},
                    [this, i] { on_arrival(i); });
  }
  for (std::size_t wi = 0; wi < profiling_.size(); ++wi) {
    const ProfilingWindow& w = profiling_[wi];
    ISCOPE_CHECK_ARG(w.start_s >= 0.0 && w.duration_s > 0.0,
                     "profiling window: bad timing");
    queue_.schedule(w.start_s, EventDesc{EventDesc::Kind::kProfilingBegin, wi},
                    [this, wi] { begin_profiling_window(wi); });
  }
  if (!tasks_.empty() || !profiling_.empty()) {
    schedule_epoch(0.0);
    if (config_.record_trace) schedule_sample(0.0);
    if (config_.thermal.enabled) schedule_thermal(0.0);
  }
}

std::size_t DatacenterSim::admit(Task task) {
  const std::size_t nprocs = knowledge_->procs();
  ISCOPE_CHECK_ARG(task.cpus >= 1 && task.cpus <= nprocs,
                   "DatacenterSim: admitted task width does not fit the "
                   "cluster");
  ISCOPE_CHECK_ARG(task.runtime_s > 0.0,
                   "DatacenterSim: admitted task needs a positive runtime");
  ISCOPE_CHECK_ARG(task.deadline_s > task.submit_s,
                   "DatacenterSim: admitted task deadline must follow submit");
  ISCOPE_CHECK_ARG(task.gamma >= 0.0 && task.gamma <= 1.0,
                   "DatacenterSim: admitted task gamma must be in [0,1]");
  ISCOPE_CHECK_ARG(task.submit_s >= queue_.now(),
                   "DatacenterSim: admission behind the simulation clock");
  const std::size_t i = tasks_.size();
  const double fmax = fmax_ghz();
  SimTask st;
  st.spec = std::move(task);
  st.latest_start_s = st.spec.latest_start_s(fmax, fmax);
  tasks_.push_back(std::move(st));
  // Grow the per-task power table; the new row is filled at task start.
  power_table_.resize(tasks_.size() * knowledge_->levels(), 0.0);
  queue_.schedule(tasks_[i].spec.submit_s, EventDesc{EventDesc::Kind::kArrival, i},
                  [this, i] { on_arrival(i); });
  // A drained run stopped the self-rechaining epoch/sample events; restart
  // them at the next boundary. (From a freshly-prepared empty simulation
  // this schedules the chains from t = 0, exactly where prepare() with a
  // non-empty trace would have -- the batch-equivalence case. After a
  // mid-run drain gap the restarted chain skips the idle epochs, which a
  // batch run would have executed: deterministic, but only batch-identical
  // when the stream keeps the simulator busy.)
  if (!epoch_chain_live_)
    schedule_epoch(std::ceil(queue_.now() / config_.epoch_s) *
                   config_.epoch_s);
  if (config_.record_trace && !sample_chain_live_)
    schedule_sample(std::ceil(queue_.now() / config_.sample_interval_s) *
                    config_.sample_interval_s);
  if (config_.thermal.enabled && !thermal_chain_live_)
    schedule_thermal(std::ceil(queue_.now() / config_.epoch_s) *
                     config_.epoch_s);
  return i;
}

std::size_t DatacenterSim::step_until(double t_limit) {
  const std::size_t n =
      queue_.run_until(t_limit, config_.max_events - events_run_);
  events_run_ += n;
  if (events_run_ >= config_.max_events)
    ISCOPE_CHECK(all_done(), "DatacenterSim: event budget exhausted before "
                             "all tasks completed");
  return n;
}

DecisionSnapshot DatacenterSim::decision_snapshot() const {
  DecisionSnapshot s;
  s.now_s = queue_.now();
  s.demand = demand_;
  s.tasks_admitted = tasks_.size();
  s.tasks_completed = done_count_;
  s.tasks_failed = failed_count_;
  s.waiting = waiting_.size();
  s.running = run_count_;
  s.idle_procs = idle_count_;
  s.events_processed = events_run_;
  s.rematches = rematch_count_;
  s.rush_mode = rush_mode_;
  return s;
}

std::size_t DatacenterSim::advance_before(double t_limit) {
  const std::size_t n =
      queue_.run_before(t_limit, config_.max_events - events_run_);
  events_run_ += n;
  // Legacy run() stops at max_events and fails the all-done check; chunked
  // execution must fail here, or a drained budget would spin the
  // coordinator's barrier loop forever.
  if (events_run_ >= config_.max_events)
    ISCOPE_CHECK(all_done(), "DatacenterSim: event budget exhausted before "
                             "all tasks completed");
  return n;
}

SimResult DatacenterSim::finish() {
  const std::size_t events = events_run_;
  ISCOPE_CHECK(all_done(), "DatacenterSim: event budget exhausted before "
                           "all tasks completed");
  accrue_to_now();
  if (telemetry::enabled()) {
    telemetry_sample();  // closing sampler row at the end-of-run state
    publish_run_telemetry(events);
  }

  SimResult result;
  result.energy = meter_.total();
  result.cost = config_.prices.cost(result.energy);
  result.wind_curtailed = meter_.wind_curtailed();
  result.battery_delivered = battery_.delivered();
  result.battery_losses = battery_.losses();
  result.tasks_completed = done_count_;
  result.deadline_misses = miss_count_;
  result.mean_wait = Seconds{
      tasks_.empty() ? 0.0
                     : total_wait_s_ / static_cast<double>(tasks_.size())};
  result.makespan = Seconds{makespan_s_};
  result.busy_time_s = busy_time_s_;
  result.finalize_busy_stats();
  result.trace = meter_.trace();
  result.timeline = timeline_;
  result.profiling_procs_scanned = profiling_procs_scanned_;
  result.profiling_procs_skipped = profiling_procs_skipped_;
  result.profiling_proc_seconds = profiling_proc_seconds_;
  result.faults = fault_counters_;
  result.cooling_energy = Joules{cooling_joules_};
  result.idle_energy = Joules{idle_joules_};
  result.peak_inlet_c = peak_inlet_c_;
  result.sleep_enters = sleep_enters_;
  result.sleep_wakes = sleep_wakes_;
  result.dvfs_rematch_count = rematch_count_;
  result.events_processed = events;
  return result;
}

SimResult run_scheme(const Cluster& cluster, Scheme scheme,
                     const ProfileDb* db, const HybridSupply& supply,
                     const std::vector<Task>& tasks, const SimConfig& config) {
  if (scheme_uses_scan(scheme))
    ISCOPE_CHECK_ARG(db != nullptr, "run_scheme: Scan scheme needs a ProfileDb");
  // Default the run's telemetry tag to the scheme name so snapshots and
  // sampler rows separate the five schemes out of the box.
  SimConfig tagged = config;
  if (tagged.telemetry_label.empty()) tagged.telemetry_label = scheme_name(scheme);
  // Scheme-level feature requests: ScanTherm forces the thermal model on;
  // the *Sleep variants enable C-state management (timeout policy unless
  // the caller already picked one).
  {
    const SchemeInfo& info = SchemeRegistry::global().info(scheme);
    if (info.thermal) tagged.thermal.enabled = true;
    if (info.sleep && tagged.sleep.policy == SleepPolicy::kNone)
      tagged.sleep.policy = SleepPolicy::kTimeout;
  }
  SimResult result;
  if (tagged.topology.shards > 1) {
    // 100k+-CPU path: rack-partitioned shards with per-shard event loops
    // under epoch-barrier wind reconciliation (sim/sharded.hpp).
    ShardedSim sim(cluster, scheme, db, supply, tagged);
    result = sim.run(tasks);
  } else {
    // Non-const so fault plans can quarantine failed processors; without
    // faults the view is never mutated.
    Knowledge knowledge(&cluster, scheme_knowledge(scheme),
                        scheme_uses_scan(scheme) ? db : nullptr);
    DatacenterSim sim(&knowledge, scheme_rule(scheme), &supply, tagged);
    result = sim.run(tasks);
  }
  if (telemetry::enabled()) {
    // Per-scheme utilization spread (paper Fig. 6): how evenly the scheme
    // loaded the cluster.
    static telemetry::GaugeFamily& variance_family =
        telemetry::Registry::global().gauge(
            "iscope_sim_busy_variance_h2",
            "Variance of per-processor busy hours", {"run"});
    variance_family.with({tagged.telemetry_label})
        .set(result.busy_variance_h2);
  }
  return result;
}

}  // namespace iscope
