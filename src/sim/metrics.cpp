#include "sim/metrics.hpp"

#include "common/stats.hpp"
#include "common/units.hpp"

namespace iscope {

void SimResult::finalize_busy_stats() {
  if (busy_time_s.empty()) {
    busy_variance_h2 = 0.0;
    procs_used_fraction = 0.0;
    return;
  }
  RunningStats stats;
  std::size_t used = 0;
  for (const double b : busy_time_s) {
    stats.add(b / units::kSecondsPerHour);
    if (b > 0.0) ++used;
  }
  busy_variance_h2 = stats.variance();
  procs_used_fraction =
      static_cast<double>(used) / static_cast<double>(busy_time_s.size());
}

}  // namespace iscope
