// Sharded datacenter simulation: per-shard event loops under an
// epoch-barrier supply reconciliation (the 100k+-CPU path).
//
// The facility is partitioned along its rack topology (hardware/
// topology.hpp) into shards. Each shard is a complete DatacenterSim over
// its slice of processors: its own EventQueue, Knowledge view, matcher
// scratch, intrusive running list, battery slice and energy meter. Shards
// simulate independently between supply epochs; at every barrier the
// coordinator reconciles their power demands against the global wind
// budget (energy/reconcile.hpp) and re-sets each shard's supply fraction
// for the next epoch. Shard advances between barriers fan out over a
// ThreadPool when SimConfig::shard_workers allows.
//
// Determinism contract (tests/test_shard.cpp):
//  * a 1-shard ShardedSim is bit-identical to DatacenterSim::run() --
//    full Knowledge slice, supply fraction pinned to exactly 1.0, and
//    chunked event processing that pops the heap in the same order one
//    uninterrupted drain would;
//  * an N-shard run is a pure function of (inputs, seed): the reconciler
//    runs single-threaded in fixed shard order, per-shard RNG streams are
//    forked deterministically, and the aggregation sums per-shard results
//    in fixed shard order -- so results are independent of shard_workers.
#pragma once

#include <memory>
#include <vector>

#include "energy/hybrid_supply.hpp"
#include "hardware/topology.hpp"
#include "profiling/opportunistic.hpp"
#include "sched/scheme.hpp"
#include "sim/simulator.hpp"

namespace iscope {

/// Deterministic task partition: tasks in submit order greedily go to the
/// least-loaded shard (by assigned CPU-seconds relative to slice capacity)
/// among those whose slice fits the task's width; ties pick the lowest
/// shard index. Throws when a task is wider than every shard. With one
/// shard this is the identity (plus the submit sort every run performs).
std::vector<std::vector<Task>> partition_tasks(const std::vector<Task>& tasks,
                                               const Topology& topology);

/// Split global-id profiling windows into per-shard windows with
/// slice-local processor ids. Windows that touch no processor of a shard
/// are dropped for that shard.
std::vector<std::vector<ProfilingWindow>> partition_windows(
    const std::vector<ProfilingWindow>& profiling, const Topology& topology);

class ThreadPool;
struct CheckpointAccess;

class ShardedSim {
 public:
  /// Mirrors run_scheme(): builds a Knowledge slice per shard for
  /// `scheme`. `config.topology` fixes the partition; `db` is required for
  /// Scan schemes. All references are non-owning and must outlive the
  /// simulator.
  ShardedSim(const Cluster& cluster, Scheme scheme, const ProfileDb* db,
             const HybridSupply& supply, const SimConfig& config);
  ~ShardedSim();

  /// Run the trace to completion and return the aggregated metrics.
  /// Equivalent to prepare() + advance_round() until drained + collect().
  SimResult run(const std::vector<Task>& tasks,
                const std::vector<ProfilingWindow>& profiling = {});

  /// --- resumable round API (service-mode checkpointing) ------------------
  /// Partition the trace, stage every shard, rewind the barrier to t = 0.
  void prepare(const std::vector<Task>& tasks,
               const std::vector<ProfilingWindow>& profiling = {});
  /// One epoch-barrier round: reconcile the global wind budget at the
  /// current barrier (fixed shard order, single-threaded), then advance
  /// every shard through events strictly before the next barrier. Returns
  /// the number of events run across shards.
  std::size_t advance_round();
  /// True when every shard's event queue drained.
  bool drained() const;
  /// The barrier the next advance_round() reconciles at.
  double barrier_s() const { return barrier_; }
  /// Finish every shard (fixed order) and aggregate. Requires drained().
  SimResult collect();

  const Topology& topology() const { return topology_; }

 private:
  friend struct CheckpointAccess;

  struct Shard {
    std::unique_ptr<Knowledge> knowledge;
    std::unique_ptr<HybridSupply> supply;  ///< fraction re-set per epoch
    SimConfig config;
    std::unique_ptr<DatacenterSim> sim;
    std::size_t tasks_assigned = 0;
  };

  SimResult aggregate(std::vector<SimResult> results) const;
  /// Lazily build the worker pool the round advances fan out over.
  void ensure_pool();

  const Cluster* cluster_;
  const HybridSupply* global_supply_;
  SimConfig config_;
  Topology topology_;
  std::vector<double> capacity_share_;  ///< slice size / facility size
  std::vector<Shard> shards_;
  std::unique_ptr<ThreadPool> pool_;    ///< null when running serially
  double barrier_ = 0.0;                ///< next reconciliation instant
  /// Facility-wide thermal model (built only when config.thermal.enabled):
  /// the coordinator resolves it once per barrier over all shards' rack
  /// power and pushes the solution into each shard, whose own kThermal
  /// event applies it -- reconcile_wind's pattern, so the result is
  /// independent of the shard/worker partition.
  std::unique_ptr<ThermalModel> thermal_model_;
  /// The facility-wide fault plan (kept for its CRAC derate window, which
  /// is a coordinator-level input: the shards' sliced plans only carry
  /// processor faults).
  std::shared_ptr<const FaultPlan> global_plan_;
  std::vector<double> rack_w_;          ///< per-barrier collection scratch
};

}  // namespace iscope
