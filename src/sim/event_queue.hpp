// Discrete-event simulation engine.
//
// A minimal, deterministic DES core: events are (time, handler) pairs; ties
// run in insertion order (a monotone sequence number breaks them), which
// keeps whole-simulation results bit-reproducible. Handlers may schedule
// further events. Cancellation is by design left to the caller (version
// counters on the payload) -- cheaper and simpler than tombstoning the heap.
//
// Hot-path notes: the heap is a plain vector driven by std::push_heap /
// std::pop_heap (the exact call sequence std::priority_queue makes, so pop
// order is bit-identical to the old priority_queue implementation), which
// lets `step()` extract the top item by moving from `back()` after
// pop_heap -- no const_cast -- and lets `clear()` retain capacity across
// simulator runs. Handlers are SmallFn (common/small_fn.hpp): every
// closure the simulator schedules is stored inline, so steady-state
// scheduling performs no heap allocation once the heap vector has grown
// to its high-water mark.
//
// Checkpointing (src/service/checkpoint.cpp): closures cannot be
// serialized, so every simulator schedule site tags its event with a small
// POD EventDesc (kind + payload). save_events() emits the heap's raw
// vector layout -- a valid heap is restored verbatim, no re-heapify, so
// the resumed pop order is bit-identical -- and restore() rebuilds each
// handler from its descriptor through a caller-supplied factory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/small_fn.hpp"

namespace iscope {

/// Serializable identity of a scheduled event: which simulator action it
/// performs and the small payload that action needs. `kOpaque` marks an
/// untagged event (tests, ad-hoc callers) -- it runs fine but cannot be
/// checkpointed.
struct EventDesc {
  enum class Kind : std::uint8_t {
    kOpaque = 0,
    kArrival,          ///< a = task index
    kPass,             ///< deadline-pressure scheduling-pass wakeup
    kCompletion,       ///< a = task index, b = task version
    kEpoch,            ///< t = epoch time (self-rechaining)
    kSample,           ///< t = sample time (self-rechaining)
    kProfilingBegin,   ///< a = profiling window index
    kProfilingEnd,     ///< a = active-scan slot index
    kFault,            ///< a = fault-plan event cursor
    kMisprofileTimer,  ///< a = processor, b = occupancy token
    kMisprofileRepair, ///< a = processor
    kThermal,          ///< t = thermal-epoch time (self-rechaining)
    kSleepEnter,       ///< a = processor, b = idle token
    kWake,             ///< a = task index, b = task version
  };
  Kind kind = Kind::kOpaque;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  double t = 0.0;
};

/// One checkpointed event, in the heap's raw vector order.
struct SavedEvent {
  double time = 0.0;
  std::uint64_t seq = 0;
  EventDesc desc;
};

class EventQueue {
 public:
  using Handler = SmallFn<64>;

  /// Schedule `fn` at absolute time `time_s` (>= now). Untagged: the event
  /// is kOpaque and blocks checkpointing while pending.
  void schedule(double time_s, Handler fn);

  /// Schedule with a serializable descriptor. Arrival events occupy a
  /// dedicated tie class that runs before every other same-time event:
  /// batch runs schedule all arrivals first (smallest sequence numbers), so
  /// their tie order is unchanged, while a streamed admission's arrival --
  /// scheduled after epoch/sample chains already exist -- still ties
  /// exactly where the batch schedule would have put it.
  void schedule(double time_s, const EventDesc& desc, Handler fn);

  /// Run the earliest event. Returns false if the queue is empty.
  bool step();

  /// Run events until the queue drains or `max_events` were processed.
  /// Returns the number of events run.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Run events with time <= `until_s` (at most `max_events`). The clock
  /// advances to `until_s` only when the slice completed (queue drained or
  /// next event past `until_s`); when the event budget stopped the loop
  /// the clock stays at the last processed event, so the remaining
  /// events are still ahead of it. Returns the number of events run.
  std::size_t run_until(double until_s, std::size_t max_events = SIZE_MAX);

  /// Run events with time strictly < `t_limit` (at most `max_events`).
  /// Unlike run_until, the clock is left at the last processed event --
  /// never advanced to `t_limit` -- so a caller that resumes the queue
  /// later (the sharded epoch-barrier loop) observes the same event-time
  /// sequence a single uninterrupted run() would. Returns the number of
  /// events run.
  std::size_t run_before(double t_limit, std::size_t max_events = SIZE_MAX);

  double now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  /// Largest pending() ever observed (since construction or clear()).
  /// Tracked unconditionally -- one compare per schedule -- so telemetry
  /// can report it without perturbing the hot path with a gate.
  std::size_t high_water() const { return hwm_; }
  /// Time of the earliest pending event; throws if empty.
  double peek_time() const;
  /// Next sequence number to be assigned (checkpointed so a restored run
  /// keeps numbering ties exactly where the uninterrupted run would).
  std::uint64_t next_seq() const { return seq_; }

  /// Snapshot every pending event in the heap's raw vector order. Throws
  /// InvalidArgument if any pending event is untagged (kOpaque) -- such a
  /// queue cannot be checkpointed.
  std::vector<SavedEvent> save_events() const;

  /// Rebuild the queue from a snapshot: `factory` maps each SavedEvent to
  /// its handler. The items are installed in the given order *without*
  /// re-heapifying -- save_events() emitted a valid heap layout, and
  /// restoring it verbatim reproduces the exact pop (and sift) sequence of
  /// the uninterrupted run. Cold path; allocation here is fine.
  void restore(double now, std::uint64_t next_seq, std::size_t high_water,
               const std::vector<SavedEvent>& events,
               const std::function<Handler(const SavedEvent&)>& factory);

  /// Drop all pending events and rewind the clock to 0, keeping the heap's
  /// allocated capacity (so a reused queue schedules allocation-free up to
  /// the previous high-water mark).
  void clear();

  /// Pre-size the heap storage.
  void reserve(std::size_t events) { heap_.reserve(events); }

 private:
  struct Item {
    double time;
    std::uint64_t seq;
    std::uint8_t cls;  ///< tie class: 0 thermal, 1 arrival, 2 the rest
    EventDesc desc;
    Handler fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.cls != b.cls) return a.cls > b.cls;
      return a.seq > b.seq;
    }
  };
  /// Thermal epochs run first at their barrier time: a flat run's
  /// thermal event at t then observes exactly the state the sharded
  /// coordinator sees after run_before(t) -- no same-time event has run
  /// yet -- which is what makes 1-shard thermal bit-identical to flat.
  /// The arrival-before-the-rest split below it is a monotone remap of
  /// the original {0, 1} classes, so runs without thermal events pop in
  /// the exact order they always did.
  static std::uint8_t tie_class(const EventDesc& desc) {
    if (desc.kind == EventDesc::Kind::kThermal) return 0;
    return desc.kind == EventDesc::Kind::kArrival ? 1 : 2;
  }
  void push_item(double time_s, const EventDesc& desc, Handler fn);

  std::vector<Item> heap_;  ///< binary max-heap under Later
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::size_t hwm_ = 0;  ///< see high_water()
};

}  // namespace iscope
