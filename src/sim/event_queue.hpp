// Discrete-event simulation engine.
//
// A minimal, deterministic DES core: events are (time, handler) pairs; ties
// run in insertion order (a monotone sequence number breaks them), which
// keeps whole-simulation results bit-reproducible. Handlers may schedule
// further events. Cancellation is by design left to the caller (version
// counters on the payload) -- cheaper and simpler than tombstoning the heap.
//
// Hot-path notes: the heap is a plain vector driven by std::push_heap /
// std::pop_heap (the exact call sequence std::priority_queue makes, so pop
// order is bit-identical to the old priority_queue implementation), which
// lets `step()` extract the top item by moving from `back()` after
// pop_heap -- no const_cast -- and lets `clear()` retain capacity across
// simulator runs. Handlers are SmallFn (common/small_fn.hpp): every
// closure the simulator schedules is stored inline, so steady-state
// scheduling performs no heap allocation once the heap vector has grown
// to its high-water mark.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/small_fn.hpp"

namespace iscope {

class EventQueue {
 public:
  using Handler = SmallFn<64>;

  /// Schedule `fn` at absolute time `time_s` (>= now).
  void schedule(double time_s, Handler fn);

  /// Run the earliest event. Returns false if the queue is empty.
  bool step();

  /// Run events until the queue drains or `max_events` were processed.
  /// Returns the number of events run.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Run events with time <= `until_s`; the clock ends at `until_s` if the
  /// queue drained earlier. Returns the number of events run.
  std::size_t run_until(double until_s);

  /// Run events with time strictly < `t_limit` (at most `max_events`).
  /// Unlike run_until, the clock is left at the last processed event --
  /// never advanced to `t_limit` -- so a caller that resumes the queue
  /// later (the sharded epoch-barrier loop) observes the same event-time
  /// sequence a single uninterrupted run() would. Returns the number of
  /// events run.
  std::size_t run_before(double t_limit, std::size_t max_events = SIZE_MAX);

  double now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  /// Largest pending() ever observed (since construction or clear()).
  /// Tracked unconditionally -- one compare per schedule -- so telemetry
  /// can report it without perturbing the hot path with a gate.
  std::size_t high_water() const { return hwm_; }
  /// Time of the earliest pending event; throws if empty.
  double peek_time() const;

  /// Drop all pending events and rewind the clock to 0, keeping the heap's
  /// allocated capacity (so a reused queue schedules allocation-free up to
  /// the previous high-water mark).
  void clear();

  /// Pre-size the heap storage.
  void reserve(std::size_t events) { heap_.reserve(events); }

 private:
  struct Item {
    double time;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::vector<Item> heap_;  ///< binary max-heap under Later
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::size_t hwm_ = 0;  ///< see high_water()
};

}  // namespace iscope
