#include "sim/timeline.hpp"

#include <fstream>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace iscope {

const char* timeline_kind_name(TimelineKind kind) {
  switch (kind) {
    case TimelineKind::kArrival: return "arrival";
    case TimelineKind::kStart: return "start";
    case TimelineKind::kCompletion: return "completion";
    case TimelineKind::kDeadlineMiss: return "deadline_miss";
    case TimelineKind::kRushEnter: return "rush_enter";
    case TimelineKind::kRushLeave: return "rush_leave";
    case TimelineKind::kProfilingBegin: return "profiling_begin";
    case TimelineKind::kProfilingEnd: return "profiling_end";
    case TimelineKind::kCpuFail: return "cpu_fail";
    case TimelineKind::kCpuRepair: return "cpu_repair";
    case TimelineKind::kTaskRequeue: return "task_requeue";
    case TimelineKind::kTaskAbandon: return "task_abandon";
    case TimelineKind::kSleepEnter: return "sleep_enter";
    case TimelineKind::kTaskWaking: return "task_waking";
  }
  return "?";
}

void save_timeline_csv(const std::string& path,
                       const std::vector<TimelineEvent>& events) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ParseError("cannot open for write: " + path);
  CsvWriter w(out);
  w.write_row({"time_s", "kind", "task_id", "value"});
  for (const TimelineEvent& e : events) {
    w.write_row({std::to_string(e.time_s), timeline_kind_name(e.kind),
                 std::to_string(e.task_id), std::to_string(e.value)});
  }
}

}  // namespace iscope
