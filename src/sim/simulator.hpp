// The green-datacenter discrete-event simulator (paper Secs. IV-V).
//
// Drives a task trace through a cluster under one of the five schemes:
//
//  * tasks wait in a central arrival-ordered queue; at every scheduling
//    opportunity (arrival, completion, supply epoch, deadline-pressure
//    wakeup) the placement policy picks idle CPUs for as many waiting
//    tasks as it wants to start -- Effi-style policies may deliberately
//    keep a task waiting for efficient CPUs while its deadline allows;
//  * task start/completion and every 10-minute supply epoch re-run the
//    power matcher, which re-decides DVFS levels against the current wind
//    budget;
//  * energy is integrated between events and attributed wind-first,
//    utility-supplement (Sec. V-C), with cooling overhead per Eq-2.
//
// Determinism: same cluster, knowledge, tasks, supply, and seed => same
// result, bit for bit.
//
// Hot-path design (DESIGN.md Secs. 9 and 14): `rematch()` performs zero
// heap allocations at steady state. Per-task per-level power tables are
// filled once at task start (power only changes when the Knowledge view
// refreshes, tracked by its generation counter); the running set is an
// intrusive doubly-linked list through SimTask (O(1) removal that --
// unlike swap-and-pop -- preserves start order, which the matcher's
// floating-point sums and equal-saving tiebreaks depend on for
// bit-reproducibility). The default matcher path mirrors the running set
// into SoA columns in the same order (matcher_columns.hpp) so the
// deadline-floor scan vectorizes, caches the greedy down-step trajectory
// for the incremental delta-rematch (power_matcher.hpp), and places tasks
// by rank scan instead of per-task partial_sorts. The pre-optimization
// path is retained behind SimConfig::use_reference_matcher and is held
// bit-identical by tests/test_match_equivalence.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "energy/battery.hpp"
#include "energy/forecast.hpp"
#include "energy/hybrid_supply.hpp"
#include "fault/fault.hpp"
#include "hardware/sleep.hpp"
#include "hardware/topology.hpp"
#include "fault/noisy_forecast.hpp"
#include "power/cooling.hpp"
#include "thermal/thermal.hpp"
#include "profiling/opportunistic.hpp"
#include "power/cost.hpp"
#include "power/energy_meter.hpp"
#include "sched/policy.hpp"
#include "sched/power_matcher.hpp"
#include "sched/scheme.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "workload/task.hpp"

namespace iscope {

struct SimConfig {
  double cooling_cop = 2.5;          ///< paper Sec. V-C
  EnergyPrices prices;               ///< 0.13 / 0.05 USD per kWh
  double epoch_s = 600.0;            ///< supply re-evaluation cadence
  double sample_interval_s = 350.0;  ///< Fig. 7 trace sampling period
  bool record_trace = false;
  bool record_timeline = false;      ///< typed event log (sim/timeline.hpp)
  /// Tag for this run's telemetry: metric label values and sampler rows.
  /// Empty means "sim"; run_scheme() fills in the scheme name. Purely
  /// observational -- never read by simulation logic, so it cannot affect
  /// results.
  std::string telemetry_label;
  /// Fair considers wind "abundant" when available wind exceeds current
  /// demand by this factor.
  double wind_abundance_headroom = 1.1;
  /// Share of the cluster (by efficiency rank) Effi treats as the
  /// "efficient pool" it is willing to wait for.
  double efficient_pool_fraction = 0.35;
  /// How long before the last feasible start a waiting task becomes
  /// "forced" (starts on whatever is idle). Two supply epochs of headroom
  /// absorb the start contention after a calm spell ends.
  double deadline_patience_s = 1200.0;
  std::uint64_t seed = 99;           ///< drives the Random placement
  std::size_t max_events = 100'000'000;  ///< runaway guard
  /// Optional on-site battery: surplus wind charges it, deficits discharge
  /// it before the utility grid steps in. Default: absent. Wind energy is
  /// paid at absorption, so round-trip losses are on the wind bill.
  BatteryConfig battery;
  /// Test-only: drive rematch through the retained pre-optimization
  /// matcher path (deep-copied views, O(procs) power sums, per-task
  /// partial-sort placement). The scheduler-equivalence suite asserts this
  /// produces bit-identical results to the default optimized path (SoA
  /// columns + rank-scan placement).
  bool use_reference_matcher = false;
  /// Reuse the previous solve's greedy down-step trajectory when only the
  /// wind budget moved between rematches (delta-rematch, DESIGN.md
  /// Sec. 14). The replay is exact -- results are bit-identical either
  /// way, cost gap zero -- so this is purely a work-avoidance knob; false
  /// forces a full re-solve every time (A/B benchmarking, the
  /// IncrementalIdentity property suite).
  bool incremental_rematch = true;
  /// Fault injection (src/fault/). The default `FaultSpec{}` injects
  /// nothing and is guaranteed bit-identical to a fault-free build. CPU
  /// faults (crashes / mis-profiling) additionally need the mutable-
  /// Knowledge constructor so failed processors can be quarantined.
  FaultSpec faults;
  std::uint64_t fault_seed = 0;  ///< seeds FaultPlan::build from `faults`
  /// Explicit plan override (scripted schedules, replay). When set it wins
  /// over `faults`/`fault_seed`. Shared so sweep scenario copies stay cheap.
  std::shared_ptr<const FaultPlan> fault_plan;

  /// Facility topology and shard partition. topology.shards == 1 (the
  /// default) runs the single-event-loop simulator below; anything larger
  /// makes run_scheme() route through the sharded coordinator
  /// (sim/sharded.hpp), which gives each shard its own event queue,
  /// matcher scratch and energy accounting and reconciles the wind budget
  /// at every supply epoch.
  TopologyConfig topology;
  /// Worker threads the sharded coordinator fans shard advances over
  /// between barriers. 1 (default) = serial in the caller's thread; 0 =
  /// one per hardware thread. Results are bit-identical at any setting.
  std::size_t shard_workers = 1;

  /// Thermal model (src/thermal/): per-rack heat recirculation + CRAC
  /// cooling resolved at every supply epoch. Disabled by default; when
  /// off the legacy Eq-2 flat cooling factor applies and the run is
  /// bit-identical to a build without the subsystem (ThermalOffIdentity).
  ThermalConfig thermal;
  /// C-state sleep management (hardware/sleep.hpp). kNone (default) is
  /// the legacy zero-idle-power, instant-wake model, bit-identical to a
  /// build without sleep support.
  SleepConfig sleep;

  void validate() const;
};

/// O(1) read-only view of the latest scheduling decision -- the service
/// layer's bounded-latency DECIDE_NOW path. Everything here was already
/// computed by the most recent (incremental) rematch; reading it touches no
/// simulation state, so a query cannot perturb determinism.
struct DecisionSnapshot {
  double now_s = 0.0;
  Watts demand;                      ///< facility demand (IT + cooling)
  std::size_t tasks_admitted = 0;
  std::size_t tasks_completed = 0;
  std::size_t tasks_failed = 0;      ///< abandoned by fault injection
  std::size_t waiting = 0;
  std::size_t running = 0;
  std::size_t idle_procs = 0;
  std::size_t events_processed = 0;
  std::size_t rematches = 0;
  bool rush_mode = false;
};

/// Checkpoint codec (src/service/checkpoint.cpp): the one sanctioned door
/// into the simulator's private state for snapshot/restore.
struct CheckpointAccess;

class DatacenterSim {
 public:
  /// All pointers are non-owning and must outlive the simulator.
  /// `forecaster` (optional) informs Fair's deferral decisions; without
  /// one, deferral assumes wind always returns within the slack.
  DatacenterSim(const Knowledge* knowledge, PlacementRule rule,
                const HybridSupply* supply, const SimConfig& config,
                const WindForecaster* forecaster = nullptr);

  /// Mutable-knowledge overload: required when the fault plan carries CPU
  /// faults, so failed processors can be quarantined in the view (which
  /// bumps its generation and invalidates derived caches).
  DatacenterSim(Knowledge* knowledge, PlacementRule rule,
                const HybridSupply* supply, const SimConfig& config,
                const WindForecaster* forecaster = nullptr);

  /// Run the trace to completion and return the collected metrics.
  /// Tasks must fit the cluster (width <= processor count).
  SimResult run(std::vector<Task> tasks);

  /// Run with an in-band opportunistic profiling plan (paper Sec. III-C):
  /// at each window's start the listed processors are isolated from
  /// service *if idle at that moment* (QoS first -- busy ones are skipped),
  /// burn scan power at the top level's stock point for the window's
  /// duration, then return to the pool. Scan power is metered like any
  /// other facility load.
  SimResult run(std::vector<Task> tasks,
                const std::vector<ProfilingWindow>& profiling);

  /// --- sharded-run driver API (sim/sharded.hpp) -------------------------
  /// run() is prepare() + one full queue drain + finish(). The sharded
  /// coordinator instead interleaves advance_before() slices with
  /// epoch-barrier supply reconciliation; chunked execution pops the event
  /// heap in exactly the order one uninterrupted drain would, so a 1-shard
  /// chunked run is bit-identical to run() (tests/test_shard.cpp).

  /// Stage a run: reset state, sort and admit the tasks, schedule the
  /// arrival/epoch/sample/fault events. Does not process any event.
  void prepare(std::vector<Task> tasks,
               const std::vector<ProfilingWindow>& profiling = {});
  /// Process staged events with time strictly < `t_limit` (bounded by the
  /// remaining max_events budget). Returns the number of events run.
  std::size_t advance_before(double t_limit);
  /// Process staged events with time <= `t_limit` and advance the clock to
  /// `t_limit` (the resumable slice the service daemon drives; run() is one
  /// unbounded slice). A clock advanced past the last event changes no
  /// state -- energy accrual integrates from the last accrual point at the
  /// *next* event -- so interleaving step_until() slices is bit-identical
  /// to one uninterrupted drain. Returns the number of events run.
  std::size_t step_until(double t_limit);
  /// True when no staged events remain.
  bool drained() const { return queue_.empty(); }
  /// Facility demand decided by the latest rematch (IT + cooling + scans).
  Watts demand_now() const { return demand_; }
  /// Collect the metrics after the queue drained; checks all tasks done.
  SimResult finish();

  /// --- streaming admission (service mode, src/service/) -----------------
  /// Admit one more task into a prepared simulation. The task's submit time
  /// must not be behind the simulation clock (admission order defines the
  /// tie order among same-instant arrivals). Restarts the epoch/sample
  /// chains if a previous drain stopped them. Returns the task's index.
  ///
  /// Equivalence contract: admitting tasks before the clock passes their
  /// submit times, in submit order, yields a run bit-identical to handing
  /// the same tasks to prepare() up front (arrival events occupy their own
  /// tie class -- see EventQueue::schedule -- so late scheduling cannot
  /// reorder same-time ties).
  std::size_t admit(Task task);
  /// Simulation clock.
  double now_s() const { return queue_.now(); }
  /// Events processed since prepare().
  std::size_t events_processed() const { return events_run_; }
  /// The typed event log recorded so far (the daemon streams its suffix to
  /// clients as decisions are made; complete only with record_timeline).
  const std::vector<TimelineEvent>& timeline() const { return timeline_; }
  /// See DecisionSnapshot.
  DecisionSnapshot decision_snapshot() const;
  const SimConfig& config() const { return config_; }

  /// Test-only hook: when set, called with `true` on entry to every
  /// rematch() and `false` on exit. tests/test_rematch_alloc.cpp counts
  /// heap allocations in between to assert the steady-state hot path is
  /// allocation-free. Null in production.
  static void (*rematch_probe)(bool entering);

 private:
  friend struct CheckpointAccess;
  /// The sharded coordinator (sim/sharded.hpp) resolves the thermal model
  /// once per epoch barrier across all shards and pushes the solution into
  /// each shard (push_thermal), exactly like reconcile_wind.
  friend class ShardedSim;

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  enum class TaskState : std::uint8_t {
    kPending,
    kWaiting,
    kRunning,
    kDone,
    kFailed,  ///< abandoned after exhausting the fault-retry budget
    /// Processors claimed but still waking from a C-state; the task
    /// activates when its kWake event fires (sleep management only).
    kWaking,
  };

  struct SimTask {
    Task spec;
    std::vector<std::size_t> procs;  ///< assigned at start
    double remaining_work_s = 0.0;   ///< seconds-at-Fmax left
    double last_update_s = 0.0;      ///< progress integrated up to here
    std::size_t level = 0;
    double start_s = -1.0;
    /// Monotone across restarts (never reset, or a cancelled completion
    /// event from a previous stint could match again and fire early).
    std::uint64_t version = 0;       ///< invalidates stale completion events
    /// False until the first post-start rematch schedules a completion.
    bool completion_scheduled = false;
    /// Intrusive links of the running list (kNone when not running).
    std::size_t run_prev = kNone;
    std::size_t run_next = kNone;
    /// Row in the SoA matcher columns while running (kNone otherwise;
    /// unused on the reference-matcher path).
    std::size_t col = kNone;
    /// Latest deadline-feasible start at the top frequency, cached at
    /// prepare() (it is a pure function of the immutable spec).
    double latest_start_s = 0.0;
    TaskState state = TaskState::kPending;
    std::size_t retries = 0;         ///< fault-forced restarts so far
  };

  void on_arrival(std::size_t idx);
  /// Try to start waiting tasks on idle processors (with backfill past
  /// voluntarily-waiting tasks; a *forced* task that cannot fit blocks the
  /// pass so freed CPUs accumulate for it).
  void schedule_pass();
  void start_task(std::size_t idx, std::vector<std::size_t> procs);
  /// Second half of start_task: the task begins running on its (already
  /// claimed) processors. Called inline when no wake latency applies --
  /// the only path when sleep management is off -- or from the kWake event
  /// after the deepest claimed processor finished its transition.
  void activate_task(std::size_t idx);
  void on_wake(std::size_t idx, std::uint64_t version);
  void on_completion(std::size_t idx, std::uint64_t version);
  /// Integrate energy up to now, then re-run the power matcher and
  /// reschedule completion events whose level changed.
  void rematch();
  /// Integrate energy from the last accrual point to now.
  void accrue_to_now();
  void schedule_epoch(double t);
  void schedule_sample(double t);
  void on_epoch(double t);
  void on_sample(double t);
  /// Profiling windows live in `profiling_` and active scans in `scans_`
  /// slots, so the scheduled closures capture only indices -- the shape
  /// the checkpoint codec can serialize and rebuild.
  void begin_profiling_window(std::size_t window_idx);
  void end_profiling_window(std::size_t slot);
  /// Fault machinery (src/fault/): the plan's crash/repair events run as a
  /// single lazily-chained event stream; mis-profile fail-stops are armed
  /// per processor when a task starts on an unsafe scan point.
  void schedule_fault_event(std::size_t i);
  void on_fault_event(std::size_t i);
  void fail_proc(std::size_t p, bool misprofile);
  void repair_proc(std::size_t p);
  /// Kill a running task because one of its processors failed: free the
  /// survivors, requeue (bounded by the plan's retry budget) or abandon.
  void requeue_task(std::size_t idx);
  void on_misprofile_timer(std::size_t p, std::uint64_t token);
  /// --- thermal model (src/thermal/) -------------------------------------
  /// A self-rechaining kThermal event at every supply epoch re-solves the
  /// recirculation + CRAC model against the facility's current rack power
  /// map. kThermal occupies tie class 0, so at an epoch instant the flat
  /// run resolves thermal state against exactly the pre-epoch state the
  /// sharded coordinator sees at its barrier -- the two stay bit-identical.
  void schedule_thermal(double t);
  void on_thermal(double t);
  /// Accumulate per-rack IT power (running + reserved + idle/sleep
  /// residency) into `rack_w`, indexed by *global* rack id. The caller
  /// zeroes the vector; racks never straddle shards, so per-rack sums are
  /// identical however the facility is partitioned.
  void collect_rack_power(std::vector<double>& rack_w) const;
  /// Coordinator-push half of the sharded thermal step: stage a solution
  /// for this shard's next kThermal event to apply.
  void push_thermal(double cop, double supply_c, double peak_inlet_c);
  /// Install the recirculation-aware placement order (ScanTherm): a
  /// round-robin stripe over racks (ascending heat weight) of each
  /// rack's chips (ascending believed efficiency) -- min-max inlet rise
  /// at every fill depth.
  void install_thermal_order(const RecirculationMatrix& matrix);
  /// Recompose facility demand from the cached IT parts (last matcher
  /// compute power + scans + idle residency) and the current cooling
  /// model. Only ever called when thermal or sleep is active; the off path
  /// keeps the legacy Eq-2 composition in rematch() verbatim.
  void recompute_demand();
  /// --- sleep management (hardware/sleep.hpp) ----------------------------
  void sleep_on_idle(std::size_t p);    ///< processor entered the idle pool
  void sleep_on_claim(std::size_t p);   ///< processor left the idle pool
  void on_sleep_enter(std::size_t p, std::uint64_t token);
  /// Instantaneous wind -> battery -> utility waterfall (previews only;
  /// shared by the Fig. 7 trace recorder and the telemetry sampler).
  PowerSample power_waterfall_now() const;
  void record_sample();
  /// Telemetry-only observation hooks. Both are observational by
  /// construction: they schedule no events and mutate no simulation state,
  /// so a telemetry-enabled run is bit-identical to a disabled one.
  void telemetry_sample();
  void publish_run_telemetry(std::size_t events);
  void log_event(TimelineKind kind, std::int64_t task_id, double value);
  double fmax_ghz() const;
  /// Fair's abundance test against a wind value already looked up for this
  /// instant (schedule_pass hoists the supply query out of its task loop).
  bool wind_abundant_given(Watts wind) const;
  /// Latest deadline-feasible start of a task at the top frequency.
  double latest_start(const SimTask& t) const;
  bool all_done() const {
    return done_count_ + failed_count_ == tasks_.size();
  }

  /// Append / remove a task on the intrusive running list (order-
  /// preserving O(1) bookkeeping).
  void link_running(std::size_t idx);
  void unlink_running(std::size_t idx);
  /// Drop a task's SoA row (order-preserving shift; re-points the row
  /// handles of every shifted task) and invalidate the incremental cache.
  /// No-op on the reference-matcher path, which keeps no columns.
  void cols_remove(std::size_t idx);
  /// Fill the task's row of the per-level power table from its processors.
  void fill_power_table(std::size_t idx);
  /// Maintain the sorted idle-processor list at its mutation sites.
  void idle_insert(std::size_t p);
  void idle_remove(std::size_t p);
  /// Eq-3 slowdown of a running task at its current level.
  double level_slowdown(const SimTask& t) const {
    return t.spec.gamma * slowdown_ratio_[t.level] + 1.0;
  }

  const Knowledge* knowledge_;
  /// Non-null only via the mutable-knowledge constructor; needed to
  /// quarantine/release failed processors.
  Knowledge* knowledge_mut_ = nullptr;
  const HybridSupply* supply_;
  const WindForecaster* forecaster_;  // may be null
  SimConfig config_;
  PlacementPolicy policy_;
  PowerMatcher matcher_;
  CoolingModel cooling_;

  EventQueue queue_;
  EnergyMeter meter_;
  BatteryBank battery_;
  std::vector<SimTask> tasks_;
  std::vector<std::size_t> waiting_;       ///< task indices, arrival order
  std::size_t waiting_cpus_ = 0;           ///< total width of waiting_
  std::vector<std::size_t> proc_running_;  ///< task idx or kNone
  std::vector<double> busy_time_s_;
  /// Idle, non-reserved processors: flags + count are always maintained
  /// (the placement fast path tests membership in O(1)); the sorted id
  /// list is only kept where something consumes its order -- the kRandom
  /// scratch copy and the reference path (maintain_idle_sorted_). The
  /// (busy time, id)-ordered list feeds Fair's abundant-wind pick and is
  /// kept only there (maintain_idle_by_busy_). Busy time is frozen while
  /// a processor sits idle, so order maintenance happens purely at
  /// insert/remove.
  std::vector<std::uint8_t> idle_flags_;
  std::size_t idle_count_ = 0;
  std::vector<std::size_t> idle_sorted_;
  std::vector<std::size_t> idle_by_busy_;
  /// Rank-indexed idle bitset for the fast path's best-rank-first pick:
  /// bit r (word r/64) set means the processor with efficiency rank r is
  /// idle. Insert/remove is one bit op; PlacementPolicy::choose_soa pops
  /// picks with a ctz scan instead of walking the efficiency order.
  /// Maintained only when fast_placement_ (rank_of_proc_ caches the
  /// policy's rank table for the O(1) updates).
  std::vector<std::uint64_t> idle_rank_bits_;
  std::vector<std::size_t> rank_of_proc_;
  bool maintain_idle_sorted_ = true;
  bool maintain_idle_by_busy_ = false;
  /// True when schedule_pass may skip the idle-vector copy and the
  /// per-task partial_sort: the default matcher with a deterministic rule
  /// (Effi/Fair). kRandom's draws depend on the legacy scratch layout and
  /// the reference path *is* the legacy code, so both keep it.
  bool fast_placement_ = false;
  std::vector<std::size_t> pick_scratch_;  ///< choose_soa output buffer
  /// Running set: intrusive list through SimTask::run_prev/run_next, in
  /// start order (head is the longest-running task).
  std::size_t run_head_ = kNone;
  std::size_t run_tail_ = kNone;
  std::size_t run_count_ = 0;
  std::vector<std::size_t> idle_scratch_;
  std::vector<bool> reserved_;             ///< isolated for profiling
  Watts reserved_power_;                   ///< IT power of active scans
  double profiling_proc_seconds_ = 0.0;
  std::size_t profiling_procs_scanned_ = 0;
  std::size_t profiling_procs_skipped_ = 0;
  /// The run's profiling plan (copied at prepare; scheduled closures refer
  /// to windows by index).
  std::vector<ProfilingWindow> profiling_;
  /// One slot per scan that ever went live; `live` scans own reserved
  /// processors and have a pending kProfilingEnd event carrying the slot
  /// index. Slots are never reused (their count is bounded by the plan).
  struct ActiveScan {
    std::vector<std::size_t> procs;
    double started_s = 0.0;
    bool live = false;
  };
  std::vector<ActiveScan> scans_;
  /// True while a self-rechaining epoch/sample event is pending. A drain
  /// stops the chains (all_done); admit() restarts them at the next
  /// boundary so a long-running service keeps re-evaluating the supply.
  bool epoch_chain_live_ = false;
  bool sample_chain_live_ = false;

  /// Per-task per-level IT power [task * levels + level], in raw watts;
  /// rows are filled at task start and stay valid while the Knowledge
  /// generation is unchanged.
  std::vector<double> power_table_;
  std::uint64_t knowledge_gen_ = 0;        ///< generation the table matches
  std::vector<ActiveTask> views_;          ///< reference-path view scratch
  MatchScratch match_scratch_;             ///< matcher floor/heap scratch
  /// SoA mirror of the running set in running-list order (the default
  /// matcher path; see matcher_columns.hpp) plus the cached greedy
  /// trajectory for the incremental delta-rematch.
  MatcherColumns cols_;
  IncrementalMatchState inc_;
  std::vector<double> slowdown_ratio_;     ///< (fmax / f_l - 1) per level

  std::vector<TimelineEvent> timeline_;
  Watts demand_;
  double last_accrual_s_ = 0.0;
  Watts segment_wind_;           ///< wind available during current segment
  std::size_t done_count_ = 0;
  std::size_t events_run_ = 0;  ///< events processed since prepare()
  std::size_t rematch_count_ = 0;
  double total_wait_s_ = 0.0;
  std::size_t miss_count_ = 0;
  double makespan_s_ = 0.0;
  bool in_pass_ = false;  ///< re-entrancy guard for schedule_pass
  /// Set while a deadline-forced task is blocked waiting for processors:
  /// the matcher then rushes running tasks to the top level to free CPUs
  /// ("we stop lowering the frequency when some tasks are facing violation
  /// of their deadlines" -- paper Sec. V-C).
  bool rush_mode_ = false;

  /// --- fault injection ---------------------------------------------------
  /// The resolved plan (config override, built from the spec, or the empty
  /// plan). `faults_active_` is false for the empty plan, in which case the
  /// run takes no fault branch, schedules no fault event and stays
  /// bit-identical to a fault-free build.
  FaultPlan plan_local_;
  const FaultPlan* plan_ = nullptr;
  bool faults_active_ = false;
  std::unique_ptr<NoisyForecaster> noisy_forecaster_;
  std::vector<std::uint8_t> failed_;   ///< per-proc: currently fail-stopped
  /// Per-proc: latent mis-profile still live (cleared once it fires).
  std::vector<std::uint8_t> misprofile_armed_;
  /// Per-proc token; bumped whenever the processor stops running, so a
  /// pending mis-profile timer from an earlier occupancy is stale.
  std::vector<std::uint64_t> misprofile_token_;
  std::size_t failed_count_ = 0;       ///< terminally failed tasks
  FaultCounters fault_counters_;

  /// --- thermal model state (src/thermal/) --------------------------------
  /// All of it is inert when config_.thermal.enabled is false: the model is
  /// never built, no kThermal event is scheduled, and demand keeps the
  /// legacy composition (ThermalOffIdentity pins this).
  std::unique_ptr<ThermalModel> thermal_model_;  ///< flat runs only
  /// Sharded: the coordinator owns the model and pushes solutions; this
  /// shard's kThermal events apply them instead of solving.
  bool thermal_external_ = false;
  bool thermal_chain_live_ = false;
  bool therm_order_installed_ = false;
  double cop_now_ = 0.0;        ///< CRAC COP billing applies right now
  double supply_c_now_ = 0.0;   ///< current CRAC supply temperature
  double peak_inlet_c_ = 0.0;   ///< hottest rack inlet seen this run
  bool thermal_pending_ = false;  ///< a pushed solution awaits application
  double pending_cop_ = 0.0;
  double pending_supply_c_ = 0.0;
  double pending_peak_c_ = 0.0;
  Watts last_compute_;          ///< IT compute power of the latest match
  Watts cooling_power_;         ///< current CRAC (or Eq-2) draw
  double cooling_joules_ = 0.0;
  double idle_joules_ = 0.0;
  std::vector<double> rack_w_scratch_;
  /// config_.thermal.enabled || config_.sleep.enabled(): demand is composed
  /// by recompute_demand() instead of the legacy rematch() line.
  bool extras_active_ = false;

  /// --- sleep management state (hardware/sleep.hpp) -----------------------
  bool sleep_active_ = false;   ///< cached config_.sleep.enabled()
  /// Current C-state depth of each *idle* processor (0 = active idle,
  /// d > 0 = config_.sleep.states[d - 1]). Stale while the processor runs;
  /// start_task reads it right after claiming to derive the wake latency.
  std::vector<std::uint8_t> sleep_state_;
  /// Bumped whenever the processor leaves the idle pool; stales any
  /// pending kSleepEnter descent scheduled for the previous idle stint.
  std::vector<std::uint64_t> sleep_token_;
  std::vector<double> sleep_stock_w_;  ///< stock top-level watts per proc
  /// Sum of (residency fraction x stock watts) over idle processors. Raw
  /// accumulator: additions/removals replay exactly, so its FP history is
  /// deterministic; clamped at >= 0 where it feeds demand.
  double idle_power_w_ = 0.0;
  std::size_t sleeping_count_ = 0;  ///< processors at depth > 0
  std::size_t sleep_enters_ = 0;    ///< C-state descents taken
  std::size_t sleep_wakes_ = 0;     ///< task starts delayed by a wake
};

/// Convenience wrapper: build knowledge for `scheme`, run the simulation,
/// and price the result. `db` is required for Scan schemes.
SimResult run_scheme(const Cluster& cluster, Scheme scheme,
                     const ProfileDb* db, const HybridSupply& supply,
                     const std::vector<Task>& tasks, const SimConfig& config);

}  // namespace iscope
