// Wind-forecast error injection: a decorator that perturbs another
// forecaster's output with deterministic multiplicative noise.
#pragma once

#include <cstdint>
#include <memory>

#include "energy/forecast.hpp"

namespace iscope {

/// Wraps a base forecaster and scales each forecast by a pseudo-random
/// factor in [1 - error, 1 + error]. The factor is a hash of (seed, now,
/// horizon) rather than a draw from a consumed RNG stream, so the noise a
/// query sees does not depend on how many forecasts were made before it —
/// replays and schedulers with different query patterns stay comparable.
class NoisyForecaster final : public WindForecaster {
 public:
  /// `base` must outlive this object (the simulator owns both).
  NoisyForecaster(const WindForecaster* base, double error,
                  std::uint64_t seed);

  Watts forecast_mean(Seconds now, Seconds horizon) const override;

  double error() const { return error_; }

 private:
  const WindForecaster* base_;
  double error_;
  std::uint64_t seed_;
};

}  // namespace iscope
