// Deterministic fault injection (the resilience layer).
//
// The paper's iScope scanner deliberately operates chips near the
// process-variation Min-Vdd margin, so a credible evaluation must show what
// the schedulers do when the perfect-world assumptions break:
//
//  (a) scan mis-profiling -- the in-cloud scan underestimated a chip's
//      Min Vdd, so running it at the discovered (unsafe) point eventually
//      fail-stops the processor;
//  (b) transient CPU crashes -- exponential inter-arrival and repair times
//      per processor, independent of the voltage margin story;
//  (c) wind-forecast error -- multiplicative noise on forecaster outputs
//      (see fault/noisy_forecast.hpp);
//  (d) supply-trace dropouts -- sensor/feed gaps treated as zero wind.
//
// Everything is seeded and replayable: a `FaultPlan` is a pure function of
// (FaultSpec, seed, processor count). Same seed => identical fault
// schedule, counters, and report, regardless of what the scheduler does in
// between (crash/repair times are precomputed; mis-profile latencies are
// per-processor constants; forecast noise is a hash of the query time, not
// a consumed stream). A default-constructed (empty) `FaultPlan` is the
// contract for "injection disabled": the simulator must produce
// bit-identical results to a build that never heard of faults
// (tests/test_match_equivalence.cpp enforces this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "energy/supply_trace.hpp"

namespace iscope {

/// Stochastic fault model parameters. All rates default to 0 / disabled, so
/// `FaultSpec{}` describes the perfect world.
struct FaultSpec {
  /// (a) Probability that a scanned chip's Min Vdd was underestimated by
  /// the profiling guardband. Only Scan-knowledge schemes exercise the
  /// unsafe point, so only they can trigger these fail-stops (a binned chip
  /// runs at the bin's worst-case voltage, safely above its true minimum).
  double misprofile_prob = 0.0;
  /// Mean (exponential) latency from first running at the unsafe point to
  /// the fail-stop, per mis-profiled chip.
  double misprofile_latency_mean_s = 1800.0;

  /// (b) Per-processor mean time between transient crashes (exponential
  /// inter-arrival). 0 disables crash injection.
  double crash_mtbf_s = 0.0;
  /// Mean (exponential) repair time; applies to crashes and to
  /// mis-profiling fail-stops (repair includes a corrective re-profile, so
  /// a repaired chip does not fail-stop from the same mis-profile again).
  double repair_mean_s = 1800.0;

  /// (c) Multiplicative wind-forecast noise half-width: a forecast is
  /// scaled by a deterministic pseudo-random factor in [1-e, 1+e].
  double forecast_error = 0.0;

  /// (d) Supply-trace dropouts: expected dropouts per day of trace, each
  /// with an exponential duration of mean `dropout_mean_s`. Samples inside
  /// a dropout window read as zero wind.
  double dropouts_per_day = 0.0;
  double dropout_mean_s = 1800.0;

  /// (e) CRAC degradation window: for `crac_duration_s` starting at
  /// `crac_start_s`, the chiller COP is scaled by (1 - crac_derate) --
  /// a partial cooling outage (failed compressor stage, condenser
  /// fouling). Facility-wide; only affects runs with the thermal model
  /// enabled (cooling power is not simulated otherwise).
  double crac_derate = 0.0;  ///< in [0, 1); 0 disables the window
  double crac_start_s = 0.0;
  double crac_duration_s = 0.0;

  /// Crash/repair schedules are generated out to this horizon.
  double horizon_s = 60.0 * 86400.0;
  /// How many times a task killed by a failing CPU is requeued before it is
  /// abandoned (counted as terminally failed, never silently lost).
  std::size_t max_retries = 3;

  /// True when any injection channel is active.
  bool any() const;
  void validate() const;
};

/// Parse a `key=value,key=value` spec string (the CLI `--faults` format).
/// Keys: mtbf, repair, misprofile, misprofile-latency, forecast, dropouts,
/// dropout-mean, retries, horizon, crac, crac-start, crac-duration.
/// Durations are seconds. Unknown keys throw InvalidArgument.
FaultSpec parse_fault_spec(const std::string& text);

enum class FaultKind : std::uint8_t {
  kCrash,   ///< processor fail-stops (transient)
  kRepair,  ///< processor returns to service
};

const char* fault_kind_name(FaultKind kind);

/// One scheduled processor fault. Scripted plans are a list of these.
struct FaultEvent {
  double time_s = 0.0;
  FaultKind kind = FaultKind::kCrash;
  std::size_t proc = 0;
};

/// A wind-supply outage [start, end).
struct DropoutWindow {
  double start_s = 0.0;
  double end_s = 0.0;
};

/// A fully materialized, deterministic fault schedule. Built once from a
/// `FaultSpec` and a seed (or scripted explicitly), then read-only: the
/// simulator consumes it without drawing any randomness of its own.
class FaultPlan {
 public:
  /// The empty plan: injection disabled, bit-identical simulation results.
  FaultPlan() = default;

  /// Materialize `spec` for a `procs`-processor facility. Pure function of
  /// its arguments. Every generated crash carries a matching repair (repair
  /// may land past the horizon), so no processor is lost forever.
  static FaultPlan build(const FaultSpec& spec, std::uint64_t seed,
                         std::size_t procs);

  /// Explicit scripted schedule (tests, replaying a production incident).
  /// Events are sorted by (time, proc); for each processor, crashes and
  /// repairs must alternate starting with a crash.
  static FaultPlan scripted(std::vector<FaultEvent> events,
                            std::size_t max_retries = 3);

  /// True when the plan injects nothing into the simulator (no crash
  /// events and no mis-profiled chips). Dropouts/forecast noise act on the
  /// supply/forecast objects outside the event loop, and the CRAC window
  /// only modulates the thermal solve, so none of them count -- a
  /// CRAC-only plan keeps the simulator's fault machinery (mutable
  /// knowledge, quarantine, retry bookkeeping) entirely disengaged.
  bool sim_empty() const {
    return events_.empty() && misprofile_count_ == 0;
  }
  /// True when the plan carries no faults of any kind.
  bool empty() const {
    return sim_empty() && dropouts_.empty() && forecast_error_ == 0.0 &&
           crac_derate_ == 0.0;
  }

  /// Crash/repair schedule, sorted by (time, proc, kind).
  const std::vector<FaultEvent>& events() const { return events_; }

  bool misprofiled(std::size_t proc) const {
    return proc < misprofile_latency_s_.size() &&
           misprofile_latency_s_[proc] >= 0.0;
  }
  /// Exercise-to-fail-stop latency of a mis-profiled chip (>= 0); chips
  /// that were profiled correctly return -1.
  double misprofile_latency_s(std::size_t proc) const {
    return misprofiled(proc) ? misprofile_latency_s_[proc] : -1.0;
  }
  std::size_t misprofile_count() const { return misprofile_count_; }
  /// Repair duration after a mis-profile fail-stop (the repair includes a
  /// corrective re-profile, so the chip cannot fail from the same
  /// mis-profile again). Pre-drawn per processor for determinism.
  double misprofile_repair_s(std::size_t proc) const {
    return proc < misprofile_repair_s_.size() ? misprofile_repair_s_[proc]
                                              : 0.0;
  }

  std::size_t max_retries() const { return max_retries_; }

  const std::vector<DropoutWindow>& dropouts() const { return dropouts_; }
  /// Zero every sample of `trace` that falls inside a dropout window.
  SupplyTrace apply_dropouts(const SupplyTrace& trace) const;

  /// Forecast-noise parameters (consumed by NoisyForecaster).
  double forecast_error() const { return forecast_error_; }
  std::uint64_t forecast_seed() const { return forecast_seed_; }

  /// CRAC chiller derate factor at time `t`: 1.0 outside the degradation
  /// window, (1 - crac_derate) inside [crac_start, crac_start + duration).
  /// Facility-wide; consumed by the thermal epoch solve.
  double crac_factor(double t) const {
    if (crac_derate_ == 0.0) return 1.0;
    return (t >= crac_start_s_ && t < crac_start_s_ + crac_duration_s_)
               ? 1.0 - crac_derate_
               : 1.0;
  }
  double crac_derate() const { return crac_derate_; }

  /// Largest processor id referenced by events or mis-profiles, +1; 0 when
  /// none. The simulator checks this against its cluster size.
  std::size_t procs_referenced() const;

  /// Restrict the plan to processors [proc_lo, proc_lo + proc_count),
  /// renumbered to local ids 0..count-1. Crash/repair events and
  /// mis-profile entries outside the slice are dropped; dropouts, forecast
  /// noise and the retry budget are facility-wide and carry over
  /// unchanged. Slicing one global plan per shard keeps the physical fault
  /// schedule independent of the shard count (sim/sharded.hpp); the full
  /// slice (lo=0, count=procs_referenced() or more) reproduces the plan
  /// exactly.
  FaultPlan slice(std::size_t proc_lo, std::size_t proc_count) const;

 private:
  std::vector<FaultEvent> events_;
  /// Per-processor latency; -1 = profiled correctly. Empty = none at all.
  std::vector<double> misprofile_latency_s_;
  std::vector<double> misprofile_repair_s_;
  std::size_t misprofile_count_ = 0;
  std::vector<DropoutWindow> dropouts_;
  double forecast_error_ = 0.0;
  std::uint64_t forecast_seed_ = 0;
  double crac_derate_ = 0.0;
  double crac_start_s_ = 0.0;
  double crac_duration_s_ = 0.0;
  std::size_t max_retries_ = 3;
};

/// Fault-injection outcome counters, reported in `SimResult::faults`. All
/// zero when injection is disabled.
struct FaultCounters {
  std::size_t cpu_failures = 0;     ///< fail-stops (crashes + mis-profiles)
  std::size_t cpu_repairs = 0;      ///< processors returned to service
  std::size_t misprofile_failures = 0;  ///< fail-stops caused by (a)
  std::size_t task_requeues = 0;    ///< task restarts forced by failures
  std::size_t tasks_failed = 0;     ///< abandoned after max_retries
  double lost_cpu_seconds = 0.0;    ///< processor-seconds of discarded work
  /// Deadline misses of tasks that had been requeued at least once (the
  /// misses attributable to fault recovery rather than to scheduling).
  std::size_t fault_deadline_misses = 0;
};

}  // namespace iscope
