#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace iscope {
namespace {

void check_finite_nonneg(double v, const char* name) {
  ISCOPE_CHECK_ARG(std::isfinite(v) && v >= 0.0, std::string("FaultSpec.") +
                                                     name +
                                                     " must be finite and >= 0");
}

}  // namespace

bool FaultSpec::any() const {
  return misprofile_prob > 0.0 || crash_mtbf_s > 0.0 || forecast_error > 0.0 ||
         dropouts_per_day > 0.0 || crac_derate > 0.0;
}

void FaultSpec::validate() const {
  check_finite_nonneg(misprofile_prob, "misprofile_prob");
  ISCOPE_CHECK_ARG(misprofile_prob <= 1.0,
                   "FaultSpec.misprofile_prob must be <= 1");
  check_finite_nonneg(misprofile_latency_mean_s, "misprofile_latency_mean_s");
  check_finite_nonneg(crash_mtbf_s, "crash_mtbf_s");
  check_finite_nonneg(repair_mean_s, "repair_mean_s");
  check_finite_nonneg(forecast_error, "forecast_error");
  ISCOPE_CHECK_ARG(forecast_error < 1.0, "FaultSpec.forecast_error must be < 1");
  check_finite_nonneg(dropouts_per_day, "dropouts_per_day");
  check_finite_nonneg(dropout_mean_s, "dropout_mean_s");
  ISCOPE_CHECK_ARG(std::isfinite(horizon_s) && horizon_s > 0.0,
                   "FaultSpec.horizon_s must be finite and > 0");
  ISCOPE_CHECK_ARG(misprofile_prob == 0.0 || misprofile_latency_mean_s > 0.0,
                   "misprofile_latency_mean_s must be > 0 when misprofiling "
                   "is enabled");
  ISCOPE_CHECK_ARG((crash_mtbf_s == 0.0 && misprofile_prob == 0.0) ||
                       repair_mean_s > 0.0,
                   "repair_mean_s must be > 0 when CPU faults are enabled");
  ISCOPE_CHECK_ARG(dropouts_per_day == 0.0 || dropout_mean_s > 0.0,
                   "dropout_mean_s must be > 0 when dropouts are enabled");
  check_finite_nonneg(crac_derate, "crac_derate");
  ISCOPE_CHECK_ARG(crac_derate < 1.0, "FaultSpec.crac_derate must be < 1");
  check_finite_nonneg(crac_start_s, "crac_start_s");
  check_finite_nonneg(crac_duration_s, "crac_duration_s");
  ISCOPE_CHECK_ARG(crac_derate == 0.0 || crac_duration_s > 0.0,
                   "crac_duration_s must be > 0 when CRAC derating is enabled");
}

FaultSpec parse_fault_spec(const std::string& text) {
  FaultSpec spec;
  std::istringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    // Trim surrounding whitespace so "mtbf=9000, repair=600" parses.
    const auto first = item.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const auto last = item.find_last_not_of(" \t");
    item = item.substr(first, last - first + 1);

    const auto eq = item.find('=');
    ISCOPE_CHECK_ARG(eq != std::string::npos && eq > 0,
                     "fault spec item '" + item + "' is not key=value");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    ISCOPE_CHECK_ARG(end != value.c_str() && *end == '\0' && std::isfinite(v),
                     "fault spec value '" + value + "' for key '" + key +
                         "' is not a finite number");

    if (key == "mtbf") {
      spec.crash_mtbf_s = v;
    } else if (key == "repair") {
      spec.repair_mean_s = v;
    } else if (key == "misprofile") {
      spec.misprofile_prob = v;
    } else if (key == "misprofile-latency") {
      spec.misprofile_latency_mean_s = v;
    } else if (key == "forecast") {
      spec.forecast_error = v;
    } else if (key == "dropouts") {
      spec.dropouts_per_day = v;
    } else if (key == "dropout-mean") {
      spec.dropout_mean_s = v;
    } else if (key == "retries") {
      ISCOPE_CHECK_ARG(v >= 0.0 && v == std::floor(v),
                       "fault spec 'retries' must be a non-negative integer");
      spec.max_retries = static_cast<std::size_t>(v);
    } else if (key == "horizon") {
      spec.horizon_s = v;
    } else if (key == "crac") {
      spec.crac_derate = v;
    } else if (key == "crac-start") {
      spec.crac_start_s = v;
    } else if (key == "crac-duration") {
      spec.crac_duration_s = v;
    } else {
      throw InvalidArgument("unknown fault spec key '" + key + "'");
    }
  }
  spec.validate();
  return spec;
}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRepair:
      return "repair";
  }
  return "?";
}

FaultPlan FaultPlan::build(const FaultSpec& spec, std::uint64_t seed,
                           std::size_t procs) {
  spec.validate();
  FaultPlan plan;
  plan.max_retries_ = spec.max_retries;
  plan.forecast_error_ = spec.forecast_error;
  plan.forecast_seed_ = splitmix64(seed ^ 0x77696e64ULL);  // "wind"
  plan.crac_derate_ = spec.crac_derate;
  plan.crac_start_s_ = spec.crac_start_s;
  plan.crac_duration_s_ = spec.crac_duration_s;
  Rng root(seed);

  if (spec.crash_mtbf_s > 0.0 && procs > 0) {
    for (std::size_t p = 0; p < procs; ++p) {
      Rng rng = root.fork("crash/" + std::to_string(p));
      double t = rng.exponential(1.0 / spec.crash_mtbf_s);
      while (t < spec.horizon_s) {
        const double repair = rng.exponential(1.0 / spec.repair_mean_s);
        plan.events_.push_back({t, FaultKind::kCrash, p});
        // Always emit the matching repair, even past the horizon, so no
        // processor stays quarantined forever.
        plan.events_.push_back({t + repair, FaultKind::kRepair, p});
        t += repair + rng.exponential(1.0 / spec.crash_mtbf_s);
      }
    }
    std::sort(plan.events_.begin(), plan.events_.end(),
              [](const FaultEvent& a, const FaultEvent& b) {
                if (a.time_s != b.time_s) return a.time_s < b.time_s;
                if (a.proc != b.proc) return a.proc < b.proc;
                return a.kind < b.kind;
              });
  }

  if (spec.misprofile_prob > 0.0 && procs > 0) {
    Rng rng = root.fork("misprofile");
    plan.misprofile_latency_s_.assign(procs, -1.0);
    plan.misprofile_repair_s_.assign(procs, 0.0);
    for (std::size_t p = 0; p < procs; ++p) {
      // Draw all values unconditionally so each processor's outcome is
      // independent of how many predecessors were mis-profiled.
      const double u = rng.uniform();
      const double latency =
          rng.exponential(1.0 / spec.misprofile_latency_mean_s);
      const double repair = rng.exponential(1.0 / spec.repair_mean_s);
      if (u < spec.misprofile_prob) {
        plan.misprofile_latency_s_[p] = latency;
        plan.misprofile_repair_s_[p] = repair;
        ++plan.misprofile_count_;
      }
    }
    if (plan.misprofile_count_ == 0) {
      plan.misprofile_latency_s_.clear();
      plan.misprofile_repair_s_.clear();
    }
  }

  if (spec.dropouts_per_day > 0.0) {
    Rng rng = root.fork("dropout");
    const double mean_gap_s = 86400.0 / spec.dropouts_per_day;
    double t = rng.exponential(1.0 / mean_gap_s);
    while (t < spec.horizon_s) {
      const double len = rng.exponential(1.0 / spec.dropout_mean_s);
      plan.dropouts_.push_back({t, t + len});
      t += len + rng.exponential(1.0 / mean_gap_s);
    }
  }

  return plan;
}

FaultPlan FaultPlan::scripted(std::vector<FaultEvent> events,
                              std::size_t max_retries) {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.time_s != b.time_s) return a.time_s < b.time_s;
                     return a.proc < b.proc;
                   });
  // Per processor: crash/repair must alternate, starting with a crash, so
  // the simulator never sees a repair of a healthy CPU or a double crash.
  std::vector<std::size_t> procs;
  for (const FaultEvent& e : events) {
    ISCOPE_CHECK_ARG(std::isfinite(e.time_s) && e.time_s >= 0.0,
                     "scripted fault event time must be finite and >= 0");
    procs.push_back(e.proc);
  }
  std::sort(procs.begin(), procs.end());
  procs.erase(std::unique(procs.begin(), procs.end()), procs.end());
  for (std::size_t p : procs) {
    FaultKind expect = FaultKind::kCrash;
    for (const FaultEvent& e : events) {
      if (e.proc != p) continue;
      ISCOPE_CHECK_ARG(e.kind == expect,
                       "scripted fault events for proc " + std::to_string(p) +
                           " must alternate crash/repair starting with crash");
      expect = expect == FaultKind::kCrash ? FaultKind::kRepair
                                           : FaultKind::kCrash;
    }
  }
  FaultPlan plan;
  plan.events_ = std::move(events);
  plan.max_retries_ = max_retries;
  return plan;
}

SupplyTrace FaultPlan::apply_dropouts(const SupplyTrace& trace) const {
  if (dropouts_.empty()) return trace;
  std::vector<double> power = trace.raw();
  const double step = trace.step().raw();
  for (const DropoutWindow& w : dropouts_) {
    const auto lo = static_cast<std::size_t>(
        std::max(0.0, std::ceil(w.start_s / step - 1e-9)));
    for (std::size_t i = lo; i < power.size(); ++i) {
      if (static_cast<double>(i) * step >= w.end_s) break;
      power[i] = 0.0;
    }
  }
  return SupplyTrace(trace.step(), std::move(power));
}

std::size_t FaultPlan::procs_referenced() const {
  std::size_t n = misprofile_latency_s_.size();
  for (const FaultEvent& e : events_) n = std::max(n, e.proc + 1);
  return n;
}

FaultPlan FaultPlan::slice(std::size_t proc_lo, std::size_t proc_count) const {
  FaultPlan out;
  out.events_.reserve(events_.size());
  for (const FaultEvent& e : events_) {
    if (e.proc < proc_lo || e.proc >= proc_lo + proc_count) continue;
    FaultEvent local = e;
    local.proc = e.proc - proc_lo;
    out.events_.push_back(local);
  }
  // The per-processor arrays are sparse tails: only populate them when the
  // slice actually contains a mis-profiled chip, so a clean slice stays
  // sim_empty() and its shard takes no fault branch at all.
  for (std::size_t i = 0; i < proc_count; ++i) {
    const std::size_t g = proc_lo + i;
    if (g >= misprofile_latency_s_.size() || misprofile_latency_s_[g] < 0.0)
      continue;
    if (out.misprofile_latency_s_.empty()) {
      out.misprofile_latency_s_.assign(proc_count, -1.0);
      out.misprofile_repair_s_.assign(proc_count, 0.0);
    }
    out.misprofile_latency_s_[i] = misprofile_latency_s_[g];
    out.misprofile_repair_s_[i] =
        g < misprofile_repair_s_.size() ? misprofile_repair_s_[g] : 0.0;
    ++out.misprofile_count_;
  }
  out.dropouts_ = dropouts_;
  out.forecast_error_ = forecast_error_;
  out.forecast_seed_ = forecast_seed_;
  out.crac_derate_ = crac_derate_;
  out.crac_start_s_ = crac_start_s_;
  out.crac_duration_s_ = crac_duration_s_;
  out.max_retries_ = max_retries_;
  return out;
}

}  // namespace iscope
