#include "fault/noisy_forecast.hpp"

#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace iscope {

NoisyForecaster::NoisyForecaster(const WindForecaster* base, double error,
                                 std::uint64_t seed)
    : base_(base), error_(error), seed_(seed) {
  ISCOPE_CHECK_ARG(base != nullptr, "NoisyForecaster needs a base forecaster");
  ISCOPE_CHECK_ARG(std::isfinite(error) && error >= 0.0 && error < 1.0,
                   "forecast error must be in [0, 1)");
}

Watts NoisyForecaster::forecast_mean(Seconds now, Seconds horizon) const {
  const Watts base = base_->forecast_mean(now, horizon);
  if (error_ == 0.0) return base;
  // Stateless noise: hash the query coordinates so the factor depends only
  // on (seed, now, horizon), never on query order.
  std::uint64_t h = seed_;
  h = splitmix64(h ^ std::bit_cast<std::uint64_t>(now.raw()));
  h = splitmix64(h ^ std::bit_cast<std::uint64_t>(horizon.raw()));
  const double u =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform in [0, 1)
  const double factor = 1.0 - error_ + 2.0 * error_ * u;
  return Watts{base.raw() * factor};
}

}  // namespace iscope
