// Thermal model of the facility: heat recirculation and CRAC cooling.
//
// The paper's Eq-2 charges cooling as a flat (1 + 1/COP) overhead on
// compute power. That hides the mechanism that actually drives a CRAC
// bill: hot exhaust air recirculating into rack inlets forces the CRAC to
// blow *colder* supply air, and a chiller's coefficient of performance
// drops super-linearly as the supply temperature falls. This subsystem
// models that loop over the PR 6 rack/row topology:
//
//   1. A dense racks x racks *heat-recirculation matrix* A maps the power
//      vector P (watts dissipated per rack) to inlet temperature rises:
//      rise = A * P. The matrix is a pure function of the topology --
//      racks in the same hot/cold-aisle row couple by distance decay,
//      adjacent rows couple weaker -- in the spirit of the
//      cross-interference matrices measured by Tang et al. and used by
//      the geedo0 exemplar's MinHR policy.
//   2. The CRAC supplies air at T_sup = clamp(red_line - max_rise), i.e.
//      just cold enough that the hottest inlet stays at the ASHRAE
//      red-line temperature.
//   3. Cooling power = IT load / COP(T_sup), with the HP chilled-water
//      COP curve COP(T) = 0.0068 T^2 + 0.0008 T + 0.458.
//
// The model is deliberately a pure function solve(P) -> (T_sup, COP):
// the simulator owns *when* it is evaluated (at supply epochs, on the
// coordinator for sharded runs) so that flat and sharded runs resolve
// recirculation from bit-identical inputs. Nothing here schedules events
// or holds mutable state.
#pragma once

#include <cstddef>
#include <vector>

#include "hardware/topology.hpp"

namespace iscope {

/// Tuning knobs of the thermal subsystem. Disabled by default: a
/// default-constructed config must leave every simulation bit-identical
/// to a build that has never heard of thermals.
struct ThermalConfig {
  bool enabled = false;

  /// ASHRAE-style red-line inlet temperature the CRAC must hold the
  /// hottest rack at (deg C).
  double red_line_c = 30.0;
  /// CRAC supply-temperature actuation range (deg C). The supply is
  /// clamped to [min, max]; a facility whose recirculation exceeds
  /// red_line - min_supply simply runs its hottest inlets past the red
  /// line (reported via peak_inlet_c).
  double min_supply_c = 15.0;
  double max_supply_c = 25.0;

  /// Self-coupling of a rack onto its own inlet (K per watt). The K/W
  /// figure scales inversely with rack airflow: Tang et al.'s ~2.5e-4
  /// K/W (a 20 kW raised-floor rack self-heating ~5 K) becomes ~1e-3
  /// K/W for this facility's low-density ~2-3 kW socket racks, which
  /// move proportionally less air for the same recirculation fraction.
  double self_coupling_k_per_w = 1.0e-3;
  /// Exponential decay distance (in racks) of same-row coupling.
  double row_decay_racks = 2.0;
  /// Relative strength of coupling across adjacent rows (hot aisle
  /// shared between row pairs) and its decay distance in rows.
  double cross_row_coupling = 0.25;
  double cross_row_decay_rows = 1.0;

  void validate() const;
};

/// HP chilled-water CRAC efficiency at supply temperature `supply_c`:
/// COP(T) = 0.0068 T^2 + 0.0008 T + 0.458 (Moore et al., "Making
/// Scheduling Cool"). Colder supply -> smaller COP -> more cooling watts
/// per IT watt.
double crac_cop(double supply_c);

/// Dense racks x racks cross-interference matrix: entry (i, j) is the
/// inlet temperature rise at rack i per watt dissipated in rack j. Built
/// once from the topology; rows/columns follow global rack ids.
class RecirculationMatrix {
 public:
  RecirculationMatrix(const ThermalConfig& config,
                      const TopologyConfig& topo, std::size_t racks);

  std::size_t racks() const { return racks_; }

  /// a(i, j): rise at rack i per watt in rack j.
  double at(std::size_t i, std::size_t j) const {
    return cells_[i * racks_ + j];
  }

  /// Column sum of rack j: the total facility-wide inlet rise one watt
  /// placed in rack j causes (geedo0's MinHR ranking key). Racks in the
  /// middle of a row recirculate more than racks at the ends.
  double heat_weight(std::size_t j) const { return weights_[j]; }
  const std::vector<double>& heat_weights() const { return weights_; }

 private:
  std::size_t racks_ = 0;
  std::vector<double> cells_;    ///< row-major racks_ x racks_
  std::vector<double> weights_;  ///< column sums
};

/// One thermal resolution: the CRAC operating point for a given rack
/// power vector.
struct ThermalSolution {
  double supply_c = 0.0;      ///< CRAC supply-air temperature (deg C)
  double cop = 0.0;           ///< chiller COP at that supply temperature
  double max_rise_c = 0.0;    ///< hottest inlet rise over supply (K)
  double peak_inlet_c = 0.0;  ///< supply_c + max_rise_c
};

/// The solver: owns the matrix, exposes the pure epoch-step function.
class ThermalModel {
 public:
  ThermalModel(const ThermalConfig& config, const TopologyConfig& topo,
               std::size_t racks);

  const ThermalConfig& config() const { return config_; }
  const RecirculationMatrix& matrix() const { return matrix_; }

  /// Resolve the CRAC operating point for per-rack IT power `rack_w`
  /// (watts, indexed by global rack id; must have size racks()).
  /// `derate_factor` scales the chiller COP (fault injection: a degraded
  /// CRAC window passes < 1); the COP is floored at a small positive
  /// value so cooling power stays finite.
  ThermalSolution solve(const std::vector<double>& rack_w,
                        double derate_factor = 1.0) const;

 private:
  ThermalConfig config_;
  RecirculationMatrix matrix_;
  mutable std::vector<double> rise_;  ///< scratch, solve() is logically const
};

}  // namespace iscope
