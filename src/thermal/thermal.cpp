#include "thermal/thermal.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace iscope {

void ThermalConfig::validate() const {
  ISCOPE_CHECK_ARG(min_supply_c < max_supply_c,
                   "Thermal: min_supply_c must be below max_supply_c");
  ISCOPE_CHECK_ARG(red_line_c >= max_supply_c,
                   "Thermal: red_line_c must be at or above max_supply_c");
  ISCOPE_CHECK_ARG(self_coupling_k_per_w >= 0.0,
                   "Thermal: self_coupling_k_per_w must be >= 0");
  ISCOPE_CHECK_ARG(row_decay_racks > 0.0,
                   "Thermal: row_decay_racks must be > 0");
  ISCOPE_CHECK_ARG(cross_row_coupling >= 0.0 && cross_row_coupling <= 1.0,
                   "Thermal: cross_row_coupling must be in [0, 1]");
  ISCOPE_CHECK_ARG(cross_row_decay_rows > 0.0,
                   "Thermal: cross_row_decay_rows must be > 0");
}

double crac_cop(double supply_c) {
  return 0.0068 * supply_c * supply_c + 0.0008 * supply_c + 0.458;
}

RecirculationMatrix::RecirculationMatrix(const ThermalConfig& config,
                                         const TopologyConfig& topo,
                                         std::size_t racks)
    : racks_(racks) {
  config.validate();
  topo.validate();
  ISCOPE_CHECK_ARG(racks > 0, "RecirculationMatrix: empty facility");
  cells_.assign(racks_ * racks_, 0.0);
  weights_.assign(racks_, 0.0);
  const double per_row = static_cast<double>(topo.racks_per_row);
  for (std::size_t i = 0; i < racks_; ++i) {
    const std::size_t row_i = i / topo.racks_per_row;
    const double pos_i = static_cast<double>(i % topo.racks_per_row);
    for (std::size_t j = 0; j < racks_; ++j) {
      const std::size_t row_j = j / topo.racks_per_row;
      const double pos_j = static_cast<double>(j % topo.racks_per_row);
      // Same-row coupling decays with rack distance along the aisle;
      // cross-row coupling is weaker and decays with row distance, with
      // the rack positions still mattering (exhaust plumes stay local).
      const double rack_dist = std::abs(pos_i - pos_j);
      const double row_dist = static_cast<double>(
          row_i > row_j ? row_i - row_j : row_j - row_i);
      double coupling =
          std::exp(-rack_dist / config.row_decay_racks);
      if (row_dist > 0.0)
        coupling *= config.cross_row_coupling *
                    std::exp(-(row_dist - 1.0) / config.cross_row_decay_rows);
      cells_[i * racks_ + j] = config.self_coupling_k_per_w * coupling;
    }
    // Normalize each row so the facility-average column weight is
    // independent of row width: long rows would otherwise accumulate
    // more neighbour terms than short ones and run structurally hotter.
    double row_sum = 0.0;
    for (std::size_t j = 0; j < racks_; ++j) row_sum += cells_[i * racks_ + j];
    if (row_sum > 0.0) {
      const double scale =
          config.self_coupling_k_per_w * std::min(per_row, 4.0) / row_sum;
      for (std::size_t j = 0; j < racks_; ++j) cells_[i * racks_ + j] *= scale;
    }
  }
  for (std::size_t j = 0; j < racks_; ++j) {
    double col = 0.0;
    for (std::size_t i = 0; i < racks_; ++i) col += cells_[i * racks_ + j];
    weights_[j] = col;
  }
}

ThermalModel::ThermalModel(const ThermalConfig& config,
                           const TopologyConfig& topo, std::size_t racks)
    : config_(config), matrix_(config, topo, racks), rise_(racks, 0.0) {}

ThermalSolution ThermalModel::solve(const std::vector<double>& rack_w,
                                    double derate_factor) const {
  ISCOPE_CHECK_ARG(rack_w.size() == matrix_.racks(),
                   "ThermalModel: rack power vector size mismatch");
  ISCOPE_CHECK_ARG(derate_factor > 0.0 && derate_factor <= 1.0,
                   "ThermalModel: derate_factor must be in (0, 1]");
  const std::size_t n = matrix_.racks();
  double max_rise = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double r = 0.0;
    for (std::size_t j = 0; j < n; ++j) r += matrix_.at(i, j) * rack_w[j];
    rise_[i] = r;
    max_rise = std::max(max_rise, r);
  }
  ThermalSolution out;
  out.max_rise_c = max_rise;
  out.supply_c = std::clamp(config_.red_line_c - max_rise,
                            config_.min_supply_c, config_.max_supply_c);
  out.peak_inlet_c = out.supply_c + max_rise;
  // A degraded CRAC removes less heat per watt of chiller input; floor
  // the effective COP so cooling power stays finite even under extreme
  // derating.
  out.cop = std::max(0.2, crac_cop(out.supply_c) * derate_factor);
  return out;
}

}  // namespace iscope
