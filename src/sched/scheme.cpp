#include "sched/scheme.hpp"

#include "common/error.hpp"

namespace iscope {

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kBinRan: return "BinRan";
    case Scheme::kBinEffi: return "BinEffi";
    case Scheme::kScanRan: return "ScanRan";
    case Scheme::kScanEffi: return "ScanEffi";
    case Scheme::kScanFair: return "ScanFair";
  }
  return "?";
}

Scheme scheme_from_name(const std::string& name) {
  for (const Scheme s : kAllSchemes)
    if (name == scheme_name(s)) return s;
  throw InvalidArgument("unknown scheme name: " + name);
}

KnowledgeSource scheme_knowledge(Scheme scheme) {
  switch (scheme) {
    case Scheme::kBinRan:
    case Scheme::kBinEffi:
      return KnowledgeSource::kBin;
    case Scheme::kScanRan:
    case Scheme::kScanEffi:
    case Scheme::kScanFair:
      return KnowledgeSource::kScan;
  }
  throw InvalidArgument("unknown scheme");
}

PlacementRule scheme_rule(Scheme scheme) {
  switch (scheme) {
    case Scheme::kBinRan:
    case Scheme::kScanRan:
      return PlacementRule::kRandom;
    case Scheme::kBinEffi:
    case Scheme::kScanEffi:
      return PlacementRule::kEfficiency;
    case Scheme::kScanFair:
      return PlacementRule::kFair;
  }
  throw InvalidArgument("unknown scheme");
}

bool scheme_uses_scan(Scheme scheme) {
  return scheme_knowledge(scheme) == KnowledgeSource::kScan;
}

}  // namespace iscope
