#include "sched/scheme.hpp"

#include <deque>
#include <mutex>
#include <utility>

#include "common/error.hpp"

namespace iscope {

struct SchemeRegistry::Impl {
  mutable std::mutex mutex;
  /// Index == scheme id. Deque so the SchemeInfo references handed out by
  /// info() survive later registrations (push_back never relocates).
  std::deque<SchemeInfo> infos;
};

SchemeRegistry::SchemeRegistry() : impl_(new Impl) {
  // The paper's five, at the ids the Scheme enumerators pin down.
  impl_->infos.push_back(
      {"BinRan", KnowledgeSource::kBin, PlacementRule::kRandom});
  impl_->infos.push_back(
      {"BinEffi", KnowledgeSource::kBin, PlacementRule::kEfficiency});
  impl_->infos.push_back(
      {"ScanRan", KnowledgeSource::kScan, PlacementRule::kRandom});
  impl_->infos.push_back(
      {"ScanEffi", KnowledgeSource::kScan, PlacementRule::kEfficiency});
  impl_->infos.push_back(
      {"ScanFair", KnowledgeSource::kScan, PlacementRule::kFair});
}

SchemeRegistry& SchemeRegistry::global() {
  static SchemeRegistry* instance = new SchemeRegistry;  // never destroyed
  return *instance;
}

Scheme SchemeRegistry::register_scheme(std::string name,
                                       KnowledgeSource knowledge,
                                       PlacementRule rule, bool thermal,
                                       bool sleep) {
  ISCOPE_CHECK_ARG(!name.empty(), "SchemeRegistry: empty scheme name");
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const SchemeInfo& info : impl_->infos)
    if (info.name == name)
      throw InvalidArgument("SchemeRegistry: duplicate scheme name: " + name);
  constexpr std::size_t kMax = 256;  // Scheme is uint8_t
  if (impl_->infos.size() >= kMax)
    throw InvalidArgument("SchemeRegistry: scheme id space exhausted");
  const auto id = static_cast<Scheme>(impl_->infos.size());
  impl_->infos.push_back({std::move(name), knowledge, rule, thermal, sleep});
  return id;
}

const SchemeInfo& SchemeRegistry::info(Scheme scheme) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto id = static_cast<std::size_t>(scheme);
  if (id >= impl_->infos.size())
    throw InvalidArgument("SchemeRegistry: unknown scheme id " +
                          std::to_string(id));
  return impl_->infos[id];
}

Scheme SchemeRegistry::from_name(const std::string& name) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (std::size_t i = 0; i < impl_->infos.size(); ++i)
    if (impl_->infos[i].name == name) return static_cast<Scheme>(i);
  throw InvalidArgument("unknown scheme name: " + name);
}

bool SchemeRegistry::known(Scheme scheme) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return static_cast<std::size_t>(scheme) < impl_->infos.size();
}

std::vector<Scheme> SchemeRegistry::all() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<Scheme> out;
  out.reserve(impl_->infos.size());
  for (std::size_t i = 0; i < impl_->infos.size(); ++i)
    out.push_back(static_cast<Scheme>(i));
  return out;
}

const char* scheme_name(Scheme scheme) {
  return SchemeRegistry::global().info(scheme).name.c_str();
}

Scheme scheme_from_name(const std::string& name) {
  return SchemeRegistry::global().from_name(name);
}

KnowledgeSource scheme_knowledge(Scheme scheme) {
  return SchemeRegistry::global().info(scheme).knowledge;
}

PlacementRule scheme_rule(Scheme scheme) {
  return SchemeRegistry::global().info(scheme).rule;
}

bool scheme_uses_scan(Scheme scheme) {
  return scheme_knowledge(scheme) == KnowledgeSource::kScan;
}

Scheme ensure_extended_schemes_registered() {
  // call_once so concurrent sweep workers cannot race the registrations
  // (ids are process-global; a double registration would throw on the
  // duplicate name).
  static const Scheme scan_therm = [] {
    SchemeRegistry& reg = SchemeRegistry::global();
    const Scheme therm =
        reg.register_scheme("ScanTherm", KnowledgeSource::kScan,
                            PlacementRule::kTherm, /*thermal=*/true);
    for (const Scheme base : kAllSchemes) {
      const SchemeInfo& info = reg.info(base);
      reg.register_scheme(info.name + "Sleep", info.knowledge, info.rule,
                          /*thermal=*/false, /*sleep=*/true);
    }
    return therm;
  }();
  return scan_therm;
}

}  // namespace iscope
