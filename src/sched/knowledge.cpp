#include "sched/knowledge.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace iscope {

Knowledge::Knowledge(const Cluster* cluster, KnowledgeSource source,
                     const ProfileDb* db)
    : Knowledge(cluster, source, db, 0,
                cluster != nullptr ? cluster->size() : 0) {}

Knowledge::Knowledge(const Cluster* cluster, KnowledgeSource source,
                     const ProfileDb* db, std::size_t proc_lo,
                     std::size_t proc_count)
    : cluster_(cluster),
      source_(source),
      db_(db),
      proc_lo_(proc_lo),
      proc_count_(proc_count) {
  ISCOPE_CHECK_ARG(cluster != nullptr, "Knowledge: null cluster");
  if (source == KnowledgeSource::kScan)
    ISCOPE_CHECK_ARG(db != nullptr, "Knowledge: Scan view needs a ProfileDb");
  ISCOPE_CHECK_ARG(proc_count > 0 && proc_lo + proc_count <= cluster->size(),
                   "Knowledge: slice outside the cluster");
  refresh();
}

std::size_t Knowledge::levels() const { return cluster_->levels().count(); }

void Knowledge::refresh() {
  ++generation_;
  const std::size_t n = proc_count_;
  const std::size_t nl = levels();
  vdd_.assign(n, std::vector<double>(nl, 0.0));
  power_.assign(n, std::vector<double>(nl, 0.0));
  efficiency_.assign(n, 0.0);
  quarantined_.resize(n, 0);
  scanned_.assign(n, 0);

  const Gigahertz f_top{cluster_->levels().freq_ghz[nl - 1]};
  // Bin-specified power: the population-mean Eq-1 chip at the bin voltage.
  const PowerCoefficients spec{
      WattsPerCubicGigahertz{cluster_->power_model().params().alpha_mean},
      Watts{cluster_->power_model().params().beta_mean}};
  for (std::size_t i = 0; i < n; ++i) {
    // Local index -> cluster id (identity for a full view, so the tables a
    // full slice builds are bit-identical to the historical ones).
    const std::size_t g = proc_lo_ + i;
    const ChipProfile* profile =
        (source_ == KnowledgeSource::kScan && db_ != nullptr) ? db_->find(g)
                                                              : nullptr;
    scanned_[i] = profile != nullptr ? 1 : 0;
    for (std::size_t l = 0; l < nl; ++l) {
      // The latest scan is the only *currently validated* safe bound: the
      // factory bin spec was validated at t=0 and silicon drifts past it
      // with age, so a discovered voltage above the bin spec must be
      // trusted, not capped. (Grid quantization can leave the discovered
      // value up to one grid step above the true minimum; keep the scan
      // grid fine -- see ScanConfig -- rather than second-guessing it.)
      const Volts v = profile != nullptr ? Volts{profile->chip_vdd.vdd(l)}
                                         : cluster_->bin_vdd(g, l);
      vdd_[i][l] = v.volts();
      // True chip power at the applied voltage (what the meter sees).
      power_[i][l] = cluster_->power(g, l, v).watts();
    }
    if (profile != nullptr) {
      // Scanned chip: measured power profile ranks it individually.
      efficiency_[i] = (Watts{power_[i][nl - 1]} / f_top).watts_per_ghz();
    } else {
      // Binned chip: only the bin's specified efficiency is known.
      efficiency_[i] =
          (cluster_->power_model().power(
               spec, f_top, cluster_->bin_vdd(g, nl - 1),
               Volts{cluster_->levels().vdd_nom[nl - 1]}) /
           f_top)
              .watts_per_ghz();
    }
  }

  efficiency_order_.resize(n);
  std::iota(efficiency_order_.begin(), efficiency_order_.end(), 0);
  std::sort(efficiency_order_.begin(), efficiency_order_.end(),
            [&](std::size_t a, std::size_t b) {
              if (efficiency_[a] != efficiency_[b])
                return efficiency_[a] < efficiency_[b];
              return a < b;
            });
}

void Knowledge::quarantine(std::size_t i) {
  ISCOPE_CHECK_ARG(i < quarantined_.size(), "Knowledge: proc out of range");
  ISCOPE_CHECK(quarantined_[i] == 0, "Knowledge: proc already quarantined");
  quarantined_[i] = 1;
  ++quarantined_count_;
  ++generation_;
}

void Knowledge::release(std::size_t i) {
  ISCOPE_CHECK_ARG(i < quarantined_.size(), "Knowledge: proc out of range");
  ISCOPE_CHECK(quarantined_[i] != 0, "Knowledge: proc not quarantined");
  quarantined_[i] = 0;
  --quarantined_count_;
  ++generation_;
}

void Knowledge::clear_quarantine() {
  if (quarantined_count_ == 0) return;
  std::fill(quarantined_.begin(), quarantined_.end(),
            static_cast<std::uint8_t>(0));
  quarantined_count_ = 0;
  ++generation_;
}

Volts Knowledge::vdd(std::size_t i, std::size_t level) const {
  ISCOPE_CHECK_ARG(i < vdd_.size(), "Knowledge: proc out of range");
  ISCOPE_CHECK_ARG(level < vdd_[i].size(), "Knowledge: level out of range");
  return Volts{vdd_[i][level]};
}

Watts Knowledge::power(std::size_t i, std::size_t level) const {
  ISCOPE_CHECK_ARG(i < power_.size(), "Knowledge: proc out of range");
  ISCOPE_CHECK_ARG(level < power_[i].size(), "Knowledge: level out of range");
  return Watts{power_[i][level]};
}

WattsPerGigahertz Knowledge::efficiency(std::size_t i) const {
  ISCOPE_CHECK_ARG(i < efficiency_.size(), "Knowledge: proc out of range");
  return WattsPerGigahertz{efficiency_[i]};
}

}  // namespace iscope
