// Scheduler knowledge views (paper Table 2, the Bin/Scan axis).
//
// The physical cluster has ground-truth Min Vdd curves, but a scheduler can
// only apply what it *knows*:
//
//  * kBin  -- factory binning only. Every chip runs each frequency level at
//             its bin's worst-case voltage, and chips inside a bin are
//             indistinguishable to the scheduler: the *believed* efficiency
//             of a chip is its bin's specified (population-mean) power, so
//             BinEffi can prefer better bins but cannot cherry-pick inside
//             one ("the scheduler cannot leverage the fine-grained
//             efficiency difference between processors in the same bin" --
//             paper Sec. IV-B).
//  * kScan -- in-cloud profiling. Each scanned chip runs at its own
//             discovered Min Vdd, and its measured power profile ranks it
//             individually; unscanned chips fall back to the bin view.
//
// `power` is always the chip's *true* power at the applied voltage --
// that is what the facility's power sensors meter and what the supply-
// demand matcher reacts to, whichever scheme is running. `efficiency` is
// the scheduler's belief and differs between the views.
//
// The view precomputes per-(processor, level) applied power and the
// efficiency score, since these are the scheduler's hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hardware/cluster.hpp"
#include "profiling/profile_db.hpp"

namespace iscope {

enum class KnowledgeSource : std::uint8_t { kBin, kScan };

class Knowledge {
 public:
  /// Factory-binning view. `db` may be null.
  Knowledge(const Cluster* cluster, KnowledgeSource source,
            const ProfileDb* db = nullptr);

  /// Slice view over processors [proc_lo, proc_lo + proc_count): the
  /// scheduler sees `proc_count` local processors 0..count-1, mapped onto
  /// the cluster's global ids by `global_proc`. A full slice (lo=0,
  /// count=cluster size) builds tables bit-identical to the whole-cluster
  /// constructor; the sharded simulator (sim/sharded.hpp) gives each shard
  /// a slice over its rack range.
  Knowledge(const Cluster* cluster, KnowledgeSource source,
            const ProfileDb* db, std::size_t proc_lo, std::size_t proc_count);

  KnowledgeSource source() const { return source_; }
  std::size_t procs() const { return power_.size(); }
  std::size_t levels() const;

  /// Cluster id of local processor `i` (identity for a full view).
  std::size_t global_proc(std::size_t i) const { return proc_lo_ + i; }
  /// First cluster id of this view's slice (0 for a full view).
  std::size_t proc_lo() const { return proc_lo_; }

  /// Voltage the datacenter applies to processor `i` at `level`.
  Volts vdd(std::size_t i, std::size_t level) const;

  /// Chip power of processor `i` at `level` under the applied voltage.
  Watts power(std::size_t i, std::size_t level) const;

  /// Believed efficiency score: W/GHz at the top level; lower is better.
  /// The Effi and Fair schedulers rank processors by this. Under kBin all
  /// chips of a bin share the score (specified, not measured, power).
  WattsPerGigahertz efficiency(std::size_t i) const;

  /// Processor ids sorted by ascending efficiency score (best first).
  const std::vector<std::size_t>& efficiency_order() const {
    return efficiency_order_;
  }

  const Cluster& cluster() const { return *cluster_; }

  /// Rebuild the cached tables (call after the ProfileDb gained profiles).
  /// Quarantine flags survive the rebuild.
  void refresh();

  /// Fault quarantine: a failed processor is withdrawn from scheduling
  /// (fault layer, see src/fault/). Both calls bump the generation so
  /// consumers drop caches derived from this view.
  void quarantine(std::size_t i);
  void release(std::size_t i);
  void clear_quarantine();

  bool quarantined(std::size_t i) const {
    return i < quarantined_.size() && quarantined_[i] != 0;
  }
  std::size_t quarantined_count() const { return quarantined_count_; }

  /// True when processor `i` runs at an individually scanned operating
  /// point (kScan view and the ProfileDb has its profile). Only such
  /// chips sit at the Min-Vdd margin, so only they can be mis-profiled
  /// (fault layer).
  bool scanned(std::size_t i) const {
    return i < scanned_.size() && scanned_[i] != 0;
  }

  /// Bumped by every refresh(). Consumers that derive state from this view
  /// (e.g. the simulator's per-task power tables) compare generations to
  /// detect that their caches went stale.
  std::uint64_t generation() const { return generation_; }

 private:
  const Cluster* cluster_;   // non-owning
  KnowledgeSource source_;
  const ProfileDb* db_;      // non-owning; may be null
  std::size_t proc_lo_ = 0;     ///< slice start (global id of local 0)
  std::size_t proc_count_ = 0;  ///< slice width (cluster size when full)
  std::uint64_t generation_ = 0;
  // Hot-path caches stay raw doubles (volts / watts / W-per-GHz); the
  // typed accessors wrap them at the boundary.
  std::vector<std::vector<double>> vdd_;    // [proc][level]
  std::vector<std::vector<double>> power_;  // [proc][level]
  std::vector<double> efficiency_;
  std::vector<std::size_t> efficiency_order_;
  std::vector<std::uint8_t> quarantined_;
  std::size_t quarantined_count_ = 0;
  std::vector<std::uint8_t> scanned_;
};

}  // namespace iscope
