// Supply-demand power matching (paper Sec. V-C).
//
// "Our experiments try to maximally utilize the renewable energy. If the
//  renewable power is not enough to run all the required processors at full
//  speed, DVFS is applied to reduce the frequency and power demand. We stop
//  lowering the frequency when some tasks are facing violation of their
//  deadlines. If the renewable power is still not enough at that time, we
//  will supplement utility power."
//
// The matcher re-decides every running task's DVFS level at each supply
// epoch and on task start/completion, in two phases:
//
//  1. Baseline: each task gets its *energy-optimal deadline-feasible* level
//     -- argmin over levels of  P(level) * slowdown(level)  (the energy to
//     finish the remaining work). Static power (beta in Eq-1) makes
//     crawling wasteful, so this is usually near, not at, the top level.
//  2. Wind fitting: while facility demand exceeds the available wind power
//     and wind is present at all, greedily take the DVFS down-step with the
//     largest power saving among tasks still above their deadline floor.
//     Any remaining gap is supplemented from the utility grid.
//
// With no wind at all (the paper's utility-only study) phase 2 is a no-op:
// there is no budget to fit under, and stretching execution would only burn
// more (expensive) static energy.
//
// Hot-path notes (DESIGN.md Sec. 9): a task's per-level power is invariant
// for its whole residency, so callers precompute it once at task start and
// hand it to the matcher via `ActiveTask::power_by_level` -- `task_power`
// is then O(1) instead of O(procs), and `match` with a caller-owned
// `MatchScratch` performs zero steady-state heap allocations. The
// pre-optimization path is retained verbatim as `match_reference` /
// `task_power_reference`; tests/test_match_equivalence.cpp asserts the two
// produce bit-identical schedules.
#pragma once

#include <cstddef>
#include <vector>

#include "sched/knowledge.hpp"
#include "sched/matcher_columns.hpp"

namespace iscope {

/// A running task as the matcher sees it.
struct ActiveTask {
  double remaining_work_s = 0.0;  ///< work left, in seconds-at-Fmax
  double deadline_s = 0.0;
  double gamma = 1.0;             ///< CPU-boundness (Eq-3)
  std::vector<std::size_t> procs; ///< processors it occupies
  /// Optional O(1) power table: entry l is the task's total IT power at
  /// level l in raw watts (sum over its processors, precomputed at task
  /// start). When set, `procs` may be left empty; when null, the matcher
  /// falls back to summing `procs` against the Knowledge view.
  const double* power_by_level = nullptr;
  std::size_t level = 0;          ///< matcher output: assigned DVFS level
};

struct MatchResult {
  Watts compute;           ///< IT power after matching
  Watts demand;            ///< facility power (IT * cooling factor)
  std::size_t steps = 0;   ///< phase-2 DVFS down-steps taken
};

/// Reusable buffers for PowerMatcher::match. A caller that keeps one
/// MatchScratch across calls allocates only until the buffers reach their
/// high-water marks; after that, matching is allocation-free.
struct MatchScratch {
  struct Step {
    Watts saving;
    std::size_t task;
    std::size_t to_level;
  };
  std::vector<std::size_t> floor;  ///< per-task deadline floor level
  std::vector<Step> heap;          ///< phase-2 down-step candidate heap
};

/// Cached greedy trajectory for the incremental delta-rematch
/// (DESIGN.md Sec. 14). Key fact: phase 2's pop/push/stale-skip sequence
/// never reads the wind budget -- the budget only decides where along that
/// canonical sequence the greedy STOPS. So one materialized solve caches
/// the whole trajectory (`log`, with the running compute after each
/// applied step), and a later epoch whose only change is the wind budget
/// re-positions a cursor on it instead of re-solving: binary search for
/// the stop prefix (the fit predicate is monotone along the log), rewind
/// or replay the touched tasks, done. The replay is *exact* -- bit-equal
/// levels and compute to a from-scratch solve, cost gap zero -- because
/// every stored value was produced by the identical operation sequence a
/// fresh solve would run (tests/test_match_equivalence.cpp, the
/// IncrementalIdentity suite and the 50-seed property test).
///
/// Validity: the cache assumes the row set, the per-row power/slowdown
/// tables and the deadline floors are those of the cached solve. The
/// simulator invalidates on task start/completion/requeue, Knowledge
/// generation bumps and rush-mode flips; match_incremental re-checks the
/// floors itself (the vectorized scan is cheap) and refuses when they
/// moved.
struct IncrementalMatchState {
  struct AppliedStep {
    Watts saving;         ///< power released by this down-step
    Watts compute_after;  ///< running compute after applying it
    std::size_t task;     ///< column row index
    std::size_t to_level; ///< level the task stepped down to
  };
  bool valid = false;
  /// Whether the caching solve built the down-step heap. A gated-off
  /// phase 2 (no wind, or floors alone over budget) skips heap
  /// construction entirely -- most structural rematches never see a
  /// fitting epoch before the next invalidation, so building the heap
  /// eagerly would be pure waste. A later epoch that *does* need to
  /// extend past the (empty) log with no heap falls back to a full
  /// solve, which then caches with a real heap.
  bool heap_built = false;
  Watts compute0;       ///< phase-1 compute (the cursor-0 state)
  Watts floor_compute;  ///< all-floors compute (the phase-2 gate)
  std::vector<AppliedStep> log;  ///< applied down-steps, in greedy order
  std::size_t cursor = 0;        ///< applied prefix length = current state
  /// Down-step heap as of state log.size(); extending the trajectory past
  /// the deepest materialized point keeps popping from here. The caching
  /// solve builds and drives this vector in place (no copy): after its
  /// greedy loop the heap is exactly the state the extension path needs.
  std::vector<MatchScratch::Step> heap;

  void invalidate() {
    valid = false;
    heap_built = false;
    cursor = 0;
    log.clear();  // clear(), not reassign: keeps warmed-up capacity
    heap.clear();
  }
};

class PowerMatcher {
 public:
  /// `cooling_factor` is (1 + 1/COP) from Eq-2.
  PowerMatcher(const Knowledge* knowledge, double cooling_factor);

  /// Lowest level at which `task` still meets its deadline starting `now_s`;
  /// returns the top level if even that misses (run flat out, QoS best
  /// effort).
  std::size_t min_feasible_level(const ActiveTask& task, double now_s) const;

  /// Energy-optimal level in [floor, top]: minimizes P(l) * slowdown(l).
  std::size_t energy_optimal_level(const ActiveTask& task,
                                   std::size_t floor) const;

  /// Assign levels to all tasks; see file comment for the algorithm.
  /// Allocation-free once `scratch` has warmed up.
  MatchResult match(std::vector<ActiveTask>& tasks, Watts wind_avail,
                    double now_s, MatchScratch& scratch) const;

  /// Convenience overload with throwaway scratch (tests, one-off callers).
  MatchResult match(std::vector<ActiveTask>& tasks, Watts wind_avail,
                    double now_s) const;

  /// SoA full solve over MatcherColumns rows: the same two phases as
  /// `match`, with the floor scan batched through the vectorized kernel
  /// and the energy argmin collapsed to the precomputed best_from table.
  /// Rows must be in running-list order (ordered FP sums and equal-saving
  /// tiebreaks; see matcher_columns.hpp). Fills cols.floor/cols.level.
  /// When `inc` is non-null the greedy trajectory is cached there for
  /// match_incremental; the phase-2 heap is built directly in `inc->heap`
  /// (and only when phase 2 is live -- see heap_built).
  MatchResult match_columns(MatcherColumns& cols, Watts wind_avail,
                            double now_s, MatchScratch& scratch,
                            IncrementalMatchState* inc = nullptr) const;

  /// Incremental delta-rematch: re-solve assuming only the wind budget
  /// moved since the solve that filled `inc`. Returns false (caller falls
  /// back to match_columns) when the cache is invalid or any deadline
  /// floor moved; on true, `out` and cols.level are bit-identical to what
  /// a full solve would produce.
  bool match_incremental(MatcherColumns& cols, Watts wind_avail,
                         double now_s, MatchScratch& scratch,
                         IncrementalMatchState& inc, MatchResult& out) const;

  /// Retained pre-optimization implementation (priority_queue, O(procs)
  /// power sums). Reference for the scheduler-equivalence suite; not a hot
  /// path.
  MatchResult match_reference(std::vector<ActiveTask>& tasks,
                              Watts wind_avail, double now_s) const;

  /// IT power of one task at one level: `power_by_level` lookup when the
  /// task carries a table, else the O(procs) sum.
  Watts task_power(const ActiveTask& task, std::size_t level) const {
    if (task.power_by_level != nullptr)
      return Watts{task.power_by_level[level]};
    return task_power_reference(task, level);
  }

  /// The original O(procs) power sum over the Knowledge view.
  Watts task_power_reference(const ActiveTask& task, std::size_t level) const;

  /// Eq-3 slowdown of a task at a level.
  double slowdown(const ActiveTask& task, std::size_t level) const;

  double cooling_factor() const { return cooling_factor_; }

 private:
  const Knowledge* knowledge_;  // non-owning
  double cooling_factor_;
  /// Precomputed (fmax / f_l - 1.0) per level; slowdown() is then one
  /// fma instead of a division (bit-identical: same operation sequence,
  /// the division is just hoisted to construction).
  std::vector<double> slowdown_ratio_;
};

}  // namespace iscope
