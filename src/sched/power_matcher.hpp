// Supply-demand power matching (paper Sec. V-C).
//
// "Our experiments try to maximally utilize the renewable energy. If the
//  renewable power is not enough to run all the required processors at full
//  speed, DVFS is applied to reduce the frequency and power demand. We stop
//  lowering the frequency when some tasks are facing violation of their
//  deadlines. If the renewable power is still not enough at that time, we
//  will supplement utility power."
//
// The matcher re-decides every running task's DVFS level at each supply
// epoch and on task start/completion, in two phases:
//
//  1. Baseline: each task gets its *energy-optimal deadline-feasible* level
//     -- argmin over levels of  P(level) * slowdown(level)  (the energy to
//     finish the remaining work). Static power (beta in Eq-1) makes
//     crawling wasteful, so this is usually near, not at, the top level.
//  2. Wind fitting: while facility demand exceeds the available wind power
//     and wind is present at all, greedily take the DVFS down-step with the
//     largest power saving among tasks still above their deadline floor.
//     Any remaining gap is supplemented from the utility grid.
//
// With no wind at all (the paper's utility-only study) phase 2 is a no-op:
// there is no budget to fit under, and stretching execution would only burn
// more (expensive) static energy.
#pragma once

#include <cstddef>
#include <vector>

#include "sched/knowledge.hpp"

namespace iscope {

/// A running task as the matcher sees it.
struct ActiveTask {
  double remaining_work_s = 0.0;  ///< work left, in seconds-at-Fmax
  double deadline_s = 0.0;
  double gamma = 1.0;             ///< CPU-boundness (Eq-3)
  std::vector<std::size_t> procs; ///< processors it occupies
  std::size_t level = 0;          ///< matcher output: assigned DVFS level
};

struct MatchResult {
  Watts compute;           ///< IT power after matching
  Watts demand;            ///< facility power (IT * cooling factor)
  std::size_t steps = 0;   ///< phase-2 DVFS down-steps taken
};

class PowerMatcher {
 public:
  /// `cooling_factor` is (1 + 1/COP) from Eq-2.
  PowerMatcher(const Knowledge* knowledge, double cooling_factor);

  /// Lowest level at which `task` still meets its deadline starting `now_s`;
  /// returns the top level if even that misses (run flat out, QoS best
  /// effort).
  std::size_t min_feasible_level(const ActiveTask& task, double now_s) const;

  /// Energy-optimal level in [floor, top]: minimizes P(l) * slowdown(l).
  std::size_t energy_optimal_level(const ActiveTask& task,
                                   std::size_t floor) const;

  /// Assign levels to all tasks; see file comment for the algorithm.
  MatchResult match(std::vector<ActiveTask>& tasks, Watts wind_avail,
                    double now_s) const;

  /// IT power of one task at one level (sum over its processors).
  Watts task_power(const ActiveTask& task, std::size_t level) const;

  /// Eq-3 slowdown of a task at a level.
  double slowdown(const ActiveTask& task, std::size_t level) const;

  double cooling_factor() const { return cooling_factor_; }

 private:
  const Knowledge* knowledge_;  // non-owning
  double cooling_factor_;
};

}  // namespace iscope
