// Scheduling schemes: the five evaluated in the paper (Table 2) plus an
// extension registry.
//
//   Name      Profiling  Scheduling algorithm
//   BinRan    no         random
//   BinEffi   no         minimize energy
//   ScanRan   dynamic    random
//   ScanEffi  dynamic    minimize energy
//   ScanFair  dynamic    minimize energy + balance utilization (iScope default)
//
// A scheme is a (knowledge source, placement rule) pair with a stable
// string name. The five paper schemes are baked in with fixed ids (the
// `Scheme` enumerators below, which CLI flags, sweep configs, and the
// committed baselines reference by name); further combinations -- e.g. a
// binned-knowledge Fair -- can be added at runtime through SchemeRegistry
// and then flow through scheme_from_name()/run_scheme() exactly like the
// built-ins.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sched/knowledge.hpp"
#include "sched/policy.hpp"

namespace iscope {

/// Scheme id. The named enumerators are the paper's five; values >= 5 are
/// runtime-registered combinations (still valid `Scheme`s -- the type is
/// an id, not a closed set).
enum class Scheme : std::uint8_t {
  kBinRan,
  kBinEffi,
  kScanRan,
  kScanEffi,
  kScanFair,
};

/// All five paper schemes in the paper's presentation order.
inline constexpr std::array<Scheme, 5> kAllSchemes = {
    Scheme::kBinRan, Scheme::kBinEffi, Scheme::kScanRan, Scheme::kScanEffi,
    Scheme::kScanFair};

/// What a scheme id resolves to.
struct SchemeInfo {
  std::string name;           ///< stable lookup key (CLI, configs, baselines)
  KnowledgeSource knowledge;  ///< kBin (static binning) or kScan (profiled)
  PlacementRule rule;         ///< placement / DVFS policy family
  /// Scheme-level feature requests, applied by run_scheme() on top of the
  /// caller's SimConfig: `thermal` turns the CRAC/recirculation model on;
  /// `sleep` enables C-state management (timeout policy unless the config
  /// already picked one). Both false for the paper five.
  bool thermal = false;
  bool sleep = false;
};

/// Process-wide scheme table: name -> (knowledge, rule) factory inputs.
/// The five paper schemes are pre-registered at ids 0-4 under their
/// historical names. Thread-safe; registered schemes are never removed, so
/// the references `info()` hands out stay valid for the process lifetime.
class SchemeRegistry {
 public:
  /// The process-wide registry (created on first use, paper schemes
  /// pre-registered).
  static SchemeRegistry& global();

  /// Register a new scheme under a unique name; returns its id. Throws
  /// InvalidArgument on a duplicate name and when the 8-bit id space is
  /// exhausted.
  Scheme register_scheme(std::string name, KnowledgeSource knowledge,
                         PlacementRule rule, bool thermal = false,
                         bool sleep = false);

  /// Resolve an id. Throws InvalidArgument for ids never registered.
  const SchemeInfo& info(Scheme scheme) const;

  /// Resolve a name (exact match). Throws InvalidArgument when unknown.
  Scheme from_name(const std::string& name) const;

  /// True when `scheme` is a registered id.
  bool known(Scheme scheme) const;

  /// All registered ids, in registration order (paper five first).
  std::vector<Scheme> all() const;

 private:
  SchemeRegistry();

  struct Impl;
  Impl* impl_;  ///< leaked on purpose: registry lives for the process
};

/// Convenience wrappers over SchemeRegistry::global(); same contracts.
const char* scheme_name(Scheme scheme);
Scheme scheme_from_name(const std::string& name);
KnowledgeSource scheme_knowledge(Scheme scheme);
PlacementRule scheme_rule(Scheme scheme);

/// True for schemes that run the in-cloud scanner.
bool scheme_uses_scan(Scheme scheme);

/// Register the thermal/sleep scheme family (idempotent, thread-safe):
/// `ScanTherm` -- scanned knowledge with recirculation-aware placement and
/// the thermal model forced on -- plus sleep-enabled variants of the paper
/// five (`BinRanSleep` ... `ScanFairSleep`). Returns ScanTherm's id; the
/// variants resolve by name. Call before scheme_from_name() on any of
/// these names (the CLI, benches, and tests do).
Scheme ensure_extended_schemes_registered();

}  // namespace iscope
