// The five evaluated schemes (paper Table 2).
//
//   Name      Profiling  Scheduling algorithm
//   BinRan    no         random
//   BinEffi   no         minimize energy
//   ScanRan   dynamic    random
//   ScanEffi  dynamic    minimize energy
//   ScanFair  dynamic    minimize energy + balance utilization (iScope default)
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sched/knowledge.hpp"
#include "sched/policy.hpp"

namespace iscope {

enum class Scheme : std::uint8_t {
  kBinRan,
  kBinEffi,
  kScanRan,
  kScanEffi,
  kScanFair,
};

/// All five schemes in the paper's presentation order.
inline constexpr std::array<Scheme, 5> kAllSchemes = {
    Scheme::kBinRan, Scheme::kBinEffi, Scheme::kScanRan, Scheme::kScanEffi,
    Scheme::kScanFair};

const char* scheme_name(Scheme scheme);
Scheme scheme_from_name(const std::string& name);

KnowledgeSource scheme_knowledge(Scheme scheme);
PlacementRule scheme_rule(Scheme scheme);

/// True for schemes that run the in-cloud scanner.
bool scheme_uses_scan(Scheme scheme);

}  // namespace iscope
