// Structure-of-arrays state for the matcher hot path (DESIGN.md Sec. 14).
//
// The AoS matcher view (`std::vector<ActiveTask>`) scatters each task's
// remaining work, deadline and per-level power behind a pointer chase; the
// per-epoch rematch walks all of it twice (floor scan + energy argmin).
// MatcherColumns keeps the same data as contiguous columns, one row per
// running task, in *running-list order* -- the matcher's floating-point
// sums and equal-saving heap tiebreaks are order-sensitive, so row order
// mirroring the intrusive run list is what keeps the SoA path bit-identical
// to the AoS one.
//
// Row lifecycle: `append` at task start (link_running order), compacting
// order-preserving `remove` at completion/requeue, `refresh_derived` when
// the Knowledge generation moves (power rows changed under the task).
// Derived per-row tables:
//
//  * slowdown[row][l]  -- Eq-3 slowdown, gamma * (fmax/f_l - 1) + 1.0,
//    residency-constant (gamma and the ratio table never change);
//  * power[row][l]     -- the task's IT power per level, a straight copy of
//    the sim's power_table_ row (generation-tracked);
//  * best_from[row][f] -- the energy-optimal level for every possible
//    deadline floor f, precomputed by suffix scan (soa_kernels.hpp). The
//    per-rematch "energy argmin over levels" collapses to one table read.
//
// All storage is reserved up front (`reset(levels, max_rows)`), and
// append/remove only shift within reserved capacity, so steady-state
// maintenance is allocation-free (tests/test_rematch_alloc.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "sched/soa_kernels.hpp"

namespace iscope {

struct MatcherColumns {
  static constexpr std::size_t kNoRow = static_cast<std::size_t>(-1);

  std::size_t levels = 0;  ///< DVFS level count (row stride)
  std::size_t count = 0;   ///< live rows

  // Per-row scalars (index = row).
  std::vector<std::size_t> task;   ///< owning simulator task index
  std::vector<double> remaining;   ///< work left, seconds-at-Fmax
  std::vector<double> deadline;    ///< absolute deadline [s]
  std::vector<std::size_t> floor;  ///< matcher scratch: deadline floor
  std::vector<std::size_t> level;  ///< matcher output: assigned level

  // Per-row level-indexed blocks (index = row * levels + l).
  std::vector<double> slowdown;        ///< Eq-3 slowdown per level
  std::vector<double> power;           ///< IT power per level, raw watts
  std::vector<std::uint8_t> best_from; ///< energy-optimal level per floor

  /// Reset to empty and reserve for `max_rows` rows so steady-state
  /// append/remove stays allocation-free. Keeps existing capacity.
  void reset(std::size_t level_count, std::size_t max_rows) {
    ISCOPE_CHECK_ARG(level_count > 0 && level_count <= 255,
                     "MatcherColumns: level count must fit the uint8 "
                     "best_from table");
    levels = level_count;
    count = 0;
    task.clear();
    remaining.clear();
    deadline.clear();
    floor.clear();
    level.clear();
    slowdown.clear();
    power.clear();
    best_from.clear();
    task.reserve(max_rows);
    remaining.reserve(max_rows);
    deadline.reserve(max_rows);
    floor.reserve(max_rows);
    level.reserve(max_rows);
    slowdown.reserve(max_rows * levels);
    power.reserve(max_rows * levels);
    best_from.reserve(max_rows * levels);
  }

  /// Append a row at the end (running-list append order). The caller fills
  /// the derived blocks via `fill_row` right after. Returns the row index.
  std::size_t append(std::size_t task_idx, double remaining_s,
                     double deadline_s) {
    task.push_back(task_idx);
    remaining.push_back(remaining_s);
    deadline.push_back(deadline_s);
    floor.push_back(0);
    level.push_back(0);
    slowdown.resize(slowdown.size() + levels, 0.0);
    power.resize(power.size() + levels, 0.0);
    best_from.resize(best_from.size() + levels, 0);
    return count++;
  }

  /// Compute the derived blocks of one row: the Eq-3 slowdown per level
  /// (identical expression to PowerMatcher::slowdown), the power row
  /// (copied from the sim's generation-tracked table), and the
  /// energy-optimal-per-floor table.
  void fill_row(std::size_t row, double gamma, const double* slowdown_ratio,
                const double* power_row) {
    double* srow = slowdown.data() + row * levels;
    double* prow = power.data() + row * levels;
    for (std::size_t l = 0; l < levels; ++l) {
      srow[l] = gamma * slowdown_ratio[l] + 1.0;
      prow[l] = power_row[l];
    }
    soa::best_from_fill(prow, srow, levels, best_from.data() + row * levels);
  }

  /// Refresh the power-derived blocks of one row after a Knowledge
  /// generation bump (slowdown is residency-constant and left alone).
  void refresh_power(std::size_t row, const double* power_row) {
    double* prow = power.data() + row * levels;
    for (std::size_t l = 0; l < levels; ++l) prow[l] = power_row[l];
    soa::best_from_fill(prow, slowdown.data() + row * levels, levels,
                        best_from.data() + row * levels);
  }

  /// Order-preserving removal: rows after `row` shift down one slot (the
  /// SoA analogue of the intrusive list's middle unlink). O(rows) moves,
  /// no allocation. Callers must re-point their row handles for every
  /// shifted task (the returned row indices of `task[row..]` moved by -1).
  void remove(std::size_t row) {
    const auto r = static_cast<std::ptrdiff_t>(row);
    task.erase(task.begin() + r);
    remaining.erase(remaining.begin() + r);
    deadline.erase(deadline.begin() + r);
    floor.erase(floor.begin() + r);
    level.erase(level.begin() + r);
    const auto b = static_cast<std::ptrdiff_t>(row * levels);
    const auto e = static_cast<std::ptrdiff_t>((row + 1) * levels);
    slowdown.erase(slowdown.begin() + b, slowdown.begin() + e);
    power.erase(power.begin() + b, power.begin() + e);
    best_from.erase(best_from.begin() + b, best_from.begin() + e);
    --count;
  }

  const double* slowdown_row(std::size_t row) const {
    return slowdown.data() + row * levels;
  }
  const double* power_row(std::size_t row) const {
    return power.data() + row * levels;
  }
  const std::uint8_t* best_from_row(std::size_t row) const {
    return best_from.data() + row * levels;
  }
};

}  // namespace iscope
