// Explicit AVX2 kernels for the SoA matcher scan (soa_kernels.hpp).
//
// This translation unit is the only one built with -mavx2, and it adds
// -ffp-contract=off (src/sched/CMakeLists.txt): the kernels must stay pure
// multiply + ordered-compare, never a fused multiply-add, or the 1-ulp FMA
// difference would break bit-identity with the scalar fallback. Each lane
// computes the exact IEEE double product the scalar loop computes; only
// the *schedule* of independent lanes changes.
#include "sched/soa_kernels.hpp"

#if defined(ISCOPE_SIMD)

#include <immintrin.h>

namespace iscope::soa {

std::size_t floor_scan_simd(const double* slowdown_row, std::size_t levels,
                            double remaining, double slack) {
  const __m256d rem = _mm256_set1_pd(remaining);
  const __m256d slk = _mm256_set1_pd(slack);
  std::size_t l = 0;
  // Width 8: two 4-lane compares per iteration, first-set-bit picks the
  // lowest matching level (same index the scalar loop returns).
  for (; l + 8 <= levels; l += 8) {
    const __m256d lo = _mm256_mul_pd(rem, _mm256_loadu_pd(slowdown_row + l));
    const __m256d hi =
        _mm256_mul_pd(rem, _mm256_loadu_pd(slowdown_row + l + 4));
    const int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(lo, slk, _CMP_LE_OQ)) |
        (_mm256_movemask_pd(_mm256_cmp_pd(hi, slk, _CMP_LE_OQ)) << 4);
    if (mask != 0)
      return l + static_cast<std::size_t>(
                     __builtin_ctz(static_cast<unsigned>(mask)));
  }
  for (; l + 4 <= levels; l += 4) {
    const __m256d lo = _mm256_mul_pd(rem, _mm256_loadu_pd(slowdown_row + l));
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(lo, slk, _CMP_LE_OQ));
    if (mask != 0)
      return l + static_cast<std::size_t>(
                     __builtin_ctz(static_cast<unsigned>(mask)));
  }
  if (l >= levels) return levels - 1;
  // Sub-width tail: the scalar kernel on the remaining levels. Its
  // not-found answer (sub-range top) lands on levels - 1 overall, which is
  // also the whole-row not-found answer, so the composition is exact.
  return l + floor_scan_scalar(slowdown_row + l, levels - l, remaining, slack);
}

void energy_row_simd(const double* power_row, const double* slowdown_row,
                     std::size_t levels, double* out) {
  std::size_t l = 0;
  for (; l + 4 <= levels; l += 4) {
    _mm256_storeu_pd(out + l,
                     _mm256_mul_pd(_mm256_loadu_pd(power_row + l),
                                   _mm256_loadu_pd(slowdown_row + l)));
  }
  energy_row_scalar(power_row + l, slowdown_row + l, levels - l, out + l);
}

}  // namespace iscope::soa

#else

// Scalar-only build: the fallback kernels live inline in soa_kernels.hpp
// (floor_scan_scalar / energy_row_scalar); nothing to emit here.

#endif
