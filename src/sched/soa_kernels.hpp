// Vectorizable kernels over MatcherColumns rows (DESIGN.md Sec. 14).
//
// Two primitives cover the matcher's per-level work:
//
//  * floor_scan  -- first level l with remaining * slowdown[l] <= slack
//    (PowerMatcher::min_feasible_level over one SoA row);
//  * energy_row  -- elementwise power[l] * slowdown[l], feeding the
//    energy-optimal-per-floor suffix scan (best_from_fill).
//
// Dispatch policy: compile-time only. The portable `*_scalar` kernels are
// the default; `-DISCOPE_SIMD=ON` swaps in explicit AVX2 kernels
// (soa_kernels.cpp, built `-mavx2 -ffp-contract=off`). There is no runtime
// CPUID probe: a binary either always takes the SIMD path or never does,
// so a run's arithmetic is a property of the build, not the host.
//
// Bit-identity across the two paths is by construction, not by tolerance:
// both kernels are pure independent multiply + ordered-compare per lane --
// no reassociated sums, no FMA contraction (the SIMD TU pins
// -ffp-contract=off, and neither path uses a fused intrinsic) -- so every
// lane computes the exact scalar double result and the first-match index
// is the scalar one. tests/test_match_equivalence.cpp holds both builds to
// the same bit-exact schedules.
#pragma once

#include <cstddef>
#include <cstdint>

namespace iscope::soa {

/// First level whose slowed-down remaining work still meets the slack;
/// top level (levels - 1) when even that misses. Exact port of
/// PowerMatcher::min_feasible_level against a precomputed slowdown row.
inline std::size_t floor_scan_scalar(const double* slowdown_row,
                                     std::size_t levels, double remaining,
                                     double slack) {
  for (std::size_t l = 0; l < levels; ++l) {
    if (remaining * slowdown_row[l] <= slack) return l;
  }
  return levels - 1;
}

/// Elementwise energy-to-finish per level: out[l] = power[l] * slowdown[l].
inline void energy_row_scalar(const double* power_row,
                              const double* slowdown_row, std::size_t levels,
                              double* out) {
  for (std::size_t l = 0; l < levels; ++l)
    out[l] = power_row[l] * slowdown_row[l];
}

#if defined(ISCOPE_SIMD)
// Explicit width-4/8 AVX2 kernels (soa_kernels.cpp).
std::size_t floor_scan_simd(const double* slowdown_row, std::size_t levels,
                            double remaining, double slack);
void energy_row_simd(const double* power_row, const double* slowdown_row,
                     std::size_t levels, double* out);

inline std::size_t floor_scan(const double* slowdown_row, std::size_t levels,
                              double remaining, double slack) {
  return floor_scan_simd(slowdown_row, levels, remaining, slack);
}
inline void energy_row(const double* power_row, const double* slowdown_row,
                       std::size_t levels, double* out) {
  energy_row_simd(power_row, slowdown_row, levels, out);
}
#else
inline std::size_t floor_scan(const double* slowdown_row, std::size_t levels,
                              double remaining, double slack) {
  return floor_scan_scalar(slowdown_row, levels, remaining, slack);
}
inline void energy_row(const double* power_row, const double* slowdown_row,
                       std::size_t levels, double* out) {
  energy_row_scalar(power_row, slowdown_row, levels, out);
}
#endif

/// Batched deadline-floor scan over all rows: the hot per-rematch kernel.
/// `slowdown` is row-major [rows * levels]; slack is deadline[r] - now_s.
inline void floor_scan_rows(const double* slowdown, std::size_t levels,
                            const double* remaining, const double* deadline,
                            double now_s, std::size_t rows,
                            std::size_t* out_floor) {
  for (std::size_t r = 0; r < rows; ++r) {
    out_floor[r] = floor_scan(slowdown + r * levels, levels, remaining[r],
                              deadline[r] - now_s);
  }
}

/// Energy-optimal level for every possible deadline floor f, by one
/// descending pass: out[f] = argmin over l in [f, top] of energy[l], ties
/// to the higher level. The running best accumulates exactly the strict
/// `<` comparisons PowerMatcher::energy_optimal_level(floor=f) performs,
/// so out[f] reproduces its answer bit for bit. `levels` must fit the
/// uint8 row (checked by MatcherColumns::reset).
inline void best_from_fill(const double* power_row, const double* slowdown_row,
                           std::size_t levels, std::uint8_t* out) {
  double energy[256];
  energy_row(power_row, slowdown_row, levels, energy);
  std::size_t best = levels - 1;
  double best_energy = energy[best];
  out[best] = static_cast<std::uint8_t>(best);
  for (std::size_t l = levels - 1; l-- > 0;) {
    if (energy[l] < best_energy) {
      best_energy = energy[l];
      best = l;
    }
    out[l] = static_cast<std::uint8_t>(best);
  }
}

}  // namespace iscope::soa
