#include "sched/policy.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace iscope {

const char* placement_rule_name(PlacementRule rule) {
  switch (rule) {
    case PlacementRule::kRandom: return "Ran";
    case PlacementRule::kEfficiency: return "Effi";
    case PlacementRule::kFair: return "Fair";
    case PlacementRule::kTherm: return "Therm";
  }
  return "?";
}

PlacementPolicy::PlacementPolicy(const Knowledge* knowledge,
                                 PlacementRule rule, std::uint64_t seed,
                                 double efficient_pool_fraction)
    : knowledge_(knowledge),
      rule_(rule),
      rng_(seed),
      pool_fraction_(efficient_pool_fraction) {
  ISCOPE_CHECK_ARG(knowledge != nullptr, "PlacementPolicy: null knowledge");
  ISCOPE_CHECK_ARG(efficient_pool_fraction > 0.0 &&
                       efficient_pool_fraction <= 1.0,
                   "PlacementPolicy: pool fraction must be in (0,1]");
  rank_of_proc_.resize(knowledge->procs());
  order_ = knowledge->efficiency_order();
  for (std::size_t rank = 0; rank < order_.size(); ++rank)
    rank_of_proc_[order_[rank]] = rank;
  pool_limit_ = static_cast<std::size_t>(
      pool_fraction_ * static_cast<double>(knowledge->procs()));
}

void PlacementPolicy::override_order(std::vector<std::size_t> order) {
  ISCOPE_CHECK_ARG(order.size() == knowledge_->procs(),
                   "PlacementPolicy: order must cover every processor");
  std::vector<std::uint8_t> seen(order.size(), 0);
  for (std::size_t p : order) {
    ISCOPE_CHECK_ARG(p < order.size() && seen[p] == 0,
                     "PlacementPolicy: order must be a permutation");
    seen[p] = 1;
  }
  order_ = std::move(order);
  for (std::size_t rank = 0; rank < order_.size(); ++rank)
    rank_of_proc_[order_[rank]] = rank;
}

std::size_t PlacementPolicy::efficiency_rank(std::size_t proc) const {
  ISCOPE_CHECK_ARG(proc < rank_of_proc_.size(),
                   "PlacementPolicy: proc out of range");
  return rank_of_proc_[proc];
}

std::optional<std::vector<std::size_t>> PlacementPolicy::choose_efficient(
    std::size_t n, std::vector<std::size_t>& idle, bool forced) {
  // Take the n most efficient idle processors. Ranks form a strict total
  // order, so the pick depends only on the idle *set*, never its order.
  const std::size_t* rank = rank_of_proc_.data();
  std::partial_sort(idle.begin(), idle.begin() + static_cast<std::ptrdiff_t>(n),
                    idle.end(), [rank](std::size_t a, std::size_t b) {
                      return rank[a] < rank[b];
                    });
  if (!forced) {
    // Good enough only if the whole pick lies inside the efficient pool;
    // otherwise keep waiting for efficient chips to free up.
    if (rank[idle[n - 1]] >= pool_limit_) return std::nullopt;
  }
  return std::vector<std::size_t>(idle.begin(),
                                  idle.begin() + static_cast<std::ptrdiff_t>(n));
}

bool PlacementPolicy::choose_efficient_bits(
    std::size_t n, const std::uint64_t* idle_rank_bits, bool forced,
    std::vector<std::size_t>& out) const {
  // Pop idle ranks best-first out of the bitset: the first n are exactly
  // the pick choose_efficient's partial_sort produces (ranks are a strict
  // total order), already in ascending-rank order. Non-forced placements
  // only look inside the efficient pool -- hitting a rank at or past
  // pool_limit_ before collecting n is the same rejection
  // choose_efficient derives from rank[pick[n - 1]] >= pool_limit_.
  const std::vector<std::size_t>& order = order_;
  const std::size_t limit = forced ? order.size() : pool_limit_;
  const std::size_t words = (order.size() + 63) / 64;
  out.clear();
  for (std::size_t w = 0; w < words && w * 64 < limit; ++w) {
    std::uint64_t bits = idle_rank_bits[w];
    while (bits != 0) {
      const std::size_t r =
          w * 64 + static_cast<std::size_t>(__builtin_ctzll(bits));
      if (r >= limit) return false;
      bits &= bits - 1;
      out.push_back(order[r]);
      if (out.size() == n) return true;
    }
  }
  return false;
}

bool PlacementPolicy::fair_defers(const PlacementContext& ctx) const {
  // Wind scarce: defer deferrable work until wind returns. Stop deferring
  // once the backlog itself threatens deadlines, or when the forecast says
  // the wind will not come back in time.
  const bool forecast_promises_wind =
      ctx.forecast_mean >=
      kDeferForecastFraction * std::max(ctx.current_demand, Watts{1.0});
  return !ctx.forced && ctx.slack_s > kMinDeferSlackS &&
         ctx.queue_pressure < kMaxDeferBacklog && forecast_promises_wind;
}

bool PlacementPolicy::choose_soa(std::size_t n,
                                 const std::uint64_t* idle_rank_bits,
                                 const std::vector<std::size_t>& idle_by_busy,
                                 const PlacementContext& ctx,
                                 std::vector<std::size_t>& out) {
  ISCOPE_CHECK_ARG(n > 0, "PlacementPolicy: task needs at least one CPU");
  switch (rule_) {
    case PlacementRule::kRandom:
      break;  // unsupported: falls through to the error below
    case PlacementRule::kEfficiency:
      return choose_efficient_bits(n, idle_rank_bits, ctx.forced, out);
    case PlacementRule::kTherm: {
      // Same supply-side deferral as Fair (compute deferred to windy
      // hours is free compute), but placement stays on the thermal
      // order: wind pays for the CPUs, not for the CRAC, so the
      // recirculation stripe matters under abundant wind too.
      if (!ctx.has_wind)
        return choose_efficient_bits(n, idle_rank_bits, ctx.forced, out);
      if (!ctx.wind_abundant && fair_defers(ctx)) return false;
      return choose_efficient_bits(n, idle_rank_bits, /*forced=*/true, out);
    }
    case PlacementRule::kFair: {
      if (!ctx.has_wind)
        return choose_efficient_bits(n, idle_rank_bits, ctx.forced, out);
      if (!ctx.wind_abundant) {
        if (fair_defers(ctx)) return false;
        return choose_efficient_bits(n, idle_rank_bits, /*forced=*/true, out);
      }
      // Abundant wind: the least-used idle CPUs are the maintained list's
      // prefix (busy time is frozen while a processor sits idle).
      ISCOPE_CHECK_ARG(idle_by_busy.size() >= n,
                       "PlacementPolicy: Fair needs the busy-ordered idle "
                       "list");
      out.assign(idle_by_busy.begin(),
                 idle_by_busy.begin() + static_cast<std::ptrdiff_t>(n));
      return true;
    }
  }
  throw InvalidArgument("choose_soa: unsupported placement rule");
}

std::optional<std::vector<std::size_t>> PlacementPolicy::choose(
    std::size_t n, std::vector<std::size_t>& idle,
    const PlacementContext& ctx) {
  ISCOPE_CHECK_ARG(n > 0, "PlacementPolicy: task needs at least one CPU");
  if (idle.size() < n) return std::nullopt;

  switch (rule_) {
    case PlacementRule::kRandom: {
      // Partial Fisher-Yates: the first n slots become a uniform sample.
      for (std::size_t i = 0; i < n; ++i) {
        const auto j = static_cast<std::size_t>(rng_.uniform_int(
            static_cast<std::int64_t>(i),
            static_cast<std::int64_t>(idle.size()) - 1));
        std::swap(idle[i], idle[j]);
      }
      return std::vector<std::size_t>(
          idle.begin(), idle.begin() + static_cast<std::ptrdiff_t>(n));
    }
    case PlacementRule::kEfficiency:
      return choose_efficient(n, idle, ctx.forced);
    case PlacementRule::kTherm: {
      // Mirrors choose_soa: Fair's deferral, thermal-order placement.
      if (!ctx.has_wind) return choose_efficient(n, idle, ctx.forced);
      if (!ctx.wind_abundant && fair_defers(ctx)) return std::nullopt;
      return choose_efficient(n, idle, /*forced=*/true);
    }
    case PlacementRule::kFair: {
      if (!ctx.has_wind) return choose_efficient(n, idle, ctx.forced);
      if (!ctx.wind_abundant) {
        // Wind scarce: run only deadline-forced or tight-slack tasks, on
        // the most efficient idle CPUs (fair_defers holds the thresholds).
        if (fair_defers(ctx)) return std::nullopt;
        return choose_efficient(n, idle, /*forced=*/true);
      }
      // Abundant wind: balance lifetime -- least-used idle CPUs, start now.
      ISCOPE_CHECK_ARG(ctx.busy_time_s != nullptr &&
                           ctx.busy_time_s->size() == knowledge_->procs(),
                       "PlacementPolicy: Fair needs busy-time state");
      const std::vector<double>& busy = *ctx.busy_time_s;
      std::partial_sort(idle.begin(),
                        idle.begin() + static_cast<std::ptrdiff_t>(n),
                        idle.end(), [&](std::size_t a, std::size_t b) {
                          if (busy[a] != busy[b]) return busy[a] < busy[b];
                          return a < b;
                        });
      return std::vector<std::size_t>(
          idle.begin(), idle.begin() + static_cast<std::ptrdiff_t>(n));
    }
  }
  throw InvalidArgument("unknown placement rule");
}

}  // namespace iscope
