// Placement policies (paper Table 2, the Ran/Effi/Fair axis).
//
//  * Ran  -- workloads are assigned to idle CPUs uniformly at random and
//            start as soon as enough CPUs are free.
//  * Effi -- workloads always go to the CPUs with the best energy
//            efficiency. A task *waits* for members of the efficient pool
//            to free up while its deadline slack permits ("tasks can be
//            queued up at the energy-efficient processors as long as the
//            deadlines are not violated" -- paper Sec. VI-B); only deadline
//            pressure forces it onto less efficient chips.
//  * Fair -- ScanFair's rule: when wind is abundant, start immediately on
//            the historically least-used CPUs, trading cheap wind energy
//            for balanced processor lifetime. When wind is scarce, *defer*
//            deferrable work (wind may return before the deadline) and run
//            only deadline-forced tasks, on the most efficient idle CPUs,
//            to save expensive utility energy. In a utility-only facility
//            Fair degenerates to Effi (there is no wind to wait for).
//  * Therm -- Effi's waiting discipline over a *cooling-aware* rank: the
//            simulator injects a placement order that weighs each chip's
//            stock power by its rack's heat-recirculation contribution
//            (override_order), so the pool prefers chips whose watts the
//            CRAC removes cheapest. With no injected order (thermal model
//            off) Therm is Effi by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "sched/knowledge.hpp"

namespace iscope {

enum class PlacementRule : std::uint8_t { kRandom, kEfficiency, kFair, kTherm };

const char* placement_rule_name(PlacementRule rule);

/// Datacenter state the policy consults when placing one task.
struct PlacementContext {
  /// Cumulative busy time per processor [s] (lifetime balance signal).
  const std::vector<double>* busy_time_s = nullptr;
  double now_s = 0.0;
  /// True when the facility has a wind supply at all (Fair's deferral only
  /// makes sense in a green datacenter).
  bool has_wind = false;
  /// True when wind generation exceeds current demand with headroom.
  bool wind_abundant = false;
  /// True when the task can no longer afford to wait for better CPUs.
  bool forced = false;
  /// Sum of waiting task widths over cluster size. Fair stops deferring
  /// when the backlog would swamp the cluster at wind-return (the deferred
  /// burst must still be serviceable within the deadlines).
  double queue_pressure = 0.0;
  /// Time until this task's last deadline-feasible start [s].
  double slack_s = 0.0;
  /// Expected mean wind power over this task's slack window. Infinity
  /// when no forecaster is attached ("assume the wind will come back" --
  /// the unconditioned deferral of the base design).
  Watts forecast_mean{std::numeric_limits<double>::infinity()};
  /// Current facility demand (forecast deferral compares against it).
  Watts current_demand;
};

/// Backlog (waiting width / cluster size) beyond which Fair stops
/// deferring work for wind.
inline constexpr double kMaxDeferBacklog = 2.0;

/// Fair defers a task for wind only when it can afford to wait at least
/// this long -- tight (HU-style) tasks start immediately instead of
/// gambling on the weather.
inline constexpr double kMinDeferSlackS = 2.0 * 3600.0;

/// With a forecaster attached, Fair defers only when the expected wind
/// over the slack window is at least this fraction of current demand
/// (below that, waiting just postpones the same utility burn).
inline constexpr double kDeferForecastFraction = 0.3;

class PlacementPolicy {
 public:
  /// `efficient_pool_fraction`: the share of the cluster (by efficiency
  /// rank) Effi considers "good enough" to start on without deadline
  /// pressure.
  PlacementPolicy(const Knowledge* knowledge, PlacementRule rule,
                  std::uint64_t seed, double efficient_pool_fraction = 0.35);

  PlacementRule rule() const { return rule_; }

  /// True when every nullopt this policy returns for a non-forced task is
  /// an efficient-pool rejection -- a predicate of the task width and the
  /// idle *set* only, and monotone in the width (if width w is rejected,
  /// any w' >= w is too, and stays rejected while the idle set can only
  /// shrink). The scheduler uses this to memoize rejections within one
  /// scheduling pass instead of re-sorting the idle set per waiting task.
  /// Fair and Therm with wind also defer on supply conditions, which is
  /// not width-monotone, so only Effi and the wind-less rules qualify.
  bool pool_failures_monotone(bool has_wind) const {
    return rule_ == PlacementRule::kEfficiency ||
           ((rule_ == PlacementRule::kFair ||
             rule_ == PlacementRule::kTherm) &&
            !has_wind);
  }

  /// Choose `n` of the currently `idle` processors for a task, or return
  /// nullopt to keep the task waiting (only non-forced Effi-style placements
  /// wait; a forced task always starts if `idle.size() >= n`).
  /// `idle` may be reordered by the call (it is scratch space).
  std::optional<std::vector<std::size_t>> choose(std::size_t n,
                                                 std::vector<std::size_t>& idle,
                                                 const PlacementContext& ctx);

  /// SoA fast path for Effi and Fair: no idle-vector copy, no per-task
  /// partial_sort. `idle_rank_bits` is a rank-indexed idle bitset -- bit r
  /// (word r/64, bit r%64) set means the processor with efficiency rank r
  /// is idle -- so the best-rank-first pick is a ctz scan over a handful
  /// of words instead of an O(procs) walk. `idle_by_busy` is the idle set
  /// ordered by (busy time, id) and is consulted only by Fair under
  /// abundant wind. The caller guarantees at least `n` processors are
  /// idle. On success fills `out` (the same processors, in the same
  /// order, choose() would have returned -- the scheduler-equivalence
  /// suite holds both paths to bit-identical runs) and returns true;
  /// false keeps the task waiting. kRandom is not supported here: its
  /// draws consume the RNG against the scratch vector's exact layout, so
  /// it keeps the legacy path.
  bool choose_soa(std::size_t n, const std::uint64_t* idle_rank_bits,
                  const std::vector<std::size_t>& idle_by_busy,
                  const PlacementContext& ctx, std::vector<std::size_t>& out);

  /// Efficiency rank of a processor (0 = most efficient).
  std::size_t efficiency_rank(std::size_t proc) const;

  /// Replace the placement order (rank 0 first) with a caller-computed
  /// permutation of the processor ids -- the hook ScanTherm uses to rank
  /// chips by marginal compute + cooling power instead of raw efficiency.
  /// Must be called before the scheduler builds its rank-indexed idle
  /// structures; the order is fixed for the whole run (like the
  /// efficiency order it replaces).
  void override_order(std::vector<std::size_t> order);

  /// Checkpoint access to the placement stream (consumed only by kRandom;
  /// Effi/Fair never draw, so their saved state is the seed position).
  std::string rng_state() const { return rng_.save_state(); }
  void set_rng_state(const std::string& state) { rng_.load_state(state); }

 private:
  std::optional<std::vector<std::size_t>> choose_efficient(
      std::size_t n, std::vector<std::size_t>& idle, bool forced);
  bool choose_efficient_bits(std::size_t n, const std::uint64_t* idle_rank_bits,
                             bool forced, std::vector<std::size_t>& out) const;
  /// Fair's wind-scarce deferral predicate (shared by both paths so the
  /// defer thresholds live in one place).
  bool fair_defers(const PlacementContext& ctx) const;

  const Knowledge* knowledge_;  // non-owning
  PlacementRule rule_;
  Rng rng_;
  double pool_fraction_;
  std::size_t pool_limit_;  ///< ranks below this are "efficient enough"
  /// Placement order, rank 0 first. A copy of the knowledge's efficiency
  /// order unless override_order() installed a thermal-aware permutation
  /// (the efficiency order is built once and never reordered, so the
  /// copy cannot go stale).
  std::vector<std::size_t> order_;
  std::vector<std::size_t> rank_of_proc_;
};

}  // namespace iscope
