#include "sched/power_matcher.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"

namespace iscope {

PowerMatcher::PowerMatcher(const Knowledge* knowledge, double cooling_factor)
    : knowledge_(knowledge), cooling_factor_(cooling_factor) {
  ISCOPE_CHECK_ARG(knowledge != nullptr, "PowerMatcher: null knowledge");
  ISCOPE_CHECK_ARG(cooling_factor >= 1.0,
                   "PowerMatcher: cooling factor must be >= 1");
  const FreqLevels& levels = knowledge->cluster().levels();
  const double fmax = levels.freq_ghz.back();
  slowdown_ratio_.reserve(levels.freq_ghz.size());
  for (const double f : levels.freq_ghz)
    slowdown_ratio_.push_back(fmax / f - 1.0);
}

Watts PowerMatcher::task_power_reference(const ActiveTask& task,
                                         std::size_t level) const {
  Watts p;
  for (const std::size_t id : task.procs) p += knowledge_->power(id, level);
  return p;
}

double PowerMatcher::slowdown(const ActiveTask& task,
                              std::size_t level) const {
  return task.gamma * slowdown_ratio_[level] + 1.0;
}

std::size_t PowerMatcher::min_feasible_level(const ActiveTask& task,
                                             double now_s) const {
  const std::size_t count = knowledge_->levels();
  const double slack = task.deadline_s - now_s;
  for (std::size_t l = 0; l < count; ++l) {
    if (task.remaining_work_s * slowdown(task, l) <= slack) return l;
  }
  return count - 1;  // even Fmax misses: run flat out
}

std::size_t PowerMatcher::energy_optimal_level(const ActiveTask& task,
                                               std::size_t floor) const {
  const std::size_t top = knowledge_->levels() - 1;
  ISCOPE_CHECK_ARG(floor <= top, "energy_optimal_level: floor out of range");
  std::size_t best = top;
  Watts best_energy = task_power(task, top) * slowdown(task, top);
  // Prefer the higher level on ties (finish sooner at equal energy).
  for (std::size_t l = top; l-- > floor;) {
    const Watts e = task_power(task, l) * slowdown(task, l);
    if (e < best_energy) {
      best_energy = e;
      best = l;
    }
  }
  return best;
}

namespace {

// Heap order for phase-2 down-steps: largest saving on top, smaller task
// index winning ties. Shared by the optimized and reference paths so their
// pop order agrees bit for bit.
struct StepLess {
  bool operator()(const MatchScratch::Step& a,
                  const MatchScratch::Step& b) const {
    if (a.saving != b.saving) return a.saving < b.saving;
    return a.task > b.task;  // deterministic tiebreak
  }
};

}  // namespace

MatchResult PowerMatcher::match(std::vector<ActiveTask>& tasks,
                                Watts wind_avail, double now_s,
                                MatchScratch& scratch) const {
  ISCOPE_CHECK_ARG(wind_avail.raw() >= 0.0, "PowerMatcher: negative wind");

  MatchResult result;
  if (tasks.empty()) return result;

  // Phase 1: energy-optimal deadline-feasible baseline.
  std::vector<std::size_t>& floor = scratch.floor;
  floor.assign(tasks.size(), 0);
  Watts compute;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    floor[i] = min_feasible_level(tasks[i], now_s);
    tasks[i].level = energy_optimal_level(tasks[i], floor[i]);
    compute += task_power(tasks[i], tasks[i].level);
  }

  // Phase 2: fit under the wind budget with greedy best-saving down-steps.
  // Stretching only pays when the budget is actually reachable: if even the
  // all-floors demand exceeds the wind, slowing down just moves the same
  // (utility-supplied) work later -- run the energy-optimal baseline
  // instead and wait for wind.
  Watts floor_compute;
  for (std::size_t i = 0; i < tasks.size(); ++i)
    floor_compute += task_power(tasks[i], floor[i]);
  if (wind_avail.raw() > 0.0 && wind_avail >= floor_compute * cooling_factor_) {
    // The scratch vector driven by push_heap/pop_heap replicates
    // std::priority_queue's exact call sequence (see match_reference), so
    // equal-saving pops stay in the same order.
    std::vector<MatchScratch::Step>& heap = scratch.heap;
    heap.clear();
    auto push_step = [&](std::size_t i) {
      const std::size_t l = tasks[i].level;
      if (l == 0 || l <= floor[i]) return;
      const Watts saving =
          task_power(tasks[i], l) - task_power(tasks[i], l - 1);
      heap.push_back(MatchScratch::Step{saving, i, l - 1});
      std::push_heap(heap.begin(), heap.end(), StepLess{});
    };
    for (std::size_t i = 0; i < tasks.size(); ++i) push_step(i);

    while (compute * cooling_factor_ > wind_avail && !heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), StepLess{});
      const MatchScratch::Step step = heap.back();
      heap.pop_back();
      // At most one live entry per task (re-pushed after applying), so a
      // level mismatch marks a stale entry.
      if (tasks[step.task].level != step.to_level + 1) continue;
      tasks[step.task].level = step.to_level;
      compute -= step.saving;
      ++result.steps;
      push_step(step.task);
    }
  }

  result.compute = compute;
  result.demand = compute * cooling_factor_;
  return result;
}

MatchResult PowerMatcher::match(std::vector<ActiveTask>& tasks,
                                Watts wind_avail, double now_s) const {
  MatchScratch scratch;
  return match(tasks, wind_avail, now_s, scratch);
}

MatchResult PowerMatcher::match_columns(MatcherColumns& cols, Watts wind_avail,
                                        double now_s, MatchScratch& scratch,
                                        IncrementalMatchState* inc) const {
  ISCOPE_CHECK_ARG(wind_avail.raw() >= 0.0, "PowerMatcher: negative wind");

  MatchResult result;
  if (inc != nullptr) inc->invalidate();
  if (cols.count == 0) return result;
  const std::size_t levels = cols.levels;

  // Phase 1: batched deadline-floor scan (the vectorized kernel), then the
  // energy-optimal level is one best_from table read per row. Sums stay
  // scalar and in row order -- reordering them would change the rounding.
  soa::floor_scan_rows(cols.slowdown.data(), levels, cols.remaining.data(),
                       cols.deadline.data(), now_s, cols.count,
                       cols.floor.data());
  Watts compute;
  for (std::size_t r = 0; r < cols.count; ++r) {
    const std::size_t l = cols.best_from[r * levels + cols.floor[r]];
    cols.level[r] = l;
    compute += Watts{cols.power[r * levels + l]};
  }
  Watts floor_compute;
  for (std::size_t r = 0; r < cols.count; ++r)
    floor_compute += Watts{cols.power[r * levels + cols.floor[r]]};
  const Watts compute0 = compute;

  // Phase 2: identical greedy to `match`, over rows instead of views.
  // With caching on, the greedy builds and drives inc->heap in place:
  // after the loop it is exactly the down-step heap at the deepest
  // materialized state, which is what the extension path needs -- no
  // copy. A gated-off phase 2 builds no heap at all (heap_built stays
  // false; most structural rematches are invalidated before any fitting
  // epoch could use it).
  const bool fitting =
      wind_avail.raw() > 0.0 && wind_avail >= floor_compute * cooling_factor_;
  if (fitting) {
    std::vector<MatchScratch::Step>& heap =
        (inc != nullptr) ? inc->heap : scratch.heap;
    heap.clear();
    auto push_step = [&](std::size_t r) {
      const std::size_t l = cols.level[r];
      if (l == 0 || l <= cols.floor[r]) return;
      const Watts saving = Watts{cols.power[r * levels + l]} -
                           Watts{cols.power[r * levels + l - 1]};
      heap.push_back(MatchScratch::Step{saving, r, l - 1});
      std::push_heap(heap.begin(), heap.end(), StepLess{});
    };
    for (std::size_t r = 0; r < cols.count; ++r) push_step(r);

    while (compute * cooling_factor_ > wind_avail && !heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), StepLess{});
      const MatchScratch::Step step = heap.back();
      heap.pop_back();
      if (cols.level[step.task] != step.to_level + 1) continue;
      cols.level[step.task] = step.to_level;
      compute -= step.saving;
      ++result.steps;
      if (inc != nullptr)
        inc->log.push_back(IncrementalMatchState::AppliedStep{
            step.saving, compute, step.task, step.to_level});
      push_step(step.task);
    }
  }

  if (inc != nullptr) {
    inc->valid = true;
    inc->heap_built = fitting;
    inc->compute0 = compute0;
    inc->floor_compute = floor_compute;
    inc->cursor = inc->log.size();
  }
  result.compute = compute;
  result.demand = compute * cooling_factor_;
  return result;
}

bool PowerMatcher::match_incremental(MatcherColumns& cols, Watts wind_avail,
                                     double now_s, MatchScratch& scratch,
                                     IncrementalMatchState& inc,
                                     MatchResult& out) const {
  ISCOPE_CHECK_ARG(wind_avail.raw() >= 0.0, "PowerMatcher: negative wind");
  if (!inc.valid || cols.count == 0) return false;
  const std::size_t levels = cols.levels;

  // Frontier check: the cached trajectory was built on cols.floor. Progress
  // shrinks remaining work and slack together, so floors are usually
  // stable between supply epochs; any movement means phase 1 itself would
  // differ and the caller must re-solve.
  scratch.floor.resize(cols.count);
  soa::floor_scan_rows(cols.slowdown.data(), levels, cols.remaining.data(),
                       cols.deadline.data(), now_s, cols.count,
                       scratch.floor.data());
  for (std::size_t r = 0; r < cols.count; ++r)
    if (scratch.floor[r] != cols.floor[r]) return false;

  // Where along the canonical greedy trajectory does this budget stop?
  // A fresh solve stops at the first state whose demand fits under the
  // wind (or when the heap runs dry). compute is non-increasing along the
  // log and rounding is monotone, so "fits" is monotone in the state
  // index: binary search replaces the walk.
  std::size_t target = 0;
  bool extend = false;
  if (wind_avail.raw() > 0.0 &&
      wind_avail >= inc.floor_compute * cooling_factor_) {
    if (inc.compute0 * cooling_factor_ > wind_avail) {
      std::size_t lo = 0;
      std::size_t hi = inc.log.size();
      while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (inc.log[mid].compute_after * cooling_factor_ <= wind_avail)
          hi = mid;
        else
          lo = mid + 1;
      }
      if (lo < inc.log.size()) {
        target = lo + 1;
      } else {
        // Even the deepest materialized state is over budget: replay to
        // the end, then keep popping the preserved heap live. If the
        // caching solve never built the heap (its phase 2 was gated
        // off), there is nothing to pop from -- full solve instead.
        if (!inc.heap_built) return false;
        target = inc.log.size();
        extend = true;
      }
    }
  }

  // Re-position the cursor: undo in reverse order, redo in log order (a
  // task stepped several times restores through the same intermediate
  // levels a fresh solve would assign).
  while (inc.cursor > target) {
    const IncrementalMatchState::AppliedStep& s = inc.log[--inc.cursor];
    cols.level[s.task] = s.to_level + 1;
  }
  while (inc.cursor < target) {
    const IncrementalMatchState::AppliedStep& s = inc.log[inc.cursor++];
    cols.level[s.task] = s.to_level;
  }
  Watts compute =
      (target == 0) ? inc.compute0 : inc.log[target - 1].compute_after;

  if (extend) {
    // inc.heap is the down-step heap as of state log.size() -- exactly
    // what a fresh solve holds there, since the pop/push sequence up to
    // any state is wind-independent. Continue the canonical greedy,
    // appending to the log so the deeper states are materialized for
    // later epochs.
    auto push_step = [&](std::size_t r) {
      const std::size_t l = cols.level[r];
      if (l == 0 || l <= cols.floor[r]) return;
      const Watts saving = Watts{cols.power[r * levels + l]} -
                           Watts{cols.power[r * levels + l - 1]};
      inc.heap.push_back(MatchScratch::Step{saving, r, l - 1});
      std::push_heap(inc.heap.begin(), inc.heap.end(), StepLess{});
    };
    while (compute * cooling_factor_ > wind_avail && !inc.heap.empty()) {
      std::pop_heap(inc.heap.begin(), inc.heap.end(), StepLess{});
      const MatchScratch::Step step = inc.heap.back();
      inc.heap.pop_back();
      if (cols.level[step.task] != step.to_level + 1) continue;
      cols.level[step.task] = step.to_level;
      compute -= step.saving;
      inc.log.push_back(IncrementalMatchState::AppliedStep{
          step.saving, compute, step.task, step.to_level});
      push_step(step.task);
    }
    inc.cursor = inc.log.size();
  }

  out.compute = compute;
  out.demand = compute * cooling_factor_;
  out.steps = inc.cursor;
  return true;
}

MatchResult PowerMatcher::match_reference(std::vector<ActiveTask>& tasks,
                                          Watts wind_avail,
                                          double now_s) const {
  ISCOPE_CHECK_ARG(wind_avail.raw() >= 0.0, "PowerMatcher: negative wind");

  MatchResult result;
  if (tasks.empty()) return result;

  // Phase 1: energy-optimal deadline-feasible baseline.
  std::vector<std::size_t> floor(tasks.size());
  Watts compute;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    floor[i] = min_feasible_level(tasks[i], now_s);
    tasks[i].level = energy_optimal_level(tasks[i], floor[i]);
    compute += task_power_reference(tasks[i], tasks[i].level);
  }

  // Phase 2: fit under the wind budget with greedy best-saving down-steps.
  Watts floor_compute;
  for (std::size_t i = 0; i < tasks.size(); ++i)
    floor_compute += task_power_reference(tasks[i], floor[i]);
  if (wind_avail.raw() > 0.0 && wind_avail >= floor_compute * cooling_factor_) {
    using Step = MatchScratch::Step;
    std::priority_queue<Step, std::vector<Step>, StepLess> heap;
    auto push_step = [&](std::size_t i) {
      const std::size_t l = tasks[i].level;
      if (l == 0 || l <= floor[i]) return;
      const Watts saving = task_power_reference(tasks[i], l) -
                           task_power_reference(tasks[i], l - 1);
      heap.push(Step{saving, i, l - 1});
    };
    for (std::size_t i = 0; i < tasks.size(); ++i) push_step(i);

    while (compute * cooling_factor_ > wind_avail && !heap.empty()) {
      const Step step = heap.top();
      heap.pop();
      if (tasks[step.task].level != step.to_level + 1) continue;
      tasks[step.task].level = step.to_level;
      compute -= step.saving;
      ++result.steps;
      push_step(step.task);
    }
  }

  result.compute = compute;
  result.demand = compute * cooling_factor_;
  return result;
}

}  // namespace iscope
