#include "sched/power_matcher.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"

namespace iscope {

PowerMatcher::PowerMatcher(const Knowledge* knowledge, double cooling_factor)
    : knowledge_(knowledge), cooling_factor_(cooling_factor) {
  ISCOPE_CHECK_ARG(knowledge != nullptr, "PowerMatcher: null knowledge");
  ISCOPE_CHECK_ARG(cooling_factor >= 1.0,
                   "PowerMatcher: cooling factor must be >= 1");
  const FreqLevels& levels = knowledge->cluster().levels();
  const double fmax = levels.freq_ghz.back();
  slowdown_ratio_.reserve(levels.freq_ghz.size());
  for (const double f : levels.freq_ghz)
    slowdown_ratio_.push_back(fmax / f - 1.0);
}

Watts PowerMatcher::task_power_reference(const ActiveTask& task,
                                         std::size_t level) const {
  Watts p;
  for (const std::size_t id : task.procs) p += knowledge_->power(id, level);
  return p;
}

double PowerMatcher::slowdown(const ActiveTask& task,
                              std::size_t level) const {
  return task.gamma * slowdown_ratio_[level] + 1.0;
}

std::size_t PowerMatcher::min_feasible_level(const ActiveTask& task,
                                             double now_s) const {
  const std::size_t count = knowledge_->levels();
  const double slack = task.deadline_s - now_s;
  for (std::size_t l = 0; l < count; ++l) {
    if (task.remaining_work_s * slowdown(task, l) <= slack) return l;
  }
  return count - 1;  // even Fmax misses: run flat out
}

std::size_t PowerMatcher::energy_optimal_level(const ActiveTask& task,
                                               std::size_t floor) const {
  const std::size_t top = knowledge_->levels() - 1;
  ISCOPE_CHECK_ARG(floor <= top, "energy_optimal_level: floor out of range");
  std::size_t best = top;
  Watts best_energy = task_power(task, top) * slowdown(task, top);
  // Prefer the higher level on ties (finish sooner at equal energy).
  for (std::size_t l = top; l-- > floor;) {
    const Watts e = task_power(task, l) * slowdown(task, l);
    if (e < best_energy) {
      best_energy = e;
      best = l;
    }
  }
  return best;
}

namespace {

// Heap order for phase-2 down-steps: largest saving on top, smaller task
// index winning ties. Shared by the optimized and reference paths so their
// pop order agrees bit for bit.
struct StepLess {
  bool operator()(const MatchScratch::Step& a,
                  const MatchScratch::Step& b) const {
    if (a.saving != b.saving) return a.saving < b.saving;
    return a.task > b.task;  // deterministic tiebreak
  }
};

}  // namespace

MatchResult PowerMatcher::match(std::vector<ActiveTask>& tasks,
                                Watts wind_avail, double now_s,
                                MatchScratch& scratch) const {
  ISCOPE_CHECK_ARG(wind_avail.raw() >= 0.0, "PowerMatcher: negative wind");

  MatchResult result;
  if (tasks.empty()) return result;

  // Phase 1: energy-optimal deadline-feasible baseline.
  std::vector<std::size_t>& floor = scratch.floor;
  floor.assign(tasks.size(), 0);
  Watts compute;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    floor[i] = min_feasible_level(tasks[i], now_s);
    tasks[i].level = energy_optimal_level(tasks[i], floor[i]);
    compute += task_power(tasks[i], tasks[i].level);
  }

  // Phase 2: fit under the wind budget with greedy best-saving down-steps.
  // Stretching only pays when the budget is actually reachable: if even the
  // all-floors demand exceeds the wind, slowing down just moves the same
  // (utility-supplied) work later -- run the energy-optimal baseline
  // instead and wait for wind.
  Watts floor_compute;
  for (std::size_t i = 0; i < tasks.size(); ++i)
    floor_compute += task_power(tasks[i], floor[i]);
  if (wind_avail.raw() > 0.0 && wind_avail >= floor_compute * cooling_factor_) {
    // The scratch vector driven by push_heap/pop_heap replicates
    // std::priority_queue's exact call sequence (see match_reference), so
    // equal-saving pops stay in the same order.
    std::vector<MatchScratch::Step>& heap = scratch.heap;
    heap.clear();
    auto push_step = [&](std::size_t i) {
      const std::size_t l = tasks[i].level;
      if (l == 0 || l <= floor[i]) return;
      const Watts saving =
          task_power(tasks[i], l) - task_power(tasks[i], l - 1);
      heap.push_back(MatchScratch::Step{saving, i, l - 1});
      std::push_heap(heap.begin(), heap.end(), StepLess{});
    };
    for (std::size_t i = 0; i < tasks.size(); ++i) push_step(i);

    while (compute * cooling_factor_ > wind_avail && !heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), StepLess{});
      const MatchScratch::Step step = heap.back();
      heap.pop_back();
      // At most one live entry per task (re-pushed after applying), so a
      // level mismatch marks a stale entry.
      if (tasks[step.task].level != step.to_level + 1) continue;
      tasks[step.task].level = step.to_level;
      compute -= step.saving;
      ++result.steps;
      push_step(step.task);
    }
  }

  result.compute = compute;
  result.demand = compute * cooling_factor_;
  return result;
}

MatchResult PowerMatcher::match(std::vector<ActiveTask>& tasks,
                                Watts wind_avail, double now_s) const {
  MatchScratch scratch;
  return match(tasks, wind_avail, now_s, scratch);
}

MatchResult PowerMatcher::match_reference(std::vector<ActiveTask>& tasks,
                                          Watts wind_avail,
                                          double now_s) const {
  ISCOPE_CHECK_ARG(wind_avail.raw() >= 0.0, "PowerMatcher: negative wind");

  MatchResult result;
  if (tasks.empty()) return result;

  // Phase 1: energy-optimal deadline-feasible baseline.
  std::vector<std::size_t> floor(tasks.size());
  Watts compute;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    floor[i] = min_feasible_level(tasks[i], now_s);
    tasks[i].level = energy_optimal_level(tasks[i], floor[i]);
    compute += task_power_reference(tasks[i], tasks[i].level);
  }

  // Phase 2: fit under the wind budget with greedy best-saving down-steps.
  Watts floor_compute;
  for (std::size_t i = 0; i < tasks.size(); ++i)
    floor_compute += task_power_reference(tasks[i], floor[i]);
  if (wind_avail.raw() > 0.0 && wind_avail >= floor_compute * cooling_factor_) {
    using Step = MatchScratch::Step;
    std::priority_queue<Step, std::vector<Step>, StepLess> heap;
    auto push_step = [&](std::size_t i) {
      const std::size_t l = tasks[i].level;
      if (l == 0 || l <= floor[i]) return;
      const Watts saving = task_power_reference(tasks[i], l) -
                           task_power_reference(tasks[i], l - 1);
      heap.push(Step{saving, i, l - 1});
    };
    for (std::size_t i = 0; i < tasks.size(); ++i) push_step(i);

    while (compute * cooling_factor_ > wind_avail && !heap.empty()) {
      const Step step = heap.top();
      heap.pop();
      if (tasks[step.task].level != step.to_level + 1) continue;
      tasks[step.task].level = step.to_level;
      compute -= step.saving;
      ++result.steps;
      push_step(step.task);
    }
  }

  result.compute = compute;
  result.demand = compute * cooling_factor_;
  return result;
}

}  // namespace iscope
