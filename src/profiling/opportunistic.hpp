// Opportunistic profiling planner (paper Sec. III-C, Fig. 10).
//
// Profiling must not hurt quality of service, so scans are placed into
// windows where datacenter demand is low (below a threshold, 30% in the
// paper) and -- when requested -- renewable generation is available. The
// planner consumes a per-minute demand-fraction signal (measured or
// forecast) and emits a profiling plan: which processors to isolate when.
#pragma once

#include <cstddef>
#include <vector>

#include "energy/hybrid_supply.hpp"

namespace iscope {

struct ProfilingWindow {
  double start_s = 0.0;
  double duration_s = 0.0;
  /// Processors scanned in this window (one profiling domain per window).
  std::vector<std::size_t> proc_ids;
};

struct OpportunisticConfig {
  /// Demand fraction below which a minute counts as idle-enough.
  double utilization_threshold = 0.30;
  /// Require renewable generation during the window (profiling-flow
  /// stage 1: "when the renewable energy generation is available").
  bool require_wind = false;
  Watts min_wind;           ///< wind level counting as "available"
  /// Wall time needed to scan one processor [s].
  double scan_time_per_proc_s = 0.0;
  /// Processors per profiling domain (scanned back-to-back in one window).
  std::size_t domain_size = 8;

  void validate() const;
};

struct ProfilingPlan {
  std::vector<ProfilingWindow> windows;
  /// Processors that could not be placed within the horizon.
  std::vector<std::size_t> unplaced;

  std::size_t placed_count() const;
};

/// Statistics of the idle time available for profiling -- the paper's
/// Fig. 10 analysis ("required processors < 30% accounts for 27.2% of one
/// day" and the free time is contiguous, not scattered).
struct IdleWindowStats {
  double idle_fraction = 0.0;          ///< fraction of minutes below threshold
  double longest_window_s = 0.0;       ///< longest contiguous idle stretch
  double mean_window_s = 0.0;          ///< mean contiguous idle stretch
  std::size_t window_count = 0;
};

IdleWindowStats analyze_idle_windows(const std::vector<double>& demand_fraction,
                                     double threshold);

/// Plan scans of `proc_ids` into idle windows of the given per-minute
/// demand signal. Deterministic.
ProfilingPlan plan_profiling(const std::vector<double>& demand_fraction,
                             const HybridSupply& supply,
                             std::vector<std::size_t> proc_ids,
                             const OpportunisticConfig& config);

}  // namespace iscope
