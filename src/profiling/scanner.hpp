// The iScope scanner: master/slave dynamic hardware scanning
// (paper Sec. III, Fig. 2/3).
//
// An idle master node drives each slave core in a *profiling domain*
// through a voltage sweep at every frequency level: starting from the stock
// voltage, the supply is gradually decreased (the paper's Sec. V-A
// methodology) until the stability test fails; the lowest passing voltage,
// plus a small safety margin, is recorded as the discovered Min Vdd. A
// recorded "fail" forces all lower voltages at the same frequency bin to
// "fail" (profiling-flow stage 6), so the sweep stops at the first failure.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "profiling/failing_test.hpp"
#include "profiling/profile_db.hpp"

namespace iscope {

/// How the scanner walks the voltage grid at each frequency level.
enum class SearchStrategy : std::uint8_t {
  /// The paper's flow: start at stock voltage and step down until the
  /// first failure (a recorded fail forces all lower points to fail).
  kLinearDescent,
  /// Bisect the grid for the pass/fail boundary: O(log n) trials per
  /// level instead of O(n). Assumes monotone pass/fail (true up to noise;
  /// the safety margin covers the rest) -- the strategy real speed-debug
  /// flows use, and the knob behind the cost table in
  /// bench_ablation_scan_strategy.
  kBinarySearch,
};

struct ScanConfig {
  TestKind kind = TestKind::kFunctionalFailing;
  SearchStrategy strategy = SearchStrategy::kLinearDescent;
  /// Voltage grid points per frequency level (paper Sec. VI-E uses 10).
  std::size_t voltage_points = 10;
  /// The sweep spans [vdd_nom * (1 - sweep_depth), vdd_nom] at each level.
  double sweep_depth = 0.25;
  /// Safety margin added on top of the lowest passing voltage, as a
  /// fraction (protects against run-to-run threshold wobble).
  double safety_margin = 0.005;
  /// Pass/fail trials per grid point (majority vote if > 1).
  std::size_t repeats = 1;
  /// Run-to-run wobble of the observed failure threshold (relative sigma;
  /// see StabilityTester).
  double noise_sigma = 0.002;
  /// Cores scanned in parallel within a chip. All cores of a chip are
  /// exercised concurrently by the real toolchain, so a chip scan's wall
  /// time is the per-core sweep time, not the sum.
  bool parallel_cores = true;

  void validate() const;
};

class Scanner {
 public:
  Scanner(const Cluster* cluster, const ScanConfig& config);

  /// Scan one processor: full V/F sweep on every core. `now_s` stamps the
  /// resulting profile.
  ChipProfile scan_chip(std::size_t proc_id, double now_s, Rng& rng) const;

  /// Scan a profiling domain (a group of processors handled by one master);
  /// results are stored into `db`. Returns aggregate wall time of the
  /// domain scan (processors in a domain are scanned sequentially by the
  /// single master).
  double scan_domain(const std::vector<std::size_t>& proc_ids, double now_s,
                     Rng& rng, ProfileDb& db) const;

  const ScanConfig& config() const { return config_; }

 private:
  const Cluster* cluster_;  // non-owning
  ScanConfig config_;
  StabilityTester tester_;
};

}  // namespace iscope
