#include "profiling/opportunistic.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace iscope {

void OpportunisticConfig::validate() const {
  ISCOPE_CHECK_ARG(utilization_threshold > 0.0 && utilization_threshold <= 1.0,
                   "opportunistic: threshold must be in (0,1]");
  ISCOPE_CHECK_ARG(min_wind.raw() >= 0.0, "opportunistic: negative wind level");
  ISCOPE_CHECK_ARG(scan_time_per_proc_s > 0.0,
                   "opportunistic: scan time must be > 0");
  ISCOPE_CHECK_ARG(domain_size > 0, "opportunistic: empty domain");
}

std::size_t ProfilingPlan::placed_count() const {
  std::size_t n = 0;
  for (const auto& w : windows) n += w.proc_ids.size();
  return n;
}

IdleWindowStats analyze_idle_windows(const std::vector<double>& demand_fraction,
                                     double threshold) {
  ISCOPE_CHECK_ARG(threshold > 0.0 && threshold <= 1.0,
                   "analyze_idle_windows: threshold in (0,1]");
  IdleWindowStats stats;
  if (demand_fraction.empty()) return stats;

  std::size_t idle_minutes = 0;
  double current_run = 0.0;
  double total_run = 0.0;
  for (const double d : demand_fraction) {
    if (d < threshold) {
      ++idle_minutes;
      current_run += 60.0;
    } else if (current_run > 0.0) {
      stats.longest_window_s = std::max(stats.longest_window_s, current_run);
      total_run += current_run;
      ++stats.window_count;
      current_run = 0.0;
    }
  }
  if (current_run > 0.0) {
    stats.longest_window_s = std::max(stats.longest_window_s, current_run);
    total_run += current_run;
    ++stats.window_count;
  }
  stats.idle_fraction = static_cast<double>(idle_minutes) /
                        static_cast<double>(demand_fraction.size());
  stats.mean_window_s = stats.window_count == 0
                            ? 0.0
                            : total_run / static_cast<double>(stats.window_count);
  return stats;
}

ProfilingPlan plan_profiling(const std::vector<double>& demand_fraction,
                             const HybridSupply& supply,
                             std::vector<std::size_t> proc_ids,
                             const OpportunisticConfig& config) {
  config.validate();
  ProfilingPlan plan;
  if (proc_ids.empty()) return plan;

  const double domain_time_s =
      config.scan_time_per_proc_s * static_cast<double>(config.domain_size);

  // Walk contiguous idle stretches; each stretch hosts as many whole
  // domains as fit.
  std::size_t next = 0;  // next unplaced processor
  std::size_t m = 0;
  while (m < demand_fraction.size() && next < proc_ids.size()) {
    auto minute_ok = [&](std::size_t i) {
      if (demand_fraction[i] >= config.utilization_threshold) return false;
      if (config.require_wind &&
          supply.wind_available(Seconds{static_cast<double>(i) * 60.0}) <
              config.min_wind)
        return false;
      return true;
    };
    if (!minute_ok(m)) {
      ++m;
      continue;
    }
    std::size_t end = m;
    while (end < demand_fraction.size() && minute_ok(end)) ++end;
    double window_s = static_cast<double>(end - m) * 60.0;

    double t = static_cast<double>(m) * 60.0;
    while (window_s >= domain_time_s && next < proc_ids.size()) {
      ProfilingWindow w;
      w.start_s = t;
      w.duration_s = domain_time_s;
      const std::size_t take =
          std::min(config.domain_size, proc_ids.size() - next);
      w.proc_ids.assign(proc_ids.begin() + static_cast<std::ptrdiff_t>(next),
                        proc_ids.begin() +
                            static_cast<std::ptrdiff_t>(next + take));
      next += take;
      plan.windows.push_back(std::move(w));
      t += domain_time_s;
      window_s -= domain_time_s;
    }
    m = end;
  }
  plan.unplaced.assign(proc_ids.begin() + static_cast<std::ptrdiff_t>(next),
                       proc_ids.end());
  return plan;
}

}  // namespace iscope
