#include "profiling/scanner.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "telemetry/telemetry.hpp"

namespace iscope {

namespace {

/// Observation-only scan accounting; chips may be scanned from pool
/// workers (parallel sweeps), so updates pay for the RMW.
void count_scanned_chip(const ChipProfile& profile) {
  telemetry::Registry& reg = telemetry::Registry::global();
  static telemetry::Counter& chips =
      reg.counter("iscope_scan_chips_total", "Chips profiled").get();
  chips.inc_concurrent();
  static telemetry::Counter& trials =
      reg.counter("iscope_scan_trials_total", "Stability trials run").get();
  trials.inc_concurrent(profile.trials);
  static telemetry::Gauge& energy = reg.gauge(
      "iscope_scan_energy_joules", "Cumulative scan energy burned").get();
  energy.add_concurrent(profile.scan_energy_j);
  static telemetry::Gauge& time = reg.gauge(
      "iscope_scan_busy_seconds", "Cumulative per-chip scan wall time").get();
  time.add_concurrent(profile.scan_time_s);
}

}  // namespace

void ScanConfig::validate() const {
  ISCOPE_CHECK_ARG(voltage_points >= 2, "ScanConfig: need >= 2 voltage points");
  ISCOPE_CHECK_ARG(sweep_depth > 0.0 && sweep_depth < 0.6,
                   "ScanConfig: sweep depth out of range");
  ISCOPE_CHECK_ARG(safety_margin >= 0.0 && safety_margin < 0.1,
                   "ScanConfig: safety margin out of range");
  ISCOPE_CHECK_ARG(repeats >= 1, "ScanConfig: repeats must be >= 1");
}

Scanner::Scanner(const Cluster* cluster, const ScanConfig& config)
    : cluster_(cluster), config_(config),
      tester_(cluster, config.kind, config.noise_sigma) {
  ISCOPE_CHECK_ARG(cluster != nullptr, "Scanner: null cluster");
  config_.validate();
}

ChipProfile Scanner::scan_chip(std::size_t proc_id, double now_s,
                               Rng& rng) const {
  ISCOPE_SPAN("scan_chip");
  const Processor& p = cluster_->proc(proc_id);
  const FreqLevels& levels = cluster_->levels();

  ChipProfile profile;
  profile.proc_id = proc_id;
  profile.profiled_at_s = now_s;

  double max_core_time_s = 0.0;
  for (std::size_t core = 0; core < p.core_count(); ++core) {
    std::vector<double> discovered(levels.count(), 0.0);
    double core_time_s = 0.0;
    for (std::size_t level = 0; level < levels.count(); ++level) {
      const double v_hi = levels.vdd_nom[level];
      const double v_lo = v_hi * (1.0 - config_.sweep_depth);
      const double step =
          (v_hi - v_lo) / static_cast<double>(config_.voltage_points - 1);

      auto trial_passes = [&](double v) {
        std::size_t passes = 0;
        for (std::size_t r = 0; r < config_.repeats; ++r) {
          const TrialResult trial = tester_.run(proc_id, core, level, v, rng);
          core_time_s += trial.duration_s;
          profile.scan_energy_j += trial.energy_j;
          ++profile.trials;
          if (trial.passed) ++passes;
        }
        return 2 * passes > config_.repeats;
      };

      auto grid_v = [&](std::size_t k) {
        return v_hi - static_cast<double>(k) * step;
      };

      double lowest_pass;
      if (!trial_passes(v_hi)) {
        // The chip cannot sustain this frequency at stock voltage (a slow
        // outlier): sweep *upward* until it passes, i.e. over-volt it.
        // Guard the ascent so a broken part cannot loop forever.
        double v = v_hi;
        const double v_ceiling = v_hi * (1.0 + config_.sweep_depth);
        while (v < v_ceiling && !trial_passes(v + step)) v += step;
        lowest_pass = v + step;
      } else if (config_.strategy == SearchStrategy::kBinarySearch) {
        // Invariant: grid index lo passes, index hi fails (or is one past
        // the bottom of the grid). Bisect the boundary.
        std::size_t lo = 0;
        std::size_t hi = config_.voltage_points;  // sentinel: below grid
        if (trial_passes(grid_v(config_.voltage_points - 1))) {
          lo = config_.voltage_points - 1;
        } else {
          hi = config_.voltage_points - 1;
          while (hi - lo > 1) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (trial_passes(grid_v(mid))) lo = mid;
            else hi = mid;
          }
        }
        lowest_pass = grid_v(lo);
      } else {
        // Linear descent from stock voltage; the first failing grid point
        // ends the sweep (lower voltages are forced-fail per the
        // profiling flow).
        lowest_pass = v_hi;
        for (std::size_t k = 1; k < config_.voltage_points; ++k) {
          if (!trial_passes(grid_v(k))) break;
          lowest_pass = grid_v(k);
        }
      }
      discovered[level] = lowest_pass * (1.0 + config_.safety_margin);
    }
    // Enforce monotonicity across levels (noise could produce a dip).
    for (std::size_t level = 1; level < discovered.size(); ++level)
      discovered[level] = std::max(discovered[level], discovered[level - 1]);
    profile.core_vdd.emplace_back(levels.freq_ghz, std::move(discovered));
    max_core_time_s = std::max(max_core_time_s, core_time_s);
    if (!config_.parallel_cores) profile.scan_time_s += core_time_s;
  }
  if (config_.parallel_cores) profile.scan_time_s = max_core_time_s;

  profile.chip_vdd = MinVddCurve::chip_worst_case(profile.core_vdd);
  if (telemetry::enabled()) count_scanned_chip(profile);
  return profile;
}

double Scanner::scan_domain(const std::vector<std::size_t>& proc_ids,
                            double now_s, Rng& rng, ProfileDb& db) const {
  ISCOPE_SPAN("scan_domain");
  double wall_s = 0.0;
  double t = now_s;
  for (const std::size_t id : proc_ids) {
    ChipProfile profile = scan_chip(id, t, rng);
    wall_s += profile.scan_time_s;
    t += profile.scan_time_s;
    db.store(std::move(profile));
  }
  return wall_s;
}

}  // namespace iscope
