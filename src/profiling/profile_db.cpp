#include "profiling/profile_db.hpp"

#include <fstream>
#include <map>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace iscope {

ProfileDb::ProfileDb(std::size_t num_processors)
    : profiles_(num_processors) {
  ISCOPE_CHECK_ARG(num_processors > 0, "ProfileDb: empty database");
}

bool ProfileDb::is_profiled(std::size_t proc_id) const {
  ISCOPE_CHECK_ARG(proc_id < profiles_.size(), "ProfileDb: id out of range");
  return profiles_[proc_id].has_value();
}

void ProfileDb::store(ChipProfile profile) {
  ISCOPE_CHECK_ARG(profile.proc_id < profiles_.size(),
                   "ProfileDb: id out of range");
  if (!profiles_[profile.proc_id].has_value()) ++profiled_count_;
  profiles_[profile.proc_id] = std::move(profile);
}

const ChipProfile* ProfileDb::find(std::size_t proc_id) const {
  ISCOPE_CHECK_ARG(proc_id < profiles_.size(), "ProfileDb: id out of range");
  return profiles_[proc_id].has_value() ? &*profiles_[proc_id] : nullptr;
}

const ChipProfile& ProfileDb::get(std::size_t proc_id) const {
  const ChipProfile* p = find(proc_id);
  if (p == nullptr)
    throw InvalidArgument("ProfileDb: processor " + std::to_string(proc_id) +
                          " has no profile");
  return *p;
}

std::vector<std::size_t> ProfileDb::stale(double cutoff_s) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    if (!profiles_[i].has_value() || profiles_[i]->profiled_at_s < cutoff_s)
      out.push_back(i);
  }
  return out;
}

double ProfileDb::total_scan_time_s() const {
  double s = 0.0;
  for (const auto& p : profiles_)
    if (p) s += p->scan_time_s;
  return s;
}

double ProfileDb::total_scan_energy_j() const {
  double s = 0.0;
  for (const auto& p : profiles_)
    if (p) s += p->scan_energy_j;
  return s;
}

std::size_t ProfileDb::total_trials() const {
  std::size_t s = 0;
  for (const auto& p : profiles_)
    if (p) s += p->trials;
  return s;
}

void ProfileDb::save_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ParseError("cannot open for write: " + path);
  CsvWriter w(out);
  w.write_row({"proc_id", "core", "level", "freq_ghz", "vdd", "profiled_at_s"});
  for (const auto& p : profiles_) {
    if (!p) continue;
    for (std::size_t c = 0; c < p->core_vdd.size(); ++c) {
      const MinVddCurve& curve = p->core_vdd[c];
      for (std::size_t l = 0; l < curve.levels(); ++l) {
        w.write_row_numeric({static_cast<double>(p->proc_id),
                             static_cast<double>(c), static_cast<double>(l),
                             curve.freq(l), curve.vdd(l), p->profiled_at_s});
      }
    }
  }
}

ProfileDb ProfileDb::load_csv(const std::string& path,
                              std::size_t num_processors) {
  const CsvDocument doc = read_csv_file(path, /*has_header=*/true);
  const std::size_t pid_col = doc.column("proc_id");
  const std::size_t core_col = doc.column("core");
  const std::size_t level_col = doc.column("level");
  const std::size_t freq_col = doc.column("freq_ghz");
  const std::size_t vdd_col = doc.column("vdd");
  const std::size_t at_col = doc.column("profiled_at_s");

  // Gather (proc, core) -> level-ordered samples.
  struct CoreSamples {
    std::map<std::size_t, std::pair<double, double>> by_level;  // freq, vdd
  };
  std::map<std::size_t, std::map<std::size_t, CoreSamples>> chips;
  std::map<std::size_t, double> profiled_at;
  for (const auto& row : doc.rows) {
    const auto pid = static_cast<std::size_t>(parse_int(row[pid_col]));
    const auto core = static_cast<std::size_t>(parse_int(row[core_col]));
    const auto level = static_cast<std::size_t>(parse_int(row[level_col]));
    chips[pid][core].by_level[level] = {parse_double(row[freq_col]),
                                        parse_double(row[vdd_col])};
    profiled_at[pid] = parse_double(row[at_col]);
  }

  ProfileDb db(num_processors);
  for (auto& [pid, cores] : chips) {
    ChipProfile profile;
    profile.proc_id = pid;
    profile.profiled_at_s = profiled_at[pid];
    for (auto& [core_id, samples] : cores) {
      (void)core_id;
      std::vector<double> freqs, vdds;
      for (auto& [level, fv] : samples.by_level) {
        (void)level;
        freqs.push_back(fv.first);
        vdds.push_back(fv.second);
      }
      profile.core_vdd.emplace_back(std::move(freqs), std::move(vdds));
    }
    profile.chip_vdd = MinVddCurve::chip_worst_case(profile.core_vdd);
    db.store(std::move(profile));
  }
  return db;
}

}  // namespace iscope
