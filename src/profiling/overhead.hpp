// Profiling overhead accounting (paper Sec. VI-E).
//
// The paper prices a full-facility profiling campaign by assuming every
// processor burns its TDP (115 W, the Opteron 6300 maximum) for the whole
// sweep of 5 frequency bins x 10 voltage points, under either the
// 10-minute stress test (230 USD wind / 598 USD utility for 4800 CPUs) or
// the 29-second functional failing test (11.2 / 28.9 USD).
#pragma once

#include <cstddef>

#include "power/cost.hpp"
#include "profiling/failing_test.hpp"

namespace iscope {

struct OverheadConfig {
  std::size_t processors = 4800;
  Watts tdp{115.0};              ///< Opteron 6300 series max TDP
  std::size_t freq_bins = 5;
  std::size_t voltage_points = 10;
  TestKind kind = TestKind::kStress;
  EnergyPrices prices;

  void validate() const;
};

struct OverheadReport {
  Seconds per_proc_time;   ///< sweep wall time per processor
  Joules total_energy;     ///< facility-wide campaign energy
  Usd cost_wind;           ///< campaign priced at the wind rate
  Usd cost_utility;        ///< campaign priced at the utility rate
};

/// Closed-form campaign cost, exactly the paper's arithmetic.
OverheadReport compute_overhead(const OverheadConfig& config);

}  // namespace iscope
