// Profiling records database (paper Sec. III-C).
//
// The scanner reports discovered per-core Min Vdd values back to the
// scheduler, which stores them here. The database tracks which processors
// are adequately profiled, when they were last scanned (periodic
// re-profiling guards against aging-induced drift), and serializes to CSV
// so a datacenter can persist its variation map.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "variation/vdd_model.hpp"

namespace iscope {

/// Discovered characteristics of one processor.
struct ChipProfile {
  std::size_t proc_id = 0;
  std::vector<MinVddCurve> core_vdd;  ///< discovered per-core curves
  MinVddCurve chip_vdd;               ///< shared-domain worst case
  double profiled_at_s = 0.0;         ///< simulation time of the scan
  std::size_t trials = 0;             ///< pass/fail tests executed
  double scan_time_s = 0.0;           ///< wall time the scan occupied
  double scan_energy_j = 0.0;         ///< energy burned by the scan
};

class ProfileDb {
 public:
  explicit ProfileDb(std::size_t num_processors);

  std::size_t size() const { return profiles_.size(); }

  bool is_profiled(std::size_t proc_id) const;
  /// Store/overwrite a processor's profile.
  void store(ChipProfile profile);
  /// Profile of a processor; nullopt if never scanned.
  const ChipProfile* find(std::size_t proc_id) const;
  /// Profile of a processor; throws if never scanned.
  const ChipProfile& get(std::size_t proc_id) const;

  std::size_t profiled_count() const { return profiled_count_; }
  /// Processors never profiled, or last profiled before `cutoff_s`.
  std::vector<std::size_t> stale(double cutoff_s) const;

  /// Aggregate scan cost over all stored profiles.
  double total_scan_time_s() const;
  double total_scan_energy_j() const;
  std::size_t total_trials() const;

  /// CSV round-trip: proc_id, core, level, freq_ghz, vdd, profiled_at_s.
  void save_csv(const std::string& path) const;
  static ProfileDb load_csv(const std::string& path,
                            std::size_t num_processors);

 private:
  std::vector<std::optional<ChipProfile>> profiles_;
  std::size_t profiled_count_ = 0;
};

}  // namespace iscope
