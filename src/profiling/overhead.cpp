#include "profiling/overhead.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace iscope {

void OverheadConfig::validate() const {
  ISCOPE_CHECK_ARG(processors > 0, "overhead: no processors");
  ISCOPE_CHECK_ARG(tdp.raw() > 0.0, "overhead: TDP must be > 0");
  ISCOPE_CHECK_ARG(freq_bins > 0 && voltage_points > 0,
                   "overhead: empty sweep grid");
}

OverheadReport compute_overhead(const OverheadConfig& config) {
  config.validate();
  OverheadReport report;
  const Seconds trial{test_duration_s(config.kind)};
  report.per_proc_time =
      trial * static_cast<double>(config.freq_bins * config.voltage_points);
  report.total_energy = config.tdp * report.per_proc_time *
                        static_cast<double>(config.processors);
  report.cost_wind = report.total_energy * config.prices.wind_rate;
  report.cost_utility = report.total_energy * config.prices.utility_rate;
  return report;
}

}  // namespace iscope
