#include "profiling/overhead.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace iscope {

void OverheadConfig::validate() const {
  ISCOPE_CHECK_ARG(processors > 0, "overhead: no processors");
  ISCOPE_CHECK_ARG(tdp_w > 0.0, "overhead: TDP must be > 0");
  ISCOPE_CHECK_ARG(freq_bins > 0 && voltage_points > 0,
                   "overhead: empty sweep grid");
}

OverheadReport compute_overhead(const OverheadConfig& config) {
  config.validate();
  OverheadReport report;
  const double trial_s = test_duration_s(config.kind);
  report.per_proc_time_s =
      trial_s * static_cast<double>(config.freq_bins * config.voltage_points);
  const double total_j = report.per_proc_time_s * config.tdp_w *
                         static_cast<double>(config.processors);
  report.total_energy_kwh = units::joules_to_kwh(total_j);
  report.cost_wind_usd =
      report.total_energy_kwh * config.prices.wind_usd_per_kwh;
  report.cost_utility_usd =
      report.total_energy_kwh * config.prices.utility_usd_per_kwh;
  return report;
}

}  // namespace iscope
