#include "profiling/failing_test.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace iscope {

double test_duration_s(TestKind kind) {
  switch (kind) {
    case TestKind::kStress:
      return units::minutes_to_s(10.0);
    case TestKind::kFunctionalFailing:
      return 29.0;
  }
  throw InvalidArgument("unknown TestKind");
}

StabilityTester::StabilityTester(const Cluster* cluster, TestKind kind,
                                 double noise_sigma)
    : cluster_(cluster), kind_(kind), noise_sigma_(noise_sigma) {
  ISCOPE_CHECK_ARG(cluster != nullptr, "StabilityTester: null cluster");
  ISCOPE_CHECK_ARG(noise_sigma >= 0.0 && noise_sigma < 0.1,
                   "StabilityTester: noise sigma out of range");
}

TrialResult StabilityTester::run(std::size_t proc, std::size_t core,
                                 std::size_t level, double vdd,
                                 Rng& rng) const {
  const Processor& p = cluster_->proc(proc);
  ISCOPE_CHECK_ARG(core < p.core_count(), "StabilityTester: bad core index");
  ISCOPE_CHECK_ARG(vdd > 0.0, "StabilityTester: voltage must be > 0");

  const double v_true = p.core_truth[core].vdd(level);
  // The observed threshold wobbles slightly between runs.
  const double v_observed =
      v_true * (1.0 + rng.normal(0.0, noise_sigma_));

  TrialResult r;
  r.passed = vdd >= v_observed;
  r.duration_s = test_duration_s(kind_);
  // The chip under test burns power at the tested configuration for the
  // whole trial (a failing run is detected only at result check).
  r.energy_j =
      (cluster_->power(proc, level, Volts{vdd}) * Seconds{r.duration_s})
          .joules();
  return r;
}

}  // namespace iscope
