// Simulated software-based stability tests (paper Sec. III-A).
//
// The real iScope scanner runs either a 10-minute Mprime-style stress test
// or a 29-second software-based functional failing test [20] on a core at a
// chosen (frequency, voltage) point and observes pass/fail. Here the chip's
// physical behaviour is the ground-truth Min Vdd curve: a trial passes iff
// the applied voltage is at or above the core's true minimum, perturbed by
// a small measurement noise (thermal/droop conditions vary run to run).
//
// The tester also accounts the time and energy each trial costs, feeding
// the Sec. VI-E overhead analysis.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "hardware/cluster.hpp"

namespace iscope {

enum class TestKind : std::uint8_t {
  kStress,            ///< Mprime-style stress test: 10 minutes / trial
  kFunctionalFailing, ///< SBFFT of ref [20]: 29 seconds / trial
};

/// Trial duration [s] for a test kind (paper Sec. III-C / VI-E).
double test_duration_s(TestKind kind);

struct TrialResult {
  bool passed = false;
  double duration_s = 0.0;
  double energy_j = 0.0;  ///< energy burned by the chip under test
};

class StabilityTester {
 public:
  /// `noise_sigma` is the relative run-to-run wobble of the observed
  /// failure threshold (0 = noiseless oracle).
  StabilityTester(const Cluster* cluster, TestKind kind,
                  double noise_sigma = 0.002);

  /// Run one trial on `core` of `proc` at frequency level `level` with
  /// supply `vdd`. Deterministic given the RNG state.
  TrialResult run(std::size_t proc, std::size_t core, std::size_t level,
                  double vdd, Rng& rng) const;

  TestKind kind() const { return kind_; }

 private:
  const Cluster* cluster_;  // non-owning
  TestKind kind_;
  double noise_sigma_;
};

}  // namespace iscope
