// Markdown report builder.
//
// Backs `bench_make_experiments_report`, which regenerates EXPERIMENTS.md
// from live runs: the paper-vs-measured record is produced by code, not
// transcribed by hand, so it cannot silently drift from the
// implementation.
#pragma once

#include <string>
#include <vector>

namespace iscope {

class MarkdownReport {
 public:
  /// `#`-style heading; level 1..6.
  void heading(int level, const std::string& text);
  void paragraph(const std::string& text);
  void bullet(const std::string& text);
  /// GitHub-style table.
  void table(const std::vector<std::string>& header,
             const std::vector<std::vector<std::string>>& rows);
  void code_block(const std::string& text, const std::string& lang = "");

  const std::string& str() const { return out_; }
  void save(const std::string& path) const;

 private:
  std::string out_;
};

/// Format helpers shared by report writers.
std::string md_num(double v, int digits = 1);
std::string md_pct(double fraction, int digits = 1);

}  // namespace iscope
