#include "core/iscope.hpp"

#include <utility>

#include "common/error.hpp"

namespace iscope {

IScope::Options::Options() {
  // One full V/F sweep per processor at the configured scanner settings.
  opportunistic.scan_time_per_proc_s =
      test_duration_s(scan.kind) * static_cast<double>(scan.voltage_points);
}

IScope::IScope(const Options& options)
    : options_(options),
      cluster_(std::make_unique<Cluster>(build_cluster(options.cluster))),
      db_(cluster_->size()),
      scan_rng_(Rng(options.seed).fork("iscope-scan")),
      cumulative_wear_s_(cluster_->size(), 0.0) {
  ISCOPE_CHECK_ARG(options.rescan_period_s > 0.0,
                   "IScope: rescan period must be > 0");
  options_.aging.validate();
  // Make the per-processor scan time consistent with the scan config and
  // the actual number of frequency levels.
  options_.opportunistic.scan_time_per_proc_s =
      test_duration_s(options_.scan.kind) *
      static_cast<double>(options_.scan.voltage_points) *
      static_cast<double>(cluster_->levels().count());
}

std::vector<std::size_t> IScope::stale_processors(double now_s) const {
  return db_.stale(now_s - options_.rescan_period_s);
}

ProfilingPlan IScope::plan_scans(const std::vector<double>& demand_fraction,
                                 const HybridSupply& supply,
                                 double now_s) const {
  return plan_profiling(demand_fraction, supply, stale_processors(now_s),
                        options_.opportunistic);
}

void IScope::execute_plan(const ProfilingPlan& plan) {
  const Scanner scanner(cluster_.get(), options_.scan);
  for (const ProfilingWindow& w : plan.windows)
    scanner.scan_domain(w.proc_ids, w.start_s, scan_rng_, db_);
}

void IScope::scan_all(double now_s) {
  const Scanner scanner(cluster_.get(), options_.scan);
  std::vector<std::size_t> all(cluster_->size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  scanner.scan_domain(all, now_s, scan_rng_, db_);
}

void IScope::apply_wear(const std::vector<double>& busy_time_s) {
  ISCOPE_CHECK_ARG(busy_time_s.size() == cluster_->size(),
                   "IScope: one wear entry per processor required");
  for (std::size_t i = 0; i < busy_time_s.size(); ++i) {
    ISCOPE_CHECK_ARG(busy_time_s[i] >= 0.0, "IScope: negative wear");
    cumulative_wear_s_[i] += busy_time_s[i];
  }
  // Rebuild the physical truth from the *pristine* fabrication state aged
  // by the cumulative stress (the power law is over total stress time).
  const Cluster pristine = build_cluster(options_.cluster);
  *cluster_ = aged_cluster(pristine, cumulative_wear_s_, options_.aging);
}

std::size_t IScope::undervolt_violations() const {
  // The same map the Scan schemes would apply: latest scan where present,
  // factory bin spec otherwise.
  std::vector<std::vector<double>> applied(cluster_->size());
  for (std::size_t i = 0; i < cluster_->size(); ++i) {
    const ChipProfile* p = db_.find(i);
    for (std::size_t l = 0; l < cluster_->levels().count(); ++l) {
      applied[i].push_back(p != nullptr ? p->chip_vdd.vdd(l)
                                        : cluster_->bin_vdd(i, l).volts());
    }
  }
  return count_undervolt_violations(*cluster_, applied);
}

SimResult IScope::schedule(Scheme scheme, const std::vector<Task>& tasks,
                           const HybridSupply& supply,
                           const WindForecaster* forecaster) const {
  const Knowledge knowledge(cluster_.get(), scheme_knowledge(scheme),
                            scheme_uses_scan(scheme) ? &db_ : nullptr);
  DatacenterSim sim(&knowledge, scheme_rule(scheme), &supply, options_.sim,
                    forecaster);
  return sim.run(tasks);
}

SimResult IScope::schedule_with_profiling(Scheme scheme,
                                          const std::vector<Task>& tasks,
                                          const HybridSupply& supply,
                                          const ProfilingPlan& plan) const {
  const Knowledge knowledge(cluster_.get(), scheme_knowledge(scheme),
                            scheme_uses_scan(scheme) ? &db_ : nullptr);
  DatacenterSim sim(&knowledge, scheme_rule(scheme), &supply, options_.sim);
  return sim.run(tasks, plan.windows);
}

double IScope::total_wear_s(std::size_t proc) const {
  ISCOPE_CHECK_ARG(proc < cumulative_wear_s_.size(),
                   "IScope: processor out of range");
  return cumulative_wear_s_[proc];
}

}  // namespace iscope
