// The iScope framework facade -- the paper's two automated processes as a
// long-lived service object:
//
//   1. *Dynamic hardware scanning* (Sec. III): maintain a Min Vdd profile
//      database over the fleet, plan opportunistic scans into
//      low-utilization windows, and re-scan periodically because chips
//      drift as they age.
//   2. *Variation-aware scheduling* (Sec. IV): run workloads under any of
//      the Table-2 schemes against a hybrid wind+utility supply.
//
// A typical operator loop:
//
//   IScope::Options opt;
//   IScope iscope(opt);
//   iscope.execute_plan(iscope.plan_scans(demand, supply), now);   // scan
//   SimResult day = iscope.schedule(Scheme::kScanFair, tasks, supply);
//   iscope.apply_wear(day.busy_time_s);                            // age
//   // ...next day: stale chips get re-planned automatically.
//
// The facade owns the cluster (which it ages in place), the profile
// database, and the scanner; scheduling runs are side-effect-free apart
// from the returned metrics.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "energy/forecast.hpp"
#include "energy/hybrid_supply.hpp"
#include "hardware/aging.hpp"
#include "hardware/cluster.hpp"
#include "profiling/opportunistic.hpp"
#include "profiling/profile_db.hpp"
#include "profiling/scanner.hpp"
#include "sched/scheme.hpp"
#include "sim/simulator.hpp"

namespace iscope {

class IScope {
 public:
  struct Options {
    ClusterConfig cluster;
    ScanConfig scan;
    SimConfig sim;
    OpportunisticConfig opportunistic;
    AgingParams aging;
    /// Profiles older than this are treated as stale and re-planned
    /// (paper Sec. III-C: periodic profiling).
    double rescan_period_s = 30.0 * 86400.0;
    std::uint64_t seed = 2015;

    Options();  ///< fills opportunistic.scan_time_per_proc_s from `scan`
  };

  explicit IScope(const Options& options);

  // --- scanner side -----------------------------------------------------
  const ProfileDb& profiles() const { return db_; }
  /// Processors never profiled or last profiled before now - rescan_period.
  std::vector<std::size_t> stale_processors(double now_s) const;
  /// Plan scans of the stale processors into low-utilization windows of
  /// the given per-minute demand signal.
  ProfilingPlan plan_scans(const std::vector<double>& demand_fraction,
                           const HybridSupply& supply, double now_s) const;
  /// Execute a plan against the (current) silicon; profiles are stamped at
  /// each window's start time.
  void execute_plan(const ProfilingPlan& plan);
  /// Scan every processor immediately (commissioning).
  void scan_all(double now_s);

  // --- hardware lifecycle -------------------------------------------------
  /// Age the fleet by per-processor activity (seconds of busy time). The
  /// profile database keeps its (now slightly stale) entries -- that gap
  /// is what `undervolt_violations` measures and periodic re-scanning
  /// closes.
  void apply_wear(const std::vector<double>& busy_time_s);
  /// Latent stability violations if the current profile map were applied
  /// to the current (aged) silicon.
  std::size_t undervolt_violations() const;

  // --- scheduler side -----------------------------------------------------
  /// Run a workload under a Table-2 scheme. `forecaster` optionally
  /// informs ScanFair's deferral.
  SimResult schedule(Scheme scheme, const std::vector<Task>& tasks,
                     const HybridSupply& supply,
                     const WindForecaster* forecaster = nullptr) const;
  /// Run with in-band opportunistic profiling windows.
  SimResult schedule_with_profiling(Scheme scheme,
                                    const std::vector<Task>& tasks,
                                    const HybridSupply& supply,
                                    const ProfilingPlan& plan) const;

  const Cluster& cluster() const { return *cluster_; }
  const Options& options() const { return options_; }
  double total_wear_s(std::size_t proc) const;

 private:
  Options options_;
  std::unique_ptr<Cluster> cluster_;
  ProfileDb db_;
  Rng scan_rng_;
  std::vector<double> cumulative_wear_s_;
};

}  // namespace iscope
