#include "core/sweep.hpp"

#include <future>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/experiment.hpp"

namespace iscope {

namespace {

std::size_t resolve_parallelism(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace

SweepRunner::SweepRunner(const ExperimentContext& ctx)
    : SweepRunner(ctx, ctx.config().parallelism) {}

SweepRunner::SweepRunner(const ExperimentContext& ctx, std::size_t parallelism)
    : ctx_(&ctx), parallelism_(resolve_parallelism(parallelism)) {}

SimResult SweepRunner::run_one(const ScenarioSpec& spec) const {
  ISCOPE_CHECK_ARG(spec.tasks != nullptr, "ScenarioSpec: null task set");
  ISCOPE_CHECK_ARG(spec.supply != nullptr, "ScenarioSpec: null supply");
  SimConfig sim = spec.sim ? *spec.sim : ctx_->config().sim;
  if (spec.record_trace) sim.record_trace = true;
  sim.seed = spec.seed ? *spec.seed
                       : Rng(ctx_->config().seed)
                             .fork(placement_rule_name(scheme_rule(spec.scheme)))
                             .seed();
  return run_scheme(ctx_->cluster(), spec.scheme, &ctx_->profile_db(),
                    *spec.supply, *spec.tasks, sim);
}

std::vector<SimResult> SweepRunner::run(
    const std::vector<ScenarioSpec>& specs) const {
  std::vector<SimResult> results(specs.size());
  const std::size_t workers = std::min(parallelism_, specs.size());
  if (workers <= 1) {
    // Legacy serial path: no pool, no threads, same per-spec execution.
    for (std::size_t i = 0; i < specs.size(); ++i)
      results[i] = run_one(specs[i]);
    return results;
  }

  std::vector<std::future<SimResult>> futures;
  futures.reserve(specs.size());
  {
    ThreadPool pool(workers);
    for (const ScenarioSpec& spec : specs)
      futures.push_back(pool.submit([this, &spec]() { return run_one(spec); }));
    // Pool destructor drains the queue, so every future below is ready and
    // a throwing spec cannot leave workers touching `specs` after return.
  }
  for (std::size_t i = 0; i < specs.size(); ++i) results[i] = futures[i].get();
  return results;
}

std::vector<SweepPoint> SweepRunner::run_points(
    const std::vector<ScenarioSpec>& specs) const {
  std::vector<SimResult> results = run(specs);
  std::vector<SweepPoint> points(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    points[i].scheme = specs[i].scheme;
    points[i].x = specs[i].x;
    points[i].result = std::move(results[i]);
  }
  return points;
}

}  // namespace iscope
