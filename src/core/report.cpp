#include "core/report.hpp"

#include <fstream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace iscope {

void MarkdownReport::heading(int level, const std::string& text) {
  ISCOPE_CHECK_ARG(level >= 1 && level <= 6, "report: heading level 1..6");
  if (!out_.empty()) out_ += '\n';
  out_ += std::string(static_cast<std::size_t>(level), '#') + ' ' + text +
          "\n\n";
}

void MarkdownReport::paragraph(const std::string& text) {
  out_ += text + "\n\n";
}

void MarkdownReport::bullet(const std::string& text) {
  out_ += "* " + text + "\n";
}

void MarkdownReport::table(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows) {
  ISCOPE_CHECK_ARG(!header.empty(), "report: table needs a header");
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out_ += '|';
    for (const auto& c : cells) out_ += ' ' + c + " |";
    out_ += '\n';
  };
  emit_row(header);
  out_ += '|';
  for (std::size_t i = 0; i < header.size(); ++i) out_ += "---|";
  out_ += '\n';
  for (const auto& row : rows) {
    ISCOPE_CHECK_ARG(row.size() == header.size(),
                     "report: row width must match header");
    emit_row(row);
  }
  out_ += '\n';
}

void MarkdownReport::code_block(const std::string& text,
                                const std::string& lang) {
  out_ += "```" + lang + "\n" + text;
  if (text.empty() || text.back() != '\n') out_ += '\n';
  out_ += "```\n\n";
}

void MarkdownReport::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ParseError("cannot open for write: " + path);
  out << out_;
}

std::string md_num(double v, int digits) { return TextTable::num(v, digits); }

std::string md_pct(double fraction, int digits) {
  return TextTable::pct(fraction, digits);
}

}  // namespace iscope
