#include "core/config.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/error.hpp"
#include "power/cooling.hpp"

namespace iscope {

void ExperimentConfig::validate() const {
  cluster.validate();
  workload.validate();
  urgency.validate();
  wind.validate();
  scan.validate();
  sim.validate();
  ISCOPE_CHECK_ARG(wind_mean_fraction_of_peak >= 0.0,
                   "ExperimentConfig: negative wind fraction");
}

ExperimentConfig ExperimentConfig::paper_small() {
  ExperimentConfig cfg;
  cfg.cluster.num_processors = 480;
  cfg.workload.num_jobs = 800;
  // Keep per-CPU load comparable to the paper: widths capped to a modest
  // fraction of the cluster so gang tasks do not serialize the facility.
  cfg.workload.max_cpus = cfg.cluster.num_processors / 8;
  // Calibrated so offered load stays in the "adequate processors for the
  // incoming jobs" regime the paper assumes: mean width ~8, mean runtime
  // ~23 min, DVFS stretching included, gives ~40% average utilization on
  // 480 CPUs with a pronounced diurnal swing (needed for Fig. 10).
  cfg.workload.runtime_log_mu = 6.5;
  cfg.workload.runtime_log_sigma = 1.2;
  cfg.workload.pow2_fraction = 0.85;
  cfg.workload.mean_interarrival_s = 85.0;
  cfg.workload.diurnal_amplitude = 0.6;
  cfg.urgency.hu_fraction = 0.3;
  cfg.scan.kind = TestKind::kFunctionalFailing;
  // Fine grid + bisection: same trial count as the paper's 10-point linear
  // sweep, a third of the quantization error.
  cfg.scan.voltage_points = 30;
  cfg.scan.strategy = SearchStrategy::kBinarySearch;
  return cfg;
}

ExperimentConfig ExperimentConfig::paper_full() {
  ExperimentConfig cfg = paper_small();
  cfg.cluster.num_processors = 4800;
  cfg.workload.num_jobs = 8000;
  cfg.workload.max_cpus = 1200;
  cfg.workload.mean_interarrival_s = 10.0;
  return cfg;
}

ExperimentConfig ExperimentConfig::hyperscale(std::size_t procs) {
  ISCOPE_CHECK_ARG(procs >= 1024, "hyperscale: needs at least 1024 CPUs");
  ExperimentConfig cfg = paper_small();
  // Same jobs-per-CPU and arrival-rate-per-CPU as paper_small (480 CPUs,
  // 800 jobs, 85 s inter-arrival), so utilization stays in the paper's
  // "adequate processors" regime at any facility size.
  const double factor = static_cast<double>(procs) /
                        static_cast<double>(cfg.cluster.num_processors);
  cfg.workload.num_jobs = static_cast<std::size_t>(
      static_cast<double>(cfg.workload.num_jobs) * factor);
  cfg.workload.mean_interarrival_s = cfg.workload.mean_interarrival_s / factor;
  cfg.cluster.num_processors = procs;
  // Widths capped so any task fits a rack-aligned shard slice even at 64
  // shards of a 100k facility.
  cfg.workload.max_cpus = std::min<std::size_t>(1024, procs / 8);
  // Throughput preset: no deadline-rush pressure.
  cfg.urgency.hu_fraction = 0.0;
  return cfg;
}

ExperimentConfig ExperimentConfig::scaled(double factor) const {
  ISCOPE_CHECK_ARG(factor > 0.0, "ExperimentConfig: scale must be > 0");
  ExperimentConfig cfg = *this;
  const auto scale_sz = [&](std::size_t v) {
    return std::max<std::size_t>(1, static_cast<std::size_t>(
                                        static_cast<double>(v) * factor));
  };
  cfg.cluster.num_processors = scale_sz(cluster.num_processors);
  cfg.workload.num_jobs = scale_sz(workload.num_jobs);
  cfg.workload.max_cpus = std::max<std::size_t>(
      1, cfg.cluster.num_processors / 4);
  // More CPUs absorb a faster stream; keep utilization roughly constant.
  cfg.workload.mean_interarrival_s = workload.mean_interarrival_s / factor;
  return cfg;
}

double env_scale() {
  const char* s = std::getenv("ISCOPE_SCALE");
  if (s == nullptr || *s == '\0') return 1.0;
  const double v = std::strtod(s, nullptr);
  if (v <= 0.0) return 1.0;
  return std::clamp(v, 0.1, 20.0);
}

std::size_t env_parallelism() {
  const char* s = std::getenv("ISCOPE_PARALLEL");
  if (s == nullptr || *s == '\0') return 0;
  const long v = std::strtol(s, nullptr, 10);
  if (v < 0) return 0;
  return static_cast<std::size_t>(v);
}

FaultSpec env_fault_spec() {
  const char* s = std::getenv("ISCOPE_FAULTS");
  if (s == nullptr || *s == '\0') return FaultSpec{};
  return parse_fault_spec(s);
}

std::uint64_t env_fault_seed() {
  const char* s = std::getenv("ISCOPE_FAULT_SEED");
  if (s == nullptr || *s == '\0') return 0;
  return std::strtoull(s, nullptr, 10);
}

std::size_t env_shards() {
  const char* s = std::getenv("ISCOPE_SHARDS");
  if (s == nullptr || *s == '\0') return 1;
  const long v = std::strtol(s, nullptr, 10);
  if (v < 1) return 1;
  return static_cast<std::size_t>(v);
}

bool env_thermal() {
  const char* s = std::getenv("ISCOPE_THERMAL");
  if (s == nullptr || *s == '\0') return false;
  const std::string v{s};
  if (v == "0" || v == "off" || v == "false") return false;
  ISCOPE_CHECK_ARG(v == "1" || v == "on" || v == "true",
                   "ISCOPE_THERMAL: expected 0/1/on/off/true/false");
  return true;
}

SleepPolicy env_sleep_policy() {
  const char* s = std::getenv("ISCOPE_SLEEP_POLICY");
  if (s == nullptr || *s == '\0') return SleepPolicy::kNone;
  return parse_sleep_policy(s);
}

std::size_t env_shard_workers() {
  const char* s = std::getenv("ISCOPE_SHARD_WORKERS");
  if (s == nullptr || *s == '\0') return 1;
  const long v = std::strtol(s, nullptr, 10);
  if (v < 0) return 1;
  return static_cast<std::size_t>(v);
}

Watts estimated_peak_demand(const ClusterConfig& cluster, double cop) {
  const Gigahertz f_top{cluster.levels.freq_ghz.back()};
  const Watts per_cpu =
      WattsPerCubicGigahertz{cluster.power.alpha_mean} * f_top * f_top * f_top +
      Watts{cluster.power.beta_mean};
  return per_cpu * static_cast<double>(cluster.num_processors) *
         CoolingModel(cop).overhead_factor();
}

}  // namespace iscope
