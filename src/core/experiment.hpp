// Experiment runners: one entry point per paper figure/table.
//
// `ExperimentContext` builds the expensive shared state once -- cluster
// fabrication, the full in-cloud scan, the wind trace -- and the per-figure
// functions are thin ScenarioSpec builders over the sweep engine
// (core/sweep.hpp), which fans the (scheme x parameter) grid out over a
// thread pool sized by `ExperimentConfig::parallelism`. The bench binaries
// are thin formatting wrappers around these.
#pragma once

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/sweep.hpp"
#include "energy/hybrid_supply.hpp"
#include "profiling/profile_db.hpp"
#include "sched/scheme.hpp"
#include "sim/metrics.hpp"
#include "workload/task.hpp"

namespace iscope {

class ExperimentContext {
 public:
  explicit ExperimentContext(const ExperimentConfig& config);

  const ExperimentConfig& config() const { return config_; }
  const Cluster& cluster() const { return *cluster_; }
  const ProfileDb& profile_db() const { return *db_; }
  const SupplyTrace& wind_trace() const { return wind_trace_; }

  /// Base task set: synthetic Thunder-like jobs, widths clamped to the
  /// cluster, deadlines assigned with `hu_fraction`.
  std::vector<Task> make_tasks(double hu_fraction,
                               double arrival_rate = 1.0) const;

  /// Hybrid supply at a given SWP strength; `with_wind=false` gives the
  /// utility-only facility.
  HybridSupply make_supply(bool with_wind, double strength = 1.0) const;

  /// Run one scheme over one task set and supply, in the caller's thread
  /// (a single-spec convenience over `SweepRunner::run_one`).
  SimResult run(Scheme scheme, const std::vector<Task>& tasks,
                const HybridSupply& supply, bool record_trace = false) const;

 private:
  ExperimentConfig config_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<ProfileDb> db_;
  SupplyTrace wind_trace_;
};

/// Fig. 5(A) / 6(A,C): utility (and wind) energy vs %HU for all 5 schemes.
std::vector<SweepPoint> sweep_hu(const ExperimentContext& ctx,
                                 const std::vector<double>& hu_fractions,
                                 bool with_wind);

/// Fig. 5(B) / 6(B,D): energy vs job arrival rate for all 5 schemes.
std::vector<SweepPoint> sweep_arrival(const ExperimentContext& ctx,
                                      const std::vector<double>& rates,
                                      bool with_wind);

/// Fig. 9: per-CPU utilization-time variance vs SWP strength.
std::vector<SweepPoint> sweep_wind_strength(const ExperimentContext& ctx,
                                            const std::vector<double>& factors);

/// Fig. 7: power traces of the three Scan schemes (records PowerSamples).
std::vector<SweepPoint> power_traces(const ExperimentContext& ctx);

/// Fig. 8: energy cost of all schemes, with and without wind.
struct CostRow {
  Scheme scheme;
  bool with_wind = false;
  Usd cost;
  Joules utility;
  Joules wind;
  // Work counters of the underlying run (for the benchmark harness).
  std::size_t events = 0;
  std::size_t rematches = 0;
};
std::vector<CostRow> energy_costs(const ExperimentContext& ctx);

}  // namespace iscope
