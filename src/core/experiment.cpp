#include "core/experiment.hpp"

#include <numeric>
#include <sstream>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "profiling/scanner.hpp"
#include "sim/simulator.hpp"
#include "workload/urgency.hpp"

namespace iscope {

namespace {

std::string spec_label(Scheme scheme, const char* param, double x) {
  std::ostringstream os;
  os << scheme_name(scheme) << ' ' << param << '=' << x;
  return os.str();
}

}  // namespace

ExperimentContext::ExperimentContext(const ExperimentConfig& config)
    : config_(config) {
  config_.validate();

  // Fabricate the cluster.
  cluster_ = std::make_unique<Cluster>(build_cluster(config_.cluster));

  // Full in-cloud scan (the Scan schemes' knowledge). The overhead of this
  // campaign is analyzed separately (Sec. VI-E / bench_overhead_profiling).
  db_ = std::make_unique<ProfileDb>(cluster_->size());
  const Scanner scanner(cluster_.get(), config_.scan);
  Rng scan_rng = Rng(config_.seed).fork("scan");
  std::vector<std::size_t> all(cluster_->size());
  std::iota(all.begin(), all.end(), 0);
  scanner.scan_domain(all, 0.0, scan_rng, *db_);
  ISCOPE_INFO("scanned " << db_->profiled_count() << " processors, "
                         << db_->total_trials() << " trials");

  // Wind trace, scaled relative to facility peak demand (the paper's 3.5%
  // NREL down-scaling plays the same role).
  WindFarmConfig wind = config_.wind;
  wind.seed = Rng(config_.seed).fork("wind").seed();
  SupplyTrace raw = generate_wind_days(wind, 7.0);
  const Watts peak =
      estimated_peak_demand(config_.cluster, config_.sim.cooling_cop);
  wind_trace_ = raw.scaled_to_mean(config_.wind_mean_fraction_of_peak * peak);
}

std::vector<Task> ExperimentContext::make_tasks(double hu_fraction,
                                                double arrival_rate) const {
  SyntheticWorkloadConfig wl = config_.workload;
  wl.max_cpus = std::min(wl.max_cpus, cluster_->size());
  std::vector<Task> tasks = generate_workload(wl);
  UrgencyConfig urgency = config_.urgency;
  urgency.hu_fraction = hu_fraction;
  assign_deadlines(tasks, urgency);
  if (arrival_rate != 1.0)
    tasks = scale_arrival_rate(std::move(tasks), arrival_rate);
  return tasks;
}

HybridSupply ExperimentContext::make_supply(bool with_wind,
                                            double strength) const {
  if (!with_wind) return HybridSupply();
  // Supply-trace dropouts are injected here, at the feed, so the simulator
  // and every forecaster see the same faulted trace. The dropout windows
  // are drawn from their own RNG fork, so they are identical to the ones
  // the simulator's own plan (same spec + seed) would carry.
  if (config_.sim.fault_plan != nullptr)
    return HybridSupply(config_.sim.fault_plan->apply_dropouts(wind_trace_),
                        strength);
  if (config_.sim.faults.dropouts_per_day > 0.0)
    return HybridSupply(
        FaultPlan::build(config_.sim.faults, config_.sim.fault_seed, 0)
            .apply_dropouts(wind_trace_),
        strength);
  return HybridSupply(wind_trace_, strength);
}

SimResult ExperimentContext::run(Scheme scheme, const std::vector<Task>& tasks,
                                 const HybridSupply& supply,
                                 bool record_trace) const {
  ScenarioSpec spec;
  spec.scheme = scheme;
  spec.tasks = borrow(tasks);
  spec.supply = borrow(supply);
  spec.record_trace = record_trace;
  return SweepRunner(*this, 1).run_one(spec);
}

std::vector<SweepPoint> sweep_hu(const ExperimentContext& ctx,
                                 const std::vector<double>& hu_fractions,
                                 bool with_wind) {
  const auto supply =
      std::make_shared<const HybridSupply>(ctx.make_supply(with_wind));
  std::vector<ScenarioSpec> specs;
  specs.reserve(hu_fractions.size() * kAllSchemes.size());
  for (const double hu : hu_fractions) {
    const auto tasks =
        std::make_shared<const std::vector<Task>>(ctx.make_tasks(hu));
    for (const Scheme scheme : kAllSchemes) {
      ScenarioSpec s;
      s.scheme = scheme;
      s.tasks = tasks;
      s.supply = supply;
      s.x = hu;
      s.label = spec_label(scheme, "hu", hu);
      specs.push_back(std::move(s));
    }
  }
  return SweepRunner(ctx).run_points(specs);
}

std::vector<SweepPoint> sweep_arrival(const ExperimentContext& ctx,
                                      const std::vector<double>& rates,
                                      bool with_wind) {
  const auto supply =
      std::make_shared<const HybridSupply>(ctx.make_supply(with_wind));
  const double hu = ctx.config().urgency.hu_fraction;
  std::vector<ScenarioSpec> specs;
  specs.reserve(rates.size() * kAllSchemes.size());
  for (const double rate : rates) {
    const auto tasks =
        std::make_shared<const std::vector<Task>>(ctx.make_tasks(hu, rate));
    for (const Scheme scheme : kAllSchemes) {
      ScenarioSpec s;
      s.scheme = scheme;
      s.tasks = tasks;
      s.supply = supply;
      s.x = rate;
      s.label = spec_label(scheme, "rate", rate);
      specs.push_back(std::move(s));
    }
  }
  return SweepRunner(ctx).run_points(specs);
}

std::vector<SweepPoint> sweep_wind_strength(
    const ExperimentContext& ctx, const std::vector<double>& factors) {
  const double hu = ctx.config().urgency.hu_fraction;
  const auto tasks =
      std::make_shared<const std::vector<Task>>(ctx.make_tasks(hu));
  std::vector<ScenarioSpec> specs;
  specs.reserve(factors.size() * kAllSchemes.size());
  for (const double f : factors) {
    const auto supply =
        std::make_shared<const HybridSupply>(ctx.make_supply(true, f));
    for (const Scheme scheme : kAllSchemes) {
      ScenarioSpec s;
      s.scheme = scheme;
      s.tasks = tasks;
      s.supply = supply;
      s.x = f;
      s.label = spec_label(scheme, "swp", f);
      specs.push_back(std::move(s));
    }
  }
  return SweepRunner(ctx).run_points(specs);
}

std::vector<SweepPoint> power_traces(const ExperimentContext& ctx) {
  const std::array<Scheme, 3> scan_schemes = {
      Scheme::kScanRan, Scheme::kScanEffi, Scheme::kScanFair};
  const double hu = ctx.config().urgency.hu_fraction;
  const auto tasks =
      std::make_shared<const std::vector<Task>>(ctx.make_tasks(hu));
  const auto supply = std::make_shared<const HybridSupply>(ctx.make_supply(true));
  std::vector<ScenarioSpec> specs;
  specs.reserve(scan_schemes.size());
  for (const Scheme scheme : scan_schemes) {
    ScenarioSpec s;
    s.scheme = scheme;
    s.tasks = tasks;
    s.supply = supply;
    s.record_trace = true;
    s.label = spec_label(scheme, "trace", 1.0);
    specs.push_back(std::move(s));
  }
  return SweepRunner(ctx).run_points(specs);
}

std::vector<CostRow> energy_costs(const ExperimentContext& ctx) {
  const double hu = ctx.config().urgency.hu_fraction;
  const auto tasks =
      std::make_shared<const std::vector<Task>>(ctx.make_tasks(hu));
  // Thermal runs add the heat-aware sixth scheme, so the fig8 thermal
  // captures put ScanTherm's cooling payoff next to the paper five.
  std::vector<Scheme> schemes(kAllSchemes.begin(), kAllSchemes.end());
  if (ctx.config().sim.thermal.enabled)
    schemes.push_back(ensure_extended_schemes_registered());
  std::vector<ScenarioSpec> specs;
  specs.reserve(2 * schemes.size());
  for (const bool with_wind : {false, true}) {
    const auto supply =
        std::make_shared<const HybridSupply>(ctx.make_supply(with_wind));
    for (const Scheme scheme : schemes) {
      ScenarioSpec s;
      s.scheme = scheme;
      s.tasks = tasks;
      s.supply = supply;
      s.x = with_wind ? 1.0 : 0.0;
      s.label = spec_label(scheme, "wind", s.x);
      specs.push_back(std::move(s));
    }
  }
  const std::vector<SimResult> results = SweepRunner(ctx).run(specs);

  std::vector<CostRow> rows;
  rows.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const SimResult& r = results[i];
    CostRow row;
    row.scheme = specs[i].scheme;
    row.with_wind = specs[i].x != 0.0;
    row.cost = r.cost;
    row.utility = r.energy.utility;
    row.wind = r.energy.wind;
    row.events = r.events_processed;
    row.rematches = r.dvfs_rematch_count;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace iscope
