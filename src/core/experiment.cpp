#include "core/experiment.hpp"

#include <numeric>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "profiling/scanner.hpp"
#include "sim/simulator.hpp"
#include "workload/urgency.hpp"

namespace iscope {

ExperimentContext::ExperimentContext(const ExperimentConfig& config)
    : config_(config) {
  config_.validate();

  // Fabricate the cluster.
  cluster_ = std::make_unique<Cluster>(build_cluster(config_.cluster));

  // Full in-cloud scan (the Scan schemes' knowledge). The overhead of this
  // campaign is analyzed separately (Sec. VI-E / bench_overhead_profiling).
  db_ = std::make_unique<ProfileDb>(cluster_->size());
  const Scanner scanner(cluster_.get(), config_.scan);
  Rng scan_rng = Rng(config_.seed).fork("scan");
  std::vector<std::size_t> all(cluster_->size());
  std::iota(all.begin(), all.end(), 0);
  scanner.scan_domain(all, 0.0, scan_rng, *db_);
  ISCOPE_INFO("scanned " << db_->profiled_count() << " processors, "
                         << db_->total_trials() << " trials");

  // Wind trace, scaled relative to facility peak demand (the paper's 3.5%
  // NREL down-scaling plays the same role).
  WindFarmConfig wind = config_.wind;
  wind.seed = Rng(config_.seed).fork("wind").seed();
  SupplyTrace raw = generate_wind_days(wind, 7.0);
  const double peak =
      estimated_peak_demand_w(config_.cluster, config_.sim.cooling_cop);
  wind_trace_ = raw.scaled_to_mean(config_.wind_mean_fraction_of_peak * peak);
}

std::vector<Task> ExperimentContext::make_tasks(double hu_fraction,
                                                double arrival_rate) const {
  SyntheticWorkloadConfig wl = config_.workload;
  wl.max_cpus = std::min(wl.max_cpus, cluster_->size());
  std::vector<Task> tasks = generate_workload(wl);
  UrgencyConfig urgency = config_.urgency;
  urgency.hu_fraction = hu_fraction;
  assign_deadlines(tasks, urgency);
  if (arrival_rate != 1.0)
    tasks = scale_arrival_rate(std::move(tasks), arrival_rate);
  return tasks;
}

HybridSupply ExperimentContext::make_supply(bool with_wind,
                                            double strength) const {
  if (!with_wind) return HybridSupply();
  return HybridSupply(wind_trace_, strength);
}

SimResult ExperimentContext::run(Scheme scheme, const std::vector<Task>& tasks,
                                 const HybridSupply& supply,
                                 bool record_trace) const {
  SimConfig sim = config_.sim;
  sim.record_trace = record_trace;
  // Fork by placement *rule*, not scheme: BinRan and ScanRan then share the
  // same random placement stream, so their comparison isolates the
  // knowledge difference (paired-run variance reduction).
  sim.seed = Rng(config_.seed)
                 .fork(placement_rule_name(scheme_rule(scheme)))
                 .seed();
  return run_scheme(*cluster_, scheme, db_.get(), supply, tasks, sim);
}

std::vector<SweepPoint> sweep_hu(const ExperimentContext& ctx,
                                 const std::vector<double>& hu_fractions,
                                 bool with_wind) {
  std::vector<SweepPoint> out;
  const HybridSupply supply = ctx.make_supply(with_wind);
  for (const double hu : hu_fractions) {
    const std::vector<Task> tasks = ctx.make_tasks(hu);
    for (const Scheme scheme : kAllSchemes) {
      SweepPoint p;
      p.scheme = scheme;
      p.x = hu;
      p.result = ctx.run(scheme, tasks, supply);
      out.push_back(std::move(p));
    }
  }
  return out;
}

std::vector<SweepPoint> sweep_arrival(const ExperimentContext& ctx,
                                      const std::vector<double>& rates,
                                      bool with_wind) {
  std::vector<SweepPoint> out;
  const HybridSupply supply = ctx.make_supply(with_wind);
  const double hu = ctx.config().urgency.hu_fraction;
  for (const double rate : rates) {
    const std::vector<Task> tasks = ctx.make_tasks(hu, rate);
    for (const Scheme scheme : kAllSchemes) {
      SweepPoint p;
      p.scheme = scheme;
      p.x = rate;
      p.result = ctx.run(scheme, tasks, supply);
      out.push_back(std::move(p));
    }
  }
  return out;
}

std::vector<SweepPoint> sweep_wind_strength(
    const ExperimentContext& ctx, const std::vector<double>& factors) {
  std::vector<SweepPoint> out;
  const double hu = ctx.config().urgency.hu_fraction;
  const std::vector<Task> tasks = ctx.make_tasks(hu);
  for (const double f : factors) {
    const HybridSupply supply = ctx.make_supply(true, f);
    for (const Scheme scheme : kAllSchemes) {
      SweepPoint p;
      p.scheme = scheme;
      p.x = f;
      p.result = ctx.run(scheme, tasks, supply);
      out.push_back(std::move(p));
    }
  }
  return out;
}

std::vector<SweepPoint> power_traces(const ExperimentContext& ctx) {
  const std::array<Scheme, 3> scan_schemes = {
      Scheme::kScanRan, Scheme::kScanEffi, Scheme::kScanFair};
  const double hu = ctx.config().urgency.hu_fraction;
  const std::vector<Task> tasks = ctx.make_tasks(hu);
  const HybridSupply supply = ctx.make_supply(true);
  std::vector<SweepPoint> out;
  for (const Scheme scheme : scan_schemes) {
    SweepPoint p;
    p.scheme = scheme;
    p.result = ctx.run(scheme, tasks, supply, /*record_trace=*/true);
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<CostRow> energy_costs(const ExperimentContext& ctx) {
  const double hu = ctx.config().urgency.hu_fraction;
  const std::vector<Task> tasks = ctx.make_tasks(hu);
  std::vector<CostRow> rows;
  for (const bool with_wind : {false, true}) {
    const HybridSupply supply = ctx.make_supply(with_wind);
    for (const Scheme scheme : kAllSchemes) {
      const SimResult r = ctx.run(scheme, tasks, supply);
      CostRow row;
      row.scheme = scheme;
      row.with_wind = with_wind;
      row.cost_usd = r.cost_usd;
      row.utility_kwh = r.energy.utility_kwh();
      row.wind_kwh = r.energy.wind_kwh();
      rows.push_back(row);
    }
  }
  return rows;
}

}  // namespace iscope
