// Generic scenario-sweep engine.
//
// Every paper figure is a batch of independent (scheme x parameter)
// simulation runs over state that is expensive to build once (fabricated
// cluster, in-cloud scan, wind trace). `ScenarioSpec` names one such run;
// `SweepRunner` executes a batch of specs -- serially or fanned out over a
// ThreadPool -- and returns the results in spec order.
//
// Thread-safety contract: a run only *reads* the shared experiment state
// (`Cluster`, `ProfileDb`, `HybridSupply`, the wind trace), all of which it
// accesses through const references; every piece of mutable run state (the
// per-run `Knowledge` tables, the placement RNG, meters, queues) is owned
// by that run's `DatacenterSim`. Consequently:
//
//   serial (parallelism = 1) and parallel execution of the same specs
//   produce bit-identical `SimResult`s at the same experiment seed.
//
// tests/test_sweep.cpp asserts this; run it under TSan (-DISCOPE_SANITIZE=
// thread) to re-audit after touching the sim layers.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "energy/hybrid_supply.hpp"
#include "sched/scheme.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "workload/task.hpp"

namespace iscope {

class ExperimentContext;

/// One simulation run: a scheme over a task set and a supply. Task sets
/// and supplies are shared_ptrs so a sweep can share one instance across
/// many specs (and across threads -- they are only read).
struct ScenarioSpec {
  Scheme scheme = Scheme::kScanFair;
  std::shared_ptr<const std::vector<Task>> tasks;
  std::shared_ptr<const HybridSupply> supply;

  /// Base SimConfig override; when unset the context's config is used.
  /// The override's `seed` is ignored unless `seed` below is also set.
  std::optional<SimConfig> sim;

  /// Explicit sim seed. When unset (the default), the seed is derived from
  /// the experiment seed by placement *rule*, not scheme, so BinRan and
  /// ScanRan share the same random placement stream and their comparison
  /// isolates the knowledge difference (paired-run variance reduction) --
  /// identical to the historical `ExperimentContext::run` behaviour.
  std::optional<std::uint64_t> seed;

  /// Record the Fig. 7 power trace for this run.
  bool record_trace = false;

  /// The swept parameter (HU fraction, arrival rate, SWP factor...);
  /// carried through into the matching SweepPoint.
  double x = 0.0;

  /// Human-readable tag for progress/debug output, e.g. "ScanFair hu=0.3".
  std::string label;
};

/// One sweep point of one scheme.
struct SweepPoint {
  Scheme scheme = Scheme::kScanFair;
  double x = 0.0;  ///< the swept parameter (HU fraction, rate, SWP factor)
  SimResult result;
};

/// Executes batches of ScenarioSpecs against one ExperimentContext.
class SweepRunner {
 public:
  /// Worker count comes from `ctx.config().parallelism` (0 = one worker
  /// per hardware thread, 1 = serial legacy path in the caller's thread).
  explicit SweepRunner(const ExperimentContext& ctx);

  /// Same, with an explicit worker count overriding the config knob.
  SweepRunner(const ExperimentContext& ctx, std::size_t parallelism);

  /// Resolved worker count (>= 1).
  std::size_t parallelism() const { return parallelism_; }

  /// Execute all specs and return results in spec order. With more than
  /// one worker the specs run concurrently on a ThreadPool; a task-level
  /// exception is rethrown here (after all runs finish or are drained).
  std::vector<SimResult> run(const std::vector<ScenarioSpec>& specs) const;

  /// `run`, with each result paired back to its spec's (scheme, x).
  std::vector<SweepPoint> run_points(
      const std::vector<ScenarioSpec>& specs) const;

  /// Execute one spec in the caller's thread.
  SimResult run_one(const ScenarioSpec& spec) const;

 private:
  const ExperimentContext* ctx_;  // non-owning
  std::size_t parallelism_;
};

/// Non-owning shared_ptr view of caller-kept state (aliasing constructor;
/// the referenced object must outlive the spec). Lets single-run callers
/// build a ScenarioSpec without copying a task vector.
template <typename T>
std::shared_ptr<const T> borrow(const T& value) {
  return std::shared_ptr<const T>(std::shared_ptr<const void>(), &value);
}

}  // namespace iscope
