// Experiment configuration: one struct that wires every subsystem together.
//
// The paper's full facility is 4800 CPUs driven by the LLNL Thunder trace
// and NREL wind data; that scale runs, but the default experiment config is
// a proportionally reduced facility so the whole evaluation suite finishes
// in seconds. Set the ISCOPE_SCALE environment variable (or call
// `scaled(f)`) to grow it -- every reported *shape* is scale-invariant.
#pragma once

#include <cstdint>

#include "energy/wind_model.hpp"
#include "hardware/cluster.hpp"
#include "profiling/scanner.hpp"
#include "sim/simulator.hpp"
#include "workload/synthetic.hpp"
#include "workload/urgency.hpp"

namespace iscope {

struct ExperimentConfig {
  ClusterConfig cluster;
  SyntheticWorkloadConfig workload;
  UrgencyConfig urgency;
  WindFarmConfig wind;
  ScanConfig scan;
  SimConfig sim;
  /// Wind trace is rescaled so its mean equals this fraction of the
  /// facility's peak demand (the paper scales NREL data to 3.5% for the
  /// same purpose: a farm commensurate with the facility). At ~40% average
  /// utilization this puts the wind level in the regime where it crosses
  /// the demand curve frequently -- the Fig. 7 matching regime.
  double wind_mean_fraction_of_peak = 0.5;
  std::uint64_t seed = 2015;
  /// Worker threads the sweep engine (core/sweep.hpp) fans scenario runs
  /// out over. 0 = one worker per hardware thread (the default), 1 = the
  /// legacy serial path (no thread pool at all). Results are bit-identical
  /// at any setting; this knob only trades wall-clock for cores.
  std::size_t parallelism = 0;

  void validate() const;

  /// Reduced-scale defaults: 480 CPUs / 800 jobs (1:10 of the paper).
  static ExperimentConfig paper_small();

  /// The paper's full scale: 4800 CPUs, Thunder-sized workload.
  static ExperimentConfig paper_full();

  /// Hyperscale synthetic preset for the sharded simulator (DESIGN.md
  /// Sec. 12): `procs` processors (default ~100k, up to ~1M), job count
  /// and arrival rate proportional to the facility so utilization matches
  /// paper_small(). Widths are capped at 1024 CPUs so every task fits a
  /// rack-aligned shard slice, and the HU fraction is 0 (at this scale the
  /// interesting metric is throughput, not deadline pressure).
  static ExperimentConfig hyperscale(std::size_t procs = 102'400);

  /// Multiply processor and job counts by `factor` (>= keeps proportions).
  ExperimentConfig scaled(double factor) const;
};

/// Read ISCOPE_SCALE from the environment (default 1.0, clamped to
/// [0.1, 20]). Benches multiply `paper_small()` by this.
double env_scale();

/// Read ISCOPE_PARALLEL from the environment (default 0 = one sweep worker
/// per hardware thread; 1 = serial). Benches feed this into
/// `ExperimentConfig::parallelism`.
std::size_t env_parallelism();

/// Read ISCOPE_FAULTS from the environment: a `key=value,...` fault spec
/// (see parse_fault_spec). Unset/empty means no injection. Benches and the
/// CLI feed this into `SimConfig::faults`.
FaultSpec env_fault_spec();

/// Read ISCOPE_FAULT_SEED from the environment (default 0). Seeds
/// `FaultPlan::build` via `SimConfig::fault_seed`.
std::uint64_t env_fault_seed();

/// Read ISCOPE_SHARDS from the environment (default 1 = the single-event-
/// loop simulator; values > 1 route run_scheme through the sharded
/// coordinator). Benches feed this into `SimConfig::topology.shards`.
std::size_t env_shards();

/// Read ISCOPE_THERMAL from the environment (default off). "1"/"on"/
/// "true" enable the thermal/CRAC model (SimConfig::thermal.enabled);
/// unset, empty, "0", "off" and "false" leave it off.
bool env_thermal();

/// Read ISCOPE_SLEEP_POLICY from the environment (default kNone): a
/// sleep_policy_name() string -- none, active-idle, immediate, timeout.
/// Feeds SimConfig::sleep.policy; throws InvalidArgument on anything else.
SleepPolicy env_sleep_policy();

/// Read ISCOPE_SHARD_WORKERS from the environment (default 1 = serial
/// shard advances; 0 = one worker per hardware thread). Feeds
/// `SimConfig::shard_workers`; results are bit-identical at any setting.
std::size_t env_shard_workers();

/// Estimated peak facility demand: every CPU at the top level and stock
/// voltage, plus cooling.
Watts estimated_peak_demand(const ClusterConfig& cluster, double cop);

}  // namespace iscope
