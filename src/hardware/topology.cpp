#include "hardware/topology.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace iscope {

void TopologyConfig::validate() const {
  ISCOPE_CHECK_ARG(cpus_per_rack > 0, "Topology: cpus_per_rack must be > 0");
  ISCOPE_CHECK_ARG(racks_per_row > 0, "Topology: racks_per_row must be > 0");
  ISCOPE_CHECK_ARG(shards > 0, "Topology: shards must be > 0");
}

Topology::Topology(const TopologyConfig& config, std::size_t procs)
    : config_(config), procs_(procs) {
  config_.validate();
  ISCOPE_CHECK_ARG(procs > 0, "Topology: empty facility");
  racks_ = (procs + config_.cpus_per_rack - 1) / config_.cpus_per_rack;
  rows_ = (racks_ + config_.racks_per_row - 1) / config_.racks_per_row;
  ISCOPE_CHECK_ARG(config_.shards <= racks_,
                   "Topology: more shards than racks (a shard owns at least "
                   "one whole rack)");

  // Contiguous rack ranges with sizes differing by at most one: the first
  // (racks % shards) shards take the extra rack. Processor ranges follow
  // from the rack ranges; the last shard absorbs the partial final rack.
  const std::size_t n = config_.shards;
  const std::size_t base = racks_ / n;
  const std::size_t extra = racks_ % n;
  slices_.reserve(n);
  std::size_t rack = 0;
  for (std::size_t s = 0; s < n; ++s) {
    ShardSlice slice;
    slice.rack_lo = rack;
    slice.rack_count = base + (s < extra ? 1 : 0);
    rack += slice.rack_count;
    slice.proc_lo = slice.rack_lo * config_.cpus_per_rack;
    const std::size_t proc_end =
        std::min(procs_, (slice.rack_lo + slice.rack_count) *
                             config_.cpus_per_rack);
    slice.proc_count = proc_end - slice.proc_lo;
    slices_.push_back(slice);
  }
}

const ShardSlice& Topology::slice(std::size_t s) const {
  ISCOPE_CHECK_ARG(s < slices_.size(), "Topology: shard out of range");
  return slices_[s];
}

std::size_t Topology::shard_of_proc(std::size_t p) const {
  ISCOPE_CHECK_ARG(p < procs_, "Topology: processor out of range");
  const std::size_t rack = p / config_.cpus_per_rack;
  // slices_ is small (<= racks); binary-search the rack ranges.
  std::size_t lo = 0;
  std::size_t hi = slices_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (rack < slices_[mid].rack_lo + slices_[mid].rack_count)
      hi = mid;
    else
      lo = mid + 1;
  }
  return lo;
}

}  // namespace iscope
