#include "hardware/dvfs.hpp"

#include "common/error.hpp"

namespace iscope {

DvfsState::DvfsState(const FreqLevels* levels) : levels_(levels) {
  ISCOPE_CHECK_ARG(levels != nullptr, "DvfsState: null levels table");
  levels->validate();
}

std::size_t DvfsState::level() const {
  ISCOPE_CHECK_ARG(on_, "DvfsState: level queried while gated");
  return level_;
}

Gigahertz DvfsState::freq() const {
  return Gigahertz{on_ ? levels_->freq_ghz[level_] : 0.0};
}

void DvfsState::power_on(std::size_t level) {
  ISCOPE_CHECK_ARG(level < levels_->count(), "DvfsState: level out of range");
  on_ = true;
  level_ = level;
}

void DvfsState::set_level(std::size_t level) {
  ISCOPE_CHECK_ARG(on_, "DvfsState: set_level while gated");
  ISCOPE_CHECK_ARG(level < levels_->count(), "DvfsState: level out of range");
  level_ = level;
}

void DvfsState::power_off() { on_ = false; }

std::size_t DvfsState::num_levels() const { return levels_->count(); }

std::size_t DvfsState::top_level() const { return levels_->count() - 1; }

}  // namespace iscope
