// C-state sleep management for idle processors.
//
// The paper's simulator treats an idle CPU as free: zero power, instant
// start. Real sockets burn 10-30% of peak while "idle" in C1, and every
// deeper package C-state trades lower residency power for a longer wake
// latency -- the speed/sleep trade SleepScale (arXiv:1404.5121) manages
// jointly with DVFS. This header models that ladder:
//
//   active idle (C1)   -- idle_frac ~0.30 of stock power, instant wake
//   states[0]  (C3)    -- ~0.10 of stock, ~1 s wake
//   states[1]  (C6)    -- ~0.03 of stock, ~10 s wake
//   states[2]  (off)   -- ~0.005 of stock, ~120 s wake (suspend-to-disk
//                         style full power-down)
//
// A *policy* decides how a processor descends the ladder while idle:
//   kNone       -- the legacy model: idle costs nothing, wakes instantly.
//                  Must leave every simulation bit-identical to a build
//                  without sleep support (the ThermalOffIdentity suite).
//   kActiveIdle -- processors pay active-idle power but never sleep;
//                  the honest baseline sleep policies are compared to.
//   kImmediate  -- drop straight to the deepest state on going idle:
//                  minimum energy, maximum wake latency.
//   kTimeout    -- descend one state per `timeout_s` of residency, the
//                  classic fixed-timeout governor SleepScale benchmarks
//                  against.
//
// The simulator owns the per-processor state machine (sleep transitions
// are events; waking claimed processors delays start_task); this header
// is pure data so the config can live in SimConfig and the checkpoint
// identity block without dragging sim internals into the hardware layer.
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace iscope {

enum class SleepPolicy : unsigned char {
  kNone = 0,     ///< legacy: idle is free and wakes instantly
  kActiveIdle,   ///< pay C1 power, never sleep deeper
  kImmediate,    ///< deepest state immediately on idle
  kTimeout,      ///< descend one state per timeout_s of idle residency
};

/// One rung of the C-state ladder below active idle.
struct SleepState {
  double idle_frac = 0.0;  ///< residency power as a fraction of stock power
  double wake_s = 0.0;     ///< latency to return to active
};

struct SleepConfig {
  SleepPolicy policy = SleepPolicy::kNone;

  /// Idle residency before each one-state descent under kTimeout.
  double timeout_s = 300.0;

  /// Power an awake-but-idle processor draws, as a fraction of its stock
  /// (top-level bin) power. Applies to every policy except kNone.
  double active_idle_frac = 0.30;

  /// The ladder, shallowest first. Fixed size keeps the checkpoint
  /// format and the per-processor state byte trivial.
  std::array<SleepState, 3> states{
      SleepState{0.10, 1.0},     // C3-like package sleep
      SleepState{0.03, 10.0},    // C6-like deep sleep
      SleepState{0.005, 120.0},  // full power-down
  };

  bool enabled() const { return policy != SleepPolicy::kNone; }

  void validate() const;
};

/// Canonical lowercase policy names: none, active-idle, immediate,
/// timeout. Round-trips with parse_sleep_policy.
const char* sleep_policy_name(SleepPolicy policy);

/// Parse a policy name; throws InvalidArgument on anything unknown.
SleepPolicy parse_sleep_policy(const std::string& name);

}  // namespace iscope
