// Processor aging (NBTI/PBTI-style wear).
//
// The paper's Sec. III-C argues for *periodic* re-profiling: "divergent
// working conditions and utilization times wear out processors
// differently, which can redistribute the variations among chips". This
// module models that wear so the claim can be exercised end to end:
//
//   dVth(t) = vth_nominal * prefactor * (stress_hours / reference_hours)^n
//
// the classic reaction-diffusion power law (n ~ 0.16). Aged cores have a
// higher threshold voltage -- they need a higher Min Vdd for the same
// frequency (and leak slightly less). A datacenter that keeps scheduling
// against stale profiles will eventually under-volt aged chips below
// their true minimum: the bench_aging ablation quantifies both the energy
// and the safety cost, motivating iScope's periodic scanning.
#pragma once

#include <vector>

#include "hardware/cluster.hpp"
#include "variation/varius.hpp"

namespace iscope {

struct AgingParams {
  /// Vth shift after `reference_hours` of full stress, as a fraction of
  /// nominal Vth (50 mV on a 300 mV device after ~5 years is typical).
  double prefactor = 0.15;
  double reference_hours = 43800.0;  ///< 5 years
  double exponent = 0.16;            ///< reaction-diffusion time power law

  void validate() const;

  /// Threshold-voltage shift [V] after `stress_s` seconds of activity on a
  /// device with nominal threshold `vth_nominal`.
  double delta_vth(double stress_s, double vth_nominal) const;
};

/// Age one core by `stress_s` seconds of activity: Vth rises (slower,
/// needs more voltage), leakage falls correspondingly.
CoreVariation age_core(const CoreVariation& core, double stress_s,
                       const AgingParams& params, const VariusParams& varius);

/// Rebuild a cluster after wear: per-processor stress times (e.g. the
/// busy_time_s of a simulation) age every core of the chip; ground-truth
/// Min Vdd curves are recomputed. Factory binning is *kept as stamped* --
/// the bins were assigned at t=0 and the physical chips drifted under
/// them, which is precisely the hazard periodic profiling removes.
Cluster aged_cluster(const Cluster& cluster,
                     const std::vector<double>& stress_s,
                     const AgingParams& params = {});

/// Count (processor, level) pairs where an applied voltage map undervolts
/// the (possibly aged) silicon truth: `applied(i, l) < true MinVdd(i, l)`.
/// These are latent stability violations.
std::size_t count_undervolt_violations(
    const Cluster& cluster,
    const std::vector<std::vector<double>>& applied_vdd);

}  // namespace iscope
