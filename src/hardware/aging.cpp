#include "hardware/aging.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace iscope {

void AgingParams::validate() const {
  ISCOPE_CHECK_ARG(prefactor >= 0.0, "aging: prefactor must be >= 0");
  ISCOPE_CHECK_ARG(reference_hours > 0.0, "aging: reference must be > 0");
  ISCOPE_CHECK_ARG(exponent > 0.0 && exponent < 1.0,
                   "aging: exponent must be in (0,1)");
}

double AgingParams::delta_vth(double stress_s, double vth_nominal) const {
  validate();
  ISCOPE_CHECK_ARG(stress_s >= 0.0, "aging: negative stress time");
  if (stress_s == 0.0) return 0.0;
  const double hours = stress_s / units::kSecondsPerHour;
  return vth_nominal * prefactor *
         std::pow(hours / reference_hours, exponent);
}

CoreVariation age_core(const CoreVariation& core, double stress_s,
                       const AgingParams& params,
                       const VariusParams& varius) {
  CoreVariation aged = core;
  const double dvth = params.delta_vth(stress_s, varius.vth_nominal);
  aged.vth += dvth;
  // Subthreshold leakage falls exponentially as Vth rises.
  aged.leak_scale *=
      std::exp(-dvth * std::log(10.0) / varius.subthreshold_slope);
  return aged;
}

Cluster aged_cluster(const Cluster& cluster,
                     const std::vector<double>& stress_s,
                     const AgingParams& params) {
  ISCOPE_CHECK_ARG(stress_s.size() == cluster.size(),
                   "aged_cluster: one stress time per processor required");
  params.validate();

  const VariusModel& varius = cluster.varius();
  const ClusterConfig& config = cluster.config();

  std::vector<Processor> procs;
  procs.reserve(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    Processor p = cluster.proc(i);  // copy: keeps coeffs, id, bin
    for (auto& core : p.variation.cores)
      core = age_core(core, stress_s[i], params, varius.params());
    p.core_truth.clear();
    for (const auto& core : p.variation.cores)
      p.core_truth.push_back(build_core_curve(varius, core, config.levels,
                                              config.intrinsic_guardband));
    p.chip_truth = MinVddCurve::chip_worst_case(p.core_truth);
    procs.push_back(std::move(p));
  }

  // Factory bins are stamped on the package; they do not follow the drift.
  return Cluster(config, std::move(procs), cluster.binning(), varius,
                 cluster.power_model());
}

std::size_t count_undervolt_violations(
    const Cluster& cluster,
    const std::vector<std::vector<double>>& applied_vdd) {
  ISCOPE_CHECK_ARG(applied_vdd.size() == cluster.size(),
                   "violations: one voltage row per processor required");
  std::size_t count = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    ISCOPE_CHECK_ARG(applied_vdd[i].size() == cluster.levels().count(),
                     "violations: one voltage per level required");
    for (std::size_t l = 0; l < applied_vdd[i].size(); ++l)
      if (Volts{applied_vdd[i][l]} < cluster.true_vdd(i, l)) ++count;
  }
  return count;
}

}  // namespace iscope
