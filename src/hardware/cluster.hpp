// The datacenter's processor population.
//
// `build_cluster` fabricates N processors through the variation and power
// models, derives every chip's ground-truth Min Vdd curves, and runs the
// factory speed-binning (3 bins by default, mirroring the AMD Opteron 6300
// line-up in the paper's Table 1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hardware/processor.hpp"
#include "power/cpu_power.hpp"
#include "variation/binning.hpp"
#include "variation/die_layout.hpp"
#include "variation/varius.hpp"
#include "variation/vdd_model.hpp"

namespace iscope {

struct ClusterConfig {
  std::size_t num_processors = 4800;  ///< paper Sec. V-C: 4800 CPUs
  DieLayout layout = quad_core_layout();
  VariusParams varius;                ///< datacenter CPU defaults
  PowerModelParams power;             ///< Eq-1 coefficient distributions
  FreqLevels levels = FreqLevels::paper_default();
  int num_bins = 3;
  double intrinsic_guardband = 0.01;  ///< chip's own safety margin on MinVdd
  std::uint64_t seed = 1;

  void validate() const;
};

class Cluster {
 public:
  Cluster(ClusterConfig config, std::vector<Processor> procs,
          BinningResult binning, VariusModel varius, CpuPowerModel power);

  std::size_t size() const { return procs_.size(); }
  const Processor& proc(std::size_t i) const;
  const std::vector<Processor>& processors() const { return procs_; }

  const FreqLevels& levels() const { return config_.levels; }
  const BinningResult& binning() const { return binning_; }
  const VariusModel& varius() const { return varius_; }
  const CpuPowerModel& power_model() const { return power_; }
  const ClusterConfig& config() const { return config_; }

  /// Chip power of processor `i` at `level` when supplied `vdd`.
  Watts power(std::size_t i, std::size_t level, Volts vdd) const;

  /// The factory-bin worst-case voltage of processor `i` at `level` --
  /// what a Bin-scheme datacenter must apply.
  Volts bin_vdd(std::size_t i, std::size_t level) const;

  /// The ground-truth chip Min Vdd of processor `i` at `level` -- what a
  /// perfect scanner would discover.
  Volts true_vdd(std::size_t i, std::size_t level) const;

  /// Chip power under *per-core* voltage domains (paper Sec. III-B:
  /// on-chip LDO regulators per core): every core runs at its own true
  /// Min Vdd instead of the shared-domain worst case. Used by the
  /// voltage-domain ablation (DESIGN.md choice #2).
  Watts power_per_core_domains(std::size_t i, std::size_t level) const;

 private:
  ClusterConfig config_;
  std::vector<Processor> procs_;
  BinningResult binning_;
  VariusModel varius_;
  CpuPowerModel power_;
};

/// Fabricate the population deterministically from `config.seed`.
Cluster build_cluster(const ClusterConfig& config);

}  // namespace iscope
