// Rack/row/datacenter topology and its partition into simulation shards.
//
// The paper's facility is one flat CPU array; at hyperscale (100k-1M CPUs)
// the simulator partitions it along the physical hierarchy instead:
// processors pack into racks, racks into rows, and a contiguous range of
// racks forms one *shard* -- the unit that owns its own event loop, matcher
// scratch and energy accounting (sim/sharded.hpp). Shards are deliberately
// rack-aligned: a rack is the smallest unit of placement locality, so no
// gang task ever straddles a shard boundary that a rack would not already
// impose.
//
// The partition is a pure function of (config, processor count): shards get
// contiguous rack ranges whose sizes differ by at most one rack, so the
// same facility always splits the same way -- a prerequisite for the
// seed-determinism guarantee of sharded runs.
#pragma once

#include <cstddef>
#include <vector>

namespace iscope {

struct TopologyConfig {
  std::size_t cpus_per_rack = 48;   ///< sockets per rack
  std::size_t racks_per_row = 10;   ///< racks per hot/cold-aisle row
  /// Number of simulation shards the facility is partitioned into. 1 (the
  /// default) keeps the single-event-loop simulator; run_scheme() routes
  /// anything larger through the sharded coordinator.
  std::size_t shards = 1;

  void validate() const;
};

/// One shard's contiguous slice of the facility.
struct ShardSlice {
  std::size_t rack_lo = 0;    ///< first rack of the slice
  std::size_t rack_count = 0;
  std::size_t proc_lo = 0;    ///< first processor id of the slice
  std::size_t proc_count = 0;
};

class Topology {
 public:
  /// Partition a `procs`-processor facility. Requires shards <= racks
  /// (a shard owns at least one whole rack). The last rack may be partial
  /// when `procs` is not a multiple of cpus_per_rack.
  Topology(const TopologyConfig& config, std::size_t procs);

  const TopologyConfig& config() const { return config_; }
  std::size_t procs() const { return procs_; }
  std::size_t racks() const { return racks_; }
  std::size_t rows() const { return rows_; }
  std::size_t shards() const { return slices_.size(); }

  const ShardSlice& slice(std::size_t s) const;
  const std::vector<ShardSlice>& slices() const { return slices_; }

  /// Shard owning global processor `p`.
  std::size_t shard_of_proc(std::size_t p) const;

 private:
  TopologyConfig config_;
  std::size_t procs_ = 0;
  std::size_t racks_ = 0;
  std::size_t rows_ = 0;
  std::vector<ShardSlice> slices_;
};

}  // namespace iscope
