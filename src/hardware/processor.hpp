// A fabricated processor: its (hidden) true variation characteristics and
// the factory metadata visible without in-cloud profiling.
//
// The `core_truth` / `chip_truth` Min Vdd curves are the physical ground
// truth. Schedulers never read them directly -- they see either the factory
// bin's worst-case curve (Bin schemes) or the scanner's discovered curve
// (Scan schemes); see sched/knowledge.hpp.
#pragma once

#include <cstddef>
#include <vector>

#include "power/cpu_power.hpp"
#include "variation/varius.hpp"
#include "variation/vdd_model.hpp"

namespace iscope {

struct Processor {
  std::size_t id = 0;
  ChipVariation variation;          ///< sampled Vth/speed/leakage per core
  PowerCoefficients coeffs;         ///< Eq-1 alpha/beta of this chip
  std::vector<MinVddCurve> core_truth;  ///< ground-truth Min Vdd per core
  MinVddCurve chip_truth;           ///< shared-domain worst case over cores
  int bin = -1;                     ///< factory bin (0 = most efficient)

  std::size_t core_count() const { return variation.cores.size(); }
};

}  // namespace iscope
