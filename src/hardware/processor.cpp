#include "hardware/processor.hpp"

// Processor is a plain data aggregate; this translation unit anchors the
// header in the build (one .cpp per public header).
