#include "hardware/cluster.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace iscope {

void ClusterConfig::validate() const {
  ISCOPE_CHECK_ARG(num_processors > 0, "ClusterConfig: empty cluster");
  ISCOPE_CHECK_ARG(num_bins >= 1, "ClusterConfig: need at least one bin");
  ISCOPE_CHECK_ARG(intrinsic_guardband >= 0.0,
                   "ClusterConfig: negative guardband");
  layout.validate();
  varius.validate();
  power.validate();
  levels.validate();
}

Cluster::Cluster(ClusterConfig config, std::vector<Processor> procs,
                 BinningResult binning, VariusModel varius, CpuPowerModel power)
    : config_(std::move(config)),
      procs_(std::move(procs)),
      binning_(std::move(binning)),
      varius_(std::move(varius)),
      power_(std::move(power)) {}

const Processor& Cluster::proc(std::size_t i) const {
  ISCOPE_CHECK_ARG(i < procs_.size(), "Cluster: processor index out of range");
  return procs_[i];
}

Watts Cluster::power(std::size_t i, std::size_t level, Volts vdd) const {
  const Processor& p = proc(i);
  ISCOPE_CHECK_ARG(level < config_.levels.count(),
                   "Cluster: level out of range");
  return power_.power(p.coeffs, Gigahertz{config_.levels.freq_ghz[level]},
                      vdd, Volts{config_.levels.vdd_nom[level]},
                      Volts{config_.levels.vdd_nom.back()});
}

Volts Cluster::bin_vdd(std::size_t i, std::size_t level) const {
  const Processor& p = proc(i);
  ISCOPE_CHECK(p.bin >= 0 && p.bin < binning_.bins(),
               "Cluster: processor has no valid bin");
  return Volts{binning_.bin_curve[static_cast<std::size_t>(p.bin)].vdd(level)};
}

Volts Cluster::true_vdd(std::size_t i, std::size_t level) const {
  return Volts{proc(i).chip_truth.vdd(level)};
}

Watts Cluster::power_per_core_domains(std::size_t i,
                                      std::size_t level) const {
  const Processor& p = proc(i);
  ISCOPE_CHECK_ARG(level < config_.levels.count(),
                   "Cluster: level out of range");
  const double n = static_cast<double>(p.core_count());
  // Split the chip's Eq-1 coefficients evenly across cores and evaluate
  // each core at its own Min Vdd.
  const PowerCoefficients per_core{p.coeffs.alpha / n, p.coeffs.beta / n};
  Watts total;
  for (const MinVddCurve& core : p.core_truth) {
    total += power_.power(per_core, Gigahertz{config_.levels.freq_ghz[level]},
                          Volts{core.vdd(level)},
                          Volts{config_.levels.vdd_nom[level]},
                          Volts{config_.levels.vdd_nom.back()});
  }
  return total;
}

Cluster build_cluster(const ClusterConfig& config) {
  config.validate();
  Rng rng(config.seed);
  Rng chip_rng = rng.fork("chips");
  Rng power_rng = rng.fork("power");

  const VariusModel varius(config.varius, config.layout);
  const CpuPowerModel power(config.power);

  std::vector<Processor> procs;
  procs.reserve(config.num_processors);
  std::vector<MinVddCurve> chip_curves;
  chip_curves.reserve(config.num_processors);

  for (std::size_t i = 0; i < config.num_processors; ++i) {
    Processor p;
    p.id = i;
    p.variation = varius.sample_chip(chip_rng);
    p.coeffs = power.sample(power_rng);
    p.core_truth.reserve(p.variation.cores.size());
    for (const auto& core : p.variation.cores)
      p.core_truth.push_back(build_core_curve(varius, core, config.levels,
                                              config.intrinsic_guardband));
    p.chip_truth = MinVddCurve::chip_worst_case(p.core_truth);
    chip_curves.push_back(p.chip_truth);
    procs.push_back(std::move(p));
  }

  BinningResult binning = speed_bin(chip_curves, config.num_bins);
  for (std::size_t i = 0; i < procs.size(); ++i)
    procs[i].bin = binning.bin_of_chip[i];

  return Cluster(config, std::move(procs), std::move(binning), varius, power);
}

}  // namespace iscope
