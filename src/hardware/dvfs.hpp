// Per-processor DVFS state machine.
//
// Each processor has an independent clock domain (paper Sec. III-B: per-core
// PLLs are common; AMD Griffin / Intel Itanium II provide separated voltage
// planes) and can be power-gated entirely when idle (DESIGN.md choice #3).
#pragma once

#include <cstddef>

#include "common/units.hpp"
#include "variation/vdd_model.hpp"

namespace iscope {

/// Operating state of one processor's clock/voltage domain.
class DvfsState {
 public:
  /// Starts power-gated (off).
  explicit DvfsState(const FreqLevels* levels);

  bool is_on() const { return on_; }
  /// Current level index; only meaningful when on.
  std::size_t level() const;
  /// Current frequency; 0 when gated.
  Gigahertz freq() const;

  /// Power up at the given level.
  void power_on(std::size_t level);
  /// Change level while on.
  void set_level(std::size_t level);
  /// Power-gate (0 W).
  void power_off();

  /// Number of configured levels.
  std::size_t num_levels() const;
  /// Top (fastest) level index.
  std::size_t top_level() const;

 private:
  const FreqLevels* levels_;  // non-owning; outlives the state
  bool on_ = false;
  std::size_t level_ = 0;
};

}  // namespace iscope
