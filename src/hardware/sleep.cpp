#include "hardware/sleep.hpp"

#include "common/error.hpp"

namespace iscope {

void SleepConfig::validate() const {
  ISCOPE_CHECK_ARG(timeout_s > 0.0, "Sleep: timeout_s must be > 0");
  ISCOPE_CHECK_ARG(active_idle_frac >= 0.0 && active_idle_frac <= 1.0,
                   "Sleep: active_idle_frac must be in [0, 1]");
  double prev_frac = active_idle_frac;
  double prev_wake = 0.0;
  for (const SleepState& s : states) {
    ISCOPE_CHECK_ARG(s.idle_frac >= 0.0 && s.idle_frac <= prev_frac,
                     "Sleep: deeper states must draw no more power");
    ISCOPE_CHECK_ARG(s.wake_s >= prev_wake,
                     "Sleep: deeper states must not wake faster");
    prev_frac = s.idle_frac;
    prev_wake = s.wake_s;
  }
}

const char* sleep_policy_name(SleepPolicy policy) {
  switch (policy) {
    case SleepPolicy::kNone: return "none";
    case SleepPolicy::kActiveIdle: return "active-idle";
    case SleepPolicy::kImmediate: return "immediate";
    case SleepPolicy::kTimeout: return "timeout";
  }
  throw InvalidArgument("sleep_policy_name: unknown policy");
}

SleepPolicy parse_sleep_policy(const std::string& name) {
  if (name == "none") return SleepPolicy::kNone;
  if (name == "active-idle") return SleepPolicy::kActiveIdle;
  if (name == "immediate") return SleepPolicy::kImmediate;
  if (name == "timeout") return SleepPolicy::kTimeout;
  throw InvalidArgument("unknown sleep policy '" + name +
                        "' (expected none|active-idle|immediate|timeout)");
}

}  // namespace iscope
